package qurk

// Multi-core scaling benchmarks for the parallel marketplace simulator.
// Run with -cpu to see the scaling directly:
//
//	go test -bench Parallel -run '^$' -cpu 1,8 .
//
// cmd/bench runs exactly that and records the per-CPU ns/op (and the
// derived speedups) in BENCH_results.json.

import (
	"testing"
)

// BenchmarkParallelJoinSimulation posts one 40×40 Simple join round
// (1600 single-pair HITs, 5 assignments each) — the simulator's hot
// path. HITs simulate independently, so this scales with GOMAXPROCS
// while remaining bit-identical to the single-core run.
func BenchmarkParallelJoinSimulation(b *testing.B) {
	d := NewCelebrities(CelebrityConfig{N: 40, Seed: 1})
	left, right := d.Celeb.Qualify("c"), d.Photos.Qualify("p")
	m := NewSimMarket(DefaultMarketConfig(1), d.Oracle())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCrossJoin(left, right, SamePersonTask(),
			JoinOptions{Algorithm: SimpleJoin, GroupID: "bench-join"}, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSortCompare runs a 60-item comparison sort
// (~180 group HITs with full pair coverage) including the streamed
// vote aggregation that overlaps in-flight HIT simulation.
func BenchmarkParallelSortCompare(b *testing.B) {
	sq := NewSquares(60)
	m := NewSimMarket(DefaultMarketConfig(2), sq.Oracle())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(sq.Rel, SquareSorterTask(),
			CompareOptions{GroupSize: 5, Assignments: 5, GroupID: "bench-sort"}, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAdaptiveFilter runs the sharded adaptive vote
// pipeline over 200 tuples; shards issue next-round probes while other
// shards' rounds are still simulating.
func BenchmarkParallelAdaptiveFilter(b *testing.B) {
	d := NewCelebrities(CelebrityConfig{N: 200, Seed: 3})
	m := NewSimMarket(DefaultMarketConfig(3), d.Oracle())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunAdaptiveFilter(d.Celeb, IsFemaleTask(), VoteConfig{}, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelQuery runs the full declarative celebrity join with
// feature extraction (extract-left ∥ extract-right) and a crowd sort —
// the end-to-end wall-clock picture.
func BenchmarkParallelQuery(b *testing.B) {
	d := NewCelebrities(CelebrityConfig{N: 24, Seed: 4})
	for i := 0; i < b.N; i++ {
		market := NewSimMarket(DefaultMarketConfig(4), d.Oracle())
		eng := NewEngine(market, Options{JoinAlgorithm: NaiveJoin, JoinBatch: 5, Seed: 4})
		eng.Catalog.Register(d.Celeb)
		eng.Catalog.Register(d.Photos)
		eng.Library.MustRegister(SamePersonTask())
		eng.Library.MustRegister(GenderTask())
		if _, _, err := RunQuery(eng, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
ORDER BY c.name`); err != nil {
			b.Fatal(err)
		}
	}
}
