package qurk

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// runCelebrityQuery executes the paper's declarative celebrity join
// (features + crowd sort) once at the given GOMAXPROCS and returns a
// full serialization of everything observable: result rows in order,
// plus per-operator spending sorted by label.
func runCelebrityQuery(t *testing.T, procs int) string {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

	d := NewCelebrities(CelebrityConfig{N: 16, Seed: 9})
	market := NewSimMarket(DefaultMarketConfig(9), d.Oracle())
	eng := NewEngine(market, Options{JoinAlgorithm: NaiveJoin, JoinBatch: 5, Seed: 9})
	eng.Catalog.Register(d.Celeb)
	eng.Catalog.Register(d.Photos)
	eng.Library.MustRegister(SamePersonTask())
	eng.Library.MustRegister(GenderTask())
	eng.Library.MustRegister(IsFemaleTask())

	out, stats, err := RunQuery(eng, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
ORDER BY c.name`)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	for i := 0; i < out.Len(); i++ {
		fmt.Fprintf(&sb, "row %s\n", out.Row(i))
	}
	var ops []string
	for _, op := range stats.Operators {
		ops = append(ops, fmt.Sprintf("op %s hits=%d asn=%d makespan=%.9f", op.Label, op.HITs, op.Assignments, op.Makespan))
	}
	// Operators append in completion order, which may vary when crowd
	// operators run on concurrent subtrees; the determinism claim is
	// about the set of per-operator spending, so compare it sorted.
	sort.Strings(ops)
	for _, op := range ops {
		sb.WriteString(op + "\n")
	}
	fmt.Fprintf(&sb, "totalHITs=%d incomplete=%v\n", stats.TotalHITs(), stats.Incomplete)
	return sb.String()
}

// TestQueryDeterminismAcrossGOMAXPROCS asserts the acceptance criterion
// for the parallel simulator: one query + one seed produce an identical
// result relation and identical Stats whether the process runs on a
// single core or many — scheduling order must never leak into results.
func TestQueryDeterminismAcrossGOMAXPROCS(t *testing.T) {
	base := runCelebrityQuery(t, 1)
	if !strings.Contains(base, "row ") {
		t.Fatalf("query produced no rows:\n%s", base)
	}
	for _, procs := range []int{2, 8} {
		if got := runCelebrityQuery(t, procs); got != base {
			t.Errorf("GOMAXPROCS=%d diverged from GOMAXPROCS=1:\n--- procs=1\n%s--- procs=%d\n%s", procs, base, procs, got)
		}
	}
	// And re-running at the same width is stable too.
	if a, b := runCelebrityQuery(t, 8), runCelebrityQuery(t, 8); a != b {
		t.Error("same-width reruns diverged")
	}
}

// TestAdaptiveFilterDeterminism pins the sharded adaptive-vote pipeline:
// shard count is configuration, so results are identical at any core
// count.
func TestAdaptiveFilterDeterminism(t *testing.T) {
	run := func(procs int) string {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		d := NewCelebrities(CelebrityConfig{N: 30, Seed: 13})
		m := NewSimMarket(DefaultMarketConfig(13), d.Oracle())
		res, err := RunAdaptiveFilter(d.Celeb, IsFemaleTask(), VoteConfig{}, m)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v %v %d %d %d", res.Decisions, res.VotesUsed, res.Rounds, res.HITCount, res.TotalAssignments)
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("adaptive filter diverged across GOMAXPROCS:\n%s\nvs\n%s", a, b)
	}
}
