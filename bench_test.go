package qurk

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation. Each bench regenerates its experiment (Quick scale, which
// preserves every comparative claim at ~2–3× smaller datasets; run
// cmd/experiments for the paper-scale numbers) and reports the headline
// quantities as custom metrics so `go test -bench` output doubles as a
// results table.
//
// Absolute wall-clock numbers measure the simulator, not a live crowd;
// the paper-comparable outputs are the custom metrics (HITs, τ, κ,
// reduction factors).

import (
	"testing"

	"qurk/internal/experiment"
)

func benchConfig() experiment.Config {
	return experiment.Config{Seed: 42, Scale: experiment.Quick}
}

// BenchmarkTable1BaselineJoin regenerates Table 1: the three unbatched
// join implementations all land within a pair of ideal.
func BenchmarkTable1BaselineJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := r.Rows[len(r.Rows)-1]
			b.ReportMetric(float64(last.TruePosQA)/float64(r.N), "TPrate_QA")
			b.ReportMetric(float64(last.TrueNegQA)/float64(last.NonMatches), "TNrate_QA")
		}
	}
}

// BenchmarkFigure3JoinBatching regenerates Figure 3: batching vs
// accuracy under MV and QA.
func BenchmarkFigure3JoinBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Figure3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				if row.Variant == "Naive 10" {
					b.ReportMetric(float64(row.TruePosQA)/float64(row.Matches), "naive10_TP_QA")
					b.ReportMetric(float64(row.HITs), "naive10_HITs")
				}
			}
		}
	}
}

// BenchmarkFigure4JoinLatency regenerates Figure 4: completion-time
// percentiles across join variants.
func BenchmarkFigure4JoinLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Figure4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				if row.Variant == "Simple" && len(row.TrialP100) > 0 {
					b.ReportMetric(row.TrialP100[0], "simple_makespan_h")
					b.ReportMetric(row.TrialP50[0], "simple_p50_h")
				}
			}
		}
	}
}

// BenchmarkSec333WorkerRegression regenerates the §3.3.3 regression:
// tasks-completed explains almost none of worker accuracy.
func BenchmarkSec333WorkerRegression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.WorkerAccuracyRegression(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Fit.R2, "R2")
		}
	}
}

// BenchmarkTable2FeatureFiltering regenerates Table 2: errors, saved
// comparisons, and join cost under feature filtering.
func BenchmarkTable2FeatureFiltering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			row := r.Rows[0]
			b.ReportMetric(float64(row.SavedComparisons), "saved")
			b.ReportMetric(float64(row.Errors), "errors")
		}
	}
}

// BenchmarkTable3LeaveOneOut regenerates Table 3: per-feature
// leave-one-out error/savings analysis.
func BenchmarkTable3LeaveOneOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				if row.Omitted == "hair" {
					b.ReportMetric(float64(row.Errors), "errors_wo_hair")
				}
			}
		}
	}
}

// BenchmarkTable4FeatureKappa regenerates Table 4: per-feature Fleiss κ
// with 25% sampling.
func BenchmarkTable4FeatureKappa(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				if row.SampleFrac == 1 && row.Combined && row.Trial == 1 {
					b.ReportMetric(row.Gender, "gender_kappa")
					b.ReportMetric(row.Hair, "hair_kappa")
				}
			}
		}
	}
}

// BenchmarkSec422CompareBatching regenerates the comparison-batching
// microbenchmark: τ=1 at S=5,10; S=20 refused.
func BenchmarkSec422CompareBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.SquareCompareBatching(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				if row.GroupSize == 5 {
					b.ReportMetric(row.Tau, "tau_s5")
					b.ReportMetric(float64(row.HITs), "HITs_s5")
				}
			}
		}
	}
}

// BenchmarkSec422RateBatching regenerates the rating-batching sweep:
// τ ≈ 0.78 regardless of batch size.
func BenchmarkSec422RateBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.SquareRateBatching(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.MeanTau, "mean_tau")
			b.ReportMetric(r.StdTau, "std_tau")
		}
	}
}

// BenchmarkSec422RateGranularity regenerates the granularity sweep:
// τ stable from 20 to 50 items on a 7-point scale.
func BenchmarkSec422RateGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.SquareRateGranularity(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.MeanTau, "mean_tau")
		}
	}
}

// BenchmarkFigure6AmbiguityMetrics regenerates Figure 6: τ and modified
// κ falling across Q1…Q5.
func BenchmarkFigure6AmbiguityMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Figure6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Rows[0].Kappa, "Q1_kappa")
			b.ReportMetric(r.Rows[4].Kappa, "Q5_kappa")
			b.ReportMetric(r.Rows[0].Tau, "Q1_tau")
			b.ReportMetric(r.Rows[4].Tau, "Q5_tau")
		}
	}
}

// BenchmarkFigure7HybridSort regenerates Figure 7: hybrid τ
// trajectories vs HITs.
func BenchmarkFigure7HybridSort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Figure7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.FinalTau("Window 6"), "window6_final_tau")
			b.ReportMetric(float64(r.CompareHITs), "compare_HITs")
			b.ReportMetric(float64(r.RateHITs), "rate_HITs")
		}
	}
}

// BenchmarkSec424AnimalsHybrid regenerates the §4.2.4 animals hybrid:
// τ 0.76 → 0.90 in 20 iterations.
func BenchmarkSec424AnimalsHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.AnimalsHybrid(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.StartTau, "start_tau")
			b.ReportMetric(r.EndTau, "end_tau")
		}
	}
}

// BenchmarkTable5EndToEnd regenerates Table 5: the 14.5× HIT reduction
// on the end-to-end movie query.
func BenchmarkTable5EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Reduction(), "reduction_x")
			b.ReportMetric(float64(r.TotalUnoptimized), "unoptimized_HITs")
			b.ReportMetric(float64(r.TotalOptimized), "optimized_HITs")
		}
	}
}

// BenchmarkCostNarrative regenerates the §3.4 walk-down:
// $67.50 → $27 → $2.70.
func BenchmarkCostNarrative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.CostNarrative(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.UnfilteredDollars/r.BatchedDollars, "reduction_x")
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkSimMarketJoinRound measures raw simulator throughput on a
// 100-pair join round.
func BenchmarkSimMarketJoinRound(b *testing.B) {
	d := NewCelebrities(CelebrityConfig{N: 10, Seed: 1})
	left, right := d.Celeb.Qualify("c"), d.Photos.Qualify("p")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewSimMarket(DefaultMarketConfig(int64(i)), d.Oracle())
		if _, err := RunCrossJoin(left, right, SamePersonTask(),
			JoinOptions{Algorithm: NaiveJoin, BatchSize: 5}, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQualityAdjustEM measures the Dawid-Skene EM combiner on a
// 500-question, 20-worker corpus.
func BenchmarkQualityAdjustEM(b *testing.B) {
	d := NewCelebrities(CelebrityConfig{N: 20, Seed: 1})
	left, right := d.Celeb.Qualify("c"), d.Photos.Qualify("p")
	m := NewSimMarket(DefaultMarketConfig(1), d.Oracle())
	res, err := RunCrossJoin(left, right, SamePersonTask(), JoinOptions{Algorithm: NaiveJoin, BatchSize: 5}, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qa := NewQualityAdjust(DefaultQAConfig())
		if _, err := qa.Combine(res.Votes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKendallTau measures τ-b on 1000-element rankings.
func BenchmarkKendallTau(b *testing.B) {
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64((i * 37) % 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KendallTauB(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryParse measures the parser on the paper's end-to-end
// query.
func BenchmarkQueryParse(b *testing.B) {
	src := `
SELECT name, scenes.img
FROM actors JOIN scenes
ON inScene(actors.img, scenes.img)
AND POSSIBLY numInScene(scenes.img) = 1
ORDER BY name, quality(scenes.img)`
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(src); err != nil {
			b.Fatal(err)
		}
	}
}
