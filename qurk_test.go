package qurk

import (
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quick start does.
func TestFacadeEndToEnd(t *testing.T) {
	d := NewCelebrities(CelebrityConfig{N: 20, Seed: 1})
	market := NewSimMarket(DefaultMarketConfig(1), d.Oracle())
	eng := NewEngine(market, Options{})
	eng.Catalog.Register(d.Celeb)
	eng.Library.MustRegister(IsFemaleTask())

	out, stats, err := RunQuery(eng, `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 || out.Len() == 20 {
		t.Errorf("filter should split the table, got %d rows", out.Len())
	}
	if stats.TotalHITs() == 0 {
		t.Error("no HITs posted")
	}
	if DollarCost(stats.TotalHITs(), 5) <= 0 {
		t.Error("cost should be positive")
	}
}

func TestFacadeExplain(t *testing.T) {
	d := NewCelebrities(CelebrityConfig{N: 5, Seed: 2})
	eng := NewEngine(NewSimMarket(DefaultMarketConfig(2), d.Oracle()), Options{})
	eng.Catalog.Register(d.Celeb)
	eng.Catalog.Register(d.Photos)
	eng.Library.MustRegister(SamePersonTask())
	eng.Library.MustRegister(GenderTask())
	plan, err := Explain(eng, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CrowdJoin", "gender", "Scan"} {
		if !strings.Contains(plan, want) {
			t.Errorf("explain missing %q:\n%s", want, plan)
		}
	}
	if _, err := Explain(eng, "not a query"); err == nil {
		t.Error("explain should surface parse errors")
	}
}

func TestFacadeDirectOperators(t *testing.T) {
	sq := NewSquares(10)
	market := NewSimMarket(DefaultMarketConfig(3), sq.Oracle())
	cr, err := Compare(sq.Rel, SquareSorterTask(), CompareOptions{GroupSize: 5, Assignments: 5}, market)
	if err != nil {
		t.Fatal(err)
	}
	tau, err := TauBetweenOrders(cr.Order, sq.TrueOrder())
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.95 {
		t.Errorf("compare tau = %.3f", tau)
	}
	rr, err := Rate(sq.Rel, SquareSorterTask(), RateOptions{}, market)
	if err != nil {
		t.Fatal(err)
	}
	if rr.HITCount >= cr.HITCount {
		t.Error("rate should be cheaper than compare")
	}
}

func TestFacadeTaskDSL(t *testing.T) {
	script, err := ParseScript(`
TASK isFemale(field) TYPE Filter:
	Prompt: "<img src='%s'> Is the person a woman?", tuple[field]
	YesText: "Yes"
	NoText: "No"
	Combiner: MajorityVote

SELECT c.name FROM celeb AS c WHERE isFemale(c.img);
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Tasks) != 1 || len(script.Queries) != 1 {
		t.Fatalf("script shape: %d tasks, %d queries", len(script.Tasks), len(script.Queries))
	}
	d := NewCelebrities(CelebrityConfig{N: 10, Seed: 4})
	eng := NewEngine(NewSimMarket(DefaultMarketConfig(4), d.Oracle()), Options{})
	eng.Catalog.Register(d.Celeb)
	if err := eng.Library.LoadScript(script); err != nil {
		t.Fatal(err)
	}
	out, _, err := RunQuery(eng, script.Queries[0].String())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("DSL-defined filter returned nothing")
	}
}
