package qurk

// WAL overhead benchmark: the same filter query run plain vs durable.
// The journal fsyncs every record, so the interesting metric is the
// durability tax per posted HIT, reported as overhead_pct against the
// plain run.

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
)

// BenchmarkWALOverhead measures a durable run (intent + result record
// per HIT group, fsync on each commit) against the same query without
// a journal.
func BenchmarkWALOverhead(b *testing.B) {
	d := NewCelebrities(CelebrityConfig{N: 60, Seed: 7})
	build := func() *Engine {
		eng := NewEngine(NewSimMarket(DefaultMarketConfig(7), d.Oracle()), Options{})
		eng.Catalog.Register(d.Celeb)
		eng.Library.MustRegister(IsFemaleTask())
		return eng
	}
	const query = `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`
	dir := b.TempDir()

	var plainNs, durableNs int64
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := RunQuery(build(), query); err != nil {
				b.Fatal(err)
			}
		}
		plainNs = b.Elapsed().Nanoseconds() / int64(b.N)
	})
	b.Run("durable", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			path := filepath.Join(dir, fmt.Sprintf("b%d-%d.qjl", b.N, i))
			if _, _, err := RunQueryDurable(ctx, build(), query, path); err != nil {
				b.Fatal(err)
			}
		}
		durableNs = b.Elapsed().Nanoseconds() / int64(b.N)
		if plainNs > 0 {
			b.ReportMetric(100*float64(durableNs-plainNs)/float64(plainNs), "overhead_pct")
		}
	})
}
