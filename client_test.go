package qurk

import (
	"context"
	"errors"
	"testing"
)

const clientTestQuery = `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`

// newTestClient wires a client over the celebrity dataset and a fresh
// simulated crowd, with any extra options appended.
func newTestClient(n int, seed int64, extra ...ClientOption) *Client {
	d := NewCelebrities(CelebrityConfig{N: n, Seed: seed})
	market := NewSimMarket(DefaultMarketConfig(seed), d.Oracle())
	opts := []ClientOption{WithOptions(Options{Assignments: 3, FilterBatch: 2})}
	opts = append(opts, extra...)
	c := NewClient(market, opts...)
	c.Engine().Catalog.Register(d.Celeb)
	c.Engine().Library.MustRegister(IsFemaleTask())
	return c
}

// TestClientRunStream checks that the streaming run delivers every
// result row through the sink before returning, and that the final
// relation matches what the sink saw.
func TestClientRunStream(t *testing.T) {
	c := newTestClient(16, 3)
	var streamed int
	out, stats, err := c.RunStream(context.Background(), clientTestQuery,
		func(tuples []Tuple, ready float64) error {
			streamed += len(tuples)
			if ready < 0 || ready > 1 {
				t.Errorf("ready fraction %f out of range", ready)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != out.Len() {
		t.Fatalf("sink saw %d rows, relation has %d", streamed, out.Len())
	}
	if out.Len() == 0 || stats.TotalHITs() == 0 {
		t.Fatalf("stream run produced %d rows / %d HITs", out.Len(), stats.TotalHITs())
	}
}

// TestClientBudget: a client budget is enforced mid-run — the query
// fails with ErrBudgetExceeded once posting would overdraft, and the
// ledger never exceeds the cap.
func TestClientBudget(t *testing.T) {
	c := newTestClient(20, 3, WithBudget(0.02))
	_, _, err := c.Run(context.Background(), clientTestQuery)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Run err = %v, want ErrBudgetExceeded", err)
	}
	if spent := c.SpentDollars(); spent > 0.02 {
		t.Fatalf("spent $%.3f over the $0.02 budget", spent)
	}

	// An unconstrained client runs the same query to completion.
	free := newTestClient(20, 3)
	if _, _, err := free.Run(context.Background(), clientTestQuery); err != nil {
		t.Fatal(err)
	}
}

// TestClientSharedAnswerStore: two independent clients sharing one
// answer store — the second client's identical query posts nothing.
func TestClientSharedAnswerStore(t *testing.T) {
	store, err := OpenAnswerStore("", AnswerStorePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	first := newTestClient(14, 5, WithAnswerStore(store))
	out1, stats1, err := first.Run(context.Background(), clientTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.TotalHITs() == 0 {
		t.Fatal("first client posted no HITs")
	}

	second := newTestClient(14, 5, WithAnswerStore(store))
	out2, stats2, err := second.Run(context.Background(), clientTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.TotalHITs() != 0 {
		t.Fatalf("second client posted %d HITs, want 0 (shared store)", stats2.TotalHITs())
	}
	if stats2.TotalReused() == 0 {
		t.Fatal("second client reused no stored answers")
	}
	if out1.Len() != out2.Len() {
		t.Fatalf("results diverge: %d rows vs %d", out1.Len(), out2.Len())
	}
}
