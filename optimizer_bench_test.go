package qurk

// Optimizer benchmarks: the planner pass must stay cheap relative to
// the crowd work it prices. These feed BENCH_baseline.json so the
// cmd/bench -compare gate covers planning-time regressions.

import (
	"fmt"
	"strings"
	"testing"
)

func benchEngine(b *testing.B, n int) *Engine {
	b.Helper()
	d := NewCelebrities(CelebrityConfig{N: n, Seed: 1})
	eng := NewEngine(NewSimMarket(DefaultMarketConfig(1), d.Oracle()), Options{})
	eng.Catalog.Register(d.Celeb)
	eng.Catalog.Register(d.Photos)
	eng.Library.MustRegister(IsFemaleTask())
	eng.Library.MustRegister(SamePersonTask())
	eng.Library.MustRegister(GenderTask())
	eng.Library.MustRegister(HairColorTask())
	eng.Library.MustRegister(SkinColorTask())
	return eng
}

// BenchmarkOptimizerJoinPlan prices the celebrity join's full
// alternative space (3 algorithms × shapes × prefilter on/off).
func BenchmarkOptimizerJoinPlan(b *testing.B) {
	eng := benchEngine(b, 30)
	src := `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
AND POSSIBLY hairColor(c.img) = hairColor(p.img)
AND POSSIBLY skinColor(c.img) = skinColor(p.img)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp, err := Optimize(eng, src, 10)
		if err != nil {
			b.Fatal(err)
		}
		if cp.TotalHITs == 0 {
			b.Fatal("empty estimate")
		}
	}
}

// BenchmarkOptimizerSortPlan prices the sort alternatives including
// the exact comparison group cover at 40 items.
func BenchmarkOptimizerSortPlan(b *testing.B) {
	sq := NewSquares(40)
	eng := NewEngine(NewSimMarket(DefaultMarketConfig(2), sq.Oracle()), Options{})
	eng.Catalog.Register(sq.Rel)
	eng.Library.MustRegister(SquareSorterTask())
	src := `SELECT label FROM squares ORDER BY squareSorter(img)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(eng, src, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerExplain renders the full costed plan for a mixed
// filter + join + budget query — the interactive EXPLAIN path.
func BenchmarkOptimizerExplain(b *testing.B) {
	eng := benchEngine(b, 30)
	src := `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img) WHERE isFemale(c.img)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Explain(eng, src, ExplainOptions{BudgetDollars: 5})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty explain")
		}
	}
}

// BenchmarkOptimizedQueryRun runs an optimizer-annotated celebrity
// join end to end on the simulator, reporting the chosen plan's cost.
func BenchmarkOptimizedQueryRun(b *testing.B) {
	src := `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`
	var hits int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := benchEngine(b, 20)
		cp, err := Optimize(eng, src, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_, stats, err := RunPlan(eng, cp.Root)
		if err != nil {
			b.Fatal(err)
		}
		hits = stats.TotalHITs()
	}
	b.ReportMetric(float64(hits), "HITs")
}

// TestExplainEstVsActual closes the §6 loop at the facade: optimize,
// run, and render estimated vs actual HITs per operator.
func TestExplainEstVsActual(t *testing.T) {
	d := NewCelebrities(CelebrityConfig{N: 20, Seed: 4})
	eng := NewEngine(NewSimMarket(DefaultMarketConfig(4), d.Oracle()), Options{})
	eng.Catalog.Register(d.Celeb)
	eng.Library.MustRegister(IsFemaleTask())
	src := `SELECT c.name FROM celeb c WHERE isFemale(c.img)`

	cp, err := Optimize(eng, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := RunPlan(eng, cp.Root)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Explain(eng, src, ExplainOptions{Actual: stats})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("actual %d HITs", stats.TotalHITs())
	if !strings.Contains(out, want) {
		t.Errorf("explain missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "est 4 HITs") {
		t.Errorf("explain missing estimate:\n%s", out)
	}
}
