// Package qurk is a Go implementation of Qurk, the crowd-powered
// declarative query processor from "Human-powered Sorts and Joins"
// (Marcus, Wu, Karger, Madden, Miller — PVLDB 5(1), 2011).
//
// Qurk runs SQL-like queries whose filter, join, and sort operators are
// executed by a crowd marketplace. This package is the public facade: it
// re-exports the pieces a downstream user needs — the engine, the task
// templates, the simulated marketplace, the crowd operators, and the
// paper's datasets — while the implementations live in internal/
// packages.
//
// # Quick start
//
//	d := qurk.NewCelebrities(qurk.CelebrityConfig{N: 30, Seed: 1})
//	market := qurk.NewSimMarket(qurk.DefaultMarketConfig(1), d.Oracle())
//	eng := qurk.NewEngine(market, qurk.Options{})
//	eng.Catalog.Register(d.Celeb)
//	eng.Library.MustRegister(qurk.IsFemaleTask())
//	out, stats, err := qurk.RunQuery(eng,
//	    `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`)
//
// Queries support the paper's dialect: crowd UDFs in WHERE (Filter
// tasks), JOIN ... ON (EquiJoin tasks) with POSSIBLY feature filters
// (Generative tasks), and ORDER BY (Rank tasks, executed by comparison,
// rating, or the hybrid algorithm). TASK templates can also be written
// in the paper's DSL and parsed with ParseScript.
package qurk

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"

	"qurk/internal/adaptive"
	"qurk/internal/combine"
	"qurk/internal/core"
	"qurk/internal/cost"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/exec"
	"qurk/internal/hit"
	"qurk/internal/join"
	"qurk/internal/mturk"
	"qurk/internal/obstats"
	"qurk/internal/plan"
	"qurk/internal/query"
	"qurk/internal/relation"
	"qurk/internal/sortop"
	"qurk/internal/stats"
	"qurk/internal/task"
	"qurk/internal/wal"
)

// --- Relational substrate ---

type (
	// Relation is an in-memory table.
	Relation = relation.Relation
	// Schema describes a relation's columns.
	Schema = relation.Schema
	// Column is one schema attribute.
	Column = relation.Column
	// Tuple is one row.
	Tuple = relation.Tuple
	// Value is a dynamically typed scalar.
	Value = relation.Value
	// Catalog is a named table collection.
	Catalog = relation.Catalog
	// LoadOptions controls CSV/TSV loading.
	LoadOptions = relation.LoadOptions
)

// Value and schema constructors.
var (
	NewSchema   = relation.NewSchema
	MustSchema  = relation.MustSchema
	NewRelation = relation.New
	NewTuple    = relation.NewTuple
	Text        = relation.Text
	Int         = relation.Int
	Float       = relation.Float
	Bool        = relation.Bool
	URL         = relation.URL
	Unknown     = relation.Unknown
	LoadFile    = relation.LoadFile
)

// Column kinds.
const (
	KindText  = relation.KindText
	KindInt   = relation.KindInt
	KindFloat = relation.KindFloat
	KindBool  = relation.KindBool
	KindURL   = relation.KindURL
)

// --- Task templates (paper §2.1–§2.4) ---

type (
	// Task is the common template interface.
	Task = task.Task
	// FilterTask is a yes/no question per tuple.
	FilterTask = task.Filter
	// GenerativeTask produces field values per tuple.
	GenerativeTask = task.Generative
	// RankTask labels the sort interfaces.
	RankTask = task.Rank
	// EquiJoinTask labels the join interfaces.
	EquiJoinTask = task.EquiJoin
	// TaskField is one generative output field.
	TaskField = task.Field
	// Prompt is an HTML snippet with tuple substitutions.
	Prompt = task.Prompt
)

// Prompt and response constructors.
var (
	NewPrompt  = task.NewPrompt
	MustPrompt = task.MustPrompt
	TextInput  = task.TextInput
	Radio      = task.Radio
)

// --- Crowd marketplace ---

type (
	// Marketplace abstracts the crowd backend (sync + async posting).
	Marketplace = crowd.Marketplace
	// StreamMarketplace additionally delivers per-HIT results as they
	// complete, so callers can overlap vote aggregation with HITs
	// still in flight.
	StreamMarketplace = crowd.StreamMarketplace
	// MarketAsync is the outcome RunAsync delivers.
	MarketAsync = crowd.Async
	// SimMarket is the parallel deterministic marketplace simulator.
	SimMarket = crowd.SimMarket
	// MarketConfig parametrizes the simulator.
	MarketConfig = crowd.Config
	// Oracle supplies ground truth to the simulator.
	Oracle = crowd.Oracle
	// Worker is one simulated Turker.
	Worker = crowd.Worker
	// HIT is one posted unit of crowd work.
	HIT = hit.HIT
	// Assignment is one worker's completed HIT pass.
	Assignment = hit.Assignment
)

var (
	// NewSimMarket builds a simulated marketplace over an oracle.
	NewSimMarket = crowd.NewSimMarket
	// DefaultMarketConfig returns the calibrated simulator defaults.
	DefaultMarketConfig = crowd.DefaultConfig
	// StreamRun posts a group and feeds per-HIT results to a callback
	// as they complete, on any Marketplace.
	StreamRun = crowd.Stream
)

// --- Live MTurk backend (internal/mturk) ---

type (
	// MTurkClient posts HIT groups to a live MTurk-compatible REST
	// endpoint; it implements Marketplace and StreamMarketplace, so an
	// engine built over it runs the same queries as over SimMarket.
	MTurkClient = mturk.Client
	// MTurkConfig parametrizes the live client (endpoint, credentials,
	// poll interval, assignment deadline).
	MTurkConfig = mturk.Config
	// MTurkOptions is the engine-level backend configuration embedded
	// in Options (Options.MTurk); mturk.FromOptions turns it into a
	// MTurkConfig.
	MTurkOptions = core.MTurkOptions
	// MTurkFakeServer is the in-process MTurk-compatible endpoint used
	// for recorded-HTTP tests and offline demos.
	MTurkFakeServer = mturk.FakeServer
	// MTurkFakeConfig parametrizes the fake marketplace's deterministic
	// worker behavior (answer policy, abandonment rate).
	MTurkFakeConfig = mturk.FakeConfig
	// MTurkClock abstracts wall time for the polling client.
	MTurkClock = mturk.Clock
	// MTurkFakeClock is a manually advancing clock for offline runs.
	MTurkFakeClock = mturk.FakeClock
	// MTurkRequestError is a failed MTurk API call.
	MTurkRequestError = mturk.RequestError
)

// MTurk endpoint URLs.
const (
	// MTurkSandboxEndpoint is the free requester sandbox (the default).
	MTurkSandboxEndpoint = mturk.SandboxEndpoint
	// MTurkProductionEndpoint posts HITs that cost real dollars.
	MTurkProductionEndpoint = mturk.ProductionEndpoint
)

var (
	// NewMTurkClient builds the live backend client.
	NewMTurkClient = mturk.New
	// MTurkFromOptions derives a client config from engine options.
	MTurkFromOptions = mturk.FromOptions
	// NewMTurkFakeServer starts the in-process fake endpoint.
	NewMTurkFakeServer = mturk.NewFakeServer
	// NewMTurkFakeClock starts a manually advancing clock.
	NewMTurkFakeClock = mturk.NewFakeClock
)

// --- Engine and query execution ---

type (
	// Engine bundles catalog, task library, marketplace, cache, and
	// cost ledger.
	Engine = core.Engine
	// Options are the engine-wide execution knobs.
	Options = core.Options
	// ReplanOptions controls adaptive mid-query re-optimization
	// (Options.Replan).
	ReplanOptions = core.ReplanOptions
	// Library resolves UDF names to task templates.
	Library = core.Library
	// ExecStats aggregates a query run's crowd spending, including the
	// pipelined end-to-end makespan on the virtual crowd clock.
	ExecStats = exec.Stats
	// StreamOperator is one node of the streaming Volcano executor: a
	// pull-based iterator over tuple batches.
	StreamOperator = exec.Operator
	// StreamBatch is a bounded run of tuples stamped with the simulated
	// crowd clock at which its rows became available.
	StreamBatch = exec.Batch
	// BreakerInfo describes one pipeline-breaking buffer machine-
	// readably: what it holds, its in-memory tuple bound, and whether
	// it spills to disk past the bound.
	BreakerInfo = exec.BreakerInfo
	// OpBreakers pairs an operator's display label with its breakers,
	// as returned by PipelineBreakers.
	OpBreakers = exec.OpBreakers
	// SortMethod selects the ORDER BY implementation.
	SortMethod = core.SortMethod
	// Ledger accounts HIT spending in dollars.
	Ledger = cost.Ledger
)

// Sort method constants.
const (
	SortCompare = core.SortCompare
	SortRate    = core.SortRate
	SortHybrid  = core.SortHybrid
)

var (
	// NewEngine creates an engine over a marketplace.
	NewEngine = core.NewEngine
	// RunPlan executes an already-built plan tree.
	RunPlan = exec.RunPlan
	// RunPlanContext is RunPlan with cooperative cancellation.
	RunPlanContext = exec.RunPlanContext
	// CompilePlan builds the streaming operator tree without executing
	// it; DescribePipeline renders it with pipeline breakers marked.
	CompilePlan = exec.Compile
	// DescribePipeline renders a compiled operator tree, marking each
	// pipeline breaker with its memory bound ("spills at N tuples"
	// when Options.BreakerMemTuples is set).
	DescribePipeline = exec.Describe
	// PipelineBreakers lists a compiled operator tree's breakers
	// machine-readably (kind, in-memory tuple bound, whether it
	// spills) — the structured companion to DescribePipeline.
	PipelineBreakers = exec.PipelineBreakers
	// ParseQuery parses a query without executing it.
	ParseQuery = query.ParseQuery
	// ParseScript parses TASK definitions plus queries.
	ParseScript = query.ParseScript
	// BuildPlan compiles a statement against a task library.
	BuildPlan = plan.Build
	// ExplainPlan renders a plan tree (logical only; Explain adds the
	// optimizer's costed choices).
	ExplainPlan = plan.Explain
	// OptimizePlan runs cost-based operator selection over a built plan
	// tree with explicit cardinalities and options.
	OptimizePlan = plan.Optimize
	// OptimizeOptionsFrom seeds optimizer options from engine options.
	OptimizeOptionsFrom = plan.OptimizeOptionsFrom
)

// RunQuery parses, plans, and executes one query string on the
// streaming Volcano executor.
//
// Deprecated: construct a Client and use Client.Run; this wrapper
// remains for compatibility.
func RunQuery(e *Engine, src string) (*Relation, *ExecStats, error) {
	return exec.RunQuery(e, src)
}

// RunQueryContext is RunQuery with cooperative cancellation: when ctx
// is done, operators stop posting HITs and unwind promptly.
//
// Deprecated: construct a Client and use Client.Run; this wrapper
// remains for compatibility.
func RunQueryContext(ctx context.Context, e *Engine, src string) (*Relation, *ExecStats, error) {
	return exec.RunQueryContext(ctx, e, src)
}

// Cost-based optimizer types (paper §2.6's minimize-HITs objective over
// the §3/§4 interface choices).
type (
	// CostedPlan is the optimizer's annotated plan plus estimates.
	CostedPlan = plan.CostedPlan
	// OpCost is one crowd operator's costed choice.
	OpCost = plan.OpCost
	// OptimizeOptions parametrizes the optimizer pass.
	OptimizeOptions = plan.OptimizeOptions
	// CardSource supplies base-table cardinalities (Catalog implements it).
	CardSource = plan.CardSource
	// CardMap is a literal CardSource.
	CardMap = plan.CardMap
	// JoinPhys, SortPhys, and BatchPhys are per-node physical choices.
	JoinPhys  = plan.JoinPhys
	SortPhys  = plan.SortPhys
	BatchPhys = plan.BatchPhys
)

// ExplainOptions configures Explain's cost-based pass.
type ExplainOptions struct {
	// BudgetDollars constrains the optimizer's total crowd spend
	// (0 = unconstrained).
	BudgetDollars float64
	// Actual, when set, renders each crowd operator's actual posted
	// HITs from an executed run next to its estimate — the paper's §6
	// iterative-debugging loop (estimate, run, compare, recalibrate).
	Actual *ExecStats
}

// Explain parses a query, runs the cost-based optimizer against the
// engine's catalog cardinalities and options, and renders the costed
// physical plan: each crowd operator's chosen interface (join
// Simple/NaiveBatch/SmartBatch, POSSIBLY pre-filter on/off, sort
// Compare/Rate/Hybrid), its estimated HITs, dollars, and quality, and
// the plan totals against the budget — a SQL EXPLAIN for crowd queries.
func Explain(e *Engine, src string, opts ...ExplainOptions) (string, error) {
	var eo ExplainOptions
	if len(opts) > 0 {
		eo = opts[0]
	}
	cp, err := Optimize(e, src, eo.BudgetDollars)
	if err != nil {
		return "", err
	}
	if eo.Actual == nil {
		return cp.Render(), nil
	}
	var actual []plan.OpActual
	for _, op := range eo.Actual.Operators {
		actual = append(actual, plan.OpActual{Label: op.Label, HITs: op.HITs})
	}
	// Fold in the run's observed statistics (selectivities, POSSIBLY
	// pass fractions, sort group sizes) so est-vs-actual shows what the
	// crowd measured, not just how many HITs it cost.
	for _, ob := range eo.Actual.ObservedStats() {
		oa := plan.OpActual{Label: ob.Label}
		switch ob.Kind {
		case obstats.KindSelectivity:
			oa.Selectivity, oa.SelectivityWeight = ob.Value, ob.Weight
		case obstats.KindPassFraction:
			oa.PassFraction, oa.PassFractionWeight = ob.Value, ob.Weight
		case obstats.KindGroupSize:
			oa.GroupSize, oa.GroupSizeWeight = ob.Value, ob.Weight
		default:
			continue
		}
		actual = append(actual, oa)
	}
	return cp.RenderWithActual(actual), nil
}

// Optimize parses and plans a query, then runs the cost-based operator
// selection pass against the engine's catalog cardinalities: the
// returned CostedPlan's Root carries the chosen physical interfaces
// and executes them via RunPlan. budgetDollars 0 means unconstrained.
func Optimize(e *Engine, src string, budgetDollars float64) (*CostedPlan, error) {
	stmt, err := query.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	node, err := plan.Build(stmt, e.Library)
	if err != nil {
		return nil, err
	}
	po := plan.OptimizeOptionsFrom(e.Options, budgetDollars)
	if e.ObStats != nil {
		// Seed estimates from observed history: the engine's stats store
		// supplies weighted means of past runs' measured selectivities,
		// pass fractions, and group sizes, blended with the priors.
		po.Stats = e.ObStats
	}
	return plan.Optimize(node, e.Catalog, po)
}

// --- Direct operator access (paper §3 and §4) ---

type (
	// JoinOptions configures a crowd join run.
	JoinOptions = join.Options
	// JoinAlgorithm selects Simple/Naive/Smart.
	JoinAlgorithm = join.Algorithm
	// JoinResult is a crowd join outcome.
	JoinResult = join.Result
	// JoinPair is one candidate pair.
	JoinPair = join.Pair
	// JoinPairSeq streams candidate pairs into HIT batching without
	// materializing the cross product.
	JoinPairSeq = join.PairSeq
	// JoinMatch is one accepted pair with confidence.
	JoinMatch = join.Match
	// Feature is one POSSIBLY feature filter.
	Feature = join.Feature
	// ExtractOptions configures a feature-extraction pass.
	ExtractOptions = join.ExtractOptions
	// Extraction holds combined feature values for one relation.
	Extraction = join.Extraction
	// SelectionConfig holds the feature-pruning thresholds (§3.2).
	SelectionConfig = join.SelectionConfig
	// FeatureVerdict explains one feature's selection decision.
	FeatureVerdict = join.FeatureVerdict
	// FilteredJoinResult is a filtered join with extraction costs.
	FilteredJoinResult = join.FilteredResult
	// CompareOptions configures a comparison sort.
	CompareOptions = sortop.CompareOptions
	// RateOptions configures a rating sort.
	RateOptions = sortop.RateOptions
	// HybridOptions configures the hybrid sort.
	HybridOptions = sortop.HybridOptions
	// MaxOptions configures the MAX/MIN tournament.
	MaxOptions = sortop.MaxOptions
	// CompareResult is a comparison sort outcome.
	CompareResult = sortop.CompareResult
	// RateResult is a rating sort outcome.
	RateResult = sortop.RateResult
	// HybridResult is a hybrid sort outcome.
	HybridResult = sortop.HybridResult
	// WindowStrategy selects the hybrid window scheme.
	WindowStrategy = sortop.WindowStrategy
	// FilterOptions configures a crowd filter pass.
	FilterOptions = core.FilterOptions
	// Combiner merges multiple worker votes.
	Combiner = combine.Combiner
	// MajorityVote is the paper's default combiner.
	MajorityVote = combine.MajorityVote
	// QualityAdjust is the Ipeirotis et al. EM combiner.
	QualityAdjust = combine.QualityAdjust
)

// Join algorithms.
const (
	SimpleJoin = join.Simple
	NaiveJoin  = join.Naive
	SmartJoin  = join.Smart
)

// Hybrid window strategies.
const (
	RandomWindow     = sortop.RandomWindow
	ConfidenceWindow = sortop.ConfidenceWindow
	SlidingWindow    = sortop.SlidingWindow
)

var (
	// RunJoin executes a crowd join over explicit candidate pairs.
	RunJoin = join.Run
	// RunJoinSeq executes a crowd join over streamed candidates.
	RunJoinSeq = join.RunSeq
	// RunCrossJoin joins the full cross product.
	RunCrossJoin = join.RunCross
	// RunFilteredJoin extracts features and joins the survivors.
	RunFilteredJoin = join.RunFiltered
	// ExtractFeatures runs the feature-extraction linear pass.
	ExtractFeatures = join.Extract
	// ExtractFeaturesBoth runs both sides' passes concurrently.
	ExtractFeaturesBoth = join.ExtractBoth
	// ChooseFeatures applies the paper's three feature-pruning rules.
	ChooseFeatures = join.ChooseFeatures
	// FilteredPairs prunes a cross product to feature-compatible pairs.
	FilteredPairs = join.FilteredPairs
	// FilteredPairSeq streams feature-compatible pairs.
	FilteredPairSeq = join.FilteredSeq
	// CrossPairSeq streams the full cross product.
	CrossPairSeq = join.CrossSeq
	// Compare runs the comparison-based sort.
	Compare = sortop.Compare
	// Rate runs the rating-based sort.
	Rate = sortop.Rate
	// Hybrid runs the rating-seeded, comparison-refined sort.
	Hybrid = sortop.Hybrid
	// Max runs the MAX/MIN tournament.
	Max = sortop.Max
	// TopK sorts and keeps the K greatest items.
	TopK = sortop.TopK
	// RunFilter executes a crowd filter over a relation.
	RunFilter = core.RunFilter
	// RunGenerative executes a generative task over a relation.
	RunGenerative = core.RunGenerative
	// NewQualityAdjust builds a configured QA combiner.
	NewQualityAdjust = combine.NewQualityAdjust
	// DefaultQAConfig is the paper's QA parametrization.
	DefaultQAConfig = combine.DefaultQAConfig
)

// --- Metrics (paper §3.2, §4.2) ---

var (
	// KendallTauB is the τ-b rank correlation.
	KendallTauB = stats.KendallTauB
	// TauBetweenOrders compares two item orderings.
	TauBetweenOrders = stats.TauBetweenOrders[int]
	// LinearRegression fits y = a + bx with R² and p-value.
	LinearRegression = stats.LinearRegression
)

// RatingMatrix holds categorical votes for Fleiss' κ.
type RatingMatrix = stats.RatingMatrix

// NewRatingMatrix creates an empty κ matrix.
var NewRatingMatrix = stats.NewRatingMatrix

// --- Datasets (paper §3.3.1, §4.2.1, §5) ---

type (
	// Celebrities is the celebrity join dataset.
	Celebrities = dataset.Celebrities
	// CelebrityConfig controls its generation.
	CelebrityConfig = dataset.CelebrityConfig
	// Squares is the synthetic square-sort dataset.
	Squares = dataset.Squares
	// Animals is the 27-item animal sort dataset.
	Animals = dataset.Animals
	// Movie is the end-to-end query dataset.
	Movie = dataset.Movie
	// MovieConfig controls its generation.
	MovieConfig = dataset.MovieConfig
)

// Dataset constructors.
var (
	// NewCelebrities generates the celebrity join dataset.
	NewCelebrities = dataset.NewCelebrities
	// NewSquares generates the synthetic square-sort dataset.
	NewSquares = dataset.NewSquares
	// NewAnimals returns the 27-item animal sort dataset.
	NewAnimals = dataset.NewAnimals
	// NewMovie generates the end-to-end movie dataset.
	NewMovie = dataset.NewMovie
)

// The paper's task templates, ready to register.
var (
	// IsFemaleTask is the §2.1 celebrity gender filter.
	IsFemaleTask = dataset.IsFemaleTask
	// SamePersonTask is the §3 celebrity photo join.
	SamePersonTask = dataset.SamePersonTask
	// GenderTask extracts the gender POSSIBLY feature.
	GenderTask = dataset.GenderTask
	// HairColorTask extracts the hair-color POSSIBLY feature.
	HairColorTask = dataset.HairColorTask
	// SkinColorTask extracts the skin-color POSSIBLY feature.
	SkinColorTask = dataset.SkinColorTask
	// SquareSorterTask ranks squares by size (§4.2.1's Q1).
	SquareSorterTask = dataset.SquareSorterTask
	// AnimalSizeTask ranks animals by size (Q2).
	AnimalSizeTask = dataset.AnimalSizeTask
	// DangerousTask ranks animals by dangerousness (Q3).
	DangerousTask = dataset.DangerousTask
	// SaturnTask ranks animals by Saturn-belonging (Q4, ambiguous).
	SaturnTask = dataset.SaturnTask
	// AnimalInfoTask generates animal facts (§2.2).
	AnimalInfoTask = dataset.AnimalInfoTask
	// InSceneTask joins actors with scenes (§5).
	InSceneTask = dataset.InSceneTask
	// NumInSceneTask extracts the scene's person count (§5 POSSIBLY).
	NumInSceneTask = dataset.NumInSceneTask
	// QualityTask ranks scenes by how flattering they are (§5).
	QualityTask = dataset.QualityTask
	// CelebrityFeatures returns the gender/hair/skin POSSIBLY filters.
	CelebrityFeatures = dataset.CelebrityFeatures
)

// DollarCost returns the dollar cost of posting HITs at the paper's
// pricing ($0.015 per assignment).
func DollarCost(hits, assignmentsPerHIT int) float64 {
	return cost.Dollars(hits, assignmentsPerHIT)
}

// --- Durable runs and crash recovery (internal/wal) ---

type (
	// Journal is the append-only, fsync-on-commit write-ahead journal a
	// durable run records marketplace traffic and breaker checkpoints
	// into; qurk.Resume replays it after a crash.
	Journal = wal.Journal
	// JournalMeta identifies the query a journal belongs to; Resume
	// refuses a journal whose fingerprint does not match.
	JournalMeta = wal.Meta
	// DurableMarket is the journaling Marketplace wrapper durable runs
	// post through: intent record before each group, result record
	// after, replay-from-disk on resume.
	DurableMarket = wal.Market
)

var (
	// CreateJournal starts a fresh journal file (fails if it exists).
	CreateJournal = wal.Create
	// OpenJournal opens an existing journal, truncating any torn tail
	// record left by a crash mid-write.
	OpenJournal = wal.Open
	// NewDurableMarket wraps a marketplace so every group posted
	// through it is journaled (and replayed on resume).
	NewDurableMarket = wal.NewMarket
	// ErrJournalDiverged reports that a resumed run recomputed breaker
	// state that no longer matches the journal.
	ErrJournalDiverged = wal.ErrDiverged
)

// RunQueryDurable executes one query like RunQueryContext but records
// every marketplace interaction and breaker checkpoint into a fresh
// write-ahead journal at journalPath (which must not exist yet). If
// the process crashes — or the context is cancelled — partway through,
// Resume with the same engine configuration and query picks the run
// back up with zero duplicate HIT posting: completed groups replay
// from the journal, and groups whose intent committed but whose result
// did not are re-posted, which both backends absorb idempotently
// (MTurk re-attaches to still-live HITs by UniqueRequestToken; the
// simulator re-derives the same deterministic answers). On success the
// journal is sealed "complete"; on error it is sealed with the reason
// and remains resumable.
//
// Deprecated: construct a Client with WithJournal and use Client.Run;
// this wrapper remains for compatibility.
func RunQueryDurable(ctx context.Context, e *Engine, src, journalPath string) (*Relation, *ExecStats, error) {
	return runDurable(ctx, e, src, journalPath)
}

// runDurable starts a fresh journal at journalPath and runs src
// through it (the body behind RunQueryDurable and Client.Run).
func runDurable(ctx context.Context, e *Engine, src, journalPath string) (*Relation, *ExecStats, error) {
	j, err := wal.Create(journalPath, journalMeta(e, src))
	if err != nil {
		return nil, nil, err
	}
	return runJournaled(ctx, e, src, j)
}

// journalMeta identifies a run for its journal header.
func journalMeta(e *Engine, src string) JournalMeta {
	return JournalMeta{
		Query:       src,
		Backend:     fmt.Sprintf("%T", e.Market),
		Fingerprint: queryFingerprint(e, src),
	}
}

// Resume re-executes a durable run from its journal: recorded group
// results replay from disk without touching the marketplace, breaker
// checkpoints are verified (ErrJournalDiverged on mismatch), and
// execution continues live from the last consistent frontier. The
// engine must be configured identically to the original run — same
// query, options, and backend kind — or Resume refuses the journal.
// Resuming a journal sealed "complete" simply replays the whole run
// and returns the same result.
//
// Deprecated: construct a Client with WithJournal and use
// Client.Resume; this wrapper remains for compatibility.
func Resume(ctx context.Context, e *Engine, src, journalPath string) (*Relation, *ExecStats, error) {
	return resumeJournal(ctx, e, src, journalPath)
}

// resumeJournal reopens journalPath, verifies its fingerprint, and
// re-runs src through it (the body behind Resume and Client.Resume).
func resumeJournal(ctx context.Context, e *Engine, src, journalPath string) (*Relation, *ExecStats, error) {
	j, err := wal.Open(journalPath)
	if err != nil {
		return nil, nil, err
	}
	if got, want := j.Meta().Fingerprint, queryFingerprint(e, src); got != want {
		j.Close()
		return nil, nil, fmt.Errorf("qurk: journal %s was written by a different query or engine configuration (fingerprint %#x, want %#x)", journalPath, got, want)
	}
	return runJournaled(ctx, e, src, j)
}

// runJournaled runs src on a shallow engine copy whose marketplace is
// wrapped with the journal; the copy shares the caller's ledger and
// cache so accounting lands where it always does.
func runJournaled(ctx context.Context, e *Engine, src string, j *wal.Journal) (*Relation, *ExecStats, error) {
	return runJournaledStream(ctx, e, src, j, nil)
}

// runJournaledStream is runJournaled with incremental delivery through
// sink (nil for none); Client.RunStream uses it for durable streaming
// runs.
func runJournaledStream(ctx context.Context, e *Engine, src string, j *wal.Journal, sink StreamSink) (*Relation, *ExecStats, error) {
	defer j.Close()
	e2 := *e
	e2.Market = wal.NewMarket(e.Market, j)
	e2.Journal = j
	out, st, err := exec.RunQueryStreamContext(ctx, &e2, src, sink)
	if err != nil {
		// Best effort: the journal is already consistent record by
		// record; the seal only annotates why the run stopped.
		_ = j.Seal("interrupted: " + err.Error())
		return nil, st, err
	}
	if serr := j.Seal(wal.SealComplete); serr != nil {
		return out, st, serr
	}
	return out, st, nil
}

// queryFingerprint hashes everything that must match for a journal to
// be replayable into a run: the query text, the engine options (which
// fix batch sizes, seeds, and retry budgets — all of which shape HIT
// identity), and the backend's concrete type.
func queryFingerprint(e *Engine, src string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(src))
	h.Write([]byte{0})
	if b, err := json.Marshal(e.Options); err == nil {
		h.Write(b)
	}
	h.Write([]byte{0})
	h.Write([]byte(fmt.Sprintf("%T", e.Market)))
	return h.Sum64()
}

// --- Adaptive mechanisms (paper §6 future work, implemented) ---

type (
	// VoteConfig controls sequential per-question vote allocation.
	VoteConfig = adaptive.VoteConfig
	// AdaptiveFilterResult reports an adaptive filter run.
	AdaptiveFilterResult = adaptive.AdaptiveFilterResult
	// BatchTuneConfig bounds the batch-size binary search.
	BatchTuneConfig = adaptive.BatchTuneConfig
	// ProbeResult is one batch-size trial's outcome.
	ProbeResult = adaptive.ProbeResult
	// BudgetStage is one operator's spending options.
	BudgetStage = adaptive.BudgetStage
	// BudgetPlan is the whole-plan budget allocator's decision.
	BudgetPlan = adaptive.BudgetPlan
	// GoldScreen bans workers who fail planted gold questions.
	GoldScreen = combine.GoldScreen
)

var (
	// RunAdaptiveFilter spends votes only where the posterior is
	// uncertain (§2.1, §6).
	RunAdaptiveFilter = adaptive.RunAdaptiveFilter
	// RunAdaptiveFilterContext stops posting further probe rounds once
	// ctx is done (the adaptive filter is a pipeline breaker).
	RunAdaptiveFilterContext = adaptive.RunAdaptiveFilterContext
	// PosteriorMajority is P(majority answer | votes) under a uniform
	// prior.
	PosteriorMajority = adaptive.PosteriorMajority
	// TuneBatchSize binary-searches the largest workable batch (§6).
	TuneBatchSize = adaptive.TuneBatchSize
	// FilterProbe builds a marketplace-backed probe for TuneBatchSize.
	FilterProbe = adaptive.FilterProbe
	// AllocateBudget fits assignment levels to a dollar budget (§6).
	AllocateBudget = adaptive.AllocateBudget
	// NewGoldScreen wraps a combiner with gold-standard screening (§7).
	NewGoldScreen = combine.NewGoldScreen
)

// WorkerModerator is the optional marketplace extension for banning,
// unbanning, and bonusing individual workers. Both backends implement
// it: the simulator against its synthetic population, the MTurk
// client via CreateWorkerBlock / DeleteWorkerBlock / SendBonus.
type WorkerModerator = crowd.WorkerModerator

// EnforceWorkerBans pushes a set of worker bans to the marketplace.
// It returns the workers actually banned (in input order) and stops
// at the first marketplace error. Markets without moderation support
// (e.g. a bare test stub) report ErrNoModeration.
func EnforceWorkerBans(market crowd.Marketplace, workers []string, reason string) ([]string, error) {
	mod, ok := market.(crowd.WorkerModerator)
	if !ok {
		return nil, ErrNoModeration
	}
	banned := make([]string, 0, len(workers))
	for _, w := range workers {
		if err := mod.BlockWorker(w, reason); err != nil {
			return banned, fmt.Errorf("qurk: banning %s: %w", w, err)
		}
		banned = append(banned, w)
	}
	return banned, nil
}

// EnforceGoldScreenBans carries a GoldScreen's verdicts to the
// marketplace: every worker the §6 gold-standard screen banned during
// vote combination is blocked from future tasks, so simulator-style
// bans reach the real marketplace too. Returns the workers banned.
func EnforceGoldScreenBans(market crowd.Marketplace, gs *GoldScreen) ([]string, error) {
	return EnforceWorkerBans(market, gs.Banned(), "failed gold-standard screening questions")
}

// ErrNoModeration reports a marketplace without worker-moderation
// support.
var ErrNoModeration = errors.New("qurk: marketplace does not support worker moderation")
