package qurk

// Benchmarks for the fully pipelined crowd operators: streaming
// POSSIBLY-feature extraction through the chunked poster (extraction
// HITs stop when a LIMIT closes the pipeline, and the pipelined
// makespan beats the materializing baseline) and the bounded-memory
// spill paths (external sort, partitioned join build). The headline
// quantities are custom metrics; ns/op and the -benchmem counters
// measure the engine itself.

import (
	"fmt"
	"testing"
)

func featureJoinEngine(chunk, breakerCap int, n int) (*Engine, string) {
	d := NewCelebrities(CelebrityConfig{N: n, Seed: 41})
	m := NewSimMarket(DefaultMarketConfig(41), d.Oracle())
	e := NewEngine(m, Options{
		JoinAlgorithm: NaiveJoin, JoinBatch: 5,
		StreamChunkHITs: chunk, BreakerMemTuples: breakerCap, Seed: 41,
	})
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(IsFemaleTask())
	e.Library.MustRegister(SamePersonTask())
	e.Library.MustRegister(GenderTask())
	return e, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
WHERE isFemale(c.img)`
}

// extractionHITs sums the probe-side extraction operator's HIT count.
func extractionHITs(stats *ExecStats) float64 {
	n := 0
	for _, op := range stats.Operators {
		if op.Label == "extract-left" {
			n += op.HITs
		}
	}
	return float64(n)
}

// BenchmarkStreamedExtractionMakespan pins the streaming-extraction
// win: a POSSIBLY-feature join with LIMIT posts strictly fewer
// probe-side extraction HITs than the materializing path (which
// extracts the whole table before the first pair HIT), and the
// end-to-end pipelined makespan beats the materializing baseline.
func BenchmarkStreamedExtractionMakespan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eS, src := featureJoinEngine(2, 0, 120)
		_, streamed, err := RunQuery(eS, src+` LIMIT 3`)
		if err != nil {
			b.Fatal(err)
		}
		eM, _ := featureJoinEngine(1<<20, 0, 120)
		_, mono, err := RunQuery(eM, src+` LIMIT 3`)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if extractionHITs(streamed) >= extractionHITs(mono) {
				b.Fatalf("streamed extraction posted %v HITs, materializing %v — no short-circuit",
					extractionHITs(streamed), extractionHITs(mono))
			}
			b.ReportMetric(extractionHITs(streamed), "streamed_extract_HITs")
			b.ReportMetric(extractionHITs(mono), "materialized_extract_HITs")
			b.ReportMetric(float64(streamed.TotalHITs()), "streamed_total_HITs")
			b.ReportMetric(float64(mono.TotalHITs()), "materialized_total_HITs")
			b.ReportMetric(streamed.PipelineMakespanHours, "streamed_makespan_h")
			b.ReportMetric(mono.PipelineMakespanHours, "materialized_makespan_h")
			if streamed.PipelineMakespanHours > 0 {
				b.ReportMetric(mono.PipelineMakespanHours/streamed.PipelineMakespanHours, "makespan_speedup_x")
			}
		}
	}
}

// BenchmarkSpillExternalSort measures the bounded-memory machine sort:
// the same ORDER BY with and without a BreakerMemTuples cap, asserting
// identical output while -benchmem pins the footprint difference.
func BenchmarkSpillExternalSort(b *testing.B) {
	run := func(cap int) string {
		d := NewCelebrities(CelebrityConfig{N: 300, Seed: 43})
		m := NewSimMarket(DefaultMarketConfig(43), d.Oracle())
		e := NewEngine(m, Options{BreakerMemTuples: cap, Seed: 43})
		e.Catalog.Register(d.Celeb)
		out, _, err := RunQuery(e, `SELECT c.name FROM celeb c ORDER BY c.name`)
		if err != nil {
			b.Fatal(err)
		}
		return fmt.Sprint(out)
	}
	for i := 0; i < b.N; i++ {
		spilled := run(32)
		if i == 0 {
			if inMem := run(0); inMem != spilled {
				b.Fatal("spilled sort diverged from in-memory sort")
			}
			b.ReportMetric(32, "breaker_mem_tuples")
		}
	}
}

// BenchmarkSpillJoinBuild measures the partitioned join build side:
// a crowd join whose build side spills at 16 tuples, bit-identical to
// the in-memory build.
func BenchmarkSpillJoinBuild(b *testing.B) {
	run := func(cap int) (string, *ExecStats) {
		d := NewCelebrities(CelebrityConfig{N: 24, Seed: 45})
		m := NewSimMarket(DefaultMarketConfig(45), d.Oracle())
		e := NewEngine(m, Options{JoinAlgorithm: NaiveJoin, JoinBatch: 5, BreakerMemTuples: cap, Seed: 45})
		e.Catalog.Register(d.Celeb)
		e.Catalog.Register(d.Photos)
		e.Library.MustRegister(SamePersonTask())
		out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`)
		if err != nil {
			b.Fatal(err)
		}
		return fmt.Sprint(out), stats
	}
	for i := 0; i < b.N; i++ {
		spilled, stats := run(16)
		if i == 0 {
			inMem, memStats := run(0)
			if inMem != spilled {
				b.Fatal("spilled join diverged from in-memory join")
			}
			if stats.TotalHITs() != memStats.TotalHITs() {
				b.Fatalf("HITs differ: %d spilled vs %d in-memory", stats.TotalHITs(), memStats.TotalHITs())
			}
			b.ReportMetric(float64(stats.TotalHITs()), "HITs")
		}
	}
}
