package qurk

import (
	"context"
	"testing"

	"qurk/internal/answerstore"
	"qurk/internal/core"
	"qurk/internal/cost"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/relation"
	"qurk/internal/service"
)

// BenchmarkAnswerStoreDedup measures the tentpole's economics: two
// tenants submit the identical query to one service, and the shared
// answer store serves the second entirely from storage. The metrics
// record the HITs and dollars the second tenant did NOT spend — the
// cross-query savings a multi-tenant deployment banks on.
func BenchmarkAnswerStoreDedup(b *testing.B) {
	const asn = 3
	query := `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`
	for i := 0; i < b.N; i++ {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 24, Seed: 11})
		mcfg := crowd.DefaultConfig(11)
		mcfg.TrackPosts = true
		market := crowd.NewSimMarket(mcfg, d.Oracle())
		store, err := answerstore.Open("", answerstore.Policy{})
		if err != nil {
			b.Fatal(err)
		}
		cat := relation.NewCatalog()
		cat.Register(d.Celeb)
		lib := core.NewLibrary()
		lib.MustRegister(dataset.IsFemaleTask())
		svc, err := service.New(service.Config{
			Backends: map[string]crowd.Marketplace{"sim": market},
			Catalog:  cat,
			Library:  lib,
			Answers:  store,
			Options:  core.Options{Assignments: asn, FilterBatch: 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		run := func(tenant string) {
			q, err := svc.Submit(service.SubmitRequest{Tenant: tenant, Query: query})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := q.StreamRows(context.Background(), 0,
				func(int, relation.Tuple) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
		run("alice")
		firstHITs := len(market.PostedHITs())
		run("bob")
		secondHITs := len(market.PostedHITs()) - firstHITs
		svc.Close()
		if i == 0 {
			b.ReportMetric(float64(firstHITs), "first_query_HITs")
			b.ReportMetric(float64(secondHITs), "second_query_HITs")
			savedHITs := firstHITs - secondHITs
			b.ReportMetric(float64(savedHITs), "HITs_saved")
			b.ReportMetric(cost.Dollars(savedHITs, asn), "dollars_saved")
		}
	}
}
