package qurk

// Benchmarks for adaptive mid-query re-optimization (Options.Replan):
// the headline metrics pin the posted-HIT cut a mid-run interface
// switch buys over the static plan on a workload whose true POSSIBLY
// pass fraction (or sort group size) is far off the optimizer's prior.
// ns/op measures the engine itself.

import (
	"fmt"
	"testing"
)

// BenchmarkReoptimizeJoin: a feature-prefiltered NaiveBatch join whose
// true pass fraction (~0.5, same-gender pairs) is well above the
// per-pair break-even. After Replan.ProbeTuples probe rows the
// executor re-costs the interface from the observed fraction and lays
// the remaining survivors out as SmartBatch grids; the switch must cut
// total posted HITs by at least 20% against the static plan. Grids
// trade a little per-pair accuracy for the batch (the cost model's
// 0.918 vs 0.938), so the quality bar is true-match recall against
// ground truth — within one match of the static plan — not
// bit-identical rows.
func BenchmarkReoptimizeJoin(b *testing.B) {
	const n = 16
	const query = `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
ORDER BY c.name`
	run := func(replan bool) (int, *ExecStats) {
		// Easy match difficulty and no lookalikes keep verdict noise out
		// of the comparison: the benchmark pins HIT economics, and the
		// recall bar guards against a real quality collapse.
		d := NewCelebrities(CelebrityConfig{
			N: n, Seed: 31,
			MatchDifficulty: 0.05, NonMatchDifficulty: 0.02, LookalikeFraction: 1e-9,
		})
		m := NewSimMarket(DefaultMarketConfig(31), d.Oracle())
		// 9 assignments per HIT firm up the grid cells' majority votes
		// (the simulator charges batched cells extra sloppiness, §3.3's
		// quality-for-cost tradeoff) without changing either plan's HIT
		// count — the quantity under test.
		opts := Options{JoinAlgorithm: NaiveJoin, JoinBatch: 2, Assignments: 9, Seed: 31}
		if replan {
			opts.Replan = ReplanOptions{Enabled: true, ProbeTuples: 4}
		}
		e := NewEngine(m, opts)
		e.Catalog.Register(d.Celeb)
		e.Catalog.Register(d.Photos)
		e.Library.MustRegister(SamePersonTask())
		e.Library.MustRegister(GenderTask())
		out, stats, err := RunQuery(e, query)
		if err != nil {
			b.Fatal(err)
		}
		// Each celebrity truly matches exactly their own candid photo, so
		// recall is the count of distinct expected names in the output.
		found := map[string]bool{}
		for i := 0; i < out.Len(); i++ {
			found[out.Row(i).MustGet("name").String()] = true
		}
		recall := 0
		for i := 0; i < n; i++ {
			if found[fmt.Sprintf("Celebrity %02d", i)] {
				recall++
			}
		}
		return recall, stats
	}
	for i := 0; i < b.N; i++ {
		recall, adaptive := run(true)
		if i == 0 {
			staticRecall, static := run(false)
			if recall < staticRecall-1 {
				b.Fatalf("re-planned join recall %d/%d, static %d/%d — quality collapsed",
					recall, n, staticRecall, n)
			}
			if adaptive.TotalHITs()*5 > static.TotalHITs()*4 {
				b.Fatalf("re-plan cut under 20%%: %d HITs vs %d static",
					adaptive.TotalHITs(), static.TotalHITs())
			}
			b.ReportMetric(float64(static.TotalHITs()), "static_HITs")
			b.ReportMetric(float64(adaptive.TotalHITs()), "replan_HITs")
			b.ReportMetric(100*(1-float64(adaptive.TotalHITs())/float64(static.TotalHITs())), "HIT_cut_pct")
			b.ReportMetric(float64(recall), "replan_true_matches")
			b.ReportMetric(float64(staticRecall), "static_true_matches")
		}
	}
}

// BenchmarkReoptimizeSort: a 24-row ORDER BY group under Compare needs
// a pairwise comparison cover; once the group materializes, re-costing
// at its true size switches it to Rate (ceil(n/batch) HITs) when
// rating's quality clears the floor. Rate reorders within score ties,
// so the pinned win is the HIT cut, not row order.
func BenchmarkReoptimizeSort(b *testing.B) {
	const query = `SELECT label FROM squares ORDER BY squareSorter(img)`
	run := func(replan bool) *ExecStats {
		sq := NewSquares(24)
		m := NewSimMarket(DefaultMarketConfig(37), sq.Oracle())
		opts := Options{Seed: 37}
		if replan {
			opts.Replan = ReplanOptions{Enabled: true, MinQuality: 0.75}
		}
		e := NewEngine(m, opts)
		e.Catalog.Register(sq.Rel)
		e.Library.MustRegister(SquareSorterTask())
		out, stats, err := RunQuery(e, query)
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() != 24 {
			b.Fatalf("sort returned %d rows, want 24", out.Len())
		}
		return stats
	}
	for i := 0; i < b.N; i++ {
		adaptive := run(true)
		if i == 0 {
			static := run(false)
			if adaptive.TotalHITs() >= static.TotalHITs() {
				b.Fatalf("re-plan posted %d HITs, static %d — no cut",
					adaptive.TotalHITs(), static.TotalHITs())
			}
			b.ReportMetric(float64(static.TotalHITs()), "static_HITs")
			b.ReportMetric(float64(adaptive.TotalHITs()), "replan_HITs")
			b.ReportMetric(100*(1-float64(adaptive.TotalHITs())/float64(static.TotalHITs())), "HIT_cut_pct")
		}
	}
}
