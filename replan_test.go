package qurk

// Mid-run re-optimization (Options.Replan) and the observed-statistics
// feedback loop: a join whose POSSIBLY pass fraction turns out high
// switches NaiveBatch→SmartBatch after the probe prefix and posts
// fewer HITs; a sort group that materializes large switches
// Compare→Rate. Switch decisions read only count-based boundaries, so
// they are invariant to chunk sizing, and durable runs checkpoint them
// so kill/resume replays the same switch. Runs feed an obstats store
// whose history seeds the next run's plan at admission time.

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"qurk/internal/obstats"
)

// replanJoinCase is a feature-prefiltered join whose true POSSIBLY
// pass fraction (~0.5, same-gender pairs) makes per-pair NaiveBatch
// HITs far more expensive than grids for the surviving pairs.
func replanJoinCase(enabled bool, chunk int) durableCase {
	d := NewCelebrities(CelebrityConfig{N: 12, Seed: 7})
	cfg := DefaultMarketConfig(7)
	cfg.TrackPosts = true
	return durableCase{
		col: "name",
		query: `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
ORDER BY c.name`,
		newMarket: func() *SimMarket {
			return NewSimMarket(cfg, d.Oracle())
		},
		newEngine: func(m Marketplace) *Engine {
			opts := Options{JoinAlgorithm: NaiveJoin, JoinBatch: 2, StreamChunkHITs: chunk, Seed: 7}
			if enabled {
				opts.Replan = ReplanOptions{Enabled: true, ProbeTuples: 4}
			}
			eng := NewEngine(m, opts)
			eng.Catalog.Register(d.Celeb)
			eng.Catalog.Register(d.Photos)
			eng.Library.MustRegister(SamePersonTask())
			eng.Library.MustRegister(GenderTask())
			return eng
		},
	}
}

// replanSortCase is a single-group ORDER BY large enough that rating
// (ceil(n/batch) HITs) beats the comparison cover. minQuality gates
// the switch: rating's quality is cost.QualityRateSort = 0.78.
func replanSortCase(enabled bool, minQuality float64, chunk int) durableCase {
	sq := NewSquares(24)
	cfg := DefaultMarketConfig(5)
	cfg.TrackPosts = true
	return durableCase{
		col:   "label",
		query: `SELECT label FROM squares ORDER BY squareSorter(img)`,
		newMarket: func() *SimMarket {
			return NewSimMarket(cfg, sq.Oracle())
		},
		newEngine: func(m Marketplace) *Engine {
			opts := Options{StreamChunkHITs: chunk, Seed: 5}
			if enabled {
				opts.Replan = ReplanOptions{Enabled: true, MinQuality: minQuality}
			}
			eng := NewEngine(m, opts)
			eng.Catalog.Register(sq.Rel)
			eng.Library.MustRegister(SquareSorterTask())
			return eng
		},
	}
}

// runCase executes one case on a fresh tracking market and returns the
// result fingerprint and the posted-HIT log.
func runCase(t *testing.T, c durableCase) (string, []string) {
	t.Helper()
	m := c.newMarket()
	out, _, err := RunQuery(c.newEngine(m), c.query)
	if err != nil {
		t.Fatal(err)
	}
	return rowsOf(out, c.col), m.PostedHITs()
}

// TestReplanJoinSwitchCutsPostedHITs: with re-planning on, the join
// observes its true pass fraction after the probe prefix, switches the
// remaining pairs to grids, and posts strictly fewer HITs than the
// static NaiveBatch plan — returning the same rows.
func TestReplanJoinSwitchCutsPostedHITs(t *testing.T) {
	staticRows, staticPosted := runCase(t, replanJoinCase(false, 0))
	replanRows, replanPosted := runCase(t, replanJoinCase(true, 0))
	// A ≥20% cut only arises from the Naive→Smart switch: the plans are
	// otherwise identical, so this pins that the switch fired.
	if len(replanPosted)*5 > len(staticPosted)*4 {
		t.Fatalf("re-plan posted %d HITs, static %d — cut under 20%%", len(replanPosted), len(staticPosted))
	}
	if replanRows != staticRows {
		t.Errorf("re-planned rows diverge from static plan\ngot:\n%swant:\n%s", replanRows, staticRows)
	}
}

// TestReplanJoinDecisionChunkInvariant: the switch decision fires at a
// fixed probe-row boundary, so the posted-HIT multiset is identical at
// any StreamChunkHITs setting.
func TestReplanJoinDecisionChunkInvariant(t *testing.T) {
	baseRows, basePosted := runCase(t, replanJoinCase(true, 1))
	want := fmt.Sprint(sortedCopy(basePosted))
	for _, chunk := range []int{2, 7, 64} {
		rows, posted := runCase(t, replanJoinCase(true, chunk))
		if rows != baseRows {
			t.Errorf("chunk %d: rows diverge from chunk 1", chunk)
		}
		if got := fmt.Sprint(sortedCopy(posted)); got != want {
			t.Errorf("chunk %d: posted HITs diverge from chunk 1\ngot:  %v\nwant: %v", chunk, got, want)
		}
	}
}

// TestReplanSortSwitchCutsPostedHITs: a 24-row group under Compare
// needs a pairwise cover; with re-planning on (and a quality floor
// rating clears) the group switches to Rate and posts a fraction of
// the HITs. Rate orders by mean score, so row order may legitimately
// differ — membership must not.
func TestReplanSortSwitchCutsPostedHITs(t *testing.T) {
	staticRows, staticPosted := runCase(t, replanSortCase(false, 0, 0))
	replanRows, replanPosted := runCase(t, replanSortCase(true, 0.75, 0))
	if len(replanPosted) >= len(staticPosted) {
		t.Fatalf("re-plan posted %d HITs, static %d — no cut", len(replanPosted), len(staticPosted))
	}
	static := sortedCopy(strings.Split(strings.TrimSuffix(staticRows, "\n"), "\n"))
	replan := sortedCopy(strings.Split(strings.TrimSuffix(replanRows, "\n"), "\n"))
	if fmt.Sprint(static) != fmt.Sprint(replan) {
		t.Errorf("re-planned sort changed row membership\ngot:  %v\nwant: %v", replan, static)
	}
}

// TestReplanSortQualityFloorBlocksSwitch: a MinQuality above rating's
// 0.78 keeps the group on Compare — the run is bit-identical to the
// static plan.
func TestReplanSortQualityFloorBlocksSwitch(t *testing.T) {
	staticRows, staticPosted := runCase(t, replanSortCase(false, 0, 0))
	gatedRows, gatedPosted := runCase(t, replanSortCase(true, 0.9, 0))
	if gatedRows != staticRows {
		t.Error("quality-gated run rows diverge from static plan")
	}
	if fmt.Sprint(sortedCopy(gatedPosted)) != fmt.Sprint(sortedCopy(staticPosted)) {
		t.Errorf("quality-gated run posted different HITs\ngot:  %v\nwant: %v", gatedPosted, staticPosted)
	}
}

// TestReplanSortDecisionChunkInvariant mirrors the join invariance for
// the per-group Compare→Rate switch.
func TestReplanSortDecisionChunkInvariant(t *testing.T) {
	baseRows, basePosted := runCase(t, replanSortCase(true, 0.75, 1))
	want := fmt.Sprint(sortedCopy(basePosted))
	for _, chunk := range []int{3, 32} {
		rows, posted := runCase(t, replanSortCase(true, 0.75, chunk))
		if rows != baseRows {
			t.Errorf("chunk %d: rows diverge from chunk 1", chunk)
		}
		if got := fmt.Sprint(sortedCopy(posted)); got != want {
			t.Errorf("chunk %d: posted HITs diverge from chunk 1\ngot:  %v\nwant: %v", chunk, got, want)
		}
	}
}

// TestDurableReplanJoinKillAnyPointResume: the mid-query switch is
// checkpointed in the journal, so killing the run at any posting point
// and resuming replays the same switch — identical rows, no HIT
// posted twice.
func TestDurableReplanJoinKillAnyPointResume(t *testing.T) {
	killResumeEquivalence(t, replanJoinCase(true, 0), 5)
}

// TestDurableReplanSortKillAnyPointResume: same for the per-group
// Compare→Rate switch.
func TestDurableReplanSortKillAnyPointResume(t *testing.T) {
	killResumeEquivalence(t, replanSortCase(true, 0.75, 0), 2)
}

// TestStatsStoreFeedbackLoop: run one — attached to a fresh stats
// store — feeds its measured POSSIBLY pass fraction and match
// selectivity; run two's admission-time plan is seeded from that
// history (the hairColor prefilter prior is a factor ≥2 below the
// dataset's true pass fraction, so seeding visibly moves the plan).
func TestStatsStoreFeedbackLoop(t *testing.T) {
	store, err := OpenStatsStore(filepath.Join(t.TempDir(), "stats.qos"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const query = `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY hairColor(c.img) = hairColor(p.img)`
	newClient := func(withStore bool) *Client {
		d, err := OpenDataset("celebrities", 16, 11)
		if err != nil {
			t.Fatal(err)
		}
		opts := []ClientOption{
			WithOptions(Options{JoinAlgorithm: NaiveJoin, Seed: 11}),
			WithDataset(d),
		}
		if withStore {
			opts = append(opts, WithStatsStore(store))
		}
		return NewClient(NewSimMarket(DefaultMarketConfig(11), d.Oracle), opts...)
	}

	freshPlan, err := newClient(false).Optimize(query, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := newClient(true).Run(context.Background(), query); err != nil {
		t.Fatal(err)
	}

	pass, weight, ok := store.Estimate("samePerson", obstats.KindPassFraction)
	if !ok || weight <= 0 {
		t.Fatalf("run fed no pass-fraction observation (ok=%v weight=%v)", ok, weight)
	}
	if pass <= 0 || pass > 1 {
		t.Fatalf("observed pass fraction %v out of range", pass)
	}
	if _, _, ok := store.Estimate("samePerson", obstats.KindSelectivity); !ok {
		t.Error("run fed no join-selectivity observation")
	}

	seededPlan, err := newClient(true).Optimize(query, 0)
	if err != nil {
		t.Fatal(err)
	}
	seeded := false
	for _, n := range seededPlan.Notes {
		if strings.Contains(n, "seeded from observed history") {
			seeded = true
		}
	}
	if !seeded {
		t.Errorf("seeded plan carries no seeding note:\n%s", seededPlan.Render())
	}
	if seededPlan.Render() == freshPlan.Render() {
		t.Errorf("observed history (pass fraction %.3f) left the plan unchanged:\n%s", pass, seededPlan.Render())
	}
	for _, n := range freshPlan.Notes {
		if strings.Contains(n, "seeded from observed history") {
			t.Error("unseeded plan claims observed history")
		}
	}
}

// TestExplainShowsObservedStats: Explain with a run's actuals renders
// the observed pass fraction and selectivity next to the estimates —
// the §6 estimate/run/compare loop closed over measured statistics.
func TestExplainShowsObservedStats(t *testing.T) {
	d, err := OpenDataset("celebrities", 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(NewSimMarket(DefaultMarketConfig(13), d.Oracle), Options{JoinAlgorithm: NaiveJoin, Seed: 13})
	eng.Catalog = d.Catalog
	eng.Library = d.Library
	const query = `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)`
	_, stats, err := RunQuery(eng, query)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.ObservedStats()) == 0 {
		t.Fatal("run recorded no observed statistics")
	}
	rendered, err := Explain(eng, query, ExplainOptions{Actual: stats})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rendered, "obs pass") {
		t.Errorf("explain output lacks observed pass fraction:\n%s", rendered)
	}
	if !strings.Contains(rendered, "obs sel") {
		t.Errorf("explain output lacks observed selectivity:\n%s", rendered)
	}
}
