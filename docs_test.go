package qurk

// Documentation link check: every relative link in the repo's markdown
// (README.md, docs/*.md) must resolve to a file or directory that
// exists, so the architecture/backends narrative cannot silently rot
// as files move. CI runs this via the normal test suite and as an
// explicit docs-link step.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) markdown links.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func TestDocRelativeLinksResolve(t *testing.T) {
	files := []string{"README.md", "ROADMAP.md", "PAPER.md", "PAPERS.md", "CHANGES.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(docs) == 0 {
		t.Error("docs/ holds no markdown — ARCHITECTURE.md and BACKENDS.md should live there")
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip intra-document anchors.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", file, m[1], resolved)
			}
		}
	}
}
