package qurk

// The acceptance bar for durability: kill the run at any posting
// point, resume from the journal, and get bit-identical rows with zero
// duplicate HITs — on the simulator (crash injection at every HIT
// admission) and on the MTurk backend (endpoint faults exhausting the
// retry budget, then UniqueRequestToken re-attach on resume).

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"qurk/internal/crowd"
)

// rowsOf fingerprints a result relation by one column, in row order.
func rowsOf(out *Relation, col string) string {
	var b strings.Builder
	for i := 0; i < out.Len(); i++ {
		b.WriteString(out.Row(i).MustGet(col).String())
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedCopy(s []string) []string {
	c := append([]string(nil), s...)
	sort.Strings(c)
	return c
}

// durableCase is one query under kill/resume test: newMarket builds a
// fresh tracking simulator, newEngine an engine over any market.
type durableCase struct {
	col       string
	query     string
	newMarket func() *SimMarket
	newEngine func(m Marketplace) *Engine
}

func filterCase() durableCase {
	d := NewCelebrities(CelebrityConfig{N: 20, Seed: 1})
	cfg := DefaultMarketConfig(1)
	cfg.TrackPosts = true
	return durableCase{
		col:   "name",
		query: `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`,
		newMarket: func() *SimMarket {
			return NewSimMarket(cfg, d.Oracle())
		},
		newEngine: func(m Marketplace) *Engine {
			eng := NewEngine(m, Options{})
			eng.Catalog.Register(d.Celeb)
			eng.Library.MustRegister(IsFemaleTask())
			return eng
		},
	}
}

func joinCase() durableCase {
	d := NewCelebrities(CelebrityConfig{N: 6, Seed: 2})
	cfg := DefaultMarketConfig(2)
	cfg.TrackPosts = true
	return durableCase{
		col: "name",
		query: `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
ORDER BY c.name`,
		newMarket: func() *SimMarket {
			return NewSimMarket(cfg, d.Oracle())
		},
		newEngine: func(m Marketplace) *Engine {
			eng := NewEngine(m, Options{})
			eng.Catalog.Register(d.Celeb)
			eng.Catalog.Register(d.Photos)
			eng.Library.MustRegister(SamePersonTask())
			eng.Library.MustRegister(GenderTask())
			return eng
		},
	}
}

func sortCase() durableCase {
	sq := NewSquares(10)
	cfg := DefaultMarketConfig(3)
	cfg.TrackPosts = true
	return durableCase{
		col:   "label",
		query: `SELECT label FROM squares ORDER BY squareSorter(img)`,
		newMarket: func() *SimMarket {
			return NewSimMarket(cfg, sq.Oracle())
		},
		newEngine: func(m Marketplace) *Engine {
			eng := NewEngine(m, Options{})
			eng.Catalog.Register(sq.Rel)
			eng.Library.MustRegister(SquareSorterTask())
			return eng
		},
	}
}

// killResumeEquivalence is the shared harness: a clean durable run
// fixes the expected rows and posted-HIT log; then for each crash
// point k the simulator fails the run at its k-th HIT admission, and a
// resumed run over the same market must reproduce the baseline exactly
// with no HIT posted twice.
func killResumeEquivalence(t *testing.T, c durableCase, stride int) {
	ctx := context.Background()
	base := c.newMarket()
	wantOut, _, err := RunQueryDurable(ctx, c.newEngine(base), c.query,
		filepath.Join(t.TempDir(), "base.qjl"))
	if err != nil {
		t.Fatal(err)
	}
	wantRows := rowsOf(wantOut, c.col)
	wantPosted := sortedCopy(base.PostedHITs())
	if len(wantPosted) == 0 {
		t.Fatal("baseline posted no HITs; crash points exercise nothing")
	}

	// A plain (non-durable) run must agree too: journaling is a pure
	// wrapper, not a semantics change.
	plainOut, _, err := RunQuery(c.newEngine(c.newMarket()), c.query)
	if err != nil {
		t.Fatal(err)
	}
	if rowsOf(plainOut, c.col) != wantRows {
		t.Fatal("durable baseline differs from a plain run")
	}

	crashed := 0
	for k := 0; k < len(wantPosted); k += stride {
		m := c.newMarket()
		m.InjectCrashAfter(k)
		journal := filepath.Join(t.TempDir(), fmt.Sprintf("crash%d.qjl", k))
		_, _, err := RunQueryDurable(ctx, c.newEngine(m), c.query, journal)
		if err == nil {
			// Chunk lookahead can complete the run before admission k;
			// nothing to resume at this point.
			continue
		}
		if !errors.Is(err, crowd.ErrInjectedCrash) {
			t.Fatalf("crash point %d: run failed with %v, not the injected crash", k, err)
		}
		crashed++

		m.InjectCrashAfter(-1)
		out, _, err := Resume(ctx, c.newEngine(m), c.query, journal)
		if err != nil {
			t.Fatalf("crash point %d: resume failed: %v", k, err)
		}
		if got := rowsOf(out, c.col); got != wantRows {
			t.Errorf("crash point %d: resumed rows diverge\ngot:\n%swant:\n%s", k, got, wantRows)
		}
		// The same market served both the crashed and the resumed run,
		// so its posted-HIT log is the union — it must equal the
		// uninterrupted run's log exactly: nothing missing, nothing
		// extra, nothing posted twice.
		if got := sortedCopy(m.PostedHITs()); fmt.Sprint(got) != fmt.Sprint(wantPosted) {
			t.Errorf("crash point %d: posted HITs diverge\ngot:  %v\nwant: %v", k, got, wantPosted)
		}
	}
	if crashed == 0 {
		t.Fatal("no crash point interrupted the run; harness exercises nothing")
	}
}

func TestDurableFilterKillAnyPointResume(t *testing.T) {
	killResumeEquivalence(t, filterCase(), 1)
}

func TestDurableJoinKillAnyPointResume(t *testing.T) {
	killResumeEquivalence(t, joinCase(), 3)
}

func TestDurableSortKillAnyPointResume(t *testing.T) {
	killResumeEquivalence(t, sortCase(), 1)
}

// TestResumeCompletedJournalReplaysWithoutPosting: resuming a journal
// sealed "complete" replays the entire run from disk — zero
// marketplace traffic — and returns the same rows.
func TestResumeCompletedJournalReplaysWithoutPosting(t *testing.T) {
	ctx := context.Background()
	c := filterCase()
	m := c.newMarket()
	journal := filepath.Join(t.TempDir(), "run.qjl")
	wantOut, _, err := RunQueryDurable(ctx, c.newEngine(m), c.query, journal)
	if err != nil {
		t.Fatal(err)
	}

	fresh := c.newMarket()
	out, _, err := Resume(ctx, c.newEngine(fresh), c.query, journal)
	if err != nil {
		t.Fatal(err)
	}
	if rowsOf(out, c.col) != rowsOf(wantOut, c.col) {
		t.Error("replayed rows differ from the original run")
	}
	if posted := fresh.PostedHITs(); len(posted) != 0 {
		t.Errorf("full replay posted %d HITs, want 0", len(posted))
	}
}

// TestResumeRefusesMismatchedFingerprint: a journal only resumes the
// query and engine configuration that created it.
func TestResumeRefusesMismatchedFingerprint(t *testing.T) {
	ctx := context.Background()
	c := filterCase()
	journal := filepath.Join(t.TempDir(), "run.qjl")
	if _, _, err := RunQueryDurable(ctx, c.newEngine(c.newMarket()), c.query, journal); err != nil {
		t.Fatal(err)
	}
	_, _, err := Resume(ctx, c.newEngine(c.newMarket()),
		`SELECT c.img FROM celeb AS c WHERE isFemale(c.img)`, journal)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("resume with a different query = %v, want fingerprint refusal", err)
	}
	eng := c.newEngine(c.newMarket())
	eng.Options.FilterBatch = 2
	if _, _, err := Resume(ctx, eng, c.query, journal); err == nil {
		t.Error("resume with different options must be refused")
	}
}

// TestRunQueryDurableRefusesExistingJournal: starting a durable run
// over a journal that already exists would silently fork its history.
func TestRunQueryDurableRefusesExistingJournal(t *testing.T) {
	ctx := context.Background()
	c := filterCase()
	journal := filepath.Join(t.TempDir(), "run.qjl")
	if _, _, err := RunQueryDurable(ctx, c.newEngine(c.newMarket()), c.query, journal); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunQueryDurable(ctx, c.newEngine(c.newMarket()), c.query, journal); err == nil {
		t.Error("second durable run over the same journal path must fail")
	}
	if _, _, err := Resume(ctx, c.newEngine(c.newMarket()), c.query,
		filepath.Join(t.TempDir(), "missing.qjl")); err == nil {
		t.Error("resume of a nonexistent journal must fail")
	}
}

// TestDurableMTurkResumeReattaches: over the REST backend, a durable
// run killed by endpoint faults resumes against the same endpoint —
// the re-posted groups reuse their UniqueRequestTokens, so the
// endpoint's created-HIT log matches an uninterrupted run exactly.
func TestDurableMTurkResumeReattaches(t *testing.T) {
	ctx := context.Background()
	t0 := time.Date(2026, 1, 2, 9, 0, 0, 0, time.UTC)
	const query = `SELECT c.name FROM celeb c WHERE isFemale(c.img)`

	build := func(fcfg MTurkFakeConfig) (*Engine, *MTurkFakeServer, *MTurkFakeClock) {
		clock := NewMTurkFakeClock(t0)
		fcfg.Clock = clock
		fcfg.SubmitDelay = 2 * time.Second
		f := NewMTurkFakeServer(fcfg)
		t.Cleanup(f.Close)
		eng := mturkEngineOver(t, f, clock)
		return eng, f, clock
	}

	// Baseline: clean endpoint, uninterrupted durable run.
	baseEng, baseSrv, _ := build(MTurkFakeConfig{YesPct: 100})
	wantOut, _, err := RunQueryDurable(ctx, baseEng, query, filepath.Join(t.TempDir(), "base.qjl"))
	if err != nil {
		t.Fatal(err)
	}
	wantRows := rowsOf(wantOut, "name")
	wantTokens := sortedCopy(baseSrv.CreatedHITs())
	if len(wantTokens) == 0 {
		t.Fatal("baseline created no HITs")
	}

	// Faulted endpoint: the first CreateHIT's whole retry budget is
	// consumed by injected 500s, killing the durable run mid-pipeline.
	eng, srv, clock := build(MTurkFakeConfig{
		YesPct:    100,
		FailFirst: map[string]int{"CreateHIT": 3},
	})
	journal := filepath.Join(t.TempDir(), "crash.qjl")
	if _, _, err := RunQueryDurable(ctx, eng, query, journal); err == nil {
		t.Fatal("durable run survived faults that exhaust the retry budget")
	}

	// Resume with a fresh engine over the SAME endpoint and clock: the
	// faults are spent, the journaled intents re-post, and the token
	// log converges on the baseline's.
	out, _, err := Resume(ctx, mturkEngineOver(t, srv, clock), query, journal)
	if err != nil {
		t.Fatal(err)
	}
	if rowsOf(out, "name") != wantRows {
		t.Error("resumed MTurk rows differ from the uninterrupted run")
	}
	if got := sortedCopy(srv.CreatedHITs()); fmt.Sprint(got) != fmt.Sprint(wantTokens) {
		t.Errorf("created-HIT tokens diverge\ngot:  %v\nwant: %v", got, wantTokens)
	}
}

// mturkEngineOver builds an engine whose marketplace is a fresh MTurk
// client pointed at an existing fake endpoint, sharing its clock.
func mturkEngineOver(t *testing.T, f *MTurkFakeServer, clock *MTurkFakeClock) *Engine {
	t.Helper()
	c, err := NewMTurkClient(MTurkConfig{
		Endpoint:           f.URL(),
		AccessKey:          "FAKEKEY",
		SecretKey:          "FAKESECRET",
		Clock:              clock,
		PollInterval:       time.Second,
		AssignmentDuration: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := NewCelebrities(CelebrityConfig{N: 20, Seed: 3})
	eng := NewEngine(c, Options{})
	eng.Catalog.Register(d.Celeb)
	eng.Library.MustRegister(IsFemaleTask())
	return eng
}
