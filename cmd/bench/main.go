// Command bench runs the repository's Benchmark* suite at 1 CPU and at
// full width, parses the results, and writes BENCH_results.json so the
// performance trajectory (ns/op per benchmark, multi-core speedups, and
// the paper-metric custom outputs) is tracked across changes.
//
// With -compare it also gates regressions: each (benchmark, procs)
// measurement is checked against a committed baseline report and the
// process exits nonzero when any ns/op regresses beyond -threshold
// (use -warn-only on noisy runners to report without failing).
// Allocation counts are deterministic even on noisy runners, so
// -alloc-gate names the benchmark families whose allocs/op and B/op
// regressions hard-fail the gate regardless of -warn-only.
//
// Usage:
//
//	go run ./cmd/bench                       # full suite → BENCH_results.json
//	go run ./cmd/bench -bench Parallel       # only the scaling benchmarks
//	go run ./cmd/bench -benchtime 5x -cpu 1,4,8
//	go run ./cmd/bench -compare BENCH_baseline.json -threshold 0.20
//	go run ./cmd/bench -compare BENCH_baseline.json -warn-only -alloc-gate 'Spill|SimMarket'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement at one GOMAXPROCS setting.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from -benchmem, so the memory
	// side of an optimization is pinned alongside its speed.
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Speedup compares one benchmark across its lowest and highest
// measured CPU widths.
type Speedup struct {
	Name      string  `json:"name"`
	BaseProcs int     `json:"base_procs"`
	BaseNs    float64 `json:"base_ns_per_op"`
	WideProcs int     `json:"wide_procs"`
	WideNs    float64 `json:"wide_ns_per_op"`
	Speedup   float64 `json:"speedup_x"`
}

// Report is the BENCH_results.json schema.
type Report struct {
	GeneratedAt string    `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	NumCPU      int       `json:"num_cpu"`
	BenchRegex  string    `json:"bench_regex"`
	BenchTime   string    `json:"bench_time"`
	CPUs        string    `json:"cpus"`
	Notes       string    `json:"notes,omitempty"`
	Results     []Result  `json:"results"`
	Speedups    []Speedup `json:"speedups,omitempty"`
}

// benchLine matches `BenchmarkName-8   10   123456 ns/op   1.5 metric ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// bufOut is the buffered stdout writer, flushed before any fatal exit
// so already-printed report lines are not silently dropped.
var bufOut *bufio.Writer

// fatalf prints to stderr and exits nonzero.
func fatalf(format string, args ...any) {
	if bufOut != nil {
		bufOut.Flush()
	}
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	benchRe := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	pkgs := flag.String("pkg", "qurk", "comma-separated import paths to benchmark (the bulk of the Benchmark* suite lives at the module root)")
	benchTime := flag.String("benchtime", "2x", "go test -benchtime value")
	cpus := flag.String("cpu", "", "go test -cpu list (default \"1,<NumCPU>\")")
	out := flag.String("out", "BENCH_results.json", "output JSON path")
	notes := flag.String("notes", "", "free-form provenance note recorded in the report")
	compare := flag.String("compare", "", "baseline report to gate regressions against")
	threshold := flag.Float64("threshold", 0.20, "fractional ns/op regression allowed before the gate fails")
	warnOnly := flag.Bool("warn-only", false, "report ns/op regressions but exit 0 (noisy runners)")
	allocGate := flag.String("alloc-gate", "",
		"regex of benchmarks whose allocs/op and B/op regressions hard-fail the gate, even under -warn-only")
	flag.Parse()
	var allocGateRe *regexp.Regexp
	if *allocGate != "" {
		re, err := regexp.Compile(*allocGate)
		if err != nil {
			fatalf("bad -alloc-gate regex: %v", err)
		}
		allocGateRe = re
	}
	if *cpus == "" {
		*cpus = "1"
		// On multi-core hosts, also measure at full width so the
		// report captures the parallel simulator's scaling.
		if n := runtime.NumCPU(); n > 1 {
			*cpus = "1," + strconv.Itoa(n)
		}
	}

	// Buffer stdout so a failed write (closed pipe, full disk) is
	// detected at Flush instead of silently dropping report lines.
	stdout := bufio.NewWriter(os.Stdout)
	bufOut = stdout
	defer func() {
		if err := stdout.Flush(); err != nil {
			fatalf("writing stdout: %v", err)
		}
	}()

	// Target packages by import path so the harness works from any
	// directory inside the module. Benchmark names must stay unique
	// across the listed packages — results are keyed by name alone.
	args := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchtime", *benchTime, "-benchmem", "-cpu", *cpus}
	args = append(args, strings.Split(*pkgs, ",")...)
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fatalf("go test failed: %v\n%s", err, raw)
	}

	report := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		BenchRegex:  *benchRe,
		BenchTime:   *benchTime,
		CPUs:        *cpus,
		Notes:       *notes,
	}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		procs := 1
		if m[2] != "" {
			procs, _ = strconv.Atoi(m[2])
		}
		iters, _ := strconv.Atoi(m[3])
		ns, _ := strconv.ParseFloat(m[4], 64)
		r := Result{Name: m[1], Procs: procs, Iterations: iters, NsPerOp: ns}
		// Custom metrics come in "<value> <unit>" pairs; -benchmem's
		// B/op and allocs/op are promoted to dedicated fields.
		fields := strings.Fields(m[5])
		for i := 0; i+1 < len(fields); i += 2 {
			v, verr := strconv.ParseFloat(fields[i], 64)
			if verr != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[fields[i+1]] = v
			}
		}
		report.Results = append(report.Results, r)
	}
	if len(report.Results) == 0 {
		fatalf("no benchmark lines parsed")
	}

	// Derive speedups: lowest vs highest CPU width per benchmark.
	byName := map[string][]Result{}
	var names []string
	for _, r := range report.Results {
		if _, seen := byName[r.Name]; !seen {
			names = append(names, r.Name)
		}
		byName[r.Name] = append(byName[r.Name], r)
	}
	for _, name := range names {
		rs := byName[name]
		base, wide := rs[0], rs[0]
		for _, r := range rs[1:] {
			if r.Procs < base.Procs {
				base = r
			}
			if r.Procs > wide.Procs {
				wide = r
			}
		}
		if wide.Procs == base.Procs || wide.NsPerOp == 0 {
			continue
		}
		report.Speedups = append(report.Speedups, Speedup{
			Name:      name,
			BaseProcs: base.Procs,
			BaseNs:    base.NsPerOp,
			WideProcs: wide.Procs,
			WideNs:    wide.NsPerOp,
			Speedup:   base.NsPerOp / wide.NsPerOp,
		})
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	for _, s := range report.Speedups {
		fmt.Fprintf(stdout, "%-40s %7.2fms @%dcpu → %7.2fms @%dcpu   %.2fx\n",
			s.Name, s.BaseNs/1e6, s.BaseProcs, s.WideNs/1e6, s.WideProcs, s.Speedup)
	}
	fmt.Fprintf(stdout, "wrote %s (%d results)\n", *out, len(report.Results))

	if *compare != "" {
		regressed, allocGated := compareBaseline(stdout, &report, *compare, *threshold, allocGateRe)
		fail := regressed > 0 && !*warnOnly
		// Alloc regressions on gated families fail even under
		// -warn-only: allocation counts are deterministic, so a jump is
		// a real code change, not runner noise.
		fail = fail || allocGated > 0
		if fail {
			if err := stdout.Flush(); err != nil {
				fatalf("writing stdout: %v", err)
			}
			fatalf("%d benchmark(s) regressed beyond %.0f%% (%d allocation-gated) — see report above",
				regressed+allocGated, *threshold*100, allocGated)
		}
	}
}

// compareBaseline checks every (name, procs) measurement against the
// baseline report and prints a regression/improvement table. Entries
// missing from either side are skipped (benchmarks come and go); the
// counts of ns/op regressions and of gated allocation regressions
// beyond threshold are returned. Allocation regressions (allocs/op and
// B/op beyond the same threshold) hard-fail when the benchmark name
// matches allocGate — the counts are deterministic, so they hold up
// even on shared runners — and warn otherwise.
func compareBaseline(w *bufio.Writer, cur *Report, path string, threshold float64, allocGate *regexp.Regexp) (int, int) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatalf("reading baseline %s: %v", path, err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parsing baseline %s: %v", path, err)
	}
	key := func(r Result) string { return fmt.Sprintf("%s@%d", r.Name, r.Procs) }
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[key(r)] = r
	}
	regressed, allocWarned, allocGated, compared, skipped := 0, 0, 0, 0, 0
	fmt.Fprintf(w, "\ncompare vs %s (threshold %.0f%%):\n", path, threshold*100)
	for _, r := range cur.Results {
		b, ok := baseBy[key(r)]
		if !ok || b.NsPerOp == 0 {
			skipped++
			continue
		}
		compared++
		delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		switch {
		case delta > threshold:
			regressed++
			fmt.Fprintf(w, "  REGRESSION  %-44s %9.2fms → %9.2fms  (%+.1f%%)\n",
				key(r), b.NsPerOp/1e6, r.NsPerOp/1e6, delta*100)
		case delta < -threshold:
			fmt.Fprintf(w, "  improvement %-44s %9.2fms → %9.2fms  (%+.1f%%)\n",
				key(r), b.NsPerOp/1e6, r.NsPerOp/1e6, delta*100)
		}
		// Allocation deltas: deterministic counts, so even small shifts
		// are signal. Gated families hard-fail; the rest warn.
		allocCheck := func(baseVal, curVal float64, unit string) {
			if baseVal <= 0 || curVal <= 0 {
				return
			}
			d := (curVal - baseVal) / baseVal
			if d <= threshold {
				return
			}
			label := "ALLOC-WARN "
			if allocGate != nil && allocGate.MatchString(r.Name) {
				allocGated++
				label = "ALLOC-REGRESSION"
			} else {
				allocWarned++
			}
			fmt.Fprintf(w, "  %s %-44s %9.0f → %9.0f %s  (%+.1f%%)\n",
				label, key(r), baseVal, curVal, unit, d*100)
		}
		allocCheck(b.AllocsPerOp, r.AllocsPerOp, "allocs/op")
		allocCheck(b.BytesPerOp, r.BytesPerOp, "B/op")
	}
	fmt.Fprintf(w, "  %d compared, %d regressed, %d alloc regressions (gated), %d alloc warnings, %d not in baseline\n",
		compared, regressed, allocGated, allocWarned, skipped)
	return regressed, allocGated
}
