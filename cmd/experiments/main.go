// Command experiments regenerates every table and figure from the
// paper's evaluation (§3.3, §4.2, §5) against the simulated crowd and
// prints them in the paper's shapes. Output is deterministic for a
// given seed.
//
// Usage:
//
//	experiments                 # full paper-scale run
//	experiments -scale quick    # ~2-3x smaller datasets, same claims
//	experiments -only table5    # one experiment
//	experiments -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qurk/internal/experiment"
)

// runner is one named experiment.
type runner struct {
	id   string
	desc string
	run  func(experiment.Config) (renderer, error)
}

type renderer interface{ Render() string }

// wrap adapts a typed experiment function to the runner signature.
func wrap[T renderer](f func(experiment.Config) (T, error)) func(experiment.Config) (renderer, error) {
	return func(cfg experiment.Config) (renderer, error) { return f(cfg) }
}

var runners = []runner{
	{"table1", "Table 1: baseline join comparison (3 implementations, unbatched)", wrap(experiment.Table1)},
	{"figure3", "Figure 3: join batching vs accuracy (MV and QA)", wrap(experiment.Figure3)},
	{"figure4", "Figure 4: join latency percentiles", wrap(experiment.Figure4)},
	{"sec333", "Sec 3.3.3: worker accuracy vs tasks completed", wrap(experiment.WorkerAccuracyRegression)},
	{"table2", "Table 2: feature filtering effectiveness", wrap(experiment.Table2)},
	{"table3", "Table 3: leave-one-out feature analysis", wrap(experiment.Table3)},
	{"table4", "Table 4: inter-rater agreement (kappa)", wrap(experiment.Table4)},
	{"selection", "Sec 3.2: automatic feature selection", wrap(experiment.FeatureSelection)},
	{"sec422cmp", "Sec 4.2.2: comparison batching microbenchmark", wrap(experiment.SquareCompareBatching)},
	{"sec422rate", "Sec 4.2.2: rating batching microbenchmark", wrap(experiment.SquareRateBatching)},
	{"sec422gran", "Sec 4.2.2: rating granularity microbenchmark", wrap(experiment.SquareRateGranularity)},
	{"figure6", "Figure 6: tau and kappa across ambiguous queries", wrap(experiment.Figure6)},
	{"figure7", "Figure 7: hybrid sort trajectories", wrap(experiment.Figure7)},
	{"sec424", "Sec 4.2.4: animals hybrid", wrap(experiment.AnimalsHybrid)},
	{"table5", "Table 5: end-to-end query optimization", wrap(experiment.Table5)},
	{"cost", "Sec 3.4: cost narrative", wrap(experiment.CostNarrative)},
}

func main() {
	var (
		seed  = flag.Int64("seed", 42, "simulation seed")
		scale = flag.String("scale", "full", "full (paper sizes) or quick")
		only  = flag.String("only", "", "comma-separated experiment ids (default: all)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range runners {
			fmt.Printf("%-12s %s\n", r.id, r.desc)
		}
		return
	}
	cfg := experiment.Config{Seed: *seed, Scale: experiment.Full}
	if strings.EqualFold(*scale, "quick") {
		cfg.Scale = experiment.Quick
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	fmt.Printf("Qurk evaluation reproduction — seed %d, scale %s\n", *seed, *scale)
	fmt.Printf("(%d experiments; every table and figure from the paper)\n\n", len(runners))
	start := time.Now()
	failed := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		fmt.Printf("==== %s — %s ====\n", r.id, r.desc)
		t0 := time.Now()
		res, err := r.run(cfg)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "FAILED: %v\n\n", err)
			continue
		}
		fmt.Println(res.Render())
		fmt.Printf("(%.2fs)\n\n", time.Since(t0).Seconds())
	}
	fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}
