// Command qurkd is the Qurk query service: a long-running HTTP daemon
// that admits crowd queries from many tenants against shared
// marketplaces and a shared cross-query answer store.
//
// Unlike the one-shot qurk CLI, qurkd amortizes crowd work across
// queries: every answered question feeds a persistent answer store
// keyed by question content, so a later query that asks the same
// thing (same task, same tuples — from any tenant) is served from the
// store and posts nothing. Tenants carry dollar budgets enforced at
// admission (optimizer estimate must fit) and at every posted HIT
// group (mid-run cutoff). See docs/SERVICE.md for the API.
//
// Usage:
//
//	qurkd -addr :8080 -dataset celebrities -n 30
//	qurkd -dataset movie -store answers.qas -tenant alice=5.00 -tenant bob=2.50
//	qurkd -backend mturk-sandbox -dataset celebrities -n 4
//
// Submit and follow a query:
//
//	curl -s localhost:8080/v1/queries -d '{"tenant":"alice","query":"SELECT c.name FROM celeb AS c WHERE isFemale(c.img)"}'
//	curl -s localhost:8080/v1/queries/q0001/rows
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"qurk"
	"qurk/internal/answerstore"
	"qurk/internal/circuit"
	"qurk/internal/mturk"
	"qurk/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		datasetName = flag.String("dataset", "celebrities", "dataset: celebrities, squares, animals, movie")
		n           = flag.Int("n", 30, "dataset size (celebrities count or squares count)")
		seed        = flag.Int64("seed", 1, "simulation seed")
		backend     = flag.String("backend", "sim", "crowd backend: sim (oracle-driven simulator), mturk-sandbox, or mturk (REAL MONEY)")
		endpoint    = flag.String("mturk-endpoint", "", "override the MTurk endpoint URL (e.g. an in-process fake)")
		pollSecs    = flag.Float64("mturk-poll", 15, "seconds between assignment polls on live backends")
		asnDuration = flag.Int("mturk-deadline", 600, "assignment deadline in seconds before it counts as expired")
		assignments = flag.Int("assignments", 5, "default workers per HIT")
		combiner    = flag.String("combiner", "MajorityVote", "default vote combiner: MajorityVote or QualityAdjust")
		storePath   = flag.String("store", "", "answer-store file (empty = in-memory, still shared across queries)")
		statsPath   = flag.String("stats-store", "", "observed-statistics store file shared by all tenants: runs feed measured selectivities/pass fractions/group sizes, and every admission-time plan is seeded from that history (empty = off)")
		storeAgree  = flag.Int("store-min-agreement", 0, "serve stored answers only at or above this vote count")
		storeMaxAge = flag.Duration("store-max-age", 0, "serve stored answers only younger than this (0 = forever)")
		defBudget   = flag.Float64("default-budget", 0, "budget in dollars for tenants not named by -tenant (0 = unlimited)")
		journalDir  = flag.String("journal-dir", "", "directory of per-query manifests + WAL journals: every query becomes durable, and a restarted daemon resumes unfinished ones exactly where they stopped (empty = ephemeral)")
		cbThreshold = flag.Int("circuit-threshold", 5, "consecutive backend failures before the circuit opens and posting parks (0 = no breaker)")
		cbCooldown  = flag.Duration("circuit-cooldown", 30*time.Second, "how long an open circuit waits before probing the backend again")
		deadlineHrs = flag.Float64("deadline-hours", 0, "default wall-clock deadline per query; an overdue query fails alone, its journal stays resumable (0 = none)")
	)
	tenants := map[string]float64{}
	flag.Func("tenant", "tenant budget as id=dollars (repeatable; 0 = unlimited)", func(s string) error {
		id, amount, ok := strings.Cut(s, "=")
		if !ok || id == "" {
			return fmt.Errorf("want id=dollars, got %q", s)
		}
		d, err := strconv.ParseFloat(amount, 64)
		if err != nil || d < 0 {
			return fmt.Errorf("bad budget %q", amount)
		}
		tenants[id] = d
		return nil
	})
	flag.Parse()

	opts := qurk.Options{Assignments: *assignments, Combiner: *combiner, Seed: *seed, DeadlineHours: *deadlineHrs}
	opts.MTurk = qurk.MTurkOptions{
		Endpoint:                  *endpoint,
		PollIntervalSeconds:       *pollSecs,
		AssignmentDurationSeconds: *asnDuration,
	}

	data, err := qurk.OpenDataset(*datasetName, *n, *seed)
	if err != nil {
		fail(err)
	}
	backendName, market, err := buildMarket(*backend, *seed, data.Oracle, &opts)
	if err != nil {
		fail(err)
	}

	store, err := answerstore.Open(*storePath, answerstore.Policy{
		MinAgreement: *storeAgree,
		MaxAge:       *storeMaxAge,
	})
	if err != nil {
		fail(err)
	}
	defer store.Close()

	registry := service.NewRegistry()
	for id, budget := range tenants {
		registry.Ensure(id, budget)
	}
	cfg := service.Config{
		Backends:             map[string]qurk.Marketplace{backendName: market},
		Catalog:              data.Catalog,
		Library:              data.Library,
		Answers:              store,
		Options:              opts,
		Tenants:              registry,
		DefaultBudgetDollars: *defBudget,
		JournalDir:           *journalDir,
	}
	if *cbThreshold > 0 {
		cfg.Circuit = &circuit.Config{
			Threshold: *cbThreshold,
			Cooldown:  *cbCooldown,
			// A validation/auth/budget error proves the marketplace is
			// reachable and answering; only transport faults, 5xx, and
			// throttles (already retried inside the client) count toward
			// tripping the breaker.
			Permanent: func(err error) bool { return !mturk.IsTransient(err) },
		}
	}
	if *statsPath != "" {
		statsStore, err := qurk.OpenStatsStore(*statsPath)
		if err != nil {
			fail(err)
		}
		defer statsStore.Close()
		cfg.Stats = statsStore
	}
	svc, err := service.New(cfg)
	if err != nil {
		fail(err)
	}
	// Replay journaled queries before accepting traffic; resumed runs
	// proceed in the background, and /readyz flips once the scan ends.
	if *journalDir != "" {
		if err := svc.Recover(); err != nil {
			fail(err)
		}
	}

	server := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = server.Shutdown(shutdownCtx)
	}()

	fmt.Printf("qurkd: dataset %s (%d), backend %s, store %s; listening on %s\n",
		data.Name, *n, backendName, storeDesc(*storePath), *addr)
	err = server.ListenAndServe()
	// A signal-driven Shutdown surfaces as ErrServerClosed: drain
	// queries and persist the store before exiting cleanly.
	svc.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
}

func storeDesc(path string) string {
	if path == "" {
		return "memory"
	}
	return path
}

// buildMarket resolves the -backend flag against the dataset oracle.
func buildMarket(backend string, seed int64, oracle qurk.Oracle, opts *qurk.Options) (string, qurk.Marketplace, error) {
	switch strings.ToLower(backend) {
	case "sim", "":
		return "sim", qurk.NewSimMarket(qurk.DefaultMarketConfig(seed), oracle), nil
	case "mturk-sandbox", "mturk":
		name := "mturk-sandbox"
		if strings.EqualFold(backend, "mturk") {
			name = "mturk"
			opts.MTurk.Endpoint = firstNonEmpty(opts.MTurk.Endpoint, qurk.MTurkProductionEndpoint)
			fmt.Fprintln(os.Stderr, "WARNING: -backend mturk posts HITs that cost REAL dollars and reach real workers.")
		}
		client, err := qurk.NewMTurkClient(qurk.MTurkFromOptions(opts.MTurk))
		if err != nil {
			return "", nil, err
		}
		if balance, err := client.CheckBalance(); err != nil {
			return "", nil, fmt.Errorf("MTurk credential check failed: %w", err)
		} else {
			fmt.Fprintf(os.Stderr, "MTurk endpoint %s, available balance $%s\n", client.Endpoint(), balance)
		}
		return name, client, nil
	default:
		return "", nil, fmt.Errorf("unknown backend %q (want sim, mturk-sandbox, or mturk)", backend)
	}
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qurkd:", err)
	os.Exit(1)
}
