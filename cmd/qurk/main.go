// Command qurk is a CLI for the Qurk crowd-powered query processor. It
// executes queries (and TASK DSL scripts) over the built-in datasets,
// printing results, the logical plan, and the HIT cost ledger.
//
// The crowd backend is selectable: the default simulated marketplace
// answers from each dataset's ground-truth oracle; -backend
// mturk-sandbox (or mturk for the real-money marketplace) posts the
// same HITs to Mechanical Turk through the REST client, with
// credentials from the standard AWS environment variables. See
// docs/BACKENDS.md for the sandbox quickstart.
//
// With -journal the run is durable: every marketplace interaction is
// recorded in a write-ahead journal, and after a crash or Ctrl-C the
// same invocation plus -resume picks the query back up with zero
// duplicate HIT posting. See docs/DURABILITY.md.
//
// Usage:
//
//	qurk -dataset celebrities -query "SELECT c.name FROM celeb AS c WHERE isFemale(c.img)"
//	qurk -dataset movie -file query.qurk -sort rate -join smart5x5
//	qurk -dataset squares -n 20 -query "SELECT label FROM squares ORDER BY squareSorter(img)"
//	qurk -backend mturk-sandbox -dataset celebrities -n 4 -query "..."
//	qurk -journal run.qjl -query "..."            # durable run
//	qurk -journal run.qjl -resume -query "..."    # continue after a crash
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"qurk"
)

func main() {
	var (
		datasetName = flag.String("dataset", "celebrities", "dataset: celebrities, squares, animals, movie")
		n           = flag.Int("n", 30, "dataset size (celebrities count or squares count)")
		seed        = flag.Int64("seed", 1, "simulation seed")
		queryText   = flag.String("query", "", "query to run")
		file        = flag.String("file", "", "script file with TASK definitions and queries")
		explainOnly = flag.Bool("explain", false, "print the plan without running")
		joinAlg     = flag.String("join", "naive5", "join interface: simple, naive<B>, smart<R>x<C>")
		sortMethod  = flag.String("sort", "compare", "sort interface: compare, rate, hybrid")
		assignments = flag.Int("assignments", 5, "workers per HIT")
		combiner    = flag.String("combiner", "MajorityVote", "vote combiner: MajorityVote or QualityAdjust")
		backend     = flag.String("backend", "sim", "crowd backend: sim (oracle-driven simulator), mturk-sandbox, or mturk (REAL MONEY)")
		endpoint    = flag.String("mturk-endpoint", "", "override the MTurk endpoint URL (e.g. an in-process fake)")
		pollSecs    = flag.Float64("mturk-poll", 15, "seconds between assignment polls on live backends")
		asnDuration = flag.Int("mturk-deadline", 600, "assignment deadline in seconds before it counts as expired")
		journalPath = flag.String("journal", "", "write-ahead journal path: run durably, resumable after a crash")
		resume      = flag.Bool("resume", false, "resume an interrupted durable run from -journal instead of starting fresh")
		statsPath   = flag.String("stats", "", "observed-statistics store file: runs feed measured selectivities/pass fractions/group sizes, and the optimizer seeds estimates from that history (empty = off)")
		replan      = flag.Bool("replan", false, "re-optimize mid-run at pipeline breakers (join interface and sort-method switches from observed statistics)")
		replanQual  = flag.Float64("replan-quality", 0, "minimum estimated quality a mid-run switch must keep (0 = default 0.85)")
	)
	flag.Parse()
	if *resume && *journalPath == "" {
		fail(fmt.Errorf("-resume requires -journal"))
	}

	opts := qurk.Options{Assignments: *assignments, Combiner: *combiner, Seed: *seed}
	if err := parseJoin(*joinAlg, &opts); err != nil {
		fail(err)
	}
	switch strings.ToLower(*sortMethod) {
	case "compare":
		opts.SortMethod = qurk.SortCompare
	case "rate":
		opts.SortMethod = qurk.SortRate
	case "hybrid":
		opts.SortMethod = qurk.SortHybrid
	default:
		fail(fmt.Errorf("unknown sort method %q", *sortMethod))
	}
	opts.MTurk = qurk.MTurkOptions{
		Endpoint:                  *endpoint,
		PollIntervalSeconds:       *pollSecs,
		AssignmentDurationSeconds: *asnDuration,
	}

	data, err := qurk.OpenDataset(*datasetName, *n, *seed)
	if err != nil {
		fail(err)
	}
	market, err := buildMarket(*backend, &opts)
	if err != nil {
		fail(err)
	}
	if market == nil {
		market = qurk.NewSimMarket(qurk.DefaultMarketConfig(*seed), data.Oracle)
	}
	clientOpts := []qurk.ClientOption{qurk.WithOptions(opts), qurk.WithDataset(data)}
	if *journalPath != "" {
		clientOpts = append(clientOpts, qurk.WithJournal(*journalPath))
	}
	if *replan {
		clientOpts = append(clientOpts, qurk.WithReplan(*replanQual))
	}
	var statsStore *qurk.StatsStore
	if *statsPath != "" {
		statsStore, err = qurk.OpenStatsStore(*statsPath)
		if err != nil {
			fail(err)
		}
		defer statsStore.Close()
		clientOpts = append(clientOpts, qurk.WithStatsStore(statsStore))
	}
	client := qurk.NewClient(market, clientOpts...)

	queries := []string{}
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		script, err := qurk.ParseScript(string(src))
		if err != nil {
			fail(err)
		}
		if err := client.Engine().Library.LoadScript(script); err != nil {
			fail(err)
		}
		for _, q := range script.Queries {
			queries = append(queries, q.String())
		}
	}
	if *queryText != "" {
		queries = append(queries, *queryText)
	}
	if len(queries) == 0 {
		fail(fmt.Errorf("nothing to run: pass -query or -file (tasks available: %s)",
			strings.Join(client.Engine().Library.Names(), ", ")))
	}
	if *journalPath != "" && len(queries) != 1 {
		fail(fmt.Errorf("-journal records exactly one query per journal file, got %d", len(queries)))
	}

	// Ctrl-C / SIGTERM cancels the run cooperatively: in-flight HITs
	// finish or fail fast, the journal (if any) seals consistently, and
	// the partial results and ledger are printed before the nonzero exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, q := range queries {
		fmt.Println("query:", q)
		plan, err := client.Explain(q)
		if err != nil {
			fail(err)
		}
		fmt.Println(plan)
		if *explainOnly {
			continue
		}
		var out *qurk.Relation
		var stats *qurk.ExecStats
		if *resume {
			out, stats, err = client.Resume(ctx, q)
		} else {
			out, stats, err = client.Run(ctx, q)
		}
		if err != nil {
			if errors.Is(ctx.Err(), context.Canceled) {
				reportInterrupted(client.Ledger(), stats, *assignments, *journalPath)
			}
			fail(err)
		}
		printRelation(out)
		fmt.Printf("\n%d HITs posted, cost $%.2f\n", stats.TotalHITs(),
			qurk.DollarCost(stats.TotalHITs(), *assignments))
		if n := stats.TotalExpired(); n > 0 {
			fmt.Printf("note: %d assignments were accepted but never submitted (expired at the deadline and re-posted within the retry budget)\n", n)
		}
		if len(stats.Incomplete) > 0 {
			fmt.Printf("WARNING: %d crowd tasks went unanswered after workers refused or abandoned their HITs and the retry budget ran out\n", len(stats.Incomplete))
		}
		fmt.Println()
	}
	if !*explainOnly {
		fmt.Println("cost ledger:")
		fmt.Println(client.Ledger().Report())
	}
}

// reportInterrupted prints what an interrupted run already paid for —
// the partial HIT and expiry counts plus the full cost ledger — and,
// when the run was journaled, how to continue it. fail() then exits
// nonzero.
func reportInterrupted(ledger *qurk.Ledger, stats *qurk.ExecStats, assignments int, journalPath string) {
	fmt.Fprintln(os.Stderr, "\ninterrupted: partial progress before shutdown:")
	if stats != nil {
		fmt.Fprintf(os.Stderr, "  %d HITs posted, cost $%.2f\n", stats.TotalHITs(),
			qurk.DollarCost(stats.TotalHITs(), assignments))
		if n := stats.TotalExpired(); n > 0 {
			fmt.Fprintf(os.Stderr, "  %d assignments expired before the interrupt\n", n)
		}
	}
	fmt.Fprintln(os.Stderr, "cost ledger:")
	fmt.Fprintln(os.Stderr, ledger.Report())
	if journalPath != "" {
		fmt.Fprintf(os.Stderr, "journal sealed; continue with -journal %s -resume\n", journalPath)
	} else {
		fmt.Fprintln(os.Stderr, "run was not journaled; re-running restarts from scratch (use -journal to make runs resumable)")
	}
}

// buildMarket resolves the -backend flag. nil means "use the dataset's
// simulator" (the sim backend needs the dataset oracle, so buildEngine
// constructs it).
func buildMarket(backend string, opts *qurk.Options) (qurk.Marketplace, error) {
	switch strings.ToLower(backend) {
	case "sim", "":
		return nil, nil
	case "mturk-sandbox", "mturk":
		if strings.EqualFold(backend, "mturk") {
			opts.MTurk.Endpoint = firstNonEmpty(opts.MTurk.Endpoint, qurk.MTurkProductionEndpoint)
			fmt.Fprintln(os.Stderr, "WARNING: -backend mturk posts HITs that cost REAL dollars and reach real workers.")
		}
		client, err := qurk.NewMTurkClient(qurk.MTurkFromOptions(opts.MTurk))
		if err != nil {
			return nil, err
		}
		if balance, err := client.CheckBalance(); err != nil {
			return nil, fmt.Errorf("MTurk credential check failed: %w", err)
		} else {
			fmt.Fprintf(os.Stderr, "MTurk endpoint %s, available balance $%s\n", client.Endpoint(), balance)
		}
		return client, nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want sim, mturk-sandbox, or mturk)", backend)
	}
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// parseJoin decodes simple / naive<B> / smart<R>x<C>.
func parseJoin(s string, opts *qurk.Options) error {
	s = strings.ToLower(strings.TrimSpace(s))
	switch {
	case s == "simple":
		opts.JoinAlgorithm = qurk.SimpleJoin
		return nil
	case strings.HasPrefix(s, "naive"):
		opts.JoinAlgorithm = qurk.NaiveJoin
		if rest := strings.TrimPrefix(s, "naive"); rest != "" {
			var b int
			if _, err := fmt.Sscanf(rest, "%d", &b); err != nil || b < 1 {
				return fmt.Errorf("bad naive batch size %q", rest)
			}
			opts.JoinBatch = b
		}
		return nil
	case strings.HasPrefix(s, "smart"):
		opts.JoinAlgorithm = qurk.SmartJoin
		if rest := strings.TrimPrefix(s, "smart"); rest != "" {
			var r, c int
			if _, err := fmt.Sscanf(rest, "%dx%d", &r, &c); err != nil || r < 1 || c < 1 {
				return fmt.Errorf("bad smart grid %q", rest)
			}
			opts.GridRows, opts.GridCols = r, c
		}
		return nil
	default:
		return fmt.Errorf("unknown join interface %q", s)
	}
}

func printRelation(r *qurk.Relation) {
	if r.Schema() == nil || r.Schema().Len() == 0 {
		fmt.Println("(empty result)")
		return
	}
	for i := 0; i < r.Schema().Len(); i++ {
		if i > 0 {
			fmt.Print(" | ")
		}
		fmt.Print(r.Schema().Column(i).Name)
	}
	fmt.Println()
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		for j := 0; j < row.Len(); j++ {
			if j > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(row.At(j).String())
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", r.Len())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qurk:", err)
	os.Exit(1)
}
