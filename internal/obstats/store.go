// Package obstats is the persistent observed-statistics store behind
// adaptive re-optimization: every run feeds it with per-task observed
// selectivities, POSSIBLY feature pass fractions, crowd-sort group
// sizes, and worker latency/agreement, and the next run's optimizer
// pass seeds its estimates from that history instead of the paper's
// fixed constants (§2.6/§6 note the estimates are priors; PR 3
// recorded the estimator being factor-of-two off past them).
//
// Persistence uses the same append-only CRC-framed record file as
// internal/answerstore and internal/wal (8-byte header: little-endian
// uint32 payload length + uint32 CRC-32/IEEE of the payload, then a
// JSON payload), including torn-tail truncation on open, so a crash
// mid-append loses at most the record being written. Each Observe call
// appends one record; on open all records replay into per-(task, kind)
// weighted running means. The store sits below the executor and must
// not depend on the journal package, so the framing is re-implemented
// here.
package obstats

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// Statistic kinds recorded by the executor and consumed by the
// optimizer. Kinds are plain strings on the wire so the store never
// needs a schema migration when a new one appears.
const (
	// KindSelectivity is a crowd filter's observed accept fraction
	// (accepted / input tuples), or a join's match fraction over the
	// candidate pairs actually asked.
	KindSelectivity = "selectivity"
	// KindPassFraction is the observed POSSIBLY feature pass fraction:
	// the share of candidate join pairs whose extracted features agree
	// (and therefore reach the crowd).
	KindPassFraction = "pass-fraction"
	// KindGroupSize is a crowd ORDER BY group's observed size in tuples.
	KindGroupSize = "group-size"
	// KindLatencyHours is the observed crowd makespan of one operator's
	// HIT groups, in simulated crowd-hours.
	KindLatencyHours = "latency-hours"
	// KindAgreement is the observed worker agreement (fraction of
	// assignments that voted with the majority).
	KindAgreement = "agreement"
)

// record is the on-disk JSON payload for one Observe call.
type record struct {
	Task   string    `json:"task"`
	Kind   string    `json:"kind"`
	Value  float64   `json:"value"`
	Weight float64   `json:"weight"`
	At     time.Time `json:"at"`
}

// cell is the in-memory aggregate for one (task, kind): a weighted
// running mean.
type cell struct {
	sum    float64 // Σ value·weight
	weight float64 // Σ weight
	count  int
}

// Stats is a snapshot of store traffic since open.
type Stats struct {
	// Entries is the number of distinct (task, kind) aggregates held.
	Entries int `json:"entries"`
	// Observed counts Observe calls accepted since open.
	Observed int `json:"observed"`
	// Loaded counts records replayed from the file at open.
	Loaded int `json:"loaded"`
}

// Entry is one aggregate as listed by Snapshot.
type Entry struct {
	// Task is the crowd task name the statistic belongs to.
	Task string `json:"task"`
	// Kind is the statistic kind (one of the Kind* constants).
	Kind string `json:"kind"`
	// Value is the weighted mean of all observations.
	Value float64 `json:"value"`
	// Weight is the total observation weight behind Value.
	Weight float64 `json:"weight"`
	// Count is the number of Observe calls folded in.
	Count int `json:"count"`
}

// Store is the persistent observed-statistics store. It satisfies
// core.ObservedStats, so plugging it into an Engine's ObStats slot (or
// qurk.Client's WithStatsStore) makes every run feed it and every
// optimizer pass read it. All methods are safe for concurrent use: one
// store typically serves every tenant of a qurkd process.
type Store struct {
	mu    sync.Mutex
	cells map[string]*cell
	file  *os.File
	stats Stats
	now   func() time.Time
}

// frame header: payload length + CRC-32/IEEE of the payload.
const headerSize = 8

// key builds the map key for one (task, kind) aggregate. Task names
// never contain NUL, so the join is unambiguous.
func key(task, kind string) string { return task + "\x00" + kind }

// Open opens (creating if needed) the store backed by the record file
// at path, replaying existing records into memory and truncating a torn
// tail left by a crash. An empty path yields a memory-only store that
// lives as long as the process — useful for tests and single-run CLIs.
func Open(path string) (*Store, error) {
	s := &Store{
		cells: make(map[string]*cell),
		now:   time.Now,
	}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obstats: open %s: %w", path, err)
	}
	good, err := s.replay(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("obstats: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("obstats: seek %s: %w", path, err)
	}
	s.file = f
	return s, nil
}

// replay reads frames from the start of f, folding each valid record
// and returning the offset just past the last valid frame. Corruption —
// a short header, an impossible length, a CRC mismatch, or undecodable
// JSON — ends the replay at the preceding frame boundary (torn-tail
// semantics, same as internal/wal).
func (s *Store) replay(f *os.File) (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("obstats: stat: %w", err)
	}
	size := info.Size()
	var off int64
	hdr := make([]byte, headerSize)
	for off+headerSize <= size {
		if _, err := f.ReadAt(hdr, off); err != nil {
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		end := off + headerSize + int64(length)
		if end > size {
			break // torn payload
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+headerSize); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		s.fold(rec.Task, rec.Kind, rec.Value, rec.Weight)
		s.stats.Loaded++
		off = end
	}
	s.stats.Entries = len(s.cells)
	return off, nil
}

// fold merges one observation into its aggregate. Callers hold the
// lock (or, during replay, exclusive ownership).
func (s *Store) fold(task, kind string, value, weight float64) {
	c := s.cells[key(task, kind)]
	if c == nil {
		c = &cell{}
		s.cells[key(task, kind)] = c
	}
	c.sum += value * weight
	c.weight += weight
	c.count++
}

// Observe records one observed statistic with the given weight
// (typically the tuple or pair count it was measured over) and appends
// it to the backing file. Non-positive weights and non-finite values
// are ignored: a degenerate run must not poison history.
func (s *Store) Observe(task, kind string, value, weight float64) {
	if weight <= 0 || math.IsNaN(value) || math.IsInf(value, 0) || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fold(task, kind, value, weight)
	s.stats.Observed++
	s.stats.Entries = len(s.cells)
	if s.file == nil {
		return
	}
	s.append(record{Task: task, Kind: kind, Value: value, Weight: weight, At: s.now()})
}

// append frames and writes one record. Write errors are swallowed after
// marking the file dead: the in-memory store keeps serving (losing
// persistence is strictly better than failing queries mid-run).
func (s *Store) append(rec record) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	if _, err := s.file.Write(buf); err != nil {
		s.file.Close()
		s.file = nil
		return
	}
	if err := s.file.Sync(); err != nil {
		s.file.Close()
		s.file = nil
	}
}

// Estimate returns the weighted mean and total weight for one
// (task, kind), or ok=false when nothing was ever observed.
func (s *Store) Estimate(task, kind string) (value, weight float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, found := s.cells[key(task, kind)]
	if !found || c.weight <= 0 {
		return 0, 0, false
	}
	return c.sum / c.weight, c.weight, true
}

// Snapshot lists every aggregate, sorted by task then kind, for
// inspection endpoints and tests.
func (s *Store) Snapshot() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.cells))
	for k, c := range s.cells {
		var task, kind string
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				task, kind = k[:i], k[i+1:]
				break
			}
		}
		e := Entry{Task: task, Kind: kind, Weight: c.weight, Count: c.count}
		if c.weight > 0 {
			e.Value = c.sum / c.weight
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Stats returns a snapshot of store traffic.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.cells)
	return st
}

// Len returns the number of distinct (task, kind) aggregates held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cells)
}

// Close releases the backing file. The in-memory aggregates stay
// readable; subsequent Observes simply stop persisting.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}

// setClock overrides the record timestamp clock; tests use it for
// reproducible files.
func (s *Store) setClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}
