package obstats

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestObserveEstimateWeightedMean(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Estimate("samePerson", KindPassFraction); ok {
		t.Fatal("empty store returned an estimate")
	}
	s.Observe("samePerson", KindPassFraction, 0.2, 100)
	s.Observe("samePerson", KindPassFraction, 0.6, 300)
	v, w, ok := s.Estimate("samePerson", KindPassFraction)
	if !ok {
		t.Fatal("estimate missing after observations")
	}
	if want := (0.2*100 + 0.6*300) / 400; v != want {
		t.Fatalf("weighted mean = %v, want %v", v, want)
	}
	if w != 400 {
		t.Fatalf("weight = %v, want 400", w)
	}
	// Kinds are independent aggregates.
	if _, _, ok := s.Estimate("samePerson", KindSelectivity); ok {
		t.Fatal("selectivity estimate leaked from pass-fraction observations")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestObserveRejectsDegenerateInputs(t *testing.T) {
	s, _ := Open("")
	s.Observe("t", KindSelectivity, 0.5, 0)          // zero weight
	s.Observe("t", KindSelectivity, 0.5, -3)         // negative weight
	s.Observe("t", KindSelectivity, math.NaN(), 10)  // NaN value
	s.Observe("t", KindSelectivity, math.Inf(1), 10) // +Inf value
	s.Observe("t", KindSelectivity, 0.5, math.NaN()) // NaN weight
	if s.Len() != 0 {
		t.Fatalf("degenerate observations were stored: Len = %d", s.Len())
	}
}

func TestPersistReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.qst")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.setClock(func() time.Time { return time.Unix(1700000000, 0).UTC() })
	s.Observe("isFemale", KindSelectivity, 0.4, 20)
	s.Observe("isFemale", KindSelectivity, 0.6, 20)
	s.Observe("squareSorter", KindGroupSize, 12, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Stats().Loaded; got != 3 {
		t.Fatalf("Loaded = %d, want 3", got)
	}
	v, w, ok := r.Estimate("isFemale", KindSelectivity)
	if !ok || v != 0.5 || w != 40 {
		t.Fatalf("replayed estimate = (%v, %v, %v), want (0.5, 40, true)", v, w, ok)
	}
	v, _, ok = r.Estimate("squareSorter", KindGroupSize)
	if !ok || v != 12 {
		t.Fatalf("replayed group size = (%v, %v)", v, ok)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.qst")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe("a", KindSelectivity, 0.25, 4)
	s.Observe("b", KindSelectivity, 0.75, 4)
	s.Close()

	// Append a torn frame: a valid-looking header promising more bytes
	// than exist.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:4], 9999)
	f.Write(hdr)
	f.Write([]byte("partial"))
	f.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Loaded; got != 2 {
		t.Fatalf("Loaded = %d after torn tail, want 2", got)
	}
	// The torn tail must be gone: a fresh observation then a replay
	// sees exactly three records.
	r.Observe("c", KindSelectivity, 0.5, 4)
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Stats().Loaded; got != 3 {
		t.Fatalf("Loaded = %d after append-past-torn-tail, want 3", got)
	}
}

func TestCorruptPayloadStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.qst")
	s, _ := Open(path)
	s.Observe("a", KindSelectivity, 0.25, 4)
	s.Observe("b", KindSelectivity, 0.75, 4)
	s.Close()

	// Flip a payload byte in the second record: its CRC no longer
	// matches, so replay stops after the first record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := binary.LittleEndian.Uint32(data[0:4])
	data[headerSize+int(firstLen)+headerSize] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Stats().Loaded; got != 1 {
		t.Fatalf("Loaded = %d after CRC corruption, want 1", got)
	}
	if _, _, ok := r.Estimate("b", KindSelectivity); ok {
		t.Fatal("corrupt record was served")
	}
}

func TestSnapshotSortedAndStats(t *testing.T) {
	s, _ := Open("")
	s.Observe("zeta", KindGroupSize, 8, 1)
	s.Observe("alpha", KindSelectivity, 0.5, 10)
	s.Observe("alpha", KindAgreement, 0.9, 10)
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(snap))
	}
	if snap[0].Task != "alpha" || snap[0].Kind != KindAgreement {
		t.Fatalf("Snapshot[0] = %+v, want alpha/agreement first", snap[0])
	}
	if snap[2].Task != "zeta" || snap[2].Value != 8 || snap[2].Count != 1 {
		t.Fatalf("Snapshot[2] = %+v", snap[2])
	}
	st := s.Stats()
	if st.Observed != 3 || st.Entries != 3 || st.Loaded != 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestConcurrentObserve(t *testing.T) {
	s, _ := Open(filepath.Join(t.TempDir(), "stats.qst"))
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Observe("task", KindSelectivity, 0.5, 1)
				s.Estimate("task", KindSelectivity)
			}
		}()
	}
	wg.Wait()
	v, w, ok := s.Estimate("task", KindSelectivity)
	if !ok || v != 0.5 || w != 400 {
		t.Fatalf("concurrent estimate = (%v, %v, %v), want (0.5, 400, true)", v, w, ok)
	}
}
