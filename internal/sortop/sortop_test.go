package sortop

import (
	"fmt"
	"math/rand"
	"testing"

	"qurk/internal/crowd"
	"qurk/internal/relation"
	"qurk/internal/stats"
	"qurk/internal/task"
)

var sqSchema = relation.MustSchema(
	relation.Column{Name: "id", Kind: relation.KindText},
	relation.Column{Name: "label", Kind: relation.KindText},
	relation.Column{Name: "img", Kind: relation.KindURL},
)

// squares builds an n-row relation whose latent score is the row index.
func squares(n int) *relation.Relation {
	r := relation.New("squares", sqSchema)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("sq%03d", i)
		_ = r.AppendValues(relation.Text(id), relation.Text(id), relation.URL("http://x/"+id+".png"))
	}
	return r
}

// sqOracle scores squares by index with configurable subjective noise.
type sqOracle struct {
	n     int
	sigma float64
}

func (o *sqOracle) JoinMatch(relation.Tuple, relation.Tuple) (bool, float64) { return false, 0 }
func (o *sqOracle) FilterTruth(string, relation.Tuple) (bool, float64)       { return false, 0 }
func (o *sqOracle) FieldValue(string, string, relation.Tuple) (string, float64, []string) {
	return "", 0, nil
}
func (o *sqOracle) Score(taskName string, t relation.Tuple) (float64, float64) {
	var i int
	fmt.Sscanf(t.MustGet("id").Text(), "sq%d", &i)
	return float64(i), o.sigma
}
func (o *sqOracle) ScoreRange(string) (float64, float64) { return 0, float64(o.n - 1) }

func rankTask() *task.Rank {
	return &task.Rank{
		Name: "squareSorter", SingularName: "square", PluralName: "squares",
		OrderDimensionName: "area", LeastName: "smallest", MostName: "largest",
		HTML: task.MustPrompt("<img src='%s' class=lgImg>", "img"),
	}
}

func sqMarket(seed int64, o crowd.Oracle) *crowd.SimMarket {
	return crowd.NewSimMarket(crowd.DefaultConfig(seed), o)
}

// tauVsTruth computes τ between a result order and the identity order.
func tauVsTruth(order []int) float64 {
	a := make([]float64, len(order))
	b := make([]float64, len(order))
	for pos, idx := range order {
		a[pos] = float64(pos)
		b[pos] = float64(idx)
	}
	tau, err := stats.KendallTauB(a, b)
	if err != nil {
		panic(err)
	}
	return tau
}

func TestCoverGroupsCoversAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ n, s int }{{10, 5}, {40, 5}, {13, 4}, {7, 3}, {5, 5}, {6, 10}} {
		groups := CoverGroups(c.n, c.s, rng)
		covered := map[[2]int]bool{}
		for _, g := range groups {
			if len(g) > c.s && c.s < c.n {
				t.Fatalf("n=%d s=%d: group too big: %v", c.n, c.s, g)
			}
			for i := 0; i < len(g); i++ {
				for j := i + 1; j < len(g); j++ {
					covered[pairKey(g[i], g[j])] = true
				}
			}
		}
		want := c.n * (c.n - 1) / 2
		if len(covered) != want {
			t.Errorf("n=%d s=%d: covered %d pairs, want %d", c.n, c.s, len(covered), want)
		}
		// Group count should approach the paper's N(N-1)/(S(S-1)).
		if c.s < c.n {
			bound := float64(c.n*(c.n-1)) / float64(c.s*(c.s-1))
			if float64(len(groups)) > bound*1.6+1 {
				t.Errorf("n=%d s=%d: %d groups, bound %.1f (>60%% overhead)", c.n, c.s, len(groups), bound)
			}
		}
	}
}

func TestCompareSortsSquaresPerfectly(t *testing.T) {
	// Paper §4.2.2: group size 5 on 40 squares yields τ = 1.0.
	n := 20 // smaller for test speed; same shape
	o := &sqOracle{n: n, sigma: 0.005}
	res, err := Compare(squares(n), rankTask(), CompareOptions{GroupSize: 5, Assignments: 5, Seed: 3}, sqMarket(5, o))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) != 0 {
		t.Fatalf("incomplete: %v", res.Incomplete)
	}
	if tau := tauVsTruth(res.Order); tau < 0.98 {
		t.Errorf("compare tau = %.3f, want ≈1.0", tau)
	}
	// HIT count ≈ N(N-1)/(S(S-1)) = 19.
	if res.HITCount < 19 || res.HITCount > 32 {
		t.Errorf("compare HITs = %d, want ≈19–32", res.HITCount)
	}
}

func TestCompareGroup20Refused(t *testing.T) {
	// Paper §4.2.2: "We stopped the group size 20 experiment after
	// several hours of uncompleted HITs."
	n := 40
	o := &sqOracle{n: n, sigma: 0.005}
	res, err := Compare(squares(n), rankTask(), CompareOptions{GroupSize: 20, Assignments: 5, Seed: 3}, sqMarket(5, o))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) == 0 {
		t.Error("group-size-20 HITs should be refused")
	}
}

func TestRateApproximateOrder(t *testing.T) {
	// Paper §4.2.2: Rate achieves τ ≈ 0.78 — strong but imperfect.
	n := 40
	o := &sqOracle{n: n, sigma: 0.08}
	res, err := Rate(squares(n), rankTask(), RateOptions{BatchSize: 5, Assignments: 5, Seed: 7}, sqMarket(11, o))
	if err != nil {
		t.Fatal(err)
	}
	// ceil(40/5) = 8 HITs — linear, not quadratic.
	if res.HITCount != 8 {
		t.Errorf("rate HITs = %d, want 8", res.HITCount)
	}
	tau := tauVsTruth(res.Order)
	if tau < 0.55 || tau > 0.95 {
		t.Errorf("rate tau = %.3f, want imperfect-but-strong (0.55–0.95)", tau)
	}
	// Summaries populated with plausible stats.
	for i, s := range res.Summaries {
		if s.Count != 5 {
			t.Fatalf("item %d has %d ratings, want 5", i, s.Count)
		}
		if s.Mean < 1 || s.Mean > 7 {
			t.Fatalf("item %d mean %.2f out of scale", i, s.Mean)
		}
	}
}

func TestCompareBeatsRate(t *testing.T) {
	// The paper's core sort finding: Compare is more accurate than
	// Rate on the same data (§4.2.2).
	n := 30
	o := &sqOracle{n: n, sigma: 0.03}
	cmp, err := Compare(squares(n), rankTask(), CompareOptions{GroupSize: 5, Assignments: 5, Seed: 1}, sqMarket(13, o))
	if err != nil {
		t.Fatal(err)
	}
	rate, err := Rate(squares(n), rankTask(), RateOptions{BatchSize: 5, Assignments: 5, Seed: 1}, sqMarket(13, o))
	if err != nil {
		t.Fatal(err)
	}
	tc, tr := tauVsTruth(cmp.Order), tauVsTruth(rate.Order)
	if tc <= tr {
		t.Errorf("compare tau %.3f ≤ rate tau %.3f", tc, tr)
	}
	if cmp.HITCount <= rate.HITCount {
		t.Errorf("compare HITs %d ≤ rate HITs %d — quadratic vs linear inverted", cmp.HITCount, rate.HITCount)
	}
}

func TestModifiedKappaTracksAmbiguity(t *testing.T) {
	// κ falls as subjective noise grows (paper Fig. 6).
	n := 15
	kappaAt := func(sigma float64, seed int64) float64 {
		o := &sqOracle{n: n, sigma: sigma}
		res, err := Compare(squares(n), rankTask(), CompareOptions{GroupSize: 5, Assignments: 5, Seed: 1}, sqMarket(seed, o))
		if err != nil {
			t.Fatal(err)
		}
		k, err := res.ModifiedKappa()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	crisp := kappaAt(0.005, 17)
	noisy := kappaAt(0.5, 17)
	random := kappaAt(50, 17)
	if !(crisp > noisy && noisy > random) {
		t.Errorf("κ ordering wrong: crisp %.2f, noisy %.2f, random %.2f", crisp, noisy, random)
	}
	if crisp < 0.5 {
		t.Errorf("crisp κ = %.2f, want high", crisp)
	}
	if random > 0.25 {
		t.Errorf("random κ = %.2f, want ≈0", random)
	}
}

func TestCyclesAppearUnderNoise(t *testing.T) {
	n := 12
	o := &sqOracle{n: n, sigma: 1.5}
	res, err := Compare(squares(n), rankTask(), CompareOptions{GroupSize: 4, Assignments: 5, Seed: 9}, sqMarket(19, o))
	if err != nil {
		t.Fatal(err)
	}
	if res.CycleCount == 0 {
		t.Error("expected majority cycles under heavy noise (paper §4.1.1)")
	}
	// And none under near-zero noise.
	o2 := &sqOracle{n: n, sigma: 0.002}
	res2, err := Compare(squares(n), rankTask(), CompareOptions{GroupSize: 4, Assignments: 5, Seed: 9}, sqMarket(19, o2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.CycleCount > 1 {
		t.Errorf("crisp data produced %d cycles", res2.CycleCount)
	}
}

func TestHybridImprovesOnRate(t *testing.T) {
	// Paper Fig. 7: hybrid refinement closes most of the Rate→Compare
	// accuracy gap in a handful of HITs.
	// Step 7 does not divide n=30, so successive passes hit offset
	// windows (the paper's Window-6-on-40 configuration).
	n := 30
	o := &sqOracle{n: n, sigma: 0.03}
	hy, err := Hybrid(squares(n), rankTask(), HybridOptions{
		Strategy: SlidingWindow, WindowSize: 5, Step: 7, Iterations: 24,
		Assignments: 5, Seed: 23,
	}, sqMarket(29, o))
	if err != nil {
		t.Fatal(err)
	}
	t0 := tauVsTruth(hy.InitialOrder)
	t1 := tauVsTruth(hy.Order)
	if t1 <= t0 {
		t.Errorf("hybrid tau %.3f did not improve on rate tau %.3f", t1, t0)
	}
	if t1 < 0.9 {
		t.Errorf("hybrid final tau = %.3f, want ≥0.9", t1)
	}
	if len(hy.Trace) != 24 {
		t.Errorf("trace length = %d, want 24", len(hy.Trace))
	}
	if hy.CompareHITs != 24 || hy.RateHITs != 6 {
		t.Errorf("HIT decomposition = %d rate + %d compare", hy.RateHITs, hy.CompareHITs)
	}
}

func TestHybridStrategies(t *testing.T) {
	n := 20
	o := &sqOracle{n: n, sigma: 0.03}
	for _, strat := range []WindowStrategy{RandomWindow, ConfidenceWindow, SlidingWindow} {
		hy, err := Hybrid(squares(n), rankTask(), HybridOptions{
			Strategy: strat, WindowSize: 5, Step: 6, Iterations: 10,
			Assignments: 5, Seed: 31,
		}, sqMarket(37, o))
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if tauVsTruth(hy.Order) < tauVsTruth(hy.InitialOrder)-0.05 {
			t.Errorf("%v: refinement made order worse", strat)
		}
	}
}

func TestHybridWindowStepDivisorStalls(t *testing.T) {
	// Paper §4.2.4: Window-5 (t divides N) revisits the same windows
	// and stalls; Window-6 keeps improving. Use N=20, t=5 vs t=6 over
	// enough iterations to complete several passes.
	n := 20
	run := func(step int) float64 {
		o := &sqOracle{n: n, sigma: 0.04}
		hy, err := Hybrid(squares(n), rankTask(), HybridOptions{
			Strategy: SlidingWindow, WindowSize: 5, Step: step, Iterations: 20,
			Assignments: 5, Seed: 41,
		}, sqMarket(43, o))
		if err != nil {
			t.Fatal(err)
		}
		return tauVsTruth(hy.Order)
	}
	tDiv := run(5)
	tOff := run(6)
	if tOff < tDiv-0.02 {
		t.Errorf("offset window tau %.3f worse than divisor window %.3f", tOff, tDiv)
	}
}

func TestMaxTournament(t *testing.T) {
	n := 25
	o := &sqOracle{n: n, sigma: 0.01}
	res, err := Max(squares(n), rankTask(), MaxOptions{BatchSize: 5, Assignments: 5}, sqMarket(47, o))
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != n-1 {
		t.Errorf("max = item %d, want %d", res.Index, n-1)
	}
	// Rounds: 25 → 5 → 1 = 2 rounds, 5+1 = 6 HITs.
	if res.Rounds != 2 || res.HITCount != 6 {
		t.Errorf("rounds=%d hits=%d, want 2 rounds 6 HITs", res.Rounds, res.HITCount)
	}
	minRes, err := Max(squares(n), rankTask(), MaxOptions{BatchSize: 5, Assignments: 5, Min: true, GroupID: "min"}, sqMarket(53, o))
	if err != nil {
		t.Fatal(err)
	}
	if minRes.Index != 0 {
		t.Errorf("min = item %d, want 0", minRes.Index)
	}
}

func TestTopK(t *testing.T) {
	n := 15
	o := &sqOracle{n: n, sigma: 0.005}
	top, res, err := TopK(squares(n), rankTask(), 3, CompareOptions{GroupSize: 5, Assignments: 5, Seed: 3}, sqMarket(59, o))
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("topK = %v", top)
	}
	want := []int{14, 13, 12}
	for i := range want {
		if top[i] != want[i] {
			t.Errorf("top[%d] = %d, want %d (full order %v)", i, top[i], want[i], res.Order)
		}
	}
	if _, _, err := TopK(squares(n), rankTask(), 0, CompareOptions{}, sqMarket(1, o)); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSortValidation(t *testing.T) {
	o := &sqOracle{n: 2}
	if _, err := Compare(squares(1), rankTask(), CompareOptions{}, sqMarket(1, o)); err == nil {
		t.Error("1-item compare accepted")
	}
	if _, err := Rate(squares(0), rankTask(), RateOptions{}, sqMarket(1, o)); err == nil {
		t.Error("empty rate accepted")
	}
	if _, err := Hybrid(squares(1), rankTask(), HybridOptions{}, sqMarket(1, o)); err == nil {
		t.Error("1-item hybrid accepted")
	}
	if _, err := Max(relation.New("empty", sqSchema), rankTask(), MaxOptions{}, sqMarket(1, o)); err == nil {
		t.Error("empty max accepted")
	}
}

func TestRateBatchSizeInsensitive(t *testing.T) {
	// Paper §4.2.2: rating batch size does not noticeably change
	// accuracy, only HIT count.
	n := 40
	o := &sqOracle{n: n, sigma: 0.03}
	var taus []float64
	for i, batch := range []int{1, 5, 10} {
		res, err := Rate(squares(n), rankTask(), RateOptions{BatchSize: batch, Assignments: 5, Seed: int64(i)}, sqMarket(61+int64(i), o))
		if err != nil {
			t.Fatal(err)
		}
		wantHITs := (n + batch - 1) / batch
		if res.HITCount != wantHITs {
			t.Errorf("batch %d: HITs = %d, want %d", batch, res.HITCount, wantHITs)
		}
		taus = append(taus, tauVsTruth(res.Order))
	}
	for _, tau := range taus {
		if tau < 0.55 {
			t.Errorf("taus across batch sizes = %v; one collapsed", taus)
		}
	}
}

func TestCompareBatchGroupsReducesHITs(t *testing.T) {
	// Merging b comparison groups per HIT divides the HIT count by b
	// (paper §4.1.1: "We can batch b such groups in a HIT to reduce
	// the number of hits by a factor of b").
	n := 20
	o := &sqOracle{n: n, sigma: 0.01}
	single, err := Compare(squares(n), rankTask(), CompareOptions{GroupSize: 5, BatchGroups: 1, Assignments: 5, Seed: 3}, sqMarket(71, o))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Compare(squares(n), rankTask(), CompareOptions{GroupSize: 5, BatchGroups: 3, Assignments: 5, Seed: 3}, sqMarket(71, o))
	if err != nil {
		t.Fatal(err)
	}
	wantMax := (single.HITCount + 2) / 3
	if batched.HITCount > wantMax {
		t.Errorf("batched HITs = %d, want ≤ ceil(%d/3) = %d", batched.HITCount, single.HITCount, wantMax)
	}
	// Quality holds.
	if tau := tauVsTruth(batched.Order); tau < 0.95 {
		t.Errorf("batched-groups tau = %.3f", tau)
	}
}
