package sortop

import (
	"fmt"
	"math/rand"
	"sort"

	"qurk/internal/combine"
	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// DefaultRateBatch is the rating interface's items-per-HIT default,
// shared with callers that pack the HITs themselves (the streaming
// executor) so layout and question minting cannot diverge.
const DefaultRateBatch = 5

// RateOptions configures a rating-based sort.
type RateOptions struct {
	// BatchSize is items per HIT (default DefaultRateBatch).
	BatchSize int
	// Assignments is ratings per item (default 5, paper §4.2).
	Assignments int
	// Scale is the Likert scale size (default 7, paper §4.1.2).
	Scale int
	// ContextSize is the number of random sample items shown for
	// calibration (default 10, paper §4.1.2).
	ContextSize int
	// GroupID labels the HIT group.
	GroupID string
	// Seed drives context sampling.
	Seed int64
}

func (o *RateOptions) fillDefaults() {
	if o.BatchSize == 0 {
		o.BatchSize = DefaultRateBatch
	}
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.Scale == 0 {
		o.Scale = 7
	}
	if o.ContextSize == 0 {
		o.ContextSize = 10
	}
	if o.GroupID == "" {
		o.GroupID = "rate"
	}
}

// RateResult is the outcome of a rating sort.
type RateResult struct {
	// Order lists item indices by ascending mean rating.
	Order []int
	// Summaries holds each item's mean/std/count — the hybrid
	// algorithm's confidence inputs (§4.1.3).
	Summaries []combine.RatingSummary
	// HITCount, AssignmentCount, MakespanHours as in CompareResult.
	HITCount, AssignmentCount int
	MakespanHours             float64
	// Incomplete lists refused HITs.
	Incomplete []string
}

// RateTally accumulates Likert ratings for callers that drive posting
// themselves — the streaming executor posts the questions from
// BuildRate through its chunked poster (so refusal/expiry retries
// apply) and feeds every answer back through Add.
type RateTally struct {
	qIDs []string
	idx  map[string]int
	// ratings maps question ID → collected ratings, in arrival order.
	ratings map[string][]float64
}

// BuildRate mints one rating question per row (IDs "<group>/itemNNNN",
// with the §4.1.2 random context sample fixed by opts.Seed) plus the
// tally that folds their answers. Rate is BuildRate + a blocking
// marketplace round.
func BuildRate(items *relation.Relation, rt *task.Rank, opts RateOptions) ([]hit.Question, *RateTally, error) {
	opts.fillDefaults()
	if err := rt.Validate(); err != nil {
		return nil, nil, err
	}
	n := items.Len()
	if n < 1 {
		return nil, nil, fmt.Errorf("sortop: nothing to rate")
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Context sample: up to ContextSize random items, fixed per run
	// (the paper samples per-interface; one sample per run keeps the
	// simulation deterministic and is behaviorally equivalent since
	// simulated workers calibrate against the oracle's range).
	ctxN := opts.ContextSize
	if ctxN > n {
		ctxN = n
	}
	perm := rng.Perm(n)
	context := make([]relation.Tuple, 0, ctxN)
	for _, idx := range perm[:ctxN] {
		context = append(context, items.Row(idx))
	}

	questions := make([]hit.Question, n)
	tally := &RateTally{
		qIDs:    make([]string, n),
		idx:     make(map[string]int, n),
		ratings: make(map[string][]float64, n),
	}
	for i := 0; i < n; i++ {
		questions[i] = hit.Question{
			ID:      fmt.Sprintf("%s/item%04d", opts.GroupID, i),
			Kind:    hit.RateQ,
			Task:    rt.Name,
			Tuple:   items.Row(i),
			Context: context,
			Scale:   opts.Scale,
		}
		tally.qIDs[i] = questions[i].ID
		tally.idx[questions[i].ID] = i
	}
	return questions, tally, nil
}

// Add folds one worker's rating for one question.
func (t *RateTally) Add(qid string, ans hit.Answer) {
	if _, ok := t.idx[qid]; !ok {
		return
	}
	t.ratings[qid] = append(t.ratings[qid], float64(ans.Rating))
}

// Result combines the ratings into per-item summaries and the
// ascending-mean order. Cost and latency fields are the posting
// caller's to fill.
func (t *RateTally) Result() *RateResult {
	n := len(t.qIDs)
	combined := combine.CombineRatings(t.ratings)
	res := &RateResult{Summaries: make([]combine.RatingSummary, n)}
	for i := 0; i < n; i++ {
		res.Summaries[i] = combined[t.qIDs[i]]
	}
	res.Order = make([]int, n)
	for i := range res.Order {
		res.Order[i] = i
	}
	sort.SliceStable(res.Order, func(a, b int) bool {
		return res.Summaries[res.Order[a]].Mean < res.Summaries[res.Order[b]].Mean
	})
	return res
}

// Rate runs the rating-based sort over a relation's rows: O(N) HITs
// versus Compare's O(N²) (paper §4.1.2).
func Rate(items *relation.Relation, rt *task.Rank, opts RateOptions, market crowd.Marketplace) (*RateResult, error) {
	opts.fillDefaults()
	questions, tally, err := BuildRate(items, rt, opts)
	if err != nil {
		return nil, err
	}
	b := hit.NewBuilder(opts.GroupID, opts.Assignments, 1)
	hits, err := b.Merge(questions, opts.BatchSize)
	if err != nil {
		return nil, err
	}
	run, err := market.Run(&hit.Group{ID: opts.GroupID, HITs: hits})
	if err != nil {
		return nil, err
	}
	qByHIT := make(map[string]*hit.HIT, len(hits))
	for _, h := range hits {
		qByHIT[h.ID] = h
	}
	for _, a := range run.Assignments {
		h := qByHIT[a.HITID]
		if h == nil {
			continue
		}
		for i, ans := range a.Answers {
			if i >= len(h.Questions) {
				break
			}
			tally.Add(h.Questions[i].ID, ans)
		}
	}
	res := tally.Result()
	res.HITCount = len(hits)
	res.AssignmentCount = run.TotalAssignments
	res.MakespanHours = run.MakespanHours
	res.Incomplete = run.Incomplete
	return res, nil
}
