package sortop

import (
	"fmt"
	"math/rand"
	"sort"

	"qurk/internal/combine"
	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// RateOptions configures a rating-based sort.
type RateOptions struct {
	// BatchSize is items per HIT (default 5).
	BatchSize int
	// Assignments is ratings per item (default 5, paper §4.2).
	Assignments int
	// Scale is the Likert scale size (default 7, paper §4.1.2).
	Scale int
	// ContextSize is the number of random sample items shown for
	// calibration (default 10, paper §4.1.2).
	ContextSize int
	// GroupID labels the HIT group.
	GroupID string
	// Seed drives context sampling.
	Seed int64
}

func (o *RateOptions) fillDefaults() {
	if o.BatchSize == 0 {
		o.BatchSize = 5
	}
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.Scale == 0 {
		o.Scale = 7
	}
	if o.ContextSize == 0 {
		o.ContextSize = 10
	}
	if o.GroupID == "" {
		o.GroupID = "rate"
	}
}

// RateResult is the outcome of a rating sort.
type RateResult struct {
	// Order lists item indices by ascending mean rating.
	Order []int
	// Summaries holds each item's mean/std/count — the hybrid
	// algorithm's confidence inputs (§4.1.3).
	Summaries []combine.RatingSummary
	// HITCount, AssignmentCount, MakespanHours as in CompareResult.
	HITCount, AssignmentCount int
	MakespanHours             float64
	// Incomplete lists refused HITs.
	Incomplete []string
}

// Rate runs the rating-based sort over a relation's rows: O(N) HITs
// versus Compare's O(N²) (paper §4.1.2).
func Rate(items *relation.Relation, rt *task.Rank, opts RateOptions, market crowd.Marketplace) (*RateResult, error) {
	opts.fillDefaults()
	if err := rt.Validate(); err != nil {
		return nil, err
	}
	n := items.Len()
	if n < 1 {
		return nil, fmt.Errorf("sortop: nothing to rate")
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Context sample: up to ContextSize random items, fixed per run
	// (the paper samples per-interface; one sample per run keeps the
	// simulation deterministic and is behaviorally equivalent since
	// simulated workers calibrate against the oracle's range).
	ctxN := opts.ContextSize
	if ctxN > n {
		ctxN = n
	}
	perm := rng.Perm(n)
	context := make([]relation.Tuple, 0, ctxN)
	for _, idx := range perm[:ctxN] {
		context = append(context, items.Row(idx))
	}

	b := hit.NewBuilder(opts.GroupID, opts.Assignments, 1)
	questions := make([]hit.Question, n)
	for i := 0; i < n; i++ {
		questions[i] = hit.Question{
			ID:      fmt.Sprintf("%s/item%04d", opts.GroupID, i),
			Kind:    hit.RateQ,
			Task:    rt.Name,
			Tuple:   items.Row(i),
			Context: context,
			Scale:   opts.Scale,
		}
	}
	hits, err := b.Merge(questions, opts.BatchSize)
	if err != nil {
		return nil, err
	}
	run, err := market.Run(&hit.Group{ID: opts.GroupID, HITs: hits})
	if err != nil {
		return nil, err
	}

	ratings := make(map[string][]float64, n)
	qByHIT := make(map[string]*hit.HIT, len(hits))
	for _, h := range hits {
		qByHIT[h.ID] = h
	}
	for _, a := range run.Assignments {
		h := qByHIT[a.HITID]
		if h == nil {
			continue
		}
		for i, ans := range a.Answers {
			if i >= len(h.Questions) {
				break
			}
			qid := h.Questions[i].ID
			ratings[qid] = append(ratings[qid], float64(ans.Rating))
		}
	}
	combined := combine.CombineRatings(ratings)

	res := &RateResult{
		Summaries:       make([]combine.RatingSummary, n),
		HITCount:        len(hits),
		AssignmentCount: run.TotalAssignments,
		MakespanHours:   run.MakespanHours,
		Incomplete:      run.Incomplete,
	}
	for i := 0; i < n; i++ {
		res.Summaries[i] = combined[questions[i].ID]
	}
	res.Order = make([]int, n)
	for i := range res.Order {
		res.Order[i] = i
	}
	sort.SliceStable(res.Order, func(a, b int) bool {
		return res.Summaries[res.Order[a]].Mean < res.Summaries[res.Order[b]].Mean
	})
	return res, nil
}
