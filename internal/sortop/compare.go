// Package sortop implements Qurk's crowd-powered sort operator (paper
// §4): the comparison-based interface (groups of S items, all pairwise
// orderings extracted per group), the rating-based interface (Likert
// scale, mean of 5), the hybrid algorithm that seeds with ratings and
// refines with comparison windows, and the MAX/MIN tournament.
package sortop

import (
	"fmt"
	"math/rand"
	"sort"

	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/relation"
	"qurk/internal/stats"
	"qurk/internal/task"
)

// CompareOptions configures a comparison sort.
type CompareOptions struct {
	// GroupSize is S, the items ranked per question (default 5).
	GroupSize int
	// BatchGroups merges b groups into one HIT (default 1).
	BatchGroups int
	// Assignments is workers per HIT (default 5; the paper obtains
	// "at least 5 comparisons" per pair).
	Assignments int
	// GroupID labels the HIT group.
	GroupID string
	// Seed drives group-cover generation.
	Seed int64
}

func (o *CompareOptions) fillDefaults() {
	if o.GroupSize == 0 {
		o.GroupSize = 5
	}
	if o.BatchGroups == 0 {
		o.BatchGroups = 1
	}
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.GroupID == "" {
		o.GroupID = "compare"
	}
}

// PairVotes tallies the two directions of one item pair (i < j by index).
type PairVotes struct {
	// IOverJ counts votes ranking item i above (greater than) item j.
	IOverJ int
	// JOverI counts the opposite direction.
	JOverI int
}

// CompareResult is the outcome of a comparison sort.
type CompareResult struct {
	// Order lists item indices least-to-greatest by head-to-head win
	// fraction (paper §4.1.1's "head-to-head" aggregation).
	Order []int
	// WinFraction is each item's share of pairwise contests won.
	WinFraction []float64
	// Pairs maps [2]int{i,j} (i<j) to direction tallies.
	Pairs map[[2]int]*PairVotes
	// CycleCount is the number of directed triangles among majority
	// edges — the non-transitivity the paper warns about (§4.1.1).
	CycleCount int
	// HITCount is HITs posted; AssignmentCount total assignments.
	HITCount, AssignmentCount int
	// MakespanHours is the wall-clock completion estimate.
	MakespanHours float64
	// Incomplete reports HITs workers refused (oversized groups).
	Incomplete []string
	// Groups are the generated comparison groups (item indices).
	Groups [][]int
}

// CoverGroups builds groups of size s over n items such that every item
// pair appears in at least one group, greedily maximizing fresh pairs
// per group (the paper's batch generator "may generate overlapping
// groups", §4.2.2). The group count approaches n(n−1)/(s(s−1)).
// Generation is fully deterministic; the rng parameter is reserved for
// future randomized covers and is currently unused.
func CoverGroups(n, s int, rng *rand.Rand) [][]int {
	_ = rng
	if s >= n {
		g := make([]int, n)
		for i := range g {
			g[i] = i
		}
		return [][]int{g}
	}
	uncovered := make(map[[2]int]bool, n*(n-1)/2)
	// allPairs holds every pair in lexicographic order; the seed pointer
	// scans it so group generation is fully deterministic (map iteration
	// order must never leak into the cover).
	allPairs := make([][2]int, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			uncovered[[2]int{i, j}] = true
			allPairs = append(allPairs, [2]int{i, j})
		}
	}
	var groups [][]int
	seedPtr := 0
	for len(uncovered) > 0 {
		// Seed with the first still-uncovered pair.
		for seedPtr < len(allPairs) && !uncovered[allPairs[seedPtr]] {
			seedPtr++
		}
		if seedPtr >= len(allPairs) {
			break
		}
		seed := allPairs[seedPtr]
		group := []int{seed[0], seed[1]}
		inGroup := map[int]bool{seed[0]: true, seed[1]: true}
		for len(group) < s {
			// Add the item covering the most uncovered pairs with the
			// current group.
			bestItem, bestCover := -1, -1
			for cand := 0; cand < n; cand++ {
				if inGroup[cand] {
					continue
				}
				cover := 0
				for _, g := range group {
					if uncovered[pairKey(cand, g)] {
						cover++
					}
				}
				if cover > bestCover {
					bestItem, bestCover = cand, cover
				}
			}
			if bestItem < 0 {
				break
			}
			group = append(group, bestItem)
			inGroup[bestItem] = true
		}
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				delete(uncovered, pairKey(group[i], group[j]))
			}
		}
		sort.Ints(group)
		groups = append(groups, group)
	}
	return groups
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// CompareTally folds comparison answers into pairwise votes for
// callers that drive posting themselves — the streaming executor posts
// the questions from BuildCompare through its chunked poster (so
// refusal/expiry retries apply) and feeds every answer back through
// Add. Tallies are commutative, so delivery order cannot change the
// result.
type CompareTally struct {
	n        int
	groupByQ map[string][]int
	res      *CompareResult
}

// BuildCompare mints the comparison-group questions for a relation's
// rows (one question per cover group, IDs "<group>/grpNNNN") plus the
// tally that folds their answers. Compare is BuildCompare + a blocking
// marketplace round.
func BuildCompare(items *relation.Relation, rt *task.Rank, opts CompareOptions) ([]hit.Question, *CompareTally, error) {
	opts.fillDefaults()
	if err := rt.Validate(); err != nil {
		return nil, nil, err
	}
	n := items.Len()
	if n < 2 {
		return nil, nil, fmt.Errorf("sortop: need ≥2 items to sort, got %d", n)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	groups := CoverGroups(n, opts.GroupSize, rng)
	questions := make([]hit.Question, len(groups))
	for gi, g := range groups {
		q := hit.Question{
			ID:   fmt.Sprintf("%s/grp%04d", opts.GroupID, gi),
			Kind: hit.CompareQ,
			Task: rt.Name,
		}
		for _, idx := range g {
			q.Items = append(q.Items, items.Row(idx))
		}
		questions[gi] = q
	}
	tally := &CompareTally{
		n:        n,
		groupByQ: make(map[string][]int, len(groups)),
		res: &CompareResult{
			Pairs:  make(map[[2]int]*PairVotes),
			Groups: groups,
		},
	}
	for gi, g := range groups {
		tally.groupByQ[questions[gi].ID] = g
	}
	return questions, tally, nil
}

// Add folds one worker's answer to one comparison question. ans.Order
// is a permutation of local indices, least→most; it expands to
// pairwise votes over global item indices.
func (t *CompareTally) Add(qid string, ans hit.Answer) {
	g := t.groupByQ[qid]
	if g == nil || len(ans.Order) != len(g) {
		return
	}
	for x := 0; x < len(ans.Order); x++ {
		for y := x + 1; y < len(ans.Order); y++ {
			lo, hi := g[ans.Order[x]], g[ans.Order[y]] // hi ranked above lo
			t.res.addVote(hi, lo)
		}
	}
}

// Result finalizes the head-to-head order. Cost and latency fields
// (HITCount, AssignmentCount, MakespanHours, Incomplete) are the
// posting caller's to fill.
func (t *CompareTally) Result() *CompareResult {
	t.res.finalize(t.n)
	return t.res
}

// Compare runs the comparison-based sort over a relation's rows.
func Compare(items *relation.Relation, rt *task.Rank, opts CompareOptions, market crowd.Marketplace) (*CompareResult, error) {
	opts.fillDefaults()
	questions, tally, err := BuildCompare(items, rt, opts)
	if err != nil {
		return nil, err
	}
	b := hit.NewBuilder(opts.GroupID, opts.Assignments, 1)
	hits, err := b.Merge(questions, opts.BatchGroups)
	if err != nil {
		return nil, err
	}
	qByHIT := make(map[string]*hit.HIT, len(hits))
	for _, h := range hits {
		qByHIT[h.ID] = h
	}
	// Votes tally as each comparison batch completes, overlapping
	// aggregation with HITs still in flight (the marketplace calls
	// deliver serially).
	run, err := crowd.Stream(market, &hit.Group{ID: opts.GroupID, HITs: hits}, func(hitID string, as []hit.Assignment) {
		h := qByHIT[hitID]
		if h == nil {
			return
		}
		for _, a := range as {
			for i, ans := range a.Answers {
				if i >= len(h.Questions) {
					break
				}
				tally.Add(h.Questions[i].ID, ans)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	res := tally.Result()
	res.HITCount = len(hits)
	res.AssignmentCount = run.TotalAssignments
	res.MakespanHours = run.MakespanHours
	res.Incomplete = run.Incomplete
	return res, nil
}

// addVote records "winner ranked above loser".
func (r *CompareResult) addVote(winner, loser int) {
	k := pairKey(winner, loser)
	pv := r.Pairs[k]
	if pv == nil {
		pv = &PairVotes{}
		r.Pairs[k] = pv
	}
	if winner == k[0] {
		pv.IOverJ++
	} else {
		pv.JOverI++
	}
}

// finalize computes the head-to-head order and cycle count. The primary
// score is Copeland-style: the fraction of contested opponents an item
// beats by per-pair majority ("the number of HITs in which each item was
// ranked higher than other items", §4.1.1). With full pair coverage and
// correct majorities this reproduces the true order exactly; raw vote
// fraction breaks ties, so items with shaky majorities sort by margin.
func (r *CompareResult) finalize(n int) {
	majWins := make([]float64, n)
	opponents := make([]float64, n)
	votes := make([]float64, n)
	voteWins := make([]float64, n)
	for k, pv := range r.Pairs {
		total := float64(pv.IOverJ + pv.JOverI)
		if total == 0 {
			continue
		}
		i, j := k[0], k[1]
		opponents[i]++
		opponents[j]++
		switch {
		case pv.IOverJ > pv.JOverI:
			majWins[i]++
		case pv.JOverI > pv.IOverJ:
			majWins[j]++
		default:
			majWins[i] += 0.5
			majWins[j] += 0.5
		}
		voteWins[i] += float64(pv.IOverJ)
		voteWins[j] += float64(pv.JOverI)
		votes[i] += total
		votes[j] += total
	}
	r.WinFraction = make([]float64, n)
	copeland := make([]float64, n)
	for i := 0; i < n; i++ {
		if votes[i] > 0 {
			r.WinFraction[i] = voteWins[i] / votes[i]
		}
		if opponents[i] > 0 {
			copeland[i] = majWins[i] / opponents[i]
		}
	}
	r.Order = make([]int, n)
	for i := range r.Order {
		r.Order[i] = i
	}
	sort.SliceStable(r.Order, func(a, b int) bool {
		x, y := r.Order[a], r.Order[b]
		if copeland[x] != copeland[y] {
			return copeland[x] < copeland[y]
		}
		return r.WinFraction[x] < r.WinFraction[y]
	})
	r.CycleCount = r.countCycles(n)
}

// countCycles counts directed triangles in the pairwise-majority graph —
// evidence of the non-transitivity that rules out Quicksort-style
// algorithms (paper §4.1.1).
func (r *CompareResult) countCycles(n int) int {
	beats := func(a, b int) bool {
		k := pairKey(a, b)
		pv := r.Pairs[k]
		if pv == nil {
			return false
		}
		if a == k[0] {
			return pv.IOverJ > pv.JOverI
		}
		return pv.JOverI > pv.IOverJ
	}
	count := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || !beats(i, j) {
				continue
			}
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				if beats(j, k) && beats(k, i) {
					count++
				}
			}
		}
	}
	return count / 3 // each triangle counted three times
}

// PairMatrix converts pair votes into a rating matrix for the paper's
// modified-κ agreement metric (Fig. 6): each pair with ≥2 votes is a
// subject, the two directions are the categories.
func (r *CompareResult) PairMatrix() (*stats.RatingMatrix, error) {
	var keys [][2]int
	for k, pv := range r.Pairs {
		if pv.IOverJ+pv.JOverI >= 2 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("sortop: no pairs with ≥2 votes")
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	m, err := stats.NewRatingMatrix(len(keys), 2)
	if err != nil {
		return nil, err
	}
	for si, k := range keys {
		pv := r.Pairs[k]
		for v := 0; v < pv.IOverJ; v++ {
			if err := m.Add(si, 0); err != nil {
				return nil, err
			}
		}
		for v := 0; v < pv.JOverI; v++ {
			if err := m.Add(si, 1); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// ModifiedKappa is the paper's worker-agreement signal on comparison
// votes (footnote 4).
func (r *CompareResult) ModifiedKappa() (float64, error) {
	m, err := r.PairMatrix()
	if err != nil {
		return 0, err
	}
	return m.ModifiedKappa()
}
