package sortop

import (
	"fmt"

	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// MaxOptions configures a MAX/MIN tournament (paper §2.3: "For MAX/MIN,
// we use an interface that extracts the best element from a batch at a
// time").
type MaxOptions struct {
	// BatchSize is items per tournament round HIT (default 5).
	BatchSize int
	// Assignments is workers per HIT (default 5).
	Assignments int
	// GroupID labels HIT groups.
	GroupID string
	// Min inverts the tournament to find the least element.
	Min bool
}

func (o *MaxOptions) fillDefaults() {
	if o.BatchSize == 0 {
		o.BatchSize = 5
	}
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.GroupID == "" {
		o.GroupID = "max"
	}
}

// MaxResult reports the tournament outcome.
type MaxResult struct {
	// Index is the winning item's row index.
	Index int
	// HITCount totals the rounds' HITs: ≈ N/(B−1).
	HITCount int
	// Rounds is the number of tournament rounds.
	Rounds int
}

// Max runs a batch tournament: each round partitions the remaining
// candidates into comparison groups and keeps each group's best element.
func Max(items *relation.Relation, rt *task.Rank, opts MaxOptions, market crowd.Marketplace) (*MaxResult, error) {
	opts.fillDefaults()
	if err := rt.Validate(); err != nil {
		return nil, err
	}
	n := items.Len()
	if n == 0 {
		return nil, fmt.Errorf("sortop: MAX of empty relation")
	}
	res := &MaxResult{}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	round := 0
	for len(remaining) > 1 {
		round++
		b := hit.NewBuilder(fmt.Sprintf("%s/round%d", opts.GroupID, round), opts.Assignments, 1)
		var questions []hit.Question
		var groups [][]int
		for start := 0; start < len(remaining); start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > len(remaining) {
				end = len(remaining)
			}
			g := remaining[start:end]
			if len(g) == 1 {
				// A lone leftover advances for free.
				continue
			}
			q := hit.Question{
				ID:   fmt.Sprintf("%s/r%d/g%d", opts.GroupID, round, len(groups)),
				Kind: hit.CompareQ,
				Task: rt.Name,
			}
			for _, idx := range g {
				q.Items = append(q.Items, items.Row(idx))
			}
			questions = append(questions, q)
			groups = append(groups, g)
		}
		var winners []int
		if len(questions) > 0 {
			hits, err := b.Merge(questions, 1)
			if err != nil {
				return nil, err
			}
			run, err := market.Run(&hit.Group{ID: fmt.Sprintf("%s/round%d", opts.GroupID, round), HITs: hits})
			if err != nil {
				return nil, err
			}
			res.HITCount += len(hits)
			// Aggregate Borda scores per group; best (or worst for
			// Min) advances.
			scoreByQ := make(map[string][]float64, len(questions))
			qByHIT := make(map[string]*hit.HIT, len(hits))
			for _, h := range hits {
				qByHIT[h.ID] = h
			}
			for _, a := range run.Assignments {
				h := qByHIT[a.HITID]
				if h == nil {
					continue
				}
				for i, ans := range a.Answers {
					if i >= len(h.Questions) {
						break
					}
					q := &h.Questions[i]
					sc := scoreByQ[q.ID]
					if sc == nil {
						sc = make([]float64, len(q.Items))
						scoreByQ[q.ID] = sc
					}
					for rank, local := range ans.Order {
						sc[local] += float64(rank)
					}
				}
			}
			for gi, q := range questions {
				sc := scoreByQ[q.ID]
				best := 0
				for i := range sc {
					better := sc[i] > sc[best]
					if opts.Min {
						better = sc[i] < sc[best]
					}
					if better {
						best = i
					}
				}
				winners = append(winners, groups[gi][best])
			}
		}
		// Lone leftovers advance.
		for start := 0; start < len(remaining); start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > len(remaining) {
				end = len(remaining)
			}
			if end-start == 1 {
				winners = append(winners, remaining[start])
			}
		}
		remaining = winners
	}
	res.Index = remaining[0]
	res.Rounds = round
	return res, nil
}

// TopK performs a complete sort and extracts the K greatest items, as
// the paper implements LIMIT over ORDER BY (§2.3).
func TopK(items *relation.Relation, rt *task.Rank, k int, opts CompareOptions, market crowd.Marketplace) ([]int, *CompareResult, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("sortop: top-K needs K ≥ 1")
	}
	res, err := Compare(items, rt, opts, market)
	if err != nil {
		return nil, nil, err
	}
	if k > len(res.Order) {
		k = len(res.Order)
	}
	top := make([]int, k)
	// Order is least→most; take the tail reversed (greatest first).
	for i := 0; i < k; i++ {
		top[i] = res.Order[len(res.Order)-1-i]
	}
	return top, res, nil
}
