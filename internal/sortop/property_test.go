package sortop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qurk/internal/crowd"
)

// Property: CoverGroups covers all pairs with groups of at most s for
// arbitrary (n, s).
func TestCoverGroupsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	prop := func(_ uint8) bool {
		n := 2 + rng.Intn(30)
		s := 2 + rng.Intn(8)
		groups := CoverGroups(n, s, rng)
		covered := map[[2]int]bool{}
		for _, g := range groups {
			if s < n && len(g) > s {
				return false
			}
			for i := 0; i < len(g); i++ {
				if g[i] < 0 || g[i] >= n {
					return false
				}
				for j := i + 1; j < len(g); j++ {
					covered[pairKey(g[i], g[j])] = true
				}
			}
		}
		return len(covered) == n*(n-1)/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: windowPositions returns distinct, in-range, sorted positions
// of size ≤ s for arbitrary (start, s, n).
func TestWindowPositionsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	prop := func(_ uint8) bool {
		n := 2 + rng.Intn(50)
		s := 1 + rng.Intn(10)
		start := rng.Intn(3 * n)
		pos := windowPositions(start, s, n)
		if len(pos) == 0 || len(pos) > s {
			return false
		}
		seen := map[int]bool{}
		for i, p := range pos {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			if i > 0 && pos[i-1] >= p {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every hybrid trace entry is a permutation of the item set —
// window reinsertion must never drop or duplicate items.
func TestHybridTracePermutationProperty(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		n := 12 + int(seed)*3
		o := &sqOracle{n: n, sigma: 0.1}
		m := crowd.NewSimMarket(crowd.DefaultConfig(seed), o)
		for _, strat := range []WindowStrategy{RandomWindow, ConfidenceWindow, SlidingWindow} {
			hy, err := Hybrid(squares(n), rankTask(), HybridOptions{
				Strategy: strat, WindowSize: 5, Step: 7, Iterations: 8,
				Assignments: 3, Seed: seed,
			}, m)
			if err != nil {
				t.Fatal(err)
			}
			for ti, order := range hy.Trace {
				seen := make([]bool, n)
				for _, idx := range order {
					if idx < 0 || idx >= n || seen[idx] {
						t.Fatalf("seed %d strat %v trace %d not a permutation: %v", seed, strat, ti, order)
					}
					seen[idx] = true
				}
			}
		}
	}
}

// Property: Compare's output order is always a permutation, and pair
// vote totals equal assignments × pair coverage.
func TestComparePermutationProperty(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		n := 8 + int(seed)*4
		o := &sqOracle{n: n, sigma: 0.3}
		m := crowd.NewSimMarket(crowd.DefaultConfig(seed), o)
		res, err := Compare(squares(n), rankTask(), CompareOptions{GroupSize: 4, Assignments: 5, Seed: seed}, m)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for _, idx := range res.Order {
			if seen[idx] {
				t.Fatalf("duplicate index in order: %v", res.Order)
			}
			seen[idx] = true
		}
		// Every covered pair has ≥ Assignments votes (overlapping
		// groups may add more).
		for k, pv := range res.Pairs {
			if pv.IOverJ+pv.JOverI < 5 {
				t.Fatalf("pair %v has %d votes, want ≥5", k, pv.IOverJ+pv.JOverI)
			}
		}
	}
}
