package sortop

import (
	"fmt"
	"math/rand"
	"sort"

	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// WindowStrategy selects how the hybrid algorithm picks comparison
// windows (paper §4.1.3).
type WindowStrategy uint8

const (
	// RandomWindow picks S random items each iteration.
	RandomWindow WindowStrategy = iota
	// ConfidenceWindow reorders windows with the most rating-variance
	// overlap (Σ ∆a,b) first.
	ConfidenceWindow
	// SlidingWindow advances a size-S window by step t, wrapping with
	// an offset when t does not divide the list (the paper's Window-6
	// beats Window-5 on 40 items for exactly this reason, §4.2.4).
	SlidingWindow
)

// String names the strategy as the paper's Figure 7 legend does.
func (s WindowStrategy) String() string {
	switch s {
	case RandomWindow:
		return "Random"
	case ConfidenceWindow:
		return "Confidence"
	case SlidingWindow:
		return "Window"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// HybridOptions configures the hybrid sort.
type HybridOptions struct {
	// Strategy picks the window scheme.
	Strategy WindowStrategy
	// WindowSize is S (default 5, matching one comparison HIT).
	WindowSize int
	// Step is the sliding-window advance t (default 6).
	Step int
	// Iterations is the number of refinement HITs ("the user can
	// control the resulting accuracy and cost by specifying the number
	// of iterations", §4.1.3).
	Iterations int
	// Assignments is workers per comparison HIT (default 5).
	Assignments int
	// Rate configures the seeding rating pass.
	Rate RateOptions
	// SeedRating, when non-nil, is an already-computed rating pass to
	// refine; the internal Rate round is skipped. The streaming
	// executor uses this to run the seed through its chunked poster
	// (refusal/expiry retries, overlapped posting) and hand only the
	// sequential comparison refinement to Hybrid.
	SeedRating *RateResult
	// GroupID labels HIT groups.
	GroupID string
	// Seed drives window randomness.
	Seed int64
}

func (o *HybridOptions) fillDefaults() {
	if o.WindowSize == 0 {
		o.WindowSize = 5
	}
	if o.Step == 0 {
		o.Step = 6
	}
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.GroupID == "" {
		o.GroupID = "hybrid"
	}
}

// HybridResult is the outcome of a hybrid sort.
type HybridResult struct {
	// InitialOrder is the rating-only order (the starting point).
	InitialOrder []int
	// Order is the final refined order.
	Order []int
	// Trace[i] is the order after refinement iteration i; Figure 7
	// plots τ over this trajectory.
	Trace [][]int
	// RateHITs and CompareHITs decompose the cost.
	RateHITs, CompareHITs int
	// RateResult exposes the seeding pass.
	RateResult *RateResult
}

// TotalHITs is the paper's cost metric for hybrid runs.
func (r *HybridResult) TotalHITs() int { return r.RateHITs + r.CompareHITs }

// Hybrid runs the rating seed plus iterative comparison refinement.
func Hybrid(items *relation.Relation, rt *task.Rank, opts HybridOptions, market crowd.Marketplace) (*HybridResult, error) {
	opts.fillDefaults()
	n := items.Len()
	if n < 2 {
		return nil, fmt.Errorf("sortop: need ≥2 items, got %d", n)
	}
	if opts.WindowSize > n {
		opts.WindowSize = n
	}
	rr := opts.SeedRating
	if rr == nil {
		ro := opts.Rate
		ro.GroupID = opts.GroupID + "/rate"
		var err error
		rr, err = Rate(items, rt, ro, market)
		if err != nil {
			return nil, err
		}
	}
	res := &HybridResult{
		InitialOrder: append([]int(nil), rr.Order...),
		Order:        append([]int(nil), rr.Order...),
		RateHITs:     rr.HITCount,
		RateResult:   rr,
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Confidence strategy: precompute the window processing order by
	// decreasing R_i = Σ max(µa+σa − µb−σb, 0) over window pairs
	// (µa < µb), from the rating summaries (§4.1.3).
	var confOrder []int
	if opts.Strategy == ConfidenceWindow {
		confOrder = confidenceOrder(rr, opts.WindowSize)
	}

	s := opts.WindowSize
	slideStart := 1 // the paper's sliding window starts at i = 1
	for iter := 0; iter < opts.Iterations; iter++ {
		// Pick window positions in the *current* order.
		var positions []int
		switch opts.Strategy {
		case RandomWindow:
			positions = rng.Perm(n)[:s]
			sort.Ints(positions)
		case ConfidenceWindow:
			start := confOrder[iter%len(confOrder)]
			positions = windowPositions(start, s, n)
		case SlidingWindow:
			positions = windowPositions(slideStart, s, n)
			slideStart = (slideStart + opts.Step) % n
		default:
			return nil, fmt.Errorf("sortop: unknown strategy %v", opts.Strategy)
		}

		// One comparison HIT over the window's items.
		windowItems := make([]relation.Tuple, len(positions))
		for i, p := range positions {
			windowItems[i] = items.Row(res.Order[p])
		}
		q := hit.Question{
			ID:    fmt.Sprintf("%s/iter%04d", opts.GroupID, iter),
			Kind:  hit.CompareQ,
			Task:  rt.Name,
			Items: windowItems,
		}
		b := hit.NewBuilder(fmt.Sprintf("%s/i%04d", opts.GroupID, iter), opts.Assignments, 1)
		hits, err := b.Merge([]hit.Question{q}, 1)
		if err != nil {
			return nil, err
		}
		run, err := market.Run(&hit.Group{ID: hits[0].GroupID, HITs: hits})
		if err != nil {
			return nil, err
		}
		res.CompareHITs++

		// Head-to-head within the window.
		wins := make([]float64, len(positions))
		for _, a := range run.Assignments {
			for _, ans := range a.Answers {
				if len(ans.Order) != len(positions) {
					continue
				}
				for rank, local := range ans.Order {
					wins[local] += float64(rank)
				}
			}
		}
		local := make([]int, len(positions))
		for i := range local {
			local[i] = i
		}
		sort.SliceStable(local, func(a, b int) bool { return wins[local[a]] < wins[local[b]] })

		// Reinsert the reordered items into the same positions.
		current := make([]int, len(positions))
		for i, p := range positions {
			current[i] = res.Order[p]
		}
		for i, p := range positions {
			res.Order[p] = current[local[i]]
		}
		res.Trace = append(res.Trace, append([]int(nil), res.Order...))
	}
	return res, nil
}

// windowPositions returns S consecutive positions starting at start,
// wrapping modulo n (the paper's w_i = {l_{i mod |L|}, …}).
func windowPositions(start, s, n int) []int {
	seen := make(map[int]bool, s)
	out := make([]int, 0, s)
	for k := 0; k < s; k++ {
		p := (start + k) % n
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// confidenceOrder ranks window start positions by decreasing rating-
// confidence overlap R_i.
func confidenceOrder(rr *RateResult, s int) []int {
	n := len(rr.Order)
	type windowScore struct {
		start int
		r     float64
	}
	scores := make([]windowScore, 0, n)
	for start := 0; start < n; start++ {
		positions := windowPositions(start, s, n)
		var r float64
		for x := 0; x < len(positions); x++ {
			for y := x + 1; y < len(positions); y++ {
				a := rr.Summaries[rr.Order[positions[x]]]
				b := rr.Summaries[rr.Order[positions[y]]]
				// ∆a,b with µa < µb.
				if a.Mean > b.Mean {
					a, b = b, a
				}
				d := a.Mean + a.Std - (b.Mean - b.Std)
				if d > 0 {
					r += d
				}
			}
		}
		scores = append(scores, windowScore{start, r})
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].r > scores[j].r })
	out := make([]int, n)
	for i, ws := range scores {
		out[i] = ws.start
	}
	return out
}
