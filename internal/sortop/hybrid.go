package sortop

import (
	"fmt"
	"math/rand"
	"sort"

	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// WindowStrategy selects how the hybrid algorithm picks comparison
// windows (paper §4.1.3).
type WindowStrategy uint8

const (
	// RandomWindow picks S random items each iteration.
	RandomWindow WindowStrategy = iota
	// ConfidenceWindow reorders windows with the most rating-variance
	// overlap (Σ ∆a,b) first.
	ConfidenceWindow
	// SlidingWindow advances a size-S window by step t, wrapping with
	// an offset when t does not divide the list (the paper's Window-6
	// beats Window-5 on 40 items for exactly this reason, §4.2.4).
	SlidingWindow
)

// String names the strategy as the paper's Figure 7 legend does.
func (s WindowStrategy) String() string {
	switch s {
	case RandomWindow:
		return "Random"
	case ConfidenceWindow:
		return "Confidence"
	case SlidingWindow:
		return "Window"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// HybridOptions configures the hybrid sort.
type HybridOptions struct {
	// Strategy picks the window scheme.
	Strategy WindowStrategy
	// WindowSize is S (default 5, matching one comparison HIT).
	WindowSize int
	// Step is the sliding-window advance t (default 6).
	Step int
	// Iterations is the number of refinement HITs ("the user can
	// control the resulting accuracy and cost by specifying the number
	// of iterations", §4.1.3).
	Iterations int
	// Assignments is workers per comparison HIT (default 5).
	Assignments int
	// Rate configures the seeding rating pass.
	Rate RateOptions
	// SeedRating, when non-nil, is an already-computed rating pass to
	// refine; the internal Rate round is skipped. The streaming
	// executor uses this to run the seed through its chunked poster
	// (refusal/expiry retries, overlapped posting) and hand only the
	// sequential comparison refinement to Hybrid.
	SeedRating *RateResult
	// GroupID labels HIT groups.
	GroupID string
	// Seed drives window randomness.
	Seed int64
}

func (o *HybridOptions) fillDefaults() {
	if o.WindowSize == 0 {
		o.WindowSize = 5
	}
	if o.Step == 0 {
		o.Step = 6
	}
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.GroupID == "" {
		o.GroupID = "hybrid"
	}
}

// HybridResult is the outcome of a hybrid sort.
type HybridResult struct {
	// InitialOrder is the rating-only order (the starting point).
	InitialOrder []int
	// Order is the final refined order.
	Order []int
	// Trace[i] is the order after refinement iteration i; Figure 7
	// plots τ over this trajectory.
	Trace [][]int
	// RateHITs and CompareHITs decompose the cost.
	RateHITs, CompareHITs int
	// RateResult exposes the seeding pass.
	RateResult *RateResult
}

// TotalHITs is the paper's cost metric for hybrid runs.
func (r *HybridResult) TotalHITs() int { return r.RateHITs + r.CompareHITs }

// HybridState decomposes the comparison refinement into explicit
// mint/apply steps so the streaming executor can post iterations
// through the chunked poster (refusal/expiry retries, overlapped
// posting) instead of one blocking marketplace round per iteration.
//
// Every strategy's window POSITIONS depend only on the seed, the window
// size, and the iteration number — never on worker answers — so all of
// them are precomputed at construction. A window's CONTENT (the items
// currently at those positions) is captured at mint time; MintNext
// refuses to mint an iteration whose positions overlap a
// minted-but-unapplied window, because windows on disjoint positions
// commute: the items such a window sees at mint time are exactly the
// items the sequential algorithm would have shown it. Apply folds
// answers strictly in iteration order (buffering early arrivals), so
// Order and Trace evolve identically to the sequential run.
type HybridState struct {
	items     *relation.Relation
	rt        *task.Rank
	opts      HybridOptions
	res       *HybridResult
	positions [][]int
	minted    int
	applied   int
	buffered  map[int][]hit.Answer
}

// NewHybridState prepares the refinement over an already-computed
// rating seed (opts.SeedRating is required — run the rating pass first).
func NewHybridState(items *relation.Relation, rt *task.Rank, opts HybridOptions) (*HybridState, error) {
	opts.fillDefaults()
	n := items.Len()
	if n < 2 {
		return nil, fmt.Errorf("sortop: need ≥2 items, got %d", n)
	}
	if opts.WindowSize > n {
		opts.WindowSize = n
	}
	rr := opts.SeedRating
	if rr == nil {
		return nil, fmt.Errorf("sortop: HybridState requires SeedRating")
	}
	st := &HybridState{
		items: items,
		rt:    rt,
		opts:  opts,
		res: &HybridResult{
			InitialOrder: append([]int(nil), rr.Order...),
			Order:        append([]int(nil), rr.Order...),
			RateHITs:     rr.HITCount,
			RateResult:   rr,
		},
		buffered: map[int][]hit.Answer{},
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Confidence strategy: precompute the window processing order by
	// decreasing R_i = Σ max(µa+σa − µb−σb, 0) over window pairs
	// (µa < µb), from the rating summaries (§4.1.3).
	var confOrder []int
	if opts.Strategy == ConfidenceWindow {
		confOrder = confidenceOrder(rr, opts.WindowSize)
	}

	s := opts.WindowSize
	slideStart := 1 // the paper's sliding window starts at i = 1
	for iter := 0; iter < opts.Iterations; iter++ {
		var positions []int
		switch opts.Strategy {
		case RandomWindow:
			positions = rng.Perm(n)[:s]
			sort.Ints(positions)
		case ConfidenceWindow:
			start := confOrder[iter%len(confOrder)]
			positions = windowPositions(start, s, n)
		case SlidingWindow:
			positions = windowPositions(slideStart, s, n)
			slideStart = (slideStart + opts.Step) % n
		default:
			return nil, fmt.Errorf("sortop: unknown strategy %v", opts.Strategy)
		}
		st.positions = append(st.positions, positions)
	}
	return st, nil
}

// MintNext builds the next iteration's single-question comparison HIT
// and returns it with its iteration number. A nil HIT (with nil error)
// means nothing can mint right now: every iteration is minted, or the
// next window overlaps a minted-but-unapplied one and must wait for an
// Apply.
func (st *HybridState) MintNext() (*hit.HIT, int, error) {
	if st.minted >= len(st.positions) {
		return nil, 0, nil
	}
	next := st.positions[st.minted]
	for i := st.applied; i < st.minted; i++ {
		if overlaps(st.positions[i], next) {
			return nil, 0, nil
		}
	}
	iter := st.minted
	windowItems := make([]relation.Tuple, len(next))
	for i, p := range next {
		windowItems[i] = st.items.Row(st.res.Order[p])
	}
	q := hit.Question{
		ID:    fmt.Sprintf("%s/iter%04d", st.opts.GroupID, iter),
		Kind:  hit.CompareQ,
		Task:  st.rt.Name,
		Items: windowItems,
	}
	b := hit.NewBuilder(fmt.Sprintf("%s/i%04d", st.opts.GroupID, iter), st.opts.Assignments, 1)
	hits, err := b.Merge([]hit.Question{q}, 1)
	if err != nil {
		return nil, 0, err
	}
	st.minted++
	return hits[0], iter, nil
}

// Apply folds one minted iteration's collected answers. Early arrivals
// buffer until every preceding iteration folded, so the refinement
// trajectory matches the sequential algorithm's exactly.
func (st *HybridState) Apply(iter int, answers []hit.Answer) error {
	if iter < 0 || iter >= st.minted {
		return fmt.Errorf("sortop: hybrid iteration %d not minted", iter)
	}
	if _, dup := st.buffered[iter]; dup || iter < st.applied {
		return fmt.Errorf("sortop: hybrid iteration %d applied twice", iter)
	}
	st.buffered[iter] = answers
	for {
		ans, ok := st.buffered[st.applied]
		if !ok {
			return nil
		}
		delete(st.buffered, st.applied)
		st.fold(st.applied, ans)
		st.applied++
	}
}

// Done reports whether every refinement iteration has been applied.
func (st *HybridState) Done() bool { return st.applied >= len(st.positions) }

// Result returns the refinement outcome; valid once Done.
func (st *HybridState) Result() *HybridResult { return st.res }

// fold is one sequential refinement step: head-to-head ranking within
// the window, reinserted into the same positions.
func (st *HybridState) fold(iter int, answers []hit.Answer) {
	positions := st.positions[iter]
	wins := make([]float64, len(positions))
	for _, ans := range answers {
		if len(ans.Order) != len(positions) {
			continue
		}
		for rank, local := range ans.Order {
			wins[local] += float64(rank)
		}
	}
	local := make([]int, len(positions))
	for i := range local {
		local[i] = i
	}
	sort.SliceStable(local, func(a, b int) bool { return wins[local[a]] < wins[local[b]] })
	current := make([]int, len(positions))
	for i, p := range positions {
		current[i] = st.res.Order[p]
	}
	for i, p := range positions {
		st.res.Order[p] = current[local[i]]
	}
	st.res.CompareHITs++
	st.res.Trace = append(st.res.Trace, append([]int(nil), st.res.Order...))
}

// overlaps reports whether two (small) position sets intersect.
func overlaps(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// Hybrid runs the rating seed plus iterative comparison refinement as
// one blocking call: mint one iteration, run it on the marketplace,
// fold — the sequential special case of HybridState (with nothing ever
// pending, MintNext never has to wait).
func Hybrid(items *relation.Relation, rt *task.Rank, opts HybridOptions, market crowd.Marketplace) (*HybridResult, error) {
	opts.fillDefaults()
	n := items.Len()
	if n < 2 {
		return nil, fmt.Errorf("sortop: need ≥2 items, got %d", n)
	}
	if opts.WindowSize > n {
		opts.WindowSize = n
	}
	rr := opts.SeedRating
	if rr == nil {
		ro := opts.Rate
		ro.GroupID = opts.GroupID + "/rate"
		var err error
		rr, err = Rate(items, rt, ro, market)
		if err != nil {
			return nil, err
		}
	}
	o := opts
	o.SeedRating = rr
	st, err := NewHybridState(items, rt, o)
	if err != nil {
		return nil, err
	}
	for {
		h, iter, err := st.MintNext()
		if err != nil {
			return nil, err
		}
		if h == nil {
			break
		}
		run, err := market.Run(&hit.Group{ID: h.GroupID, HITs: []*hit.HIT{h}})
		if err != nil {
			return nil, err
		}
		var answers []hit.Answer
		for _, a := range run.Assignments {
			answers = append(answers, a.Answers...)
		}
		if err := st.Apply(iter, answers); err != nil {
			return nil, err
		}
	}
	return st.Result(), nil
}

// windowPositions returns S consecutive positions starting at start,
// wrapping modulo n (the paper's w_i = {l_{i mod |L|}, …}).
func windowPositions(start, s, n int) []int {
	seen := make(map[int]bool, s)
	out := make([]int, 0, s)
	for k := 0; k < s; k++ {
		p := (start + k) % n
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// confidenceOrder ranks window start positions by decreasing rating-
// confidence overlap R_i.
func confidenceOrder(rr *RateResult, s int) []int {
	n := len(rr.Order)
	type windowScore struct {
		start int
		r     float64
	}
	scores := make([]windowScore, 0, n)
	for start := 0; start < n; start++ {
		positions := windowPositions(start, s, n)
		var r float64
		for x := 0; x < len(positions); x++ {
			for y := x + 1; y < len(positions); y++ {
				a := rr.Summaries[rr.Order[positions[x]]]
				b := rr.Summaries[rr.Order[positions[y]]]
				// ∆a,b with µa < µb.
				if a.Mean > b.Mean {
					a, b = b, a
				}
				d := a.Mean + a.Std - (b.Mean - b.Std)
				if d > 0 {
					r += d
				}
			}
		}
		scores = append(scores, windowScore{start, r})
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].r > scores[j].r })
	out := make([]int, n)
	for i, ws := range scores {
		out[i] = ws.start
	}
	return out
}
