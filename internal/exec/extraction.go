// Streaming POSSIBLY-feature extraction (paper §3.2's linear pass,
// rebuilt on the chunked poster). An extStream mints one composite
// extraction question per arriving tuple (or one per feature when
// ExtractCombined is off), fills HITs of Options.ExtractBatch, and
// posts them through internal/poster — so extraction inherits the
// refusal/expiry retry policies, overlaps posting with collection, and
// (on the probe side of a join) overlaps with upstream operators still
// producing tuples. Feature values resolve per chunk with PerQuestion
// combiners; a stateful combiner defers to one end-of-stream combine,
// exactly as the other streaming operators do.
//
// Questions that exhaust their retry budgets resolve to UNKNOWN — the
// paper's wildcard, which never prunes a candidate pair (§2.4) — and
// are reported in Stats.Incomplete. Before this path existed the
// blocking extraction pass silently accepted partial votes.
package exec

import (
	"fmt"
	"strings"

	"qurk/internal/combine"
	"qurk/internal/hit"
	"qurk/internal/join"
	"qurk/internal/poster"
	"qurk/internal/relation"
)

// extStream streams one side's feature extraction through the chunked
// poster. Subjects are ingested in input order; values[i] is nil until
// subject i's feature votes resolved.
type extStream struct {
	x        *executor
	groupID  string
	features []join.Feature
	fields   []string
	combined bool
	batch    int
	comb     combine.Combiner
	perQ     bool
	builder  *hit.Builder
	post     *poster.Poster
	acct     *opAcct

	values   []map[string]string
	pending  []int
	ready    []float64
	resolved int // leading subjects fully resolved (the consumption frontier)
	qbuf     []hit.Question
	qSlot    map[string]int
	// asked gates answer-store lookups by question content (one lookup
	// per distinct content per run; see answers.go).
	asked map[uint64]bool
	// eosVotes buffers per-(subject, field) votes for stateful
	// combiners, keyed like join.Extract's vote stream so one Combine
	// call resolves every subject at end of stream.
	eosVotes []combine.Vote
	eos      bool
	final    bool
	lastDone float64
}

// newExtStream builds an extraction stream; label names its Stats slot
// ("extract-left"/"extract-right") and seq is the owning operator's
// shared chunk counter so collection interleaves deterministically
// with the operator's other posters.
func (x *executor) newExtStream(label, groupID string, features []join.Feature, assignments int, seq *int) (*extStream, error) {
	comb, err := x.eng.Combiner()
	if err != nil {
		return nil, err
	}
	opts := &x.eng.Options
	batch := opts.ExtractBatch
	if batch <= 0 {
		batch = 4
	}
	e := &extStream{
		x:        x,
		groupID:  groupID,
		features: features,
		combined: opts.ExtractCombined,
		batch:    batch,
		comb:     comb,
		perQ:     combine.IsPerQuestion(comb),
		builder:  hit.NewBuilder(groupID, assignments, 1),
		qSlot:    map[string]int{},
		asked:    map[uint64]bool{},
	}
	for _, f := range features {
		if err := f.Validate(); err != nil {
			return nil, err
		}
		e.fields = append(e.fields, f.Field)
	}
	if len(e.fields) == 0 {
		return nil, fmt.Errorf("exec: extraction stream %s has no features", label)
	}
	e.acct = &opAcct{x: x, label: label, asn: assignments, slot: x.stats.registerOp(label)}
	e.post = x.newPoster(groupID, seq, e.acct)
	return e, nil
}

// ingest mints subject i's extraction question(s) and flushes full
// HITs onto the poster. Subjects must arrive in input order.
func (e *extStream) ingest(t relation.Tuple) error {
	i := len(e.values)
	e.values = append(e.values, nil)
	e.ready = append(e.ready, 0)
	if e.combined {
		e.pending = append(e.pending, 1)
		qs := make([]hit.Question, len(e.features))
		for fi, f := range e.features {
			qs[fi] = hit.Question{
				Kind:   hit.GenerativeQ,
				Task:   f.Task.Name,
				Tuple:  t,
				Fields: []string{f.Field},
			}
		}
		comp, err := hit.CombinedQuestion(e.qidFor(i, ""), qs)
		if err != nil {
			return err
		}
		e.qSlot[comp.ID] = i
		served, err := e.serveFromStore(&comp)
		if err != nil {
			return err
		}
		if served {
			return nil
		}
		e.qbuf = append(e.qbuf, comp)
		return e.post.FlushQuestions(e.builder, &e.qbuf, e.batch, false)
	}
	e.pending = append(e.pending, len(e.features))
	for _, f := range e.features {
		q := hit.Question{
			ID:     fmt.Sprintf("%s/t%05d.%s", e.groupID, i, f.Field),
			Kind:   hit.GenerativeQ,
			Task:   f.Task.Name,
			Tuple:  t,
			Fields: []string{f.Field},
		}
		e.qSlot[q.ID] = i
		served, err := e.serveFromStore(&q)
		if err != nil {
			return err
		}
		if served {
			continue
		}
		e.qbuf = append(e.qbuf, q)
	}
	return e.post.FlushQuestions(e.builder, &e.qbuf, e.batch, false)
}

// serveFromStore resolves one freshly minted extraction question from
// the shared answer store when its content (first seen this run) has a
// servable entry; the question is then never posted.
func (e *extStream) serveFromStore(q *hit.Question) (bool, error) {
	if e.x.eng.Answers == nil || e.asked[q.CacheKey()] {
		return false, nil
	}
	e.asked[q.CacheKey()] = true
	as, ok, err := e.x.answersLookup(q, 0)
	if err != nil || !ok {
		return false, err
	}
	// Served values cost no crowd time: resolve at clock zero so the
	// pair-generation frontier treats the subject as ready on arrival.
	return true, e.resolveQ(q, as, 0)
}

// resolveCollected is the poster's collect callback: it feeds the
// shared answer store, then resolves as resolveQ.
func (e *extStream) resolveCollected(q *hit.Question, as []hit.CachedAnswer, done float64) error {
	e.x.answersStore(q, as)
	return e.resolveQ(q, as, done)
}

// finishInput flushes the trailing partial HIT; no more subjects will
// be ingested.
func (e *extStream) finishInput() error {
	e.eos = true
	return e.post.FlushQuestions(e.builder, &e.qbuf, e.batch, true)
}

// voteKey distinguishes one subject's one feature in the EOS vote
// stream (composite questions share a question ID across fields).
func extVoteKey(qid, field string) string { return qid + "#" + field }

// resolveQ is the poster's per-question callback: it routes one
// resolved extraction question's answers into values (PerQuestion) or
// the EOS vote buffer (stateful combiners), advancing the frontier.
func (e *extStream) resolveQ(q *hit.Question, as []hit.CachedAnswer, done float64) error {
	i, ok := e.qSlot[q.ID]
	if !ok {
		return fmt.Errorf("exec: extraction answer for unknown question %s", q.ID)
	}
	if done > e.lastDone {
		e.lastDone = done
	}
	if done > e.ready[i] {
		e.ready[i] = done
	}
	if !e.perQ {
		for _, field := range q.Fields {
			for _, ca := range as {
				raw, ok := ca.Answer.Fields[field]
				if !ok {
					continue
				}
				e.eosVotes = append(e.eosVotes, combine.Vote{
					Question: extVoteKey(q.ID, field),
					Worker:   ca.WorkerID,
					Value:    raw,
				})
			}
		}
		e.pending[i]--
		e.advanceFrontier()
		return nil
	}
	if e.values[i] == nil {
		e.values[i] = make(map[string]string, len(e.fields))
	}
	for _, field := range q.Fields {
		var votes []combine.Vote
		for _, ca := range as {
			raw, ok := ca.Answer.Fields[field]
			if !ok {
				continue
			}
			votes = append(votes, combine.Vote{Question: q.ID, Worker: ca.WorkerID, Value: raw})
		}
		val := "UNKNOWN"
		if len(votes) > 0 {
			decisions, err := e.comb.Combine(votes)
			if err != nil {
				return err
			}
			if d, ok := decisions[q.ID]; ok && d.Value != "" {
				val = d.Value
			}
		}
		e.values[i][field] = val
	}
	e.pending[i]--
	e.advanceFrontier()
	return nil
}

// advanceFrontier moves the resolved watermark over leading subjects
// whose questions have all resolved. With a PerQuestion combiner the
// watermark is the join's pair-generation frontier; stateful combiners
// only advance it at finalizeEOS.
func (e *extStream) advanceFrontier() {
	if !e.perQ {
		return
	}
	for e.resolved < len(e.pending) && e.pending[e.resolved] == 0 && e.values[e.resolved] != nil {
		e.resolved++
	}
}

// finalizeEOS resolves every subject with one combine over all
// buffered votes (stateful-combiner path). A no-op for PerQuestion
// combiners.
func (e *extStream) finalizeEOS() error {
	if e.final {
		return nil
	}
	e.final = true
	if e.perQ {
		return nil
	}
	decisions, err := e.comb.Combine(e.eosVotes)
	if err != nil {
		return err
	}
	for i := range e.values {
		if e.values[i] == nil {
			e.values[i] = make(map[string]string, len(e.fields))
		}
		for _, field := range e.fields {
			qid := e.qidFor(i, field)
			val := "UNKNOWN"
			if d, ok := decisions[extVoteKey(qid, field)]; ok && d.Value != "" {
				val = d.Value
			}
			e.values[i][field] = val
		}
		if e.lastDone > e.ready[i] {
			e.ready[i] = e.lastDone
		}
	}
	e.resolved = len(e.values)
	// Durable runs checkpoint the carry: every subject's resolved
	// feature values at the end-of-stream combine.
	return e.x.checkpoint(ckptExtraction, e.groupID, digestValues(e.values, e.fields), e.lastDone)
}

// qidFor is subject i's question ID for the given field: one composite
// question per subject in combined mode (the field is irrelevant), one
// question per (subject, feature) otherwise. IDs derive from the input
// ordinal, never a builder counter, so they are stable at any chunking.
func (e *extStream) qidFor(i int, field string) string {
	if e.combined {
		return hit.MintID(e.groupID, "t", i, 5)
	}
	return hit.MintID(e.groupID, "t", i, 5) + "." + field
}

// done reports whether every ingested subject has resolved values.
func (e *extStream) done() bool {
	return e.eos && e.post.Idle() && (e.perQ || e.final) && e.resolved == len(e.values)
}

// featureMatch applies the paper's §2.4 matching rule over resolved
// value maps: a pair survives unless two KNOWN values differ (UNKNOWN
// and unextracted features never prune) — the streaming equivalent of
// join.PairPasses.
func featureMatch(l, r map[string]string, fields []string) bool {
	for _, f := range fields {
		lv, lok := l[f]
		rv, rok := r[f]
		if !lok || !rok {
			continue
		}
		if strings.EqualFold(lv, "UNKNOWN") || strings.EqualFold(rv, "UNKNOWN") {
			continue
		}
		if lv != rv {
			return false
		}
	}
	return true
}
