package exec

// Tests for the assignment-timeout (expiry) policy: a worker accepts a
// HIT and never submits it, the marketplace reports the assignment
// expired at the deadline, and the streaming operators re-post the
// HIT's questions — with lineage-derived HIT IDs and only the missing
// assignment count — up to Options.ExpiredRetries deep, merging the
// partial votes collected before the expiry with the retry's.

import (
	"strings"
	"testing"

	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
)

// abandoningMarket returns a simulator in which each sampled worker
// abandons their assignment with the given probability.
func abandoningMarket(seed int64, oracle crowd.Oracle, prob float64) *crowd.SimMarket {
	cfg := crowd.DefaultConfig(seed)
	cfg.AbandonProb = prob
	return crowd.NewSimMarket(cfg, oracle)
}

// TestExpiredFilterRepostsMissingAssignments: with a third of all
// assignments abandoned, the filter still answers every tuple — expired
// HITs are re-posted for the missing votes — and the expiry shows up in
// Stats.
func TestExpiredFilterRepostsMissingAssignments(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 5})
	e := core.NewEngine(abandoningMarket(5, d.Oracle(), 0.3), core.Options{})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())

	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("every tuple rejected under abandonment: expiry policy inactive")
	}
	if stats.TotalExpired() == 0 {
		t.Error("AbandonProb = 0.3 produced no Stats expired count")
	}
	// 20 tuples at batch 5 = 4 original HITs; expiry re-posts add more.
	if stats.TotalHITs() <= 4 {
		t.Errorf("TotalHITs = %d, want > 4 (originals plus expiry re-posts)", stats.TotalHITs())
	}
	if len(stats.Incomplete) != 0 {
		t.Errorf("partial votes plus retries should leave nothing incomplete: %v", stats.Incomplete)
	}
}

// TestExpiryRetriesDisabled: ExpiredRetries = -1 resolves every
// question with whatever votes arrived before the deadline — fewer
// votes, no re-posts.
func TestExpiryRetriesDisabled(t *testing.T) {
	run := func(retries int) (int, int) {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 5})
		e := core.NewEngine(abandoningMarket(5, d.Oracle(), 0.3), core.Options{ExpiredRetries: retries})
		e.Catalog.Register(d.Celeb)
		e.Library.MustRegister(dataset.IsFemaleTask())
		_, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
		if err != nil {
			t.Fatal(err)
		}
		return stats.TotalHITs(), stats.TotalExpired()
	}
	offHITs, offExpired := run(-1)
	onHITs, _ := run(0) // 0 = default budget
	if offExpired == 0 {
		t.Fatal("abandonment inactive")
	}
	if offHITs != 4 {
		t.Errorf("with retries disabled the filter posts exactly its 4 original HITs, got %d", offHITs)
	}
	if onHITs <= offHITs {
		t.Errorf("expiry retries must add re-posted HITs: %d (on) vs %d (off)", onHITs, offHITs)
	}
}

// TestExpiryExhaustIncomplete: when every assignment of every post is
// abandoned, the retry budget bounds the spend and the voteless
// questions surface in Stats.Incomplete instead of silently rejecting.
func TestExpiryExhaustIncomplete(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 10, Seed: 6})
	e := core.NewEngine(abandoningMarket(6, d.Oracle(), 1.0), core.Options{})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())

	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("no assignment ever completes, got %d rows", out.Len())
	}
	if len(stats.Incomplete) == 0 {
		t.Error("exhausted-expiry questions must appear in Stats.Incomplete")
	}
	for _, id := range stats.Incomplete {
		if !strings.Contains(id, "filter/isFemale") {
			t.Errorf("incomplete entry %q does not name the filter's questions", id)
		}
	}
	// Original 2 batch-5 HITs plus ExpiredRetries=2 re-posts each.
	if want := 2 * (1 + 2); stats.TotalHITs() != want {
		t.Errorf("TotalHITs = %d, want %d (bounded by the expiry budget)", stats.TotalHITs(), want)
	}
}

// TestExpiryChunkSizeInvariance: re-posted HIT IDs derive from the
// expired HIT's lineage, never the shared builder, and carried partial
// votes merge in lineage order — so results stay bit-identical across
// StreamChunkHITs/lookahead settings even when assignments expire
// (the acceptance bar mirroring TestRetryChunkSizeInvariance).
func TestExpiryChunkSizeInvariance(t *testing.T) {
	run := func(chunk, lookahead int) (string, int, int) {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 40, Seed: 8})
		e := core.NewEngine(abandoningMarket(8, d.Oracle(), 0.35),
			core.Options{StreamChunkHITs: chunk, StreamLookahead: lookahead})
		e.Catalog.Register(d.Celeb)
		e.Library.MustRegister(dataset.IsFemaleTask())
		out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
		if err != nil {
			t.Fatal(err)
		}
		var names strings.Builder
		for i := 0; i < out.Len(); i++ {
			names.WriteString(out.Row(i).MustGet("name").String())
			names.WriteByte('\n')
		}
		return names.String(), stats.TotalHITs(), stats.TotalExpired()
	}
	baseRows, baseHITs, baseExpired := run(8, 2)
	if baseRows == "" {
		t.Fatal("abandoning run returned nothing; expiry policy inactive")
	}
	if baseExpired == 0 {
		t.Fatal("no expirations at AbandonProb = 0.35; test exercises nothing")
	}
	for _, cfg := range [][2]int{{1, 2}, {3, 1}, {16, 4}} {
		rows, hits, expired := run(cfg[0], cfg[1])
		if rows != baseRows {
			t.Errorf("chunk=%d lookahead=%d: result rows differ from chunk=8 baseline", cfg[0], cfg[1])
		}
		if hits != baseHITs {
			t.Errorf("chunk=%d lookahead=%d: %d HITs vs baseline %d", cfg[0], cfg[1], hits, baseHITs)
		}
		if expired != baseExpired {
			t.Errorf("chunk=%d lookahead=%d: %d expired vs baseline %d", cfg[0], cfg[1], expired, baseExpired)
		}
	}
}

// TestExpiryMakespanAtDeadline: an expiry is only observable at the
// assignment deadline, so an abandoning run's pipeline makespan is
// floored by it while a clean run finishes far earlier.
func TestExpiryMakespanAtDeadline(t *testing.T) {
	run := func(prob float64) float64 {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 40, Seed: 8})
		e := core.NewEngine(abandoningMarket(8, d.Oracle(), prob), core.Options{})
		e.Catalog.Register(d.Celeb)
		e.Library.MustRegister(dataset.IsFemaleTask())
		_, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
		if err != nil {
			t.Fatal(err)
		}
		return stats.PipelineMakespanHours
	}
	expiring, clean := run(0.3), run(0)
	if expiring <= clean {
		t.Errorf("expiry round trips must extend the makespan: %.3fh vs clean %.3fh", expiring, clean)
	}
	if expiring < 2 {
		t.Errorf("expiring makespan %.3fh below the 2h assignment deadline it must wait for", expiring)
	}
}

// TestExpiredJoinRetries: the join path re-posts expired pair batches
// too, with votes accumulating across the lineage in the pair slots.
func TestExpiredJoinRetries(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 6, Seed: 7})
	e := core.NewEngine(abandoningMarket(7, d.Oracle(), 0.3),
		core.Options{JoinAlgorithm: join.Naive, JoinBatch: 5})
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(dataset.SamePersonTask())

	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("join emptied by expirations: expiry policy not applied on the join path")
	}
	if stats.TotalExpired() == 0 {
		t.Error("join run reported no expired assignments at AbandonProb = 0.3")
	}
	if len(stats.Incomplete) != 0 {
		t.Errorf("unexpected incompletes: %v", stats.Incomplete)
	}
}
