package exec

// Estimator-accuracy tests: the optimizer's HIT estimates are checked
// against actual Ledger spending on SimMarket runs. Tolerances:
//
//   - Operators whose input cardinality is known exactly (scans feed
//     them directly) must estimate HITs EXACTLY — the batch formulas
//     and grid layouts are deterministic.
//   - Operators downstream of estimated selectivities (crowd filters
//     at 0.5) must land within 50% relative error on these datasets.
//   - Pre-filtered joins must land within a factor of two: the pass
//     fraction folds in dataset value skew and extraction noise that a
//     static model cannot see (ROADMAP records calibrating
//     selectivities from observed runs as the follow-on).
//
// These runs also prove the executor honors the optimizer's physical
// annotations: the engine options deliberately default to different
// interfaces than the optimizer picks.

import (
	"math"
	"testing"

	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
	"qurk/internal/plan"
	"qurk/internal/query"
)

// optimizeAndRun optimizes src against the engine's catalog and runs
// the annotated plan.
func optimizeAndRun(t *testing.T, e *core.Engine, src string, budget float64) (*plan.CostedPlan, *Stats) {
	t.Helper()
	stmt, err := query.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(stmt, e.Library)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := plan.Optimize(node, e.Catalog, plan.OptimizeOptionsFrom(e.Options, budget))
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := RunPlan(e, cp.Root)
	if err != nil {
		t.Fatal(err)
	}
	return cp, stats
}

func relErr(actual, est int) float64 {
	if est == 0 {
		if actual == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(actual-est)) / float64(est)
}

// TestEstimateExactFilter: a filter over a base relation has exact
// input cardinality, so the HIT estimate must match the ledger exactly.
func TestEstimateExactFilter(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 21})
	e := core.NewEngine(crowd.NewSimMarket(crowd.DefaultConfig(21), d.Oracle()), core.Options{})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())

	cp, stats := optimizeAndRun(t, e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`, 0)
	if cp.TotalHITs != 4 {
		t.Errorf("est = %d HITs, want 4 (= ⌈20/5⌉)", cp.TotalHITs)
	}
	if got := e.Ledger.TotalHITs(); got != cp.TotalHITs {
		t.Errorf("actual %d HITs vs estimate %d: filter estimates must be exact", got, cp.TotalHITs)
	}
	if stats.TotalHITs() != cp.TotalHITs {
		t.Errorf("stats %d vs estimate %d", stats.TotalHITs(), cp.TotalHITs)
	}
}

// TestEstimateExactJoin: a featureless join over two base relations
// has exact pair counts; the optimizer picks SmartBatch (the engine
// default here is Simple, so agreement also proves the annotation is
// honored) and the grid layout matches the estimate exactly.
func TestEstimateExactJoin(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 25, Seed: 22})
	e := core.NewEngine(crowd.NewSimMarket(crowd.DefaultConfig(22), d.Oracle()), core.Options{})
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(dataset.SamePersonTask())

	cp, _ := optimizeAndRun(t, e, `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`, 0)
	j := cp.Ops[0]
	if jn := j.Node.(*plan.CrowdJoin); jn.Phys.Algorithm != join.Smart || jn.Phys.GridRows != 5 {
		t.Fatalf("optimizer chose %v, expected SmartBatch 5×5 at 25×25", j.Node.(*plan.CrowdJoin).Phys)
	}
	want := 25 // ⌈25/5⌉ × ⌈25/5⌉ grids
	if j.HITs != want {
		t.Errorf("est = %d, want %d", j.HITs, want)
	}
	if got := e.Ledger.TotalHITs(); got != want {
		t.Errorf("actual %d HITs vs estimate %d: full-cross grid layout is deterministic", got, want)
	}
}

// TestEstimateExactSorts: compare covers and hybrid schedules are
// deterministic, so sort estimates over base relations are exact. The
// engine default (Compare) differs from the optimizer's large-n choice
// (Hybrid), proving SortPhys is honored.
func TestEstimateExactSorts(t *testing.T) {
	for _, n := range []int{12, 40} {
		sq := dataset.NewSquares(n)
		e := core.NewEngine(crowd.NewSimMarket(crowd.DefaultConfig(int64(n)), sq.Oracle()), core.Options{})
		e.Catalog.Register(sq.Rel)
		e.Library.MustRegister(dataset.SquareSorterTask())

		cp, _ := optimizeAndRun(t, e, `SELECT label FROM squares ORDER BY squareSorter(img)`, 0)
		if got := e.Ledger.TotalHITs(); got != cp.TotalHITs {
			t.Errorf("n=%d: actual %d HITs vs estimate %d (choice %s)",
				n, got, cp.TotalHITs, cp.Ops[0].Choice)
		}
	}
}

// TestEstimateFilteredJoinTolerance: the feature pre-filter's pass
// fraction (three features with the UNKNOWN wildcard share folded in)
// and the post-prune batch count are estimates; actual spending must
// land within the documented factor of two.
func TestEstimateFilteredJoinTolerance(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 80, Seed: 23})
	e := core.NewEngine(crowd.NewSimMarket(crowd.DefaultConfig(23), d.Oracle()), core.Options{})
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(dataset.SamePersonTask())
	e.Library.MustRegister(dataset.GenderTask())
	e.Library.MustRegister(dataset.HairColorTask())
	e.Library.MustRegister(dataset.SkinColorTask())

	cp, _ := optimizeAndRun(t, e, `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
AND POSSIBLY hairColor(c.img) = hairColor(p.img)
AND POSSIBLY skinColor(c.img) = skinColor(p.img)`, 0)
	jn := cp.Ops[0].Node.(*plan.CrowdJoin)
	if !jn.Phys.UseFeatures {
		t.Fatalf("optimizer should pre-filter at 80×80 with three features, got %v", jn.Phys)
	}
	actual := e.Ledger.TotalHITs()
	if re := relErr(actual, cp.TotalHITs); re > 1.0 {
		t.Errorf("actual %d HITs vs estimate %d: %.0f%% error exceeds the documented factor of two",
			actual, cp.TotalHITs, re*100)
	}
}

// TestEstimateDownstreamSelectivityTolerance: a join fed by a crowd
// filter runs on an estimated cardinality (selectivity 0.5); the
// dataset's split is near half, so the estimate must land within 50%.
func TestEstimateDownstreamSelectivityTolerance(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 24})
	e := core.NewEngine(crowd.NewSimMarket(crowd.DefaultConfig(24), d.Oracle()), core.Options{})
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(dataset.IsFemaleTask())
	e.Library.MustRegister(dataset.SamePersonTask())

	cp, _ := optimizeAndRun(t, e, `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)
WHERE isFemale(c.img)`, 0)
	actual := e.Ledger.TotalHITs()
	if re := relErr(actual, cp.TotalHITs); re > 0.5 {
		t.Errorf("actual %d HITs vs estimate %d: %.0f%% error exceeds the documented 50%%",
			actual, cp.TotalHITs, re*100)
	}
}

// TestBudgetAssignmentsHonored: a tight budget lowers per-operator
// assignment levels, and the executor posts (and prices) them.
func TestBudgetAssignmentsHonored(t *testing.T) {
	sq := dataset.NewSquares(40)
	e := core.NewEngine(crowd.NewSimMarket(crowd.DefaultConfig(9), sq.Oracle()), core.Options{})
	e.Catalog.Register(sq.Rel)
	e.Library.MustRegister(dataset.SquareSorterTask())

	cp, _ := optimizeAndRun(t, e, `SELECT label FROM squares ORDER BY squareSorter(img)`, 0.30)
	op := cp.Ops[0]
	if op.Assignments != 1 {
		t.Fatalf("$0.30 over 8 rate HITs leaves assignments = %d, want 1", op.Assignments)
	}
	if cp.TotalDollars > 0.30+1e-9 {
		t.Errorf("estimate $%.2f exceeds budget", cp.TotalDollars)
	}
	for _, entry := range e.Ledger.Entries() {
		if entry.Assignments != 1 {
			t.Errorf("ledger entry %q priced at %d assignments, want 1", entry.Label, entry.Assignments)
		}
	}
	if got := e.Ledger.TotalDollars(); got > 0.30+1e-9 {
		t.Errorf("actual spend $%.2f exceeds the $0.30 budget", got)
	}
}
