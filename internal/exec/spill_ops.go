// Spill-aware materialization for pipeline breakers. With
// Options.BreakerMemTuples set, the join's build side and the sorts'
// inputs hold at most that many tuples in memory and spill the rest to
// temporary run files (internal/spill); results are bit-identical to
// the in-memory paths at any cap.
package exec

import (
	"context"

	"qurk/internal/relation"
	"qurk/internal/spill"
)

// buildTable is the join's materialized build side: an in-memory
// relation when Options.BreakerMemTuples is unset, a partitioned spill
// table otherwise. Row is error-latching so the join's tight pair
// loops stay simple; callers surface Err once per step.
type buildTable struct {
	rel *relation.Relation
	sp  *spill.Table
	err error
}

// memBuildTable wraps an already-materialized relation.
func memBuildTable(rel *relation.Relation) *buildTable { return &buildTable{rel: rel} }

// drainBuildTable materializes op, spilling past cap tuples when cap
// is positive.
func drainBuildTable(ctx context.Context, op Operator, cap int) (*buildTable, float64, error) {
	if cap <= 0 {
		rel, ready, err := drainRelation(ctx, op)
		if err != nil {
			return nil, 0, err
		}
		return memBuildTable(rel), ready, nil
	}
	sp, err := spill.NewTable(op.Name(), op.Schema(), cap)
	if err != nil {
		return nil, 0, err
	}
	ready := 0.0
	for {
		b, err := op.Next(ctx)
		if err != nil {
			sp.Close()
			return nil, 0, err
		}
		if b == nil {
			break
		}
		for _, t := range b.Rows() {
			if err := sp.Append(t); err != nil {
				sp.Close()
				return nil, 0, err
			}
		}
		if b.Ready > ready {
			ready = b.Ready
		}
	}
	if cr := readyOf(op); cr > ready {
		ready = cr
	}
	return &buildTable{sp: sp}, ready, nil
}

// Len is the build side's tuple count.
func (b *buildTable) Len() int {
	if b.sp != nil {
		return b.sp.Len()
	}
	return b.rel.Len()
}

// Row returns tuple i; spill read errors latch into Err.
func (b *buildTable) Row(i int) relation.Tuple {
	if b.sp != nil {
		t, err := b.sp.Row(i)
		if err != nil && b.err == nil {
			b.err = err
		}
		return t
	}
	return b.rel.Row(i)
}

// Err reports the first spill read error, if any.
func (b *buildTable) Err() error { return b.err }

// Close removes spill files.
func (b *buildTable) Close() {
	if b.sp != nil {
		b.sp.Close()
	}
}
