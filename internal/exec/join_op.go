// Streaming crowd join. The build (right) side is always materialized
// — a block nested loop needs one full side, memory O(|S|) tuples.
// Without feature filters and with a per-pair interface
// (Simple/NaiveBatch) the probe (left) side streams: candidate pairs
// are generated batch by batch off the left input and batched into
// join HITs, so the join posts its first HITs while an upstream crowd
// filter is still draining. Feature filtering (§3.2), SmartBatch grid
// layout, and automatic feature selection all need a global view of
// the candidates, so those paths materialize the left side too
// (memory O(|R|+|S|)); posting and collection stay chunked and
// incremental either way, which is what lets LIMIT stop the spend.
package exec

import (
	"context"

	"qurk/internal/combine"
	"qurk/internal/hit"
	"qurk/internal/join"
	"qurk/internal/plan"
	"qurk/internal/relation"
)

// jslot tracks one distinct candidate pair: votes accumulate across
// the questions that reference it (duplicate rows can repeat a pair),
// and the pair resolves once every such question's chunk completed.
type jslot struct {
	pair     join.Pair
	votes    []combine.Vote
	pending  int
	decided  bool
	accepted bool
	ready    float64
}

type crowdJoinOp struct {
	x     *executor
	node  *plan.CrowdJoin
	phys  plan.JoinPhys
	path  string
	left  Operator
	right Operator

	schema *relation.Schema
	label  string

	comb    combine.Combiner
	perQ    bool
	builder *hit.Builder
	post    *poster
	acct    *opAcct
	seq     int

	started  bool
	rightRel *relation.Relation
	// streaming-left state (nil iter means left streams)
	iter      join.PairIter
	leftBuf   []relation.Tuple
	leftEOS   bool
	rightIdx  int
	pairsDone bool

	qbuf     []hit.Question
	slots    []*jslot
	slotOf   map[string]int
	eosVotes []combine.Vote
	emit     emitQueue
	emitAt   int
	clock    float64
	closed   bool
	done     bool
	final    bool
}

func (j *crowdJoinOp) Schema() *relation.Schema { return j.schema }
func (j *crowdJoinOp) Name() string             { return "join" }
func (j *crowdJoinOp) OpLabel() string          { return j.label + " [" + j.phys.String() + "]" }
func (j *crowdJoinOp) Inputs() []Operator       { return []Operator{j.left, j.right} }

// BreakerNote implements Breaker: the build side always materializes;
// features/SmartBatch/auto-selection also materialize the probe side.
func (j *crowdJoinOp) BreakerNote() string {
	if j.materializesLeft() {
		return "materializes both inputs (features/grid layout need global candidates; O(|R|+|S|))"
	}
	return "materializes build side only (O(|S|)); probe side streams"
}

// features returns the POSSIBLY features the physical plan actually
// applies — nil when the optimizer decided pre-filtering does not pay.
func (j *crowdJoinOp) features() ([]join.Feature, []join.Feature) {
	if !j.phys.UseFeatures {
		return nil, nil
	}
	return j.node.LeftFeatures, j.node.RightFeatures
}

func (j *crowdJoinOp) materializesLeft() bool {
	lf, _ := j.features()
	return len(lf) > 0 || j.phys.Algorithm == join.Smart
}

// finalReady includes rejected candidate pairs' decision times.
func (j *crowdJoinOp) finalReady() float64 {
	r := j.emit.ready
	for _, in := range []Operator{j.left, j.right} {
		if cr := readyOf(in); cr > r {
			r = cr
		}
	}
	return r
}

func (j *crowdJoinOp) Close() {
	if !j.closed {
		j.closed = true
		j.left.Close()
		j.right.Close()
	}
}

func (j *crowdJoinOp) Next(ctx context.Context) (*Batch, error) {
	if !j.started {
		if err := j.start(ctx); err != nil {
			return nil, err
		}
	}
	for {
		for j.emitAt < len(j.slots) && j.slots[j.emitAt].decided {
			s := j.slots[j.emitAt]
			if s.accepted {
				j.emit.push(s.pair.Left.Concat(s.pair.Right, j.schema), s.ready)
			} else {
				j.emit.advance(s.ready)
			}
			// Release the pair's tuples and votes; the slot struct stays
			// (duplicate rows can re-yield the pair key later — those
			// occurrences keep the already-decided verdict).
			s.pair = join.Pair{}
			s.votes = nil
			j.emitAt++
		}
		if !j.emit.empty() {
			return j.emit.pop(), nil
		}
		if j.done {
			return nil, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := j.step(ctx); err != nil {
			return nil, err
		}
	}
}

// start materializes the build side (and, when the candidate layout
// needs it, the probe side plus extractions) before any pair HIT is
// posted. Both subtrees are exchange-wrapped, so they execute
// concurrently — the paper's §2.5 pipelined left-deep execution.
func (j *crowdJoinOp) start(ctx context.Context) error {
	j.started = true
	opts := &j.x.eng.Options
	if !j.materializesLeft() {
		// Prime the probe-side exchange so its subtree posts crowd work
		// while the build side drains here.
		if c, ok := j.left.(*concurrentOp); ok {
			c.start(ctx)
		}
		right, rReady, err := drainRelation(ctx, j.right)
		if err != nil {
			return err
		}
		j.rightRel = right
		j.clock = rReady
		return nil
	}

	// Drain both sides concurrently.
	type side struct {
		rel   *relation.Relation
		ready float64
		err   error
	}
	lch := make(chan side, 1)
	go func() {
		rel, ready, err := drainRelation(ctx, j.left)
		lch <- side{rel, ready, err}
	}()
	right, rReady, rerr := drainRelation(ctx, j.right)
	l := <-lch
	if l.err != nil {
		return l.err
	}
	if rerr != nil {
		return rerr
	}
	j.rightRel = right
	j.clock = l.ready
	if rReady > j.clock {
		j.clock = rReady
	}

	var le, re *join.Extraction
	features, rightFeatures := j.features()
	var names []string
	if len(features) > 0 {
		// Extraction and the feature-selection sample join post via
		// blocking market calls; honor cancellation at the phase
		// boundary at least.
		if err := ctx.Err(); err != nil {
			return err
		}
		lcomb, err := j.x.eng.Combiner()
		if err != nil {
			return err
		}
		rcomb, err := j.x.eng.Combiner()
		if err != nil {
			return err
		}
		extOpts := join.ExtractOptions{
			Combined:    opts.ExtractCombined,
			BatchSize:   opts.ExtractBatch,
			Assignments: j.phys.Assignments,
		}
		lo := extOpts
		lo.Combiner = lcomb
		lo.GroupID = j.x.groupID("extract-left/"+j.node.Task.Name, j.path+".xl")
		ro := extOpts
		ro.Combiner = rcomb
		ro.GroupID = j.x.groupID("extract-right/"+j.node.Task.Name, j.path+".xr")
		var xerr error
		le, re, xerr = join.ExtractBoth(l.rel, right, features, rightFeatures, lo, ro, j.x.eng.Market)
		// Account whichever sides completed even when the other failed —
		// those HITs were spent regardless.
		if le != nil {
			j.x.account("extract-left", j.phys.Assignments, le.HITCount, le.AssignmentCount, 0)
		}
		if re != nil {
			j.x.account("extract-right", j.phys.Assignments, re.HITCount, re.AssignmentCount, 0)
		}
		if xerr != nil {
			return xerr
		}
		if opts.AutoSelectFeatures {
			kept, err := j.x.selectFeatures(j.node, l.rel, right, le, re, j.joinOptions(), j.path)
			if err != nil {
				return err
			}
			features = kept
		}
		names = make([]string, len(features))
		for i, f := range features {
			names[i] = f.Field
		}
	}

	if j.phys.Algorithm == join.Smart {
		return j.layoutGrids(l.rel, right, le, re, names)
	}
	j.iter = join.NewPairIter(l.rel, right, le, re, names)
	return nil
}

// joinOptions mirrors the materializing executor's join.Options for
// the feature-selection sample join.
func (j *crowdJoinOp) joinOptions() join.Options {
	comb, _ := j.x.eng.Combiner()
	return join.Options{
		Algorithm:   j.phys.Algorithm,
		BatchSize:   j.phys.BatchSize,
		GridRows:    j.phys.GridRows,
		GridCols:    j.phys.GridCols,
		Assignments: j.phys.Assignments,
		Combiner:    comb,
		GroupID:     j.x.groupID("join/"+j.node.Task.Name, j.path),
		Cache:       j.x.eng.Cache,
	}
}

// layoutGrids builds every SmartBatch grid HIT up front (the layout
// needs the full candidate set) and queues them for chunked posting.
func (j *crowdJoinOp) layoutGrids(left, right *relation.Relation, le, re *join.Extraction, names []string) error {
	var seq join.PairSeq
	if len(names) > 0 {
		seq = join.FilteredSeq(left, right, le, re, names)
	} else {
		seq = join.CrossSeq(left, right)
	}
	hits, err := join.SmartGridHITs(j.builder, seq, func(p join.Pair) { j.noteSlot(p) },
		j.node.Task.Name, j.phys.GridRows, j.phys.GridCols)
	if err != nil {
		return err
	}
	// A candidate's cell lives in exactly one grid HIT.
	for _, h := range hits {
		for qi := range h.Questions {
			q := &h.Questions[qi]
			for _, lt := range q.LeftItems {
				for _, rt := range q.RightItems {
					key := join.Pair{Left: lt, Right: rt}.Key()
					if idx, ok := j.slotOf[key]; ok {
						j.slots[idx].pending++
					}
				}
			}
		}
	}
	j.post.enqueue(hits...)
	j.pairsDone = true
	return nil
}

// noteSlot registers a candidate pair, deduplicating by content key
// (first appearance wins, fixing emission order).
func (j *crowdJoinOp) noteSlot(p join.Pair) *jslot {
	key := p.Key()
	if idx, ok := j.slotOf[key]; ok {
		return j.slots[idx]
	}
	s := &jslot{pair: p}
	j.slotOf[key] = len(j.slots)
	j.slots = append(j.slots, s)
	return s
}

// nextPair produces the next candidate pair, pulling left batches on
// demand in streaming mode.
func (j *crowdJoinOp) nextPair(ctx context.Context) (join.Pair, bool, error) {
	if j.iter != nil {
		p, ok := j.iter.Next()
		return p, ok, nil
	}
	for {
		if len(j.leftBuf) > 0 {
			if j.rightIdx < j.rightRel.Len() {
				p := join.Pair{Left: j.leftBuf[0], Right: j.rightRel.Row(j.rightIdx)}
				j.rightIdx++
				return p, true, nil
			}
			j.leftBuf = j.leftBuf[1:]
			j.rightIdx = 0
			continue
		}
		if j.leftEOS {
			return join.Pair{}, false, nil
		}
		in, err := j.left.Next(ctx)
		if err != nil {
			return join.Pair{}, false, err
		}
		if in == nil {
			j.leftEOS = true
			continue
		}
		if in.Ready > j.clock {
			j.clock = in.Ready
		}
		j.leftBuf = in.Tuples
		j.rightIdx = 0
	}
}

// step: generate candidate questions until a chunk's worth of HITs is
// queued, post, collect, finalize — all count-driven.
func (j *crowdJoinOp) step(ctx context.Context) error {
	batch := 1
	if j.phys.Algorithm == join.Naive && j.phys.BatchSize > 1 {
		batch = j.phys.BatchSize
	}
	for j.post.canPost() && j.post.hasChunk(j.pairsDone) {
		j.post.postOne(j.clock)
	}
	if !j.pairsDone && !j.closed && !j.post.backlogged() {
		// Fill one chunk's worth of HITs (bounded work per step).
		want := j.post.chunkHITs * batch
		for n := 0; n < want; n++ {
			p, ok, err := j.nextPair(ctx)
			if err != nil {
				return err
			}
			if !ok {
				j.pairsDone = true
				return j.flushHIT(batch, true)
			}
			s := j.noteSlot(p)
			s.pending++
			j.qbuf = append(j.qbuf, hit.Question{
				ID:   p.Key(),
				Kind: hit.JoinPairQ,
				Task: j.node.Task.Name,
				Left: p.Left, Right: p.Right,
			})
			if err := j.flushHIT(batch, false); err != nil {
				return err
			}
		}
		return nil
	}
	if j.post.oldestSeq() >= 0 {
		return j.collectChunk(ctx)
	}
	if (j.pairsDone || j.closed) && !j.final {
		if err := j.finalize(); err != nil {
			return err
		}
	}
	j.done = true
	return nil
}

func (j *crowdJoinOp) flushHIT(batch int, force bool) error {
	return j.post.flushQuestions(j.builder, &j.qbuf, batch, force)
}

func (j *crowdJoinOp) collectChunk(ctx context.Context) error {
	c, res, err := j.post.collect(ctx)
	if err != nil {
		return err
	}
	done := c.postedAt + res.MakespanHours
	retrying, exhausted, err := j.post.retryRefused(c, res.Incomplete, done)
	if err != nil {
		return err
	}
	xretrying, xincomplete, err := j.post.retryExpired(c, res, done)
	if err != nil {
		return err
	}
	retrying = mergeRetrying(retrying, xretrying)
	exhausted = append(exhausted, xincomplete...)
	votes := join.CollectVotes(c.hits, res.Assignments)
	if j.perQ {
		// EOS-mode combiners read only eosVotes; buffering per slot too
		// would double vote memory for nothing.
		for _, v := range votes {
			if idx, ok := j.slotOf[v.Question]; ok {
				j.slots[idx].votes = append(j.slots[idx].votes, v)
			}
		}
	}
	// Resolve pending counts: one per question (pair interfaces) or one
	// per candidate cell (grid interfaces).
	var touchErr error
	touch := func(key string) {
		idx, ok := j.slotOf[key]
		if !ok {
			return
		}
		s := j.slots[idx]
		s.pending--
		if done > s.ready {
			s.ready = done
		}
		if s.pending == 0 && !s.decided && j.perQ {
			if err := j.decideSlot(s, key); err != nil && touchErr == nil {
				touchErr = err
			}
			s.decided = true
		}
	}
	for _, h := range c.hits {
		for qi := range h.Questions {
			q := &h.Questions[qi]
			// Questions being retried after a refusal or an expiry stay
			// pending; their verdicts arrive with a later chunk. (The
			// partial votes of an expired HIT were appended to their
			// slots above — join slots accumulate votes across the
			// lineage, so nothing needs the poster's carry here.)
			if retrying[q.ID] > 0 {
				retrying[q.ID]--
				continue
			}
			if q.Kind == hit.JoinGridQ {
				for _, lt := range q.LeftItems {
					for _, rt := range q.RightItems {
						touch(join.Pair{Left: lt, Right: rt}.Key())
					}
				}
				continue
			}
			touch(q.ID)
		}
	}
	if touchErr != nil {
		return touchErr
	}
	if !j.perQ {
		j.eosVotes = append(j.eosVotes, votes...)
	}
	j.acct.collected(res.TotalAssignments, expiredCount(res.Expired), done, exhausted)
	return nil
}

// decideSlot resolves one pair from its own votes (PerQuestion path).
// Combine errors fail the query, matching the materializing executor.
func (j *crowdJoinOp) decideSlot(s *jslot, key string) error {
	if len(s.votes) == 0 {
		return nil
	}
	decisions, err := j.comb.Combine(s.votes)
	if err != nil {
		return err
	}
	if d, ok := decisions[key]; ok && d.Value == "yes" {
		s.accepted = true
	}
	s.votes = nil
	return nil
}

// finalize resolves every pair with one combine over all votes
// (stateful-combiner path) and closes out undecided slots. Combine
// errors fail the query, matching the materializing executor.
func (j *crowdJoinOp) finalize() error {
	j.final = true
	if !j.perQ {
		decisions, err := j.comb.Combine(j.eosVotes)
		if err != nil {
			return err
		}
		doneAt := j.clock
		if j.acct.lastDone > doneAt {
			doneAt = j.acct.lastDone
		}
		for _, s := range j.slots {
			if d, ok := decisions[s.pair.Key()]; ok && d.Value == "yes" {
				s.accepted = true
			}
			s.decided = true
			if doneAt > s.ready {
				s.ready = doneAt
			}
		}
		return nil
	}
	for _, s := range j.slots {
		if s.pending == 0 {
			s.decided = true
		}
	}
	return nil
}
