// Streaming crowd join. The build (right) side is always materialized
// — a block nested loop needs one full side; under
// Options.BreakerMemTuples it spills to disk partitions, bounding
// memory at O(cap) tuples. With a per-pair interface (Simple/
// NaiveBatch) the probe (left) side streams — including when POSSIBLY
// features are present: the probe side's extraction HITs are minted
// per arriving batch and posted through the chunked poster, the build
// side's extraction posts through the same poster, and pair
// generation consumes probe tuples as their feature votes resolve. A
// filtered join therefore pipelines end to end, and extraction
// inherits the refusal/expiry retry policies. SmartBatch grid layout
// and automatic feature selection still need a global view of the
// candidates, so those paths materialize the probe side too (memory
// O(|R|+|S|)); posting and collection stay chunked and incremental
// either way, which is what lets LIMIT stop the spend.
package exec

import (
	"context"
	"math"

	"qurk/internal/combine"
	"qurk/internal/cost"
	"qurk/internal/hit"
	"qurk/internal/join"
	"qurk/internal/obstats"
	"qurk/internal/plan"
	"qurk/internal/poster"
	"qurk/internal/relation"
)

// jslot tracks one distinct candidate pair: votes accumulate across
// the questions that reference it (duplicate rows can repeat a pair),
// and the pair resolves once every such question's chunk completed.
type jslot struct {
	pair     join.Pair
	votes    []combine.Vote
	pending  int
	decided  bool
	accepted bool
	// served marks a pair resolved from the shared answer store at mint
	// time; later duplicate occurrences keep the verdict without posting.
	served bool
	ready  float64
}

type crowdJoinOp struct {
	x     *executor
	node  *plan.CrowdJoin
	phys  plan.JoinPhys
	path  string
	left  Operator
	right Operator

	schema *relation.Schema
	label  string

	comb    combine.Combiner
	perQ    bool
	builder *hit.Builder
	post    *poster.Poster
	acct    *opAcct
	seq     int

	started  bool
	rightRel *buildTable
	// streaming-left state (nil iter means left streams)
	iter      join.PairIter
	leftBuf   []relation.Tuple
	leftEOS   bool
	rightIdx  int
	pairsDone bool

	// streaming feature extraction (nil when the join has no features
	// or must materialize the probe side): xl extracts the probe side
	// per arriving batch, xr the build side — fed incrementally inside
	// the step loop so its queued questions stay bounded even when the
	// build side spilled to disk; pair generation consumes xl's
	// resolved frontier.
	xl, xr    *extStream
	xrFed     int              // build rows handed to xr so far
	leftRows  []relation.Tuple // probe tuples awaiting pair generation
	genLeft   int              // next probe ordinal to pair
	genRight  int              // next build row for genLeft
	pairClock float64          // max resolve time of consumed tuples

	// mid-run re-plan (Options.Replan, streaming prefilter path only):
	// pair counts over the scanned probe prefix, the one-shot switch
	// decision, and — after a Naive→Smart switch — the surviving tail
	// pairs buffered for grid layout at end of stream.
	scanPairs int
	passPairs int
	replanned bool
	useSmart  bool
	tailPairs []join.Pair

	qbuf     []hit.Question
	slots    []*jslot
	slotOf   map[string]int
	eosVotes []combine.Vote
	emit     emitQueue
	emitAt   int
	clock    float64
	closed   bool
	done     bool
	final    bool
}

func (j *crowdJoinOp) Schema() *relation.Schema { return j.schema }
func (j *crowdJoinOp) Name() string             { return "join" }
func (j *crowdJoinOp) OpLabel() string          { return j.label + " [" + j.phys.String() + "]" }
func (j *crowdJoinOp) Inputs() []Operator       { return []Operator{j.left, j.right} }

// Breakers implements BreakerDetail: the build side always
// materializes (spilling past Options.BreakerMemTuples when set);
// grid layout and automatic feature selection also materialize the
// probe side; a stateful combiner additionally buffers all pair votes.
func (j *crowdJoinOp) Breakers() []BreakerInfo {
	cap := j.x.eng.Options.BreakerMemTuples
	var infos []BreakerInfo
	if j.materializesLeft() {
		infos = append(infos, BreakerInfo{
			Kind: BreakerJoinCandidates,
			Note: "materializes both inputs (grid layout/feature selection need global candidates)",
		})
		if lf, _ := j.features(); len(lf) > 0 {
			infos = append(infos, BreakerInfo{
				Kind: BreakerExtraction,
				Note: "feature extraction runs as a blocking pass over the materialized inputs",
			})
		}
	} else {
		infos = append(infos, BreakerInfo{
			Kind:      BreakerJoinBuild,
			MemTuples: cap,
			Spills:    cap > 0,
			Note:      "materializes build side only; probe side streams",
		})
	}
	if !j.perQ {
		infos = append(infos, BreakerInfo{
			Kind: BreakerVoteBuffer,
			Note: "buffers all pair votes for " + j.comb.Name(),
		})
	}
	return infos
}

// BreakerNote implements Breaker.
func (j *crowdJoinOp) BreakerNote() string { return breakerNote(j.Breakers()) }

// features returns the POSSIBLY features the physical plan actually
// applies — nil when the optimizer decided pre-filtering does not pay.
func (j *crowdJoinOp) features() ([]join.Feature, []join.Feature) {
	if !j.phys.UseFeatures {
		return nil, nil
	}
	return j.node.LeftFeatures, j.node.RightFeatures
}

// materializesLeft reports whether the probe side must be drained
// before pair layout: SmartBatch grids and §3.2 automatic feature
// selection both need the global candidate set. Plain feature
// filtering no longer does — the probe side's extraction streams.
func (j *crowdJoinOp) materializesLeft() bool {
	lf, _ := j.features()
	return j.phys.Algorithm == join.Smart || (len(lf) > 0 && j.x.eng.Options.AutoSelectFeatures)
}

// streamsExtraction reports whether the probe side's features are
// extracted on the fly through the chunked poster.
func (j *crowdJoinOp) streamsExtraction() bool {
	lf, _ := j.features()
	return len(lf) > 0 && !j.materializesLeft()
}

// initExtraction sets up the streaming extraction state at build time
// so the extract-left/extract-right Stats slots appear in
// deterministic plan order.
func (j *crowdJoinOp) initExtraction() error {
	if !j.streamsExtraction() {
		return nil
	}
	lf, rf := j.features()
	var err error
	j.xl, err = j.x.newExtStream("extract-left",
		j.x.groupID("extract-left/"+j.node.Task.Name, j.path+".xl"), lf, j.phys.Assignments, &j.seq)
	if err != nil {
		return err
	}
	j.xr, err = j.x.newExtStream("extract-right",
		j.x.groupID("extract-right/"+j.node.Task.Name, j.path+".xr"), rf, j.phys.Assignments, &j.seq)
	return err
}

// finalReady includes rejected candidate pairs' decision times.
func (j *crowdJoinOp) finalReady() float64 {
	r := j.emit.ready
	for _, in := range []Operator{j.left, j.right} {
		if cr := readyOf(in); cr > r {
			r = cr
		}
	}
	return r
}

func (j *crowdJoinOp) Close() {
	if !j.closed {
		j.closed = true
		j.left.Close()
		j.right.Close()
		if j.rightRel != nil {
			j.rightRel.Close()
		}
	}
}

func (j *crowdJoinOp) Next(ctx context.Context) (*Batch, error) {
	if !j.started {
		if err := j.start(ctx); err != nil {
			return nil, err
		}
	}
	for {
		for j.emitAt < len(j.slots) && j.slots[j.emitAt].decided {
			s := j.slots[j.emitAt]
			if s.accepted {
				j.emit.push(s.pair.Left.Concat(s.pair.Right, j.schema), s.ready)
			} else {
				j.emit.advance(s.ready)
			}
			// Release the pair's tuples and votes; the slot struct stays
			// (duplicate rows can re-yield the pair key later — those
			// occurrences keep the already-decided verdict).
			s.pair = join.Pair{}
			s.votes = nil
			j.emitAt++
		}
		if !j.emit.empty() {
			return j.emit.pop(j.schema), nil
		}
		if j.done {
			return nil, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := j.step(ctx); err != nil {
			return nil, err
		}
	}
}

// start materializes the build side (and, when the candidate layout
// needs it, the probe side plus extractions) before any pair HIT is
// posted. Both subtrees are exchange-wrapped, so they execute
// concurrently — the paper's §2.5 pipelined left-deep execution. On
// the streaming-extraction path the build side's extraction questions
// are minted here but posted and collected chunk by chunk inside
// step(), interleaved with the probe side's extraction.
func (j *crowdJoinOp) start(ctx context.Context) error {
	j.started = true
	opts := &j.x.eng.Options
	if !j.materializesLeft() {
		// Prime the probe-side exchange so its subtree posts crowd work
		// while the build side drains here.
		if c, ok := j.left.(*concurrentOp); ok {
			c.start(ctx)
		}
		right, rReady, err := drainBuildTable(ctx, j.right, opts.BreakerMemTuples)
		if err != nil {
			return err
		}
		// Durable runs checkpoint the materialized build side (spilled
		// partitions keep a running digest, so this is free of re-reads).
		if err := j.x.checkpoint(ckptJoinBuild, j.path+".b", right.digest(), rReady); err != nil {
			return err
		}
		j.rightRel = right
		j.clock = rReady
		if j.xr != nil {
			// The build side's extraction questions are fed to xr
			// incrementally inside stepExtracting — minting them all here
			// would pin O(|S|) tuples in queued HITs, defeating the spill
			// the drain above may just have performed.
			j.pairClock = rReady
		}
		return nil
	}

	// Drain both sides concurrently.
	type side struct {
		rel   *relation.Relation
		ready float64
		err   error
	}
	lch := make(chan side, 1)
	go func() {
		rel, ready, err := drainRelation(ctx, j.left)
		lch <- side{rel, ready, err}
	}()
	right, rReady, rerr := drainRelation(ctx, j.right)
	l := <-lch
	if l.err != nil {
		return l.err
	}
	if rerr != nil {
		return rerr
	}
	j.rightRel = memBuildTable(right)
	if err := j.x.checkpoint(ckptJoinBuild, j.path+".b", j.rightRel.digest(), rReady); err != nil {
		return err
	}
	j.clock = l.ready
	if rReady > j.clock {
		j.clock = rReady
	}

	var le, re *join.Extraction
	features, rightFeatures := j.features()
	var names []string
	if len(features) > 0 {
		// Extraction and the feature-selection sample join post via
		// blocking market calls; honor cancellation at the phase
		// boundary at least.
		if err := ctx.Err(); err != nil {
			return err
		}
		lcomb, err := j.x.eng.Combiner()
		if err != nil {
			return err
		}
		rcomb, err := j.x.eng.Combiner()
		if err != nil {
			return err
		}
		extOpts := join.ExtractOptions{
			Combined:    opts.ExtractCombined,
			BatchSize:   opts.ExtractBatch,
			Assignments: j.phys.Assignments,
		}
		lo := extOpts
		lo.Combiner = lcomb
		lo.GroupID = j.x.groupID("extract-left/"+j.node.Task.Name, j.path+".xl")
		ro := extOpts
		ro.Combiner = rcomb
		ro.GroupID = j.x.groupID("extract-right/"+j.node.Task.Name, j.path+".xr")
		var xerr error
		le, re, xerr = join.ExtractBoth(l.rel, right, features, rightFeatures, lo, ro, j.x.eng.Market)
		// Account whichever sides completed even when the other failed —
		// those HITs were spent regardless.
		if le != nil {
			j.x.account("extract-left", j.phys.Assignments, le.HITCount, le.AssignmentCount, 0)
		}
		if re != nil {
			j.x.account("extract-right", j.phys.Assignments, re.HITCount, re.AssignmentCount, 0)
		}
		if xerr != nil {
			return xerr
		}
		if opts.AutoSelectFeatures {
			kept, err := j.x.selectFeatures(j.node, l.rel, right, le, re, j.joinOptions(), j.path)
			if err != nil {
				return err
			}
			features = kept
		}
		names = make([]string, len(features))
		for i, f := range features {
			names[i] = f.Field
		}
	}

	if j.phys.Algorithm == join.Smart {
		return j.layoutGrids(l.rel, right, le, re, names)
	}
	j.iter = join.NewPairIter(l.rel, right, le, re, names)
	return nil
}

// joinOptions mirrors the materializing executor's join.Options for
// the feature-selection sample join.
func (j *crowdJoinOp) joinOptions() join.Options {
	comb, _ := j.x.eng.Combiner()
	return join.Options{
		Algorithm:   j.phys.Algorithm,
		BatchSize:   j.phys.BatchSize,
		GridRows:    j.phys.GridRows,
		GridCols:    j.phys.GridCols,
		Assignments: j.phys.Assignments,
		Combiner:    comb,
		GroupID:     j.x.groupID("join/"+j.node.Task.Name, j.path),
		Cache:       j.x.eng.Cache,
	}
}

// layoutGrids builds every SmartBatch grid HIT up front (the layout
// needs the full candidate set) and queues them for chunked posting.
func (j *crowdJoinOp) layoutGrids(left, right *relation.Relation, le, re *join.Extraction, names []string) error {
	var seq join.PairSeq
	if len(names) > 0 {
		seq = join.FilteredSeq(left, right, le, re, names)
	} else {
		seq = join.CrossSeq(left, right)
	}
	hits, err := join.SmartGridHITs(j.builder, seq, func(p join.Pair) { j.noteSlot(p) },
		j.node.Task.Name, j.phys.GridRows, j.phys.GridCols)
	if err != nil {
		return err
	}
	// Serve whole grid HITs from the answer store where possible: a grid
	// question's content key covers its full item layout, so a stored
	// entry decides every cell (a candidate's cell lives in exactly one
	// grid HIT). Grids are built one question per HIT, so serving is
	// all-or-nothing per HIT; multi-question HITs always post.
	var post []*hit.HIT
	for _, h := range hits {
		if len(h.Questions) == 1 {
			as, ok, err := j.x.answersLookup(&h.Questions[0], j.clock)
			if err != nil {
				return err
			}
			if ok {
				if err := j.applyGridAnswers(&h.Questions[0], as, j.clock); err != nil {
					return err
				}
				continue
			}
		}
		post = append(post, h)
	}
	for _, h := range post {
		for qi := range h.Questions {
			q := &h.Questions[qi]
			for _, lt := range q.LeftItems {
				for _, rt := range q.RightItems {
					key := join.Pair{Left: lt, Right: rt}.Key()
					if idx, ok := j.slotOf[key]; ok {
						j.slots[idx].pending++
					}
				}
			}
		}
	}
	j.post.Enqueue(post...)
	j.pairsDone = true
	return nil
}

// applyGridAnswers decides every cell of one store-served grid question
// from its stored worker answers — the same per-cell vote expansion
// join.CollectVotes performs for freshly collected grids.
func (j *crowdJoinOp) applyGridAnswers(q *hit.Question, as []hit.CachedAnswer, clock float64) error {
	for li, lt := range q.LeftItems {
		for ri, rt := range q.RightItems {
			key := join.Pair{Left: lt, Right: rt}.Key()
			idx, ok := j.slotOf[key]
			if !ok {
				continue
			}
			s := j.slots[idx]
			votes := make([]combine.Vote, 0, len(as))
			for _, ca := range as {
				sel := false
				for _, pr := range ca.Answer.Pairs {
					if pr == [2]int{li, ri} {
						sel = true
						break
					}
				}
				votes = append(votes, combine.Vote{Question: key, Worker: ca.WorkerID, Value: combine.BoolVote(sel)})
			}
			s.served = true
			if clock > s.ready {
				s.ready = clock
			}
			if j.perQ {
				s.votes = append(s.votes, votes...)
				if !s.decided {
					if err := j.decideSlot(s, key); err != nil {
						return err
					}
					s.decided = true
				}
			} else {
				j.eosVotes = append(j.eosVotes, votes...)
			}
		}
	}
	return nil
}

// noteSlot registers a candidate pair, deduplicating by content key
// (first appearance wins, fixing emission order). It returns the pair's
// key so callers minting a question reuse the string instead of
// re-deriving it; the last result reports whether this was the pair's
// first appearance.
func (j *crowdJoinOp) noteSlot(p join.Pair) (*jslot, string, bool) {
	key := p.Key()
	if idx, ok := j.slotOf[key]; ok {
		return j.slots[idx], key, false
	}
	s := &jslot{pair: p}
	j.slotOf[key] = len(j.slots)
	j.slots = append(j.slots, s)
	return s, key, true
}

// mintPair queues one candidate pair's question — unless the pair was
// already resolved from the answer store (first appearance consults
// the store; a servable entry decides the slot without posting).
func (j *crowdJoinOp) mintPair(p join.Pair, key string, s *jslot, isNew bool, batch int, clock float64) error {
	if s.served {
		return nil
	}
	q := hit.Question{
		ID:   key,
		Kind: hit.JoinPairQ,
		Task: j.node.Task.Name,
		Left: p.Left, Right: p.Right,
	}
	if isNew {
		as, ok, err := j.x.answersLookup(&q, clock)
		if err != nil {
			return err
		}
		if ok {
			votes := make([]combine.Vote, 0, len(as))
			for _, ca := range as {
				votes = append(votes, combine.Vote{Question: q.ID, Worker: ca.WorkerID, Value: combine.BoolVote(ca.Answer.Bool)})
			}
			s.served = true
			if clock > s.ready {
				s.ready = clock
			}
			if j.perQ {
				s.votes = votes
				if err := j.decideSlot(s, q.ID); err != nil {
					return err
				}
				s.decided = true
			} else {
				j.eosVotes = append(j.eosVotes, votes...)
			}
			return nil
		}
	}
	s.pending++
	j.qbuf = append(j.qbuf, q)
	return j.flushHIT(batch, false)
}

// nextPair produces the next candidate pair on the featureless
// streaming path, pulling left batches on demand.
func (j *crowdJoinOp) nextPair(ctx context.Context) (join.Pair, bool, error) {
	if j.iter != nil {
		p, ok := j.iter.Next()
		return p, ok, nil
	}
	for {
		if len(j.leftBuf) > 0 {
			if j.rightIdx < j.rightRel.Len() {
				p := join.Pair{Left: j.leftBuf[0], Right: j.rightRel.Row(j.rightIdx)}
				j.rightIdx++
				return p, true, nil
			}
			j.leftBuf = j.leftBuf[1:]
			j.rightIdx = 0
			continue
		}
		if j.leftEOS {
			return join.Pair{}, false, nil
		}
		in, err := j.left.Next(ctx)
		if err != nil {
			return join.Pair{}, false, err
		}
		if in == nil {
			j.leftEOS = true
			continue
		}
		if in.Ready > j.clock {
			j.clock = in.Ready
		}
		j.leftBuf = in.Rows()
		j.rightIdx = 0
	}
}

// pairBatch is the questions-per-HIT of the chosen pair interface.
func (j *crowdJoinOp) pairBatch() int {
	if j.phys.Algorithm == join.Naive && j.phys.BatchSize > 1 {
		return j.phys.BatchSize
	}
	return 1
}

// step: generate candidate questions until a chunk's worth of HITs is
// queued, post, collect, finalize — all count-driven. On the
// streaming-extraction path the step loop also schedules the two
// extraction posters; the globally oldest in-flight chunk (across all
// posters, by shared sequence number) is always collected first, so
// interleaving is deterministic.
func (j *crowdJoinOp) step(ctx context.Context) error {
	if j.rightRel != nil {
		if err := j.rightRel.Err(); err != nil {
			return err
		}
	}
	batch := j.pairBatch()
	if j.streamsExtraction() {
		return j.stepExtracting(ctx, batch)
	}
	for j.post.CanPost() && j.post.HasChunk(j.pairsDone) {
		j.post.PostOne(j.clock)
	}
	if !j.pairsDone && !j.closed && !j.post.Backlogged() {
		// Fill one chunk's worth of HITs (bounded work per step).
		want := j.x.eng.Options.StreamChunkHITs * batch
		for n := 0; n < want; n++ {
			p, ok, err := j.nextPair(ctx)
			if err != nil {
				return err
			}
			if !ok {
				j.pairsDone = true
				return j.flushHIT(batch, true)
			}
			s, key, isNew := j.noteSlot(p)
			if err := j.mintPair(p, key, s, isNew, batch, j.clock); err != nil {
				return err
			}
		}
		return nil
	}
	if j.post.OldestSeq() >= 0 {
		return j.collectChunk(ctx)
	}
	if (j.pairsDone || j.closed) && !j.final {
		if err := j.finalize(); err != nil {
			return err
		}
	}
	j.done = true
	return nil
}

// stepExtracting advances the pipelined filtered join by one action:
// post every poster with a ready chunk, ingest a probe batch (minting
// its extraction questions), turn resolved probe tuples into pair
// questions, or collect the globally oldest in-flight chunk.
func (j *crowdJoinOp) stepExtracting(ctx context.Context, batch int) error {
	// Feed the build side's extraction a bounded slice of rows: enough
	// to keep its poster busy, never the whole (possibly spilled) side
	// at once.
	if j.xrFed < j.rightRel.Len() && !j.xr.post.Backlogged() {
		want := j.x.eng.Options.StreamChunkHITs * j.xr.batch
		for n := 0; n < want && j.xrFed < j.rightRel.Len(); n++ {
			row := j.rightRel.Row(j.xrFed)
			// Surface a spill read error before minting a question from
			// the zero tuple it returned — posting it would spend real
			// money on garbage.
			if err := j.rightRel.Err(); err != nil {
				return err
			}
			if err := j.xr.ingest(row); err != nil {
				return err
			}
			j.xrFed++
		}
	}
	if j.xrFed >= j.rightRel.Len() && !j.xr.eos {
		if err := j.xr.finishInput(); err != nil {
			return err
		}
	}
	// Post.
	for j.xr.post.CanPost() && j.xr.post.HasChunk(j.xr.eos) {
		j.xr.post.PostOne(j.clock)
	}
	for j.xl.post.CanPost() && j.xl.post.HasChunk(j.xl.eos) {
		j.xl.post.PostOne(j.clock)
	}
	for j.post.CanPost() && j.post.HasChunk(j.pairsDone) {
		j.post.PostOne(j.pairClock)
	}
	// Ingest the probe side unless its extraction poster is backlogged
	// or extraction has run far enough ahead of pair generation. The
	// demand window keeps extraction busy without racing to the end of
	// the input — so a LIMIT that closes the pipeline leaves the
	// un-ingested tail's extraction HITs unposted (the streaming
	// equivalent of the pair-phase short-circuit). Stateful combiners
	// resolve only at end of stream, so they get no window: pair
	// generation cannot start until the whole input is extracted.
	opts := &j.x.eng.Options
	window := opts.StreamLookahead * opts.StreamChunkHITs * j.xl.batch
	if !j.xl.perQ {
		window = 0
	}
	ahead := len(j.leftRows) - j.genLeft
	if !j.leftEOS && !j.closed && !j.xl.post.Backlogged() && (window <= 0 || ahead < window) {
		in, err := j.left.Next(ctx)
		if err != nil {
			return err
		}
		if in == nil {
			j.leftEOS = true
			return j.xl.finishInput()
		}
		if in.Ready > j.clock {
			j.clock = in.Ready
		}
		for _, t := range in.Rows() {
			j.leftRows = append(j.leftRows, t)
			if err := j.xl.ingest(t); err != nil {
				return err
			}
		}
		return nil
	}
	// Generate pair questions from the resolved probe frontier. The
	// build side's extraction must be fully resolved first: a pair can
	// only be pruned (or kept) once both sides' values are known.
	if !j.pairsDone && !j.closed && j.xr.done() && !j.post.Backlogged() {
		progress, err := j.genPairs(batch)
		if err == nil {
			err = j.rightRel.Err()
		}
		if err != nil {
			return err
		}
		if progress {
			return nil
		}
	}
	// Collect the globally oldest in-flight chunk across the three
	// posters (shared sequence numbers fix the order).
	oldest := -1
	var collect func(context.Context) error
	consider := func(seq int, fn func(context.Context) error) {
		if seq >= 0 && (oldest < 0 || seq < oldest) {
			oldest, collect = seq, fn
		}
	}
	consider(j.xr.post.OldestSeq(), func(ctx context.Context) error {
		_, err := j.xr.post.CollectOne(ctx, j.xr.resolveCollected)
		return err
	})
	consider(j.xl.post.OldestSeq(), func(ctx context.Context) error {
		_, err := j.xl.post.CollectOne(ctx, j.xl.resolveCollected)
		return err
	})
	consider(j.post.OldestSeq(), j.collectChunk)
	if collect != nil {
		return collect(ctx)
	}
	// Stateful extraction combiners resolve once their stream is fully
	// collected; pair generation then resumes above.
	if j.xl.eos && j.xl.post.Idle() && !j.xl.final {
		if err := j.xl.finalizeEOS(); err != nil {
			return err
		}
		return nil
	}
	if j.xr.eos && j.xr.post.Idle() && !j.xr.final {
		return j.xr.finalizeEOS()
	}
	if (j.pairsDone || j.closed) && !j.final {
		if err := j.finalize(); err != nil {
			return err
		}
	}
	j.done = true
	return nil
}

// genPairs turns resolved probe tuples into pair questions, bounded to
// one chunk's worth of build-side visits per call. It reports whether
// it made progress (generated questions or finished the pair stream).
func (j *crowdJoinOp) genPairs(batch int) (bool, error) {
	want := j.x.eng.Options.StreamChunkHITs * batch
	visited := 0
	for visited < want {
		if j.genLeft >= j.xl.resolved {
			break
		}
		if j.genRight == 0 {
			// Consuming a new probe tuple: pairs derived from it cannot
			// post before its features (or the build side's) resolved.
			if r := j.xl.ready[j.genLeft]; r > j.pairClock {
				j.pairClock = r
			}
			if j.xr.lastDone > j.pairClock {
				j.pairClock = j.xr.lastDone
			}
		}
		lt := j.leftRows[j.genLeft]
		lv := j.xl.values[j.genLeft]
		for j.genRight < j.rightRel.Len() && visited < want {
			rt := j.rightRel.Row(j.genRight)
			rv := j.xr.values[j.genRight]
			ri := j.genRight
			j.genRight++
			visited++
			pass := featureMatch(lv, rv, j.xl.fields)
			j.scanPairs++
			if pass {
				j.passPairs++
			}
			if !pass {
				continue
			}
			p := join.Pair{LeftIndex: j.genLeft, RightIndex: ri, Left: lt, Right: rt}
			if j.useSmart {
				// Post-switch survivors wait for the grid layout at end of
				// stream; emission order still follows scan order because
				// their slots register during layout, after every minted one.
				j.tailPairs = append(j.tailPairs, p)
				continue
			}
			s, key, isNew := j.noteSlot(p)
			if err := j.mintPair(p, key, s, isNew, batch, j.pairClock); err != nil {
				return false, err
			}
		}
		if j.genRight >= j.rightRel.Len() {
			j.genRight = 0
			j.leftRows[j.genLeft] = relation.Tuple{} // release the buffered tuple
			j.xl.values[j.genLeft] = nil
			j.genLeft++
			if err := j.maybeReplan(); err != nil {
				return false, err
			}
		}
	}
	if j.leftEOS && j.xl.done() && j.genLeft >= len(j.leftRows) && !j.pairsDone {
		j.pairsDone = true
		if err := j.layoutTailGrids(); err != nil {
			return false, err
		}
		if err := j.flushHIT(batch, true); err != nil {
			return false, err
		}
		return true, nil
	}
	// Advancing the scan cursor is progress even when every visited
	// pair was pruned — otherwise a fully-filtered visit window would
	// end the operator with candidates still unscanned.
	return visited > 0, nil
}

// replanGrid is the grid shape a mid-run switch lays tail pairs out
// with — the engine's configured SmartBatch shape (a Naive physical
// plan carries no grid dimensions of its own).
func (j *crowdJoinOp) replanGrid() (int, int) {
	r, s := j.x.eng.Options.GridRows, j.x.eng.Options.GridCols
	if r <= 0 {
		r = 3
	}
	if s <= 0 {
		s = 3
	}
	return r, s
}

// maybeReplan makes the one mid-run join re-optimization decision, at
// the moment the first Options.Replan.ProbeTuples probe rows have been
// fully scanned against the build side. The observed POSSIBLY pass
// fraction re-costs the chosen per-pair interface against SmartBatch
// grids for the remaining pairs; when grids are cheaper per probe row
// and their estimated quality clears Replan.MinQuality, the remaining
// survivors are laid out as grids instead of per-pair HITs. The
// decision reads only extraction-derived counts at a fixed probe-row
// boundary — never collection timing — so it is identical at any
// ExecBatch/StreamChunkHITs setting; durable runs checkpoint it so a
// resume verifies the same switch.
func (j *crowdJoinOp) maybeReplan() error {
	repl := j.x.eng.Options.Replan
	if j.replanned || !repl.Enabled || j.genLeft < repl.ProbeTuples {
		return nil
	}
	j.replanned = true
	nr := j.rightRel.Len()
	if j.scanPairs == 0 || nr == 0 {
		return nil
	}
	f := float64(j.passPairs) / float64(j.scanPairs)
	r, s := j.replanGrid()
	b := float64(j.pairBatch())
	naivePerRow := f * float64(nr) / b
	smartPerRow := float64(cost.CeilDiv(nr, s)) * (1 - math.Pow(1-f, float64(r*s))) / float64(r)
	// Grid-quality stand-in: assume one true match per probe row spread
	// uniformly over the build side — sel·r·s expected matches per grid
	// with sel = 1/nr (deterministic; true matches are unknown mid-run).
	quality := cost.GridQuality(r, s, float64(r*s)/float64(nr))
	if smartPerRow < naivePerRow && quality >= repl.MinQuality {
		j.useSmart = true
	}
	dig := fnvFold(0, uint64(repl.ProbeTuples))
	dig = fnvFold(dig, uint64(j.scanPairs))
	dig = fnvFold(dig, uint64(j.passPairs))
	var sw uint64
	if j.useSmart {
		sw = 1
	}
	dig = fnvFold(dig, sw)
	dig = fnvFold(dig, uint64(r))
	dig = fnvFold(dig, uint64(s))
	return j.x.checkpoint(ckptReplan, j.path, dig, j.pairClock)
}

// layoutTailGrids lays the pairs buffered since a mid-run Naive→Smart
// switch out as SmartBatch grids (the layout needs the full tail) and
// queues them on the pair poster — mirroring layoutGrids' store-serve
// and per-cell pending accounting. collectChunk's per-cell grid
// expansion then resolves them like any up-front grid.
func (j *crowdJoinOp) layoutTailGrids() error {
	if !j.useSmart || len(j.tailPairs) == 0 {
		return nil
	}
	r, s := j.replanGrid()
	hits, err := join.SmartGridHITs(j.builder, join.SliceSeq(j.tailPairs), func(p join.Pair) { j.noteSlot(p) },
		j.node.Task.Name, r, s)
	if err != nil {
		return err
	}
	j.tailPairs = nil
	var post []*hit.HIT
	for _, h := range hits {
		if len(h.Questions) == 1 {
			as, ok, err := j.x.answersLookup(&h.Questions[0], j.pairClock)
			if err != nil {
				return err
			}
			if ok {
				if err := j.applyGridAnswers(&h.Questions[0], as, j.pairClock); err != nil {
					return err
				}
				continue
			}
		}
		post = append(post, h)
	}
	for _, h := range post {
		for qi := range h.Questions {
			q := &h.Questions[qi]
			for _, lt := range q.LeftItems {
				for _, rt := range q.RightItems {
					key := join.Pair{Left: lt, Right: rt}.Key()
					if idx, ok := j.slotOf[key]; ok {
						j.slots[idx].pending++
					}
				}
			}
		}
	}
	j.post.Enqueue(post...)
	return nil
}

func (j *crowdJoinOp) flushHIT(batch int, force bool) error {
	return j.post.FlushQuestions(j.builder, &j.qbuf, batch, force)
}

func (j *crowdJoinOp) collectChunk(ctx context.Context) error {
	c, res, err := j.post.Collect(ctx)
	if err != nil {
		return err
	}
	done := c.PostedAt + res.MakespanHours
	retrying, exhausted, err := j.post.RetryRefused(c, res.Incomplete, done)
	if err != nil {
		return err
	}
	xretrying, xincomplete, err := j.post.RetryExpired(c, res, done)
	if err != nil {
		return err
	}
	retrying = poster.MergeRetrying(retrying, xretrying)
	exhausted = append(exhausted, xincomplete...)
	// Feed resolved questions to the shared answer store (skipping those
	// still pending a refusal/expiry retry — their final vote set
	// arrives with a later chunk). Duplicate questions with one ID
	// aggregate their votes, matching what the slots accumulate.
	if j.x.eng.Answers != nil {
		byQ := map[string][]hit.CachedAnswer{}
		hit.ForEachAnswer(c.HITs, res.Assignments, func(q *hit.Question, worker string, ans hit.Answer) {
			byQ[q.ID] = append(byQ[q.ID], hit.CachedAnswer{WorkerID: worker, Answer: ans})
		})
		stored := map[string]bool{}
		for _, h := range c.HITs {
			for qi := range h.Questions {
				q := &h.Questions[qi]
				if retrying[q.ID] > 0 || stored[q.ID] {
					continue
				}
				stored[q.ID] = true
				j.x.answersStore(q, byQ[q.ID])
			}
		}
	}
	votes := join.CollectVotes(c.HITs, res.Assignments)
	if j.perQ {
		// EOS-mode combiners read only eosVotes; buffering per slot too
		// would double vote memory for nothing.
		for _, v := range votes {
			if idx, ok := j.slotOf[v.Question]; ok {
				s := j.slots[idx]
				if s.votes == nil {
					// Size for one HIT's worth of assignments; retried
					// lineages append past the hint and just regrow.
					s.votes = make([]combine.Vote, 0, j.phys.Assignments)
				}
				s.votes = append(s.votes, v)
			}
		}
	}
	// Resolve pending counts: one per question (pair interfaces) or one
	// per candidate cell (grid interfaces).
	var touchErr error
	touch := func(key string) {
		idx, ok := j.slotOf[key]
		if !ok {
			return
		}
		s := j.slots[idx]
		s.pending--
		if done > s.ready {
			s.ready = done
		}
		if s.pending == 0 && !s.decided && j.perQ {
			if err := j.decideSlot(s, key); err != nil && touchErr == nil {
				touchErr = err
			}
			s.decided = true
		}
	}
	for _, h := range c.HITs {
		for qi := range h.Questions {
			q := &h.Questions[qi]
			// Questions being retried after a refusal or an expiry stay
			// pending; their verdicts arrive with a later chunk. (The
			// partial votes of an expired HIT were appended to their
			// slots above — join slots accumulate votes across the
			// lineage, so nothing needs the poster's carry here.)
			if retrying[q.ID] > 0 {
				retrying[q.ID]--
				continue
			}
			if q.Kind == hit.JoinGridQ {
				for _, lt := range q.LeftItems {
					for _, rt := range q.RightItems {
						touch(join.Pair{Left: lt, Right: rt}.Key())
					}
				}
				continue
			}
			touch(q.ID)
		}
	}
	if touchErr != nil {
		return touchErr
	}
	if !j.perQ {
		j.eosVotes = append(j.eosVotes, votes...)
	}
	j.acct.Collected(res.TotalAssignments, poster.ExpiredCount(res.Expired), done, exhausted)
	return nil
}

// decideSlot resolves one pair from its own votes (PerQuestion path).
// Combine errors fail the query, matching the materializing executor.
func (j *crowdJoinOp) decideSlot(s *jslot, key string) error {
	if len(s.votes) == 0 {
		return nil
	}
	decisions, err := j.comb.Combine(s.votes)
	if err != nil {
		return err
	}
	if d, ok := decisions[key]; ok && d.Value == "yes" {
		s.accepted = true
	}
	s.votes = nil
	return nil
}

// finalize resolves every pair with one combine over all votes
// (stateful-combiner path) and closes out undecided slots. Combine
// errors fail the query, matching the materializing executor.
func (j *crowdJoinOp) finalize() error {
	j.final = true
	if !j.perQ {
		decisions, err := j.comb.Combine(j.eosVotes)
		if err != nil {
			return err
		}
		doneAt := j.clock
		if j.acct.lastDone > doneAt {
			doneAt = j.acct.lastDone
		}
		for _, s := range j.slots {
			if d, ok := decisions[s.pair.Key()]; ok && d.Value == "yes" {
				s.accepted = true
			}
			s.decided = true
			if doneAt > s.ready {
				s.ready = doneAt
			}
		}
		j.observeRun()
		return nil
	}
	for _, s := range j.slots {
		if s.pending == 0 {
			s.decided = true
		}
	}
	j.observeRun()
	return nil
}

// observeRun feeds the join's measured statistics to the run's Stats
// and the engine's history store: the probe side's POSSIBLY pass
// fraction (streaming prefilter path), the match selectivity over
// decided candidates, and the operator's crowd latency.
func (j *crowdJoinOp) observeRun() {
	if j.scanPairs > 0 {
		j.x.observe(j.label, j.node.Task.Name, obstats.KindPassFraction,
			float64(j.passPairs)/float64(j.scanPairs), float64(j.scanPairs))
	}
	decided, accepted := 0, 0
	for _, s := range j.slots {
		if s.decided {
			decided++
			if s.accepted {
				accepted++
			}
		}
	}
	if decided > 0 {
		j.x.observe(j.label, j.node.Task.Name, obstats.KindSelectivity,
			float64(accepted)/float64(decided), float64(decided))
	}
	if span := j.acct.span(); span > 0 && j.acct.hits > 0 {
		j.x.observe(j.label, j.node.Task.Name, obstats.KindLatencyHours, span, float64(j.acct.hits))
	}
}
