// Cross-query answer-store glue. When the engine carries an answer
// store (core.Engine.Answers — typically internal/answerstore shared by
// every query in a qurkd process), each crowd operator consults it as a
// question is minted: a servable entry resolves the question from
// stored votes and the question is never posted, which is the
// service-layer dedup that makes repeated questions across queries and
// tenants free. Freshly collected questions feed the store after their
// votes fold.
//
// Determinism: each operator gates lookups behind a per-run asked-set
// keyed by question content, so a question's store-hit behavior depends
// only on the store state when its content is FIRST minted — never on
// which chunk happened to be collected in between (the same rule the
// per-run task cache follows in the filter operator). For a fixed store
// state a run is bit-identical at any batch/chunk size; concurrent
// queries mutating a shared store are inherently racy across queries,
// exactly like two runs racing the per-run cache, and the service
// treats that as acceptable: whichever query posts first pays, the
// other reuses.
//
// Durable runs journal every store hit as a replayed result
// (ckptAnswerReplay) so a resume verifies the same questions were
// served from the store; resuming against a store whose relevant
// entries changed fails loudly instead of silently mixing vote sets.
package exec

import (
	"qurk/internal/hit"
)

// ckptAnswerReplay journals one answer-store hit in a durable run.
const ckptAnswerReplay = "answer-replay"

// answersLookup consults the engine's shared answer store for a minted
// question. On a hit it bumps the run's reuse counter and, in durable
// runs, journals the replay; the caller resolves the question from the
// returned votes and must not post it.
func (x *executor) answersLookup(q *hit.Question, clock float64) ([]hit.CachedAnswer, bool, error) {
	if x.eng.Answers == nil {
		return nil, false, nil
	}
	as, ok := x.eng.Answers.Lookup(q)
	if !ok {
		return nil, false, nil
	}
	x.stats.addReused(1)
	if err := x.checkpoint(ckptAnswerReplay, q.ID, q.CacheKey(), clock); err != nil {
		return nil, false, err
	}
	return as, true, nil
}

// answersStore feeds one freshly collected question's votes to the
// shared store. Empty vote sets (refused HITs) are dropped — a stored
// empty entry would resolve every later identical question to nothing
// without ever reaching the crowd.
func (x *executor) answersStore(q *hit.Question, as []hit.CachedAnswer) {
	if x.eng.Answers != nil && len(as) > 0 {
		x.eng.Answers.Store(q, as)
	}
}
