// Breaker checkpoints for durable runs. When the engine carries a
// journal (core.Engine.Journal, set by qurk.RunQueryDurable/Resume),
// every pipeline breaker fingerprints its materialized state as it
// forms — sort groups, the join's build table, extraction carries —
// and hands the digest to the journal. On a fresh run the digest is
// appended; on a resumed run it is verified against the recorded one,
// so a resume whose replayed inputs diverged from the original run
// fails loudly instead of silently mixing two runs' state.
package exec

import (
	"hash/fnv"

	"qurk/internal/relation"
)

// Checkpoint kinds written by the executor's breakers.
const (
	ckptSortGroup  = "sort-group"
	ckptJoinBuild  = "join-build"
	ckptExtraction = "extraction-carry"
	// ckptReplan records a mid-run re-optimization decision (join
	// interface switch, sort method switch). Resumed runs recompute the
	// decision from the same replayed counts and verify the digest, so a
	// durable resume can never diverge from the original run's plan.
	ckptReplan = "re-plan"
)

// checkpoint forwards one breaker checkpoint to the engine's journal;
// a nil journal (non-durable run) makes it free.
func (x *executor) checkpoint(kind, label string, digest uint64, clock float64) error {
	if x.eng.Journal == nil {
		return nil
	}
	return x.eng.Journal.Checkpoint(kind, label, digest, clock)
}

// fnvFold mixes one 64-bit word into a running FNV-1a fingerprint.
func fnvFold(dig, v uint64) uint64 {
	const prime64 = 1099511628211
	if dig == 0 {
		dig = 14695981039346656037 // FNV offset basis
	}
	for i := 0; i < 8; i++ {
		dig ^= (v >> (8 * i)) & 0xff
		dig *= prime64
	}
	return dig
}

// fnvFoldString mixes a string into a running fingerprint.
func fnvFoldString(dig uint64, s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fnvFold(dig, h.Sum64())
}

// digestSortGroup fingerprints a settled crowd sort: the group's rows
// in input order plus the resolved permutation.
func digestSortGroup(order []int, sub *relation.Relation) uint64 {
	var dig uint64
	for i := 0; i < sub.Len(); i++ {
		dig = fnvFold(dig, sub.Row(i).Key())
	}
	for _, ri := range order {
		dig = fnvFold(dig, uint64(ri))
	}
	return dig
}

// digestRelation fingerprints a materialized relation in row order.
func digestRelation(rel *relation.Relation) uint64 {
	var dig uint64
	for i := 0; i < rel.Len(); i++ {
		dig = fnvFold(dig, rel.Row(i).Key())
	}
	return dig
}

// digest fingerprints the build table without re-reading spilled
// partitions: the spill table keeps a running digest as it appends.
func (b *buildTable) digest() uint64 {
	if b.sp != nil {
		return b.sp.Digest()
	}
	return digestRelation(b.rel)
}

// digestValues fingerprints an extraction stream's resolved feature
// values in subject order.
func digestValues(values []map[string]string, fields []string) uint64 {
	var dig uint64
	for _, m := range values {
		dig = fnvFold(dig, 0xfe)
		for _, f := range fields {
			dig = fnvFoldString(dig, m[f])
		}
	}
	return dig
}
