package exec

// Tests for crowd sorts through the chunked poster: sort rounds now
// inherit the refusal and expiry retry policies (previously they
// posted one blocking group and silently accepted partial votes) and
// stay bit-identical across chunk settings.

import (
	"fmt"
	"strings"
	"testing"

	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
)

func squaresEngine(n int, m func(crowd.Oracle) crowd.Marketplace, opts core.Options) *core.Engine {
	s := dataset.NewSquares(n)
	e := core.NewEngine(m(s.Oracle()), opts)
	e.Catalog.Register(s.Rel)
	e.Library.MustRegister(dataset.SquareSorterTask())
	return e
}

const sortQuery = `SELECT label FROM squares ORDER BY squareSorter(img)`

// TestSortExpiryRetries: expired comparison assignments re-post with
// lineage IDs; the sort still settles and the expiry shows in Stats.
func TestSortExpiryRetries(t *testing.T) {
	cfg := crowd.DefaultConfig(11)
	cfg.AbandonProb = 0.3
	e := squaresEngine(15, func(o crowd.Oracle) crowd.Marketplace { return crowd.NewSimMarket(cfg, o) },
		core.Options{SortMethod: core.SortCompare, CompareGroupSize: 5})
	out, stats, err := RunQuery(e, sortQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 15 {
		t.Fatalf("rows = %d, want 15", out.Len())
	}
	if stats.TotalExpired() == 0 {
		t.Error("AbandonProb = 0.3 produced no expired sort assignments")
	}
	if len(stats.Incomplete) != 0 {
		t.Errorf("partial votes plus retries should leave nothing incomplete: %v", stats.Incomplete)
	}
}

// TestSortRefusalRetries: refused rating HITs (batch too effortful)
// re-post at half batch — the sort answers instead of silently ranking
// on zero votes. Comparison HITs are single-question and cannot
// shrink; their exhaustion shows in Stats.Incomplete.
func TestSortRefusalRetries(t *testing.T) {
	cfg := crowd.DefaultConfig(13)
	cfg.RefusalEffort = 3 // batch-5 rating HITs exceed this; halves pass
	e := squaresEngine(12, func(o crowd.Oracle) crowd.Marketplace { return crowd.NewSimMarket(cfg, o) },
		core.Options{SortMethod: core.SortRate})
	out, stats, err := RunQuery(e, sortQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 12 {
		t.Fatalf("rows = %d, want 12", out.Len())
	}
	if len(stats.Incomplete) != 0 {
		t.Errorf("retried rating questions should not be incomplete: %v", stats.Incomplete)
	}
	// ceil(12/5) = 3 original HITs; refusal re-posts add more.
	if stats.TotalHITs() <= 3 {
		t.Errorf("TotalHITs = %d, want > 3 (refused originals plus retries)", stats.TotalHITs())
	}
}

// TestSortChunkInvariance: sort results and HIT counts are
// bit-identical across StreamChunkHITs/lookahead settings, including
// under expirations.
func TestSortChunkInvariance(t *testing.T) {
	run := func(chunk, lookahead int, abandon float64) string {
		cfg := crowd.DefaultConfig(11)
		cfg.AbandonProb = abandon
		e := squaresEngine(15, func(o crowd.Oracle) crowd.Marketplace { return crowd.NewSimMarket(cfg, o) }, core.Options{
			SortMethod: core.SortCompare, CompareGroupSize: 5,
			StreamChunkHITs: chunk, StreamLookahead: lookahead,
		})
		rows, stats := runRows(t, e, sortQuery)
		return fmt.Sprintf("%s|hits=%d|expired=%d", rows, stats.TotalHITs(), stats.TotalExpired())
	}
	for _, abandon := range []float64{0, 0.3} {
		base := run(8, 2, abandon)
		if !strings.Contains(base, "square-") {
			t.Fatalf("abandon=%v: no rows:\n%s", abandon, base)
		}
		for _, cfg := range [][2]int{{1, 2}, {3, 1}, {16, 4}} {
			if got := run(cfg[0], cfg[1], abandon); got != base {
				t.Errorf("abandon=%v chunk=%d lookahead=%d diverged:\n--- base\n%s--- got\n%s",
					abandon, cfg[0], cfg[1], base, got)
			}
		}
	}
}

// TestHybridSeedThroughPoster: the hybrid sort's rating seed posts
// through the poster (its Stats slot appears) and the full hybrid
// still orders the list.
func TestHybridSeedThroughPoster(t *testing.T) {
	e := squaresEngine(12, func(o crowd.Oracle) crowd.Marketplace { return crowd.NewSimMarket(crowd.DefaultConfig(7), o) },
		core.Options{SortMethod: core.SortHybrid, HybridIterations: 6})
	out, stats, err := RunQuery(e, sortQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 12 {
		t.Fatalf("rows = %d, want 12", out.Len())
	}
	seed, iter := false, false
	for _, op := range stats.Operators {
		if strings.Contains(op.Label, "[rate seed]") && op.HITs > 0 {
			seed = true
		}
		if strings.HasPrefix(op.Label, "CrowdOrderBy") && !strings.Contains(op.Label, "rate seed") && op.HITs > 0 {
			iter = true
		}
	}
	if !seed {
		t.Errorf("hybrid rate seed not accounted through the poster: %+v", stats.Operators)
	}
	if !iter {
		t.Errorf("hybrid iteration HITs not accounted: %+v", stats.Operators)
	}
}
