// This file defines the streaming (Volcano-model) operator interface
// and the machine-side operators. Every plan node compiles to an
// Operator; tuples flow downstream in bounded batches pulled with
// Next, so a downstream crowd operator can start posting HITs while
// its upstream is still collecting answers. Crowd operators live in
// stream.go (filters, generatives), join_op.go, and sort_op.go.
//
// Determinism contract: an operator's observable output — the tuple
// sequence and every HIT it posts (group ID, HIT ID, question content)
// — must depend only on the plan, the engine configuration, and its
// input sequence. Never on wall-clock timing, GOMAXPROCS, or the batch
// size tuples happen to arrive in. All flush decisions are count-based
// for this reason.
package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"qurk/internal/relation"
)

// Batch is a bounded run of rows flowing between operators, stamped
// with the simulated crowd clock (hours) at which its rows became
// available. Crowd operators advance Ready by their chunk makespans;
// machine operators pass it through. The root's maximum Ready is the
// query's pipelined end-to-end makespan.
//
// Rows are stored as schema-aligned column vectors (see
// relation.ColumnBatch); operators read them through the Value/Row
// accessors. Row and Rows are the row-view shim: arena-backed
// relation.Tuples that stay valid after the batch's vectors recycle,
// so combiners and the public row surface are unchanged by the
// columnar layout.
type Batch struct {
	Cols  *relation.ColumnBatch
	Ready float64
}

// newBatch wraps column vectors with a clock stamp.
func newBatch(cols *relation.ColumnBatch, ready float64) *Batch {
	return &Batch{Cols: cols, Ready: ready}
}

// batchOfTuples builds a columnar batch from assembled rows — the
// emission path for operators that buffer tuples.
func batchOfTuples(schema *relation.Schema, tuples []relation.Tuple, ready float64) *Batch {
	return &Batch{Cols: relation.ColumnBatchOf(schema, tuples), Ready: ready}
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int {
	if b == nil || b.Cols == nil {
		return 0
	}
	return b.Cols.Len()
}

// Schema returns the batch's row schema.
func (b *Batch) Schema() *relation.Schema {
	if b == nil || b.Cols == nil {
		return nil
	}
	return b.Cols.Schema()
}

// Row returns row i as an arena-backed tuple.
func (b *Batch) Row(i int) relation.Tuple { return b.Cols.Row(i) }

// Rows returns all rows as arena-backed tuples. The slice is shared;
// callers must not mutate it.
func (b *Batch) Rows() []relation.Tuple {
	if b == nil || b.Cols == nil {
		return nil
	}
	return b.Cols.Rows()
}

// Operator is one node of the streaming executor: a pull-based
// iterator over tuple batches (the Volcano model, batched).
type Operator interface {
	// Schema describes the emitted tuples; available before Next.
	Schema() *relation.Schema
	// Name is the emitted relation's name.
	Name() string
	// Next returns the next batch, or nil at end of stream. A non-nil
	// batch always carries at least one tuple. Next must not be called
	// again after it returns nil or an error.
	Next(ctx context.Context) (*Batch, error)
	// Close tells the operator no more batches will be pulled. It
	// propagates upstream so producers stop posting crowd work, and is
	// idempotent. Close does not recall HITs already in flight.
	Close()
}

// Breaker is implemented by operators that must consume their whole
// input before emitting anything (sort, QualityAdjust-combined crowd
// operators, join build sides). BreakerNote documents what is buffered
// and its memory bound.
type Breaker interface {
	BreakerNote() string
}

// BreakerKind classifies what a pipeline breaker buffers.
type BreakerKind string

// The breaker kinds the streaming executor produces.
const (
	// BreakerSortInput is a sort's materialized input.
	BreakerSortInput BreakerKind = "sort-input"
	// BreakerJoinBuild is a join's materialized build (right) side.
	BreakerJoinBuild BreakerKind = "join-build"
	// BreakerJoinCandidates is a join layout that needs the global
	// candidate set (SmartBatch grids, automatic feature selection).
	BreakerJoinCandidates BreakerKind = "join-candidates"
	// BreakerVoteBuffer is the full vote matrix a stateful (non
	// per-question) combiner needs in one Combine call.
	BreakerVoteBuffer BreakerKind = "vote-buffer"
	// BreakerExtraction is a feature-extraction pass over a
	// materialized input.
	BreakerExtraction BreakerKind = "extraction"
)

// BreakerInfo describes one pipeline-breaking buffer of an operator in
// machine-readable form, so tools (qurk.Explain, dashboards) can render
// "spills at N tuples" instead of parsing free text.
type BreakerInfo struct {
	// Kind classifies the buffered state.
	Kind BreakerKind
	// MemTuples is the in-memory tuple bound (Options.BreakerMemTuples
	// when the operator honors it); 0 means unbounded — O(input).
	MemTuples int
	// Spills reports whether the operator spills to disk past
	// MemTuples instead of growing without bound.
	Spills bool
	// Note is the human-readable description of what is buffered.
	Note string
}

// String renders the breaker with its memory bound appended.
func (bi BreakerInfo) String() string {
	switch {
	case bi.Spills && bi.MemTuples > 0:
		return fmt.Sprintf("%s (spills at %d tuples)", bi.Note, bi.MemTuples)
	case bi.Spills:
		return bi.Note + " (spillable)"
	default:
		return bi.Note + " (O(input) memory)"
	}
}

// BreakerDetail is the machine-readable companion to Breaker: the
// operator's pipeline-breaking buffers, one BreakerInfo each. An empty
// slice means the operator currently streams.
type BreakerDetail interface {
	Breakers() []BreakerInfo
}

// breakerNote renders a breaker list as the legacy free-text note.
func breakerNote(infos []BreakerInfo) string {
	var parts []string
	for _, bi := range infos {
		parts = append(parts, bi.String())
	}
	return strings.Join(parts, "; ")
}

// PipelineBreakers walks a compiled operator tree and returns every
// operator's breaker descriptions keyed by its display label, in
// depth-first plan order. The runtime companion to plan.Explain for
// memory budgeting.
func PipelineBreakers(op Operator) []OpBreakers {
	var out []OpBreakers
	var walk func(Operator)
	walk = func(o Operator) {
		if bd, ok := o.(BreakerDetail); ok {
			if infos := bd.Breakers(); len(infos) > 0 {
				out = append(out, OpBreakers{Label: opLabel(o), Breakers: infos})
			}
		}
		for _, in := range opInputs(o) {
			walk(in)
		}
	}
	walk(op)
	return out
}

// OpBreakers pairs an operator's display label with its breakers.
type OpBreakers struct {
	// Label is the operator's display label (OpLabel).
	Label string
	// Breakers lists the operator's pipeline-breaking buffers.
	Breakers []BreakerInfo
}

// finalClock reports the virtual-clock time at which an operator's
// last decision completed. Rejected tuples never flow downstream, but
// the crowd time spent deciding them is still part of the query's
// makespan — without this, a query whose tail tuples are all filtered
// out would under-report PipelineMakespanHours.
type finalClock interface {
	finalReady() float64
}

// readyOf returns an operator's final clock, or 0 when it has none
// (machine-instant sources).
func readyOf(op Operator) float64 {
	if fc, ok := op.(finalClock); ok {
		return fc.finalReady()
	}
	return 0
}

// --- Source: scan ---

type scanOp struct {
	rel  *relation.Relation
	pos  int
	size int
	done bool
}

func newScanOp(rel *relation.Relation, batch int) *scanOp {
	return &scanOp{rel: rel, size: batch}
}

func (s *scanOp) Schema() *relation.Schema { return s.rel.Schema() }
func (s *scanOp) Name() string             { return s.rel.Name() }
func (s *scanOp) Close()                   { s.done = true }

func (s *scanOp) Next(ctx context.Context) (*Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.done || s.pos >= s.rel.Len() {
		return nil, nil
	}
	end := s.pos + s.size
	if end > s.rel.Len() {
		end = s.rel.Len()
	}
	cols := relation.NewColumnBatch(s.rel.Schema(), end-s.pos)
	for ; s.pos < end; s.pos++ {
		cols.AppendTuple(s.rel.Row(s.pos))
	}
	return newBatch(cols, 0), nil
}

// --- Machine filter ---

type machineFilterOp struct {
	child Operator
	pred  func(relation.Tuple) (bool, error)
	label string
	seen  float64
}

func (f *machineFilterOp) Schema() *relation.Schema { return f.child.Schema() }
func (f *machineFilterOp) Name() string             { return f.child.Name() }
func (f *machineFilterOp) Close()                   { f.child.Close() }

func (f *machineFilterOp) finalReady() float64 {
	if cr := readyOf(f.child); cr > f.seen {
		return cr
	}
	return f.seen
}

func (f *machineFilterOp) Next(ctx context.Context) (*Batch, error) {
	for {
		in, err := f.child.Next(ctx)
		if err != nil || in == nil {
			return nil, err
		}
		if in.Ready > f.seen {
			f.seen = in.Ready
		}
		var out *relation.ColumnBatch
		n := in.Len()
		for i := 0; i < n; i++ {
			ok, err := f.pred(in.Row(i))
			if err != nil {
				return nil, err
			}
			if ok {
				if out == nil {
					out = relation.NewColumnBatch(in.Schema(), n-i)
				}
				out.AppendBatchRow(in.Cols, i)
			}
		}
		if out != nil {
			return newBatch(out, in.Ready), nil
		}
		// A fully-rejected batch yields nothing; keep pulling.
	}
}

// --- Project ---

type projectOp struct {
	child  Operator
	schema *relation.Schema
	ords   []int
	name   string
}

func (p *projectOp) Schema() *relation.Schema { return p.schema }
func (p *projectOp) Name() string             { return p.name }
func (p *projectOp) Close()                   { p.child.Close() }
func (p *projectOp) finalReady() float64      { return readyOf(p.child) }

func (p *projectOp) Next(ctx context.Context) (*Batch, error) {
	in, err := p.child.Next(ctx)
	if err != nil || in == nil {
		return nil, err
	}
	// Zero-copy: projection selects column vectors, no per-row work.
	return newBatch(in.Cols.Project(p.schema, p.ords), in.Ready), nil
}

// --- Limit ---

// limitOp emits the first n tuples, then closes its upstream so crowd
// operators stop posting HITs — the streaming executor's LIMIT
// short-circuit. Because upstream chunk lookahead is bounded
// (Options.StreamLookahead), at most a few chunks beyond the cutoff
// are ever paid for.
type limitOp struct {
	child   Operator
	n       int
	emitted int
	closed  bool
	seen    float64
}

func (l *limitOp) Schema() *relation.Schema { return l.child.Schema() }
func (l *limitOp) Name() string             { return l.child.Name() }

// finalReady reports only what the limit actually waited for: once it
// cut upstream off, later decisions are not on the query's critical
// path.
func (l *limitOp) finalReady() float64 { return l.seen }

func (l *limitOp) Close() {
	if !l.closed {
		l.closed = true
		l.child.Close()
	}
}

func (l *limitOp) Next(ctx context.Context) (*Batch, error) {
	if l.closed || (l.n >= 0 && l.emitted >= l.n) {
		l.Close()
		return nil, nil
	}
	in, err := l.child.Next(ctx)
	if err != nil {
		return nil, err
	}
	if in == nil {
		if cr := readyOf(l.child); cr > l.seen {
			l.seen = cr
		}
		return nil, nil
	}
	if in.Ready > l.seen {
		l.seen = in.Ready
	}
	if l.n >= 0 && l.emitted+in.Len() >= l.n {
		keep := l.n - l.emitted
		l.emitted = l.n
		// Cut upstream off immediately: no further pulls, no further
		// HIT chunks posted.
		l.Close()
		if keep == 0 {
			return nil, nil
		}
		in.Cols = in.Cols.Slice(0, keep)
		return in, nil
	}
	l.emitted += in.Len()
	return in, nil
}

// --- Concurrent (exchange) ---

// concurrentOp decouples a subtree onto its own goroutine with a
// bounded batch buffer, so independent subtrees (join build and probe
// sides) make crowd progress simultaneously — the streaming equivalent
// of the materializing executor's goroutine-per-operator overlap.
// Purely a scheduling change: batch content and order are untouched.
type concurrentOp struct {
	child      Operator
	ch         chan asyncBatch
	cancel     context.CancelFunc
	once       sync.Once
	started    bool
	stopped    chan struct{} // closed when the producer goroutine exits
	done       bool
	closed     bool
	seen       float64
	childFinal float64
}

type asyncBatch struct {
	b   *Batch
	err error
}

func newConcurrentOp(child Operator, depth int) *concurrentOp {
	if depth < 1 {
		depth = 1
	}
	return &concurrentOp{child: child, ch: make(chan asyncBatch, depth), stopped: make(chan struct{})}
}

func (c *concurrentOp) Schema() *relation.Schema { return c.child.Schema() }
func (c *concurrentOp) Name() string             { return c.child.Name() }

func (c *concurrentOp) finalReady() float64 {
	if c.childFinal > c.seen {
		return c.childFinal
	}
	return c.seen
}

func (c *concurrentOp) start(ctx context.Context) {
	c.once.Do(func() {
		c.started = true
		ctx, c.cancel = context.WithCancel(ctx)
		go func() {
			defer close(c.stopped)
			defer close(c.ch)
			for {
				b, err := c.child.Next(ctx)
				if err != nil || b == nil {
					if err != nil {
						select {
						case c.ch <- asyncBatch{nil, err}:
						case <-ctx.Done():
						}
					}
					return
				}
				select {
				case c.ch <- asyncBatch{b, nil}:
				case <-ctx.Done():
					return
				}
			}
		}()
	})
}

func (c *concurrentOp) Next(ctx context.Context) (*Batch, error) {
	if c.done || c.closed {
		return nil, nil
	}
	c.start(ctx)
	select {
	case ab, ok := <-c.ch:
		if !ok {
			// Producer exited; reading the child is race-free now.
			c.done = true
			c.childFinal = readyOf(c.child)
			return nil, nil
		}
		if ab.b != nil && ab.b.Ready > c.seen {
			c.seen = ab.b.Ready
		}
		return ab.b, ab.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *concurrentOp) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.cancel != nil {
		c.cancel()
	}
	// The producer goroutine may be mid-Next on the child; wait for it
	// to observe cancellation before closing the child underneath it.
	if c.started {
		<-c.stopped
	}
	c.child.Close()
}

// --- Helpers ---

// drain pulls op to exhaustion, returning all tuples and the time the
// last batch became available. Used by pipeline breakers; memory is
// O(input).
func drain(ctx context.Context, op Operator) ([]relation.Tuple, float64, error) {
	var tuples []relation.Tuple
	ready := 0.0
	for {
		b, err := op.Next(ctx)
		if err != nil {
			return nil, 0, err
		}
		if b == nil {
			if cr := readyOf(op); cr > ready {
				ready = cr
			}
			return tuples, ready, nil
		}
		tuples = append(tuples, b.Rows()...)
		if b.Ready > ready {
			ready = b.Ready
		}
	}
}

// drainRelation materializes op into a relation.
func drainRelation(ctx context.Context, op Operator) (*relation.Relation, float64, error) {
	tuples, ready, err := drain(ctx, op)
	if err != nil {
		return nil, 0, err
	}
	rel := relation.New(op.Name(), op.Schema())
	for _, t := range tuples {
		if err := rel.Append(t); err != nil {
			return nil, 0, err
		}
	}
	return rel, ready, nil
}

// emitQueue turns an operator's internally accumulated tuples into
// bounded output batches.
type emitQueue struct {
	buf   []relation.Tuple
	ready float64
	size  int
}

func (q *emitQueue) push(t relation.Tuple, ready float64) {
	q.buf = append(q.buf, t)
	if ready > q.ready {
		q.ready = ready
	}
}

// advance stamps the queue clock without emitting a tuple (a rejected
// tuple still gates downstream ordering on its decision time).
func (q *emitQueue) advance(ready float64) {
	if ready > q.ready {
		q.ready = ready
	}
}

func (q *emitQueue) empty() bool { return len(q.buf) == 0 }

func (q *emitQueue) pop(schema *relation.Schema) *Batch {
	if len(q.buf) == 0 {
		return nil
	}
	n := q.size
	if n <= 0 || n > len(q.buf) {
		n = len(q.buf)
	}
	out := batchOfTuples(schema, q.buf[:n], q.ready)
	q.buf = q.buf[:copy(q.buf, q.buf[n:])]
	return out
}

// Describe renders the streaming operator tree with pipeline breakers
// marked ⇥ — the runtime companion to plan.Explain.
func Describe(op Operator) string {
	var b strings.Builder
	describe(&b, op, 0)
	return b.String()
}

type treeNode interface {
	Inputs() []Operator
	OpLabel() string
}

// opLabel is the display label shared by Describe and PipelineBreakers.
func opLabel(op Operator) string {
	if tn, ok := op.(treeNode); ok {
		return tn.OpLabel()
	}
	switch o := op.(type) {
	case *scanOp:
		return fmt.Sprintf("Scan(%s)", o.Name())
	case *machineFilterOp:
		return o.label
	case *projectOp:
		return "Project"
	case *limitOp:
		return fmt.Sprintf("Limit(%d)", o.n)
	case *concurrentOp:
		return "Exchange"
	}
	return op.Name()
}

// opInputs is the child list shared by Describe and PipelineBreakers.
func opInputs(op Operator) []Operator {
	if tn, ok := op.(treeNode); ok {
		return tn.Inputs()
	}
	switch o := op.(type) {
	case *machineFilterOp:
		return []Operator{o.child}
	case *projectOp:
		return []Operator{o.child}
	case *limitOp:
		return []Operator{o.child}
	case *concurrentOp:
		return []Operator{o.child}
	}
	return nil
}

func describe(b *strings.Builder, op Operator, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString("- " + opLabel(op))
	if br, ok := op.(Breaker); ok && br.BreakerNote() != "" {
		b.WriteString("  ⇥ " + br.BreakerNote())
	}
	b.WriteByte('\n')
	for _, in := range opInputs(op) {
		describe(b, in, depth+1)
	}
}
