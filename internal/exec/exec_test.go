package exec

import (
	"strings"
	"testing"

	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
	"qurk/internal/query"
	"qurk/internal/relation"
)

func celebEngine(t *testing.T, n int, seed int64, opts core.Options) (*dataset.Celebrities, *core.Engine) {
	t.Helper()
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: n, Seed: seed})
	m := crowd.NewSimMarket(crowd.DefaultConfig(seed), d.Oracle())
	e := core.NewEngine(m, opts)
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(dataset.IsFemaleTask())
	e.Library.MustRegister(dataset.SamePersonTask())
	e.Library.MustRegister(dataset.GenderTask())
	e.Library.MustRegister(dataset.HairColorTask())
	e.Library.MustRegister(dataset.SkinColorTask())
	return d, e
}

func TestExecFilterQuery(t *testing.T) {
	d, e := celebEngine(t, 30, 1, core.Options{})
	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	// Output schema: just "name".
	if out.Schema().Len() != 1 || out.Schema().Column(0).Name != "name" {
		t.Errorf("schema = %s", out.Schema())
	}
	// Compare against ground truth.
	want := map[string]bool{}
	for i := 0; i < d.Celeb.Len(); i++ {
		truth, _ := d.Oracle().FilterTruth("isFemale", d.Celeb.Row(i))
		if truth {
			want[d.Celeb.Row(i).MustGet("name").Text()] = true
		}
	}
	got := 0
	for i := 0; i < out.Len(); i++ {
		if want[out.Row(i).MustGet("name").Text()] {
			got++
		}
	}
	if got < len(want)-2 || out.Len() > len(want)+2 {
		t.Errorf("filter result: %d rows, %d true females matched of %d", out.Len(), got, len(want))
	}
	if stats.TotalHITs() != 6 { // ceil(30/5)
		t.Errorf("HITs = %d, want 6", stats.TotalHITs())
	}
	if e.Ledger.TotalHITs() != 6 {
		t.Errorf("ledger HITs = %d", e.Ledger.TotalHITs())
	}
}

func TestExecJoinQueryWithFeatures(t *testing.T) {
	_, e := celebEngine(t, 20, 3, core.Options{JoinAlgorithm: join.Naive, JoinBatch: 5, ExtractCombined: true})
	out, stats, err := RunQuery(e, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)`)
	if err != nil {
		t.Fatal(err)
	}
	// Expect ≈20 matches (one per celebrity).
	if out.Len() < 17 || out.Len() > 24 {
		t.Errorf("join result = %d rows, want ≈20", out.Len())
	}
	// Feature filtering must have cut the join HITs below the
	// unfiltered 400/5 = 80.
	joinHITs := 0
	extractHITs := 0
	for _, op := range stats.Operators {
		if strings.HasPrefix(op.Label, "CrowdJoin") {
			joinHITs += op.HITs
		}
		if strings.HasPrefix(op.Label, "extract") {
			extractHITs += op.HITs
		}
	}
	if extractHITs == 0 {
		t.Error("no extraction HITs recorded")
	}
	if joinHITs >= 80 {
		t.Errorf("join HITs = %d, want < 80 (feature pruning)", joinHITs)
	}
}

func TestExecMachineFilterAndProject(t *testing.T) {
	_, e := celebEngine(t, 10, 5, core.Options{})
	out, stats, err := RunQuery(e, `SELECT p.id, p.img FROM photos p WHERE p.id >= 5`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Errorf("machine filter rows = %d, want 5", out.Len())
	}
	if stats.TotalHITs() != 0 {
		t.Errorf("machine-only query posted %d HITs", stats.TotalHITs())
	}
	if out.Schema().Column(0).Name != "id" || out.Schema().Column(1).Name != "img" {
		t.Errorf("schema = %s", out.Schema())
	}
}

func TestExecProjectAlias(t *testing.T) {
	_, e := celebEngine(t, 5, 7, core.Options{})
	out, _, err := RunQuery(e, `SELECT c.name AS who FROM celeb c`)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schema().Has("who") {
		t.Errorf("alias missing: %s", out.Schema())
	}
}

func TestExecLimitAndMachineOrder(t *testing.T) {
	_, e := celebEngine(t, 10, 9, core.Options{})
	out, _, err := RunQuery(e, `SELECT p.id FROM photos p ORDER BY p.id DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("limit rows = %d", out.Len())
	}
	if out.Row(0).MustGet("id").Int() != 9 || out.Row(2).MustGet("id").Int() != 7 {
		t.Errorf("desc order wrong: %v %v", out.Row(0), out.Row(2))
	}
}

func TestExecSortQuery(t *testing.T) {
	s := dataset.NewSquares(15)
	m := crowd.NewSimMarket(crowd.DefaultConfig(11), s.Oracle())
	e := core.NewEngine(m, core.Options{SortMethod: core.SortCompare, CompareGroupSize: 5})
	e.Catalog.Register(s.Rel)
	e.Library.MustRegister(dataset.SquareSorterTask())
	out, stats, err := RunQuery(e, `SELECT label FROM squares ORDER BY squareSorter(img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 15 {
		t.Fatalf("rows = %d", out.Len())
	}
	// Ascending area: row 0 = smallest square.
	if got := out.Row(0).MustGet("label").Text(); got != "square-20px" {
		t.Errorf("first = %q, want square-20px", got)
	}
	if got := out.Row(14).MustGet("label").Text(); got != "square-62px" {
		t.Errorf("last = %q, want square-62px", got)
	}
	if stats.TotalHITs() == 0 {
		t.Error("sort posted no HITs")
	}
}

func TestExecSortDescAndRate(t *testing.T) {
	s := dataset.NewSquares(12)
	m := crowd.NewSimMarket(crowd.DefaultConfig(13), s.Oracle())
	e := core.NewEngine(m, core.Options{SortMethod: core.SortRate})
	e.Catalog.Register(s.Rel)
	e.Library.MustRegister(dataset.SquareSorterTask())
	out, _, err := RunQuery(e, `SELECT label FROM squares ORDER BY squareSorter(img) DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	// Largest square should (almost surely) rate top.
	if got := out.Row(0).MustGet("label").Text(); got != "square-53px" {
		t.Logf("note: rate-based DESC top = %q (rating noise can shuffle neighbors)", got)
	}
}

func TestExecEndToEndMovieQuery(t *testing.T) {
	mv := dataset.NewMovie(dataset.MovieConfig{Scenes: 40, Actors: 3, Seed: 17})
	m := crowd.NewSimMarket(crowd.DefaultConfig(17), mv.Oracle())
	e := core.NewEngine(m, core.Options{
		JoinAlgorithm: join.Smart, GridRows: 5, GridCols: 5,
		SortMethod: core.SortRate,
	})
	e.Catalog.Register(mv.Actors)
	e.Catalog.Register(mv.Scenes)
	e.Library.MustRegister(dataset.InSceneTask())
	e.Library.MustRegister(dataset.NumInSceneTask())
	e.Library.MustRegister(dataset.QualityTask())

	out, stats, err := RunQuery(e, `
SELECT name, scenes.img
FROM actors JOIN scenes
ON inScene(actors.img, scenes.img)
AND POSSIBLY numInScene(scenes.img) = 1
ORDER BY name, quality(scenes.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no results")
	}
	// Results grouped by actor name ascending.
	for i := 1; i < out.Len(); i++ {
		if out.Row(i-1).MustGet("name").Text() > out.Row(i).MustGet("name").Text() {
			t.Fatalf("rows not grouped by name at %d", i)
		}
	}
	// The numInScene extraction must appear in the stats.
	sawPossibly := false
	for _, op := range stats.Operators {
		if strings.HasPrefix(op.Label, "UnaryPossibly") {
			sawPossibly = true
		}
	}
	if !sawPossibly {
		t.Error("numInScene extraction not recorded")
	}
	// Matches should be mostly one-person scenes of the right actor.
	correct := 0
	for i := 0; i < out.Len(); i++ {
		name := out.Row(i).MustGet("name").Text()
		img := out.Row(i).MustGet("img").Text()
		for a := 0; a < mv.Actors.Len(); a++ {
			if mv.Actors.Row(a).MustGet("name").Text() != name {
				continue
			}
			for s := 0; s < mv.Scenes.Len(); s++ {
				if mv.Scenes.Row(s).MustGet("img").Text() == img && mv.InScene(mv.Actors.Row(a), mv.Scenes.Row(s)) {
					correct++
				}
			}
		}
	}
	if float64(correct)/float64(out.Len()) < 0.8 {
		t.Errorf("only %d/%d result rows are true inScene matches", correct, out.Len())
	}
}

func TestExecOrFilter(t *testing.T) {
	d, e := celebEngine(t, 12, 19, core.Options{})
	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img) OR NOT isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	// Tautology: everything should pass except tuples where the two
	// *independent* vote rounds disagree (round 1 majority "no" AND
	// round 2 majority "yes"), which happens on genuinely ambiguous
	// photos.
	if out.Len() < d.Celeb.Len()-3 {
		t.Errorf("OR tautology kept %d/%d", out.Len(), d.Celeb.Len())
	}
	// Two parallel branches → two operator entries.
	branches := 0
	for _, op := range stats.Operators {
		if strings.Contains(op.Label, "CrowdFilterOr") {
			branches++
		}
	}
	if branches != 2 {
		t.Errorf("OR branches recorded = %d, want 2", branches)
	}
}

func TestExecErrors(t *testing.T) {
	_, e := celebEngine(t, 5, 21, core.Options{})
	if _, _, err := RunQuery(e, `SELECT x FROM missing`); err == nil {
		t.Error("missing table accepted")
	}
	if _, _, err := RunQuery(e, `SELECT nope FROM celeb c`); err == nil {
		t.Error("missing column accepted")
	}
	if _, _, err := RunQuery(e, `garbage`); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, _, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE notATask(c.img)`); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestEvalExpr(t *testing.T) {
	s := relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindText},
	)
	tup := relation.MustTuple(s, relation.Int(5), relation.Text("xyz"))
	for src, want := range map[string]bool{
		`a = 5`:               true,
		`a <> 5`:              false,
		`a > 4`:               true,
		`a >= 6`:              false,
		`a < 10`:              true,
		`b = "xyz"`:           true,
		`b = "zzz"`:           false,
		`a = 5 AND b = "xyz"`: true,
		`a = 9 OR b = "xyz"`:  true,
		`NOT a = 9`:           true,
	} {
		stmt, err := query.ParseQuery("SELECT a FROM t WHERE " + src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		v, err := evalExpr(tup, stmt.Where)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if v.Bool() != want {
			t.Errorf("%s = %v, want %v", src, v.Bool(), want)
		}
	}
}

func TestComparePossibly(t *testing.T) {
	cases := []struct {
		v, op, lit string
		want       bool
	}{
		{"1", "=", "1", true},
		{"2", "=", "1", false},
		{"3+", ">", "1", true},
		{"0", ">", "1", false},
		{"2", "<=", "2", true},
		{"UNKNOWN", "=", "1", true}, // UNKNOWN never prunes (§2.4)
		{"", "=", "1", true},
		{"cat", "=", "cat", true},
		{"cat", "<>", "dog", true},
	}
	for _, c := range cases {
		got, err := comparePossibly(c.v, c.op, c.lit)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if got != c.want {
			t.Errorf("comparePossibly(%q %s %q) = %v, want %v", c.v, c.op, c.lit, got, c.want)
		}
	}
	if _, err := comparePossibly("cat", "<", "dog"); err == nil {
		t.Error("text inequality accepted")
	}
}
