// Package exec runs logical plans over a core.Engine. Mirroring the
// paper's architecture (Fig. 1), every operator executes in its own
// goroutine and passes results downstream through channels; crowd
// operators post HIT groups to the marketplace and block on completion
// (they are natural barriers: batching needs the full input). HIT
// spending is accounted to the engine's ledger per operator.
package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"qurk/internal/core"
	"qurk/internal/join"
	"qurk/internal/plan"
	"qurk/internal/query"
	"qurk/internal/relation"
	"qurk/internal/sortop"
)

// OpStat records one operator's crowd spending.
type OpStat struct {
	Label       string
	HITs        int
	Assignments int
	Makespan    float64
}

// Stats aggregates a query run.
type Stats struct {
	mu         sync.Mutex
	Operators  []OpStat
	Incomplete []string
}

func (s *Stats) add(st OpStat, incomplete ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Operators = append(s.Operators, st)
	s.Incomplete = append(s.Incomplete, incomplete...)
}

// TotalHITs sums HITs across operators — the paper's cost metric.
func (s *Stats) TotalHITs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, o := range s.Operators {
		n += o.HITs
	}
	return n
}

// Run parses nothing: it plans and executes an already-parsed statement.
func Run(e *core.Engine, stmt *query.SelectStmt) (*relation.Relation, *Stats, error) {
	node, err := plan.Build(stmt, e.Library)
	if err != nil {
		return nil, nil, err
	}
	return RunPlan(e, node)
}

// RunQuery parses, plans, and executes one query string.
func RunQuery(e *core.Engine, src string) (*relation.Relation, *Stats, error) {
	stmt, err := query.ParseQuery(src)
	if err != nil {
		return nil, nil, err
	}
	return Run(e, stmt)
}

// result travels between operator goroutines.
type result struct {
	rel *relation.Relation
	err error
}

// executor carries per-run state.
type executor struct {
	eng   *core.Engine
	stats *Stats
}

// groupID derives a HIT-group ID from the operator label and the plan
// path of the operator that posts it. Plan paths are assigned
// deterministically while walking the tree, never from a shared
// counter, so concurrently executing operators mint identical IDs on
// every run — a prerequisite for the simulator's per-HIT seeding to be
// reproducible when phases overlap.
func (x *executor) groupID(label, path string) string {
	return fmt.Sprintf("%s@%s", label, path)
}

// RunPlan executes a plan tree.
//
// Against a simulated marketplace, crowd randomness derives from the
// market seed plus content-stable HIT-group IDs, so re-running the same
// plan on the same market reproduces the same answers (useful for
// debugging). To sample independent crowd draws — e.g. to estimate
// result variance — run each trial against a market with a different
// seed.
//
// One caveat for hand-built plans: the engine's task cache is keyed by
// question content, so if two concurrently executing operators pose the
// *identical* question (same task, same tuples), which one hits the
// other's cached answers depends on scheduling. Planner-built plans
// never duplicate a question across concurrent operators (duplicate OR
// disjuncts are deduplicated here); for strict determinism in API-built
// plans that do, set Engine.Cache to nil.
func RunPlan(e *core.Engine, node plan.Node) (*relation.Relation, *Stats, error) {
	x := &executor{eng: e, stats: &Stats{}}
	out := x.start(node, "q")
	r := <-out
	if r.err != nil {
		return nil, x.stats, r.err
	}
	return r.rel, x.stats, nil
}

// start launches the operator goroutine for node at the given plan path
// and returns its output channel.
func (x *executor) start(node plan.Node, path string) <-chan result {
	out := make(chan result, 1)
	go func() {
		rel, err := x.exec(node, path)
		out <- result{rel, err}
	}()
	return out
}

func (x *executor) exec(node plan.Node, path string) (*relation.Relation, error) {
	switch n := node.(type) {
	case *plan.Scan:
		return x.execScan(n)
	case *plan.MachineFilter:
		return x.execMachineFilter(n, path)
	case *plan.CrowdFilter:
		return x.execCrowdFilter(n, path)
	case *plan.CrowdFilterOr:
		return x.execCrowdFilterOr(n, path)
	case *plan.UnaryPossibly:
		return x.execUnaryPossibly(n, path)
	case *plan.CrowdJoin:
		return x.execCrowdJoin(n, path)
	case *plan.Generate:
		return x.execGenerate(n, path)
	case *plan.CrowdOrderBy:
		return x.execCrowdOrderBy(n, path)
	case *plan.MachineOrderBy:
		return x.execMachineOrderBy(n, path)
	case *plan.Project:
		return x.execProject(n, path)
	case *plan.Limit:
		return x.execLimit(n, path)
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", node)
	}
}

// input runs the child subtree (its own goroutine chain) one path
// segment below the caller.
func (x *executor) input(child plan.Node, path string) (*relation.Relation, error) {
	r := <-x.start(child, path+".i")
	return r.rel, r.err
}

func (x *executor) execScan(n *plan.Scan) (*relation.Relation, error) {
	rel, err := x.eng.Catalog.Table(n.Table)
	if err != nil {
		return nil, err
	}
	return rel.Qualify(n.Binding()), nil
}

func (x *executor) execMachineFilter(n *plan.MachineFilter, path string) (*relation.Relation, error) {
	in, err := x.input(n.Input, path)
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Name(), in.Schema())
	for i := 0; i < in.Len(); i++ {
		v, err := evalExpr(in.Row(i), n.Expr)
		if err != nil {
			return nil, err
		}
		if v.Bool() {
			if err := out.Append(in.Row(i)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func (x *executor) execCrowdFilter(n *plan.CrowdFilter, path string) (*relation.Relation, error) {
	in, err := x.input(n.Input, path)
	if err != nil {
		return nil, err
	}
	comb, err := x.eng.Combiner()
	if err != nil {
		return nil, err
	}
	opts := core.FilterOptions{
		BatchSize:   x.eng.Options.FilterBatch,
		Assignments: x.eng.Options.Assignments,
		Combiner:    comb,
		GroupID:     x.groupID("filter/"+n.Task.Name, path),
		Negate:      n.Negate,
		Cache:       x.eng.Cache,
	}
	res, err := core.RunFilter(in, n.Task, opts, x.eng.Market)
	if err != nil {
		return nil, err
	}
	x.account(n.Label(), res.HITCount, res.AssignmentCount, res.MakespanHours)
	return res.Passed, nil
}

func (x *executor) execCrowdFilterOr(n *plan.CrowdFilterOr, path string) (*relation.Relation, error) {
	in, err := x.input(n.Input, path)
	if err != nil {
		return nil, err
	}
	// Disjuncts post in parallel (paper §2.5); a tuple passes if any
	// branch accepts it. Group IDs are fixed before launch so the
	// branches' HIT seeds do not depend on goroutine scheduling, and
	// each branch gets its own combiner instance — QualityAdjust is
	// stateful and must not be shared across concurrent Combine calls.
	// Duplicate disjuncts (same task, same negation) run once and
	// share the result: concurrent identical branches would otherwise
	// race on the task cache, making reruns timing-dependent.
	type branchOut struct {
		res *core.FilterResult
		err error
	}
	firstOf := map[string]int{}
	dupOf := make([]int, len(n.Branches))
	outs := make([]chan branchOut, len(n.Branches))
	for i := range n.Branches {
		sig := fmt.Sprintf("%s|%v", n.Branches[i].Name, n.Negates[i])
		if first, dup := firstOf[sig]; dup {
			dupOf[i] = first
			continue
		}
		firstOf[sig] = i
		dupOf[i] = i
		comb, err := x.eng.Combiner()
		if err != nil {
			return nil, err
		}
		opts := core.FilterOptions{
			BatchSize:   x.eng.Options.FilterBatch,
			Assignments: x.eng.Options.Assignments,
			Combiner:    comb,
			GroupID:     x.groupID("filter-or/"+n.Branches[i].Name, fmt.Sprintf("%s.b%d", path, i)),
			Negate:      n.Negates[i],
			Cache:       x.eng.Cache,
		}
		outs[i] = make(chan branchOut, 1)
		go func(i int, opts core.FilterOptions) {
			res, err := core.RunFilter(in, n.Branches[i], opts, x.eng.Market)
			outs[i] <- branchOut{res, err}
		}(i, opts)
	}
	accepted := make([]bool, in.Len())
	results := make([]*core.FilterResult, len(n.Branches))
	for i := range outs {
		if dupOf[i] != i {
			continue
		}
		b := <-outs[i]
		if b.err != nil {
			return nil, b.err
		}
		results[i] = b.res
	}
	for i := range n.Branches {
		b := results[dupOf[i]]
		if dupOf[i] != i {
			x.stats.add(OpStat{Label: fmt.Sprintf("%s[%d] = [%d] (duplicate disjunct)", n.Label(), i, dupOf[i])})
			continue
		}
		x.account(fmt.Sprintf("%s[%d]", n.Label(), i), b.HITCount, b.AssignmentCount, b.MakespanHours)
		for j, d := range b.Decisions {
			if d {
				accepted[j] = true
			}
		}
	}
	out := relation.New(in.Name(), in.Schema())
	for i := 0; i < in.Len(); i++ {
		if accepted[i] {
			if err := out.Append(in.Row(i)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func (x *executor) execUnaryPossibly(n *plan.UnaryPossibly, path string) (*relation.Relation, error) {
	in, err := x.input(n.Input, path)
	if err != nil {
		return nil, err
	}
	res, err := core.RunGenerative(in, n.Task, core.GenerativeOptions{
		BatchSize:   x.eng.Options.ExtractBatch,
		Assignments: x.eng.Options.Assignments,
		GroupID:     x.groupID("possibly/"+n.Task.Name, path),
		Fields:      []string{n.Field},
	}, x.eng.Market)
	if err != nil {
		return nil, err
	}
	x.account(n.Label(), res.HITCount, res.AssignmentCount, res.MakespanHours)
	out := relation.New(in.Name(), in.Schema())
	for i := 0; i < in.Len(); i++ {
		v := res.Values[i][n.Field]
		pass, err := comparePossibly(v, n.Op, n.Value)
		if err != nil {
			return nil, err
		}
		if pass {
			if err := out.Append(in.Row(i)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// comparePossibly evaluates extractedValue op literal with the paper's
// UNKNOWN wildcard semantics (§2.4): UNKNOWN never prunes. Values parse
// numerically when possible ("3+" → 3); otherwise "="/"<>" compare text.
func comparePossibly(v, op, lit string) (bool, error) {
	if strings.EqualFold(v, "UNKNOWN") || v == "" {
		return true, nil
	}
	ln, lerr := parseLooseInt(lit)
	vn, verr := parseLooseInt(v)
	if lerr == nil && verr == nil {
		switch op {
		case "=":
			return vn == ln, nil
		case "<>", "!=":
			return vn != ln, nil
		case "<":
			return vn < ln, nil
		case "<=":
			return vn <= ln, nil
		case ">":
			return vn > ln, nil
		case ">=":
			return vn >= ln, nil
		}
	}
	switch op {
	case "=":
		return strings.EqualFold(v, lit), nil
	case "<>", "!=":
		return !strings.EqualFold(v, lit), nil
	default:
		return false, fmt.Errorf("exec: cannot compare %q %s %q", v, op, lit)
	}
}

func parseLooseInt(s string) (int, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "+")
	return strconv.Atoi(s)
}

func (x *executor) execCrowdJoin(n *plan.CrowdJoin, path string) (*relation.Relation, error) {
	// Left and right subtrees execute concurrently (paper §2.5's
	// pipelined, left-deep execution).
	leftCh := x.start(n.Left, path+".l")
	rightCh := x.start(n.Right, path+".r")
	lr := <-leftCh
	if lr.err != nil {
		return nil, lr.err
	}
	rr := <-rightCh
	if rr.err != nil {
		return nil, rr.err
	}
	left, right := lr.rel, rr.rel

	comb, err := x.eng.Combiner()
	if err != nil {
		return nil, err
	}
	jopts := join.Options{
		Algorithm:   x.eng.Options.JoinAlgorithm,
		BatchSize:   x.eng.Options.JoinBatch,
		GridRows:    x.eng.Options.GridRows,
		GridCols:    x.eng.Options.GridCols,
		Assignments: x.eng.Options.Assignments,
		Combiner:    comb,
		GroupID:     x.groupID("join/"+n.Task.Name, path),
		Cache:       x.eng.Cache,
	}
	if len(n.LeftFeatures) == 0 {
		res, err := join.RunCross(left, right, n.Task, jopts, x.eng.Market)
		if err != nil {
			return nil, err
		}
		x.account(n.Label(), res.HITCount, res.AssignmentCount, res.MakespanHours, res.Incomplete...)
		return res.Joined, nil
	}
	// The two extraction passes are independent linear scans; they post
	// concurrently and their spending is accounted left-then-right once
	// both complete, so Stats stay deterministic. Each side gets its
	// own combiner instance — QualityAdjust is stateful and must not
	// be shared across the concurrent Combine calls.
	lcomb, err := x.eng.Combiner()
	if err != nil {
		return nil, err
	}
	rcomb, err := x.eng.Combiner()
	if err != nil {
		return nil, err
	}
	extOpts := join.ExtractOptions{
		Combined:    x.eng.Options.ExtractCombined,
		BatchSize:   x.eng.Options.ExtractBatch,
		Assignments: x.eng.Options.Assignments,
	}
	lo := extOpts
	lo.Combiner = lcomb
	lo.GroupID = x.groupID("extract-left/"+n.Task.Name, path+".xl")
	ro := extOpts
	ro.Combiner = rcomb
	ro.GroupID = x.groupID("extract-right/"+n.Task.Name, path+".xr")
	le, re, err := join.ExtractBoth(left, right, n.LeftFeatures, n.RightFeatures, lo, ro, x.eng.Market)
	// Account whichever sides completed even when the other failed —
	// those HITs were spent regardless.
	if le != nil {
		x.account("extract-left", le.HITCount, le.AssignmentCount, 0)
	}
	if re != nil {
		x.account("extract-right", re.HITCount, re.AssignmentCount, 0)
	}
	if err != nil {
		return nil, err
	}

	features := n.LeftFeatures
	if x.eng.Options.AutoSelectFeatures {
		kept, err := x.selectFeatures(n, left, right, le, re, jopts, path)
		if err != nil {
			return nil, err
		}
		features = kept
	}
	names := make([]string, len(features))
	for i, f := range features {
		names[i] = f.Field
	}
	res, err := join.RunSeq(join.FilteredSeq(left, right, le, re, names), n.Task, jopts, x.eng.Market)
	if err != nil {
		return nil, err
	}
	x.account(n.Label(), res.HITCount, res.AssignmentCount, res.MakespanHours, res.Incomplete...)
	return res.Joined, nil
}

// selectFeatures implements §3.2's automatic feature pruning inside the
// declarative path: a crowd join over a sample of the cross product
// supplies reference matches, and ChooseFeatures applies the paper's
// three discard rules (κ ambiguity, result loss, selectivity).
func (x *executor) selectFeatures(n *plan.CrowdJoin, left, right *relation.Relation,
	le, re *join.Extraction, jopts join.Options, path string) ([]join.Feature, error) {
	cfg := x.eng.Options.FeatureSelection
	if cfg.SampleFrac == 0 {
		cfg.SampleFrac = 0.15
	}
	if cfg.Seed == 0 {
		cfg.Seed = x.eng.Options.Seed + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := join.SamplePairs(left, right, cfg.SampleFrac, rng)
	sopts := jopts
	sopts.GroupID = x.groupID("select-sample/"+n.Task.Name, path+".fs")
	sres, err := join.Run(sample, n.Task, sopts, x.eng.Market)
	if err != nil {
		return nil, err
	}
	x.account("feature-selection sample join", sres.HITCount, sres.AssignmentCount, sres.MakespanHours)
	var ref []join.Pair
	for _, m := range sres.Matches {
		ref = append(ref, m.Pair)
	}
	kept, verdicts, err := join.ChooseFeatures(left, right, le, re, n.LeftFeatures, ref, cfg)
	if err != nil {
		return nil, err
	}
	for _, v := range verdicts {
		if !v.Kept {
			x.stats.add(OpStat{Label: fmt.Sprintf("feature %q discarded: %s", v.Feature, v.Reason)})
		}
	}
	return kept, nil
}

func (x *executor) execGenerate(n *plan.Generate, path string) (*relation.Relation, error) {
	in, err := x.input(n.Input, path)
	if err != nil {
		return nil, err
	}
	res, err := core.RunGenerative(in, n.Task, core.GenerativeOptions{
		BatchSize:   x.eng.Options.GenerativeBatch,
		Assignments: x.eng.Options.Assignments,
		GroupID:     x.groupID("generate/"+n.Task.Name, path),
		Fields:      n.Fields,
	}, x.eng.Market)
	if err != nil {
		return nil, err
	}
	x.account(n.Label(), res.HITCount, res.AssignmentCount, res.MakespanHours)
	return res.Output, nil
}

func (x *executor) execCrowdOrderBy(n *plan.CrowdOrderBy, path string) (*relation.Relation, error) {
	in, err := x.input(n.Input, path)
	if err != nil {
		return nil, err
	}
	// Group rows by the machine-sortable prefix columns.
	type group struct {
		key  string
		rows []int
	}
	var groups []group
	idx := map[string]int{}
	for i := 0; i < in.Len(); i++ {
		key := ""
		for _, col := range n.GroupCols {
			v, ok := in.Row(i).Get(col)
			if !ok {
				return nil, fmt.Errorf("exec: ORDER BY column %q not found in %s", col, in.Schema())
			}
			key += v.String() + "\x00"
		}
		gi, ok := idx[key]
		if !ok {
			gi = len(groups)
			idx[key] = gi
			groups = append(groups, group{key: key})
		}
		groups[gi].rows = append(groups[gi].rows, i)
	}
	sort.SliceStable(groups, func(a, b int) bool { return groups[a].key < groups[b].key })

	out := relation.New(in.Name(), in.Schema())
	for gi, g := range groups {
		sub := relation.New(in.Name(), in.Schema())
		for _, ri := range g.rows {
			if err := sub.Append(in.Row(ri)); err != nil {
				return nil, err
			}
		}
		order, err := x.crowdSort(sub, n, fmt.Sprintf("%s.g%d", path, gi))
		if err != nil {
			return nil, err
		}
		if n.Desc {
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		for _, ri := range order {
			if err := out.Append(sub.Row(ri)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// crowdSort orders one group's rows with the configured sort method.
func (x *executor) crowdSort(sub *relation.Relation, n *plan.CrowdOrderBy, path string) ([]int, error) {
	if sub.Len() == 1 {
		return []int{0}, nil
	}
	opts := x.eng.Options
	switch opts.SortMethod {
	case core.SortCompare:
		res, err := sortop.Compare(sub, n.Task, sortop.CompareOptions{
			GroupSize:   opts.CompareGroupSize,
			Assignments: opts.Assignments,
			GroupID:     x.groupID("sort-compare/"+n.Task.Name, path),
			Seed:        opts.Seed,
		}, x.eng.Market)
		if err != nil {
			return nil, err
		}
		x.account(n.Label(), res.HITCount, res.AssignmentCount, res.MakespanHours, res.Incomplete...)
		return res.Order, nil
	case core.SortRate:
		res, err := sortop.Rate(sub, n.Task, sortop.RateOptions{
			BatchSize:   opts.RateBatch,
			Assignments: opts.Assignments,
			GroupID:     x.groupID("sort-rate/"+n.Task.Name, path),
			Seed:        opts.Seed,
		}, x.eng.Market)
		if err != nil {
			return nil, err
		}
		x.account(n.Label(), res.HITCount, res.AssignmentCount, res.MakespanHours, res.Incomplete...)
		return res.Order, nil
	case core.SortHybrid:
		res, err := sortop.Hybrid(sub, n.Task, sortop.HybridOptions{
			Strategy:    sortop.SlidingWindow,
			WindowSize:  opts.CompareGroupSize,
			Step:        opts.HybridStep,
			Iterations:  opts.HybridIterations,
			Assignments: opts.Assignments,
			Rate: sortop.RateOptions{
				BatchSize:   opts.RateBatch,
				Assignments: opts.Assignments,
				Seed:        opts.Seed,
			},
			GroupID: x.groupID("sort-hybrid/"+n.Task.Name, path),
			Seed:    opts.Seed,
		}, x.eng.Market)
		if err != nil {
			return nil, err
		}
		x.account(n.Label(), res.TotalHITs(), 0, 0)
		return res.Order, nil
	default:
		return nil, fmt.Errorf("exec: unknown sort method %v", opts.SortMethod)
	}
}

func (x *executor) execMachineOrderBy(n *plan.MachineOrderBy, path string) (*relation.Relation, error) {
	in, err := x.input(n.Input, path)
	if err != nil {
		return nil, err
	}
	for _, col := range n.Cols {
		if !in.Schema().Has(col) {
			return nil, fmt.Errorf("exec: ORDER BY column %q not found", col)
		}
	}
	return in.SortBy(func(a, b relation.Tuple) bool {
		for i, col := range n.Cols {
			cmp := a.MustGet(col).Compare(b.MustGet(col))
			if cmp == 0 {
				continue
			}
			if n.Desc[i] {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	}), nil
}

func (x *executor) execProject(n *plan.Project, path string) (*relation.Relation, error) {
	in, err := x.input(n.Input, path)
	if err != nil {
		return nil, err
	}
	if n.Star || len(n.Columns) == 0 {
		return in, nil
	}
	proj, err := in.Project(n.Columns...)
	if err != nil {
		return nil, err
	}
	// Rename to output aliases.
	cols := proj.Schema().Columns()
	for i := range cols {
		if i < len(n.Aliases) && n.Aliases[i] != "" {
			cols[i].Name = n.Aliases[i]
		}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Name(), schema)
	for i := 0; i < proj.Len(); i++ {
		t, err := proj.Row(i).Rebind(schema)
		if err != nil {
			return nil, err
		}
		if err := out.Append(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (x *executor) execLimit(n *plan.Limit, path string) (*relation.Relation, error) {
	in, err := x.input(n.Input, path)
	if err != nil {
		return nil, err
	}
	return in.Limit(n.N), nil
}

func (x *executor) account(label string, hits, assignments int, makespan float64, incomplete ...string) {
	x.eng.Ledger.Add(label, hits, x.eng.Options.Assignments)
	x.stats.add(OpStat{Label: label, HITs: hits, Assignments: assignments, Makespan: makespan}, incomplete...)
}

// evalExpr evaluates a machine expression over one tuple.
func evalExpr(t relation.Tuple, e query.Expr) (relation.Value, error) {
	switch n := e.(type) {
	case *query.ColumnRef:
		v, ok := t.Get(n.Name())
		if !ok {
			return relation.Null(), fmt.Errorf("exec: column %q not found in %s", n.Name(), t.Schema())
		}
		return v, nil
	case *query.Literal:
		if n.IsString {
			return relation.Text(n.Text), nil
		}
		if strings.Contains(n.Text, ".") {
			f, err := strconv.ParseFloat(n.Text, 64)
			if err != nil {
				return relation.Null(), err
			}
			return relation.Float(f), nil
		}
		i, err := strconv.ParseInt(n.Text, 10, 64)
		if err != nil {
			return relation.Null(), err
		}
		return relation.Int(i), nil
	case *query.Not:
		v, err := evalExpr(t, n.X)
		if err != nil {
			return relation.Null(), err
		}
		return relation.Bool(!v.Bool()), nil
	case *query.Binary:
		l, err := evalExpr(t, n.L)
		if err != nil {
			return relation.Null(), err
		}
		r, err := evalExpr(t, n.R)
		if err != nil {
			return relation.Null(), err
		}
		switch n.Op {
		case "AND":
			return relation.Bool(l.Bool() && r.Bool()), nil
		case "OR":
			return relation.Bool(l.Bool() || r.Bool()), nil
		case "=":
			return relation.Bool(l.Equal(r)), nil
		case "<>", "!=":
			return relation.Bool(!l.Equal(r)), nil
		case "<":
			return relation.Bool(l.Compare(r) < 0), nil
		case "<=":
			return relation.Bool(l.Compare(r) <= 0), nil
		case ">":
			return relation.Bool(l.Compare(r) > 0), nil
		case ">=":
			return relation.Bool(l.Compare(r) >= 0), nil
		default:
			return relation.Null(), fmt.Errorf("exec: unknown operator %q", n.Op)
		}
	default:
		return relation.Null(), fmt.Errorf("exec: cannot evaluate %T", e)
	}
}
