// Package exec runs logical plans over a core.Engine with a streaming
// Volcano-model executor: every plan node compiles to an Operator that
// yields bounded tuple batches through Next(ctx), so crowd operators
// overlap HIT posting and collection across batch boundaries instead
// of materializing a full relation at every node. LIMIT propagates
// cancellation upstream (fewer HITs posted), sorts and stateful
// combiners are explicit pipeline breakers, and HIT spending is
// accounted to the engine's ledger per operator.
//
// Determinism: group IDs derive from plan paths, question IDs from
// input ordinals, and chunk boundaries from counts — never timing —
// so results are bit-identical at any batch size, chunk size, or core
// count (see volcano.go for the full contract).
package exec

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"qurk/internal/combine"
	"qurk/internal/core"
	"qurk/internal/hit"
	"qurk/internal/join"
	"qurk/internal/plan"
	"qurk/internal/poster"
	"qurk/internal/query"
	"qurk/internal/relation"
	"qurk/internal/sortop"
	"qurk/internal/task"
)

// OpStat records one operator's crowd spending.
type OpStat struct {
	// Label names the operator (plan label plus interface choice).
	Label string
	// HITs counts HITs posted by the operator, including refusal and
	// expiry re-posts.
	HITs int
	// Assignments counts completed (submitted) assignments.
	Assignments int
	// Expired counts assignments that were accepted by a worker but
	// never submitted before the assignment deadline. Each expired
	// assignment was re-posted up to Options.ExpiredRetries times; the
	// re-posts are included in HITs.
	Expired int
	// Makespan is the operator's busy span on the virtual crowd clock.
	Makespan float64
}

// Stats aggregates a query run.
type Stats struct {
	mu         sync.Mutex
	Operators  []OpStat
	Incomplete []string
	// Observed lists the statistics operators measured during the run
	// (selectivities, pass fractions, group sizes — the same values fed
	// to the engine's ObStats store); qurk.Explain renders them next to
	// the optimizer's estimates. Access via ObservedStats.
	Observed []ObservedStat
	// Reused counts questions resolved from the engine's shared answer
	// store (core.Engine.Answers) instead of being posted — crowd work
	// some earlier query already paid for.
	Reused int
	// PipelineMakespanHours is the end-to-end crowd makespan on the
	// streaming executor's virtual clock: each batch is stamped with
	// the time its rows became available, crowd chunks advance the
	// stamp by their group makespans, and overlapped phases overlap on
	// the clock. Compare with SerialMakespanHours.
	PipelineMakespanHours float64
}

func (s *Stats) add(st OpStat, incomplete ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Operators = append(s.Operators, st)
	s.Incomplete = append(s.Incomplete, incomplete...)
}

// addReused bumps the answer-store reuse counter.
func (s *Stats) addReused(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Reused += n
}

// TotalReused reports questions served from the shared answer store.
func (s *Stats) TotalReused() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Reused
}

// registerOp reserves a Stats slot at plan-compile time so operator
// order in Stats is the deterministic plan order, not completion order.
func (s *Stats) registerOp(label string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Operators = append(s.Operators, OpStat{Label: label})
	return len(s.Operators) - 1
}

// setSlot overwrites a registered slot's running totals.
func (s *Stats) setSlot(slot, hits, assignments, expired int, makespan float64, incomplete []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &s.Operators[slot]
	st.HITs = hits
	st.Assignments = assignments
	st.Expired = expired
	st.Makespan = makespan
	s.Incomplete = append(s.Incomplete, incomplete...)
}

// TotalExpired sums assignments that expired (accepted but never
// submitted) across operators — each one cost the query an assignment
// deadline on the clock and, within Options.ExpiredRetries, a re-posted
// HIT in the ledger.
func (s *Stats) TotalExpired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, o := range s.Operators {
		n += o.Expired
	}
	return n
}

// TotalHITs sums HITs across operators — the paper's cost metric.
func (s *Stats) TotalHITs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, o := range s.Operators {
		n += o.HITs
	}
	return n
}

// SerialMakespanHours sums per-operator makespans: the latency
// estimate if every crowd phase ran back to back with no overlap — the
// materializing executor's behavior. The streaming pipeline's
// PipelineMakespanHours is at most this, and lower whenever phases
// overlapped.
func (s *Stats) SerialMakespanHours() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := 0.0
	for _, o := range s.Operators {
		t += o.Makespan
	}
	return t
}

// Run parses nothing: it plans and executes an already-parsed statement.
func Run(e *core.Engine, stmt *query.SelectStmt) (*relation.Relation, *Stats, error) {
	return RunContext(context.Background(), e, stmt)
}

// RunContext is Run with cooperative cancellation: when ctx is done,
// streaming operators stop posting HITs and the pipeline unwinds.
// Chunks already on the marketplace complete (posted crowd work cannot
// be recalled) but are no longer waited for. Pipeline breakers that
// post through blocking marketplace calls (crowd sorts, join feature
// extraction) observe cancellation at their next phase boundary, not
// mid-phase.
func RunContext(ctx context.Context, e *core.Engine, stmt *query.SelectStmt) (*relation.Relation, *Stats, error) {
	node, err := plan.Build(stmt, e.Library)
	if err != nil {
		return nil, nil, err
	}
	return RunPlanContext(ctx, e, node)
}

// RunQuery parses, plans, and executes one query string.
func RunQuery(e *core.Engine, src string) (*relation.Relation, *Stats, error) {
	return RunQueryContext(context.Background(), e, src)
}

// RunQueryContext is RunQuery with cooperative cancellation.
func RunQueryContext(ctx context.Context, e *core.Engine, src string) (*relation.Relation, *Stats, error) {
	stmt, err := query.ParseQuery(src)
	if err != nil {
		return nil, nil, err
	}
	return RunContext(ctx, e, stmt)
}

// executor carries per-run state.
type executor struct {
	eng   *core.Engine
	stats *Stats
}

// groupID derives a HIT-group ID from the operator label and the plan
// path of the operator that posts it. Plan paths are assigned
// deterministically while walking the tree, never from a shared
// counter, so concurrently executing operators mint identical IDs on
// every run — a prerequisite for the simulator's per-HIT seeding to be
// reproducible when phases overlap.
func (x *executor) groupID(label, path string) string {
	return fmt.Sprintf("%s@%s", label, path)
}

// RunPlan executes a plan tree.
//
// Against a simulated marketplace, crowd randomness derives from the
// market seed plus content-stable HIT-group IDs, so re-running the same
// plan on the same market reproduces the same answers (useful for
// debugging). To sample independent crowd draws — e.g. to estimate
// result variance — run each trial against a market with a different
// seed.
//
// One caveat for hand-built plans: the engine's task cache is keyed by
// question content, so if two concurrently executing operators pose the
// *identical* question (same task, same tuples), which one hits the
// other's cached answers depends on scheduling. Planner-built plans
// never duplicate a question across concurrent operators (duplicate OR
// disjuncts are deduplicated here); for strict determinism in API-built
// plans that do, set Engine.Cache to nil.
func RunPlan(e *core.Engine, node plan.Node) (*relation.Relation, *Stats, error) {
	return RunPlanContext(context.Background(), e, node)
}

// RunPlanContext compiles the plan to a streaming operator tree and
// drains it.
func RunPlanContext(ctx context.Context, e *core.Engine, node plan.Node) (*relation.Relation, *Stats, error) {
	return RunPlanStreamContext(ctx, e, node, nil)
}

// Sink receives one batch of result tuples as the streaming executor
// produces it: the rows, and the virtual crowd clock at which they
// became available. Returning an error aborts the run.
type Sink func(tuples []relation.Tuple, ready float64) error

// RunQueryStreamContext is RunQueryContext with incremental delivery:
// sink observes every result batch as the root operator yields it, so
// callers (the qurkd row stream, Client.RunStream) can forward rows
// while crowd work is still in flight. The fully materialized relation
// is still returned at the end.
func RunQueryStreamContext(ctx context.Context, e *core.Engine, src string, sink Sink) (*relation.Relation, *Stats, error) {
	stmt, err := query.ParseQuery(src)
	if err != nil {
		return nil, nil, err
	}
	node, err := plan.Build(stmt, e.Library)
	if err != nil {
		return nil, nil, err
	}
	return RunPlanStreamContext(ctx, e, node, sink)
}

// RunPlanStreamContext is RunPlanContext with incremental delivery
// through sink (nil for none).
func RunPlanStreamContext(ctx context.Context, e *core.Engine, node plan.Node, sink Sink) (*relation.Relation, *Stats, error) {
	x := &executor{eng: e, stats: &Stats{}}
	root, err := x.build(node, "q")
	if err != nil {
		return nil, x.stats, err
	}
	defer root.Close()
	out := relation.New(root.Name(), root.Schema())
	for {
		b, err := root.Next(ctx)
		if err != nil {
			return nil, x.stats, err
		}
		if b == nil {
			break
		}
		rows := b.Rows()
		for _, t := range rows {
			if err := out.Append(t); err != nil {
				return nil, x.stats, err
			}
		}
		if sink != nil && len(rows) > 0 {
			if err := sink(rows, b.Ready); err != nil {
				return nil, x.stats, err
			}
		}
		// Root is the end of the pipeline: recycle the batch's vectors.
		// The arena-backed rows appended above stay valid.
		b.Cols.Release()
		if b.Ready > x.stats.PipelineMakespanHours {
			x.stats.PipelineMakespanHours = b.Ready
		}
	}
	// Rejected tail tuples never reach the root as batches, but the
	// crowd time spent deciding them still bounds the query.
	if cr := readyOf(root); cr > x.stats.PipelineMakespanHours {
		x.stats.PipelineMakespanHours = cr
	}
	return out, x.stats, nil
}

// Compile builds the streaming operator tree for a plan without
// executing it; Describe renders it. Close the returned operator if it
// is not drained.
func Compile(e *core.Engine, node plan.Node) (Operator, error) {
	x := &executor{eng: e, stats: &Stats{}}
	return x.build(node, "q")
}

// build compiles one plan node (and its subtree) at the given plan
// path into an Operator.
func (x *executor) build(node plan.Node, path string) (Operator, error) {
	opts := &x.eng.Options
	switch n := node.(type) {
	case *plan.Scan:
		rel, err := x.eng.Catalog.Table(n.Table)
		if err != nil {
			return nil, err
		}
		return newScanOp(rel.Qualify(n.Binding()), opts.ExecBatch), nil

	case *plan.MachineFilter:
		child, err := x.build(n.Input, path+".i")
		if err != nil {
			return nil, err
		}
		return &machineFilterOp{
			child: child,
			label: n.Label(),
			pred: func(t relation.Tuple) (bool, error) {
				v, err := evalExpr(t, n.Expr)
				if err != nil {
					return false, err
				}
				return v.Bool(), nil
			},
		}, nil

	case *plan.CrowdFilter:
		child, err := x.build(n.Input, path+".i")
		if err != nil {
			return nil, err
		}
		batch, asn := batchPhys(n.Phys, opts.FilterBatch, opts.Assignments)
		return x.buildFilter(child, n.Label(), path,
			[]*filterSpec{{ft: n.Task, negate: n.Negate, groupID: x.groupID("filter/"+n.Task.Name, path), label: n.Label()}},
			batch, asn)

	case *plan.CrowdFilterOr:
		child, err := x.build(n.Input, path+".i")
		if err != nil {
			return nil, err
		}
		specs := make([]*filterSpec, len(n.Branches))
		firstOf := map[string]int{}
		for i := range n.Branches {
			specs[i] = &filterSpec{
				ft:      n.Branches[i],
				negate:  n.Negates[i],
				groupID: x.groupID("filter-or/"+n.Branches[i].Name, fmt.Sprintf("%s.b%d", path, i)),
				label:   fmt.Sprintf("%s[%d]", n.Label(), i),
				dupOf:   i,
			}
			sig := fmt.Sprintf("%s|%v", n.Branches[i].Name, n.Negates[i])
			if first, dup := firstOf[sig]; dup {
				specs[i].dupOf = first
			} else {
				firstOf[sig] = i
			}
		}
		batch, asn := batchPhys(n.Phys, opts.FilterBatch, opts.Assignments)
		return x.buildFilter(child, n.Label(), path, specs, batch, asn)

	case *plan.UnaryPossibly:
		child, err := x.build(n.Input, path+".i")
		if err != nil {
			return nil, err
		}
		batch, asn := batchPhys(n.Phys, opts.ExtractBatch, opts.Assignments)
		g, err := x.buildGenerative(child, n.Label(), x.groupID("possibly/"+n.Task.Name, path),
			n.Task, []string{n.Field}, batch, asn)
		if err != nil {
			return nil, err
		}
		g.possiblyField, g.possiblyOp, g.possiblyValue = n.Field, n.Op, n.Value
		return g, nil

	case *plan.Generate:
		child, err := x.build(n.Input, path+".i")
		if err != nil {
			return nil, err
		}
		batch, asn := batchPhys(n.Phys, opts.GenerativeBatch, opts.Assignments)
		g, err := x.buildGenerative(child, n.Label(), x.groupID("generate/"+n.Task.Name, path),
			n.Task, n.Fields, batch, asn)
		if err != nil {
			return nil, err
		}
		// Output schema: input columns + one text column per field.
		cols := child.Schema().Columns()
		for _, fname := range g.fields {
			cols = append(cols, relation.Column{Name: n.Task.Name + "." + fname, Kind: relation.KindText})
		}
		schema, err := relation.NewSchema(cols...)
		if err != nil {
			return nil, err
		}
		g.schemaOut = schema
		return g, nil

	case *plan.CrowdJoin:
		left, err := x.build(n.Left, path+".l")
		if err != nil {
			return nil, err
		}
		right, err := x.build(n.Right, path+".r")
		if err != nil {
			return nil, err
		}
		if err := n.Task.Validate(); err != nil {
			return nil, err
		}
		schema, err := left.Schema().Concat(right.Schema())
		if err != nil {
			return nil, fmt.Errorf("join: %w", err)
		}
		comb, err := x.eng.Combiner()
		if err != nil {
			return nil, err
		}
		groupID := x.groupID("join/"+n.Task.Name, path)
		jp := joinPhysOf(n, opts)
		j := &crowdJoinOp{
			x:    x,
			node: n,
			phys: jp,
			path: path,
			// Exchange-wrap the probe subtree so it makes crowd progress
			// while the build side materializes (paper §2.5's pipelined,
			// left-deep execution); start() primes it. The build side is
			// drained directly (with its own goroutine in the
			// both-materialized path), so wrapping it would only add a
			// buffer layer.
			left:    newConcurrentOp(left, 4),
			right:   right,
			schema:  schema,
			label:   n.Label(),
			comb:    comb,
			perQ:    combine.IsPerQuestion(comb),
			builder: hit.NewBuilder(groupID, jp.Assignments, 1),
			slotOf:  map[string]int{},
		}
		j.acct = &opAcct{x: x, label: n.Label(), asn: jp.Assignments, slot: x.stats.registerOp(n.Label())}
		j.post = x.newPoster(groupID, &j.seq, j.acct)
		j.emit.size = opts.ExecBatch
		if err := j.initExtraction(); err != nil {
			return nil, err
		}
		return j, nil

	case *plan.CrowdOrderBy:
		child, err := x.build(n.Input, path+".i")
		if err != nil {
			return nil, err
		}
		return &crowdOrderByOp{x: x, node: n, phys: sortPhysOf(n, opts), path: path, child: child, size: opts.ExecBatch}, nil

	case *plan.MachineOrderBy:
		child, err := x.build(n.Input, path+".i")
		if err != nil {
			return nil, err
		}
		return &machineOrderByOp{node: n, child: child, size: opts.ExecBatch, cap: opts.BreakerMemTuples}, nil

	case *plan.Project:
		child, err := x.build(n.Input, path+".i")
		if err != nil {
			return nil, err
		}
		if n.Star || len(n.Columns) == 0 {
			return child, nil
		}
		schema, ords, err := child.Schema().Project(n.Columns...)
		if err != nil {
			return nil, err
		}
		// Rename to output aliases.
		cols := schema.Columns()
		for i := range cols {
			if i < len(n.Aliases) && n.Aliases[i] != "" {
				cols[i].Name = n.Aliases[i]
			}
		}
		schema, err = relation.NewSchema(cols...)
		if err != nil {
			return nil, err
		}
		return &projectOp{child: child, schema: schema, ords: ords, name: child.Name()}, nil

	case *plan.Limit:
		child, err := x.build(n.Input, path+".i")
		if err != nil {
			return nil, err
		}
		return &limitOp{child: child, n: n.N}, nil

	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", node)
	}
}

// filterSpec is build-time input for one filter branch.
type filterSpec struct {
	ft      *task.Filter
	negate  bool
	groupID string
	label   string
	dupOf   int
}

// batchPhys resolves an operator's batching annotation against the
// engine defaults (nil or zero fields fall back).
func batchPhys(p *plan.BatchPhys, batch, assignments int) (int, int) {
	if p != nil {
		if p.Batch > 0 {
			batch = p.Batch
		}
		if p.Assignments > 0 {
			assignments = p.Assignments
		}
	}
	return batch, assignments
}

// joinPhysOf resolves a join's physical choice: the optimizer's
// annotation when present, else the engine-wide Options (which apply
// POSSIBLY features whenever the node has them — the pre-optimizer
// behavior).
func joinPhysOf(n *plan.CrowdJoin, opts *core.Options) plan.JoinPhys {
	p := plan.JoinPhys{
		Algorithm:   opts.JoinAlgorithm,
		BatchSize:   opts.JoinBatch,
		GridRows:    opts.GridRows,
		GridCols:    opts.GridCols,
		UseFeatures: true,
		Assignments: opts.Assignments,
	}
	if n.Phys != nil {
		p.Algorithm = n.Phys.Algorithm
		p.UseFeatures = n.Phys.UseFeatures
		if n.Phys.BatchSize > 0 {
			p.BatchSize = n.Phys.BatchSize
		}
		if n.Phys.GridRows > 0 {
			p.GridRows = n.Phys.GridRows
		}
		if n.Phys.GridCols > 0 {
			p.GridCols = n.Phys.GridCols
		}
		if n.Phys.Assignments > 0 {
			p.Assignments = n.Phys.Assignments
		}
	}
	return p
}

// sortPhysOf resolves a sort's physical choice the same way.
func sortPhysOf(n *plan.CrowdOrderBy, opts *core.Options) plan.SortPhys {
	p := plan.SortPhys{
		Method:      opts.SortMethod,
		GroupSize:   opts.CompareGroupSize,
		RateBatch:   opts.RateBatch,
		Iterations:  opts.HybridIterations,
		Step:        opts.HybridStep,
		Strategy:    sortop.SlidingWindow,
		Assignments: opts.Assignments,
	}
	if n.Phys != nil {
		p.Method = n.Phys.Method
		p.Strategy = n.Phys.Strategy
		if n.Phys.GroupSize > 0 {
			p.GroupSize = n.Phys.GroupSize
		}
		if n.Phys.RateBatch > 0 {
			p.RateBatch = n.Phys.RateBatch
		}
		if n.Phys.Iterations > 0 {
			p.Iterations = n.Phys.Iterations
		}
		if n.Phys.Step > 0 {
			p.Step = n.Phys.Step
		}
		if n.Phys.Assignments > 0 {
			p.Assignments = n.Phys.Assignments
		}
	}
	return p
}

// newPoster builds a chunk poster over the engine's marketplace,
// wiring the operator's accounting and the engine-wide retry budgets.
func (x *executor) newPoster(groupID string, seq *int, acct *opAcct) *poster.Poster {
	mr := x.eng.Options.RefusedRetries
	if mr < 0 {
		mr = 0
	}
	mx := x.eng.Options.ExpiredRetries
	if mx < 0 {
		mx = 0
	}
	var a poster.Acct
	if acct != nil {
		a = acct
	}
	return poster.New(poster.Config{
		Market:         x.eng.Market,
		GroupID:        groupID,
		ChunkHITs:      x.eng.Options.StreamChunkHITs,
		Lookahead:      x.eng.Options.StreamLookahead,
		Seq:            seq,
		Acct:           a,
		RefusedRetries: mr,
		ExpiredRetries: mx,
	})
}

// buildFilter assembles the streaming filter over one or more branch
// specs (a plain CrowdFilter is the one-branch case).
func (x *executor) buildFilter(child Operator, label, path string, specs []*filterSpec, hitSize, assignments int) (Operator, error) {
	f := &crowdFilterOp{
		x:       x,
		child:   child,
		label:   label,
		hitSize: hitSize,
		slotOf:  map[string]int{},
	}
	f.emit.size = x.eng.Options.ExecBatch
	for i, sp := range specs {
		if err := sp.ft.Validate(); err != nil {
			return nil, err
		}
		br := &filterBranch{
			idx:     i,
			ft:      sp.ft,
			negate:  sp.negate,
			groupID: sp.groupID,
			dupOf:   sp.dupOf,
			asked:   map[uint64]bool{},
		}
		if sp.dupOf != i {
			// Duplicate disjuncts run once and share the result:
			// concurrent identical branches would otherwise race on the
			// task cache, making reruns timing-dependent.
			x.stats.add(OpStat{Label: fmt.Sprintf("%s = [%d] (duplicate disjunct)", sp.label, sp.dupOf)})
			f.branch = append(f.branch, br)
			continue
		}
		comb, err := x.eng.Combiner()
		if err != nil {
			return nil, err
		}
		br.comb = comb
		br.perQ = combine.IsPerQuestion(comb)
		br.builder = hit.NewBuilder(sp.groupID, assignments, 1)
		br.acct = &opAcct{x: x, label: sp.label, asn: assignments, slot: x.stats.registerOp(sp.label)}
		br.post = x.newPoster(sp.groupID, &f.seq, br.acct)
		f.branch = append(f.branch, br)
		f.uniq = append(f.uniq, br)
	}
	return f, nil
}

// buildGenerative assembles the shared generative streaming core.
func (x *executor) buildGenerative(child Operator, label, groupID string, gt *task.Generative, fields []string, hitSize, assignments int) (*generativeOp, error) {
	if err := gt.Validate(); err != nil {
		return nil, err
	}
	if len(fields) == 0 {
		for _, f := range gt.Fields {
			fields = append(fields, f.Name)
		}
	}
	g := &generativeOp{
		x:       x,
		child:   child,
		label:   label,
		groupID: groupID,
		gt:      gt,
		fields:  fields,
		norm:    map[string]task.Normalizer{},
		comb:    map[string]combine.Combiner{},
		perQ:    true,
		hitSize: hitSize,
		builder: hit.NewBuilder(groupID, assignments, 1),
		slotOf:  map[string]int{},
		asked:   map[uint64]bool{},
	}
	g.emit.size = x.eng.Options.ExecBatch
	g.eosVotes = map[string][]combine.Vote{}
	for _, fname := range fields {
		spec, ok := gt.Field(fname)
		if !ok {
			return nil, fmt.Errorf("exec: task %s has no field %q", gt.Name, fname)
		}
		norm, err := task.LookupNormalizer(spec.Normalizer)
		if err != nil {
			return nil, err
		}
		g.norm[fname] = norm
		comb, err := combine.Lookup(spec.Combiner)
		if err != nil {
			return nil, err
		}
		g.comb[fname] = comb
		if !combine.IsPerQuestion(comb) {
			g.perQ = false
		}
	}
	g.acct = &opAcct{x: x, label: label, asn: assignments, slot: x.stats.registerOp(label)}
	g.post = x.newPoster(groupID, &g.seq, g.acct)
	return g, nil
}

// selectFeatures implements §3.2's automatic feature pruning inside the
// declarative path: a crowd join over a sample of the cross product
// supplies reference matches, and ChooseFeatures applies the paper's
// three discard rules (κ ambiguity, result loss, selectivity).
func (x *executor) selectFeatures(n *plan.CrowdJoin, left, right *relation.Relation,
	le, re *join.Extraction, jopts join.Options, path string) ([]join.Feature, error) {
	cfg := x.eng.Options.FeatureSelection
	if cfg.SampleFrac == 0 {
		cfg.SampleFrac = 0.15
	}
	if cfg.Seed == 0 {
		cfg.Seed = x.eng.Options.Seed + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := join.SamplePairs(left, right, cfg.SampleFrac, rng)
	sopts := jopts
	sopts.GroupID = x.groupID("select-sample/"+n.Task.Name, path+".fs")
	sres, err := join.Run(sample, n.Task, sopts, x.eng.Market)
	if err != nil {
		return nil, err
	}
	x.account("feature-selection sample join", sopts.Assignments, sres.HITCount, sres.AssignmentCount, sres.MakespanHours)
	var ref []join.Pair
	for _, m := range sres.Matches {
		ref = append(ref, m.Pair)
	}
	kept, verdicts, err := join.ChooseFeatures(left, right, le, re, n.LeftFeatures, ref, cfg)
	if err != nil {
		return nil, err
	}
	for _, v := range verdicts {
		if !v.Kept {
			x.stats.add(OpStat{Label: fmt.Sprintf("feature %q discarded: %s", v.Feature, v.Reason)})
		}
	}
	return kept, nil
}

// runSortQuestions posts one sort round's questions through the
// chunked poster — fixed-size HITs, chunked sub-groups, bounded
// lookahead, and the refusal/expiry retry policies (previously sorts
// posted one blocking group and silently accepted partial votes) —
// feeding every answer into add. It registers a Stats slot under
// label, returns the round's completion time on the virtual clock, and
// reports exhausted questions via Stats.Incomplete.
func (x *executor) runSortQuestions(ctx context.Context, label, groupID string,
	questions []hit.Question, perHIT, assignments int, clock float64,
	add func(qid string, ans hit.Answer)) (float64, *opAcct, error) {
	acct := &opAcct{x: x, label: label, asn: assignments, slot: x.stats.registerOp(label)}
	p := x.newPoster(groupID, new(int), acct)
	b := hit.NewBuilder(groupID, assignments, 1)
	qbuf := questions
	// Serve questions the shared answer store already holds (a prior
	// query's identical compare group or rating batch) before anything
	// posts; only the remainder reaches the marketplace.
	if x.eng.Answers != nil {
		kept := make([]hit.Question, 0, len(questions))
		asked := map[uint64]bool{}
		for i := range questions {
			q := &questions[i]
			served := false
			if key := q.CacheKey(); !asked[key] {
				asked[key] = true
				as, ok, err := x.answersLookup(q, clock)
				if err != nil {
					return clock, acct, err
				}
				if ok {
					for _, ca := range as {
						add(q.ID, ca.Answer)
					}
					served = true
				}
			}
			if !served {
				kept = append(kept, questions[i])
			}
		}
		qbuf = kept
	}
	if err := p.FlushQuestions(b, &qbuf, perHIT, true); err != nil {
		return clock, acct, err
	}
	done, err := p.Drain(ctx, clock, func(q *hit.Question, as []hit.CachedAnswer, done float64) error {
		x.answersStore(q, as)
		for _, ca := range as {
			add(q.ID, ca.Answer)
		}
		return nil
	})
	return done, acct, err
}

// crowdSort orders one group's rows with the node's chosen sort
// interface (engine defaults when un-annotated), accounting its
// spending, and returns the order plus the time the sort settled on
// the virtual clock. Comparison and rating rounds post through the
// chunked poster; the hybrid algorithm's rating seed does too, with
// only its inherently sequential comparison refinements still posting
// one blocking single-question HIT per iteration.
func (x *executor) crowdSort(ctx context.Context, sub *relation.Relation, n *plan.CrowdOrderBy, sp plan.SortPhys, path string, clock float64) ([]int, float64, error) {
	if sub.Len() == 1 {
		return []int{0}, clock, nil
	}
	opts := x.eng.Options
	switch sp.Method {
	case core.SortCompare:
		gid := x.groupID("sort-compare/"+n.Task.Name, path)
		questions, tally, err := sortop.BuildCompare(sub, n.Task, sortop.CompareOptions{
			GroupSize:   sp.GroupSize,
			Assignments: sp.Assignments,
			GroupID:     gid,
			Seed:        opts.Seed,
		})
		if err != nil {
			return nil, 0, err
		}
		done, _, err := x.runSortQuestions(ctx, n.Label(), gid, questions, 1, sp.Assignments, clock, tally.Add)
		if err != nil {
			return nil, 0, err
		}
		return tally.Result().Order, done, nil
	case core.SortRate:
		gid := x.groupID("sort-rate/"+n.Task.Name, path)
		batch := sp.RateBatch
		if batch <= 0 {
			batch = sortop.DefaultRateBatch
		}
		questions, tally, err := sortop.BuildRate(sub, n.Task, sortop.RateOptions{
			BatchSize:   batch,
			Assignments: sp.Assignments,
			GroupID:     gid,
			Seed:        opts.Seed,
		})
		if err != nil {
			return nil, 0, err
		}
		done, _, err := x.runSortQuestions(ctx, n.Label(), gid, questions, batch, sp.Assignments, clock, tally.Add)
		if err != nil {
			return nil, 0, err
		}
		return tally.Result().Order, done, nil
	case core.SortHybrid:
		gid := x.groupID("sort-hybrid/"+n.Task.Name, path)
		batch := sp.RateBatch
		if batch <= 0 {
			batch = sortop.DefaultRateBatch
		}
		// Rating seed through the poster (chunked, retried) …
		questions, tally, err := sortop.BuildRate(sub, n.Task, sortop.RateOptions{
			BatchSize:   batch,
			Assignments: sp.Assignments,
			GroupID:     gid + "/rate",
			Seed:        opts.Seed,
		})
		if err != nil {
			return nil, 0, err
		}
		done, acct, err := x.runSortQuestions(ctx, n.Label()+" [rate seed]", gid+"/rate", questions, batch, sp.Assignments, clock, tally.Add)
		if err != nil {
			return nil, 0, err
		}
		rr := tally.Result()
		rr.HITCount = acct.hits
		// … then the comparison refinements, through the chunked poster:
		// iterations on disjoint windows mint and post concurrently
		// (bounded by the lookahead), answers fold in iteration order, and
		// the refusal/expiry retry policies apply — previously each
		// iteration was one blocking single-question marketplace round.
		st, err := sortop.NewHybridState(sub, n.Task, sortop.HybridOptions{
			Strategy:    sp.Strategy,
			WindowSize:  sp.GroupSize,
			Step:        sp.Step,
			Iterations:  sp.Iterations,
			Assignments: sp.Assignments,
			SeedRating:  rr,
			GroupID:     gid,
			Seed:        opts.Seed,
		})
		if err != nil {
			return nil, 0, err
		}
		hacct := &opAcct{x: x, label: n.Label(), asn: sp.Assignments, slot: x.stats.registerOp(n.Label())}
		p := x.newPoster(gid, new(int), hacct)
		iterOf := map[string]int{}
		asked := map[uint64]bool{}
		apply := func(iter int, as []hit.CachedAnswer) error {
			answers := make([]hit.Answer, 0, len(as))
			for _, ca := range as {
				answers = append(answers, ca.Answer)
			}
			return st.Apply(iter, answers)
		}
		for !st.Done() {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			// Mint every iteration whose window is free of in-flight ones,
			// serving repeats from the shared answer store first.
			for {
				h, iter, err := st.MintNext()
				if err != nil {
					return nil, 0, err
				}
				if h == nil {
					break
				}
				q := &h.Questions[0]
				served := false
				if key := q.CacheKey(); !asked[key] {
					asked[key] = true
					as, ok, err := x.answersLookup(q, done)
					if err != nil {
						return nil, 0, err
					}
					if ok {
						if err := apply(iter, as); err != nil {
							return nil, 0, err
						}
						served = true
					}
				}
				if !served {
					iterOf[q.ID] = iter
					p.Enqueue(h)
				}
			}
			for p.CanPost() && p.HasChunk(true) {
				p.PostOne(done)
			}
			if p.OldestSeq() < 0 {
				continue
			}
			chunkDone, err := p.CollectOne(ctx, func(q *hit.Question, as []hit.CachedAnswer, _ float64) error {
				x.answersStore(q, as)
				return apply(iterOf[q.ID], as)
			})
			if err != nil {
				return nil, 0, err
			}
			if chunkDone > done {
				done = chunkDone
			}
		}
		res := st.Result()
		return res.Order, done, nil
	default:
		return nil, 0, fmt.Errorf("exec: unknown sort method %v", sp.Method)
	}
}

func (x *executor) account(label string, asnPerHIT, hits, assignments int, makespan float64, incomplete ...string) {
	x.eng.Ledger.Add(label, hits, asnPerHIT)
	x.stats.add(OpStat{Label: label, HITs: hits, Assignments: assignments, Makespan: makespan}, incomplete...)
}

// comparePossibly evaluates extractedValue op literal with the paper's
// UNKNOWN wildcard semantics (§2.4): UNKNOWN never prunes. Values parse
// numerically when possible ("3+" → 3); otherwise "="/"<>" compare text.
func comparePossibly(v, op, lit string) (bool, error) {
	if strings.EqualFold(v, "UNKNOWN") || v == "" {
		return true, nil
	}
	ln, lerr := parseLooseInt(lit)
	vn, verr := parseLooseInt(v)
	if lerr == nil && verr == nil {
		switch op {
		case "=":
			return vn == ln, nil
		case "<>", "!=":
			return vn != ln, nil
		case "<":
			return vn < ln, nil
		case "<=":
			return vn <= ln, nil
		case ">":
			return vn > ln, nil
		case ">=":
			return vn >= ln, nil
		}
	}
	switch op {
	case "=":
		return strings.EqualFold(v, lit), nil
	case "<>", "!=":
		return !strings.EqualFold(v, lit), nil
	default:
		return false, fmt.Errorf("exec: cannot compare %q %s %q", v, op, lit)
	}
}

func parseLooseInt(s string) (int, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "+")
	return strconv.Atoi(s)
}

// evalExpr evaluates a machine expression over one tuple.
func evalExpr(t relation.Tuple, e query.Expr) (relation.Value, error) {
	switch n := e.(type) {
	case *query.ColumnRef:
		v, ok := t.Get(n.Name())
		if !ok {
			return relation.Null(), fmt.Errorf("exec: column %q not found in %s", n.Name(), t.Schema())
		}
		return v, nil
	case *query.Literal:
		if n.IsString {
			return relation.Text(n.Text), nil
		}
		if strings.Contains(n.Text, ".") {
			f, err := strconv.ParseFloat(n.Text, 64)
			if err != nil {
				return relation.Null(), err
			}
			return relation.Float(f), nil
		}
		i, err := strconv.ParseInt(n.Text, 10, 64)
		if err != nil {
			return relation.Null(), err
		}
		return relation.Int(i), nil
	case *query.Not:
		v, err := evalExpr(t, n.X)
		if err != nil {
			return relation.Null(), err
		}
		return relation.Bool(!v.Bool()), nil
	case *query.Binary:
		l, err := evalExpr(t, n.L)
		if err != nil {
			return relation.Null(), err
		}
		r, err := evalExpr(t, n.R)
		if err != nil {
			return relation.Null(), err
		}
		switch n.Op {
		case "AND":
			return relation.Bool(l.Bool() && r.Bool()), nil
		case "OR":
			return relation.Bool(l.Bool() || r.Bool()), nil
		case "=":
			return relation.Bool(l.Equal(r)), nil
		case "<>", "!=":
			return relation.Bool(!l.Equal(r)), nil
		case "<":
			return relation.Bool(l.Compare(r) < 0), nil
		case "<=":
			return relation.Bool(l.Compare(r) <= 0), nil
		case ">":
			return relation.Bool(l.Compare(r) > 0), nil
		case ">=":
			return relation.Bool(l.Compare(r) >= 0), nil
		default:
			return relation.Null(), fmt.Errorf("exec: unknown operator %q", n.Op)
		}
	default:
		return relation.Null(), fmt.Errorf("exec: cannot evaluate %T", e)
	}
}
