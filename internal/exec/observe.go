package exec

// Observed-statistics feedback: operators measure what actually
// happened — a filter's accept fraction, a join's POSSIBLY pass
// fraction and match selectivity, a sort group's size, per-operator
// crowd latency and worker agreement — and feed it both to the run's
// Stats (for qurk.Explain's est-vs-actual columns) and to the engine's
// shared history store (core.Engine.ObStats), which the next run's
// optimizer pass seeds its estimates from.

// ObservedStat is one statistic an operator measured during a run.
type ObservedStat struct {
	// Label is the operator's plan label (matches OpStat.Label and the
	// optimizer's OpCost.Label, so Explain can fold it onto the node).
	Label string
	// Task is the crowd task name — the stats-store key.
	Task string
	// Kind is one of the obstats.Kind* constants.
	Kind string
	// Value is the measurement; Weight the tuple/pair/vote count behind
	// it.
	Value, Weight float64
}

// addObserved appends one observation to the run's stats.
func (s *Stats) addObserved(o ObservedStat) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Observed = append(s.Observed, o)
}

// ObservedStats returns a copy of the run's observations.
func (s *Stats) ObservedStats() []ObservedStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ObservedStat(nil), s.Observed...)
}

// observe records one observed statistic into the run's Stats and into
// the engine's shared history store (when one is configured).
// Non-positive weights are dropped at the source.
func (x *executor) observe(label, taskName, kind string, value, weight float64) {
	if weight <= 0 {
		return
	}
	x.stats.addObserved(ObservedStat{Label: label, Task: taskName, Kind: kind, Value: value, Weight: weight})
	if x.eng.ObStats != nil {
		x.eng.ObStats.Observe(taskName, kind, value, weight)
	}
}
