package exec

// Tests for the bounded-memory breakers: with Options.BreakerMemTuples
// set, the machine sort becomes an external merge sort, the crowd sort
// externally partitions its input by group key, and the join's build
// side spills to disk partitions — all bit-identical to the in-memory
// paths at any cap.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
	"qurk/internal/plan"
	"qurk/internal/query"
)

// mustPlan parses and plans one query against the engine's library.
func mustPlan(t *testing.T, e *core.Engine, src string) plan.Node {
	t.Helper()
	stmt, err := query.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(stmt, e.Library)
	if err != nil {
		t.Fatal(err)
	}
	return node
}

// TestExternalSortMatchesInMemory: machine and crowd ORDER BY produce
// bit-identical rows and HIT counts with the spill cap forced low
// enough to write many runs.
func TestExternalSortMatchesInMemory(t *testing.T) {
	runMachine := func(cap int) string {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 57, Seed: 13})
		m := crowd.NewSimMarket(crowd.DefaultConfig(13), d.Oracle())
		e := core.NewEngine(m, core.Options{BreakerMemTuples: cap})
		e.Catalog.Register(d.Celeb)
		rows, _ := runRows(t, e, `SELECT c.name FROM celeb c ORDER BY c.name DESC`)
		return rows
	}
	if mem, spilled := runMachine(0), runMachine(4); mem != spilled {
		t.Errorf("machine external sort diverged:\n--- in-memory\n%s--- spilled\n%s", mem, spilled)
	}

	runCrowd := func(cap int) string {
		mv := dataset.NewMovie(dataset.MovieConfig{Scenes: 18, Actors: 2, Seed: 17})
		m := crowd.NewSimMarket(crowd.DefaultConfig(17), mv.Oracle())
		e := core.NewEngine(m, core.Options{SortMethod: core.SortCompare, BreakerMemTuples: cap})
		e.Catalog.Register(mv.Actors)
		e.Catalog.Register(mv.Scenes)
		e.Library.MustRegister(dataset.InSceneTask())
		e.Library.MustRegister(dataset.QualityTask())
		rows, stats := runRows(t, e, `
SELECT name, scenes.img FROM actors JOIN scenes
ON inScene(actors.img, scenes.img)
ORDER BY name, quality(scenes.img)`)
		return fmt.Sprintf("%s|hits=%d", rows, stats.TotalHITs())
	}
	mem := runCrowd(0)
	if !strings.Contains(mem, "hits=") || strings.Contains(mem, "hits=0") {
		t.Fatalf("crowd sort posted no HITs:\n%s", mem)
	}
	for _, cap := range []int{3, 7, 1000} {
		if spilled := runCrowd(cap); spilled != mem {
			t.Errorf("crowd sort with cap=%d diverged:\n--- in-memory\n%s--- spilled\n%s", cap, mem, spilled)
		}
	}
}

// TestJoinBuildSpillInvariance: the join's spilled build side (plain
// and feature-filtered) yields bit-identical rows and HIT counts at
// any cap.
func TestJoinBuildSpillInvariance(t *testing.T) {
	run := func(cap int, src string) string {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 21, Seed: 19})
		m := crowd.NewSimMarket(crowd.DefaultConfig(19), d.Oracle())
		e := core.NewEngine(m, core.Options{JoinAlgorithm: join.Naive, JoinBatch: 5, BreakerMemTuples: cap})
		e.Catalog.Register(d.Celeb)
		e.Catalog.Register(d.Photos)
		e.Library.MustRegister(dataset.SamePersonTask())
		e.Library.MustRegister(dataset.GenderTask())
		rows, stats := runRows(t, e, src)
		return fmt.Sprintf("%s|hits=%d", rows, stats.TotalHITs())
	}
	plain := `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`
	for _, src := range []string{plain, featureJoinQuery} {
		mem := run(0, src)
		if !strings.Contains(mem, "Celebrity") {
			t.Fatalf("join returned no rows:\n%s", mem)
		}
		for _, cap := range []int{5, 16} {
			if spilled := run(cap, src); spilled != mem {
				t.Errorf("join build cap=%d diverged on %q:\n--- in-memory\n%s--- spilled\n%s",
					cap, src[:40], mem, spilled)
			}
		}
	}
}

// TestSplitSortGroupsChunkInvariance: with Options.SplitSortGroups, a
// crowd-sort group larger than BreakerMemTuples splits into cap-bounded
// windows that sub-sort independently and merge through the external
// sorter. The cap is plan-shaping there by design (windowed sub-sorts
// post different sort HITs than one oversized group), but for a fixed
// cap the result must stay bit-identical at any
// ExecBatch/StreamChunkHITs — and the rows must be a permutation of the
// unsplit run's rows.
func TestSplitSortGroupsChunkInvariance(t *testing.T) {
	run := func(split bool, cap, execBatch, chunk int) string {
		mv := dataset.NewMovie(dataset.MovieConfig{Scenes: 18, Actors: 2, Seed: 17})
		m := crowd.NewSimMarket(crowd.DefaultConfig(17), mv.Oracle())
		e := core.NewEngine(m, core.Options{
			SortMethod: core.SortCompare, BreakerMemTuples: cap,
			SplitSortGroups: split, ExecBatch: execBatch, StreamChunkHITs: chunk,
		})
		e.Catalog.Register(mv.Actors)
		e.Catalog.Register(mv.Scenes)
		e.Library.MustRegister(dataset.InSceneTask())
		e.Library.MustRegister(dataset.QualityTask())
		rows, stats := runRows(t, e, `
SELECT name, scenes.img FROM actors JOIN scenes
ON inScene(actors.img, scenes.img)
ORDER BY name, quality(scenes.img)`)
		return fmt.Sprintf("%s|hits=%d", rows, stats.TotalHITs())
	}
	base := run(true, 4, 32, 8)
	if !strings.Contains(base, "hits=") || strings.Contains(base, "hits=0") {
		t.Fatalf("split sort posted no HITs:\n%s", base)
	}
	for _, cfg := range [][2]int{{1, 8}, {7, 8}, {64, 8}, {32, 1}, {32, 3}, {32, 1000}} {
		if got := run(true, 4, cfg[0], cfg[1]); got != base {
			t.Errorf("ExecBatch=%d StreamChunkHITs=%d diverged under SplitSortGroups:\n--- base\n%s--- got\n%s",
				cfg[0], cfg[1], base, got)
		}
	}
	// The windows must really have split: the sub-sorts post different
	// HITs than one oversized in-memory group …
	unsplit := run(false, 4, 32, 8)
	if base == unsplit {
		t.Error("SplitSortGroups changed nothing — groups never split")
	}
	// … while emitting the same row multiset (a windowed merge reorders
	// within groups, it never drops or invents rows).
	multiset := func(s string) string {
		rows := strings.Split(strings.SplitN(s, "|", 2)[0], "\n")
		sort.Strings(rows)
		return strings.Join(rows, "\n")
	}
	if multiset(base) != multiset(unsplit) {
		t.Errorf("split run is not a permutation of the unsplit rows:\n--- split\n%s\n--- unsplit\n%s",
			multiset(base), multiset(unsplit))
	}
}

// TestDescribeShowsSpillBound: sort breakers render their spill cap.
func TestDescribeShowsSpillBound(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 8, Seed: 3})
	m := crowd.NewSimMarket(crowd.DefaultConfig(3), d.Oracle())
	e := core.NewEngine(m, core.Options{BreakerMemTuples: 4})
	e.Catalog.Register(d.Celeb)
	op, err := Compile(e, mustPlan(t, e, `SELECT c.name FROM celeb c ORDER BY c.name`))
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	if tree := Describe(op); !strings.Contains(tree, "spills at 4 tuples") {
		t.Errorf("Describe missing spill bound:\n%s", tree)
	}
}
