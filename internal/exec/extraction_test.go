package exec

// Tests for streaming POSSIBLY-feature extraction: the probe side's
// extraction HITs are minted per arriving batch and posted through the
// chunked poster, so (a) results are bit-identical at any chunk/
// lookahead/batch setting, (b) a LIMIT that closes the pipeline leaves
// the tail's extraction HITs unposted, and (c) refused and expired
// extraction HITs are re-posted within their retry budgets instead of
// silently resolving to UNKNOWN.

import (
	"fmt"
	"strings"
	"testing"

	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
	"qurk/internal/plan"
	"qurk/internal/query"
)

const featureJoinQuery = `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)`

// extractHITsOf sums HITs across the extraction Stats slots.
func extractHITsOf(stats *Stats, label string) int {
	n := 0
	for _, op := range stats.Operators {
		if op.Label == label {
			n += op.HITs
		}
	}
	return n
}

// TestExtractionChunkInvariance: a filtered join's result rows and HIT
// counts are bit-identical at any ExecBatch / StreamChunkHITs /
// StreamLookahead setting, for both per-question and stateful
// combiners — extraction chunk boundaries must never leak into
// answers.
func TestExtractionChunkInvariance(t *testing.T) {
	run := func(execBatch, chunk, lookahead int, combiner string) string {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 22, Seed: 31})
		m := crowd.NewSimMarket(crowd.DefaultConfig(31), d.Oracle())
		e := core.NewEngine(m, core.Options{
			JoinAlgorithm: join.Naive, JoinBatch: 5,
			ExecBatch: execBatch, StreamChunkHITs: chunk, StreamLookahead: lookahead,
			Combiner: combiner,
		})
		e.Catalog.Register(d.Celeb)
		e.Catalog.Register(d.Photos)
		e.Library.MustRegister(dataset.SamePersonTask())
		e.Library.MustRegister(dataset.GenderTask())
		rows, stats := runRows(t, e, featureJoinQuery)
		return fmt.Sprintf("%s|hits=%d|xl=%d|xr=%d", rows, stats.TotalHITs(),
			extractHITsOf(stats, "extract-left"), extractHITsOf(stats, "extract-right"))
	}
	for _, combiner := range []string{"MajorityVote", "QualityAdjust"} {
		base := run(32, 8, 2, combiner)
		if !strings.Contains(base, "Celebrity") {
			t.Fatalf("%s: no rows:\n%s", combiner, base)
		}
		if strings.Contains(base, "xl=0") {
			t.Fatalf("%s: no probe-side extraction HITs recorded:\n%s", combiner, base)
		}
		for _, cfg := range [][3]int{{1, 8, 2}, {7, 3, 1}, {64, 1, 2}, {32, 1000, 4}} {
			if got := run(cfg[0], cfg[1], cfg[2], combiner); got != base {
				t.Errorf("%s: ExecBatch=%d chunk=%d lookahead=%d diverged:\n--- base\n%s--- got\n%s",
					combiner, cfg[0], cfg[1], cfg[2], base, got)
			}
		}
	}
}

// TestStreamedExtractionLimitSavings is the acceptance criterion: a
// POSSIBLY-feature join with LIMIT posts strictly fewer probe-side
// extraction HITs than the materializing path (one monolithic chunk),
// and its pipelined makespan beats that baseline.
func TestStreamedExtractionLimitSavings(t *testing.T) {
	run := func(chunk int) (*Stats, int) {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 120, Seed: 41})
		m := crowd.NewSimMarket(crowd.DefaultConfig(41), d.Oracle())
		e := core.NewEngine(m, core.Options{
			JoinAlgorithm: join.Naive, JoinBatch: 5, StreamChunkHITs: chunk,
		})
		e.Catalog.Register(d.Celeb)
		e.Catalog.Register(d.Photos)
		e.Library.MustRegister(dataset.IsFemaleTask())
		e.Library.MustRegister(dataset.SamePersonTask())
		e.Library.MustRegister(dataset.GenderTask())
		out, stats, err := RunQuery(e, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
WHERE isFemale(c.img)
LIMIT 3`)
		if err != nil {
			t.Fatal(err)
		}
		return stats, out.Len()
	}
	streamed, rows := run(2)
	if rows != 3 {
		t.Fatalf("limit rows = %d, want 3", rows)
	}
	mono, _ := run(1 << 20)
	sx, mx := extractHITsOf(streamed, "extract-left"), extractHITsOf(mono, "extract-left")
	if sx == 0 || mx == 0 {
		t.Fatalf("extraction HITs not recorded: streamed %d, materializing %d", sx, mx)
	}
	if sx >= mx {
		t.Errorf("streamed extraction posted %d HITs, want strictly fewer than materializing %d", sx, mx)
	}
	if streamed.TotalHITs() >= mono.TotalHITs() {
		t.Errorf("streamed total %d HITs, want fewer than materializing %d", streamed.TotalHITs(), mono.TotalHITs())
	}
	if streamed.PipelineMakespanHours >= mono.PipelineMakespanHours {
		t.Errorf("no pipelining win: streamed %.4fh >= materializing %.4fh",
			streamed.PipelineMakespanHours, mono.PipelineMakespanHours)
	}
}

// TestExtractionRefusalRetries: refused extraction HITs (batch too
// effortful) re-post at half batch through the poster — previously the
// blocking extraction pass silently resolved them to UNKNOWN.
func TestExtractionRefusalRetries(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 12, Seed: 9})
	e := core.NewEngine(refusingMarket(9, d.Oracle(), 3),
		core.Options{JoinAlgorithm: join.Naive, JoinBatch: 5})
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(dataset.SamePersonTask())
	e.Library.MustRegister(dataset.GenderTask())

	out, stats, err := RunQuery(e, featureJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("join emptied under refusals: extraction retry policy inactive")
	}
	if len(stats.Incomplete) != 0 {
		t.Errorf("retried questions should not be incomplete: %v", stats.Incomplete)
	}
	// 12 tuples at extract batch 4 = 3 original HITs per side; refusal
	// re-posts add more.
	if got := extractHITsOf(stats, "extract-left"); got <= 3 {
		t.Errorf("extract-left HITs = %d, want > 3 (originals plus retries)", got)
	}
	if got := extractHITsOf(stats, "extract-right"); got <= 3 {
		t.Errorf("extract-right HITs = %d, want > 3 (originals plus retries)", got)
	}
}

// TestExtractionExpiryRetries: expired extraction assignments re-post
// with lineage IDs and surface in Stats.TotalExpired.
func TestExtractionExpiryRetries(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 12, Seed: 9})
	e := core.NewEngine(abandoningMarket(9, d.Oracle(), 0.3),
		core.Options{JoinAlgorithm: join.Naive, JoinBatch: 5})
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(dataset.SamePersonTask())
	e.Library.MustRegister(dataset.GenderTask())

	out, stats, err := RunQuery(e, featureJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("join emptied under expirations")
	}
	if stats.TotalExpired() == 0 {
		t.Error("AbandonProb = 0.3 produced no expired count")
	}
	if len(stats.Incomplete) != 0 {
		t.Errorf("partial votes plus retries should leave nothing incomplete: %v", stats.Incomplete)
	}
}

// TestJoinBreakerNotes: the filtered join's breaker drops to "build
// side only" on the streaming path; grid layout still materializes
// both inputs; the machine-readable Breakers carry the memory bound.
func TestJoinBreakerNotes(t *testing.T) {
	compile := func(opts core.Options, src string) Operator {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 8, Seed: 3})
		m := crowd.NewSimMarket(crowd.DefaultConfig(3), d.Oracle())
		e := core.NewEngine(m, opts)
		e.Catalog.Register(d.Celeb)
		e.Catalog.Register(d.Photos)
		e.Library.MustRegister(dataset.SamePersonTask())
		e.Library.MustRegister(dataset.GenderTask())
		stmt, err := query.ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		node, err := plan.Build(stmt, e.Library)
		if err != nil {
			t.Fatal(err)
		}
		op, err := Compile(e, node)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(op.Close)
		return op
	}
	streaming := Describe(compile(core.Options{JoinAlgorithm: join.Naive}, featureJoinQuery))
	if !strings.Contains(streaming, "build side only") {
		t.Errorf("streaming filtered join should materialize the build side only:\n%s", streaming)
	}
	grid := Describe(compile(core.Options{JoinAlgorithm: join.Smart}, featureJoinQuery))
	if !strings.Contains(grid, "materializes both inputs") {
		t.Errorf("grid join must keep the global-candidates breaker:\n%s", grid)
	}
	spilling := compile(core.Options{JoinAlgorithm: join.Naive, BreakerMemTuples: 16}, featureJoinQuery)
	bks := PipelineBreakers(spilling)
	found := false
	for _, ob := range bks {
		for _, bi := range ob.Breakers {
			if bi.Kind == BreakerJoinBuild && bi.Spills && bi.MemTuples == 16 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("PipelineBreakers missing spilling join-build entry: %+v", bks)
	}
	if spilled := Describe(spilling); !strings.Contains(spilled, "spills at 16 tuples") {
		t.Errorf("Describe should render the spill bound:\n%s", spilled)
	}
}
