package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/hit"
	"qurk/internal/join"
	"qurk/internal/plan"
	"qurk/internal/query"
	"qurk/internal/relation"
)

// runRows serializes a query's result rows for comparison.
func runRows(t *testing.T, e *core.Engine, src string) (string, *Stats) {
	t.Helper()
	out, stats, err := RunQuery(e, src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i := 0; i < out.Len(); i++ {
		fmt.Fprintln(&sb, out.Row(i))
	}
	return sb.String(), stats
}

// TestLimitShortCircuitsFilterHITs is the streaming executor's core
// cost win: LIMIT k over a crowd filter stops posting HITs once k
// tuples are out, where the materializing executor pays for the whole
// input (ceil(200/5) = 40 HITs here).
func TestLimitShortCircuitsFilterHITs(t *testing.T) {
	build := func(chunk int) *core.Engine {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 200, Seed: 5})
		m := crowd.NewSimMarket(crowd.DefaultConfig(5), d.Oracle())
		e := core.NewEngine(m, core.Options{StreamChunkHITs: chunk})
		e.Catalog.Register(d.Celeb)
		e.Library.MustRegister(dataset.IsFemaleTask())
		return e
	}

	e := build(4)
	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb AS c WHERE isFemale(c.img) LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("limit rows = %d, want 3", out.Len())
	}
	full := 40 // ceil(200/5) HITs for the whole input
	if got := stats.TotalHITs(); got == 0 || got >= full {
		t.Errorf("LIMIT 3 posted %d HITs, want 0 < HITs < %d (materializing cost)", got, full)
	}

	// Without LIMIT the same plan pays full freight.
	e2 := build(4)
	_, stats2, err := RunQuery(e2, `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.TotalHITs() != full {
		t.Errorf("full filter posted %d HITs, want %d", stats2.TotalHITs(), full)
	}
	if stats.TotalHITs()*2 > stats2.TotalHITs() {
		t.Errorf("LIMIT savings too small: %d vs %d", stats.TotalHITs(), stats2.TotalHITs())
	}
}

// TestLimitShortCircuitsJoinHITs: the same short-circuit through a
// crowd join — pair HITs stop posting once the limit is satisfied.
func TestLimitShortCircuitsJoinHITs(t *testing.T) {
	build := func() *core.Engine {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 3})
		m := crowd.NewSimMarket(crowd.DefaultConfig(3), d.Oracle())
		e := core.NewEngine(m, core.Options{JoinAlgorithm: join.Naive, JoinBatch: 5, StreamChunkHITs: 4})
		e.Catalog.Register(d.Celeb)
		e.Catalog.Register(d.Photos)
		e.Library.MustRegister(dataset.SamePersonTask())
		return e
	}
	src := `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`

	_, full, err := RunQuery(build(), src)
	if err != nil {
		t.Fatal(err)
	}
	out, limited, err := RunQuery(build(), src+` LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("limit rows = %d, want 2", out.Len())
	}
	if limited.TotalHITs() == 0 || limited.TotalHITs()*2 > full.TotalHITs() {
		t.Errorf("LIMIT 2 join posted %d HITs vs %d full — expected < half", limited.TotalHITs(), full.TotalHITs())
	}
}

// TestBatchSizeInvariance: query results are bit-identical at any
// operator batch size and any HIT chunk size — scheduling knobs must
// never leak into answers.
func TestBatchSizeInvariance(t *testing.T) {
	run := func(execBatch, chunk int, combiner string) string {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 24, Seed: 7})
		m := crowd.NewSimMarket(crowd.DefaultConfig(7), d.Oracle())
		e := core.NewEngine(m, core.Options{
			JoinAlgorithm: join.Naive, JoinBatch: 5,
			ExecBatch: execBatch, StreamChunkHITs: chunk, Combiner: combiner,
		})
		e.Catalog.Register(d.Celeb)
		e.Catalog.Register(d.Photos)
		e.Library.MustRegister(dataset.IsFemaleTask())
		e.Library.MustRegister(dataset.SamePersonTask())
		e.Library.MustRegister(dataset.GenderTask())
		rows, stats := runRows(t, e, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
ORDER BY c.name`)
		return fmt.Sprintf("%s|hits=%d", rows, stats.TotalHITs())
	}
	for _, combiner := range []string{"MajorityVote", "QualityAdjust"} {
		base := run(32, 8, combiner)
		if !strings.Contains(base, "Celebrity") {
			t.Fatalf("%s: no rows:\n%s", combiner, base)
		}
		for _, cfg := range [][2]int{{1, 8}, {7, 8}, {64, 8}, {32, 1}, {32, 3}, {32, 1000}} {
			if got := run(cfg[0], cfg[1], combiner); got != base {
				t.Errorf("%s: ExecBatch=%d StreamChunkHITs=%d diverged:\n--- base\n%s--- got\n%s",
					combiner, cfg[0], cfg[1], base, got)
			}
		}
	}
}

// recordingMarket wraps a marketplace and records every posted HIT
// with its question IDs, so tests can assert the posted-HIT *set* —
// not just the count — is invariant across scheduling knobs.
type recordingMarket struct {
	crowd.Marketplace
	mu    sync.Mutex
	lines []string
}

func (m *recordingMarket) note(g *hit.Group) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, h := range g.HITs {
		var sb strings.Builder
		sb.WriteString(h.ID)
		for i := range h.Questions {
			sb.WriteByte(' ')
			sb.WriteString(h.Questions[i].ID)
		}
		m.lines = append(m.lines, sb.String())
	}
}

// posted returns the recorded HIT lines as one order-independent blob.
func (m *recordingMarket) posted() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]string(nil), m.lines...)
	sort.Strings(out)
	return strings.Join(out, "\n")
}

func (m *recordingMarket) Run(g *hit.Group) (*crowd.RunResult, error) {
	m.note(g)
	return m.Marketplace.Run(g)
}

func (m *recordingMarket) RunAsync(g *hit.Group) <-chan crowd.Async {
	m.note(g)
	return m.Marketplace.RunAsync(g)
}

// TestColumnarInvarianceAcrossBatchAndCap: the columnar batch layout
// and binary spill codec must be observationally invisible — rows AND
// the posted-HIT set (IDs and question membership) are bit-identical
// across the full ExecBatch × BreakerMemTuples grid for seeded filter,
// join, and grouped-sort plans.
func TestColumnarInvarianceAcrossBatchAndCap(t *testing.T) {
	celebEngine := func(rm *recordingMarket, execBatch, cap int) *core.Engine {
		e := core.NewEngine(rm, core.Options{
			JoinAlgorithm: join.Naive, JoinBatch: 5,
			ExecBatch: execBatch, BreakerMemTuples: cap, StreamChunkHITs: 4,
		})
		return e
	}
	plans := []struct {
		name string
		src  string
		run  func(execBatch, cap int) string
	}{
		{name: "filter", src: `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`},
		{name: "join", src: `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`},
		{name: "sort", src: `
SELECT name, scenes.img FROM actors JOIN scenes
ON inScene(actors.img, scenes.img)
ORDER BY name, quality(scenes.img)`},
	}
	for i := range plans {
		p := &plans[i]
		src := p.src
		if p.name == "sort" {
			p.run = func(execBatch, cap int) string {
				mv := dataset.NewMovie(dataset.MovieConfig{Scenes: 14, Actors: 2, Seed: 31})
				rm := &recordingMarket{Marketplace: crowd.NewSimMarket(crowd.DefaultConfig(31), mv.Oracle())}
				e := core.NewEngine(rm, core.Options{
					SortMethod: core.SortCompare,
					ExecBatch:  execBatch, BreakerMemTuples: cap, StreamChunkHITs: 4,
				})
				e.Catalog.Register(mv.Actors)
				e.Catalog.Register(mv.Scenes)
				e.Library.MustRegister(dataset.InSceneTask())
				e.Library.MustRegister(dataset.QualityTask())
				rows, _ := runRows(t, e, src)
				return rows + "#hits#\n" + rm.posted()
			}
			continue
		}
		p.run = func(execBatch, cap int) string {
			d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 18, Seed: 37})
			rm := &recordingMarket{Marketplace: crowd.NewSimMarket(crowd.DefaultConfig(37), d.Oracle())}
			e := celebEngine(rm, execBatch, cap)
			e.Catalog.Register(d.Celeb)
			e.Catalog.Register(d.Photos)
			e.Library.MustRegister(dataset.IsFemaleTask())
			e.Library.MustRegister(dataset.SamePersonTask())
			rows, _ := runRows(t, e, src)
			return rows + "#hits#\n" + rm.posted()
		}
	}
	for _, p := range plans {
		base := p.run(32, 0)
		if !strings.Contains(base, "/hit") {
			t.Fatalf("%s: no HITs recorded:\n%s", p.name, base)
		}
		for _, execBatch := range []int{1, 7, 64} {
			for _, cap := range []int{0, 3, 16} {
				if execBatch == 32 && cap == 0 {
					continue
				}
				if got := p.run(execBatch, cap); got != base {
					t.Errorf("%s: ExecBatch=%d BreakerMemTuples=%d diverged:\n--- base\n%s\n--- got\n%s",
						p.name, execBatch, cap, base, got)
				}
			}
		}
	}
}

// TestBatchTupleRoundTrip: the exec batch shim reproduces its input
// tuples exactly — batchOfTuples → Rows is the identity for every
// value kind, including NULL and UNKNOWN attributes.
func TestBatchTupleRoundTrip(t *testing.T) {
	sch := relation.MustSchema(
		relation.Column{Name: "t", Kind: relation.KindText},
		relation.Column{Name: "i", Kind: relation.KindInt},
		relation.Column{Name: "f", Kind: relation.KindFloat},
		relation.Column{Name: "b", Kind: relation.KindBool},
		relation.Column{Name: "u", Kind: relation.KindURL},
		relation.Column{Name: "n", Kind: relation.KindText},
	)
	tuples := []relation.Tuple{
		relation.MustTuple(sch, relation.Text("a"), relation.Int(-3), relation.Float(2.5),
			relation.Bool(true), relation.URL("http://x"), relation.Null()),
		relation.MustTuple(sch, relation.Text(""), relation.Int(0), relation.Float(0),
			relation.Bool(false), relation.Null(), relation.Unknown()),
	}
	b := batchOfTuples(sch, tuples, 1.5)
	if b.Len() != len(tuples) || b.Ready != 1.5 {
		t.Fatalf("batch shape: len=%d ready=%v", b.Len(), b.Ready)
	}
	for i, got := range b.Rows() {
		if got.Key() != tuples[i].Key() || got.String() != tuples[i].String() {
			t.Errorf("row %d: %v != %v", i, got, tuples[i])
		}
	}
	b.Cols.Release()
}

// cancelMarket cancels a context the first time a group is posted,
// simulating a caller abandoning a query mid-pipeline.
type cancelMarket struct {
	crowd.Marketplace
	cancel context.CancelFunc
}

func (m *cancelMarket) RunAsync(g *hit.Group) <-chan crowd.Async {
	m.cancel()
	return m.Marketplace.RunAsync(g)
}

func (m *cancelMarket) Run(g *hit.Group) (*crowd.RunResult, error) {
	m.cancel()
	return m.Marketplace.Run(g)
}

// TestContextCancellationMidPipeline: once ctx is done, the pipeline
// unwinds with ctx's error instead of continuing to post and wait.
func TestContextCancellationMidPipeline(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 60, Seed: 11})
	ctx, cancel := context.WithCancel(context.Background())
	m := &cancelMarket{Marketplace: crowd.NewSimMarket(crowd.DefaultConfig(11), d.Oracle()), cancel: cancel}
	e := core.NewEngine(m, core.Options{StreamChunkHITs: 2})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())
	_, _, err := RunQueryContext(ctx, e, `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`)
	if err == nil {
		t.Fatal("cancelled query returned no error")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPipelineOverlapsCrowdPhases: with chunked posting, a downstream
// crowd join starts posting pair HITs off early filter chunks while
// later chunks are still in flight. The materializing baseline is the
// same query with one monolithic chunk per operator (a huge
// StreamChunkHITs): there the join's single chunk cannot post until
// the filter's single chunk fully completes, so its end-to-end
// virtual-clock makespan is strictly serial.
func TestPipelineOverlapsCrowdPhases(t *testing.T) {
	run := func(chunk int) *Stats {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 40, Seed: 21})
		m := crowd.NewSimMarket(crowd.DefaultConfig(21), d.Oracle())
		e := core.NewEngine(m, core.Options{JoinAlgorithm: join.Naive, JoinBatch: 5, StreamChunkHITs: chunk})
		e.Catalog.Register(d.Celeb)
		e.Catalog.Register(d.Photos)
		e.Library.MustRegister(dataset.IsFemaleTask())
		e.Library.MustRegister(dataset.SamePersonTask())
		_, stats, err := RunQuery(e, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
WHERE isFemale(c.img)`)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	streamed := run(2)
	monolithic := run(1 << 20)
	if streamed.PipelineMakespanHours <= 0 || monolithic.PipelineMakespanHours <= 0 {
		t.Fatal("pipeline makespan not tracked")
	}
	// Same HITs either way — chunking changes latency, not cost.
	if streamed.TotalHITs() != monolithic.TotalHITs() {
		t.Errorf("HITs differ across chunking: %d vs %d", streamed.TotalHITs(), monolithic.TotalHITs())
	}
	if streamed.PipelineMakespanHours >= monolithic.PipelineMakespanHours {
		t.Errorf("no overlap win: streamed %.4fh >= materializing %.4fh",
			streamed.PipelineMakespanHours, monolithic.PipelineMakespanHours)
	}
	// And the pipelined clock never exceeds the no-overlap estimate.
	if p, s := streamed.PipelineMakespanHours, streamed.SerialMakespanHours(); p > s+1e-9 {
		t.Errorf("pipeline %.4fh exceeds serial estimate %.4fh", p, s)
	}
}

// TestDuplicateRowsChunkInvariance: content-duplicate rows must not
// make results depend on chunk collection timing. Each duplicate posts
// its own questions within a run (the task cache serves only entries
// that predate the run), so output is identical at any StreamChunkHITs.
func TestDuplicateRowsChunkInvariance(t *testing.T) {
	run := func(chunk int) string {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 18, Seed: 29})
		dup := relation.New(d.Celeb.Name(), d.Celeb.Schema())
		for i := 0; i < d.Celeb.Len(); i++ {
			if err := dup.Append(d.Celeb.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ { // re-append the first rows verbatim
			if err := dup.Append(d.Celeb.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
		m := crowd.NewSimMarket(crowd.DefaultConfig(29), d.Oracle())
		e := core.NewEngine(m, core.Options{StreamChunkHITs: chunk, ExecBatch: 3})
		e.Catalog.Register(dup)
		e.Library.MustRegister(dataset.IsFemaleTask())
		rows, stats := runRows(t, e, `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`)
		return fmt.Sprintf("%s|hits=%d", rows, stats.TotalHITs())
	}
	base := run(1)
	for _, chunk := range []int{2, 8, 1 << 20} {
		if got := run(chunk); got != base {
			t.Errorf("StreamChunkHITs=%d diverged with duplicate rows:\n--- chunk=1\n%s--- got\n%s", chunk, base, got)
		}
	}
}

// TestMakespanCountsRejectedTuples: a query whose final filter rejects
// everything still spent crowd time deciding those tuples; the
// pipelined makespan must reflect it even though no batch reaches the
// root.
func TestMakespanCountsRejectedTuples(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 23})
	m := crowd.NewSimMarket(crowd.DefaultConfig(23), d.Oracle())
	e := core.NewEngine(m, core.Options{})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())
	// Contradiction: serial AND of a predicate and its negation over
	// independent vote rounds rejects (nearly) everything.
	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img) AND NOT isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalHITs() == 0 {
		t.Fatal("no HITs posted")
	}
	if out.Len() > 2 && stats.PipelineMakespanHours <= 0 {
		t.Skip("contradiction unexpectedly kept rows") // defensive; seeds make this empty
	}
	if stats.PipelineMakespanHours <= 0 {
		t.Errorf("PipelineMakespanHours = %v despite %d HITs spent", stats.PipelineMakespanHours, stats.TotalHITs())
	}
}

// TestDescribeMarksBreakers: the operator-tree renderer labels
// pipeline breakers so plans can be inspected.
func TestDescribeMarksBreakers(t *testing.T) {
	s := dataset.NewSquares(10)
	m := crowd.NewSimMarket(crowd.DefaultConfig(1), s.Oracle())
	e := core.NewEngine(m, core.Options{})
	e.Catalog.Register(s.Rel)
	e.Library.MustRegister(dataset.SquareSorterTask())
	stmt, err := query.ParseQuery(`SELECT label FROM squares ORDER BY squareSorter(img) LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Build(stmt, e.Library)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Compile(e, node)
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	tree := Describe(op)
	if !strings.Contains(tree, "⇥") {
		t.Errorf("no pipeline breaker marked in:\n%s", tree)
	}
	if !strings.Contains(tree, "Limit(3)") || !strings.Contains(tree, "Scan(") {
		t.Errorf("tree missing operators:\n%s", tree)
	}
}

// TestStreamChunkHITsOne exercises the finest-grained chunking end to
// end (every HIT its own marketplace post) over an OR filter, where
// branch pipelines interleave.
func TestStreamChunkHITsOne(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 12, Seed: 19})
	m := crowd.NewSimMarket(crowd.DefaultConfig(19), d.Oracle())
	e := core.NewEngine(m, core.Options{StreamChunkHITs: 1, ExecBatch: 1})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())
	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img) OR NOT isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() < d.Celeb.Len()-3 {
		t.Errorf("OR tautology kept %d/%d", out.Len(), d.Celeb.Len())
	}
	if stats.TotalHITs() != 6 { // two branches × ceil(12/5)
		t.Errorf("HITs = %d, want 6", stats.TotalHITs())
	}
}
