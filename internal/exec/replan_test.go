package exec

import (
	"testing"

	"qurk/internal/answerstore"
	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
	"qurk/internal/obstats"
)

// replanJoinEngine builds a feature-prefiltered NaiveBatch join
// workload whose true POSSIBLY pass fraction (~0.5) makes grids
// cheaper for the surviving pairs.
func replanJoinEngine(opts core.Options) *core.Engine {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 12, Seed: 7})
	m := crowd.NewSimMarket(crowd.DefaultConfig(7), d.Oracle())
	e := core.NewEngine(m, opts)
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(dataset.SamePersonTask())
	e.Library.MustRegister(dataset.GenderTask())
	return e
}

const replanJoinQuery = `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)`

// TestJoinReplanSwitchesToGrids: once the probe prefix reveals the
// true pass fraction, the remaining pairs post as grids and the run
// spends fewer HITs than the static NaiveBatch plan. The run's
// observed statistics carry the measured pass fraction.
func TestJoinReplanSwitchesToGrids(t *testing.T) {
	static := replanJoinEngine(core.Options{JoinAlgorithm: join.Naive, JoinBatch: 2, Seed: 7})
	_, sstats, err := RunQuery(static, replanJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := replanJoinEngine(core.Options{
		JoinAlgorithm: join.Naive, JoinBatch: 2, Seed: 7,
		Replan: core.ReplanOptions{Enabled: true, ProbeTuples: 4},
	})
	_, astats, err := RunQuery(adaptive, replanJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if astats.TotalHITs() >= sstats.TotalHITs() {
		t.Fatalf("re-plan posted %d HITs, static %d — no cut", astats.TotalHITs(), sstats.TotalHITs())
	}
	var passObserved bool
	for _, ob := range astats.ObservedStats() {
		if ob.Kind == obstats.KindPassFraction {
			passObserved = true
			if ob.Value <= 0 || ob.Value > 1 || ob.Weight <= 0 {
				t.Errorf("pass-fraction observation out of range: %+v", ob)
			}
		}
	}
	if !passObserved {
		t.Error("run recorded no pass-fraction observation")
	}
}

// TestJoinReplanKeepsNaiveUnderQualityFloor: a MinQuality above the
// grid interface's estimated quality vetoes the switch — the adaptive
// run is HIT-for-HIT the static plan.
func TestJoinReplanKeepsNaiveUnderQualityFloor(t *testing.T) {
	static := replanJoinEngine(core.Options{JoinAlgorithm: join.Naive, JoinBatch: 2, Seed: 7})
	_, sstats, err := RunQuery(static, replanJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	gated := replanJoinEngine(core.Options{
		JoinAlgorithm: join.Naive, JoinBatch: 2, Seed: 7,
		Replan: core.ReplanOptions{Enabled: true, ProbeTuples: 4, MinQuality: 0.93},
	})
	_, gstats, err := RunQuery(gated, replanJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if gstats.TotalHITs() != sstats.TotalHITs() {
		t.Errorf("quality-gated run posted %d HITs, static %d — floor did not hold",
			gstats.TotalHITs(), sstats.TotalHITs())
	}
}

// sortEngine builds a single-group 24-row ORDER BY workload.
func sortEngine(opts core.Options) *core.Engine {
	sq := dataset.NewSquares(24)
	m := crowd.NewSimMarket(crowd.DefaultConfig(5), sq.Oracle())
	e := core.NewEngine(m, opts)
	e.Catalog.Register(sq.Rel)
	e.Library.MustRegister(dataset.SquareSorterTask())
	return e
}

const replanSortQuery = `SELECT label FROM squares ORDER BY squareSorter(img)`

// TestSortReplanSwitchesToRate: the materialized group's true size
// makes rating strictly cheaper than the comparison cover; with the
// quality floor below rating's 0.78 the group switches and the run
// posts a fraction of the HITs. A floor above 0.78 blocks the switch.
func TestSortReplanSwitchesToRate(t *testing.T) {
	_, sstats, err := RunQuery(sortEngine(core.Options{Seed: 5}), replanSortQuery)
	if err != nil {
		t.Fatal(err)
	}
	out, astats, err := RunQuery(sortEngine(core.Options{
		Seed:   5,
		Replan: core.ReplanOptions{Enabled: true, MinQuality: 0.75},
	}), replanSortQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 24 {
		t.Fatalf("re-planned sort returned %d rows, want 24", out.Len())
	}
	if astats.TotalHITs() >= sstats.TotalHITs() {
		t.Fatalf("re-plan posted %d HITs, static %d — no cut", astats.TotalHITs(), sstats.TotalHITs())
	}
	_, gstats, err := RunQuery(sortEngine(core.Options{
		Seed:   5,
		Replan: core.ReplanOptions{Enabled: true, MinQuality: 0.9},
	}), replanSortQuery)
	if err != nil {
		t.Fatal(err)
	}
	if gstats.TotalHITs() != sstats.TotalHITs() {
		t.Errorf("quality-gated sort posted %d HITs, static %d — floor did not hold",
			gstats.TotalHITs(), sstats.TotalHITs())
	}
	var groupObserved bool
	for _, ob := range astats.ObservedStats() {
		if ob.Kind == obstats.KindGroupSize && ob.Value == 24 {
			groupObserved = true
		}
	}
	if !groupObserved {
		t.Error("run recorded no group-size observation of 24")
	}
}

// TestObservationsFeedEngineStore: with Engine.ObStats attached, a
// run's measured filter selectivity, worker agreement, and latency
// land in the store under the task's name.
func TestObservationsFeedEngineStore(t *testing.T) {
	store, err := obstats.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 9})
	m := crowd.NewSimMarket(crowd.DefaultConfig(9), d.Oracle())
	e := core.NewEngine(m, core.Options{Seed: 9})
	e.ObStats = store
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())
	if _, _, err := RunQuery(e, `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`); err != nil {
		t.Fatal(err)
	}
	sel, w, ok := store.Estimate("isFemale", obstats.KindSelectivity)
	if !ok || w <= 0 {
		t.Fatalf("no selectivity observation (ok=%v weight=%v)", ok, w)
	}
	if sel <= 0 || sel >= 1 {
		t.Errorf("observed selectivity %v outside (0,1)", sel)
	}
	if _, _, ok := store.Estimate("isFemale", obstats.KindAgreement); !ok {
		t.Error("no worker-agreement observation")
	}
	if _, _, ok := store.Estimate("isFemale", obstats.KindLatencyHours); !ok {
		t.Error("no latency observation")
	}
}

// TestReplanGridsServeFromAnswerStore: with a shared answer store, a
// second identical re-planned run makes the same switch and serves its
// pair and tail-grid questions from the store — posting nothing.
func TestReplanGridsServeFromAnswerStore(t *testing.T) {
	store, err := answerstore.Open("", answerstore.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	opts := core.Options{
		JoinAlgorithm: join.Naive, JoinBatch: 2, Seed: 7,
		Replan: core.ReplanOptions{Enabled: true, ProbeTuples: 4},
	}
	run := func() (string, *Stats) {
		e := replanJoinEngine(opts)
		e.Answers = store
		return runRows(t, e, replanJoinQuery)
	}
	firstRows, first := run()
	if first.TotalHITs() == 0 {
		t.Fatal("first run posted nothing; store-serve test exercises nothing")
	}
	secondRows, second := run()
	if second.TotalHITs() != 0 {
		t.Errorf("second run posted %d HITs, want 0 (all served from the store)", second.TotalHITs())
	}
	if secondRows != firstRows {
		t.Error("store-served run rows diverge from the posting run")
	}
}
