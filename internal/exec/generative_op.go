// Streaming generative operators: Generate (SELECT task(col).field —
// paper §2.2) and UnaryPossibly (pre-join POSSIBLY extraction +
// machine predicate — §2.4). Both stream their input through the
// chunked posting pipeline in stream.go; they differ only in what a
// decided tuple becomes — an extended tuple versus a filter verdict.
package exec

import (
	"context"

	"qurk/internal/combine"
	"qurk/internal/hit"
	"qurk/internal/poster"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// gslot tracks one input tuple awaiting its generated field values.
type gslot struct {
	tuple  relation.Tuple
	values map[string]string
	ready  float64
	done   bool
}

// generativeOp streams a generative task over its input. With
// PerQuestion field combiners (the default MajorityVote) each tuple's
// values resolve as its HIT chunk completes; a stateful field combiner
// makes the operator a pipeline breaker that buffers all votes.
type generativeOp struct {
	x       *executor
	child   Operator
	label   string
	groupID string
	gt      *task.Generative
	fields  []string
	norm    map[string]task.Normalizer
	comb    map[string]combine.Combiner
	perQ    bool
	hitSize int

	// possibly-mode predicate: emit input tuples where
	// values[field] op value holds; nil schemaOut means possibly mode.
	possiblyField, possiblyOp, possiblyValue string
	schemaOut                                *relation.Schema

	builder *hit.Builder
	post    *poster.Poster
	acct    *opAcct
	seq     int
	qbuf    []hit.Question
	slots   []*gslot
	slotOf  map[string]int
	// asked gates answer-store lookups by question content: each
	// distinct content is looked up once per run, at first mint, so
	// store-hit behavior never depends on chunk collection timing (see
	// answers.go).
	asked  map[uint64]bool
	emit   emitQueue
	emitAt int
	clock  float64
	eos    bool
	closed bool
	done   bool
	final  bool
	// eosVotes buffers per-field votes (in question order) for
	// stateful combiners.
	eosVotes map[string][]combine.Vote
}

func (g *generativeOp) Schema() *relation.Schema {
	if g.schemaOut != nil {
		return g.schemaOut
	}
	return g.child.Schema()
}
func (g *generativeOp) Name() string       { return g.child.Name() }
func (g *generativeOp) OpLabel() string    { return g.label }
func (g *generativeOp) Inputs() []Operator { return []Operator{g.child} }

// Breakers implements BreakerDetail when any field combiner is
// stateful; BreakerNote is the free-text rendering.
func (g *generativeOp) Breakers() []BreakerInfo {
	if !g.perQ {
		return []BreakerInfo{{
			Kind: BreakerVoteBuffer,
			Note: "buffers all field votes for a stateful combiner",
		}}
	}
	return nil
}

// BreakerNote implements Breaker.
func (g *generativeOp) BreakerNote() string { return breakerNote(g.Breakers()) }

// finalReady includes tuples the POSSIBLY predicate rejected.
func (g *generativeOp) finalReady() float64 {
	r := g.emit.ready
	if cr := readyOf(g.child); cr > r {
		r = cr
	}
	return r
}

func (g *generativeOp) Close() {
	if !g.closed {
		g.closed = true
		g.child.Close()
	}
}

func (g *generativeOp) Next(ctx context.Context) (*Batch, error) {
	for {
		for g.emitAt < len(g.slots) && g.slots[g.emitAt].done {
			s := g.slots[g.emitAt]
			if err := g.release(s); err != nil {
				return nil, err
			}
			g.slots[g.emitAt] = nil
			g.emitAt++
		}
		if !g.emit.empty() {
			return g.emit.pop(g.Schema()), nil
		}
		if g.done {
			return nil, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := g.step(ctx); err != nil {
			return nil, err
		}
	}
}

// release turns one decided slot into downstream output.
func (g *generativeOp) release(s *gslot) error {
	if g.schemaOut == nil {
		// POSSIBLY: UNKNOWN (and absent) extractions never prune (§2.4).
		pass, err := comparePossibly(s.values[g.possiblyField], g.possiblyOp, g.possiblyValue)
		if err != nil {
			return err
		}
		if pass {
			g.emit.push(s.tuple, s.ready)
		} else {
			g.emit.advance(s.ready)
		}
		return nil
	}
	vals := make([]relation.Value, 0, g.schemaOut.Len())
	for c := 0; c < s.tuple.Len(); c++ {
		vals = append(vals, s.tuple.At(c))
	}
	for _, fname := range g.fields {
		v := s.values[fname]
		if v == "UNKNOWN" {
			vals = append(vals, relation.Unknown())
		} else {
			vals = append(vals, relation.Text(v))
		}
	}
	t, err := relation.NewTuple(g.schemaOut, vals...)
	if err != nil {
		return err
	}
	g.emit.push(t, s.ready)
	return nil
}

func (g *generativeOp) step(ctx context.Context) error {
	for g.post.CanPost() && g.post.HasChunk(g.eos) {
		g.post.PostOne(g.clock)
	}
	if !g.eos && !g.closed && !g.post.Backlogged() {
		in, err := g.child.Next(ctx)
		if err != nil {
			return err
		}
		if in == nil {
			g.eos = true
			return g.flushHIT(true)
		}
		if in.Ready > g.clock {
			g.clock = in.Ready
		}
		for _, t := range in.Rows() {
			slotIdx := len(g.slots)
			g.slots = append(g.slots, &gslot{tuple: t, values: map[string]string{}, ready: in.Ready})
			q := hit.Question{
				ID:     hit.MintID(g.groupID, "t", slotIdx, 5),
				Kind:   hit.GenerativeQ,
				Task:   g.gt.Name,
				Tuple:  t,
				Fields: g.fields,
			}
			g.slotOf[q.ID] = slotIdx
			if !g.asked[q.CacheKey()] {
				g.asked[q.CacheKey()] = true
				as, ok, err := g.x.answersLookup(&q, in.Ready)
				if err != nil {
					return err
				}
				if ok {
					if err := g.resolveQ(&q, as, in.Ready); err != nil {
						return err
					}
					continue
				}
			}
			g.qbuf = append(g.qbuf, q)
			if err := g.flushHIT(false); err != nil {
				return err
			}
		}
		return nil
	}
	if g.post.OldestSeq() >= 0 {
		return g.collectChunk(ctx)
	}
	if (g.eos || g.closed) && !g.final {
		if err := g.finalize(); err != nil {
			return err
		}
	}
	g.done = true
	return nil
}

func (g *generativeOp) flushHIT(force bool) error {
	return g.post.FlushQuestions(g.builder, &g.qbuf, g.hitSize, force)
}

// collectChunk awaits the oldest chunk and resolves each of its
// questions; the poster re-posts refused and expired HITs within their
// retry budgets and keeps those questions pending for a later chunk,
// merging an expired HIT's partial answers (un-normalized, in lineage
// order) when its retry resolves.
func (g *generativeOp) collectChunk(ctx context.Context) error {
	_, err := g.post.CollectOne(ctx, func(q *hit.Question, as []hit.CachedAnswer, done float64) error {
		g.x.answersStore(q, as)
		return g.resolveQ(q, as, done)
	})
	return err
}

// resolveQ folds one resolved question's answers into its slot
// (PerQuestion path) or the EOS vote buffers. Both the poster's collect
// callback and an answer-store hit at mint time resolve through here.
func (g *generativeOp) resolveQ(q *hit.Question, as []hit.CachedAnswer, done float64) error {
	s := g.slots[g.slotOf[q.ID]]
	if !g.perQ {
		for _, fname := range g.fields {
			g.eosVotes[fname] = append(g.eosVotes[fname], g.fieldVotes(q.ID, fname, as)...)
		}
		return nil
	}
	for _, fname := range g.fields {
		vs := g.fieldVotes(q.ID, fname, as)
		val := ""
		if len(vs) > 0 {
			decisions, cerr := g.comb[fname].Combine(vs)
			if cerr != nil {
				return cerr
			}
			val = decisions[q.ID].Value
		}
		s.values[fname] = val
	}
	s.done = true
	if done > s.ready {
		s.ready = done
	}
	return nil
}

// fieldVotes normalizes one field's answers out of a question's raw
// assignment run.
func (g *generativeOp) fieldVotes(qid, fname string, as []hit.CachedAnswer) []combine.Vote {
	var vs []combine.Vote
	for _, ca := range as {
		raw, ok := ca.Answer.Fields[fname]
		if !ok {
			continue
		}
		vs = append(vs, combine.Vote{Question: qid, Worker: ca.WorkerID, Value: g.norm[fname](raw)})
	}
	return vs
}

// finalize resolves every slot with one combine per field over all
// buffered votes (stateful-combiner path). Combine errors fail the
// query, matching the materializing executor.
func (g *generativeOp) finalize() error {
	g.final = true
	if g.perQ {
		return nil
	}
	doneAt := g.clock
	if g.acct.lastDone > doneAt {
		doneAt = g.acct.lastDone
	}
	decisions := map[string]map[string]combine.Decision{}
	for _, fname := range g.fields {
		d, err := g.comb[fname].Combine(g.eosVotes[fname])
		if err != nil {
			return err
		}
		decisions[fname] = d
	}
	for i, s := range g.slots {
		if s == nil || s.done {
			continue
		}
		qid := hit.MintID(g.groupID, "t", i, 5)
		for _, fname := range g.fields {
			s.values[fname] = decisions[fname][qid].Value
		}
		s.done = true
		if doneAt > s.ready {
			s.ready = doneAt
		}
	}
	return nil
}
