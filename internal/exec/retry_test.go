package exec

// Regression tests for the operator-level refused-HIT retry policy.
// Before it existed, questions on refused HITs (batch too effortful
// for the price) resolved with zero votes and their tuples were
// silently rejected — a whole query could return empty because the
// batch size was one notch too big.

import (
	"strings"
	"testing"

	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
)

// refusingMarket returns a simulator that refuses HITs above the given
// effort (default filter batches of 5 exceed 3; single questions pass).
func refusingMarket(seed int64, oracle crowd.Oracle, refusalEffort float64) *crowd.SimMarket {
	cfg := crowd.DefaultConfig(seed)
	cfg.RefusalEffort = refusalEffort
	return crowd.NewSimMarket(cfg, oracle)
}

// TestRefusedFilterRetriesAtSmallerBatch: the silent-drop case. A
// batch-5 filter HIT exceeds the refusal threshold; the retry policy
// re-posts its questions at half batch until workers accept, so the
// query still answers.
func TestRefusedFilterRetriesAtSmallerBatch(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 5})
	e := core.NewEngine(refusingMarket(5, d.Oracle(), 3), core.Options{})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())

	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("every tuple silently rejected: retry policy did not re-post refused HITs")
	}
	if len(stats.Incomplete) != 0 {
		t.Errorf("retried questions should not be reported incomplete: %v", stats.Incomplete)
	}
	// The original 4 batch-5 HITs were all refused; the retries add
	// their re-posted, smaller HITs on top.
	if stats.TotalHITs() <= 4 {
		t.Errorf("TotalHITs = %d, want > 4 (refused originals plus retries)", stats.TotalHITs())
	}
}

// TestRefusedRetriesDisabled: RefusedRetries = -1 restores the old
// silent-drop behavior (documented opt-out).
func TestRefusedRetriesDisabled(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 5})
	e := core.NewEngine(refusingMarket(5, d.Oracle(), 3), core.Options{RefusedRetries: -1})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())

	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("with retries disabled every batch-5 HIT is refused; got %d rows", out.Len())
	}
	if len(stats.Incomplete) == 0 {
		t.Error("refused HITs must still be reported incomplete")
	}
}

// TestRefusedRetriesExhaust: when even single-question HITs are
// refused, the retry budget bounds the spend, the query terminates,
// and the loss is surfaced via Stats.Incomplete instead of silently.
func TestRefusedRetriesExhaust(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 10, Seed: 6})
	e := core.NewEngine(refusingMarket(6, d.Oracle(), 0.5), core.Options{})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())

	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("nothing can complete, got %d rows", out.Len())
	}
	if len(stats.Incomplete) == 0 {
		t.Error("exhausted questions must appear in Stats.Incomplete")
	}
	for _, id := range stats.Incomplete {
		if !strings.Contains(id, "filter/isFemale") {
			t.Errorf("incomplete entry %q does not name the filter's questions", id)
		}
	}
}

// TestRetryChunkSizeInvariance: retried HITs mint their IDs from the
// refused HIT's lineage, never the shared builder, so the executor's
// bit-identical invariance across StreamChunkHITs/lookahead survives
// refusals (the simulator's answers are keyed on hash(seed, groupID,
// hitID); builder-sequenced IDs would vary with collection order).
func TestRetryChunkSizeInvariance(t *testing.T) {
	run := func(chunk, lookahead int) (string, int, float64) {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 40, Seed: 8})
		e := core.NewEngine(refusingMarket(8, d.Oracle(), 3),
			core.Options{StreamChunkHITs: chunk, StreamLookahead: lookahead})
		e.Catalog.Register(d.Celeb)
		e.Library.MustRegister(dataset.IsFemaleTask())
		out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
		if err != nil {
			t.Fatal(err)
		}
		var names strings.Builder
		for i := 0; i < out.Len(); i++ {
			names.WriteString(out.Row(i).MustGet("name").String())
			names.WriteByte('\n')
		}
		return names.String(), stats.TotalHITs(), stats.PipelineMakespanHours
	}
	baseRows, baseHITs, _ := run(8, 2)
	if baseRows == "" {
		t.Fatal("refusing run returned nothing; retry policy inactive")
	}
	for _, cfg := range [][2]int{{1, 2}, {3, 1}, {16, 4}} {
		rows, hits, _ := run(cfg[0], cfg[1])
		if rows != baseRows {
			t.Errorf("chunk=%d lookahead=%d: result rows differ from chunk=8 baseline", cfg[0], cfg[1])
		}
		if hits != baseHITs {
			t.Errorf("chunk=%d lookahead=%d: %d HITs vs baseline %d", cfg[0], cfg[1], hits, baseHITs)
		}
	}
}

// TestRetryMakespanAfterRefusal: retried chunks cannot be posted
// before the refusal was observed, so a retrying run's pipeline
// makespan strictly exceeds a non-refusing run of the same shape.
func TestRetryMakespanAfterRefusal(t *testing.T) {
	build := func(refusalEffort float64) (*core.Engine, string) {
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 40, Seed: 8})
		e := core.NewEngine(refusingMarket(8, d.Oracle(), refusalEffort), core.Options{})
		e.Catalog.Register(d.Celeb)
		e.Library.MustRegister(dataset.IsFemaleTask())
		return e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`
	}
	e, q := build(3) // batch-5 HITs refused, retries fire
	_, retried, err := RunQuery(e, q)
	if err != nil {
		t.Fatal(err)
	}
	e2, q2 := build(30) // nothing refused
	_, clean, err := RunQuery(e2, q2)
	if err != nil {
		t.Fatal(err)
	}
	if retried.PipelineMakespanHours <= clean.PipelineMakespanHours {
		t.Errorf("retry round trips must extend the makespan: retried %.4fh vs clean %.4fh",
			retried.PipelineMakespanHours, clean.PipelineMakespanHours)
	}
}

// TestRefusedJoinRetries: the join's pair batches shrink on refusal
// too, so a NaiveBatch size one notch too big no longer empties the
// join result.
func TestRefusedJoinRetries(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 6, Seed: 7})
	e := core.NewEngine(refusingMarket(7, d.Oracle(), 3), core.Options{JoinAlgorithm: join.Naive, JoinBatch: 5})
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(dataset.SamePersonTask())

	out, stats, err := RunQuery(e, `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("join emptied by refused batches: retry policy not applied on the join path")
	}
	if len(stats.Incomplete) != 0 {
		t.Errorf("unexpected incompletes: %v", stats.Incomplete)
	}
}
