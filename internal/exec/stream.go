// This file implements the streaming crowd filter operators plus the
// per-operator accounting glue around the shared chunked posting
// pipeline (internal/poster). The shape every streaming crowd operator
// follows:
//
//	pull input batch → mint questions (stable ordinal IDs) → fill
//	fixed-size HITs → post fixed-size HIT chunks asynchronously with
//	bounded lookahead → as chunks complete, combine votes and release
//	decided tuples downstream in input order.
//
// Determinism: the HIT a question lands in depends only on its input
// ordinal and the configured batch size, and the sub-group a HIT is
// posted in depends only on its index and Options.StreamChunkHITs —
// never on arrival timing (see internal/poster for the full contract).
// Combiners marked combine.PerQuestion are applied chunk-by-chunk
// (provably equivalent to one combine over all votes); any other
// combiner turns the operator into a pipeline breaker that buffers all
// votes — O(input) memory — and decides at end of stream.
package exec

import (
	"context"
	"fmt"

	"qurk/internal/combine"
	"qurk/internal/hit"
	"qurk/internal/obstats"
	"qurk/internal/poster"
	"qurk/internal/relation"
	"qurk/internal/stats"
	"qurk/internal/task"
)

// opAcct accumulates one operator's chunked spending into its
// pre-registered Stats slot and the engine ledger; it implements
// poster.Acct. HITs and dollars are accounted when a chunk is POSTED —
// posted crowd work is spent whether or not anyone waits for it, so a
// LIMIT short-circuit or a cancellation that abandons in-flight chunks
// still shows their cost in TotalHITs and the ledger. Assignments and
// makespan arrive at collection. Makespan is the operator's span on
// the virtual clock: last chunk completion minus first chunk post
// (equal to the single group makespan when the whole operator fit in
// one chunk — the materializing executor's number).
type opAcct struct {
	x     *executor
	label string
	// asn is this operator's workers-per-HIT (the physical plan may set
	// it per operator; the ledger prices dollars with it).
	asn        int
	slot       int
	started    bool
	firstPost  float64
	lastDone   float64
	hits, asns int
	expired    int
}

// Posted accounts a chunk the moment it goes to the marketplace. Each
// HIT is billed at its OWN assignment count — an expiry re-post
// requests only the missing assignments, so pricing it at the
// operator's full level would overstate the ledger.
func (a *opAcct) Posted(chunk []*hit.HIT, postedAt float64) {
	if !a.started || postedAt < a.firstPost {
		a.firstPost = postedAt
		a.started = true
	}
	a.hits += len(chunk)
	atLevel := 0
	for _, h := range chunk {
		if h.Assignments == a.asn {
			atLevel++
		} else {
			a.x.eng.Ledger.Add(a.label, 1, h.Assignments)
		}
	}
	if atLevel > 0 {
		a.x.eng.Ledger.Add(a.label, atLevel, a.asn)
	}
	a.x.stats.setSlot(a.slot, a.hits, a.asns, a.expired, a.span(), nil)
}

// Collected folds in a completed chunk's assignment and expiry counts
// and timing.
func (a *opAcct) Collected(assignments, expired int, done float64, incomplete []string) {
	if done > a.lastDone {
		a.lastDone = done
	}
	a.asns += assignments
	a.expired += expired
	a.x.stats.setSlot(a.slot, a.hits, a.asns, a.expired, a.span(), incomplete)
}

// span is the operator's virtual-clock busy span so far; zero until a
// chunk completes (posted-but-uncollected chunks have spent HITs but
// no observable makespan yet).
func (a *opAcct) span() float64 {
	if s := a.lastDone - a.firstPost; s > 0 {
		return s
	}
	return 0
}

// qVotes is one question's resolved votes, kept in question order so
// end-of-stream combiners see a deterministic vote sequence.
type qVotes struct {
	slot  int
	qid   string
	votes []combine.Vote
}

// --- Crowd filter (single task and OR of tasks) ---

// fslot tracks one input tuple through the filter: how many unique
// branches have yet to rule on it, whether any branch accepted it, and
// when its decision completed on the virtual clock.
type fslot struct {
	tuple    relation.Tuple
	pending  int
	accepted bool
	ready    float64
}

// filterBranch is one disjunct: its own HIT group, builder, combiner,
// and posting pipeline over the shared input ordinals.
type filterBranch struct {
	idx     int
	ft      *task.Filter
	negate  bool
	groupID string
	comb    combine.Combiner
	perQ    bool
	builder *hit.Builder
	post    *poster.Poster
	acct    *opAcct
	dupOf   int // branch index this one mirrors; == idx when unique
	// asked tracks question content this branch has already posted in
	// THIS run. Later duplicate rows post independently instead of
	// replaying whatever the earlier chunk may (or may not yet) have
	// stored in the task cache — cache-hit behavior must not depend on
	// chunk collection timing, or results would vary with
	// StreamChunkHITs. Matches the materializing executor, which did
	// all lookups before any store.
	asked map[uint64]bool
	qbuf  []hit.Question
	// eosVotes/eosSlots buffer votes for non-PerQuestion combiners,
	// which need the full vote matrix in one Combine call.
	eosVotes []combine.Vote
	eosSlots []qVotes
	// agreeSum/agreeN accumulate per-question worker-agreement shares
	// (stats.MajorityShare) for the observed-statistics feedback.
	agreeSum float64
	agreeN   int
}

func (br *filterBranch) accepts(d combine.Decision, ok bool) bool {
	if !ok {
		return false
	}
	if br.negate {
		return d.Value == "no"
	}
	return d.Value == "yes"
}

// crowdFilterOp streams a crowd filter: a plain CrowdFilter is the
// one-branch case, CrowdFilterOr the general case with branch HIT
// groups posted in parallel (paper §2.5: disjuncts run concurrently).
// A tuple is released downstream once every unique branch has ruled,
// accepted if any branch (after per-branch negation) said yes.
// Duplicate disjuncts (same task, same negation) post once and share
// the verdict.
type crowdFilterOp struct {
	x       *executor
	child   Operator
	label   string
	branch  []*filterBranch
	uniq    []*filterBranch // branches that actually post (dupOf == idx)
	hitSize int
	seq     int
	slots   []*fslot
	slotOf  map[string]int // question ID → slot index (all branches)
	emit    emitQueue
	emitAt  int
	clock   float64 // max input Ready ingested so far
	eos     bool
	closed  bool
	done    bool
	final   bool
	// decidedN/acceptedN count released verdicts for the
	// observed-selectivity feedback; observed latches the one-time feed.
	decidedN  int
	acceptedN int
	observed  bool
}

func (f *crowdFilterOp) Schema() *relation.Schema { return f.child.Schema() }
func (f *crowdFilterOp) Name() string             { return f.child.Name() }
func (f *crowdFilterOp) OpLabel() string          { return f.label }
func (f *crowdFilterOp) Inputs() []Operator       { return []Operator{f.child} }

// Breakers implements BreakerDetail when a stateful combiner forces
// buffering; Describe skips the operator otherwise.
func (f *crowdFilterOp) Breakers() []BreakerInfo {
	for _, br := range f.uniq {
		if !br.perQ {
			return []BreakerInfo{{
				Kind: BreakerVoteBuffer,
				Note: fmt.Sprintf("buffers all votes for %s", br.comb.Name()),
			}}
		}
	}
	return nil
}

// BreakerNote implements Breaker.
func (f *crowdFilterOp) BreakerNote() string { return breakerNote(f.Breakers()) }

// finalReady includes rejected tuples' decision times (emitQueue
// tracks them via advance) and anything the child decided upstream.
func (f *crowdFilterOp) finalReady() float64 {
	r := f.emit.ready
	if cr := readyOf(f.child); cr > r {
		r = cr
	}
	return r
}

func (f *crowdFilterOp) Close() {
	if !f.closed {
		f.closed = true
		f.child.Close()
	}
}

func (f *crowdFilterOp) Next(ctx context.Context) (*Batch, error) {
	for {
		// Release the longest decided prefix in input order.
		for f.emitAt < len(f.slots) && f.slots[f.emitAt].pending == 0 {
			s := f.slots[f.emitAt]
			f.decidedN++
			if s.accepted {
				f.acceptedN++
				f.emit.push(s.tuple, s.ready)
			} else {
				f.emit.advance(s.ready)
			}
			f.slots[f.emitAt] = nil
			f.emitAt++
		}
		if !f.emit.empty() {
			return f.emit.pop(f.Schema()), nil
		}
		if f.done {
			if !f.observed {
				f.observed = true
				f.observeRun()
			}
			return nil, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := f.step(ctx); err != nil {
			return nil, err
		}
	}
}

// step advances the pipeline by one action: post anything postable,
// then either ingest another input batch or collect the oldest
// in-flight chunk. Every choice is driven by counts, never timing.
func (f *crowdFilterOp) step(ctx context.Context) error {
	uniq := f.uniq
	backlogged := false
	for _, br := range uniq {
		for br.post.CanPost() && br.post.HasChunk(f.eos) {
			br.post.PostOne(f.clock)
		}
		if br.post.Backlogged() {
			backlogged = true
		}
	}
	// Ingest unless a branch needs a collect to drain its backlog.
	if !f.eos && !f.closed && !backlogged {
		in, err := f.child.Next(ctx)
		if err != nil {
			return err
		}
		if in == nil {
			f.eos = true
			for _, br := range uniq {
				if err := br.flushHIT(f.hitSize, true); err != nil {
					return err
				}
			}
			return nil
		}
		if in.Ready > f.clock {
			f.clock = in.Ready
		}
		return f.ingest(in)
	}
	// Collect the globally oldest in-flight chunk.
	var oldest *filterBranch
	for _, br := range uniq {
		if s := br.post.OldestSeq(); s >= 0 && (oldest == nil || s < oldest.post.OldestSeq()) {
			oldest = br
		}
	}
	if oldest != nil {
		return f.collectChunk(ctx, oldest)
	}
	// Nothing in flight, nothing left to ingest: finalize and finish.
	if (f.eos || f.closed) && !f.final {
		if err := f.finalize(); err != nil {
			return err
		}
	}
	f.done = true
	return nil
}

// flushHIT merges the branch's buffered questions into HITs once full
// (or unconditionally at end of input).
func (br *filterBranch) flushHIT(size int, force bool) error {
	return br.post.FlushQuestions(br.builder, &br.qbuf, size, force)
}

// ingest mints one question per tuple per unique branch, answering
// from the task cache where possible.
func (f *crowdFilterOp) ingest(in *Batch) error {
	for _, t := range in.Rows() {
		slotIdx := len(f.slots)
		s := &fslot{tuple: t, ready: in.Ready}
		f.slots = append(f.slots, s)
		for _, br := range f.branch {
			if br.dupOf != br.idx {
				continue
			}
			s.pending++
			q := hit.Question{
				ID:    hit.MintID(br.groupID, "t", slotIdx, 5),
				Kind:  hit.FilterQ,
				Task:  br.ft.Name,
				Tuple: t,
			}
			if !br.asked[q.CacheKey()] {
				// Per-run task cache first, then the shared cross-query
				// answer store.
				cached, ok := []hit.CachedAnswer(nil), false
				if f.x.eng.Cache != nil {
					cached, ok = f.x.eng.Cache.Lookup(&q)
				}
				if !ok {
					var err error
					cached, ok, err = f.x.answersLookup(&q, in.Ready)
					if err != nil {
						return err
					}
				}
				if ok {
					votes := make([]combine.Vote, 0, len(cached))
					for _, ca := range cached {
						votes = append(votes, combine.Vote{Question: q.ID, Worker: ca.WorkerID, Value: combine.BoolVote(ca.Answer.Bool)})
					}
					if err := f.applyBranchVotes(br, []qVotes{{slot: slotIdx, qid: q.ID, votes: votes}}, in.Ready); err != nil {
						return err
					}
					continue
				}
			}
			f.slotOf[q.ID] = slotIdx
			br.asked[q.CacheKey()] = true
			br.qbuf = append(br.qbuf, q)
			if err := br.flushHIT(f.hitSize, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyBranchVotes resolves one branch's verdicts for a run of
// questions (PerQuestion path) or defers them to finalize (EOS path).
// Combine errors fail the query, as they did under the materializing
// executor — an empty decision map would silently reject everything.
func (f *crowdFilterOp) applyBranchVotes(br *filterBranch, list []qVotes, done float64) error {
	for _, qv := range list {
		if len(qv.votes) == 0 {
			continue
		}
		vals := make([]string, len(qv.votes))
		for i, v := range qv.votes {
			vals[i] = v.Value
		}
		if share, _, ok := stats.MajorityShare(vals); ok {
			br.agreeSum += share
			br.agreeN++
		}
	}
	if !br.perQ {
		for _, qv := range list {
			br.eosVotes = append(br.eosVotes, qv.votes...)
			br.eosSlots = append(br.eosSlots, qVotes{slot: qv.slot, qid: qv.qid})
		}
		return nil
	}
	for _, qv := range list {
		s := f.slots[qv.slot]
		if len(qv.votes) > 0 {
			decisions, err := br.comb.Combine(qv.votes)
			if err != nil {
				return err
			}
			d, ok := decisions[qv.qid]
			if br.accepts(d, ok) {
				s.accepted = true
			}
		}
		s.pending--
		if done > s.ready {
			s.ready = done
		}
	}
	return nil
}

// collectChunk awaits a branch's oldest chunk, re-posts refused and
// expired HITs' questions within their retry budgets, and applies the
// resolved votes.
func (f *crowdFilterOp) collectChunk(ctx context.Context, br *filterBranch) error {
	_, err := br.post.CollectOne(ctx, func(q *hit.Question, as []hit.CachedAnswer, done float64) error {
		if f.x.eng.Cache != nil && len(as) > 0 {
			// Voteless questions (refused HITs) must not poison the
			// cache: a stored empty entry would make every later
			// identical question resolve to rejection without ever
			// reaching the crowd. Questions deferred to an expiry retry
			// never reach this callback and store their merged vote set
			// when the retry resolves.
			f.x.eng.Cache.Store(q, as)
		}
		f.x.answersStore(q, as)
		votes := make([]combine.Vote, 0, len(as))
		for _, ca := range as {
			votes = append(votes, combine.Vote{Question: q.ID, Worker: ca.WorkerID, Value: combine.BoolVote(ca.Answer.Bool)})
		}
		return f.applyBranchVotes(br, []qVotes{{slot: f.slotOf[q.ID], qid: q.ID, votes: votes}}, done)
	})
	return err
}

// finalize resolves EOS-mode branches with one combine over all their
// votes, then finishes any slots they still owe.
func (f *crowdFilterOp) finalize() error {
	f.final = true
	doneAt := f.clockDone()
	for _, br := range f.branch {
		if br.dupOf != br.idx || br.perQ {
			continue
		}
		decisions, err := br.comb.Combine(br.eosVotes)
		if err != nil {
			return err
		}
		for _, qv := range br.eosSlots {
			s := f.slots[qv.slot]
			d, ok := decisions[qv.qid]
			if br.accepts(d, ok) {
				s.accepted = true
			}
			s.pending--
			if doneAt > s.ready {
				s.ready = doneAt
			}
		}
	}
	return nil
}

// observeRun feeds the filter's measured statistics to the run's Stats
// and the engine's history store, once, after the last verdict is
// released: the observed selectivity (single-branch filters only — an
// OR's combined verdict cannot be attributed to one task), and each
// unique branch's worker agreement and crowd latency.
func (f *crowdFilterOp) observeRun() {
	if len(f.uniq) == 1 && f.decidedN > 0 {
		f.x.observe(f.label, f.uniq[0].ft.Name, obstats.KindSelectivity,
			float64(f.acceptedN)/float64(f.decidedN), float64(f.decidedN))
	}
	for _, br := range f.uniq {
		if br.agreeN > 0 {
			f.x.observe(f.label, br.ft.Name, obstats.KindAgreement,
				br.agreeSum/float64(br.agreeN), float64(br.agreeN))
		}
		if span := br.acct.span(); span > 0 && br.acct.hits > 0 {
			f.x.observe(f.label, br.ft.Name, obstats.KindLatencyHours, span, float64(br.acct.hits))
		}
	}
}

// clockDone is the operator's last chunk completion time: EOS-mode
// decisions become available only once every chunk is collected.
func (f *crowdFilterOp) clockDone() float64 {
	t := f.clock
	for _, br := range f.branch {
		if br.dupOf == br.idx && br.acct.lastDone > t {
			t = br.acct.lastDone
		}
	}
	return t
}
