// This file implements the streaming crowd filter operators plus the
// chunked HIT posting pipeline (poster) shared by every streaming
// crowd operator. The shape is:
//
//	pull input batch → mint questions (stable ordinal IDs) → fill
//	fixed-size HITs → post fixed-size HIT chunks asynchronously with
//	bounded lookahead → as chunks complete, combine votes and release
//	decided tuples downstream in input order.
//
// Determinism: the HIT a question lands in depends only on its input
// ordinal and the configured batch size, and the sub-group a HIT is
// posted in depends only on its index and Options.StreamChunkHITs —
// never on arrival timing. All sub-groups of one operator share its
// plan-path group ID, so the simulator's hash(seed, groupID, hitID)
// answer streams are identical no matter how the posting is sliced.
// Combiners marked combine.PerQuestion are applied chunk-by-chunk
// (provably equivalent to one combine over all votes); any other
// combiner turns the operator into a pipeline breaker that buffers all
// votes — O(input) memory — and decides at end of stream.
package exec

import (
	"context"
	"fmt"

	"qurk/internal/combine"
	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// postedChunk is one sub-group of HITs in flight on the marketplace.
type postedChunk struct {
	hits     []*hit.HIT
	ch       <-chan crowd.Async
	postedAt float64 // virtual-clock hours when its inputs were ready
	seq      int     // global post order, for deterministic collection
}

// poster slices one logical HIT group into fixed-size runs and posts
// each run as its own marketplace call, keeping at most `lookahead`
// runs in flight. Collection is FIFO per poster.
type poster struct {
	market    crowd.Marketplace
	groupID   string
	chunkHITs int
	lookahead int
	seq       *int
	acct      *opAcct
	queued    []*hit.HIT
	inflight  []postedChunk
	// maxRetries bounds how deep a refused HIT's re-posting lineage may
	// go; retries maps a re-minted HIT's ID to its depth.
	maxRetries int
	retries    map[string]int
	// maxExpired bounds how deep an expired HIT's re-posting lineage may
	// go (assignment accepted but never submitted); xretries maps a
	// re-minted HIT's ID to its expiry-lineage depth, and lineageAsns
	// carries the completed-assignment count down a lineage so
	// exhaustion can tell "partially answered" from "never answered".
	maxExpired  int
	xretries    map[string]int
	lineageAsns map[string]int
	// carry stashes the partial answers of questions whose HIT is being
	// re-posted after an expiry, keyed by question ID, until the retry
	// resolves and the vote sets merge. (Refusal retries have nothing to
	// stash: a refused HIT produced zero assignments.)
	carry map[string][]hit.CachedAnswer
	// minClock floors the postedAt stamp of subsequent chunks: a chunk
	// holding retried HITs cannot be posted before the refusal (or
	// expiry) that spawned them was observed on the virtual clock.
	minClock float64
}

func (p *poster) enqueue(hs ...*hit.HIT) { p.queued = append(p.queued, hs...) }

// hasChunk reports whether a full chunk is ready (or, when forcing at
// end of stream, any queued HITs remain).
func (p *poster) hasChunk(force bool) bool {
	return len(p.queued) >= p.chunkHITs || (force && len(p.queued) > 0)
}

func (p *poster) canPost() bool { return len(p.inflight) < p.lookahead }

// backlogged means the poster cannot accept more work until a collect.
func (p *poster) backlogged() bool { return len(p.queued) >= p.chunkHITs && !p.canPost() }

// postOne posts the next chunk at the given virtual-clock time.
func (p *poster) postOne(clock float64) {
	if p.minClock > clock {
		clock = p.minClock
	}
	n := p.chunkHITs
	if n > len(p.queued) {
		n = len(p.queued)
	}
	chunk := p.queued[:n:n]
	p.queued = p.queued[n:]
	*p.seq++
	p.inflight = append(p.inflight, postedChunk{
		hits:     chunk,
		ch:       p.market.RunAsync(&hit.Group{ID: p.groupID, HITs: chunk}),
		postedAt: clock,
		seq:      *p.seq,
	})
	if p.acct != nil {
		p.acct.posted(chunk, clock)
	}
}

// oldestSeq returns the post sequence of the oldest in-flight chunk,
// or -1 when nothing is in flight.
func (p *poster) oldestSeq() int {
	if len(p.inflight) == 0 {
		return -1
	}
	return p.inflight[0].seq
}

// collect awaits the oldest in-flight chunk.
func (p *poster) collect(ctx context.Context) (postedChunk, *crowd.RunResult, error) {
	c := p.inflight[0]
	p.inflight = p.inflight[1:]
	res, err := crowd.Await(ctx, c.ch)
	if err != nil {
		return c, nil, err
	}
	return c, res, nil
}

// retryRefused implements the operator-level retry policy for refused
// HITs (batch too effortful for the price — the paper's stalled
// group-size experiments, §4.2.2/§6): each refused HIT's questions are
// re-minted into HITs of half the batch size and queued for
// re-posting, down a lineage at most maxRetries deep. Re-minted HIT
// IDs derive from the refused HIT's ID — never from the shared
// builder — so the retry stream (and the simulator's per-HIT answer
// draws) is bit-identical at any StreamChunkHITs/lookahead setting,
// preserving the executor's invariance contract.
//
// It returns how many occurrences of each question ID are now being
// retried — the caller must skip resolving exactly that many
// occurrences in this chunk (join pair keys can repeat across HITs) —
// and the exhausted questions' IDs, which resolve with zero votes
// (the only case that still rejects, now surfaced via
// Stats.Incomplete instead of silently). Single-question HITs
// (including SmartBatch grids) cannot shrink and exhaust immediately.
// observedAt is the virtual-clock time the refusal was learned; later
// chunks cannot be posted before it.
func (p *poster) retryRefused(c postedChunk, incomplete []string, observedAt float64) (map[string]int, []string, error) {
	if len(incomplete) == 0 {
		return nil, nil, nil
	}
	refused := make(map[string]bool, len(incomplete))
	for _, id := range incomplete {
		refused[id] = true
	}
	var retrying map[string]int
	var exhausted []string
	for _, h := range c.hits {
		if !refused[h.ID] {
			continue
		}
		depth := p.retries[h.ID]
		if p.maxRetries <= 0 || len(h.Questions) <= 1 || depth >= p.maxRetries {
			for qi := range h.Questions {
				exhausted = append(exhausted, h.Questions[qi].ID)
			}
			continue
		}
		n := len(h.Questions) / 2
		for start, child := 0, 0; start < len(h.Questions); start, child = start+n, child+1 {
			end := min(start+n, len(h.Questions))
			nh := &hit.HIT{
				ID:          fmt.Sprintf("%s/r%d", h.ID, child),
				GroupID:     h.GroupID,
				Kind:        h.Kind,
				Assignments: h.Assignments,
				RewardCents: h.RewardCents,
				Questions:   append([]hit.Question(nil), h.Questions[start:end]...),
			}
			if err := nh.Validate(); err != nil {
				return nil, nil, err
			}
			if p.retries == nil {
				p.retries = map[string]int{}
			}
			p.retries[nh.ID] = depth + 1
			p.enqueue(nh)
		}
		if retrying == nil {
			retrying = map[string]int{}
		}
		for qi := range h.Questions {
			retrying[h.Questions[qi].ID]++
		}
	}
	if retrying != nil && observedAt > p.minClock {
		p.minClock = observedAt
	}
	return retrying, exhausted, nil
}

// retryExpired implements the assignment-timeout policy for HITs whose
// assignments were accepted but never submitted (the ROADMAP's
// accepted-but-never-completed case, which a live marketplace surfaces
// as assignment expiration): each such HIT is re-posted with the SAME
// questions but only the missing assignment count, down a lineage at
// most maxExpired deep. Re-minted HIT IDs derive from the expired HIT's
// ID ("<id>/x<depth>") — never from the shared builder — so, exactly as
// with refusal retries, the retry stream is bit-identical at any
// StreamChunkHITs/lookahead setting.
//
// It returns how many occurrences of each question ID are deferred to
// the retry (the caller stashes their partial votes via stashCarry and
// skips resolving that many occurrences this chunk) plus the questions
// that exhausted the expiry budget WITHOUT ever receiving a completed
// assignment anywhere down their lineage — the only expiry outcome
// that loses a question, reported via Stats.Incomplete. Exhausted
// questions that do hold partial votes simply resolve with them.
// observedAt is the virtual-clock time the expiry was detected (the
// assignment deadline); later chunks cannot be posted before it.
func (p *poster) retryExpired(c postedChunk, res *crowd.RunResult, observedAt float64) (map[string]int, []string, error) {
	if len(res.Expired) == 0 {
		return nil, nil, nil
	}
	completed := map[string]int{}
	for i := range res.Assignments {
		completed[res.Assignments[i].HITID]++
	}
	var retrying map[string]int
	var incomplete []string
	for _, h := range c.hits {
		missing := res.Expired[h.ID]
		if missing <= 0 {
			continue
		}
		total := p.lineageAsns[h.ID] + completed[h.ID]
		delete(p.lineageAsns, h.ID)
		depth := p.xretries[h.ID]
		if p.maxExpired <= 0 || depth >= p.maxExpired {
			if total == 0 {
				for qi := range h.Questions {
					incomplete = append(incomplete, h.Questions[qi].ID)
				}
			}
			continue
		}
		nh := &hit.HIT{
			ID:          fmt.Sprintf("%s/x%d", h.ID, depth+1),
			GroupID:     h.GroupID,
			Kind:        h.Kind,
			Assignments: missing,
			RewardCents: h.RewardCents,
			Questions:   append([]hit.Question(nil), h.Questions...),
		}
		if err := nh.Validate(); err != nil {
			return nil, nil, err
		}
		if p.xretries == nil {
			p.xretries = map[string]int{}
		}
		if p.lineageAsns == nil {
			p.lineageAsns = map[string]int{}
		}
		p.xretries[nh.ID] = depth + 1
		p.lineageAsns[nh.ID] = total
		p.enqueue(nh)
		if retrying == nil {
			retrying = map[string]int{}
		}
		for qi := range h.Questions {
			retrying[h.Questions[qi].ID]++
		}
	}
	if retrying != nil && observedAt > p.minClock {
		p.minClock = observedAt
	}
	return retrying, incomplete, nil
}

// mergeRetrying folds two per-question deferral counts (refusal and
// expiry retries) into one; a HIT is never both refused and expired, so
// the counts are disjoint by HIT but can share question IDs on the join
// path, where pair keys repeat across HITs.
func mergeRetrying(a, b map[string]int) map[string]int {
	if len(b) == 0 {
		return a
	}
	if a == nil {
		return b
	}
	for qid, n := range b {
		a[qid] += n
	}
	return a
}

// stashCarry saves a question's partial answers until its expiry retry
// resolves; takeCarry prepends them back. Both are no-ops for questions
// with nothing stashed.
func (p *poster) stashCarry(qid string, as []hit.CachedAnswer) {
	if len(as) == 0 {
		return
	}
	if p.carry == nil {
		p.carry = map[string][]hit.CachedAnswer{}
	}
	p.carry[qid] = append(p.carry[qid], as...)
}

func (p *poster) takeCarry(qid string, as []hit.CachedAnswer) []hit.CachedAnswer {
	ca := p.carry[qid]
	if len(ca) == 0 {
		return as
	}
	delete(p.carry, qid)
	return append(append([]hit.CachedAnswer(nil), ca...), as...)
}

// flushQuestions merges buffered questions into HITs of exactly `size`
// (plus one final partial when forcing at end of input) and queues
// them on the poster. Shared by every streaming crowd operator so the
// HIT sizes match what a single materialized Merge would produce.
func (p *poster) flushQuestions(b *hit.Builder, qbuf *[]hit.Question, size int, force bool) error {
	for len(*qbuf) >= size || (force && len(*qbuf) > 0) {
		n := size
		if n > len(*qbuf) {
			n = len(*qbuf)
		}
		hs, err := b.Merge((*qbuf)[:n:n], n)
		if err != nil {
			return err
		}
		p.enqueue(hs...)
		*qbuf = append((*qbuf)[:0], (*qbuf)[n:]...)
	}
	return nil
}

// opAcct accumulates one operator's chunked spending into its
// pre-registered Stats slot and the engine ledger. HITs and dollars
// are accounted when a chunk is POSTED — posted crowd work is spent
// whether or not anyone waits for it, so a LIMIT short-circuit or a
// cancellation that abandons in-flight chunks still shows their cost
// in TotalHITs and the ledger. Assignments and makespan arrive at
// collection. Makespan is the operator's span on the virtual clock:
// last chunk completion minus first chunk post (equal to the single
// group makespan when the whole operator fit in one chunk — the
// materializing executor's number).
type opAcct struct {
	x     *executor
	label string
	// asn is this operator's workers-per-HIT (the physical plan may set
	// it per operator; the ledger prices dollars with it).
	asn        int
	slot       int
	started    bool
	firstPost  float64
	lastDone   float64
	hits, asns int
	expired    int
}

// posted accounts a chunk the moment it goes to the marketplace. Each
// HIT is billed at its OWN assignment count — an expiry re-post
// requests only the missing assignments, so pricing it at the
// operator's full level would overstate the ledger.
func (a *opAcct) posted(chunk []*hit.HIT, postedAt float64) {
	if !a.started || postedAt < a.firstPost {
		a.firstPost = postedAt
		a.started = true
	}
	a.hits += len(chunk)
	atLevel := 0
	for _, h := range chunk {
		if h.Assignments == a.asn {
			atLevel++
		} else {
			a.x.eng.Ledger.Add(a.label, 1, h.Assignments)
		}
	}
	if atLevel > 0 {
		a.x.eng.Ledger.Add(a.label, atLevel, a.asn)
	}
	a.x.stats.setSlot(a.slot, a.hits, a.asns, a.expired, a.span(), nil)
}

// collected folds in a completed chunk's assignment and expiry counts
// and timing.
func (a *opAcct) collected(assignments, expired int, done float64, incomplete []string) {
	if done > a.lastDone {
		a.lastDone = done
	}
	a.asns += assignments
	a.expired += expired
	a.x.stats.setSlot(a.slot, a.hits, a.asns, a.expired, a.span(), incomplete)
}

// span is the operator's virtual-clock busy span so far; zero until a
// chunk completes (posted-but-uncollected chunks have spent HITs but
// no observable makespan yet).
func (a *opAcct) span() float64 {
	if s := a.lastDone - a.firstPost; s > 0 {
		return s
	}
	return 0
}

// qVotes is one question's resolved votes, kept in question order so
// end-of-stream combiners see a deterministic vote sequence.
type qVotes struct {
	slot  int
	qid   string
	votes []combine.Vote
}

// --- Crowd filter (single task and OR of tasks) ---

// fslot tracks one input tuple through the filter: how many unique
// branches have yet to rule on it, whether any branch accepted it, and
// when its decision completed on the virtual clock.
type fslot struct {
	tuple    relation.Tuple
	pending  int
	accepted bool
	ready    float64
}

// filterBranch is one disjunct: its own HIT group, builder, combiner,
// and posting pipeline over the shared input ordinals.
type filterBranch struct {
	idx     int
	ft      *task.Filter
	negate  bool
	groupID string
	comb    combine.Combiner
	perQ    bool
	builder *hit.Builder
	post    *poster
	acct    *opAcct
	dupOf   int // branch index this one mirrors; == idx when unique
	// asked tracks question content this branch has already posted in
	// THIS run. Later duplicate rows post independently instead of
	// replaying whatever the earlier chunk may (or may not yet) have
	// stored in the task cache — cache-hit behavior must not depend on
	// chunk collection timing, or results would vary with
	// StreamChunkHITs. Matches the materializing executor, which did
	// all lookups before any store.
	asked map[uint64]bool
	qbuf  []hit.Question
	// eosVotes/eosSlots buffer votes for non-PerQuestion combiners,
	// which need the full vote matrix in one Combine call.
	eosVotes []combine.Vote
	eosSlots []qVotes
}

func (br *filterBranch) accepts(d combine.Decision, ok bool) bool {
	if !ok {
		return false
	}
	if br.negate {
		return d.Value == "no"
	}
	return d.Value == "yes"
}

// crowdFilterOp streams a crowd filter: a plain CrowdFilter is the
// one-branch case, CrowdFilterOr the general case with branch HIT
// groups posted in parallel (paper §2.5: disjuncts run concurrently).
// A tuple is released downstream once every unique branch has ruled,
// accepted if any branch (after per-branch negation) said yes.
// Duplicate disjuncts (same task, same negation) post once and share
// the verdict.
type crowdFilterOp struct {
	x       *executor
	child   Operator
	label   string
	branch  []*filterBranch
	uniq    []*filterBranch // branches that actually post (dupOf == idx)
	hitSize int
	seq     int
	slots   []*fslot
	slotOf  map[string]int // question ID → slot index (all branches)
	emit    emitQueue
	emitAt  int
	clock   float64 // max input Ready ingested so far
	eos     bool
	closed  bool
	done    bool
	final   bool
}

func (f *crowdFilterOp) Schema() *relation.Schema { return f.child.Schema() }
func (f *crowdFilterOp) Name() string             { return f.child.Name() }
func (f *crowdFilterOp) OpLabel() string          { return f.label }
func (f *crowdFilterOp) Inputs() []Operator       { return []Operator{f.child} }

// BreakerNote implements Breaker when a stateful combiner forces
// buffering; Describe skips the empty note otherwise.
func (f *crowdFilterOp) BreakerNote() string {
	for _, br := range f.uniq {
		if !br.perQ {
			return fmt.Sprintf("buffers all votes for %s (O(input) memory)", br.comb.Name())
		}
	}
	return ""
}

// finalReady includes rejected tuples' decision times (emitQueue
// tracks them via advance) and anything the child decided upstream.
func (f *crowdFilterOp) finalReady() float64 {
	r := f.emit.ready
	if cr := readyOf(f.child); cr > r {
		r = cr
	}
	return r
}

func (f *crowdFilterOp) Close() {
	if !f.closed {
		f.closed = true
		f.child.Close()
	}
}

func (f *crowdFilterOp) Next(ctx context.Context) (*Batch, error) {
	for {
		// Release the longest decided prefix in input order.
		for f.emitAt < len(f.slots) && f.slots[f.emitAt].pending == 0 {
			s := f.slots[f.emitAt]
			if s.accepted {
				f.emit.push(s.tuple, s.ready)
			} else {
				f.emit.advance(s.ready)
			}
			f.slots[f.emitAt] = nil
			f.emitAt++
		}
		if !f.emit.empty() {
			return f.emit.pop(), nil
		}
		if f.done {
			return nil, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := f.step(ctx); err != nil {
			return nil, err
		}
	}
}

// step advances the pipeline by one action: post anything postable,
// then either ingest another input batch or collect the oldest
// in-flight chunk. Every choice is driven by counts, never timing.
func (f *crowdFilterOp) step(ctx context.Context) error {
	uniq := f.uniq
	backlogged := false
	for _, br := range uniq {
		for br.post.canPost() && br.post.hasChunk(f.eos) {
			br.post.postOne(f.clock)
		}
		if br.post.backlogged() {
			backlogged = true
		}
	}
	// Ingest unless a branch needs a collect to drain its backlog.
	if !f.eos && !f.closed && !backlogged {
		in, err := f.child.Next(ctx)
		if err != nil {
			return err
		}
		if in == nil {
			f.eos = true
			for _, br := range uniq {
				if err := br.flushHIT(f.hitSize, true); err != nil {
					return err
				}
			}
			return nil
		}
		if in.Ready > f.clock {
			f.clock = in.Ready
		}
		return f.ingest(in)
	}
	// Collect the globally oldest in-flight chunk.
	var oldest *filterBranch
	for _, br := range uniq {
		if s := br.post.oldestSeq(); s >= 0 && (oldest == nil || s < oldest.post.oldestSeq()) {
			oldest = br
		}
	}
	if oldest != nil {
		return f.collectChunk(ctx, oldest)
	}
	// Nothing in flight, nothing left to ingest: finalize and finish.
	if (f.eos || f.closed) && !f.final {
		if err := f.finalize(); err != nil {
			return err
		}
	}
	f.done = true
	return nil
}

// flushHIT merges the branch's buffered questions into HITs once full
// (or unconditionally at end of input).
func (br *filterBranch) flushHIT(size int, force bool) error {
	return br.post.flushQuestions(br.builder, &br.qbuf, size, force)
}

// ingest mints one question per tuple per unique branch, answering
// from the task cache where possible.
func (f *crowdFilterOp) ingest(in *Batch) error {
	for _, t := range in.Tuples {
		slotIdx := len(f.slots)
		s := &fslot{tuple: t, ready: in.Ready}
		f.slots = append(f.slots, s)
		for _, br := range f.branch {
			if br.dupOf != br.idx {
				continue
			}
			s.pending++
			q := hit.Question{
				ID:    fmt.Sprintf("%s/t%05d", br.groupID, slotIdx),
				Kind:  hit.FilterQ,
				Task:  br.ft.Name,
				Tuple: t,
			}
			if f.x.eng.Cache != nil && !br.asked[q.CacheKey()] {
				if cached, ok := f.x.eng.Cache.Lookup(&q); ok {
					votes := make([]combine.Vote, 0, len(cached))
					for _, ca := range cached {
						votes = append(votes, combine.Vote{Question: q.ID, Worker: ca.WorkerID, Value: combine.BoolVote(ca.Answer.Bool)})
					}
					if err := f.applyBranchVotes(br, []qVotes{{slot: slotIdx, qid: q.ID, votes: votes}}, in.Ready); err != nil {
						return err
					}
					continue
				}
			}
			f.slotOf[q.ID] = slotIdx
			br.asked[q.CacheKey()] = true
			br.qbuf = append(br.qbuf, q)
			if err := br.flushHIT(f.hitSize, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyBranchVotes resolves one branch's verdicts for a run of
// questions (PerQuestion path) or defers them to finalize (EOS path).
// Combine errors fail the query, as they did under the materializing
// executor — an empty decision map would silently reject everything.
func (f *crowdFilterOp) applyBranchVotes(br *filterBranch, list []qVotes, done float64) error {
	if !br.perQ {
		for _, qv := range list {
			br.eosVotes = append(br.eosVotes, qv.votes...)
			br.eosSlots = append(br.eosSlots, qVotes{slot: qv.slot, qid: qv.qid})
		}
		return nil
	}
	for _, qv := range list {
		s := f.slots[qv.slot]
		if len(qv.votes) > 0 {
			decisions, err := br.comb.Combine(qv.votes)
			if err != nil {
				return err
			}
			d, ok := decisions[qv.qid]
			if br.accepts(d, ok) {
				s.accepted = true
			}
		}
		s.pending--
		if done > s.ready {
			s.ready = done
		}
	}
	return nil
}

// collectChunk awaits a branch's oldest chunk, re-posts refused and
// expired HITs' questions within their retry budgets, and applies the
// resolved votes.
func (f *crowdFilterOp) collectChunk(ctx context.Context, br *filterBranch) error {
	c, res, err := br.post.collect(ctx)
	if err != nil {
		return err
	}
	done := c.postedAt + res.MakespanHours
	retrying, exhausted, err := br.post.retryRefused(c, res.Incomplete, done)
	if err != nil {
		return err
	}
	xretrying, xincomplete, err := br.post.retryExpired(c, res, done)
	if err != nil {
		return err
	}
	retrying = mergeRetrying(retrying, xretrying)
	list, answers := chunkVotes(br.post, c.hits, res.Assignments, f.slotOf, retrying)
	if f.x.eng.Cache != nil {
		for _, h := range c.hits {
			for qi := range h.Questions {
				q := &h.Questions[qi]
				// Voteless questions (refused HITs) must not poison the
				// cache: a stored empty entry would make every later
				// identical question resolve to rejection without ever
				// reaching the crowd. Questions deferred to an expiry
				// retry are absent from answers here and store their
				// merged vote set when the retry resolves.
				if len(answers[q.ID]) > 0 {
					f.x.eng.Cache.Store(q, answers[q.ID])
				}
			}
		}
	}
	if err := f.applyBranchVotes(br, list, done); err != nil {
		return err
	}
	// Refusal-exhausted questions never got a vote; expiry exhaustion
	// reports only the questions whose whole lineage stayed voteless —
	// the rest resolve with their partial votes.
	exhausted = append(exhausted, xincomplete...)
	br.acct.collected(res.TotalAssignments, expiredCount(res.Expired), done, exhausted)
	return nil
}

// expiredCount totals a chunk's expired assignments for Stats.
func expiredCount(expired map[string]int) int {
	n := 0
	for _, c := range expired {
		n += c
	}
	return n
}

// chunkVotes resolves a chunk's assignments into per-question vote
// runs, ordered by HIT then question position so downstream combining
// is deterministic. Every question in the chunk appears in the result
// except those being retried after a refusal or expiry — a refused
// question's occurrence has no votes to defer, while an expired HIT's
// partial votes are stashed on the poster and merged (in lineage
// order) when the retry resolves. Questions whose refusal retries are
// exhausted resolve with zero votes (and reject).
func chunkVotes(p *poster, hits []*hit.HIT, assignments []hit.Assignment, slotOf map[string]int, retrying map[string]int) ([]qVotes, map[string][]hit.CachedAnswer) {
	answers := map[string][]hit.CachedAnswer{}
	hit.ForEachAnswer(hits, assignments, func(q *hit.Question, worker string, ans hit.Answer) {
		answers[q.ID] = append(answers[q.ID], hit.CachedAnswer{WorkerID: worker, Answer: ans})
	})
	var list []qVotes
	for _, h := range hits {
		for qi := range h.Questions {
			q := &h.Questions[qi]
			if retrying[q.ID] > 0 {
				retrying[q.ID]--
				p.stashCarry(q.ID, answers[q.ID])
				delete(answers, q.ID)
				continue
			}
			answers[q.ID] = p.takeCarry(q.ID, answers[q.ID])
			votes := make([]combine.Vote, 0, len(answers[q.ID]))
			for _, ca := range answers[q.ID] {
				votes = append(votes, combine.Vote{Question: q.ID, Worker: ca.WorkerID, Value: combine.BoolVote(ca.Answer.Bool)})
			}
			list = append(list, qVotes{slot: slotOf[q.ID], qid: q.ID, votes: votes})
		}
	}
	return list, answers
}

// finalize resolves EOS-mode branches with one combine over all their
// votes, then finishes any slots they still owe.
func (f *crowdFilterOp) finalize() error {
	f.final = true
	doneAt := f.clockDone()
	for _, br := range f.branch {
		if br.dupOf != br.idx || br.perQ {
			continue
		}
		decisions, err := br.comb.Combine(br.eosVotes)
		if err != nil {
			return err
		}
		for _, qv := range br.eosSlots {
			s := f.slots[qv.slot]
			d, ok := decisions[qv.qid]
			if br.accepts(d, ok) {
				s.accepted = true
			}
			s.pending--
			if doneAt > s.ready {
				s.ready = doneAt
			}
		}
	}
	return nil
}

// clockDone is the operator's last chunk completion time: EOS-mode
// decisions become available only once every chunk is collected.
func (f *crowdFilterOp) clockDone() float64 {
	t := f.clock
	for _, br := range f.branch {
		if br.dupOf == br.idx && br.acct.lastDone > t {
			t = br.acct.lastDone
		}
	}
	return t
}
