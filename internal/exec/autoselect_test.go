package exec

import (
	"strings"
	"testing"

	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/dataset"
	"qurk/internal/join"
)

// TestAutoSelectFeaturesDropsHair runs the celebrity join declaratively
// with all three POSSIBLY features and §3.2 auto-selection on: the
// engine should discard hair (ambiguous, error-prone) on its own and
// record the verdict in the stats.
func TestAutoSelectFeaturesDropsHair(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 24, Seed: 31})
	m := crowd.NewSimMarket(crowd.DefaultConfig(31), d.Oracle())
	e := core.NewEngine(m, core.Options{
		JoinAlgorithm:      join.Naive,
		JoinBatch:          5,
		ExtractCombined:    true,
		AutoSelectFeatures: true,
		FeatureSelection:   join.SelectionConfig{SampleFrac: 0.2, Seed: 31},
	})
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(dataset.SamePersonTask())
	e.Library.MustRegister(dataset.GenderTask())
	e.Library.MustRegister(dataset.HairColorTask())
	e.Library.MustRegister(dataset.SkinColorTask())

	out, stats, err := RunQuery(e, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
AND POSSIBLY hairColor(c.img) = hairColor(p.img)
AND POSSIBLY skinColor(c.img) = skinColor(p.img)`)
	if err != nil {
		t.Fatal(err)
	}
	// Result quality holds.
	if out.Len() < 20 || out.Len() > 28 {
		t.Errorf("join result = %d rows, want ≈24", out.Len())
	}
	// Hair must have been discarded, and the decision surfaced.
	hairDropped := false
	sampleJoin := false
	for _, op := range stats.Operators {
		if strings.Contains(op.Label, `feature "hair" discarded`) {
			hairDropped = true
		}
		if strings.Contains(op.Label, "feature-selection sample join") {
			sampleJoin = true
			if op.HITs == 0 {
				t.Error("sample join posted no HITs")
			}
		}
	}
	if !sampleJoin {
		t.Error("no feature-selection sample join recorded")
	}
	if !hairDropped {
		var labels []string
		for _, op := range stats.Operators {
			labels = append(labels, op.Label)
		}
		t.Errorf("hair not discarded; operators: %v", labels)
	}
}

// TestAutoSelectOffKeepsAllFeatures verifies the default path still
// applies every written POSSIBLY clause.
func TestAutoSelectOffKeepsAllFeatures(t *testing.T) {
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 12, Seed: 37})
	m := crowd.NewSimMarket(crowd.DefaultConfig(37), d.Oracle())
	e := core.NewEngine(m, core.Options{JoinAlgorithm: join.Naive, JoinBatch: 5})
	e.Catalog.Register(d.Celeb)
	e.Catalog.Register(d.Photos)
	e.Library.MustRegister(dataset.SamePersonTask())
	e.Library.MustRegister(dataset.GenderTask())
	e.Library.MustRegister(dataset.HairColorTask())

	_, stats, err := RunQuery(e, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
AND POSSIBLY hairColor(c.img) = hairColor(p.img)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range stats.Operators {
		if strings.Contains(op.Label, "discarded") || strings.Contains(op.Label, "sample join") {
			t.Errorf("auto-selection ran while disabled: %s", op.Label)
		}
	}
}
