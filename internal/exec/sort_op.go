// Sort operators. Both are pipeline breakers: a sort cannot emit its
// first row before seeing its last input row. With
// Options.BreakerMemTuples set they spill to disk — the machine sort
// becomes an external merge sort and the crowd sort externally
// partitions its input by the machine-sortable prefix columns — so
// memory drops from O(input) to O(cap) tuples (one crowd-sorted group
// still materializes while its HITs are in flight). CrowdOrderBy
// streams its *output* either way: groups are emitted group by group,
// each as soon as its crowd sort settles, so a downstream LIMIT over a
// grouped sort stops paying for later groups. Crowd sort rounds post
// through the chunked poster (exec.crowdSort), inheriting the
// refusal/expiry retry policies and overlapping posting with vote
// collection inside each group.
package exec

import (
	"context"
	"fmt"
	"sort"

	"qurk/internal/core"
	"qurk/internal/cost"
	"qurk/internal/obstats"
	"qurk/internal/plan"
	"qurk/internal/relation"
	"qurk/internal/sortop"
	"qurk/internal/spill"
)

type crowdOrderByOp struct {
	x      *executor
	node   *plan.CrowdOrderBy
	phys   plan.SortPhys
	path   string
	child  Operator
	closed bool

	// in-memory grouping (BreakerMemTuples unset)
	groups []*relation.Relation
	// spilled grouping: the input is externally sorted by group key —
	// computed once per tuple and carried as a hidden leading column
	// through the run files, so comparisons never rebuild it — and
	// groups are cut from the merged stream one at a time.
	sorter    *spill.Sorter
	iter      *spill.Iter
	keySchema *relation.Schema
	peek      *relation.Tuple // held-back first (keyed) tuple of the next group

	// windowed sub-sorts (Options.SplitSortGroups): an oversized
	// group's windows re-sort through a second external sorter keyed on
	// a hidden normalized-rank column, so one window — not one group —
	// is the memory high-water mark.
	rankSchema *relation.Schema
	winSorter  *spill.Sorter
	winIter    *spill.Iter
	winIdx     int

	gi      int
	pending []relation.Tuple
	clock   float64
	started bool
	size    int
}

func (o *crowdOrderByOp) Schema() *relation.Schema { return o.child.Schema() }
func (o *crowdOrderByOp) Name() string             { return o.child.Name() }
func (o *crowdOrderByOp) OpLabel() string          { return o.node.Label() + " [" + o.phys.String() + "]" }
func (o *crowdOrderByOp) Inputs() []Operator       { return []Operator{o.child} }

// Breakers implements BreakerDetail.
func (o *crowdOrderByOp) Breakers() []BreakerInfo {
	cap := o.x.eng.Options.BreakerMemTuples
	note := "materializes input before sorting; emits group by group"
	if cap > 0 {
		note = "partitions input into sorted runs by group key; one group in memory at a time"
	}
	return []BreakerInfo{{Kind: BreakerSortInput, MemTuples: cap, Spills: cap > 0, Note: note}}
}

// BreakerNote implements Breaker.
func (o *crowdOrderByOp) BreakerNote() string { return breakerNote(o.Breakers()) }

func (o *crowdOrderByOp) finalReady() float64 { return o.clock }

func (o *crowdOrderByOp) Close() {
	if !o.closed {
		o.closed = true
		o.child.Close()
		o.release()
	}
}

// release frees the spill resources.
func (o *crowdOrderByOp) release() {
	if o.iter != nil {
		o.iter.Close()
		o.iter = nil
	}
	if o.sorter != nil {
		o.sorter.Close()
		o.sorter = nil
	}
	o.releaseWindows()
}

// releaseWindows frees the windowed-merge resources of one group.
func (o *crowdOrderByOp) releaseWindows() {
	if o.winIter != nil {
		o.winIter.Close()
		o.winIter = nil
	}
	if o.winSorter != nil {
		o.winSorter.Close()
		o.winSorter = nil
	}
	o.winIdx = 0
}

// groupKey is the tuple's machine-sortable prefix key (paper §5's
// ORDER BY name, quality(img)); empty GroupCols → one global group.
func (o *crowdOrderByOp) groupKey(t relation.Tuple) (string, error) {
	key := ""
	for _, col := range o.node.GroupCols {
		v, ok := t.Get(col)
		if !ok {
			return "", fmt.Errorf("exec: ORDER BY column %q not found in %s", col, t.Schema())
		}
		key += v.String() + "\x00"
	}
	return key, nil
}

// start drains the input and splits it into groups by the prefix
// columns, ordered by group key. With a memory cap the split is an
// external stable sort on the key: the merged stream yields the same
// groups in the same order as the in-memory index, O(cap) at a time.
func (o *crowdOrderByOp) start(ctx context.Context) error {
	o.started = true
	cap := o.x.eng.Options.BreakerMemTuples
	if cap > 0 {
		// Hidden leading key column: computed once per tuple at drain
		// time, compared by payload during the external sort, stripped
		// when groups are cut.
		cols := append([]relation.Column{{Name: "\x00groupkey", Kind: relation.KindText}},
			o.child.Schema().Columns()...)
		keySchema, err := relation.NewSchema(cols...)
		if err != nil {
			return err
		}
		o.keySchema = keySchema
		less := func(a, b relation.Tuple) bool { return a.At(0).Text() < b.At(0).Text() }
		sorter, err := spill.NewSorter(keySchema, cap, less)
		if err != nil {
			return err
		}
		o.sorter = sorter
		for {
			b, err := o.child.Next(ctx)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			for _, t := range b.Rows() {
				key, err := o.groupKey(t)
				if err != nil {
					return err
				}
				vals := make([]relation.Value, 0, t.Len()+1)
				vals = append(vals, relation.Text(key))
				for c := 0; c < t.Len(); c++ {
					vals = append(vals, t.At(c))
				}
				kt, err := relation.NewTuple(keySchema, vals...)
				if err != nil {
					return err
				}
				if err := o.sorter.Add(kt); err != nil {
					return err
				}
			}
			if b.Ready > o.clock {
				o.clock = b.Ready
			}
		}
		if cr := readyOf(o.child); cr > o.clock {
			o.clock = cr
		}
		it, err := o.sorter.Sort()
		if err != nil {
			return err
		}
		o.iter = it
		return nil
	}

	in, ready, err := drainRelation(ctx, o.child)
	if err != nil {
		return err
	}
	o.clock = ready
	type group struct {
		key  string
		rows []int
	}
	var groups []group
	idx := map[string]int{}
	for i := 0; i < in.Len(); i++ {
		key, err := o.groupKey(in.Row(i))
		if err != nil {
			return err
		}
		gi, ok := idx[key]
		if !ok {
			gi = len(groups)
			idx[key] = gi
			groups = append(groups, group{key: key})
		}
		groups[gi].rows = append(groups[gi].rows, i)
	}
	sort.SliceStable(groups, func(a, b int) bool { return groups[a].key < groups[b].key })
	for _, g := range groups {
		sub := relation.New(in.Name(), in.Schema())
		for _, ri := range g.rows {
			if err := sub.Append(in.Row(ri)); err != nil {
				return err
			}
		}
		o.groups = append(o.groups, sub)
	}
	return nil
}

// nextGroup returns the next crowd-sort unit and whether the current
// group continues past it: a whole group normally, or — with
// Options.SplitSortGroups on the spilled path — the group's next
// window of at most BreakerMemTuples tuples (more=true until the
// group's last window). nil at end of input.
func (o *crowdOrderByOp) nextGroup() (sub *relation.Relation, more bool, err error) {
	if o.sorter == nil {
		if o.gi >= len(o.groups) {
			return nil, false, nil
		}
		g := o.groups[o.gi]
		o.groups[o.gi] = nil
		return g, false, nil
	}
	// Spilled path: cut the next run of equal keys from the merged
	// stream, holding back the first tuple of the following group (or
	// the current group's next window). The hidden key column (ordinal
	// 0) is stripped as rows re-enter the child schema.
	winCap := 0
	if o.x.eng.Options.SplitSortGroups {
		winCap = o.x.eng.Options.BreakerMemTuples
	}
	first := o.peek
	o.peek = nil
	if first == nil {
		t, ok, err := o.iter.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		first = &t
	}
	key := first.At(0).Text()
	sub = relation.New(o.child.Name(), o.child.Schema())
	if err := sub.Append(o.stripKey(*first)); err != nil {
		return nil, false, err
	}
	for {
		t, ok, err := o.iter.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return sub, false, nil
		}
		if t.At(0).Text() != key {
			o.peek = &t
			return sub, false, nil
		}
		if winCap > 0 && sub.Len() >= winCap {
			o.peek = &t
			return sub, true, nil
		}
		if err := sub.Append(o.stripKey(t)); err != nil {
			return nil, false, err
		}
	}
}

// replanGroup observes the settled group's true size (fed to the stats
// store for the next run's per-group estimates) and — when mid-run
// re-optimization is on — re-costs the group's sort interface against
// that size: a group much larger than the optimizer assumed can make
// rating strictly cheaper than the comparison cover, so the group
// switches Compare→Rate when rating's quality also clears
// Options.Replan.MinQuality. The decision reads only the materialized
// group, so it is identical at any ExecBatch/StreamChunkHITs setting;
// durable runs checkpoint it for resume verification.
func (o *crowdOrderByOp) replanGroup(sub *relation.Relation, path string) (plan.SortPhys, error) {
	phys := o.phys
	n := sub.Len()
	o.x.observe(o.node.Label(), o.node.Task.Name, obstats.KindGroupSize, float64(n), 1)
	repl := o.x.eng.Options.Replan
	if !repl.Enabled || phys.Method != core.SortCompare || n < 2 {
		return phys, nil
	}
	s := phys.GroupSize
	if s < 2 {
		s = 2
	}
	// Exact cover size where the enumeration is cheap; the analytic
	// approximation beyond that (matching the optimizer's own split).
	compareHITs := cost.CompareSortHITs(n, s)
	if n <= 120 {
		compareHITs = len(sortop.CoverGroups(n, s, nil))
	}
	rateBatch := phys.RateBatch
	if rateBatch <= 0 {
		rateBatch = sortop.DefaultRateBatch
	}
	rateHITs := cost.RateSortHITs(n, rateBatch)
	if rateHITs < compareHITs && cost.QualityRateSort >= repl.MinQuality {
		phys.Method = core.SortRate
	}
	dig := fnvFold(0, uint64(n))
	dig = fnvFold(dig, uint64(compareHITs))
	dig = fnvFold(dig, uint64(rateHITs))
	var sw uint64
	if phys.Method == core.SortRate {
		sw = 1
	}
	dig = fnvFold(dig, sw)
	if err := o.x.checkpoint(ckptReplan, path, dig, o.clock); err != nil {
		return phys, err
	}
	return phys, nil
}

// stripKey drops the hidden leading key column.
func (o *crowdOrderByOp) stripKey(t relation.Tuple) relation.Tuple {
	vals := make([]relation.Value, 0, t.Len()-1)
	for c := 1; c < t.Len(); c++ {
		vals = append(vals, t.At(c))
	}
	out, err := relation.NewTuple(o.child.Schema(), vals...)
	if err != nil {
		// The keyed tuple was built from this schema's values; a
		// mismatch here is a programming error.
		panic(err)
	}
	return out
}

// addScoredWindow feeds one crowd-sorted window into the group's merge
// sorter. Each row carries a hidden leading rank column — its position
// in the window's emission order, normalized to (0,1) by window size —
// so the external merge interleaves windows proportionally; equal ranks
// keep window order via the sorter's stable run tie-breaks.
func (o *crowdOrderByOp) addScoredWindow(sub *relation.Relation, order []int) error {
	if o.winSorter == nil {
		cols := append([]relation.Column{{Name: "\x00rank", Kind: relation.KindFloat}},
			o.child.Schema().Columns()...)
		rankSchema, err := relation.NewSchema(cols...)
		if err != nil {
			return err
		}
		o.rankSchema = rankSchema
		less := func(a, b relation.Tuple) bool { return a.At(0).Float() < b.At(0).Float() }
		ws, err := spill.NewSorter(rankSchema, o.x.eng.Options.BreakerMemTuples, less)
		if err != nil {
			return err
		}
		o.winSorter = ws
	}
	m := float64(len(order) + 1)
	for pos, ri := range order {
		t := sub.Row(ri)
		vals := make([]relation.Value, 0, t.Len()+1)
		vals = append(vals, relation.Float(float64(pos+1)/m))
		for c := 0; c < t.Len(); c++ {
			vals = append(vals, t.At(c))
		}
		rt, err := relation.NewTuple(o.rankSchema, vals...)
		if err != nil {
			return err
		}
		if err := o.winSorter.Add(rt); err != nil {
			return err
		}
	}
	return nil
}

// stripRank drops the hidden leading rank column.
func (o *crowdOrderByOp) stripRank(t relation.Tuple) relation.Tuple {
	vals := make([]relation.Value, 0, t.Len()-1)
	for c := 1; c < t.Len(); c++ {
		vals = append(vals, t.At(c))
	}
	out, err := relation.NewTuple(o.child.Schema(), vals...)
	if err != nil {
		panic(err)
	}
	return out
}

func (o *crowdOrderByOp) Next(ctx context.Context) (*Batch, error) {
	if !o.started {
		if err := o.start(ctx); err != nil {
			return nil, err
		}
	}
	for {
		// Emit the current sorted group in bounded batches.
		if len(o.pending) > 0 {
			n := o.size
			if n <= 0 || n > len(o.pending) {
				n = len(o.pending)
			}
			b := batchOfTuples(o.Schema(), o.pending[:n], o.clock)
			o.pending = o.pending[n:]
			return b, nil
		}
		// Drain a completed windowed merge in bounded batches.
		if o.winIter != nil {
			n := o.size
			if n <= 0 {
				n = 1 << 30
			}
			cols := relation.NewColumnBatch(o.Schema(), o.size)
			for cols.Len() < n {
				t, ok, err := o.winIter.Next()
				if err != nil {
					cols.Release()
					return nil, err
				}
				if !ok {
					o.releaseWindows()
					break
				}
				cols.AppendTuple(o.stripRank(t))
			}
			if cols.Len() > 0 {
				return newBatch(cols, o.clock), nil
			}
			cols.Release()
			continue
		}
		if o.closed {
			return nil, nil
		}
		sub, more, err := o.nextGroup()
		if err != nil {
			return nil, err
		}
		if sub == nil {
			o.release()
			return nil, nil
		}
		// An oversized group's windows sort under per-window paths (so
		// checkpoints and HIT group IDs stay unique and count-derived);
		// the group index advances only when the group completes.
		windowed := more || o.winSorter != nil
		var path string
		if windowed {
			path = fmt.Sprintf("%s.g%d.w%d", o.path, o.gi, o.winIdx)
			o.winIdx++
		} else {
			path = fmt.Sprintf("%s.g%d", o.path, o.gi)
		}
		if !more {
			o.gi++
		}
		phys, err := o.replanGroup(sub, path)
		if err != nil {
			return nil, err
		}
		order, done, err := o.x.crowdSort(ctx, sub, o.node, phys, path, o.clock)
		if err != nil {
			return nil, err
		}
		// Durable runs checkpoint each settled group (or window): the
		// breaker's materialized rows plus the crowd-resolved
		// permutation.
		if err := o.x.checkpoint(ckptSortGroup, path, digestSortGroup(order, sub), done); err != nil {
			return nil, err
		}
		if done > o.clock {
			o.clock = done
		}
		if o.node.Desc {
			for i, k := 0, len(order)-1; i < k; i, k = i+1, k-1 {
				order[i], order[k] = order[k], order[i]
			}
		}
		if windowed {
			if err := o.addScoredWindow(sub, order); err != nil {
				return nil, err
			}
			if more {
				continue
			}
			// Last window: merge the group's sub-sorts externally.
			it, err := o.winSorter.Sort()
			if err != nil {
				return nil, err
			}
			o.winIter = it
			continue
		}
		o.pending = make([]relation.Tuple, 0, len(order))
		for _, ri := range order {
			o.pending = append(o.pending, sub.Row(ri))
		}
	}
}

type machineOrderByOp struct {
	node    *plan.MachineOrderBy
	child   Operator
	size    int
	cap     int
	closed  bool
	started bool
	out     *scanOp
	spilled *spill.Iter
	sorter  *spill.Sorter
	ready   float64
}

func (o *machineOrderByOp) Schema() *relation.Schema { return o.child.Schema() }
func (o *machineOrderByOp) Name() string             { return o.child.Name() }
func (o *machineOrderByOp) OpLabel() string          { return o.node.Label() }
func (o *machineOrderByOp) Inputs() []Operator       { return []Operator{o.child} }

// Breakers implements BreakerDetail.
func (o *machineOrderByOp) Breakers() []BreakerInfo {
	note := "materializes input before sorting"
	if o.cap > 0 {
		note = "external merge sort over spilled runs"
	}
	return []BreakerInfo{{Kind: BreakerSortInput, MemTuples: o.cap, Spills: o.cap > 0, Note: note}}
}

// BreakerNote implements Breaker.
func (o *machineOrderByOp) BreakerNote() string { return breakerNote(o.Breakers()) }

func (o *machineOrderByOp) finalReady() float64 { return o.ready }

func (o *machineOrderByOp) Close() {
	if !o.closed {
		o.closed = true
		o.child.Close()
		o.releaseSpill()
	}
}

func (o *machineOrderByOp) releaseSpill() {
	if o.spilled != nil {
		o.spilled.Close()
		o.spilled = nil
	}
	if o.sorter != nil {
		o.sorter.Close()
		o.sorter = nil
	}
}

// less is the ORDER BY comparison over the machine columns.
func (o *machineOrderByOp) less(a, b relation.Tuple) bool {
	for i, col := range o.node.Cols {
		cmp := a.MustGet(col).Compare(b.MustGet(col))
		if cmp == 0 {
			continue
		}
		if o.node.Desc[i] {
			return cmp > 0
		}
		return cmp < 0
	}
	return false
}

func (o *machineOrderByOp) Next(ctx context.Context) (*Batch, error) {
	if !o.started {
		o.started = true
		for _, col := range o.node.Cols {
			if !o.child.Schema().Has(col) {
				return nil, fmt.Errorf("exec: ORDER BY column %q not found", col)
			}
		}
		if o.cap > 0 {
			sorter, err := spill.NewSorter(o.child.Schema(), o.cap, o.less)
			if err != nil {
				return nil, err
			}
			o.sorter = sorter
			for {
				b, err := o.child.Next(ctx)
				if err != nil {
					return nil, err
				}
				if b == nil {
					break
				}
				for _, t := range b.Rows() {
					if err := o.sorter.Add(t); err != nil {
						return nil, err
					}
				}
				if b.Ready > o.ready {
					o.ready = b.Ready
				}
			}
			if cr := readyOf(o.child); cr > o.ready {
				o.ready = cr
			}
			it, err := o.sorter.Sort()
			if err != nil {
				return nil, err
			}
			o.spilled = it
		} else {
			in, ready, err := drainRelation(ctx, o.child)
			if err != nil {
				return nil, err
			}
			o.out = newScanOp(in.SortBy(o.less), o.size)
			o.ready = ready
		}
	}
	if o.closed {
		return nil, nil
	}
	if o.cap > 0 {
		if o.spilled == nil {
			return nil, nil
		}
		n := o.size
		if n <= 0 {
			n = 1 << 30
		}
		cols := relation.NewColumnBatch(o.child.Schema(), o.size)
		for cols.Len() < n {
			t, ok, err := o.spilled.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				o.releaseSpill()
				break
			}
			cols.AppendTuple(t)
		}
		if cols.Len() == 0 {
			cols.Release()
			return nil, nil
		}
		return newBatch(cols, o.ready), nil
	}
	b, err := o.out.Next(ctx)
	if b != nil {
		b.Ready = o.ready
	}
	return b, err
}
