// Sort operators. Both are explicit pipeline breakers: a sort cannot
// emit its first row before seeing its last input row, so they drain
// the child (memory O(input tuples)) before emitting. CrowdOrderBy
// still streams its *output*: rows grouped by machine-sortable prefix
// columns are emitted group by group, each as soon as its crowd sort
// settles, so a downstream LIMIT over a grouped sort stops paying for
// later groups.
package exec

import (
	"context"
	"fmt"
	"sort"

	"qurk/internal/plan"
	"qurk/internal/relation"
)

type crowdOrderByOp struct {
	x      *executor
	node   *plan.CrowdOrderBy
	phys   plan.SortPhys
	path   string
	child  Operator
	closed bool

	groups  []*relation.Relation
	gi      int
	pending []relation.Tuple
	clock   float64
	started bool
	size    int
}

func (o *crowdOrderByOp) Schema() *relation.Schema { return o.child.Schema() }
func (o *crowdOrderByOp) Name() string             { return o.child.Name() }
func (o *crowdOrderByOp) OpLabel() string          { return o.node.Label() + " [" + o.phys.String() + "]" }
func (o *crowdOrderByOp) Inputs() []Operator       { return []Operator{o.child} }

// BreakerNote implements Breaker.
func (o *crowdOrderByOp) BreakerNote() string {
	return "materializes input before sorting (O(input)); emits group by group"
}

func (o *crowdOrderByOp) finalReady() float64 { return o.clock }

func (o *crowdOrderByOp) Close() {
	if !o.closed {
		o.closed = true
		o.child.Close()
	}
}

// start drains the input and splits it into groups by the
// machine-sortable prefix columns (paper §5's ORDER BY name,
// quality(img)), ordered by group key.
func (o *crowdOrderByOp) start(ctx context.Context) error {
	o.started = true
	in, ready, err := drainRelation(ctx, o.child)
	if err != nil {
		return err
	}
	o.clock = ready
	type group struct {
		key  string
		rows []int
	}
	var groups []group
	idx := map[string]int{}
	for i := 0; i < in.Len(); i++ {
		key := ""
		for _, col := range o.node.GroupCols {
			v, ok := in.Row(i).Get(col)
			if !ok {
				return fmt.Errorf("exec: ORDER BY column %q not found in %s", col, in.Schema())
			}
			key += v.String() + "\x00"
		}
		gi, ok := idx[key]
		if !ok {
			gi = len(groups)
			idx[key] = gi
			groups = append(groups, group{key: key})
		}
		groups[gi].rows = append(groups[gi].rows, i)
	}
	sort.SliceStable(groups, func(a, b int) bool { return groups[a].key < groups[b].key })
	for _, g := range groups {
		sub := relation.New(in.Name(), in.Schema())
		for _, ri := range g.rows {
			if err := sub.Append(in.Row(ri)); err != nil {
				return err
			}
		}
		o.groups = append(o.groups, sub)
	}
	return nil
}

func (o *crowdOrderByOp) Next(ctx context.Context) (*Batch, error) {
	if !o.started {
		if err := o.start(ctx); err != nil {
			return nil, err
		}
	}
	for {
		// Emit the current sorted group in bounded batches.
		if len(o.pending) > 0 {
			n := o.size
			if n <= 0 || n > len(o.pending) {
				n = len(o.pending)
			}
			b := &Batch{Tuples: o.pending[:n:n], Ready: o.clock}
			o.pending = o.pending[n:]
			return b, nil
		}
		if o.closed || o.gi >= len(o.groups) {
			return nil, nil
		}
		// Checked before each group's blocking sort round; a sort
		// already in flight runs to completion (sortop posts via the
		// synchronous Marketplace.Run).
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sub := o.groups[o.gi]
		path := fmt.Sprintf("%s.g%d", o.path, o.gi)
		o.gi++
		order, makespan, err := o.x.crowdSort(sub, o.node, o.phys, path)
		if err != nil {
			return nil, err
		}
		o.clock += makespan
		if o.node.Desc {
			for i, k := 0, len(order)-1; i < k; i, k = i+1, k-1 {
				order[i], order[k] = order[k], order[i]
			}
		}
		o.pending = make([]relation.Tuple, 0, len(order))
		for _, ri := range order {
			o.pending = append(o.pending, sub.Row(ri))
		}
	}
}

type machineOrderByOp struct {
	node    *plan.MachineOrderBy
	child   Operator
	size    int
	closed  bool
	started bool
	out     *scanOp
	ready   float64
}

func (o *machineOrderByOp) Schema() *relation.Schema { return o.child.Schema() }
func (o *machineOrderByOp) Name() string             { return o.child.Name() }
func (o *machineOrderByOp) OpLabel() string          { return o.node.Label() }
func (o *machineOrderByOp) Inputs() []Operator       { return []Operator{o.child} }

// BreakerNote implements Breaker.
func (o *machineOrderByOp) BreakerNote() string {
	return "materializes input before sorting (O(input))"
}

func (o *machineOrderByOp) finalReady() float64 { return o.ready }

func (o *machineOrderByOp) Close() {
	if !o.closed {
		o.closed = true
		o.child.Close()
	}
}

func (o *machineOrderByOp) Next(ctx context.Context) (*Batch, error) {
	if !o.started {
		o.started = true
		in, ready, err := drainRelation(ctx, o.child)
		if err != nil {
			return nil, err
		}
		for _, col := range o.node.Cols {
			if !in.Schema().Has(col) {
				return nil, fmt.Errorf("exec: ORDER BY column %q not found", col)
			}
		}
		sorted := in.SortBy(func(a, b relation.Tuple) bool {
			for i, col := range o.node.Cols {
				cmp := a.MustGet(col).Compare(b.MustGet(col))
				if cmp == 0 {
					continue
				}
				if o.node.Desc[i] {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		o.out = newScanOp(sorted, o.size)
		o.ready = ready
	}
	if o.closed {
		return nil, nil
	}
	b, err := o.out.Next(ctx)
	if b != nil {
		b.Ready = o.ready
	}
	return b, err
}
