package circuit

// Breaker state-machine tests, driven by a scripted marketplace (the
// error sequence is the test input) and a step clock (cooldowns only
// elapse when the test releases them).

import (
	"errors"
	"sync"
	"testing"
	"time"

	"qurk/internal/crowd"
	"qurk/internal/hit"
)

// scriptedMarket pops one outcome per Run call; nil means success.
// Exhausting the script means every further call succeeds.
type scriptedMarket struct {
	mu    sync.Mutex
	errs  []error
	calls int
}

func (m *scriptedMarket) Run(g *hit.Group) (*crowd.RunResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls++
	if len(m.errs) > 0 {
		err := m.errs[0]
		m.errs = m.errs[1:]
		if err != nil {
			return nil, err
		}
	}
	return &crowd.RunResult{TotalAssignments: 1}, nil
}

func (m *scriptedMarket) RunAsync(g *hit.Group) <-chan crowd.Async {
	return crowd.GoRun(func() (*crowd.RunResult, error) { return m.Run(g) })
}

func (m *scriptedMarket) callCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

// stepClock blocks every Sleep until the test releases it, so the
// breaker's cooldown transitions happen exactly when the test says.
type stepClock struct {
	sleeps chan chan struct{}
}

func newStepClock() *stepClock { return &stepClock{sleeps: make(chan chan struct{}, 16)} }

func (c *stepClock) Now() time.Time { return time.Unix(0, 0) }

func (c *stepClock) Sleep(d time.Duration) {
	ch := make(chan struct{})
	c.sleeps <- ch
	<-ch
}

// releaseSleep waits for the next Sleep call and lets it return.
func (c *stepClock) releaseSleep(t *testing.T) {
	t.Helper()
	select {
	case ch := <-c.sleeps:
		close(ch)
	case <-time.After(5 * time.Second):
		t.Fatal("no cooldown sleep started within 5s")
	}
}

var errBoom = errors.New("backend down")

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRunPassesThroughSuccess(t *testing.T) {
	m := &scriptedMarket{}
	b := New(m, Config{Clock: newStepClock()})
	res, err := b.Run(&hit.Group{})
	if err != nil || res == nil || res.TotalAssignments != 1 {
		t.Fatalf("Run = %+v, %v; want success", res, err)
	}
	if b.State() != Closed {
		t.Errorf("state = %v, want Closed", b.State())
	}
}

func TestRunRetriesTransientBelowThreshold(t *testing.T) {
	m := &scriptedMarket{errs: []error{errBoom, errBoom, nil}}
	b := New(m, Config{Threshold: 5, Clock: newStepClock()})
	res, err := b.Run(&hit.Group{})
	if err != nil || res == nil {
		t.Fatalf("Run = %v, %v; transient failures must be absorbed", res, err)
	}
	if got := m.callCount(); got != 3 {
		t.Errorf("backend calls = %d, want 3", got)
	}
	if b.State() != Closed {
		t.Errorf("state = %v, want Closed (threshold never reached)", b.State())
	}
}

func TestTripParkProbeRecover(t *testing.T) {
	clk := newStepClock()
	m := &scriptedMarket{errs: []error{errBoom, errBoom}}
	b := New(m, Config{Threshold: 2, Cooldown: time.Minute, Clock: clk})

	done := make(chan error, 1)
	go func() {
		_, err := b.Run(&hit.Group{})
		done <- err
	}()

	// Two transient failures trip the breaker; the same call parks.
	waitFor(t, "breaker open", func() bool { return b.State() == Open })
	waitFor(t, "caller parked", func() bool { return b.Parked() == 1 })

	// Cooldown elapses → half-open → the parked call probes; the
	// script is exhausted so the probe succeeds and closes the circuit.
	clk.releaseSleep(t)
	if err := <-done; err != nil {
		t.Fatalf("parked call must complete after recovery, got %v", err)
	}
	if b.State() != Closed {
		t.Errorf("state after successful probe = %v, want Closed", b.State())
	}
	if b.Parked() != 0 {
		t.Errorf("parked after recovery = %d, want 0", b.Parked())
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newStepClock()
	// Trip (2 failures), failed probe (1 more), then recovery.
	m := &scriptedMarket{errs: []error{errBoom, errBoom, errBoom}}
	b := New(m, Config{Threshold: 2, Cooldown: time.Minute, Clock: clk})

	done := make(chan error, 1)
	go func() {
		_, err := b.Run(&hit.Group{})
		done <- err
	}()

	waitFor(t, "breaker open", func() bool { return b.State() == Open })
	clk.releaseSleep(t) // probe runs and fails → open again
	waitFor(t, "breaker re-open", func() bool { return b.State() == Open && m.callCount() == 3 })
	clk.releaseSleep(t) // second probe succeeds
	if err := <-done; err != nil {
		t.Fatalf("call must complete after second probe, got %v", err)
	}
	if b.State() != Closed {
		t.Errorf("state = %v, want Closed", b.State())
	}
}

func TestPermanentErrorPassesThrough(t *testing.T) {
	errBad := errors.New("malformed request")
	m := &scriptedMarket{errs: []error{errBad}}
	b := New(m, Config{
		Threshold: 1,
		Clock:     newStepClock(),
		Permanent: func(err error) bool { return errors.Is(err, errBad) },
	})
	_, err := b.Run(&hit.Group{})
	if !errors.Is(err, errBad) {
		t.Fatalf("Run = %v, want the permanent error surfaced", err)
	}
	// A permanent rejection proves the backend reachable: circuit
	// stays closed even at Threshold 1.
	if b.State() != Closed {
		t.Errorf("state = %v, want Closed", b.State())
	}
	if got := m.callCount(); got != 1 {
		t.Errorf("backend calls = %d, want 1 (no retry)", got)
	}
}

func TestCloseReleasesParked(t *testing.T) {
	clk := newStepClock()
	m := &scriptedMarket{errs: []error{errBoom}}
	b := New(m, Config{Threshold: 1, Cooldown: time.Minute, Clock: clk})

	done := make(chan error, 1)
	go func() {
		_, err := b.Run(&hit.Group{})
		done <- err
	}()
	waitFor(t, "caller parked", func() bool { return b.Parked() == 1 })

	b.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("parked call after Close = %v, want ErrClosed", err)
	}
	// Later calls fail fast; Close is idempotent.
	b.Close()
	if _, err := b.Run(&hit.Group{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Run after Close = %v, want ErrClosed", err)
	}
}

func TestRunAsyncDeliversThroughBreaker(t *testing.T) {
	m := &scriptedMarket{errs: []error{errBoom, nil}}
	b := New(m, Config{Threshold: 5, Clock: newStepClock()})
	a := <-b.RunAsync(&hit.Group{})
	if a.Err != nil || a.Result == nil {
		t.Fatalf("RunAsync = %+v; want success after one absorbed failure", a)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", Open: "open", HalfOpen: "half-open", State(9): "unknown"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
