// Package circuit wraps a crowd.Marketplace in a circuit breaker so a
// marketplace outage degrades the query service instead of failing
// queries. A run of consecutive transient failures trips the breaker
// open; while open, posting calls park (the queries stay alive and
// journaled) instead of burning their retry budgets against a dead
// backend. After a cooldown the breaker lets a single probe through
// (half-open); a probe success closes the circuit and releases every
// parked call, a probe failure re-opens it for another cooldown.
//
// The breaker never surfaces transient backend errors to its callers:
// Run retries through the breaker until the backend recovers, so the
// only errors callers see are permanent ones (as classified by
// Config.Permanent — e.g. malformed-request rejections) and ErrClosed
// on shutdown. Per-query deadlines, enforced above the breaker, are
// the escape hatch for callers that must not wait forever.
package circuit

import (
	"errors"
	"sync"
	"time"

	"qurk/internal/crowd"
	"qurk/internal/hit"
)

// ErrClosed is returned to parked and subsequent calls after Close:
// the breaker is shutting down and will never release them.
var ErrClosed = errors.New("circuit: breaker shut down")

// Clock abstracts wall time so tests drive cooldowns deterministically.
// It is structurally compatible with mturk.FakeClock.
type Clock interface {
	// Now reports the current time.
	Now() time.Time
	// Sleep blocks for the given duration.
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// State is the breaker's position: Closed (normal flow), Open (backend
// presumed down, calls park), or HalfOpen (cooldown elapsed, one probe
// in flight decides).
type State int

// Breaker states, in the order a failing backend traverses them.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String names the state for status endpoints and logs.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Config tunes a Breaker. The zero value gets sane defaults.
type Config struct {
	// Threshold is the number of consecutive transient failures that
	// trips the breaker open. Default 5.
	Threshold int
	// Cooldown is how long the breaker stays open before letting a
	// half-open probe through. Default 30s.
	Cooldown time.Duration
	// Clock drives the cooldown timer; nil means wall time.
	Clock Clock
	// Permanent classifies errors that must pass through to the caller
	// instead of being retried — logical request failures the backend
	// will reject forever (e.g. HTTP 4xx other than throttling). A
	// permanent error proves the backend is reachable, so it also
	// resets the failure count. Nil means every error is transient.
	Permanent func(error) bool
}

// Breaker wraps a Marketplace with circuit-breaking park-and-retry
// semantics. It is safe for concurrent use.
type Breaker struct {
	inner crowd.Marketplace
	cfg   Config

	mu       sync.Mutex
	state    State
	failures int           // consecutive transient failures while closed
	probing  bool          // a half-open probe is in flight
	parked   int           // calls waiting for the circuit to close
	shut     bool          // Close was called
	wake     chan struct{} // closed+replaced on every release-worthy transition
	gen      int           // open generation; guards stale cooldown timers
}

// New wraps inner in a breaker with the given config.
func New(inner crowd.Marketplace, cfg Config) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	return &Breaker{inner: inner, cfg: cfg, wake: make(chan struct{})}
}

// Run posts one group through the breaker. Transient failures are
// absorbed: the call retries (parking while the circuit is open) until
// the group posts successfully, the error is classified permanent, or
// the breaker shuts down.
func (b *Breaker) Run(group *hit.Group) (*crowd.RunResult, error) {
	for {
		if err := b.acquire(); err != nil {
			return nil, err
		}
		res, err := b.inner.Run(group)
		if err == nil {
			b.onSuccess()
			return res, nil
		}
		if b.cfg.Permanent != nil && b.cfg.Permanent(err) {
			// Backend reachable, request rejected: not an outage.
			b.onSuccess()
			return nil, err
		}
		b.onFailure()
	}
}

// RunAsync posts one group without blocking the caller; the breaker's
// park-and-retry happens on the spawned goroutine so a dispatch loop
// above (e.g. the service mux) never stalls on an open circuit.
func (b *Breaker) RunAsync(group *hit.Group) <-chan crowd.Async {
	return crowd.GoRun(func() (*crowd.RunResult, error) { return b.Run(group) })
}

// acquire blocks until the caller may attempt the backend: immediately
// while closed, as the single probe when half-open, otherwise parked
// until a state change releases it.
func (b *Breaker) acquire() error {
	b.mu.Lock()
	for {
		if b.shut {
			b.mu.Unlock()
			return ErrClosed
		}
		if b.state == Closed {
			b.mu.Unlock()
			return nil
		}
		if b.state == HalfOpen && !b.probing {
			b.probing = true
			b.mu.Unlock()
			return nil
		}
		ch := b.wake
		b.parked++
		b.mu.Unlock()
		<-ch
		b.mu.Lock()
		b.parked--
	}
}

// onSuccess records a reachable backend: it resets the failure count
// and, when the call was the half-open probe, closes the circuit and
// releases every parked call.
func (b *Breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state == HalfOpen {
		b.state = Closed
		b.probing = false
		b.broadcast()
	}
}

// onFailure records a transient backend failure, tripping the breaker
// open at the threshold (or immediately when the half-open probe
// fails) and arming the cooldown timer.
func (b *Breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.trip()
		}
	case HalfOpen:
		b.probing = false
		b.trip()
	case Open:
		// An in-flight call from before another caller tripped the
		// breaker; the trip already armed the cooldown.
	}
}

// trip moves to Open and arms the cooldown timer. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.failures = 0
	b.gen++
	go b.reopen(b.gen)
}

// reopen waits out the cooldown, then moves Open→HalfOpen and wakes
// the parked calls so one becomes the probe. The generation check
// drops timers from superseded open periods.
func (b *Breaker) reopen(gen int) {
	b.cfg.Clock.Sleep(b.cfg.Cooldown)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.shut || b.gen != gen || b.state != Open {
		return
	}
	b.state = HalfOpen
	b.probing = false
	b.broadcast()
}

// broadcast releases every parked call. Caller holds b.mu.
func (b *Breaker) broadcast() {
	close(b.wake)
	b.wake = make(chan struct{})
}

// Close shuts the breaker down: parked calls (and any later ones)
// return ErrClosed instead of waiting forever.
func (b *Breaker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.shut {
		return
	}
	b.shut = true
	b.broadcast()
}

// State reports the breaker's current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Parked reports how many calls are waiting for the circuit to close.
func (b *Breaker) Parked() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.parked
}
