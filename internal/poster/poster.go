// Package poster implements the chunked HIT-posting pipeline shared by
// every streaming crowd operator — filters, generatives, joins, crowd
// sorts, feature extraction, and the adaptive filter's probe rounds all
// post marketplace work through one Poster per HIT group. The shape is:
//
//	mint questions (stable ordinal IDs) → fill fixed-size HITs → post
//	fixed-size HIT chunks asynchronously with bounded lookahead → as
//	chunks complete, re-post refused and expired HITs within their
//	retry budgets and resolve each question's votes.
//
// Determinism: the HIT a question lands in depends only on its input
// ordinal and the configured batch size, and the sub-group a HIT is
// posted in depends only on its index and the chunk size — never on
// arrival timing. All sub-groups of one operator share its plan-path
// group ID, so a simulator keyed on hash(seed, groupID, hitID) draws
// identical answer streams no matter how the posting is sliced.
// Re-minted retry HITs derive their IDs from the failed HIT's lineage,
// never from a shared builder, so the invariance survives refusals and
// expirations too.
package poster

import (
	"context"
	"fmt"

	"qurk/internal/crowd"
	"qurk/internal/hit"
)

// Chunk is one sub-group of HITs in flight on the marketplace.
type Chunk struct {
	// HITs are the chunk's posted HITs.
	HITs []*hit.HIT
	ch   <-chan crowd.Async
	// PostedAt is the virtual-clock hours when its inputs were ready.
	PostedAt float64
	// Seq is the global post order, for deterministic collection.
	Seq int
}

// Acct observes a poster's spending: Posted fires the moment a chunk
// goes to the marketplace (posted crowd work is spent whether or not
// anyone waits for it), Collected when its results arrive.
type Acct interface {
	// Posted accounts a chunk at post time.
	Posted(chunk []*hit.HIT, postedAt float64)
	// Collected folds in a completed chunk's assignment and expiry
	// counts, completion time, and exhausted (incomplete) question IDs.
	Collected(assignments, expired int, done float64, incomplete []string)
}

// Config parametrizes a Poster.
type Config struct {
	// Market is the marketplace chunks are posted to.
	Market crowd.Marketplace
	// GroupID labels every chunk (all sub-groups share it).
	GroupID string
	// ChunkHITs is how many HITs accumulate before a chunk posts.
	ChunkHITs int
	// Lookahead bounds posted-but-uncollected chunks in flight.
	Lookahead int
	// Seq, when non-nil, is a shared post-order counter so several
	// posters inside one operator collect in a deterministic global
	// order; nil gives the poster a private counter.
	Seq *int
	// Acct, when non-nil, observes posting and collection.
	Acct Acct
	// RefusedRetries bounds how deep a refused HIT's half-batch
	// re-posting lineage may go (0 disables).
	RefusedRetries int
	// ExpiredRetries bounds how deep an expired HIT's re-posting
	// lineage may go (0 disables).
	ExpiredRetries int
}

// Poster slices one logical HIT group into fixed-size runs and posts
// each run as its own marketplace call, keeping at most Lookahead runs
// in flight. Collection is FIFO per poster.
type Poster struct {
	cfg      Config
	seq      *int
	queued   []*hit.HIT
	inflight []Chunk
	// retries maps a re-minted HIT's ID to its refusal-lineage depth;
	// xretries likewise for expiry lineages, and lineageAsns carries the
	// completed-assignment count down an expiry lineage so exhaustion
	// can tell "partially answered" from "never answered".
	retries     map[string]int
	xretries    map[string]int
	lineageAsns map[string]int
	// carry stashes the partial answers of questions whose HIT is being
	// re-posted after an expiry, keyed by question ID, until the retry
	// resolves and the vote sets merge.
	carry map[string][]hit.CachedAnswer
	// minClock floors the PostedAt stamp of subsequent chunks: a chunk
	// holding retried HITs cannot be posted before the refusal (or
	// expiry) that spawned them was observed on the virtual clock.
	minClock float64
}

// New builds a poster; ChunkHITs and Lookahead must be positive.
func New(cfg Config) *Poster {
	if cfg.Seq == nil {
		cfg.Seq = new(int)
	}
	if cfg.RefusedRetries < 0 {
		cfg.RefusedRetries = 0
	}
	if cfg.ExpiredRetries < 0 {
		cfg.ExpiredRetries = 0
	}
	return &Poster{cfg: cfg, seq: cfg.Seq}
}

// GroupID reports the poster's HIT-group label.
func (p *Poster) GroupID() string { return p.cfg.GroupID }

// Enqueue queues HITs for chunked posting.
func (p *Poster) Enqueue(hs ...*hit.HIT) { p.queued = append(p.queued, hs...) }

// HasChunk reports whether a full chunk is ready (or, when forcing at
// end of stream, any queued HITs remain).
func (p *Poster) HasChunk(force bool) bool {
	return len(p.queued) >= p.cfg.ChunkHITs || (force && len(p.queued) > 0)
}

// CanPost reports whether the lookahead window has room.
func (p *Poster) CanPost() bool { return len(p.inflight) < p.cfg.Lookahead }

// Backlogged means the poster cannot accept more work until a collect.
func (p *Poster) Backlogged() bool { return len(p.queued) >= p.cfg.ChunkHITs && !p.CanPost() }

// Idle reports whether nothing is queued or in flight.
func (p *Poster) Idle() bool { return len(p.queued) == 0 && len(p.inflight) == 0 }

// PostOne posts the next chunk at the given virtual-clock time.
func (p *Poster) PostOne(clock float64) {
	if p.minClock > clock {
		clock = p.minClock
	}
	n := p.cfg.ChunkHITs
	if n > len(p.queued) {
		n = len(p.queued)
	}
	chunk := p.queued[:n:n]
	p.queued = p.queued[n:]
	*p.seq++
	p.inflight = append(p.inflight, Chunk{
		HITs:     chunk,
		ch:       p.cfg.Market.RunAsync(&hit.Group{ID: p.cfg.GroupID, HITs: chunk}),
		PostedAt: clock,
		Seq:      *p.seq,
	})
	if p.cfg.Acct != nil {
		p.cfg.Acct.Posted(chunk, clock)
	}
}

// OldestSeq returns the post sequence of the oldest in-flight chunk,
// or -1 when nothing is in flight.
func (p *Poster) OldestSeq() int {
	if len(p.inflight) == 0 {
		return -1
	}
	return p.inflight[0].Seq
}

// Collect awaits the oldest in-flight chunk.
func (p *Poster) Collect(ctx context.Context) (Chunk, *crowd.RunResult, error) {
	c := p.inflight[0]
	p.inflight = p.inflight[1:]
	res, err := crowd.Await(ctx, c.ch)
	if err != nil {
		return c, nil, err
	}
	return c, res, nil
}

// RetryRefused implements the operator-level retry policy for refused
// HITs (batch too effortful for the price — the paper's stalled
// group-size experiments, §4.2.2/§6): each refused HIT's questions are
// re-minted into HITs of half the batch size and queued for
// re-posting, down a lineage at most RefusedRetries deep. Re-minted
// HIT IDs derive from the refused HIT's ID — never from the shared
// builder — so the retry stream (and a simulator's per-HIT answer
// draws) is bit-identical at any chunk/lookahead setting.
//
// It returns how many occurrences of each question ID are now being
// retried — the caller must skip resolving exactly that many
// occurrences in this chunk (join pair keys can repeat across HITs) —
// and the exhausted questions' IDs, which resolve with zero votes.
// Single-question HITs (including SmartBatch grids and comparison
// groups) cannot shrink and exhaust immediately. observedAt is the
// virtual-clock time the refusal was learned; later chunks cannot be
// posted before it.
func (p *Poster) RetryRefused(c Chunk, incomplete []string, observedAt float64) (map[string]int, []string, error) {
	if len(incomplete) == 0 {
		return nil, nil, nil
	}
	refused := make(map[string]bool, len(incomplete))
	for _, id := range incomplete {
		refused[id] = true
	}
	var retrying map[string]int
	var exhausted []string
	for _, h := range c.HITs {
		if !refused[h.ID] {
			continue
		}
		depth := p.retries[h.ID]
		if p.cfg.RefusedRetries <= 0 || len(h.Questions) <= 1 || depth >= p.cfg.RefusedRetries {
			for qi := range h.Questions {
				exhausted = append(exhausted, h.Questions[qi].ID)
			}
			continue
		}
		n := len(h.Questions) / 2
		for start, child := 0, 0; start < len(h.Questions); start, child = start+n, child+1 {
			end := min(start+n, len(h.Questions))
			nh := &hit.HIT{
				ID:          fmt.Sprintf("%s/r%d", h.ID, child),
				GroupID:     h.GroupID,
				Kind:        h.Kind,
				Assignments: h.Assignments,
				RewardCents: h.RewardCents,
				Questions:   append([]hit.Question(nil), h.Questions[start:end]...),
			}
			if err := nh.Validate(); err != nil {
				return nil, nil, err
			}
			if p.retries == nil {
				p.retries = map[string]int{}
			}
			p.retries[nh.ID] = depth + 1
			p.Enqueue(nh)
		}
		if retrying == nil {
			retrying = map[string]int{}
		}
		for qi := range h.Questions {
			retrying[h.Questions[qi].ID]++
		}
	}
	if retrying != nil && observedAt > p.minClock {
		p.minClock = observedAt
	}
	return retrying, exhausted, nil
}

// RetryExpired implements the assignment-timeout policy for HITs whose
// assignments were accepted but never submitted (a live marketplace
// surfaces this as assignment expiration): each such HIT is re-posted
// with the SAME questions but only the missing assignment count, down
// a lineage at most ExpiredRetries deep. Re-minted HIT IDs derive from
// the expired HIT's ID ("<id>/x<depth>") — never from the shared
// builder — so, exactly as with refusal retries, the retry stream is
// bit-identical at any chunk/lookahead setting.
//
// It returns how many occurrences of each question ID are deferred to
// the retry (the caller stashes their partial votes via StashCarry and
// skips resolving that many occurrences this chunk) plus the questions
// that exhausted the expiry budget WITHOUT ever receiving a completed
// assignment anywhere down their lineage — the only expiry outcome
// that loses a question. Exhausted questions that do hold partial
// votes simply resolve with them. observedAt is the virtual-clock time
// the expiry was detected (the assignment deadline); later chunks
// cannot be posted before it.
func (p *Poster) RetryExpired(c Chunk, res *crowd.RunResult, observedAt float64) (map[string]int, []string, error) {
	if len(res.Expired) == 0 {
		return nil, nil, nil
	}
	completed := map[string]int{}
	for i := range res.Assignments {
		completed[res.Assignments[i].HITID]++
	}
	var retrying map[string]int
	var incomplete []string
	for _, h := range c.HITs {
		missing := res.Expired[h.ID]
		if missing <= 0 {
			continue
		}
		total := p.lineageAsns[h.ID] + completed[h.ID]
		delete(p.lineageAsns, h.ID)
		depth := p.xretries[h.ID]
		if p.cfg.ExpiredRetries <= 0 || depth >= p.cfg.ExpiredRetries {
			if total == 0 {
				for qi := range h.Questions {
					incomplete = append(incomplete, h.Questions[qi].ID)
				}
			}
			continue
		}
		nh := &hit.HIT{
			ID:          fmt.Sprintf("%s/x%d", h.ID, depth+1),
			GroupID:     h.GroupID,
			Kind:        h.Kind,
			Assignments: missing,
			RewardCents: h.RewardCents,
			Questions:   append([]hit.Question(nil), h.Questions...),
		}
		if err := nh.Validate(); err != nil {
			return nil, nil, err
		}
		if p.xretries == nil {
			p.xretries = map[string]int{}
		}
		if p.lineageAsns == nil {
			p.lineageAsns = map[string]int{}
		}
		p.xretries[nh.ID] = depth + 1
		p.lineageAsns[nh.ID] = total
		p.Enqueue(nh)
		if retrying == nil {
			retrying = map[string]int{}
		}
		for qi := range h.Questions {
			retrying[h.Questions[qi].ID]++
		}
	}
	if retrying != nil && observedAt > p.minClock {
		p.minClock = observedAt
	}
	return retrying, incomplete, nil
}

// MergeRetrying folds two per-question deferral counts (refusal and
// expiry retries) into one; a HIT is never both refused and expired, so
// the counts are disjoint by HIT but can share question IDs on the join
// path, where pair keys repeat across HITs.
func MergeRetrying(a, b map[string]int) map[string]int {
	if len(b) == 0 {
		return a
	}
	if a == nil {
		return b
	}
	for qid, n := range b {
		a[qid] += n
	}
	return a
}

// StashCarry saves a question's partial answers until its expiry retry
// resolves; TakeCarry prepends them back. Both are no-ops for questions
// with nothing stashed.
func (p *Poster) StashCarry(qid string, as []hit.CachedAnswer) {
	if len(as) == 0 {
		return
	}
	if p.carry == nil {
		p.carry = map[string][]hit.CachedAnswer{}
	}
	p.carry[qid] = append(p.carry[qid], as...)
}

// TakeCarry merges a question's stashed partial answers (in lineage
// order) ahead of the newly arrived ones.
func (p *Poster) TakeCarry(qid string, as []hit.CachedAnswer) []hit.CachedAnswer {
	ca := p.carry[qid]
	if len(ca) == 0 {
		return as
	}
	delete(p.carry, qid)
	return append(append([]hit.CachedAnswer(nil), ca...), as...)
}

// FlushQuestions merges buffered questions into HITs of exactly `size`
// (plus one final partial when forcing at end of input) and queues
// them on the poster. Shared by every streaming crowd operator so the
// HIT sizes match what a single materialized Merge would produce.
func (p *Poster) FlushQuestions(b *hit.Builder, qbuf *[]hit.Question, size int, force bool) error {
	for len(*qbuf) >= size || (force && len(*qbuf) > 0) {
		n := size
		if n > len(*qbuf) {
			n = len(*qbuf)
		}
		hs, err := b.Merge((*qbuf)[:n:n], n)
		if err != nil {
			return err
		}
		p.Enqueue(hs...)
		*qbuf = append((*qbuf)[:0], (*qbuf)[n:]...)
	}
	return nil
}

// Resolve is CollectOne's per-question callback: q's carry-merged
// answers (possibly empty for refusal-exhausted questions) and the
// chunk's virtual-clock completion time.
type Resolve func(q *hit.Question, as []hit.CachedAnswer, done float64) error

// CollectOne awaits the oldest in-flight chunk, re-posts refused and
// expired HITs within their retry budgets, and resolves every question
// not deferred to a retry, in HIT-then-question order, with its
// carry-merged answers. Exhausted questions (refusal budget spent, or
// expiry budget spent with a voteless lineage) are reported to the
// Acct as incomplete; refusal-exhausted occurrences still get a
// Resolve call with zero answers so the caller can close out their
// slots. It returns the chunk's completion time on the virtual clock.
func (p *Poster) CollectOne(ctx context.Context, resolve Resolve) (float64, error) {
	c, res, err := p.Collect(ctx)
	if err != nil {
		return 0, err
	}
	done := c.PostedAt + res.MakespanHours
	retrying, exhausted, err := p.RetryRefused(c, res.Incomplete, done)
	if err != nil {
		return 0, err
	}
	xretrying, xincomplete, err := p.RetryExpired(c, res, done)
	if err != nil {
		return 0, err
	}
	retrying = MergeRetrying(retrying, xretrying)
	answers := map[string][]hit.CachedAnswer{}
	hit.ForEachAnswer(c.HITs, res.Assignments, func(q *hit.Question, worker string, ans hit.Answer) {
		answers[q.ID] = append(answers[q.ID], hit.CachedAnswer{WorkerID: worker, Answer: ans})
	})
	for _, h := range c.HITs {
		for qi := range h.Questions {
			q := &h.Questions[qi]
			if retrying[q.ID] > 0 {
				retrying[q.ID]--
				p.StashCarry(q.ID, answers[q.ID])
				delete(answers, q.ID)
				continue
			}
			merged := p.TakeCarry(q.ID, answers[q.ID])
			answers[q.ID] = merged
			if err := resolve(q, merged, done); err != nil {
				return 0, err
			}
		}
	}
	exhausted = append(exhausted, xincomplete...)
	if p.cfg.Acct != nil {
		p.cfg.Acct.Collected(res.TotalAssignments, ExpiredCount(res.Expired), done, exhausted)
	}
	return done, nil
}

// Drain drives a fully enqueued poster to completion: post chunks
// (bounded by the lookahead), collect them FIFO, re-post retries, and
// resolve every question via CollectOne. Used by blocking phases
// (crowd sorts, build-side feature extraction, adaptive probe rounds)
// so that posting overlaps collection within the phase and the retry
// policies apply. clock is the virtual-clock time the phase's inputs
// became ready; the returned time is the last chunk's completion (or
// clock when nothing was posted).
func (p *Poster) Drain(ctx context.Context, clock float64, resolve Resolve) (float64, error) {
	last := clock
	for !p.Idle() {
		if err := ctx.Err(); err != nil {
			return last, err
		}
		for p.CanPost() && p.HasChunk(true) {
			p.PostOne(clock)
		}
		done, err := p.CollectOne(ctx, resolve)
		if err != nil {
			return last, err
		}
		if done > last {
			last = done
		}
	}
	return last, nil
}

// ExpiredCount totals a chunk's expired assignments for stats.
func ExpiredCount(expired map[string]int) int {
	n := 0
	for _, c := range expired {
		n += c
	}
	return n
}
