package relation

import (
	"fmt"
	"sort"
)

// Relation is an in-memory table: a schema plus an ordered list of tuples.
// Order matters because crowd sorts produce ordered results.
type Relation struct {
	name   string
	schema *Schema
	rows   []Tuple
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{name: name, schema: schema}
}

// FromTuples creates a relation from existing tuples, validating that each
// tuple's schema matches.
func FromTuples(name string, schema *Schema, rows []Tuple) (*Relation, error) {
	r := New(name, schema)
	for i, t := range rows {
		if t.Len() != schema.Len() {
			return nil, fmt.Errorf("relation: row %d arity %d != schema arity %d", i, t.Len(), schema.Len())
		}
		rt, err := t.Rebind(schema)
		if err != nil {
			return nil, err
		}
		r.rows = append(r.rows, rt)
	}
	return r, nil
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.rows) }

// Row returns the i'th tuple.
func (r *Relation) Row(i int) Tuple { return r.rows[i] }

// Rows returns a copy of the row slice (tuples themselves are immutable).
func (r *Relation) Rows() []Tuple {
	out := make([]Tuple, len(r.rows))
	copy(out, r.rows)
	return out
}

// Append adds a row, validating arity.
func (r *Relation) Append(t Tuple) error {
	if t.Len() != r.schema.Len() {
		return fmt.Errorf("relation: append arity %d != schema arity %d", t.Len(), r.schema.Len())
	}
	rt, err := t.Rebind(r.schema)
	if err != nil {
		return err
	}
	r.rows = append(r.rows, rt)
	return nil
}

// AppendValues builds a tuple from vals and appends it.
func (r *Relation) AppendValues(vals ...Value) error {
	t, err := NewTuple(r.schema, vals...)
	if err != nil {
		return err
	}
	r.rows = append(r.rows, t)
	return nil
}

// Select returns a new relation with only the rows where pred is true.
// This is the machine-side (non-HIT) selection used by the planner's
// pushdown rule (paper §2.5).
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.name, r.schema)
	for _, t := range r.rows {
		if pred(t) {
			out.rows = append(out.rows, t)
		}
	}
	return out
}

// Project returns a new relation containing only the named columns.
func (r *Relation) Project(names ...string) (*Relation, error) {
	schema, ords, err := r.schema.Project(names...)
	if err != nil {
		return nil, err
	}
	out := New(r.name, schema)
	for _, t := range r.rows {
		out.rows = append(out.rows, t.Project(schema, ords))
	}
	return out, nil
}

// Qualify returns the same rows under an alias-qualified schema.
func (r *Relation) Qualify(alias string) *Relation {
	schema := r.schema.Qualify(alias)
	out := New(alias, schema)
	for _, t := range r.rows {
		rt, _ := t.Rebind(schema)
		out.rows = append(out.rows, rt)
	}
	return out
}

// SortBy returns a new relation sorted by the given less function
// (machine-side sort; crowd sorts live in internal/sortop).
func (r *Relation) SortBy(less func(a, b Tuple) bool) *Relation {
	out := New(r.name, r.schema)
	out.rows = r.Rows()
	sort.SliceStable(out.rows, func(i, j int) bool { return less(out.rows[i], out.rows[j]) })
	return out
}

// SortByColumn sorts ascending by one column using Value.Compare.
func (r *Relation) SortByColumn(name string) (*Relation, error) {
	if !r.schema.Has(name) {
		return nil, fmt.Errorf("relation: no column %q in %s", name, r.schema)
	}
	return r.SortBy(func(a, b Tuple) bool {
		return a.MustGet(name).Compare(b.MustGet(name)) < 0
	}), nil
}

// Limit returns the first n rows (or all rows if n exceeds Len).
func (r *Relation) Limit(n int) *Relation {
	if n < 0 || n > len(r.rows) {
		n = len(r.rows)
	}
	out := New(r.name, r.schema)
	out.rows = append(out.rows, r.rows[:n]...)
	return out
}

// CrossProduct returns the Cartesian product of r and o under a combined
// schema. The crowd join prunes this with feature filters; the relational
// cross product is the correctness baseline tests compare against.
func (r *Relation) CrossProduct(o *Relation) (*Relation, error) {
	schema, err := r.schema.Concat(o.schema)
	if err != nil {
		return nil, err
	}
	out := New(r.name+"_x_"+o.name, schema)
	for _, a := range r.rows {
		for _, b := range o.rows {
			out.rows = append(out.rows, a.Concat(b, schema))
		}
	}
	return out, nil
}

// Clone returns a deep-enough copy (tuples are immutable, so sharing them
// is safe; the row slice is copied).
func (r *Relation) Clone() *Relation {
	out := New(r.name, r.schema)
	out.rows = r.Rows()
	return out
}

// Column extracts a single column as a value slice.
func (r *Relation) Column(name string) ([]Value, error) {
	i := r.schema.Ordinal(name)
	if i < 0 {
		return nil, fmt.Errorf("relation: no column %q in %s", name, r.schema)
	}
	out := make([]Value, len(r.rows))
	for j, t := range r.rows {
		out[j] = t.At(i)
	}
	return out, nil
}

// String renders a compact description, e.g. "celeb(name text, img url)[20 rows]".
func (r *Relation) String() string {
	return fmt.Sprintf("%s%s[%d rows]", r.name, r.schema, len(r.rows))
}
