package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row: a flat slice of values aligned with a schema.
type Tuple struct {
	schema *Schema
	vals   []Value
}

// NewTuple builds a tuple over schema with the given values.
func NewTuple(schema *Schema, vals ...Value) (Tuple, error) {
	if len(vals) != schema.Len() {
		return Tuple{}, fmt.Errorf("relation: tuple has %d values, schema %s has %d columns",
			len(vals), schema, schema.Len())
	}
	v := make([]Value, len(vals))
	copy(v, vals)
	return Tuple{schema: schema, vals: v}, nil
}

// MustTuple is NewTuple that panics on error; for tests and generators.
func MustTuple(schema *Schema, vals ...Value) Tuple {
	t, err := NewTuple(schema, vals...)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the tuple's schema.
func (t Tuple) Schema() *Schema { return t.schema }

// Len returns the number of fields.
func (t Tuple) Len() int { return len(t.vals) }

// At returns the i'th value.
func (t Tuple) At(i int) Value { return t.vals[i] }

// Get returns the value of the named column; the second result reports
// whether the column exists.
func (t Tuple) Get(name string) (Value, bool) {
	i := t.schema.Ordinal(name)
	if i < 0 {
		return Null(), false
	}
	return t.vals[i], true
}

// MustGet returns the named value or panics; for code paths where the
// planner has already validated the column.
func (t Tuple) MustGet(name string) Value {
	v, ok := t.Get(name)
	if !ok {
		panic(fmt.Sprintf("relation: no column %q in %s", name, t.schema))
	}
	return v
}

// With returns a copy of the tuple with column name set to v.
func (t Tuple) With(name string, v Value) (Tuple, error) {
	i := t.schema.Ordinal(name)
	if i < 0 {
		return Tuple{}, fmt.Errorf("relation: no column %q in %s", name, t.schema)
	}
	vals := make([]Value, len(t.vals))
	copy(vals, t.vals)
	vals[i] = v
	return Tuple{schema: t.schema, vals: vals}, nil
}

// Project returns a new tuple containing only the named columns.
func (t Tuple) Project(out *Schema, ordinals []int) Tuple {
	vals := make([]Value, len(ordinals))
	for i, ord := range ordinals {
		vals[i] = t.vals[ord]
	}
	return Tuple{schema: out, vals: vals}
}

// Concat joins two tuples under a combined schema (for join results).
func (t Tuple) Concat(o Tuple, combined *Schema) Tuple {
	vals := make([]Value, 0, len(t.vals)+len(o.vals))
	vals = append(vals, t.vals...)
	vals = append(vals, o.vals...)
	return Tuple{schema: combined, vals: vals}
}

// Rebind returns the same values under a different (equal-arity) schema.
func (t Tuple) Rebind(s *Schema) (Tuple, error) {
	if s.Len() != len(t.vals) {
		return Tuple{}, fmt.Errorf("relation: rebind arity mismatch: %d values vs schema %s", len(t.vals), s)
	}
	return Tuple{schema: s, vals: t.vals}, nil
}

// Key returns a stable content hash of the tuple, used by the task cache
// to memoize HITs over identical inputs (TurKit-style, paper §2.6).
// The byte sequence hashed — (kind byte, String() bytes, NUL) per value
// under FNV-1a — is load-bearing: WAL checkpoint digests, the answer
// store, and spill digests all embed these values, so the manual fold
// below must stay byte-identical to the original hash/fnv version.
func (t Tuple) Key() uint64 {
	h := uint64(fnvOffset64)
	for _, v := range t.vals {
		h = v.hashInto(h)
	}
	return h
}

// CanonicalKey returns a content hash that is independent of column
// order and of query-specific alias qualifiers: each (column, value)
// pair is hashed as (base column name, value kind, value text), with
// the pairs sorted lexicographically before hashing. Two tuples that
// carry the same named content — even if one query projected the
// columns in a different order or under a different table alias —
// produce the same key. The cross-query answer store keys on this so
// identical questions asked by different queries share crowd votes;
// the positional Key above stays as-is for within-run identity.
func (t Tuple) CanonicalKey() uint64 {
	parts := make([]string, len(t.vals))
	for i, v := range t.vals {
		name := ""
		if t.schema != nil && i < t.schema.Len() {
			name = strings.ToLower(t.schema.Column(i).Name)
			if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
				name = name[dot+1:]
			}
		}
		parts[i] = name + "\x00" + string([]byte{byte(v.kind)}) + "\x00" + v.String()
	}
	sort.Strings(parts)
	h := uint64(fnvOffset64)
	for _, p := range parts {
		h = fnvString(h, p)
		h = fnvByte(h, 0xff)
	}
	return h
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t.vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports deep equality of two tuples (strict: UNKNOWN != value).
func (t Tuple) Equal(o Tuple) bool {
	if len(t.vals) != len(o.vals) {
		return false
	}
	for i := range t.vals {
		if !t.vals[i].StrictEqual(o.vals[i]) {
			return false
		}
	}
	return true
}
