package relation

import "testing"

func TestCanonicalKeyIgnoresColumnOrderAndAlias(t *testing.T) {
	a := MustSchema(Column{Name: "name", Kind: KindText}, Column{Name: "img", Kind: KindText})
	b := MustSchema(Column{Name: "c.img", Kind: KindText}, Column{Name: "C.Name", Kind: KindText})
	ta := MustTuple(a, Text("alice"), Text("alice.jpg"))
	tb := MustTuple(b, Text("alice.jpg"), Text("alice"))
	if ta.CanonicalKey() != tb.CanonicalKey() {
		t.Fatal("canonical keys should match across column order and alias qualifiers")
	}
	// Positional Key is (intentionally) order-sensitive.
	if ta.Key() == tb.Key() {
		t.Fatal("positional keys should differ for reordered values")
	}
}

func TestCanonicalKeyDistinguishesContent(t *testing.T) {
	s := MustSchema(Column{Name: "name", Kind: KindText}, Column{Name: "img", Kind: KindText})
	a := MustTuple(s, Text("alice"), Text("alice.jpg"))
	b := MustTuple(s, Text("alice.jpg"), Text("alice")) // same values, swapped columns
	c := MustTuple(s, Text("bob"), Text("bob.jpg"))
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Fatal("swapping values across differently-named columns changes content")
	}
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Fatal("different content must produce different keys")
	}
}

func TestCanonicalKeyDistinguishesValueKinds(t *testing.T) {
	s := MustSchema(Column{Name: "v", Kind: KindText})
	si := MustSchema(Column{Name: "v", Kind: KindInt})
	a := MustTuple(s, Text("1"))
	b := MustTuple(si, Int(1))
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Fatal("text \"1\" and int 1 must hash differently")
	}
}
