package relation

import (
	"bytes"
	"strings"
	"testing"
)

func celebSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(Column{Name: "name", Kind: KindText}, Column{Name: "img", Kind: KindURL})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := celebSchema(t)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Ordinal("name") != 0 || s.Ordinal("IMG") != 1 {
		t.Error("ordinal lookup failed")
	}
	if s.Ordinal("missing") != -1 {
		t.Error("missing column should be -1")
	}
	if !s.Has("img") || s.Has("nope") {
		t.Error("Has broken")
	}
}

func TestSchemaDuplicateRejected(t *testing.T) {
	_, err := NewSchema(Column{Name: "a", Kind: KindText}, Column{Name: "A", Kind: KindInt})
	if err == nil {
		t.Fatal("duplicate (case-insensitive) column accepted")
	}
	_, err = NewSchema(Column{Name: "", Kind: KindText})
	if err == nil {
		t.Fatal("empty column name accepted")
	}
}

func TestSchemaQualifyAndSuffixLookup(t *testing.T) {
	s := celebSchema(t).Qualify("c")
	if s.Column(0).Name != "c.name" {
		t.Fatalf("qualified name = %q", s.Column(0).Name)
	}
	// Unqualified lookup matches the suffix.
	if s.Ordinal("name") != 0 {
		t.Error("suffix lookup failed")
	}
	// Qualified lookup of a qualified schema.
	if s.Ordinal("c.img") != 1 {
		t.Error("qualified lookup failed")
	}
	// Re-qualifying strips the old alias.
	s2 := s.Qualify("d")
	if s2.Column(0).Name != "d.name" {
		t.Errorf("requalified = %q", s2.Column(0).Name)
	}
}

func TestSchemaAmbiguousSuffix(t *testing.T) {
	a := MustSchema(Column{Name: "c.img", Kind: KindURL}, Column{Name: "p.img", Kind: KindURL})
	if got := a.Ordinal("img"); got != -1 {
		t.Errorf("ambiguous suffix lookup = %d, want -1", got)
	}
}

func TestSchemaConcat(t *testing.T) {
	a := celebSchema(t).Qualify("c")
	b := celebSchema(t).Qualify("p")
	j, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Fatalf("concat len = %d", j.Len())
	}
	if _, err := a.Concat(a); err == nil {
		t.Error("self-concat should fail with duplicate columns")
	}
}

func TestTupleAccessorsAndWith(t *testing.T) {
	s := celebSchema(t)
	tp := MustTuple(s, Text("Brad"), URL("http://x/brad.jpg"))
	if v, ok := tp.Get("name"); !ok || v.Text() != "Brad" {
		t.Fatalf("Get(name) = %v, %v", v, ok)
	}
	if _, ok := tp.Get("zzz"); ok {
		t.Error("Get(zzz) should fail")
	}
	tp2, err := tp.With("name", Text("Angelina"))
	if err != nil {
		t.Fatal(err)
	}
	if tp2.MustGet("name").Text() != "Angelina" || tp.MustGet("name").Text() != "Brad" {
		t.Error("With should copy, not mutate")
	}
	if _, err := tp.With("zzz", Null()); err == nil {
		t.Error("With(zzz) should fail")
	}
}

func TestTupleArityValidation(t *testing.T) {
	s := celebSchema(t)
	if _, err := NewTuple(s, Text("only one")); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestTupleKeyStability(t *testing.T) {
	s := celebSchema(t)
	a := MustTuple(s, Text("Brad"), URL("u"))
	b := MustTuple(s, Text("Brad"), URL("u"))
	c := MustTuple(s, Text("Brad"), URL("v"))
	if a.Key() != b.Key() {
		t.Error("identical tuples should share a key")
	}
	if a.Key() == c.Key() {
		t.Error("different tuples should (almost surely) differ")
	}
}

func TestRelationSelectProjectSortLimit(t *testing.T) {
	s := MustSchema(Column{Name: "label", Kind: KindText}, Column{Name: "size", Kind: KindInt})
	r := New("squares", s)
	for i := int64(5); i >= 1; i-- {
		if err := r.AppendValues(Text(strings.Repeat("x", int(i))), Int(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}
	big := r.Select(func(t Tuple) bool { return t.MustGet("size").Int() >= 3 })
	if big.Len() != 3 {
		t.Errorf("Select: %d rows, want 3", big.Len())
	}
	sorted, err := r.SortByColumn("size")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sorted.Len(); i++ {
		if sorted.Row(i).MustGet("size").Int() != int64(i+1) {
			t.Fatalf("sorted[%d] = %v", i, sorted.Row(i))
		}
	}
	proj, err := r.Project("size")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Schema().Len() != 1 || proj.Len() != 5 {
		t.Error("projection wrong shape")
	}
	if lim := r.Limit(2); lim.Len() != 2 {
		t.Error("limit wrong")
	}
	if lim := r.Limit(100); lim.Len() != 5 {
		t.Error("limit beyond len wrong")
	}
}

func TestRelationCrossProduct(t *testing.T) {
	s := celebSchema(t)
	a := New("celeb", s.Qualify("c"))
	b := New("photos", s.Qualify("p"))
	for i := 0; i < 3; i++ {
		_ = a.AppendValues(Text("a"), URL("u"))
	}
	for i := 0; i < 4; i++ {
		_ = b.AppendValues(Text("b"), URL("v"))
	}
	x, err := a.CrossProduct(b)
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 12 {
		t.Fatalf("cross product = %d rows, want 12", x.Len())
	}
	if x.Schema().Len() != 4 {
		t.Fatalf("cross schema = %d cols, want 4", x.Schema().Len())
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := celebSchema(t)
	c.Register(New("celeb", s))
	c.RegisterAs("photos", New("p", s))
	if _, err := c.Table("CELEB"); err != nil {
		t.Error("case-insensitive lookup failed")
	}
	if _, err := c.Table("photos"); err != nil {
		t.Error("RegisterAs lookup failed")
	}
	if _, err := c.Table("nope"); err == nil {
		t.Error("missing table should error")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "celeb" || names[1] != "photos" {
		t.Errorf("Names = %v", names)
	}
	c.Drop("celeb")
	if _, err := c.Table("celeb"); err == nil {
		t.Error("dropped table still present")
	}
}

func TestReadWriteDelimitedRoundTrip(t *testing.T) {
	in := "name,img\nBrad,http://x/b.jpg\nAngelina,http://x/a.jpg\n"
	r, err := ReadDelimited("celeb", strings.NewReader(in), LoadOptions{Header: true, Kinds: []Kind{KindText, KindURL}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Schema().Column(1).Kind != KindURL {
		t.Fatalf("loaded %v", r)
	}
	var buf bytes.Buffer
	if err := WriteDelimited(r, &buf, ','); err != nil {
		t.Fatal(err)
	}
	if buf.String() != in {
		t.Errorf("round trip:\n got %q\nwant %q", buf.String(), in)
	}
}

func TestReadDelimitedErrors(t *testing.T) {
	if _, err := ReadDelimited("x", strings.NewReader(""), LoadOptions{Header: true}); err == nil {
		t.Error("empty input should error")
	}
	bad := "a,b\n1\n"
	if _, err := ReadDelimited("x", strings.NewReader(bad), LoadOptions{Header: true}); err == nil {
		t.Error("ragged rows should error")
	}
	notInt := "n\nxyz\n"
	if _, err := ReadDelimited("x", strings.NewReader(notInt), LoadOptions{Header: true, Kinds: []Kind{KindInt}}); err == nil {
		t.Error("bad int should error")
	}
}

func TestReadDelimitedNoHeader(t *testing.T) {
	r, err := ReadDelimited("x", strings.NewReader("a,b\nc,d\n"), LoadOptions{Header: false})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Schema().Column(0).Name != "col0" {
		t.Errorf("no-header load: %v", r)
	}
}
