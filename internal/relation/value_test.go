package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{Text("abc"), KindText, "abc"},
		{Int(42), KindInt, "42"},
		{Float(2.5), KindFloat, "2.5"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{URL("http://x/y.jpg"), KindURL, "http://x/y.jpg"},
		{Unknown(), KindUnknown, "UNKNOWN"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v: String() = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
}

func TestValueNumericAccessors(t *testing.T) {
	if got := Int(7).Float(); got != 7.0 {
		t.Errorf("Int(7).Float() = %v", got)
	}
	if got := Float(7.9).Int(); got != 7 {
		t.Errorf("Float(7.9).Int() = %v", got)
	}
	if got := Text("12").Int(); got != 12 {
		t.Errorf("Text(12).Int() = %v", got)
	}
	if got := Text("3.5").Float(); got != 3.5 {
		t.Errorf("Text(3.5).Float() = %v", got)
	}
	if !Bool(true).Bool() || Bool(false).Bool() {
		t.Error("Bool accessor broken")
	}
	if !Int(1).Bool() || Int(0).Bool() {
		t.Error("Int truthiness broken")
	}
}

func TestUnknownEqualsEverything(t *testing.T) {
	// Paper §2.4: UNKNOWN "is equal to any other value, so that an
	// UNKNOWN value does not remove potential join candidates."
	others := []Value{Text("x"), Int(1), Float(2.5), Bool(false), URL("u"), Unknown()}
	for _, o := range others {
		if !Unknown().Equal(o) {
			t.Errorf("Unknown().Equal(%v) = false, want true", o)
		}
		if !o.Equal(Unknown()) {
			t.Errorf("%v.Equal(Unknown()) = false, want true", o)
		}
	}
	// Null is not a wildcard.
	if Null().Equal(Text("x")) {
		t.Error("Null().Equal(Text) = true, want false")
	}
	if !Null().Equal(Null()) {
		t.Error("Null().Equal(Null) = false, want true")
	}
}

func TestStrictEqualDistinguishesUnknown(t *testing.T) {
	if Unknown().StrictEqual(Text("x")) {
		t.Error("StrictEqual: UNKNOWN == text, want false")
	}
	if !Unknown().StrictEqual(Unknown()) {
		t.Error("StrictEqual: UNKNOWN != UNKNOWN, want true")
	}
}

func TestValueEqualMixedNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) != Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) == Float(3.5)")
	}
	if Int(3).Equal(Text("3")) {
		t.Error("Int(3) == Text(3): kinds differ, want false")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Text("a"), Text("b"), -1},
		{Null(), Int(1), -1},
		{Unknown(), Int(1), -1},
		{Null(), Unknown(), 0},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCoerce(t *testing.T) {
	v, err := Text("42").Coerce(KindInt)
	if err != nil || v.Int() != 42 {
		t.Errorf("coerce text->int: %v, %v", v, err)
	}
	v, err = Text("2.5").Coerce(KindFloat)
	if err != nil || v.Float() != 2.5 {
		t.Errorf("coerce text->float: %v, %v", v, err)
	}
	v, err = Text("true").Coerce(KindBool)
	if err != nil || !v.Bool() {
		t.Errorf("coerce text->bool: %v, %v", v, err)
	}
	v, err = Int(7).Coerce(KindText)
	if err != nil || v.Text() != "7" {
		t.Errorf("coerce int->text: %v, %v", v, err)
	}
	if _, err = Text("nope").Coerce(KindInt); err == nil {
		t.Error("coerce bad text->int: want error")
	}
	// NULL and UNKNOWN pass through coercion untouched.
	v, err = Null().Coerce(KindInt)
	if err != nil || !v.IsNull() {
		t.Errorf("coerce null: %v, %v", v, err)
	}
	v, err = Unknown().Coerce(KindInt)
	if err != nil || !v.IsUnknown() {
		t.Errorf("coerce unknown: %v, %v", v, err)
	}
}

func TestParseKind(t *testing.T) {
	for in, want := range map[string]Kind{
		"text": KindText, "TEXT": KindText, "varchar": KindText,
		"int": KindInt, "integer": KindInt,
		"float": KindFloat, "double": KindFloat,
		"bool": KindBool, "url": KindURL,
	} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob): want error")
	}
}

// Property: Equal is symmetric and Compare is antisymmetric for random
// int/float/text values.
func TestValueProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Value {
		switch rng.Intn(4) {
		case 0:
			return Int(int64(rng.Intn(100) - 50))
		case 1:
			return Float(rng.NormFloat64())
		case 2:
			return Text(string(rune('a' + rng.Intn(26))))
		default:
			return Bool(rng.Intn(2) == 0)
		}
	}
	symmetric := func(_ uint8) bool {
		a, b := gen(), gen()
		if a.Equal(b) != b.Equal(a) {
			return false
		}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	reflexive := func(_ uint8) bool {
		a := gen()
		return a.Equal(a) && a.Compare(a) == 0
	}
	if err := quick.Check(reflexive, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gen := func() Value {
		if rng.Intn(2) == 0 {
			return Int(int64(rng.Intn(20)))
		}
		return Float(float64(rng.Intn(20)) / 2)
	}
	trans := func(_ uint8) bool {
		a, b, c := gen(), gen(), gen()
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
