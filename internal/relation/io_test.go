package relation

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadFileCSVAndTSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "celeb.csv")
	if err := os.WriteFile(csvPath, []byte("name,img\nBrad,http://x/b.jpg\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadFile(csvPath, LoadOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "celeb" || r.Len() != 1 {
		t.Errorf("csv load: %v", r)
	}

	tsvPath := filepath.Join(dir, "photos.tsv")
	if err := os.WriteFile(tsvPath, []byte("id\timg\n1\thttp://x/p.jpg\n2\thttp://x/q.jpg\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err = LoadFile(tsvPath, LoadOptions{Header: true, Kinds: []Kind{KindInt, KindURL}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Row(1).MustGet("id").Int() != 2 {
		t.Errorf("tsv load: %v", r)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.csv"), LoadOptions{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSchemaProjectErrors(t *testing.T) {
	s := MustSchema(Column{Name: "a", Kind: KindText}, Column{Name: "b", Kind: KindInt})
	if _, _, err := s.Project("a", "zzz"); err == nil {
		t.Error("projecting missing column accepted")
	}
	out, ords, err := s.Project("b", "a")
	if err != nil || out.Len() != 2 || ords[0] != 1 || ords[1] != 0 {
		t.Errorf("reorder projection: %v %v %v", out, ords, err)
	}
}

func TestRelationCloneAndColumn(t *testing.T) {
	s := MustSchema(Column{Name: "n", Kind: KindInt})
	r := New("t", s)
	for i := int64(0); i < 4; i++ {
		_ = r.AppendValues(Int(i))
	}
	c := r.Clone()
	_ = c.AppendValues(Int(99))
	if r.Len() != 4 || c.Len() != 5 {
		t.Errorf("clone aliasing: %d vs %d", r.Len(), c.Len())
	}
	col, err := r.Column("n")
	if err != nil || len(col) != 4 || col[3].Int() != 3 {
		t.Errorf("column extraction: %v %v", col, err)
	}
	if _, err := r.Column("zzz"); err == nil {
		t.Error("missing column accepted")
	}
}

func TestTupleConcatAndFromTuples(t *testing.T) {
	a := MustSchema(Column{Name: "x", Kind: KindInt})
	b := MustSchema(Column{Name: "y", Kind: KindText})
	joint, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	ta := MustTuple(a, Int(1))
	tb := MustTuple(b, Text("q"))
	tc := ta.Concat(tb, joint)
	if tc.Len() != 2 || tc.MustGet("y").Text() != "q" {
		t.Errorf("concat tuple: %v", tc)
	}
	rel, err := FromTuples("t", joint, []Tuple{tc})
	if err != nil || rel.Len() != 1 {
		t.Errorf("FromTuples: %v %v", rel, err)
	}
	if _, err := FromTuples("t", a, []Tuple{tc}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestSortByColumnMissing(t *testing.T) {
	s := MustSchema(Column{Name: "a", Kind: KindInt})
	r := New("t", s)
	if _, err := r.SortByColumn("zzz"); err == nil {
		t.Error("missing sort column accepted")
	}
}

func TestAppendErrors(t *testing.T) {
	s1 := MustSchema(Column{Name: "a", Kind: KindInt})
	s2 := MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindInt})
	r := New("t", s1)
	if err := r.Append(MustTuple(s2, Int(1), Int(2))); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := r.AppendValues(Int(1), Int(2)); err == nil {
		t.Error("value arity mismatch accepted")
	}
}
