// Package relation implements the relational substrate Qurk executes over:
// typed values, schemas, tuples, in-memory relations, and a catalog.
//
// Qurk's data model is relational with crowd-powered UDFs layered on top
// (paper §2.1). This package is purely mechanical — nothing in it touches
// the crowd — so the crowd operators in internal/join and internal/sortop
// can be tested against exact relational semantics.
package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the value types Qurk relations can hold.
type Kind uint8

const (
	// KindNull is the zero Kind; it marks an absent value.
	KindNull Kind = iota
	// KindText holds a UTF-8 string.
	KindText
	// KindInt holds a 64-bit signed integer.
	KindInt
	// KindFloat holds a 64-bit float.
	KindFloat
	// KindBool holds a boolean.
	KindBool
	// KindURL holds a URL rendered into HIT HTML (images, audio, ...).
	KindURL
	// KindUnknown is the special UNKNOWN value produced by feature
	// extraction when a worker cannot determine a feature (paper §2.4).
	// UNKNOWN compares equal to every value so that it never removes
	// join candidates.
	KindUnknown
)

// String returns the lowercase name of the kind, e.g. "text".
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindText:
		return "text"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindURL:
		return "url"
	case KindUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a type name from the query language ("text", "int",
// "float", "bool", "url") into a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "text", "string", "varchar":
		return KindText, nil
	case "int", "integer", "bigint":
		return KindInt, nil
	case "float", "double", "real":
		return KindFloat, nil
	case "bool", "boolean":
		return KindBool, nil
	case "url":
		return KindURL, nil
	default:
		return KindNull, fmt.Errorf("relation: unknown type %q", s)
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
//
// Value is a small tagged union rather than an interface so tuples can be
// stored in flat slices without per-field allocation.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Text returns a text value.
func Text(s string) Value { return Value{kind: KindText, s: s} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// URL returns a URL value.
func URL(u string) Value { return Value{kind: KindURL, s: u} }

// Unknown returns the UNKNOWN feature value (paper §2.4): it joins with
// everything.
func Unknown() Value { return Value{kind: KindUnknown} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsUnknown reports whether the value is the crowd UNKNOWN sentinel.
func (v Value) IsUnknown() bool { return v.kind == KindUnknown }

// Text returns the string payload for text and URL values, and a rendered
// form for other kinds.
func (v Value) Text() string {
	switch v.kind {
	case KindText, KindURL:
		return v.s
	default:
		return v.String()
	}
}

// Int returns the integer payload. Float values are truncated; text values
// are parsed; anything else yields 0.
func (v Value) Int() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindText:
		n, _ := strconv.ParseInt(v.s, 10, 64)
		return n
	default:
		return 0
	}
}

// Float returns the float payload, widening integers and parsing text.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindText:
		f, _ := strconv.ParseFloat(v.s, 64)
		return f
	default:
		return 0
	}
}

// Bool returns the boolean payload; non-bool kinds report "truthiness"
// (non-zero, non-empty).
func (v Value) Bool() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindText, KindURL:
		return v.s != ""
	default:
		return false
	}
}

// String renders the value for display and for HIT HTML substitution.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindText, KindURL:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindUnknown:
		return "UNKNOWN"
	default:
		return fmt.Sprintf("<%s>", v.kind)
	}
}

// Equal reports value equality with the paper's UNKNOWN semantics:
// UNKNOWN is equal to any other value (paper §2.4), NULL equals only NULL,
// and numeric kinds compare by numeric value.
func (v Value) Equal(o Value) bool {
	if v.kind == KindUnknown || o.kind == KindUnknown {
		return true
	}
	if v.kind == KindNull || o.kind == KindNull {
		return v.kind == o.kind
	}
	if (v.kind == KindInt || v.kind == KindFloat) && (o.kind == KindInt || o.kind == KindFloat) {
		return v.Float() == o.Float()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindText, KindURL:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	default:
		return true
	}
}

// StrictEqual reports equality without the UNKNOWN wildcard rule. Used by
// tests and by combiners that must distinguish UNKNOWN votes.
func (v Value) StrictEqual(o Value) bool {
	if v.kind == KindUnknown || o.kind == KindUnknown {
		return v.kind == o.kind
	}
	return v.Equal(o)
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL and UNKNOWN sort before everything else. Mixed numeric kinds
// compare numerically; otherwise values compare within a kind.
func (v Value) Compare(o Value) int {
	vn := v.kind == KindNull || v.kind == KindUnknown
	on := o.kind == KindNull || o.kind == KindUnknown
	switch {
	case vn && on:
		return 0
	case vn:
		return -1
	case on:
		return 1
	}
	num := func(k Kind) bool { return k == KindInt || k == KindFloat || k == KindBool }
	if num(v.kind) && num(o.kind) {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(v.Text(), o.Text())
}

// Coerce converts the value to the target kind, parsing text as needed.
func (v Value) Coerce(k Kind) (Value, error) {
	if v.kind == k || v.kind == KindNull || v.kind == KindUnknown {
		if v.kind != k && v.kind == KindNull {
			return v, nil
		}
		if v.kind == KindUnknown {
			return v, nil
		}
		return v, nil
	}
	switch k {
	case KindText:
		return Text(v.String()), nil
	case KindURL:
		return URL(v.Text()), nil
	case KindInt:
		if v.kind == KindText {
			n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Null(), fmt.Errorf("relation: cannot coerce %q to int: %w", v.s, err)
			}
			return Int(n), nil
		}
		return Int(v.Int()), nil
	case KindFloat:
		if v.kind == KindText {
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Null(), fmt.Errorf("relation: cannot coerce %q to float: %w", v.s, err)
			}
			return Float(f), nil
		}
		return Float(v.Float()), nil
	case KindBool:
		if v.kind == KindText {
			b, err := strconv.ParseBool(strings.ToLower(strings.TrimSpace(v.s)))
			if err != nil {
				return Null(), fmt.Errorf("relation: cannot coerce %q to bool: %w", v.s, err)
			}
			return Bool(b), nil
		}
		return Bool(v.Bool()), nil
	default:
		return Null(), fmt.Errorf("relation: cannot coerce %s to %s", v.kind, k)
	}
}
