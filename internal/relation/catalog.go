package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Catalog is a named collection of relations — the "Input Data" box in the
// paper's architecture diagram (Fig. 1). It is safe for concurrent use;
// the executor's operator goroutines read tables while results stream in.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Relation
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Relation)}
}

// Register adds or replaces a table under its own name.
func (c *Catalog) Register(r *Relation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[strings.ToLower(r.Name())] = r
}

// RegisterAs adds or replaces a table under an explicit name.
func (c *Catalog) RegisterAs(name string, r *Relation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[strings.ToLower(name)] = r
}

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Relation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("relation: unknown table %q (have: %s)", name, strings.Join(c.names(), ", "))
	}
	return r, nil
}

// Cardinality reports a registered table's row count — the planner's
// CardSource contract (exact cardinalities for base relations).
func (c *Catalog) Cardinality(name string) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return 0, false
	}
	return r.Len(), true
}

// Drop removes a table; it is not an error if the table is absent.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, strings.ToLower(name))
}

// Names returns the sorted list of table names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.names()
}

func (c *Catalog) names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
