package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	// Name is the column name as referenced in queries (case-insensitive).
	Name string
	// Kind is the column's value type.
	Kind Kind
}

// Schema is an ordered list of columns. Schemas are immutable once built;
// operators derive new schemas rather than mutating existing ones.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique
// case-insensitively.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{
		cols:  make([]Column, len(cols)),
		index: make(map[string]int, len(cols)),
	}
	copy(s.cols, cols)
	for i, c := range s.cols {
		key := strings.ToLower(c.Name)
		if key == "" {
			return nil, fmt.Errorf("relation: empty column name at position %d", i)
		}
		if _, dup := s.index[key]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.index[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i'th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Ordinal returns the position of the named column (case-insensitive),
// or -1 if absent. Qualified names ("c.img") match their suffix if the
// schema stores qualified names, and vice versa.
func (s *Schema) Ordinal(name string) int {
	key := strings.ToLower(name)
	if i, ok := s.index[key]; ok {
		return i
	}
	// "alias.col" lookup against unqualified schema, and the reverse.
	if dot := strings.LastIndexByte(key, '.'); dot >= 0 {
		if i, ok := s.index[key[dot+1:]]; ok {
			return i
		}
	} else {
		match := -1
		for stored, i := range s.index {
			if strings.HasSuffix(stored, "."+key) {
				if match >= 0 {
					return -1 // ambiguous
				}
				match = i
			}
		}
		return match
	}
	return -1
}

// Has reports whether the named column exists.
func (s *Schema) Has(name string) bool { return s.Ordinal(name) >= 0 }

// Project returns a schema containing only the named columns, in order.
func (s *Schema) Project(names ...string) (*Schema, []int, error) {
	cols := make([]Column, 0, len(names))
	idx := make([]int, 0, len(names))
	for _, n := range names {
		i := s.Ordinal(n)
		if i < 0 {
			return nil, nil, fmt.Errorf("relation: no column %q in schema %s", n, s)
		}
		cols = append(cols, s.cols[i])
		idx = append(idx, i)
	}
	out, err := NewSchema(cols...)
	if err != nil {
		return nil, nil, err
	}
	return out, idx, nil
}

// Qualify returns a copy of the schema with every column renamed to
// "alias.name". Used when a table is scanned under an alias so joined
// schemas stay unambiguous.
func (s *Schema) Qualify(alias string) *Schema {
	cols := make([]Column, len(s.cols))
	for i, c := range s.cols {
		name := c.Name
		if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
			name = name[dot+1:]
		}
		cols[i] = Column{Name: alias + "." + name, Kind: c.Kind}
	}
	out, err := NewSchema(cols...)
	if err != nil {
		// Aliasing cannot introduce duplicates if the source was valid.
		panic(err)
	}
	return out
}

// Concat returns the schema of a join result: s's columns followed by o's.
func (s *Schema) Concat(o *Schema) (*Schema, error) {
	cols := make([]Column, 0, len(s.cols)+len(o.cols))
	cols = append(cols, s.cols...)
	cols = append(cols, o.cols...)
	return NewSchema(cols...)
}

// String renders the schema as "(name type, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}
