package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Qurk is implemented as a workflow engine "with several types of input
// including relational databases and tab-delimited text files" (paper
// §2.6). This file provides the tab/comma-delimited loaders.

// LoadOptions controls delimited-text loading.
type LoadOptions struct {
	// Comma is the field delimiter; 0 means infer from the file
	// extension (.tsv → tab, otherwise comma).
	Comma rune
	// Header reports whether the first record carries column names.
	// When false, columns are named col0, col1, ...
	Header bool
	// Kinds optionally forces column kinds; when nil every column is
	// loaded as text and values are coerced lazily by operators.
	Kinds []Kind
}

// ReadDelimited parses delimited text into a relation.
func ReadDelimited(name string, r io.Reader, opt LoadOptions) (*Relation, error) {
	cr := csv.NewReader(r)
	if opt.Comma != 0 {
		cr.Comma = opt.Comma
	}
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: %s is empty", name)
	}
	var header []string
	body := records
	if opt.Header {
		header = records[0]
		body = records[1:]
	} else {
		header = make([]string, len(records[0]))
		for i := range header {
			header[i] = fmt.Sprintf("col%d", i)
		}
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		kind := KindText
		if opt.Kinds != nil && i < len(opt.Kinds) {
			kind = opt.Kinds[i]
		}
		cols[i] = Column{Name: strings.TrimSpace(h), Kind: kind}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	rel := New(name, schema)
	for lineNo, rec := range body {
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("relation: %s row %d has %d fields, want %d", name, lineNo+1, len(rec), len(cols))
		}
		vals := make([]Value, len(rec))
		for i, field := range rec {
			v := Text(field)
			cv, err := v.Coerce(cols[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: %s row %d column %s: %w", name, lineNo+1, cols[i].Name, err)
			}
			vals[i] = cv
		}
		if err := rel.AppendValues(vals...); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// LoadFile loads a .csv or .tsv file; the table name is the file's base
// name without extension.
func LoadFile(path string, opt LoadOptions) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opt.Comma == 0 {
		if strings.EqualFold(filepath.Ext(path), ".tsv") {
			opt.Comma = '\t'
		} else {
			opt.Comma = ','
		}
	}
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	return ReadDelimited(name, f, opt)
}

// WriteDelimited writes the relation as delimited text with a header row.
func WriteDelimited(r *Relation, w io.Writer, comma rune) error {
	cw := csv.NewWriter(w)
	if comma != 0 {
		cw.Comma = comma
	}
	header := make([]string, r.Schema().Len())
	for i := range header {
		header[i] = r.Schema().Column(i).Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < r.Len(); i++ {
		t := r.Row(i)
		rec := make([]string, t.Len())
		for j := 0; j < t.Len(); j++ {
			rec[j] = t.At(j).String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
