package relation

import (
	"fmt"
	"math"
	"sync"
)

// ColumnBatch is a schema-aligned batch of rows stored as typed column
// vectors (the promql-engine step-vector layout): one vector per
// attribute, each holding a per-row kind tag plus payload arrays. The
// executor streams these between operators instead of []Tuple so inner
// loops touch contiguous arrays and batches recycle their backing
// storage through a pool.
//
// Lifecycle rules:
//
//   - Batches come from NewColumnBatch (pool-backed) and go back via
//     Release. Release recycles only the column vectors; it never
//     recycles the row arena, so Tuples handed out by Row/Rows stay
//     valid after the batch is released.
//   - Project and Slice return zero-copy views sharing the parent's
//     vectors. Creating a view pins the parent: neither the view nor
//     the parent returns to the pool (both fall to the GC), which keeps
//     recycling safe without reference counting.
//   - Appending after Row/Rows invalidates nothing already handed out
//     (row views copy values into the arena) but resets the cached
//     arena so later Row calls observe the new length.
type ColumnBatch struct {
	schema *Schema
	n      int
	cols   []colVec

	// arena backs the Tuple views handed out by Row/Rows: one flat
	// []Value of n*width entries, sliced per row. It is allocated
	// lazily and never pooled — escaped tuples may outlive the batch.
	arena []Value
	rows  []Tuple

	// owned marks a batch whose vectors came from the pool and are not
	// shared with any view; only owned batches recycle on Release.
	owned bool
}

// colVec is one column: a kind tag per row plus payload arrays. Numeric
// payloads (int, float bits, bool) share nums; string payloads (text,
// url) live in strs, allocated only when the column carries one.
type colVec struct {
	kinds []Kind
	nums  []uint64
	strs  []string
}

func (c *colVec) append(v Value) {
	c.kinds = append(c.kinds, v.kind)
	var num uint64
	switch v.kind {
	case KindInt:
		num = uint64(v.i)
	case KindFloat:
		num = math.Float64bits(v.f)
	case KindBool:
		if v.b {
			num = 1
		}
	}
	c.nums = append(c.nums, num)
	if c.strs != nil || v.kind == KindText || v.kind == KindURL {
		if c.strs == nil {
			c.strs = make([]string, len(c.kinds)-1, cap(c.kinds))
		}
		for len(c.strs) < len(c.kinds)-1 {
			c.strs = append(c.strs, "")
		}
		c.strs = append(c.strs, v.s)
	}
}

func (c *colVec) value(i int) Value {
	k := c.kinds[i]
	switch k {
	case KindText, KindURL:
		s := ""
		if i < len(c.strs) {
			s = c.strs[i]
		}
		return Value{kind: k, s: s}
	case KindInt:
		return Value{kind: k, i: int64(c.nums[i])}
	case KindFloat:
		return Value{kind: k, f: math.Float64frombits(c.nums[i])}
	case KindBool:
		return Value{kind: k, b: c.nums[i] != 0}
	default:
		return Value{kind: k}
	}
}

func (c *colVec) reset() {
	c.kinds = c.kinds[:0]
	c.nums = c.nums[:0]
	// Drop string references so recycled vectors do not pin payloads.
	for i := range c.strs {
		c.strs[i] = ""
	}
	c.strs = c.strs[:0]
}

var colBatchPool = sync.Pool{New: func() any { return &ColumnBatch{} }}

// NewColumnBatch returns an empty batch over schema, reusing pooled
// column vectors when available. capRows is a sizing hint only.
func NewColumnBatch(schema *Schema, capRows int) *ColumnBatch {
	b := colBatchPool.Get().(*ColumnBatch)
	b.schema = schema
	b.n = 0
	b.arena = nil
	b.rows = nil
	b.owned = true
	w := schema.Len()
	if cap(b.cols) < w {
		b.cols = make([]colVec, w)
	} else {
		b.cols = b.cols[:w]
	}
	for i := range b.cols {
		b.cols[i].reset()
		if capRows > 0 && cap(b.cols[i].kinds) == 0 {
			b.cols[i].kinds = make([]Kind, 0, capRows)
			b.cols[i].nums = make([]uint64, 0, capRows)
		}
	}
	return b
}

// ColumnBatchOf builds a batch from existing tuples; a convenience for
// operators that assemble rows before emitting.
func ColumnBatchOf(schema *Schema, tuples []Tuple) *ColumnBatch {
	b := NewColumnBatch(schema, len(tuples))
	for _, t := range tuples {
		b.AppendTuple(t)
	}
	return b
}

// Schema returns the batch's schema.
func (b *ColumnBatch) Schema() *Schema { return b.schema }

// Len returns the number of rows.
func (b *ColumnBatch) Len() int { return b.n }

// AppendTuple appends one row. The tuple's arity must match the batch
// schema (its column names need not: rebinds are positional, as with
// Tuple.Rebind).
func (b *ColumnBatch) AppendTuple(t Tuple) {
	if len(t.vals) != len(b.cols) {
		panic(fmt.Sprintf("relation: appending %d-value tuple to %d-column batch", len(t.vals), len(b.cols)))
	}
	for i := range b.cols {
		b.cols[i].append(t.vals[i])
	}
	b.n++
	b.arena = nil
	b.rows = nil
}

// AppendRow appends one row given as values; arity must match.
func (b *ColumnBatch) AppendRow(vals ...Value) {
	if len(vals) != len(b.cols) {
		panic(fmt.Sprintf("relation: appending %d values to %d-column batch", len(vals), len(b.cols)))
	}
	for i := range b.cols {
		b.cols[i].append(vals[i])
	}
	b.n++
	b.arena = nil
	b.rows = nil
}

// AppendBatchRow appends row i of src; schemas must have equal arity.
func (b *ColumnBatch) AppendBatchRow(src *ColumnBatch, i int) {
	if len(src.cols) != len(b.cols) {
		panic(fmt.Sprintf("relation: appending %d-column row to %d-column batch", len(src.cols), len(b.cols)))
	}
	for c := range b.cols {
		b.cols[c].append(src.cols[c].value(i))
	}
	b.n++
	b.arena = nil
	b.rows = nil
}

// Value returns the value at (row, col) without materializing a row
// view; the accessor operators use in their inner loops.
func (b *ColumnBatch) Value(row, col int) Value {
	return b.cols[col].value(row)
}

// RowsOver slices a flat value arena (row-major, len n*schema.Len())
// into n tuples sharing the backing array — one allocation for the
// tuple headers instead of one per row. The spill codec decodes frames
// straight into such arenas.
func RowsOver(schema *Schema, arena []Value) []Tuple {
	w := schema.Len()
	if w == 0 {
		return nil
	}
	n := len(arena) / w
	rows := make([]Tuple, n)
	for r := 0; r < n; r++ {
		rows[r] = Tuple{schema: schema, vals: arena[r*w : (r+1)*w : (r+1)*w]}
	}
	return rows
}

// materialize fills the row arena and tuple views.
func (b *ColumnBatch) materialize() {
	w := len(b.cols)
	b.arena = make([]Value, b.n*w)
	b.rows = make([]Tuple, b.n)
	for c := range b.cols {
		col := &b.cols[c]
		for r := 0; r < b.n; r++ {
			b.arena[r*w+c] = col.value(r)
		}
	}
	for r := 0; r < b.n; r++ {
		b.rows[r] = Tuple{schema: b.schema, vals: b.arena[r*w : (r+1)*w : (r+1)*w]}
	}
}

// Row returns row i as a Tuple backed by the batch's arena. The tuple
// remains valid after Release (the arena is never recycled).
func (b *ColumnBatch) Row(i int) Tuple {
	if b.rows == nil {
		b.materialize()
	}
	return b.rows[i]
}

// Rows returns all rows as arena-backed Tuples — the row-view shim that
// keeps combiners and the public Row surface unchanged. The returned
// slice is shared; callers must not mutate it.
func (b *ColumnBatch) Rows() []Tuple {
	if b.rows == nil {
		b.materialize()
	}
	return b.rows
}

// Project returns a zero-copy view holding only the columns named by
// ordinals, under schema out. The view shares vectors with b, so
// neither batch recycles on Release (see lifecycle rules).
func (b *ColumnBatch) Project(out *Schema, ordinals []int) *ColumnBatch {
	v := &ColumnBatch{schema: out, n: b.n, cols: make([]colVec, len(ordinals))}
	for i, ord := range ordinals {
		v.cols[i] = b.cols[ord]
	}
	b.owned = false
	return v
}

// Slice returns a zero-copy view of rows [lo, hi). The view shares
// vectors with b, so neither batch recycles on Release.
func (b *ColumnBatch) Slice(lo, hi int) *ColumnBatch {
	v := &ColumnBatch{schema: b.schema, n: hi - lo, cols: make([]colVec, len(b.cols))}
	for i := range b.cols {
		c := b.cols[i]
		v.cols[i] = colVec{kinds: c.kinds[lo:hi], nums: c.nums[lo:hi]}
		if c.strs != nil {
			end := hi
			if end > len(c.strs) {
				end = len(c.strs)
			}
			if lo < end {
				v.cols[i].strs = c.strs[lo:end]
			}
		}
	}
	b.owned = false
	return v
}

// Release returns the batch's column vectors to the pool. Only owned,
// unshared batches recycle; views and view parents are no-ops. Row
// arenas are never pooled, so previously returned Tuples stay valid.
func (b *ColumnBatch) Release() {
	if !b.owned {
		return
	}
	b.owned = false
	b.schema = nil
	b.n = 0
	b.arena = nil
	b.rows = nil
	for i := range b.cols {
		b.cols[i].reset()
	}
	colBatchPool.Put(b)
}
