package relation

import "strconv"

// Manual FNV-1a, byte-for-byte equivalent to hash/fnv's New64a but
// allocation-free: Tuple.Key sits under the task cache, the WAL
// checkpoint digests, the answer store, and the spill digests, so the
// hash VALUES must never change — only the cost of computing them.

// FNV-1a parameters (FNV-0 offset basis and 64-bit prime).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// hashInto folds the value into an FNV-1a state exactly as the legacy
// implementation did: kind byte, then String() bytes, then a NUL
// terminator — without materializing the String() for numeric kinds.
func (v Value) hashInto(h uint64) uint64 {
	h = fnvByte(h, byte(v.kind))
	switch v.kind {
	case KindNull:
		h = fnvString(h, "NULL")
	case KindText, KindURL:
		h = fnvString(h, v.s)
	case KindInt:
		var buf [24]byte
		for _, c := range strconv.AppendInt(buf[:0], v.i, 10) {
			h = fnvByte(h, c)
		}
	case KindFloat:
		var buf [40]byte
		for _, c := range strconv.AppendFloat(buf[:0], v.f, 'g', -1, 64) {
			h = fnvByte(h, c)
		}
	case KindBool:
		if v.b {
			h = fnvString(h, "true")
		} else {
			h = fnvString(h, "false")
		}
	case KindUnknown:
		h = fnvString(h, "UNKNOWN")
	default:
		h = fnvString(h, v.String())
	}
	return fnvByte(h, 0)
}

// HashBytes folds raw bytes into an FNV-1a state; exported within the
// module via hit and join for their alloc-free key paths.
func HashBytes(h uint64, p []byte) uint64 {
	for _, c := range p {
		h = fnvByte(h, c)
	}
	return h
}

// HashString folds a string into an FNV-1a state.
func HashString(h uint64, s string) uint64 { return fnvString(h, s) }

// HashByte folds one byte into an FNV-1a state.
func HashByte(h uint64, b byte) uint64 { return fnvByte(h, b) }

// HashSeed returns the FNV-1a offset basis — the initial state for the
// Hash* helpers above.
func HashSeed() uint64 { return fnvOffset64 }
