package relation

import (
	"hash/fnv"
	"math"
	"testing"
)

// allKindValues covers every Kind the engine can hold, including the
// absent/NULL and UNKNOWN sentinels and edge-case payloads.
func allKindValues() []Value {
	return []Value{
		Null(),
		Unknown(),
		Text(""),
		Text("alice"),
		Text("emb\x00edded nul + ünïcode ✓"),
		URL(""),
		URL("https://example.com/img?id=1&x=%20"),
		Int(0),
		Int(-1),
		Int(math.MaxInt64),
		Int(math.MinInt64),
		Float(0),
		Float(-0.0),
		Float(3.14159),
		Float(math.Inf(1)),
		Float(math.Inf(-1)),
		Float(math.NaN()),
		Float(math.SmallestNonzeroFloat64),
		Float(math.MaxFloat64),
		Bool(true),
		Bool(false),
	}
}

// legacyKey is the original hash/fnv implementation of Tuple.Key; the
// manual fold must match it bit for bit on every value kind, because
// WAL digests, the task cache, and the answer store embed these hashes.
func legacyKey(t Tuple) uint64 {
	h := fnv.New64a()
	for i := 0; i < t.Len(); i++ {
		v := t.At(i)
		h.Write([]byte{byte(v.Kind())})
		h.Write([]byte(v.String()))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func TestTupleKeyMatchesLegacyFNV(t *testing.T) {
	vals := allKindValues()
	cols := make([]Column, len(vals))
	for i := range vals {
		cols[i] = Column{Name: string(rune('a' + i%26)), Kind: vals[i].Kind()}
	}
	// Unique names.
	for i := range cols {
		cols[i].Name = cols[i].Name + string(rune('0'+i/26)) + string(rune('0'+i%10))
	}
	schema := MustSchema(cols...)
	tp := MustTuple(schema, vals...)
	if got, want := tp.Key(), legacyKey(tp); got != want {
		t.Fatalf("Tuple.Key = %x, legacy fnv = %x", got, want)
	}
	// Single-value tuples too, so one wrong kind branch cannot hide.
	one := MustSchema(Column{Name: "v"})
	for _, v := range vals {
		tv := MustTuple(one, v)
		if got, want := tv.Key(), legacyKey(tv); got != want {
			t.Fatalf("Tuple.Key(%s %s) = %x, legacy fnv = %x", v.Kind(), v, got, want)
		}
	}
}

func TestHashHelpersMatchFNV(t *testing.T) {
	h := fnv.New64a()
	h.Write([]byte("hello"))
	h.Write([]byte{0xff})
	h.Write([]byte("world"))
	want := h.Sum64()
	got := HashSeed()
	got = HashString(got, "hello")
	got = HashByte(got, 0xff)
	got = HashBytes(got, []byte("world"))
	if got != want {
		t.Fatalf("manual fnv %x != hash/fnv %x", got, want)
	}
}

// TestColumnBatchRoundTrip is the batch→rows→batch property: every
// value kind survives a trip through the columnar layout bit-intact.
func TestColumnBatchRoundTrip(t *testing.T) {
	vals := allKindValues()
	schema := MustSchema(Column{Name: "a"}, Column{Name: "b"}, Column{Name: "c"})
	var tuples []Tuple
	for i := range vals {
		tuples = append(tuples, MustTuple(schema,
			vals[i], vals[(i+7)%len(vals)], vals[(i+13)%len(vals)]))
	}
	b := ColumnBatchOf(schema, tuples)
	if b.Len() != len(tuples) {
		t.Fatalf("batch len %d != %d", b.Len(), len(tuples))
	}
	// Value accessor path.
	for r, tp := range tuples {
		for c := 0; c < 3; c++ {
			got, want := b.Value(r, c), tp.At(c)
			if got.Kind() != want.Kind() || got.String() != want.String() {
				t.Fatalf("Value(%d,%d) = %s %q, want %s %q", r, c, got.Kind(), got, want.Kind(), want)
			}
		}
	}
	// Row-view shim path, then back into a second batch. Tuples are
	// compared by (kind, rendering) per value rather than Equal, which
	// would reject NaN == NaN.
	sameTuple := func(a, b Tuple) bool {
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if a.At(i).Kind() != b.At(i).Kind() || a.At(i).String() != b.At(i).String() {
				return false
			}
		}
		return true
	}
	b2 := NewColumnBatch(schema, b.Len())
	for r := 0; r < b.Len(); r++ {
		row := b.Row(r)
		if !sameTuple(row, tuples[r]) {
			t.Fatalf("row %d = %s, want %s", r, row, tuples[r])
		}
		if row.Key() != tuples[r].Key() {
			t.Fatalf("row %d key diverged through columnar layout", r)
		}
		b2.AppendTuple(row)
	}
	for r := 0; r < b2.Len(); r++ {
		if !sameTuple(b2.Row(r), tuples[r]) {
			t.Fatalf("second-generation row %d = %s, want %s", r, b2.Row(r), tuples[r])
		}
	}
}

// TestColumnBatchRowsSurviveRelease pins the arena lifecycle rule:
// tuples handed out by Row/Rows stay valid after the batch recycles.
func TestColumnBatchRowsSurviveRelease(t *testing.T) {
	schema := MustSchema(Column{Name: "n"}, Column{Name: "s"})
	b := NewColumnBatch(schema, 4)
	for i := 0; i < 4; i++ {
		b.AppendRow(Int(int64(i)), Text("row"+string(rune('0'+i))))
	}
	rows := b.Rows()
	keys := make([]uint64, len(rows))
	for i, r := range rows {
		keys[i] = r.Key()
	}
	b.Release()
	// Stomp the pool: new batches reuse the vectors the release returned.
	for i := 0; i < 8; i++ {
		nb := NewColumnBatch(schema, 4)
		for j := 0; j < 4; j++ {
			nb.AppendRow(Int(999), Text("stomp"))
		}
		_ = nb.Rows()
		nb.Release()
	}
	for i, r := range rows {
		if r.Key() != keys[i] {
			t.Fatalf("row %d changed after Release: %s", i, r)
		}
		if r.At(0).Int() != int64(i) {
			t.Fatalf("row %d payload corrupted after Release: %s", i, r)
		}
	}
}

func TestColumnBatchProjectAndSlice(t *testing.T) {
	schema := MustSchema(Column{Name: "a"}, Column{Name: "b"}, Column{Name: "c"})
	b := NewColumnBatch(schema, 5)
	for i := 0; i < 5; i++ {
		b.AppendRow(Int(int64(i)), Text("t"+string(rune('0'+i))), Float(float64(i)/2))
	}
	out, ords, err := schema.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	p := b.Project(out, ords)
	if p.Len() != 5 || p.Schema() != out {
		t.Fatalf("projected batch len=%d schema=%s", p.Len(), p.Schema())
	}
	for i := 0; i < 5; i++ {
		row := p.Row(i)
		if row.At(0).Float() != float64(i)/2 || row.At(1).Int() != int64(i) {
			t.Fatalf("projected row %d = %s", i, row)
		}
	}
	s := b.Slice(1, 4)
	if s.Len() != 3 {
		t.Fatalf("slice len %d", s.Len())
	}
	for i := 0; i < 3; i++ {
		if s.Value(i, 0).Int() != int64(i+1) {
			t.Fatalf("slice row %d = %s", i, s.Row(i))
		}
	}
	// Views pin the parent: none of the three recycle.
	b.Release()
	p.Release()
	s.Release()
	if b.Len() != 5 || p.Len() != 5 || s.Len() != 3 {
		t.Fatal("view or parent was recycled despite sharing vectors")
	}
}

func TestColumnBatchAppendBatchRow(t *testing.T) {
	schema := MustSchema(Column{Name: "a"}, Column{Name: "b"})
	src := ColumnBatchOf(schema, []Tuple{
		MustTuple(schema, Int(1), Text("x")),
		MustTuple(schema, Null(), Unknown()),
	})
	dst := NewColumnBatch(schema, 2)
	dst.AppendBatchRow(src, 1)
	dst.AppendBatchRow(src, 0)
	if !dst.Row(0).Equal(src.Row(1)) || !dst.Row(1).Equal(src.Row(0)) {
		t.Fatalf("AppendBatchRow mismatch: %s / %s", dst.Row(0), dst.Row(1))
	}
}
