package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"qurk/internal/crowd"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// MovieConfig controls the end-to-end query dataset (paper §5): 211
// stills from a three-minute movie plus actor profile photos.
type MovieConfig struct {
	// Scenes is the number of stills (paper: 211).
	Scenes int
	// Actors is the cast size (paper's unfiltered Simple join of 1055
	// HITs over 211 scenes implies 5 actors).
	Actors int
	// Seed drives generation.
	Seed int64
	// OnePersonFrac is the fraction of scenes with exactly one person
	// (the paper's numInScene predicate had selectivity ≈ 55%).
	OnePersonFrac float64
	// QualitySigma is the subjective noise of the "how flattering"
	// sort (large: the paper found it "highly subjective"). Default 0.3.
	QualitySigma float64
	// InSceneMatchDifficulty / InSceneNonMatchDifficulty control the
	// join ("some actors look similar, and some scenes showed actors
	// from the side"). Defaults 0.22 / 0.06.
	InSceneMatchDifficulty, InSceneNonMatchDifficulty float64
}

func (c *MovieConfig) fillDefaults() {
	if c.Scenes == 0 {
		c.Scenes = 211
	}
	if c.Actors == 0 {
		c.Actors = 5
	}
	if c.OnePersonFrac == 0 {
		c.OnePersonFrac = 0.55
	}
	if c.QualitySigma == 0 {
		c.QualitySigma = 0.3
	}
	if c.InSceneMatchDifficulty == 0 {
		c.InSceneMatchDifficulty = 0.22
	}
	if c.InSceneNonMatchDifficulty == 0 {
		c.InSceneNonMatchDifficulty = 0.06
	}
}

type sceneTruth struct {
	numInScene int // 0, 1, 2, 3 (3 = "3+")
	actor      int // featured actor if numInScene == 1, else -1
	quality    float64
}

// Movie is the §5 dataset: actors(name, img) and scenes(id, img).
type Movie struct {
	cfg    MovieConfig
	Actors *relation.Relation
	Scenes *relation.Relation
	scenes map[string]*sceneTruth // by scene img URL
	actors map[string]int         // actor img URL → index
}

// NewMovie generates the dataset.
func NewMovie(cfg MovieConfig) *Movie {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Movie{
		cfg:    cfg,
		scenes: make(map[string]*sceneTruth, cfg.Scenes),
		actors: make(map[string]int, cfg.Actors),
	}
	actorSchema := relation.MustSchema(
		relation.Column{Name: "name", Kind: relation.KindText},
		relation.Column{Name: "img", Kind: relation.KindURL},
	)
	sceneSchema := relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "img", Kind: relation.KindURL},
	)
	m.Actors = relation.New("actors", actorSchema)
	m.Scenes = relation.New("scenes", sceneSchema)
	for a := 0; a < cfg.Actors; a++ {
		url := fmt.Sprintf("http://cast.example/actor%02d.jpg", a)
		m.actors[url] = a
		_ = m.Actors.AppendValues(relation.Text(fmt.Sprintf("Actor %02d", a)), relation.URL(url))
	}
	for s := 0; s < cfg.Scenes; s++ {
		url := fmt.Sprintf("http://stills.example/scene%03d.jpg", s)
		st := &sceneTruth{actor: -1, quality: rng.Float64()}
		if rng.Float64() < cfg.OnePersonFrac {
			st.numInScene = 1
			st.actor = rng.Intn(cfg.Actors)
		} else {
			// 0, 2, or 3+ people.
			st.numInScene = []int{0, 2, 3}[rng.Intn(3)]
		}
		m.scenes[url] = st
		_ = m.Scenes.AppendValues(relation.Int(int64(s)), relation.URL(url))
	}
	return m
}

func (m *Movie) scene(t relation.Tuple) *sceneTruth {
	img, ok := t.Get("img")
	if !ok {
		return nil
	}
	return m.scenes[img.Text()]
}

// InScene reports ground truth for the inScene join: the actor is the
// main focus of a one-person scene.
func (m *Movie) InScene(actor, scene relation.Tuple) bool {
	img, ok := actor.Get("img")
	if !ok {
		return false
	}
	a, ok := m.actors[img.Text()]
	if !ok {
		return false
	}
	st := m.scene(scene)
	return st != nil && st.numInScene == 1 && st.actor == a
}

// OnePersonScenes returns the indices of scenes passing the numInScene
// filter (ground truth).
func (m *Movie) OnePersonScenes() []int {
	var out []int
	for i := 0; i < m.Scenes.Len(); i++ {
		if st := m.scene(m.Scenes.Row(i)); st != nil && st.numInScene == 1 {
			out = append(out, i)
		}
	}
	return out
}

// QualityScore returns a scene's latent "flattering" score.
func (m *Movie) QualityScore(scene relation.Tuple) float64 {
	st := m.scene(scene)
	if st == nil {
		return 0
	}
	return st.quality
}

// Oracle returns the simulator oracle.
func (m *Movie) Oracle() crowd.Oracle { return (*movieOracle)(m) }

type movieOracle Movie

// JoinMatch implements crowd.Oracle for inScene.
func (o *movieOracle) JoinMatch(left, right relation.Tuple) (bool, float64) {
	m := (*Movie)(o)
	if m.InScene(left, right) {
		return true, m.cfg.InSceneMatchDifficulty
	}
	// Scenes with the right actor among several people are harder to
	// reject (the actor appears but isn't alone).
	st := m.scene(right)
	diff := m.cfg.InSceneNonMatchDifficulty
	if st != nil && st.numInScene > 1 {
		diff *= 2
	}
	return false, diff
}

// FilterTruth implements crowd.Oracle for numInScene == 1. The paper
// found this task "very accurate, resulting in no errors".
func (o *movieOracle) FilterTruth(taskName string, t relation.Tuple) (bool, float64) {
	m := (*Movie)(o)
	st := m.scene(t)
	if st == nil {
		return false, 0
	}
	if strings.EqualFold(taskName, "oneInScene") {
		return st.numInScene == 1, 0.02
	}
	return false, 0.5
}

// FieldValue implements crowd.Oracle for the numInScene generative UDF
// (options 0, 1, 2, 3+, UNKNOWN).
func (o *movieOracle) FieldValue(taskName, field string, t relation.Tuple) (string, float64, []string) {
	m := (*Movie)(o)
	st := m.scene(t)
	if st == nil || field != "numInScene" {
		return "", 0, nil
	}
	opts := []string{"0", "1", "2", "3+", "UNKNOWN"}
	val := "3+"
	switch st.numInScene {
	case 0:
		val = "0"
	case 1:
		val = "1"
	case 2:
		val = "2"
	}
	return val, 0.02, opts
}

// Score implements crowd.Oracle for the quality sort.
func (o *movieOracle) Score(taskName string, t relation.Tuple) (float64, float64) {
	m := (*Movie)(o)
	st := m.scene(t)
	if st == nil {
		return 0, 0
	}
	return st.quality, m.cfg.QualitySigma
}

// ScoreRange implements crowd.Oracle.
func (o *movieOracle) ScoreRange(string) (float64, float64) { return 0, 1 }

// InSceneTask is the §5 join template.
func InSceneTask() *task.EquiJoin {
	return &task.EquiJoin{
		Name:         "inScene",
		SingularName: "actor",
		PluralName:   "actors",
		LeftPreview:  task.MustPrompt("<img src='%s' class=smImg>", "img"),
		LeftNormal:   task.MustPrompt("<img src='%s' class=lgImg>", "img"),
		RightPreview: task.MustPrompt("<img src='%s' class=smImg>", "img"),
		RightNormal:  task.MustPrompt("<img src='%s' class=lgImg>", "img"),
		Combiner:     "MajorityVote",
	}
}

// NumInSceneTask is the §5 generative filter UDF.
func NumInSceneTask() *task.Generative {
	return &task.Generative{
		Name:   "numInScene",
		Prompt: task.MustPrompt("<table><tr><td><img src='%s'><td>How many people are in this scene?</table>", "img"),
		Fields: []task.Field{{
			Name:     "numInScene",
			Response: task.Radio("People in scene", "0", "1", "2", "3+", "UNKNOWN"),
			Combiner: "MajorityVote",
		}},
	}
}

// OneInSceneFilter is the boolean form of the numInScene predicate used
// when the planner pushes it down as a crowd filter.
func OneInSceneFilter() *task.Filter {
	return &task.Filter{
		Name:     "oneInScene",
		Prompt:   task.MustPrompt("<table><tr><td><img src='%s'><td>Is exactly one person in this scene?</table>", "img"),
		YesText:  "Yes",
		NoText:   "No",
		Combiner: "MajorityVote",
	}
}

// QualityTask is the §5 subjective sort template.
func QualityTask() *task.Rank {
	return &task.Rank{
		Name:               "quality",
		SingularName:       "scene",
		PluralName:         "scenes",
		OrderDimensionName: "how flattering the scene is",
		LeastName:          "least flattering",
		MostName:           "most flattering",
		HTML:               task.MustPrompt("<img src='%s' class=lgImg>", "img"),
		Combiner:           "MajorityVote",
	}
}
