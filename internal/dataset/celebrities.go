// Package dataset generates the paper's four evaluation datasets with
// ground-truth oracles for the crowd simulator: the celebrity join tables
// (§3.3.1), the synthetic squares (§4.2.1), the 27-item animals set with
// the paper's published orders (§4.2.3), and the movie-scenes tables for
// the end-to-end query (§5). All generators are seeded and deterministic.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"qurk/internal/crowd"
	"qurk/internal/join"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// CelebrityConfig controls the celebrity join dataset.
type CelebrityConfig struct {
	// N is the number of celebrities; each appears once per table
	// ("each table contains one image of each celebrity", §3.3.1).
	N int
	// Seed drives generation.
	Seed int64
	// HairDriftProb is the chance a celebrity's candid photo displays a
	// different hair color than their profile photo (dyed hair — the
	// cause of every feature-filtering error in the paper, §3.3.4).
	// Default 0.12.
	HairDriftProb float64
	// SkinDriftProb is the analogous (smaller) skin-tone drift from
	// lighting. Default 0.03.
	SkinDriftProb float64
	// GenderConfusion, HairConfusion, SkinConfusion are the per-field
	// worker confusion rates. Defaults 0.03, 0.58, 0.15 — calibrated to
	// the paper's κ values (gender ≈ .9, hair ≈ .3–.45, skin ≈ .45–.95;
	// Table 4; the paper blames "blond vs white" disagreement and dyed
	// hair for hair's low agreement).
	GenderConfusion, HairConfusion, SkinConfusion float64
	// MatchDifficulty is the join difficulty of true pairs (profile vs
	// candid shot). Default 0.15, putting a skill-0.83 worker near the
	// paper's 78% single-worker true-positive rate.
	MatchDifficulty float64
	// NonMatchDifficulty is the difficulty of rejecting a random
	// non-matching pair. Default 0.05.
	NonMatchDifficulty float64
	// LookalikeFraction of celebrities have a designated lookalike,
	// making that cross pair hard (difficulty 0.45) — the source of the
	// paper's consistent false positives (§5). Default 0.1.
	LookalikeFraction float64
	// HairUnknownProb and SkinUnknownProb are the chances a photo's
	// hair/skin is genuinely indeterminate (hats, lighting) so workers
	// answer UNKNOWN — which keeps the pair as a join candidate (§2.4).
	// Defaults 0.22 and 0.12, matching the paper's empirical Table 3
	// selectivities (gender prunes most; hair least).
	HairUnknownProb, SkinUnknownProb float64
}

func (c *CelebrityConfig) fillDefaults() {
	if c.N == 0 {
		c.N = 30
	}
	if c.HairDriftProb == 0 {
		c.HairDriftProb = 0.12
	}
	if c.SkinDriftProb == 0 {
		c.SkinDriftProb = 0.03
	}
	if c.GenderConfusion == 0 {
		c.GenderConfusion = 0.03
	}
	if c.HairConfusion == 0 {
		c.HairConfusion = 0.58
	}
	if c.SkinConfusion == 0 {
		c.SkinConfusion = 0.15
	}
	if c.MatchDifficulty == 0 {
		c.MatchDifficulty = 0.15
	}
	if c.NonMatchDifficulty == 0 {
		c.NonMatchDifficulty = 0.05
	}
	if c.LookalikeFraction == 0 {
		c.LookalikeFraction = 0.1
	}
	if c.HairUnknownProb == 0 {
		c.HairUnknownProb = 0.22
	}
	if c.SkinUnknownProb == 0 {
		c.SkinUnknownProb = 0.12
	}
}

// celebPhoto is one photo's ground truth.
type celebPhoto struct {
	celeb int // celebrity index
	// displayed feature values for THIS photo (drift applies).
	gender, hair, skin string
}

// Celebrities is the celebrity join dataset: celeb(name, img) profile
// photos and photos(id, img) candid photos (paper §3.3.1's IMDB and
// Oscar tables).
type Celebrities struct {
	cfg    CelebrityConfig
	Celeb  *relation.Relation
	Photos *relation.Relation
	// names[i] is celebrity i's name.
	names []string
	// byURL maps an img URL to its photo ground truth.
	byURL map[string]*celebPhoto
	// lookalike[i] = j means celeb i's profile resembles celeb j's
	// candid (and vice versa); -1 if none.
	lookalike []int
}

var (
	hairColors = []string{"black", "brown", "blond", "white"}
	skinColors = []string{"light", "medium", "dark"}
	genders    = []string{"male", "female"}
)

// NewCelebrities generates the dataset.
func NewCelebrities(cfg CelebrityConfig) *Celebrities {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Celebrities{
		cfg:       cfg,
		byURL:     make(map[string]*celebPhoto, 2*cfg.N),
		lookalike: make([]int, cfg.N),
		names:     make([]string, cfg.N),
	}
	celebSchema := relation.MustSchema(
		relation.Column{Name: "name", Kind: relation.KindText},
		relation.Column{Name: "img", Kind: relation.KindURL},
	)
	photoSchema := relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "img", Kind: relation.KindURL},
	)
	d.Celeb = relation.New("celeb", celebSchema)
	d.Photos = relation.New("photos", photoSchema)

	for i := 0; i < cfg.N; i++ {
		d.lookalike[i] = -1
		d.names[i] = fmt.Sprintf("Celebrity %02d", i)
		gender := genders[rng.Intn(2)]
		// Skewed hair/skin distributions (most celebrities photograph
		// with dark hair and light skin) keep these features less
		// selective than gender, as the paper's Table 3 found.
		hair := hairColors[weightedPick(rng, []float64{0.45, 0.35, 0.12, 0.08})]
		skin := skinColors[weightedPick(rng, []float64{0.7, 0.2, 0.1})]

		profileURL := fmt.Sprintf("http://imdb.example/celeb%03d.jpg", i)
		candidURL := fmt.Sprintf("http://people.example/oscar%03d.jpg", i)
		d.byURL[profileURL] = &celebPhoto{celeb: i, gender: gender, hair: hair, skin: skin}

		candid := &celebPhoto{celeb: i, gender: gender, hair: hair, skin: skin}
		if rng.Float64() < cfg.HairDriftProb {
			candid.hair = otherValue(rng, hairColors, hair)
		}
		if rng.Float64() < cfg.SkinDriftProb {
			candid.skin = otherValue(rng, skinColors, skin)
		}
		// Indeterminate features per photo: workers answer UNKNOWN,
		// which never prunes candidates.
		for _, ph := range []*celebPhoto{d.byURL[profileURL], candid} {
			if rng.Float64() < cfg.HairUnknownProb {
				ph.hair = "UNKNOWN"
			}
			if rng.Float64() < cfg.SkinUnknownProb {
				ph.skin = "UNKNOWN"
			}
		}
		d.byURL[candidURL] = candid

		_ = d.Celeb.AppendValues(relation.Text(d.names[i]), relation.URL(profileURL))
		_ = d.Photos.AppendValues(relation.Int(int64(i)), relation.URL(candidURL))
	}
	// Assign lookalikes among same-gender celebrities.
	for i := 0; i < cfg.N; i++ {
		if d.lookalike[i] >= 0 || rng.Float64() >= cfg.LookalikeFraction {
			continue
		}
		j := rng.Intn(cfg.N)
		if j != i && d.lookalike[j] < 0 {
			d.lookalike[i] = j
			d.lookalike[j] = i
		}
	}
	return d
}

func weightedPick(rng *rand.Rand, weights []float64) int {
	x := rng.Float64()
	var cum float64
	for i, w := range weights {
		cum += w
		if x < cum {
			return i
		}
	}
	return len(weights) - 1
}

func otherValue(rng *rand.Rand, options []string, current string) string {
	for {
		v := options[rng.Intn(len(options))]
		if v != current {
			return v
		}
	}
}

// IsMatch reports ground truth for a (celeb row, photo row) pair.
func (d *Celebrities) IsMatch(left, right relation.Tuple) bool {
	lp, rp := d.photoOf(left), d.photoOf(right)
	return lp != nil && rp != nil && lp.celeb == rp.celeb
}

// TrueMatches returns the N ground-truth pairs.
func (d *Celebrities) TrueMatches() []join.Pair {
	var out []join.Pair
	for i := 0; i < d.Celeb.Len(); i++ {
		for j := 0; j < d.Photos.Len(); j++ {
			if d.IsMatch(d.Celeb.Row(i), d.Photos.Row(j)) {
				out = append(out, join.Pair{LeftIndex: i, RightIndex: j, Left: d.Celeb.Row(i), Right: d.Photos.Row(j)})
			}
		}
	}
	return out
}

func (d *Celebrities) photoOf(t relation.Tuple) *celebPhoto {
	img, ok := t.Get("img")
	if !ok {
		return nil
	}
	return d.byURL[img.Text()]
}

// Oracle returns the ground-truth oracle for the crowd simulator.
func (d *Celebrities) Oracle() crowd.Oracle { return (*celebOracle)(d) }

type celebOracle Celebrities

// JoinMatch implements crowd.Oracle.
func (o *celebOracle) JoinMatch(left, right relation.Tuple) (bool, float64) {
	d := (*Celebrities)(o)
	lp, rp := d.photoOf(left), d.photoOf(right)
	if lp == nil || rp == nil {
		return false, 0
	}
	if lp.celeb == rp.celeb {
		return true, d.cfg.MatchDifficulty
	}
	if d.lookalike[lp.celeb] == rp.celeb {
		return false, 0.45
	}
	// Same-gender strangers are a bit harder to reject than
	// opposite-gender ones.
	diff := d.cfg.NonMatchDifficulty
	if lp.gender == rp.gender {
		diff *= 1.5
	}
	return false, diff
}

// FilterTruth implements crowd.Oracle: isFemale over either table.
func (o *celebOracle) FilterTruth(taskName string, t relation.Tuple) (bool, float64) {
	d := (*Celebrities)(o)
	p := d.photoOf(t)
	if p == nil {
		return false, 0
	}
	switch strings.ToLower(taskName) {
	case "isfemale":
		return p.gender == "female", 0.03
	case "ismale":
		return p.gender == "male", 0.03
	default:
		return false, 0.5
	}
}

// FieldValue implements crowd.Oracle: per-photo displayed feature values.
func (o *celebOracle) FieldValue(taskName, field string, t relation.Tuple) (string, float64, []string) {
	d := (*Celebrities)(o)
	p := d.photoOf(t)
	if p == nil {
		return "", 0, nil
	}
	switch field {
	case "gender":
		return p.gender, d.cfg.GenderConfusion, []string{"male", "female", "UNKNOWN"}
	case "hair":
		return p.hair, d.cfg.HairConfusion, append(append([]string(nil), hairColors...), "UNKNOWN")
	case "skin":
		return p.skin, d.cfg.SkinConfusion, append(append([]string(nil), skinColors...), "UNKNOWN")
	default:
		return "", 0, nil
	}
}

// Score implements crowd.Oracle (celebrities aren't sorted in the paper;
// provide name order for completeness).
func (o *celebOracle) Score(taskName string, t relation.Tuple) (float64, float64) {
	d := (*Celebrities)(o)
	p := d.photoOf(t)
	if p == nil {
		return 0, 0
	}
	return float64(p.celeb), 0.05
}

// ScoreRange implements crowd.Oracle.
func (o *celebOracle) ScoreRange(string) (float64, float64) {
	return 0, float64((*Celebrities)(o).cfg.N - 1)
}

// SamePersonTask returns the paper's samePerson EquiJoin template (§2.4).
func SamePersonTask() *task.EquiJoin {
	return &task.EquiJoin{
		Name:         "samePerson",
		SingularName: "celebrity",
		PluralName:   "celebrities",
		LeftPreview:  task.MustPrompt("<img src='%s' class=smImg>", "img"),
		LeftNormal:   task.MustPrompt("<img src='%s' class=lgImg>", "img"),
		RightPreview: task.MustPrompt("<img src='%s' class=smImg>", "img"),
		RightNormal:  task.MustPrompt("<img src='%s' class=lgImg>", "img"),
		Combiner:     "MajorityVote",
	}
}

// GenderTask returns the gender feature-extraction template (§2.4).
func GenderTask() *task.Generative {
	return &task.Generative{
		Name:   "gender",
		Prompt: task.MustPrompt("<table><tr><td><img src='%s'><td>What is this person's gender?</table>", "img"),
		Fields: []task.Field{{
			Name:     "gender",
			Response: task.Radio("Gender", "male", "female", "UNKNOWN"),
			Combiner: "MajorityVote",
		}},
	}
}

// HairColorTask returns the hair-color feature template.
func HairColorTask() *task.Generative {
	return &task.Generative{
		Name:   "hairColor",
		Prompt: task.MustPrompt("<table><tr><td><img src='%s'><td>What is this person's hair color?</table>", "img"),
		Fields: []task.Field{{
			Name:     "hair",
			Response: task.Radio("Hair color", "black", "brown", "blond", "white", "UNKNOWN"),
			Combiner: "MajorityVote",
		}},
	}
}

// SkinColorTask returns the skin-color feature template.
func SkinColorTask() *task.Generative {
	return &task.Generative{
		Name:   "skinColor",
		Prompt: task.MustPrompt("<table><tr><td><img src='%s'><td>What is this person's skin color?</table>", "img"),
		Fields: []task.Field{{
			Name:     "skin",
			Response: task.Radio("Skin color", "light", "medium", "dark", "UNKNOWN"),
			Combiner: "MajorityVote",
		}},
	}
}

// CelebrityFeatures returns the three POSSIBLY-clause features of the
// paper's celebrity join (§2.4).
func CelebrityFeatures() []join.Feature {
	return []join.Feature{
		{Task: GenderTask(), Field: "gender"},
		{Task: HairColorTask(), Field: "hair"},
		{Task: SkinColorTask(), Field: "skin"},
	}
}

// IsFemaleTask returns the paper's quickstart filter (§2.1).
func IsFemaleTask() *task.Filter {
	return &task.Filter{
		Name:     "isFemale",
		Prompt:   task.MustPrompt("<table><tr><td><img src='%s'></td><td>Is the person in the image a woman?</td></tr></table>", "img"),
		YesText:  "Yes",
		NoText:   "No",
		Combiner: "MajorityVote",
	}
}
