package dataset

import (
	"fmt"

	"qurk/internal/crowd"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// Squares is the paper's synthetic square-sort dataset (§4.2.1): "Each
// square is n×n pixels, and the smallest is 20×20. A dataset of size N
// contains squares of sizes {(20+3i)×(20+3i) | i ∈ [0,N)}." The sort
// metric (area) is crisply defined, so Compare should reach τ = 1.0
// while Rate lands near 0.78 (§4.2.2).
type Squares struct {
	Rel *relation.Relation
	// sides[i] is square i's side length in pixels.
	sides []int
	byURL map[string]int
	// Sigma is the side-by-side comparison noise (range fraction);
	// tiny because square area is unambiguous. Default 0.012.
	Sigma float64
}

// NewSquares generates an N-square dataset.
func NewSquares(n int) *Squares {
	s := &Squares{
		byURL: make(map[string]int, n),
		Sigma: 0.012,
	}
	schema := relation.MustSchema(
		relation.Column{Name: "label", Kind: relation.KindText},
		relation.Column{Name: "img", Kind: relation.KindURL},
	)
	s.Rel = relation.New("squares", schema)
	for i := 0; i < n; i++ {
		side := 20 + 3*i
		url := fmt.Sprintf("http://squares.example/sq%03d.png", i)
		s.byURL[url] = i
		s.sides = append(s.sides, side)
		_ = s.Rel.AppendValues(relation.Text(fmt.Sprintf("square-%dpx", side)), relation.URL(url))
	}
	return s
}

// Side returns square i's side length.
func (s *Squares) Side(i int) int { return s.sides[i] }

// TrueOrder returns the ascending-area order (identity, by construction).
func (s *Squares) TrueOrder() []int {
	out := make([]int, len(s.sides))
	for i := range out {
		out[i] = i
	}
	return out
}

// TrueScores returns each row's area, for τ computations.
func (s *Squares) TrueScores() []float64 {
	out := make([]float64, len(s.sides))
	for i, side := range s.sides {
		out[i] = float64(side * side)
	}
	return out
}

// Oracle returns the simulator oracle.
func (s *Squares) Oracle() crowd.Oracle { return (*squaresOracle)(s) }

type squaresOracle Squares

func (o *squaresOracle) idx(t relation.Tuple) int {
	img, ok := t.Get("img")
	if !ok {
		return -1
	}
	i, ok := o.byURL[img.Text()]
	if !ok {
		return -1
	}
	return i
}

// JoinMatch implements crowd.Oracle (unused for squares).
func (o *squaresOracle) JoinMatch(relation.Tuple, relation.Tuple) (bool, float64) { return false, 0 }

// FilterTruth implements crowd.Oracle (unused for squares).
func (o *squaresOracle) FilterTruth(string, relation.Tuple) (bool, float64) { return false, 0.5 }

// FieldValue implements crowd.Oracle (unused for squares).
func (o *squaresOracle) FieldValue(string, string, relation.Tuple) (string, float64, []string) {
	return "", 0, nil
}

// Score implements crowd.Oracle: workers perceive side length (area and
// side induce the same order).
func (o *squaresOracle) Score(taskName string, t relation.Tuple) (float64, float64) {
	i := o.idx(t)
	if i < 0 {
		return 0, 0
	}
	return float64(o.sides[i]), o.Sigma
}

// ScoreRange implements crowd.Oracle.
func (o *squaresOracle) ScoreRange(string) (float64, float64) {
	if len(o.sides) == 0 {
		return 0, 1
	}
	return float64(o.sides[0]), float64(o.sides[len(o.sides)-1])
}

// SquareSorterTask is the paper's squareSorter Rank template (§2.3).
func SquareSorterTask() *task.Rank {
	return &task.Rank{
		Name:               "squareSorter",
		SingularName:       "square",
		PluralName:         "squares",
		OrderDimensionName: "area",
		LeastName:          "smallest",
		MostName:           "largest",
		HTML:               task.MustPrompt("<img src='%s' class=lgImg>", "img"),
		Combiner:           "MajorityVote",
	}
}
