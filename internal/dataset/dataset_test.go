package dataset

import (
	"testing"

	"qurk/internal/crowd"
	"qurk/internal/relation"
)

func TestCelebritiesShape(t *testing.T) {
	d := NewCelebrities(CelebrityConfig{N: 30, Seed: 1})
	if d.Celeb.Len() != 30 || d.Photos.Len() != 30 {
		t.Fatalf("tables: %d celebs, %d photos", d.Celeb.Len(), d.Photos.Len())
	}
	// Exactly one match per celebrity.
	matches := d.TrueMatches()
	if len(matches) != 30 {
		t.Fatalf("true matches = %d, want 30", len(matches))
	}
	for _, m := range matches {
		if m.LeftIndex != m.RightIndex {
			t.Errorf("match indices misaligned: %d vs %d", m.LeftIndex, m.RightIndex)
		}
	}
}

func TestCelebritiesDeterminism(t *testing.T) {
	a := NewCelebrities(CelebrityConfig{N: 20, Seed: 5})
	b := NewCelebrities(CelebrityConfig{N: 20, Seed: 5})
	for i := 0; i < 20; i++ {
		av, _, _ := a.Oracle().FieldValue("hairColor", "hair", a.Photos.Row(i))
		bv, _, _ := b.Oracle().FieldValue("hairColor", "hair", b.Photos.Row(i))
		if av != bv {
			t.Fatalf("photo %d hair differs across same-seed runs: %s vs %s", i, av, bv)
		}
	}
}

func TestCelebritiesHairDrift(t *testing.T) {
	d := NewCelebrities(CelebrityConfig{N: 200, Seed: 7, HairDriftProb: 0.15})
	o := d.Oracle()
	drifted, unknown := 0, 0
	for i := 0; i < 200; i++ {
		ph, _, _ := o.FieldValue("hairColor", "hair", d.Celeb.Row(i))
		ch, _, _ := o.FieldValue("hairColor", "hair", d.Photos.Row(i))
		if ph == "UNKNOWN" || ch == "UNKNOWN" {
			unknown++
			continue
		}
		if ph != ch {
			drifted++
		}
	}
	// ≈15% of determinate celebrities display different hair across
	// photos, and a sizable share of photos are hair-indeterminate.
	if drifted < 8 || drifted > 60 {
		t.Errorf("hair drift count = %d/200, want ≈20-30 among determinate", drifted)
	}
	if unknown < 40 {
		t.Errorf("hair-indeterminate photos = %d/200, want ≥40", unknown)
	}
	// Gender never drifts.
	for i := 0; i < 200; i++ {
		pg, _, _ := o.FieldValue("gender", "gender", d.Celeb.Row(i))
		cg, _, _ := o.FieldValue("gender", "gender", d.Photos.Row(i))
		if pg != cg {
			t.Fatalf("gender drifted for celeb %d", i)
		}
	}
}

func TestCelebritiesOracleDifficulties(t *testing.T) {
	d := NewCelebrities(CelebrityConfig{N: 10, Seed: 3})
	o := d.Oracle()
	match, diff := o.JoinMatch(d.Celeb.Row(0), d.Photos.Row(0))
	if !match || diff <= 0 {
		t.Errorf("true pair: match=%v diff=%v", match, diff)
	}
	match, diff2 := o.JoinMatch(d.Celeb.Row(0), d.Photos.Row(1))
	if match {
		t.Error("non-pair reported as match")
	}
	if diff2 >= diff {
		t.Errorf("non-match difficulty %v ≥ match difficulty %v", diff2, diff)
	}
}

func TestCelebrityFilterTruth(t *testing.T) {
	d := NewCelebrities(CelebrityConfig{N: 50, Seed: 11})
	o := d.Oracle()
	females := 0
	for i := 0; i < 50; i++ {
		yes, _ := o.FilterTruth("isFemale", d.Celeb.Row(i))
		g, _, _ := o.FieldValue("gender", "gender", d.Celeb.Row(i))
		if yes != (g == "female") {
			t.Fatalf("isFemale truth inconsistent with gender for row %d", i)
		}
		if yes {
			females++
		}
	}
	if females < 10 || females > 40 {
		t.Errorf("females = %d/50, want roughly balanced", females)
	}
}

func TestCelebrityTasksValidate(t *testing.T) {
	for _, tk := range []interface{ Validate() error }{
		SamePersonTask(), GenderTask(), HairColorTask(), SkinColorTask(), IsFemaleTask(),
	} {
		if err := tk.Validate(); err != nil {
			t.Errorf("task invalid: %v", err)
		}
	}
	if len(CelebrityFeatures()) != 3 {
		t.Error("want 3 celebrity features")
	}
}

func TestSquares(t *testing.T) {
	s := NewSquares(40)
	if s.Rel.Len() != 40 {
		t.Fatalf("squares = %d", s.Rel.Len())
	}
	if s.Side(0) != 20 || s.Side(39) != 20+3*39 {
		t.Errorf("sides = %d..%d, want 20..137", s.Side(0), s.Side(39))
	}
	scores := s.TrueScores()
	if scores[0] != 400 {
		t.Errorf("smallest area = %v, want 400", scores[0])
	}
	o := s.Oracle()
	sc0, sig := o.Score("squareSorter", s.Rel.Row(0))
	if sc0 != 20 || sig <= 0 || sig > 0.05 {
		t.Errorf("score(0) = %v sigma %v", sc0, sig)
	}
	lo, hi := o.ScoreRange("squareSorter")
	if lo != 20 || hi != 137 {
		t.Errorf("range = [%v, %v]", lo, hi)
	}
	if err := SquareSorterTask().Validate(); err != nil {
		t.Error(err)
	}
}

func TestAnimalsOrders(t *testing.T) {
	a := NewAnimals()
	if a.Rel.Len() != 27 {
		t.Fatalf("animals = %d, want 27 (25 + rock + flower)", a.Rel.Len())
	}
	for _, taskName := range []string{"animalSize", "dangerous", "saturn"} {
		order, err := a.TrueOrderIndices(taskName)
		if err != nil {
			t.Fatal(err)
		}
		if len(order) != 27 {
			t.Fatalf("%s order = %d items", taskName, len(order))
		}
		scores, err := a.TrueScores(taskName)
		if err != nil {
			t.Fatal(err)
		}
		// Order indices must sort scores ascending.
		for i := 1; i < len(order); i++ {
			if scores[order[i-1]] >= scores[order[i]] {
				t.Fatalf("%s: order not ascending at %d", taskName, i)
			}
		}
	}
	// Spot-check the paper's published endpoints.
	sizeIdx, _ := a.TrueOrderIndices("animalSize")
	if a.Rel.Row(sizeIdx[0]).MustGet("name").Text() != "ant" {
		t.Error("smallest animal should be ant")
	}
	if a.Rel.Row(sizeIdx[26]).MustGet("name").Text() != "whale" {
		t.Error("largest animal should be whale")
	}
	dangerIdx, _ := a.TrueOrderIndices("dangerous")
	if a.Rel.Row(dangerIdx[0]).MustGet("name").Text() != "flower" {
		t.Error("least dangerous should be flower")
	}
	if a.Rel.Row(dangerIdx[26]).MustGet("name").Text() != "panther" {
		t.Error("most dangerous should be panther")
	}
	saturnIdx, _ := a.TrueOrderIndices("saturn")
	if a.Rel.Row(saturnIdx[26]).MustGet("name").Text() != "rock" {
		t.Error("most Saturn-suited should be rock")
	}
	if _, err := a.TrueOrderIndices("bogus"); err == nil {
		t.Error("bogus task accepted")
	}
}

func TestAnimalsSigmasEscalate(t *testing.T) {
	a := NewAnimals()
	o := a.Oracle()
	row := a.Rel.Row(0)
	_, s1 := o.Score("animalSize", row)
	_, s2 := o.Score("dangerous", row)
	_, s3 := o.Score("saturn", row)
	_, s4 := o.Score("randomOrder", row)
	if !(s1 < s2 && s2 < s3 && s3 < s4) {
		t.Errorf("sigmas not escalating: %v %v %v %v", s1, s2, s3, s4)
	}
}

func TestMovieShape(t *testing.T) {
	m := NewMovie(MovieConfig{Seed: 1})
	if m.Scenes.Len() != 211 || m.Actors.Len() != 5 {
		t.Fatalf("movie: %d scenes, %d actors", m.Scenes.Len(), m.Actors.Len())
	}
	one := m.OnePersonScenes()
	frac := float64(len(one)) / 211
	if frac < 0.45 || frac > 0.65 {
		t.Errorf("one-person fraction = %.2f, want ≈0.55 (paper's selectivity)", frac)
	}
	// Every one-person scene joins exactly one actor.
	joins := 0
	for a := 0; a < m.Actors.Len(); a++ {
		for s := 0; s < m.Scenes.Len(); s++ {
			if m.InScene(m.Actors.Row(a), m.Scenes.Row(s)) {
				joins++
			}
		}
	}
	if joins != len(one) {
		t.Errorf("inScene joins = %d, want %d (one per one-person scene)", joins, len(one))
	}
}

func TestMovieOracle(t *testing.T) {
	m := NewMovie(MovieConfig{Seed: 3})
	o := m.Oracle()
	// numInScene field values match the scene truth.
	for s := 0; s < 20; s++ {
		v, conf, opts := o.FieldValue("numInScene", "numInScene", m.Scenes.Row(s))
		if len(opts) != 5 || conf <= 0 {
			t.Fatalf("numInScene options = %v conf %v", opts, conf)
		}
		yes, _ := o.FilterTruth("oneInScene", m.Scenes.Row(s))
		if yes != (v == "1") {
			t.Fatalf("scene %d: filter truth %v inconsistent with field %q", s, yes, v)
		}
	}
	// Quality scores in [0,1] with the configured sigma.
	_, sigma := o.Score("quality", m.Scenes.Row(0))
	if sigma != 0.3 {
		t.Errorf("quality sigma = %v", sigma)
	}
	for _, tk := range []interface{ Validate() error }{
		InSceneTask(), NumInSceneTask(), OneInSceneFilter(), QualityTask(),
	} {
		if err := tk.Validate(); err != nil {
			t.Error(err)
		}
	}
}

// Compile-time interface checks.
var (
	_ crowd.Oracle = (*celebOracle)(nil)
	_ crowd.Oracle = (*squaresOracle)(nil)
	_ crowd.Oracle = (*animalsOracle)(nil)
	_ crowd.Oracle = (*movieOracle)(nil)
)

func TestOracleUnknownTuples(t *testing.T) {
	// Oracles must not panic on tuples from foreign schemas.
	foreign := relation.MustTuple(
		relation.MustSchema(relation.Column{Name: "x", Kind: relation.KindText}),
		relation.Text("?"))
	d := NewCelebrities(CelebrityConfig{N: 5, Seed: 1})
	if match, _ := d.Oracle().JoinMatch(foreign, foreign); match {
		t.Error("foreign tuple matched")
	}
	s := NewSquares(5)
	if sc, _ := s.Oracle().Score("squareSorter", foreign); sc != 0 {
		t.Error("foreign square scored")
	}
	m := NewMovie(MovieConfig{Scenes: 10, Actors: 2, Seed: 1})
	if yes, _ := m.Oracle().FilterTruth("oneInScene", foreign); yes {
		t.Error("foreign scene filtered")
	}
}
