package dataset

import (
	"fmt"
	"strings"

	"qurk/internal/crowd"
	"qurk/internal/relation"
	"qurk/internal/task"
)

// The animals dataset (paper §4.2.1): 25 animals plus a rock and a
// dandelion ("flower") "to introduce uncertainty". The paper publishes
// the full Compare output orders for its three sort queries (§4.2.3);
// we adopt those as latent ground truth and vary only the per-query
// subjective noise, which is what κ and τ measure.
var animalNames = []string{
	"ant", "baboon", "bee", "camel", "dog", "dolphin", "eagle",
	"elephant seal", "flower", "grasshopper", "great white shark",
	"hippo", "hyena", "komodo dragon", "lemur", "moose", "octopus",
	"panther", "parrot", "rat", "rock", "skunk", "tazmanian devil",
	"tiger", "turkey", "whale", "wolf",
}

// The paper's published Compare orders, least → most (§4.2.3).
var (
	sizeOrder = []string{
		"ant", "bee", "flower", "grasshopper", "parrot", "rock", "rat",
		"octopus", "skunk", "tazmanian devil", "turkey", "eagle", "lemur",
		"hyena", "dog", "komodo dragon", "baboon", "wolf", "panther",
		"dolphin", "elephant seal", "moose", "tiger", "camel",
		"great white shark", "hippo", "whale",
	}
	dangerOrder = []string{
		"flower", "ant", "grasshopper", "rock", "bee", "turkey", "dolphin",
		"parrot", "baboon", "rat", "tazmanian devil", "lemur", "camel",
		"octopus", "dog", "eagle", "elephant seal", "skunk", "hippo",
		"hyena", "great white shark", "moose", "komodo dragon", "wolf",
		"tiger", "whale", "panther",
	}
	saturnOrder = []string{
		"whale", "octopus", "dolphin", "elephant seal", "great white shark",
		"bee", "flower", "grasshopper", "hippo", "dog", "lemur", "wolf",
		"moose", "camel", "hyena", "skunk", "tazmanian devil", "tiger",
		"baboon", "eagle", "parrot", "turkey", "rat", "panther",
		"komodo dragon", "ant", "rock",
	}
)

// Per-query subjective noise (range fraction): Q2 size is fairly crisp,
// Q3 dangerousness is ambiguous, Q4 Saturn mostly guesswork, Q5 random
// is pure noise (the paper's five queries, §4.2.3).
const (
	SizeSigma   = 0.05
	DangerSigma = 0.16
	SaturnSigma = 0.60
	RandomSigma = 1000
)

// Animals is the animal-sort dataset.
type Animals struct {
	Rel   *relation.Relation
	byURL map[string]string // url → name
	// rankIn[task][name] = position in that task's ground order.
	rankIn map[string]map[string]int
}

// NewAnimals builds the 27-item dataset.
func NewAnimals() *Animals {
	a := &Animals{
		byURL:  make(map[string]string, len(animalNames)),
		rankIn: map[string]map[string]int{},
	}
	for taskName, order := range map[string][]string{
		"animalSize":  sizeOrder,
		"dangerous":   dangerOrder,
		"saturn":      saturnOrder,
		"randomOrder": sizeOrder, // scores irrelevant at RandomSigma
	} {
		m := make(map[string]int, len(order))
		for i, n := range order {
			m[n] = i
		}
		a.rankIn[taskName] = m
	}
	schema := relation.MustSchema(
		relation.Column{Name: "name", Kind: relation.KindText},
		relation.Column{Name: "img", Kind: relation.KindURL},
	)
	a.Rel = relation.New("animals", schema)
	for i, n := range animalNames {
		url := fmt.Sprintf("http://animals.example/%02d-%s.jpg", i, strings.ReplaceAll(n, " ", "-"))
		a.byURL[url] = n
		_ = a.Rel.AppendValues(relation.Text(n), relation.URL(url))
	}
	return a
}

// TrueOrderIndices returns row indices in the ground order for a query
// task ("animalSize", "dangerous", "saturn").
func (a *Animals) TrueOrderIndices(taskName string) ([]int, error) {
	ranks, ok := a.rankIn[taskName]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown animal task %q", taskName)
	}
	type ri struct{ row, rank int }
	rows := make([]ri, a.Rel.Len())
	for i := 0; i < a.Rel.Len(); i++ {
		name := a.Rel.Row(i).MustGet("name").Text()
		rows[i] = ri{i, ranks[name]}
	}
	// insertion sort by rank (27 items)
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j-1].rank > rows[j].rank; j-- {
			rows[j-1], rows[j] = rows[j], rows[j-1]
		}
	}
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = r.row
	}
	return out, nil
}

// TrueScores returns the latent score of each row under a task.
func (a *Animals) TrueScores(taskName string) ([]float64, error) {
	ranks, ok := a.rankIn[taskName]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown animal task %q", taskName)
	}
	out := make([]float64, a.Rel.Len())
	for i := 0; i < a.Rel.Len(); i++ {
		out[i] = float64(ranks[a.Rel.Row(i).MustGet("name").Text()])
	}
	return out, nil
}

// Oracle returns the simulator oracle.
func (a *Animals) Oracle() crowd.Oracle { return (*animalsOracle)(a) }

type animalsOracle Animals

// JoinMatch implements crowd.Oracle (unused).
func (o *animalsOracle) JoinMatch(relation.Tuple, relation.Tuple) (bool, float64) { return false, 0 }

// FilterTruth implements crowd.Oracle (unused).
func (o *animalsOracle) FilterTruth(string, relation.Tuple) (bool, float64) { return false, 0.5 }

// FieldValue implements crowd.Oracle: the animalInfo generative task
// (§2.2) returns the common name as free text.
func (o *animalsOracle) FieldValue(taskName, field string, t relation.Tuple) (string, float64, []string) {
	name, ok := t.Get("name")
	if !ok {
		return "", 0, nil
	}
	switch field {
	case "common":
		return name.Text(), 0.08, nil
	case "species":
		return "species of " + name.Text(), 0.2, nil
	default:
		return "", 0, nil
	}
}

// Score implements crowd.Oracle with per-query sigma.
func (o *animalsOracle) Score(taskName string, t relation.Tuple) (float64, float64) {
	a := (*Animals)(o)
	name, ok := t.Get("name")
	if !ok {
		return 0, 0
	}
	ranks, ok := a.rankIn[taskName]
	if !ok {
		return 0, 0.5
	}
	sigma := SizeSigma
	switch taskName {
	case "dangerous":
		sigma = DangerSigma
	case "saturn":
		sigma = SaturnSigma
	case "randomOrder":
		sigma = RandomSigma
	}
	return float64(ranks[name.Text()]), sigma
}

// ScoreRange implements crowd.Oracle.
func (o *animalsOracle) ScoreRange(string) (float64, float64) {
	return 0, float64(len(animalNames) - 1)
}

// AnimalSortTask builds a Rank template for one of the animal queries.
func AnimalSortTask(taskName, dimension, least, most string) *task.Rank {
	return &task.Rank{
		Name:               taskName,
		SingularName:       "animal",
		PluralName:         "animals",
		OrderDimensionName: dimension,
		LeastName:          least,
		MostName:           most,
		HTML:               task.MustPrompt("<img src='%s' class=lgImg>", "img"),
		Combiner:           "MajorityVote",
	}
}

// The paper's Q2–Q4 templates.
func AnimalSizeTask() *task.Rank {
	return AnimalSortTask("animalSize", "adult size", "smallest", "largest")
}
func DangerousTask() *task.Rank {
	return AnimalSortTask("dangerous", "dangerousness", "least dangerous", "most dangerous")
}
func SaturnTask() *task.Rank {
	return AnimalSortTask("saturn", "how much this animal belongs on Saturn", "least", "most")
}
func RandomOrderTask() *task.Rank {
	return AnimalSortTask("randomOrder", "random order", "least", "most")
}

// AnimalInfoTask is the paper's generative example (§2.2).
func AnimalInfoTask() *task.Generative {
	return &task.Generative{
		Name:   "animalInfo",
		Prompt: task.MustPrompt("<table><tr><td><img src='%s'><td>What is the common name and species of this animal?</table>", "img"),
		Fields: []task.Field{
			{Name: "common", Response: task.TextInput("Common name"), Combiner: "MajorityVote", Normalizer: "LowercaseSingleSpace"},
			{Name: "species", Response: task.TextInput("Species"), Combiner: "MajorityVote", Normalizer: "LowercaseSingleSpace"},
		},
	}
}
