package combine

import (
	"fmt"
	"math/rand"
	"testing"
)

// goldCorpus builds votes over real + gold questions from good workers
// (accuracy acc) and spammers (always "yes").
func goldCorpus(nReal, nGold, nGood, nSpam int, acc float64, seed int64) (votes []Vote, gold map[string]string, truth map[string]string) {
	rng := rand.New(rand.NewSource(seed))
	gold = map[string]string{}
	truth = map[string]string{}
	ask := func(qid, want string, isGold bool) {
		if isGold {
			gold[qid] = want
		} else {
			truth[qid] = want
		}
		for w := 0; w < nGood; w++ {
			v := want
			if rng.Float64() > acc {
				v = flip(want)
			}
			votes = append(votes, Vote{Question: qid, Worker: fmt.Sprintf("good%d", w), Value: v})
		}
		for w := 0; w < nSpam; w++ {
			votes = append(votes, Vote{Question: qid, Worker: fmt.Sprintf("spam%d", w), Value: "yes"})
		}
	}
	for q := 0; q < nReal; q++ {
		want := "yes"
		if q%2 == 1 {
			want = "no"
		}
		ask(fmt.Sprintf("q%03d", q), want, false)
	}
	for g := 0; g < nGold; g++ {
		want := "yes"
		if g%2 == 0 { // half the golds are "no", catching always-yes spam
			want = "no"
		}
		ask(fmt.Sprintf("gold%03d", g), want, true)
	}
	return votes, gold, truth
}

func TestGoldScreenBansSpammers(t *testing.T) {
	votes, gold, truth := goldCorpus(60, 6, 3, 3, 0.92, 1)
	g := NewGoldScreen(gold, MajorityVote{})
	out, err := g.Combine(votes)
	if err != nil {
		t.Fatal(err)
	}
	// Spammers answered "yes" on the "no" golds → banned.
	banned := g.Banned()
	if len(banned) != 3 {
		t.Fatalf("banned = %v, want the 3 spammers", banned)
	}
	for _, w := range banned {
		if w[:4] != "spam" {
			t.Errorf("banned a good worker: %s", w)
		}
	}
	// Gold questions never appear in output.
	for q := range gold {
		if _, ok := out[q]; ok {
			t.Errorf("gold question %s leaked into results", q)
		}
	}
	// With spam removed, accuracy is near-perfect; without the screen,
	// always-yes spam flips the "no" answers (3 good at 0.92 vs 3 yes).
	correct := 0
	for q, want := range truth {
		if out[q].Value == want {
			correct++
		}
	}
	if correct < 57 {
		t.Errorf("screened accuracy = %d/60", correct)
	}
	raw, _ := MajorityVote{}.Combine(votes)
	rawCorrect := 0
	for q, want := range truth {
		if raw[q].Value == want {
			rawCorrect++
		}
	}
	if correct <= rawCorrect {
		t.Errorf("screen did not help: %d vs %d", correct, rawCorrect)
	}
}

func TestGoldScreenSparesGoodWorkers(t *testing.T) {
	votes, gold, _ := goldCorpus(40, 8, 5, 0, 0.9, 3)
	g := NewGoldScreen(gold, MajorityVote{})
	if _, err := g.Combine(votes); err != nil {
		t.Fatal(err)
	}
	if len(g.Banned()) != 0 {
		t.Errorf("banned good workers: %v", g.Banned())
	}
}

func TestGoldScreenMinVotesGrace(t *testing.T) {
	// A worker with fewer than MinGoldVotes gold answers is not judged,
	// even if those answers are wrong.
	votes := []Vote{
		{Question: "gold1", Worker: "newbie", Value: "yes"},
		{Question: "q1", Worker: "newbie", Value: "yes"},
		{Question: "q1", Worker: "vet", Value: "yes"},
	}
	g := NewGoldScreen(map[string]string{"gold1": "no"}, MajorityVote{})
	out, err := g.Combine(votes)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Banned()) != 0 {
		t.Errorf("banned under-sampled worker: %v", g.Banned())
	}
	if out["q1"].Votes != 2 {
		t.Errorf("newbie's real vote dropped: %+v", out["q1"])
	}
}

func TestGoldScreenValidation(t *testing.T) {
	g := NewGoldScreen(nil, MajorityVote{})
	if _, err := g.Combine([]Vote{{Question: "q", Worker: "w", Value: "yes"}}); err == nil {
		t.Error("empty gold set accepted")
	}
	if NewGoldScreen(map[string]string{"g": "yes"}, nil).Name() != "GoldScreen" {
		t.Error("name wrong")
	}
}
