package combine

import (
	"fmt"
	"sort"
)

// GoldScreen wraps a combiner with gold-standard screening, the
// CrowdFlower-style quality mechanism the paper's related work describes
// (§7: "require gold standard data with which to test worker quality,
// and ban workers who perform poorly on the gold standard").
//
// Gold questions are planted among real ones; a worker whose accuracy on
// the gold set falls below MinAccuracy has all their votes discarded
// before the inner combiner runs.
type GoldScreen struct {
	// Gold maps planted question IDs to their known answers.
	Gold map[string]string
	// MinAccuracy is the ban threshold (default 0.6).
	MinAccuracy float64
	// MinGoldVotes is how many gold answers a worker must have before
	// they can be judged (default 3); workers with fewer pass through.
	MinGoldVotes int
	// Inner resolves the surviving votes (default MajorityVote).
	Inner Combiner

	banned []string
}

// NewGoldScreen builds a screen over gold answers.
func NewGoldScreen(gold map[string]string, inner Combiner) *GoldScreen {
	return &GoldScreen{Gold: gold, Inner: inner}
}

// Name implements Combiner.
func (g *GoldScreen) Name() string { return "GoldScreen" }

// Banned lists workers dropped in the last Combine call, sorted.
func (g *GoldScreen) Banned() []string {
	out := make([]string, len(g.banned))
	copy(out, g.banned)
	return out
}

// Combine implements Combiner: score workers on gold questions, drop
// failing workers' votes everywhere, strip the gold questions from the
// output, and delegate the rest.
func (g *GoldScreen) Combine(votes []Vote) (map[string]Decision, error) {
	if len(g.Gold) == 0 {
		return nil, fmt.Errorf("combine: gold screen has no gold questions")
	}
	minAcc := g.MinAccuracy
	if minAcc == 0 {
		minAcc = 0.6
	}
	minVotes := g.MinGoldVotes
	if minVotes == 0 {
		minVotes = 3
	}
	inner := g.Inner
	if inner == nil {
		inner = MajorityVote{}
	}

	type score struct{ right, total int }
	perWorker := map[string]*score{}
	for _, v := range votes {
		want, isGold := g.Gold[v.Question]
		if !isGold {
			continue
		}
		s := perWorker[v.Worker]
		if s == nil {
			s = &score{}
			perWorker[v.Worker] = s
		}
		s.total++
		if v.Value == want {
			s.right++
		}
	}
	bannedSet := map[string]bool{}
	for w, s := range perWorker {
		if s.total >= minVotes && float64(s.right)/float64(s.total) < minAcc {
			bannedSet[w] = true
		}
	}
	g.banned = g.banned[:0]
	for w := range bannedSet {
		g.banned = append(g.banned, w)
	}
	sort.Strings(g.banned)

	kept := make([]Vote, 0, len(votes))
	for _, v := range votes {
		if bannedSet[v.Worker] {
			continue
		}
		if _, isGold := g.Gold[v.Question]; isGold {
			continue
		}
		kept = append(kept, v)
	}
	return inner.Combine(kept)
}

// CloneCombiner implements Cloner: the gold answer key is read-only and
// shared; the mutable ban list and the inner combiner are fresh.
func (g *GoldScreen) CloneCombiner() Combiner {
	inner := g.Inner
	if c, ok := inner.(Cloner); ok {
		inner = c.CloneCombiner()
	}
	return &GoldScreen{Gold: g.Gold, MinAccuracy: g.MinAccuracy, MinGoldVotes: g.MinGoldVotes, Inner: inner}
}
