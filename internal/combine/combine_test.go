package combine

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestMajorityVoteBasic(t *testing.T) {
	votes := []Vote{
		{Question: "q1", Worker: "w1", Value: "yes"},
		{Question: "q1", Worker: "w2", Value: "yes"},
		{Question: "q1", Worker: "w3", Value: "no"},
		{Question: "q2", Worker: "w1", Value: "no"},
	}
	out, err := MajorityVote{}.Combine(votes)
	if err != nil {
		t.Fatal(err)
	}
	if out["q1"].Value != "yes" || out["q1"].Votes != 3 {
		t.Errorf("q1 = %+v", out["q1"])
	}
	if c := out["q1"].Confidence; c < 0.66 || c > 0.67 {
		t.Errorf("q1 confidence = %v", c)
	}
	if out["q2"].Value != "no" || out["q2"].Confidence != 1 {
		t.Errorf("q2 = %+v", out["q2"])
	}
}

func TestMajorityVoteTieBreaksDeterministically(t *testing.T) {
	votes := []Vote{
		{Question: "q", Worker: "w1", Value: "zebra"},
		{Question: "q", Worker: "w2", Value: "ant"},
	}
	for i := 0; i < 10; i++ {
		out, _ := MajorityVote{}.Combine(votes)
		if out["q"].Value != "ant" {
			t.Fatalf("tie broke to %q, want lexicographic 'ant'", out["q"].Value)
		}
	}
}

func TestMajorityVoteEmpty(t *testing.T) {
	out, err := MajorityVote{}.Combine(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty combine = %v, %v", out, err)
	}
}

func TestWeightedMajority(t *testing.T) {
	if !WeightedMajority(3, 2, 1) {
		t.Error("3-2 should pass")
	}
	if WeightedMajority(2, 3, 1) {
		t.Error("2-3 should fail")
	}
	// A 2x yes weight flips a 2-3 split.
	if !WeightedMajority(2, 3, 2) {
		t.Error("2-3 with 2x weight should pass")
	}
	if WeightedMajority(2, 2, 1) {
		t.Error("exact tie should fail (strict majority)")
	}
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"MajorityVote", "majority_vote", "", "QualityAdjust", "quality-adjust"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Error("bogus combiner accepted")
	}
}

// synthVotes builds a vote corpus: nGood accurate workers (accuracy acc),
// nSpam spammers answering uniformly at random, over nQ binary questions
// whose truth alternates yes/no.
func synthVotes(nQ, nGood, nSpam int, acc float64, seed int64) (votes []Vote, truth map[string]string) {
	rng := rand.New(rand.NewSource(seed))
	truth = make(map[string]string, nQ)
	for q := 0; q < nQ; q++ {
		qid := fmt.Sprintf("q%03d", q)
		want := "yes"
		if q%2 == 1 {
			want = "no"
		}
		truth[qid] = want
		for w := 0; w < nGood; w++ {
			v := want
			if rng.Float64() > acc {
				v = flip(want)
			}
			votes = append(votes, Vote{Question: qid, Worker: fmt.Sprintf("good%d", w), Value: v})
		}
		for w := 0; w < nSpam; w++ {
			v := "yes"
			if rng.Float64() < 0.5 {
				v = "no"
			}
			votes = append(votes, Vote{Question: qid, Worker: fmt.Sprintf("spam%d", w), Value: v})
		}
	}
	return votes, truth
}

func accuracy(out map[string]Decision, truth map[string]string) float64 {
	correct := 0
	for q, want := range truth {
		if out[q].Value == want {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}

func TestQualityAdjustBeatsMajorityUnderSpam(t *testing.T) {
	// 3 good workers vs 4 spammers: majority vote is vulnerable, QA
	// should recover the truth by discounting spammers — the paper's
	// §3.3.2/§6 finding.
	votes, truth := synthVotes(80, 3, 4, 0.95, 42)
	mv, err := MajorityVote{}.Combine(votes)
	if err != nil {
		t.Fatal(err)
	}
	qa := NewQualityAdjust(QAConfig{Iterations: 5, Smoothing: 0.01})
	qad, err := qa.Combine(votes)
	if err != nil {
		t.Fatal(err)
	}
	mvAcc, qaAcc := accuracy(mv, truth), accuracy(qad, truth)
	if qaAcc < mvAcc {
		t.Errorf("QA accuracy %.3f < MV accuracy %.3f", qaAcc, mvAcc)
	}
	if qaAcc < 0.95 {
		t.Errorf("QA accuracy %.3f, want ≥0.95", qaAcc)
	}
}

func TestQualityAdjustIdentifiesSpammers(t *testing.T) {
	votes, _ := synthVotes(100, 4, 3, 0.95, 7)
	qa := NewQualityAdjust(QAConfig{Iterations: 5, Smoothing: 0.01})
	if _, err := qa.Combine(votes); err != nil {
		t.Fatal(err)
	}
	quality := qa.WorkerQuality()
	for w, q := range quality {
		if w[:4] == "good" && q < 0.5 {
			t.Errorf("good worker %s scored %.3f, want high", w, q)
		}
		if w[:4] == "spam" && q > 0.4 {
			t.Errorf("spammer %s scored %.3f, want low", w, q)
		}
	}
}

func TestQualityAdjustCorrectsBias(t *testing.T) {
	// A biased worker who systematically inverts answers still carries
	// information; Dawid-Skene flips their votes and uses them as
	// signal (Ipeirotis' bias correction), while majority vote treats
	// them as pure noise. Majority of workers must be good so EM's
	// majority-vote initialization anchors the truth-aligned mode.
	rng := rand.New(rand.NewSource(9))
	var votes []Vote
	truth := map[string]string{}
	for q := 0; q < 150; q++ {
		qid := fmt.Sprintf("q%03d", q)
		want := "yes"
		if rng.Float64() < 0.5 {
			want = "no"
		}
		truth[qid] = want
		// Three good-but-noisy workers (accuracy 0.9).
		for w := 0; w < 3; w++ {
			v := want
			if rng.Float64() > 0.9 {
				v = flip(want)
			}
			votes = append(votes, Vote{Question: qid, Worker: fmt.Sprintf("good%d", w), Value: v})
		}
		// Two perfectly anti-correlated workers.
		for w := 0; w < 2; w++ {
			votes = append(votes, Vote{Question: qid, Worker: fmt.Sprintf("anti%d", w), Value: flip(want)})
		}
	}
	mv, _ := MajorityVote{}.Combine(votes)
	qa := NewQualityAdjust(QAConfig{Iterations: 10, Smoothing: 0.01})
	qad, err := qa.Combine(votes)
	if err != nil {
		t.Fatal(err)
	}
	mvAcc, qaAcc := accuracy(mv, truth), accuracy(qad, truth)
	// MV needs all three good workers right (the two anti votes always
	// oppose): expected accuracy ≈ 0.9³ ≈ 0.73.
	if mvAcc > 0.85 {
		t.Fatalf("test setup broken: MV accuracy %.3f should be dragged down by bias", mvAcc)
	}
	if qaAcc < 0.95 {
		t.Errorf("QA accuracy %.3f, want ≥0.95 (bias correction)", qaAcc)
	}
	// The anti-correlated workers are informative, not spammers: their
	// quality should be high once bias is modeled.
	quality := qa.WorkerQuality()
	for w, q := range quality {
		if w[:4] == "anti" && q < 0.5 {
			t.Errorf("biased worker %s scored %.3f; bias correction should rate them informative", w, q)
		}
	}
}

func flip(v string) string {
	if v == "yes" {
		return "no"
	}
	return "yes"
}

func TestQualityAdjustFalseNegativePenalty(t *testing.T) {
	// With a 2x false-negative cost, a 50/50 posterior should resolve
	// to "yes". Build a question with perfectly split votes from
	// workers with no history (so the posterior stays ~uniform).
	votes := []Vote{
		{Question: "q", Worker: "w1", Value: "yes"},
		{Question: "q", Worker: "w2", Value: "no"},
	}
	qa := NewQualityAdjust(DefaultQAConfig())
	out, err := qa.Combine(votes)
	if err != nil {
		t.Fatal(err)
	}
	if out["q"].Value != "yes" {
		t.Errorf("50/50 with FN penalty resolved to %q, want yes", out["q"].Value)
	}
}

func TestQualityAdjustUnanimousSingleLabel(t *testing.T) {
	votes := []Vote{
		{Question: "q1", Worker: "w1", Value: "yes"},
		{Question: "q1", Worker: "w2", Value: "yes"},
		{Question: "q2", Worker: "w1", Value: "yes"},
	}
	qa := NewQualityAdjust(DefaultQAConfig())
	out, err := qa.Combine(votes)
	if err != nil {
		t.Fatal(err)
	}
	if out["q1"].Value != "yes" || out["q2"].Value != "yes" {
		t.Errorf("unanimous = %+v", out)
	}
	if out["q1"].Confidence != 1 {
		t.Errorf("unanimous confidence = %v", out["q1"].Confidence)
	}
}

func TestQualityAdjustEmptyAndDefaults(t *testing.T) {
	qa := NewQualityAdjust(QAConfig{})
	out, err := qa.Combine(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty = %v, %v", out, err)
	}
	if qa.cfg.Iterations != 5 || qa.cfg.Smoothing <= 0 {
		t.Errorf("defaults not applied: %+v", qa.cfg)
	}
}

func TestCostOf(t *testing.T) {
	qa := NewQualityAdjust(DefaultQAConfig())
	if qa.CostOf("yes", "yes") != 0 || qa.CostOf("no", "no") != 0 {
		t.Error("diagonal cost should be 0")
	}
	if qa.CostOf("yes", "no") != 2 {
		t.Error("false negative should cost 2")
	}
	if qa.CostOf("no", "yes") != 1 {
		t.Error("false positive should cost 1")
	}
}

func TestCombineRatings(t *testing.T) {
	out := CombineRatings(map[string][]float64{
		"a": {4, 4, 4, 4, 4},
		"b": {1, 7},
		"c": {},
	})
	if out["a"].Mean != 4 || out["a"].Std != 0 || out["a"].Count != 5 {
		t.Errorf("a = %+v", out["a"])
	}
	if out["b"].Mean != 4 || out["b"].Std != 3 {
		t.Errorf("b = %+v", out["b"])
	}
	if _, ok := out["c"]; ok {
		t.Error("empty rating list should be skipped")
	}
}

func TestQualityAdjustMultiCategory(t *testing.T) {
	// Three hair colors; QA should work beyond binary labels.
	rng := rand.New(rand.NewSource(21))
	colors := []string{"black", "blond", "brown"}
	var votes []Vote
	truth := map[string]string{}
	for q := 0; q < 90; q++ {
		qid := fmt.Sprintf("q%03d", q)
		want := colors[q%3]
		truth[qid] = want
		for w := 0; w < 5; w++ {
			v := want
			if rng.Float64() > 0.8 {
				v = colors[rng.Intn(3)]
			}
			votes = append(votes, Vote{Question: qid, Worker: fmt.Sprintf("w%d", w), Value: v})
		}
	}
	qa := NewQualityAdjust(QAConfig{Iterations: 5, Smoothing: 0.01})
	out, err := qa.Combine(votes)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(out, truth); acc < 0.9 {
		t.Errorf("multi-category accuracy = %.3f, want ≥0.9", acc)
	}
}
