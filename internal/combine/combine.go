// Package combine merges multiple worker responses to the same question
// into one answer (paper §2.1, §3.3.2). It provides the paper's two
// categorical combiners — MajorityVote and QualityAdjust (the Ipeirotis
// et al. EM algorithm over Dawid & Skene worker confusion matrices, with
// asymmetric misclassification costs) — plus mean/median combiners for
// ratings.
package combine

import (
	"fmt"
)

// Vote is one worker's categorical response to one question.
type Vote struct {
	// Question identifies the question being answered.
	Question string
	// Worker identifies the responder; QualityAdjust models per-worker
	// confusion, so worker identity matters.
	Worker string
	// Value is the categorical response (already normalized).
	Value string
}

// Decision is the combined answer for one question.
type Decision struct {
	// Value is the chosen category.
	Value string
	// Confidence is the combiner's posterior/empirical support for the
	// chosen value in [0,1].
	Confidence float64
	// Votes is the number of votes considered.
	Votes int
}

// Combiner merges categorical votes, producing one decision per question.
type Combiner interface {
	// Combine groups votes by question and resolves each.
	Combine(votes []Vote) (map[string]Decision, error)
	// Name returns the registry name ("MajorityVote", "QualityAdjust").
	Name() string
}

// Cloner is implemented by combiners that can mint an independent
// instance for use by a concurrent consumer. Stateful combiners
// (QualityAdjust, GoldScreen) mutate per-Combine state, so operators
// that overlap phases clone them instead of sharing one instance.
type Cloner interface {
	// CloneCombiner returns a combiner with the same configuration and
	// no shared mutable state.
	CloneCombiner() Combiner
}

// PerQuestion marks combiners whose decision for a question depends
// only on that question's own votes. Streaming operators may hand such
// combiners votes one HIT at a time and merge the partial decision maps
// — the result is identical to one Combine call over all votes.
// MajorityVote qualifies; QualityAdjust (EM over the full vote matrix)
// and GoldScreen (ban state spans questions) do not, so operators using
// them must buffer every vote and combine once at end of stream.
type PerQuestion interface {
	// CombinesPerQuestion is a marker method.
	CombinesPerQuestion()
}

// IsPerQuestion reports whether c may be applied incrementally, one
// disjoint vote subset at a time.
func IsPerQuestion(c Combiner) bool {
	_, ok := c.(PerQuestion)
	return ok
}

// groupByQuestion buckets votes preserving insertion order of questions.
func groupByQuestion(votes []Vote) (order []string, byQ map[string][]Vote) {
	byQ = make(map[string][]Vote)
	for _, v := range votes {
		if _, ok := byQ[v.Question]; !ok {
			order = append(order, v.Question)
		}
		byQ[v.Question] = append(byQ[v.Question], v)
	}
	return order, byQ
}

// MajorityVote returns the most popular answer per question (paper §2.1).
// Ties break lexicographically smallest-first for determinism.
type MajorityVote struct{}

// CloneCombiner implements Cloner (MajorityVote is stateless).
func (MajorityVote) CloneCombiner() Combiner { return MajorityVote{} }

// CombinesPerQuestion implements PerQuestion: each question's majority
// is computed from that question's votes alone.
func (MajorityVote) CombinesPerQuestion() {}

// Name implements Combiner.
func (MajorityVote) Name() string { return "MajorityVote" }

// Combine implements Combiner.
func (MajorityVote) Combine(votes []Vote) (map[string]Decision, error) {
	if len(votes) == 0 {
		return map[string]Decision{}, nil
	}
	// Streaming operators decide one question per call (a slot's own
	// vote run); skip the grouping map on that shape.
	single := true
	for i := 1; i < len(votes); i++ {
		if votes[i].Question != votes[0].Question {
			single = false
			break
		}
	}
	if single {
		return map[string]Decision{votes[0].Question: majorityDecision(votes)}, nil
	}
	_, byQ := groupByQuestion(votes)
	out := make(map[string]Decision, len(byQ))
	for q, vs := range byQ {
		out[q] = majorityDecision(vs)
	}
	return out, nil
}

// majorityDecision resolves one question's votes: most popular value,
// lexicographically smallest on ties. Typical runs are one HIT's worth
// of assignments, so values count in fixed arrays; runs with more
// distinct values than the arrays hold fall back to a map.
func majorityDecision(vs []Vote) Decision {
	var vals [8]string
	var counts [8]int
	n := 0
	for _, v := range vs {
		found := false
		for i := 0; i < n; i++ {
			if vals[i] == v.Value {
				counts[i]++
				found = true
				break
			}
		}
		if found {
			continue
		}
		if n == len(vals) {
			return majorityDecisionMap(vs)
		}
		vals[n], counts[n] = v.Value, 1
		n++
	}
	best, bestN := "", -1
	for i := 0; i < n; i++ {
		if counts[i] > bestN || (counts[i] == bestN && vals[i] < best) {
			best, bestN = vals[i], counts[i]
		}
	}
	return Decision{Value: best, Confidence: float64(bestN) / float64(len(vs)), Votes: len(vs)}
}

func majorityDecisionMap(vs []Vote) Decision {
	counts := map[string]int{}
	for _, v := range vs {
		counts[v.Value]++
	}
	best, bestN := "", -1
	for val, c := range counts {
		if c > bestN || (c == bestN && val < best) {
			best, bestN = val, c
		}
	}
	return Decision{Value: best, Confidence: float64(bestN) / float64(len(vs)), Votes: len(vs)}
}

// BoolVote maps a boolean answer onto the categorical yes/no vote
// vocabulary the combiners above consume. Shared by the operators so
// the mapping cannot drift between execution paths that feed the same
// task cache.
func BoolVote(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// WeightedMajority resolves a yes/no question with asymmetric vote
// weights; the paper's join identification "if the number of positive
// votes outweighs the negative votes" is the w=1 case.
func WeightedMajority(yes, no int, yesWeight float64) bool {
	return float64(yes)*yesWeight > float64(no)
}

// Registry resolves combiner names from task definitions.
func Lookup(name string) (Combiner, error) {
	switch normalizeName(name) {
	case "", "majorityvote":
		return MajorityVote{}, nil
	case "qualityadjust":
		return NewQualityAdjust(DefaultQAConfig()), nil
	default:
		return nil, fmt.Errorf("combine: unknown combiner %q", name)
	}
}

func normalizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '_' || r == '-' || r == ' ' {
			continue
		}
		if 'A' <= r && r <= 'Z' {
			r += 'a' - 'A'
		}
		out = append(out, r)
	}
	return string(out)
}
