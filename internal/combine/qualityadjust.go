package combine

import (
	"fmt"
	"math"
	"sort"
)

// QualityAdjust implements the quality-management algorithm of Ipeirotis,
// Provost & Wang (HCOMP 2010), which the paper uses as its second
// combiner (§2.1, §3.3.2): an expectation-maximization loop in the style
// of Dawid & Skene (1979) that
//
//  1. estimates a confusion matrix per worker (how often worker w says
//     label l when the truth is j), which "identifies spammers and
//     worker bias",
//  2. re-estimates per-question posteriors from those matrices, and
//  3. repeats (the paper runs five iterations).
//
// Decisions then minimize expected misclassification cost; the paper
// "penalize[s] false negatives twice as heavily as false positives",
// which CostOf encodes.
type QualityAdjust struct {
	cfg QAConfig
	// workerQuality is populated by Combine: 0 = perfect spammer,
	// 1 = perfect worker (Ipeirotis' expected-cost-based quality).
	workerQuality map[string]float64
}

// QAConfig parametrizes the EM loop.
type QAConfig struct {
	// Iterations is the number of EM rounds (paper: 5).
	Iterations int
	// Smoothing is Laplace smoothing added to confusion-matrix counts
	// so unseen (worker, label) cells keep non-zero probability.
	Smoothing float64
	// Costs maps truth→answer misclassification cost. Missing entries
	// cost 1 off-diagonal and 0 on-diagonal. The paper's join runs set
	// Costs[{"yes","no"}] = 2 (a false negative costs double).
	Costs map[[2]string]float64
}

// DefaultQAConfig returns the paper's parametrization: 5 iterations and a
// 2× false-negative penalty for yes/no questions.
func DefaultQAConfig() QAConfig {
	return QAConfig{
		Iterations: 5,
		Smoothing:  0.01,
		Costs:      map[[2]string]float64{{"yes", "no"}: 2},
	}
}

// NewQualityAdjust builds the combiner.
func NewQualityAdjust(cfg QAConfig) *QualityAdjust {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 5
	}
	if cfg.Smoothing <= 0 {
		cfg.Smoothing = 0.01
	}
	return &QualityAdjust{cfg: cfg}
}

// Name implements Combiner.
func (qa *QualityAdjust) Name() string { return "QualityAdjust" }

// CostOf returns the configured cost of answering `answer` when the truth
// is `truth`.
func (qa *QualityAdjust) CostOf(truth, answer string) float64 {
	if truth == answer {
		if c, ok := qa.cfg.Costs[[2]string{truth, answer}]; ok {
			return c
		}
		return 0
	}
	if c, ok := qa.cfg.Costs[[2]string{truth, answer}]; ok {
		return c
	}
	return 1
}

// WorkerQuality returns per-worker quality scores from the most recent
// Combine call: 1 − normalized expected cost, so spammers score ≈ 0.
// The paper uses these to "effectively eliminate and identify workers who
// generate spam answers" (§6).
func (qa *QualityAdjust) WorkerQuality() map[string]float64 {
	out := make(map[string]float64, len(qa.workerQuality))
	for w, q := range qa.workerQuality {
		out[w] = q
	}
	return out
}

// Combine implements Combiner via EM.
func (qa *QualityAdjust) Combine(votes []Vote) (map[string]Decision, error) {
	if len(votes) == 0 {
		return map[string]Decision{}, nil
	}
	// --- Index questions, workers, labels.
	qOrder, byQ := groupByQuestion(votes)
	labelSet := map[string]bool{}
	workerSet := map[string]bool{}
	for _, v := range votes {
		labelSet[v.Value] = true
		workerSet[v.Worker] = true
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	if len(labels) == 1 {
		// Unanimous single label across all questions: nothing to learn.
		out := make(map[string]Decision, len(byQ))
		for q, vs := range byQ {
			out[q] = Decision{Value: labels[0], Confidence: 1, Votes: len(vs)}
		}
		qa.workerQuality = map[string]float64{}
		for w := range workerSet {
			qa.workerQuality[w] = 1
		}
		return out, nil
	}
	lIdx := make(map[string]int, len(labels))
	for i, l := range labels {
		lIdx[l] = i
	}
	workers := make([]string, 0, len(workerSet))
	for w := range workerSet {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	wIdx := make(map[string]int, len(workers))
	for i, w := range workers {
		wIdx[w] = i
	}
	L, W, Q := len(labels), len(workers), len(qOrder)

	// votesByQ[q] = list of (worker, label) index pairs.
	type wl struct{ w, l int }
	votesByQ := make([][]wl, Q)
	for qi, q := range qOrder {
		for _, v := range byQ[q] {
			votesByQ[qi] = append(votesByQ[qi], wl{wIdx[v.Worker], lIdx[v.Value]})
		}
	}

	// --- Initialize posteriors with (soft) majority vote.
	post := make([][]float64, Q)
	for qi := range post {
		post[qi] = make([]float64, L)
		for _, v := range votesByQ[qi] {
			post[qi][v.l]++
		}
		normalize(post[qi])
	}

	conf := make([][][]float64, W) // conf[w][truth][answer]
	prior := make([]float64, L)

	for iter := 0; iter < qa.cfg.Iterations; iter++ {
		// --- M-step: class priors and worker confusion matrices from
		// current posteriors.
		for j := range prior {
			prior[j] = qa.cfg.Smoothing
		}
		for qi := range post {
			for j, p := range post[qi] {
				prior[j] += p
			}
		}
		normalize(prior)

		for w := range conf {
			conf[w] = make([][]float64, L)
			for j := range conf[w] {
				conf[w][j] = make([]float64, L)
				for l := range conf[w][j] {
					conf[w][j][l] = qa.cfg.Smoothing
				}
			}
		}
		for qi := range votesByQ {
			for _, v := range votesByQ[qi] {
				for j := 0; j < L; j++ {
					conf[v.w][j][v.l] += post[qi][j]
				}
			}
		}
		for w := range conf {
			for j := range conf[w] {
				normalize(conf[w][j])
			}
		}

		// --- E-step: posteriors from priors and confusion matrices,
		// in log space for stability.
		for qi := range post {
			logp := make([]float64, L)
			for j := 0; j < L; j++ {
				logp[j] = math.Log(prior[j])
				for _, v := range votesByQ[qi] {
					logp[j] += math.Log(conf[v.w][j][v.l])
				}
			}
			softmaxInto(post[qi], logp)
		}
	}

	// --- Decisions: minimize expected cost under the posterior.
	out := make(map[string]Decision, Q)
	for qi, q := range qOrder {
		bestL, bestCost := 0, math.Inf(1)
		for l := 0; l < L; l++ {
			var cost float64
			for j := 0; j < L; j++ {
				cost += post[qi][j] * qa.CostOf(labels[j], labels[l])
			}
			if cost < bestCost || (cost == bestCost && labels[l] < labels[bestL]) {
				bestL, bestCost = l, cost
			}
		}
		out[q] = Decision{
			Value:      labels[bestL],
			Confidence: post[qi][bestL],
			Votes:      len(votesByQ[qi]),
		}
	}

	// --- Worker quality: 1 − normalized expected cost of the worker's
	// "soft label" for each answer they give (Ipeirotis §3.2). A worker
	// whose answers carry no information about the truth has quality 0.
	qa.workerQuality = make(map[string]float64, W)
	// Expected cost of a random spammer who answers with the prior.
	spamCost := 0.0
	for j := 0; j < L; j++ {
		for l := 0; l < L; l++ {
			spamCost += prior[j] * prior[l] * qa.CostOf(labels[j], labels[l])
		}
	}
	for w := 0; w < W; w++ {
		// P(answer=l) under priors, and soft posterior P(truth=j | w says l).
		var expCost float64
		for l := 0; l < L; l++ {
			var pAnswer float64
			softPost := make([]float64, L)
			for j := 0; j < L; j++ {
				softPost[j] = prior[j] * conf[w][j][l]
				pAnswer += softPost[j]
			}
			if pAnswer == 0 {
				continue
			}
			for j := range softPost {
				softPost[j] /= pAnswer
			}
			// Cost of the minimum-cost decision given this soft label.
			best := math.Inf(1)
			for d := 0; d < L; d++ {
				var c float64
				for j := 0; j < L; j++ {
					c += softPost[j] * qa.CostOf(labels[j], labels[d])
				}
				if c < best {
					best = c
				}
			}
			expCost += pAnswer * best
		}
		if spamCost <= 0 {
			qa.workerQuality[workers[w]] = 1
			continue
		}
		quality := 1 - expCost/spamCost
		if quality < 0 {
			quality = 0
		}
		qa.workerQuality[workers[w]] = quality
	}
	return out, nil
}

func normalize(xs []float64) {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		for i := range xs {
			xs[i] = 1 / float64(len(xs))
		}
		return
	}
	for i := range xs {
		xs[i] /= sum
	}
}

func softmaxInto(dst, logp []float64) {
	maxv := math.Inf(-1)
	for _, v := range logp {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logp {
		dst[i] = math.Exp(v - maxv)
		sum += dst[i]
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// Ratings --------------------------------------------------------------

// RatingSummary is the combined result of numeric ratings for one item:
// the mean drives the Rate sort order; the standard deviation drives the
// hybrid algorithm's confidence windows (paper §4.1.3).
type RatingSummary struct {
	Mean  float64
	Std   float64
	Count int
}

// CombineRatings averages numeric ratings per question.
func CombineRatings(ratings map[string][]float64) map[string]RatingSummary {
	out := make(map[string]RatingSummary, len(ratings))
	for q, rs := range ratings {
		if len(rs) == 0 {
			continue
		}
		var sum float64
		for _, r := range rs {
			sum += r
		}
		mean := sum / float64(len(rs))
		var ss float64
		for _, r := range rs {
			d := r - mean
			ss += d * d
		}
		std := 0.0
		if len(rs) > 1 {
			std = math.Sqrt(ss / float64(len(rs)))
		}
		out[q] = RatingSummary{Mean: mean, Std: std, Count: len(rs)}
	}
	return out
}

// ErrNoVotes reports combination over an empty vote set for a question
// that was expected to have answers.
var ErrNoVotes = fmt.Errorf("combine: no votes")

// CloneCombiner implements Cloner: a fresh EM combiner with the same
// configuration and its own worker-quality state.
func (qa *QualityAdjust) CloneCombiner() Combiner { return NewQualityAdjust(qa.cfg) }
