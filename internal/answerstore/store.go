// Package answerstore generalizes the per-run task cache
// (internal/hit.Cache) into a persistent, concurrency-safe, cross-query
// answer store: crowd votes for a question keyed by normalized content
// (task, kind, tuple content via Question.CacheKey) outlive the query
// that paid for them, so an identical question asked later — by the same
// tenant or a different one — is served from the store instead of being
// re-posted to the marketplace.
//
// This is the service-layer half of the paper's §2.6 task cache: within
// one run the executor already dedups identical questions; across runs
// crowd labor is the scarce resource, and dedup across traffic is what
// makes the unit economics of a shared query service work.
//
// Persistence uses the same append-only CRC-framed record file as
// internal/wal (8-byte header: little-endian uint32 payload length +
// uint32 CRC-32/IEEE of the payload, then a JSON payload), including
// torn-tail truncation on open, so a crash mid-append loses at most the
// record being written. The framing is re-implemented here rather than
// imported: the store sits below the executor and must not depend on
// the journal package.
package answerstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"qurk/internal/hit"
)

// Policy gates which stored entries may be served.
type Policy struct {
	// MinAgreement is the minimum number of stored votes an entry needs
	// before Lookup will serve it. Entries below the floor stay stored
	// (a later run may add votes) but read as misses. Zero means any
	// non-empty entry qualifies.
	MinAgreement int
	// MaxAge is how long an entry stays servable after it was stored.
	// Zero means entries never go stale. Stale entries read as misses
	// and are overwritten by the next Store for the same key.
	MaxAge time.Duration
}

// entry is one stored question's votes plus its freshness timestamp.
type entry struct {
	answers  []hit.CachedAnswer
	storedAt time.Time
}

// record is the on-disk JSON payload for one Store call.
type record struct {
	Key      uint64             `json:"key"`
	Task     string             `json:"task"`
	Kind     uint8              `json:"kind"`
	StoredAt time.Time          `json:"stored_at"`
	Answers  []hit.CachedAnswer `json:"answers"`
}

// Stats is a snapshot of store traffic since open.
type Stats struct {
	// Entries is the number of distinct questions currently held.
	Entries int `json:"entries"`
	// Hits counts Lookups served from the store.
	Hits int `json:"hits"`
	// Misses counts Lookups that found nothing servable.
	Misses int `json:"misses"`
	// Stored counts Store calls accepted since open.
	Stored int `json:"stored"`
	// Loaded counts entries replayed from the file at open.
	Loaded int `json:"loaded"`
}

// Store is a cross-query answer store. It satisfies core.AnswerStore, so
// plugging it into an Engine's Answers slot routes every crowd operator's
// question minting through it. All methods are safe for concurrent use
// by any number of queries.
type Store struct {
	mu      sync.Mutex
	entries map[uint64]entry
	pol     Policy
	file    *os.File
	stats   Stats
	now     func() time.Time
}

// frame header: payload length + CRC-32/IEEE of the payload.
const headerSize = 8

// Open opens (creating if needed) the store backed by the record file at
// path, replaying existing records into memory and truncating a torn
// tail left by a crash. An empty path yields a memory-only store that
// lives as long as the process — useful for tests and single-run CLIs.
func Open(path string, pol Policy) (*Store, error) {
	s := &Store{
		entries: make(map[uint64]entry),
		pol:     pol,
		now:     time.Now,
	}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("answerstore: open %s: %w", path, err)
	}
	good, err := s.replay(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate a torn tail so the next append starts on a clean frame.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("answerstore: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("answerstore: seek %s: %w", path, err)
	}
	s.file = f
	return s, nil
}

// replay reads frames from the start of f, loading each valid record and
// returning the offset just past the last valid frame. Corruption — a
// short header, an impossible length, a CRC mismatch, or undecodable
// JSON — ends the replay at the preceding frame boundary (torn-tail
// semantics, same as internal/wal).
func (s *Store) replay(f *os.File) (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("answerstore: stat: %w", err)
	}
	size := info.Size()
	var off int64
	hdr := make([]byte, headerSize)
	for off+headerSize <= size {
		if _, err := f.ReadAt(hdr, off); err != nil {
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		end := off + headerSize + int64(length)
		if end > size {
			break // torn payload
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+headerSize); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		s.entries[rec.Key] = entry{answers: rec.Answers, storedAt: rec.StoredAt}
		s.stats.Loaded++
		off = end
	}
	s.stats.Entries = len(s.entries)
	return off, nil
}

// servable reports whether e passes the policy gates at time now.
func (s *Store) servable(e entry, now time.Time) bool {
	if len(e.answers) == 0 {
		return false
	}
	if s.pol.MinAgreement > 0 && len(e.answers) < s.pol.MinAgreement {
		return false
	}
	if s.pol.MaxAge > 0 && now.Sub(e.storedAt) > s.pol.MaxAge {
		return false
	}
	return true
}

// Lookup returns the stored votes for a question if a servable entry
// exists under the policy (enough votes, fresh enough). The returned
// slice is shared — callers must not mutate it.
func (s *Store) Lookup(q *hit.Question) ([]hit.CachedAnswer, bool) {
	key := q.CacheKey()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if ok && s.servable(e, s.now()) {
		s.stats.Hits++
		return e.answers, true
	}
	s.stats.Misses++
	return nil, false
}

// Store records votes for a question, replacing any prior entry, and
// appends the record to the backing file (fsynced before return, so a
// served answer is never lost to a crash). Empty vote sets are ignored:
// a question whose assignments all expired must not poison the store.
func (s *Store) Store(q *hit.Question, answers []hit.CachedAnswer) {
	if len(answers) == 0 {
		return
	}
	cp := make([]hit.CachedAnswer, len(answers))
	copy(cp, answers)
	key := q.CacheKey()
	s.mu.Lock()
	defer s.mu.Unlock()
	at := s.now()
	s.entries[key] = entry{answers: cp, storedAt: at}
	s.stats.Stored++
	s.stats.Entries = len(s.entries)
	if s.file == nil {
		return
	}
	s.append(record{Key: key, Task: q.Task, Kind: uint8(q.Kind), StoredAt: at, Answers: cp})
}

// append frames and writes one record. Write errors are swallowed after
// marking the file dead: the in-memory store keeps serving (losing
// persistence is strictly better than failing queries mid-run).
func (s *Store) append(rec record) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	if _, err := s.file.Write(buf); err != nil {
		s.file.Close()
		s.file = nil
		return
	}
	if err := s.file.Sync(); err != nil {
		s.file.Close()
		s.file = nil
	}
}

// Stats returns a snapshot of store traffic.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	return st
}

// Len returns the number of distinct questions held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Close releases the backing file. The in-memory map stays readable;
// subsequent Stores simply stop persisting.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}

// setClock overrides the freshness clock; tests use it to exercise
// MaxAge without sleeping.
func (s *Store) setClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}
