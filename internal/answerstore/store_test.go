package answerstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"qurk/internal/hit"
	"qurk/internal/relation"
)

func question(task, img string) *hit.Question {
	sch := relation.MustSchema(relation.Column{Name: "img", Kind: relation.KindText})
	return &hit.Question{
		ID:    "q/" + img,
		Kind:  hit.FilterQ,
		Task:  task,
		Tuple: relation.MustTuple(sch, relation.Text(img)),
	}
}

func votes(n int, yes bool) []hit.CachedAnswer {
	as := make([]hit.CachedAnswer, n)
	for i := range as {
		as[i] = hit.CachedAnswer{
			WorkerID: string(rune('a' + i)),
			Answer:   hit.Answer{Bool: yes},
		}
	}
	return as
}

func TestMemoryStoreRoundTrip(t *testing.T) {
	s, err := Open("", Policy{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	q := question("isFemale", "img1")
	if _, ok := s.Lookup(q); ok {
		t.Fatal("empty store should miss")
	}
	s.Store(q, votes(3, true))
	got, ok := s.Lookup(q)
	if !ok || len(got) != 3 {
		t.Fatalf("want 3 votes, got %v ok=%v", got, ok)
	}
	// Same content under a different question ID still hits.
	q2 := question("isFemale", "img1")
	q2.ID = "other/id"
	if _, ok := s.Lookup(q2); !ok {
		t.Fatal("content-keyed lookup should ignore question ID")
	}
	// Different content misses.
	if _, ok := s.Lookup(question("isFemale", "img2")); ok {
		t.Fatal("different tuple should miss")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 2 || st.Misses != 2 || st.Stored != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestEmptyVotesIgnored(t *testing.T) {
	s, _ := Open("", Policy{})
	q := question("t", "x")
	s.Store(q, nil)
	if _, ok := s.Lookup(q); ok {
		t.Fatal("empty vote set must not be stored")
	}
}

func TestMinAgreementPolicy(t *testing.T) {
	s, _ := Open("", Policy{MinAgreement: 3})
	q := question("t", "x")
	s.Store(q, votes(2, true))
	if _, ok := s.Lookup(q); ok {
		t.Fatal("2 votes below MinAgreement=3 must miss")
	}
	s.Store(q, votes(3, true))
	if _, ok := s.Lookup(q); !ok {
		t.Fatal("3 votes should hit")
	}
}

func TestMaxAgePolicy(t *testing.T) {
	s, _ := Open("", Policy{MaxAge: time.Hour})
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now := base
	s.setClock(func() time.Time { return now })

	q := question("t", "x")
	s.Store(q, votes(5, true))
	if _, ok := s.Lookup(q); !ok {
		t.Fatal("fresh entry should hit")
	}
	now = base.Add(2 * time.Hour)
	if _, ok := s.Lookup(q); ok {
		t.Fatal("stale entry should miss")
	}
	// Restoring overwrites the stale entry.
	s.Store(q, votes(5, false))
	if got, ok := s.Lookup(q); !ok || got[0].Answer.Bool {
		t.Fatal("restored entry should hit with new votes")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "answers.log")
	s, err := Open(path, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	s.Store(question("isFemale", "img1"), votes(5, true))
	s.Store(question("isFemale", "img2"), votes(5, false))
	s.Store(question("isFemale", "img1"), votes(4, false)) // replaces img1
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("want 2 entries after reopen, got %d", s2.Len())
	}
	got, ok := s2.Lookup(question("isFemale", "img1"))
	if !ok || len(got) != 4 || got[0].Answer.Bool {
		t.Fatalf("img1 should replay the replacement entry, got %v ok=%v", got, ok)
	}
	if st := s2.Stats(); st.Loaded != 3 {
		t.Fatalf("want 3 records loaded, got %+v", st)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "answers.log")
	s, _ := Open(path, Policy{})
	s.Store(question("t", "a"), votes(5, true))
	s.Store(question("t", "b"), votes(5, true))
	s.Close()

	// Simulate a crash mid-append: chop the last record in half, then
	// also try a corrupted CRC on the remaining tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := headerSize + int(binary.LittleEndian.Uint32(data[0:4]))
	torn := data[:firstLen+headerSize+2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("want 1 entry after torn-tail recovery, got %d", s2.Len())
	}
	if _, ok := s2.Lookup(question("t", "a")); !ok {
		t.Fatal("first record should survive")
	}
	// The torn bytes are gone: appending works and survives reopen.
	s2.Store(question("t", "c"), votes(5, true))
	s2.Close()
	s3, err := Open(path, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 {
		t.Fatalf("want 2 entries after re-append, got %d", s3.Len())
	}

	// CRC corruption ends replay at the same boundary.
	data, _ = os.ReadFile(path)
	data[firstLen+4] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s4, err := Open(path, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	defer s4.Close()
	if s4.Len() != 1 {
		t.Fatalf("want 1 entry after CRC corruption, got %d", s4.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "answers.log")
	s, err := Open(path, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	imgs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				img := imgs[(g+i)%len(imgs)]
				q := question("t", img)
				if _, ok := s.Lookup(q); !ok {
					s.Store(q, votes(5, true))
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != len(imgs) {
		t.Fatalf("want %d entries, got %d", len(imgs), s.Len())
	}
}

func TestCanonicalKeySharing(t *testing.T) {
	// Two queries projecting the same content under different column
	// order and alias qualifiers share one entry — the normalization fix
	// the cross-query store depends on.
	s, _ := Open("", Policy{})
	a := relation.MustSchema(
		relation.Column{Name: "c.name", Kind: relation.KindText},
		relation.Column{Name: "c.img", Kind: relation.KindText},
	)
	b := relation.MustSchema(
		relation.Column{Name: "img", Kind: relation.KindText},
		relation.Column{Name: "name", Kind: relation.KindText},
	)
	qa := &hit.Question{ID: "a", Kind: hit.FilterQ, Task: "t",
		Tuple: relation.MustTuple(a, relation.Text("alice"), relation.Text("alice.jpg"))}
	qb := &hit.Question{ID: "b", Kind: hit.FilterQ, Task: "t",
		Tuple: relation.MustTuple(b, relation.Text("alice.jpg"), relation.Text("alice"))}
	s.Store(qa, votes(5, true))
	if _, ok := s.Lookup(qb); !ok {
		t.Fatal("reordered/qualified projection of identical content should hit")
	}
}
