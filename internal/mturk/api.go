package mturk

// Wire types for the MTurkRequesterServiceV20170117 aws-json protocol:
// one POST per operation, Content-Type application/x-amz-json-1.1, the
// operation named by the X-Amz-Target header. Only the fields this
// client (and the in-process fake) exchange are modeled; timestamps
// travel as epoch seconds, the protocol's JSON encoding for them.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// targetPrefix is the X-Amz-Target service prefix shared by every
// operation.
const targetPrefix = "MTurkRequesterServiceV20170117."

// Operation names the client issues (and the fake serves).
const (
	opCreateHIT              = "CreateHIT"
	opGetHIT                 = "GetHIT"
	opListAssignmentsForHIT  = "ListAssignmentsForHIT"
	opApproveAssignment      = "ApproveAssignment"
	opUpdateExpirationForHIT = "UpdateExpirationForHIT"
	opGetAccountBalance      = "GetAccountBalance"
	opSendBonus              = "SendBonus"
	opCreateWorkerBlock      = "CreateWorkerBlock"
	opDeleteWorkerBlock      = "DeleteWorkerBlock"
)

// contentTypeAWSJSON is the aws-json protocol content type.
const contentTypeAWSJSON = "application/x-amz-json-1.1"

// Assignment status values the client filters on.
const (
	assignmentStatusSubmitted = "Submitted"
	assignmentStatusApproved  = "Approved"
)

// epoch is a timestamp serialized as (fractional) epoch seconds, the
// aws-json encoding of MTurk's date fields.
type epoch float64

// Time converts the wire value back to a time.Time.
func (e epoch) Time() time.Time {
	sec := int64(e)
	nsec := int64((float64(e) - float64(sec)) * 1e9)
	return time.Unix(sec, nsec).UTC()
}

// epochOf converts a time.Time to the wire encoding.
func epochOf(t time.Time) epoch { return epoch(float64(t.UnixNano()) / 1e9) }

// createHITRequest is the CreateHIT payload.
type createHITRequest struct {
	Title                       string `json:"Title"`
	Description                 string `json:"Description"`
	Keywords                    string `json:"Keywords,omitempty"`
	Question                    string `json:"Question"`
	Reward                      string `json:"Reward"`
	MaxAssignments              int    `json:"MaxAssignments"`
	AssignmentDurationInSeconds int64  `json:"AssignmentDurationInSeconds"`
	LifetimeInSeconds           int64  `json:"LifetimeInSeconds"`
	UniqueRequestToken          string `json:"UniqueRequestToken,omitempty"`
	RequesterAnnotation         string `json:"RequesterAnnotation,omitempty"`
}

// hitInfo is the HIT element of CreateHIT/GetHIT responses.
type hitInfo struct {
	HITId                        string `json:"HITId"`
	HITStatus                    string `json:"HITStatus,omitempty"`
	MaxAssignments               int    `json:"MaxAssignments,omitempty"`
	CreationTime                 epoch  `json:"CreationTime,omitempty"`
	Expiration                   epoch  `json:"Expiration,omitempty"`
	NumberOfAssignmentsPending   int    `json:"NumberOfAssignmentsPending,omitempty"`
	NumberOfAssignmentsAvailable int    `json:"NumberOfAssignmentsAvailable,omitempty"`
	NumberOfAssignmentsCompleted int    `json:"NumberOfAssignmentsCompleted,omitempty"`
}

// createHITResponse wraps the created HIT.
type createHITResponse struct {
	HIT hitInfo `json:"HIT"`
}

// getHITRequest fetches one HIT's status counters.
type getHITRequest struct {
	HITId string `json:"HITId"`
}

// getHITResponse wraps the fetched HIT.
type getHITResponse struct {
	HIT hitInfo `json:"HIT"`
}

// listAssignmentsRequest is the ListAssignmentsForHIT payload.
type listAssignmentsRequest struct {
	HITId              string   `json:"HITId"`
	AssignmentStatuses []string `json:"AssignmentStatuses,omitempty"`
	MaxResults         int      `json:"MaxResults,omitempty"`
	NextToken          string   `json:"NextToken,omitempty"`
}

// assignmentInfo is one worker's submission on the wire.
type assignmentInfo struct {
	AssignmentId     string `json:"AssignmentId"`
	WorkerId         string `json:"WorkerId"`
	HITId            string `json:"HITId"`
	AssignmentStatus string `json:"AssignmentStatus"`
	AcceptTime       epoch  `json:"AcceptTime,omitempty"`
	SubmitTime       epoch  `json:"SubmitTime,omitempty"`
	Answer           string `json:"Answer"`
}

// listAssignmentsResponse pages submitted assignments.
type listAssignmentsResponse struct {
	NextToken   string           `json:"NextToken,omitempty"`
	NumResults  int              `json:"NumResults"`
	Assignments []assignmentInfo `json:"Assignments"`
}

// approveAssignmentRequest is the ApproveAssignment payload.
type approveAssignmentRequest struct {
	AssignmentId      string `json:"AssignmentId"`
	RequesterFeedback string `json:"RequesterFeedback,omitempty"`
}

// updateExpirationRequest force-expires a HIT (ExpireAt in the past
// stops new workers from accepting it).
type updateExpirationRequest struct {
	HITId    string `json:"HITId"`
	ExpireAt epoch  `json:"ExpireAt"`
}

// sendBonusRequest grants a worker a bonus against one of their
// submitted assignments. UniqueRequestToken makes the grant
// idempotent, so a retried call never pays twice.
type sendBonusRequest struct {
	WorkerId           string `json:"WorkerId"`
	AssignmentId       string `json:"AssignmentId"`
	BonusAmount        string `json:"BonusAmount"`
	Reason             string `json:"Reason"`
	UniqueRequestToken string `json:"UniqueRequestToken,omitempty"`
}

// createWorkerBlockRequest bans a worker from the requester's future
// HITs; MTurk shows Reason to the worker.
type createWorkerBlockRequest struct {
	WorkerId string `json:"WorkerId"`
	Reason   string `json:"Reason"`
}

// deleteWorkerBlockRequest lifts a previous worker block.
type deleteWorkerBlockRequest struct {
	WorkerId string `json:"WorkerId"`
	Reason   string `json:"Reason,omitempty"`
}

// apiError is the aws-json error body.
type apiError struct {
	Type    string `json:"__type"`
	Message string `json:"Message"`
}

// RequestError is a failed MTurk API call: the operation, the
// endpoint's error code (the __type field, e.g.
// "RequestError"/"ServiceFault"), and its message.
type RequestError struct {
	// Op is the API operation that failed (e.g. "CreateHIT").
	Op string
	// Status is the HTTP status code.
	Status int
	// Code is the endpoint's error type.
	Code string
	// Message is the endpoint's human-readable detail.
	Message string
}

// Error implements error.
func (e *RequestError) Error() string {
	return fmt.Sprintf("mturk: %s failed: %s (%d %s)", e.Op, e.Message, e.Status, e.Code)
}

// call issues one signed aws-json operation and decodes the response
// into out (which may be nil for empty-result operations). Transient
// failures (HTTP 5xx and throttles) are retried a bounded number of
// times with the client's clock providing the backoff sleep.
func (c *Client) call(op string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("mturk: encoding %s: %w", op, err)
	}
	const attempts = 3
	var lastErr error
	for try := 0; try < attempts; try++ {
		lastErr = c.callOnce(op, body, out)
		if lastErr == nil {
			return nil
		}
		var re *RequestError
		var te *transportError
		switch {
		case errors.As(lastErr, &te):
			// Network-level failure (connection refused, reset, or
			// dropped mid-body): retryable like a 5xx. Safe to repeat
			// even for CreateHIT — the UniqueRequestToken makes the
			// re-post attach to the already-created HIT.
			if try < attempts-1 {
				c.cfg.Clock.Sleep(c.backoff(try, false))
			}
		case errors.As(lastErr, &re) && (re.Status >= 500 || re.Code == throttlingCode):
			if try < attempts-1 {
				c.cfg.Clock.Sleep(c.backoff(try, re.Code == throttlingCode))
			}
		default:
			return lastErr
		}
	}
	return lastErr
}

// throttlingCode is the error type a rate-limited endpoint answers
// with; it is retryable but warrants a longer cool-off than a 5xx.
const throttlingCode = "ThrottlingException"

// backoff is the sleep after failed attempt try (0-based): a linearly
// growing base — 500ms steps for server faults, 2s steps for
// throttling responses, which signal the endpoint needs breathing room
// rather than a quick second chance — with full jitter drawn from
// [base/2, base) so concurrent operators' retries don't synchronize
// against a rate-limited endpoint.
func (c *Client) backoff(try int, throttled bool) time.Duration {
	step := 500 * time.Millisecond
	if throttled {
		step = 2 * time.Second
	}
	base := time.Duration(try+1) * step
	half := base / 2
	c.backoffMu.Lock()
	defer c.backoffMu.Unlock()
	return half + time.Duration(c.backoffRNG.Int63n(int64(half)))
}

// transportError marks a network-level failure — the request may or
// may not have reached the endpoint, so call() retries it like a 5xx
// (every operation is idempotent: CreateHIT and SendBonus by
// UniqueRequestToken, the rest by nature).
type transportError struct {
	op  string
	err error
}

// Error implements error.
func (e *transportError) Error() string {
	return fmt.Sprintf("mturk: %s: transport: %v", e.op, e.err)
}

// Unwrap exposes the underlying network error.
func (e *transportError) Unwrap() error { return e.err }

// IsTransient reports whether err names a failure worth retrying
// later: a transport-level fault (the endpoint may be unreachable), an
// HTTP 5xx, or a throttle. Circuit breakers use it as the inverse of
// their Permanent classifier — a permanent error (validation, auth,
// budget) proves the backend is reachable and must not trip the
// breaker.
func IsTransient(err error) bool {
	var te *transportError
	if errors.As(err, &te) {
		return true
	}
	var re *RequestError
	return errors.As(err, &re) && (re.Status >= 500 || re.Code == throttlingCode)
}

func (c *Client) callOnce(op string, body []byte, out any) error {
	req, err := http.NewRequest(http.MethodPost, c.cfg.Endpoint, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("mturk: %s: %w", op, err)
	}
	req.Header.Set("Content-Type", contentTypeAWSJSON)
	req.Header.Set("X-Amz-Target", targetPrefix+op)
	signRequest(req, body, c.creds, c.cfg.Region, c.cfg.Clock.Now())
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return &transportError{op: op, err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return &transportError{op: op, err: fmt.Errorf("reading response: %w", err)}
	}
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		_ = json.Unmarshal(payload, &ae)
		if ae.Message == "" {
			ae.Message = string(payload)
		}
		return &RequestError{Op: op, Status: resp.StatusCode, Code: ae.Type, Message: ae.Message}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("mturk: %s: decoding response: %w", op, err)
	}
	return nil
}
