package mturk

// QuestionFormAnswers codec. MTurk returns each assignment's answers as
// QuestionFormAnswers XML: a flat list of (QuestionIdentifier,
// FreeText) pairs. This file fixes the FreeText conventions per
// question kind — the contract between the posted form, the client's
// decoder, and the FakeServer's encoder:
//
//	filter / join-pair   id          → "yes" | "no"
//	generative           id.field    → the raw field value
//	join-grid            id          → "l,r;l,r;…" matched cells ("" = none)
//	compare              id          → comma-separated permutation, least→most
//	rate                 id          → the Likert value, "1".."<scale>"

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"qurk/internal/hit"
)

// questionFormAnswersXMLNS is the answer schema MTurk declares.
const questionFormAnswersXMLNS = "http://mechanicalturk.amazonaws.com/AWSMechanicalTurkDataSchemas/2005-10-01/QuestionFormAnswers.xsd"

// questionFormAnswers is the XML envelope.
type questionFormAnswers struct {
	XMLName xml.Name         `xml:"QuestionFormAnswers"`
	XMLNS   string           `xml:"xmlns,attr"`
	Answers []questionAnswer `xml:"Answer"`
}

// questionAnswer is one (identifier, value) pair.
type questionAnswer struct {
	QuestionIdentifier string `xml:"QuestionIdentifier"`
	FreeText           string `xml:"FreeText"`
}

// encodeAnswers renders one worker's answers (one hit.Answer per
// question, in HIT order) into QuestionFormAnswers XML. The FakeServer
// uses it to fabricate submissions; round-trip tests pin it against
// decodeAnswers.
func encodeAnswers(h *hit.HIT, answers []hit.Answer) (string, error) {
	if len(answers) != len(h.Questions) {
		return "", fmt.Errorf("mturk: HIT %s has %d questions, got %d answers", h.ID, len(h.Questions), len(answers))
	}
	env := questionFormAnswers{XMLNS: questionFormAnswersXMLNS}
	add := func(id, text string) {
		env.Answers = append(env.Answers, questionAnswer{QuestionIdentifier: id, FreeText: text})
	}
	for i := range h.Questions {
		q := &h.Questions[i]
		a := &answers[i]
		switch q.Kind {
		case hit.FilterQ, hit.JoinPairQ:
			add(q.ID, boolText(a.Bool))
		case hit.GenerativeQ:
			for _, f := range q.Fields {
				add(q.ID+"."+f, a.Fields[f])
			}
		case hit.JoinGridQ:
			cells := make([]string, 0, len(a.Pairs))
			for _, p := range a.Pairs {
				cells = append(cells, fmt.Sprintf("%d,%d", p[0], p[1]))
			}
			add(q.ID, strings.Join(cells, ";"))
		case hit.CompareQ:
			order := make([]string, 0, len(a.Order))
			for _, idx := range a.Order {
				order = append(order, strconv.Itoa(idx))
			}
			add(q.ID, strings.Join(order, ","))
		case hit.RateQ:
			add(q.ID, strconv.Itoa(a.Rating))
		default:
			return "", fmt.Errorf("mturk: no answer encoding for kind %s", q.Kind)
		}
	}
	out, err := xml.Marshal(env)
	if err != nil {
		return "", err
	}
	return xml.Header + string(out), nil
}

func boolText(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// sortAnswers orders (identifier, value) pairs for stable XML output;
// decoding is order-independent, so this only serves golden fixtures.
func sortAnswers(as []questionAnswer) {
	sort.Slice(as, func(i, j int) bool {
		return as[i].QuestionIdentifier < as[j].QuestionIdentifier
	})
}

// xmlMarshal renders an answers envelope with the XML header.
func xmlMarshal(env questionFormAnswers) (string, error) {
	out, err := xml.Marshal(env)
	if err != nil {
		return "", err
	}
	return xml.Header + string(out), nil
}

// decodeAnswers parses one submission's QuestionFormAnswers XML into
// one hit.Answer per question, in HIT order. Identifiers the HIT does
// not know are ignored (live forms add their own bookkeeping fields);
// a question a worker skipped decodes to its zero answer, exactly how
// the simulator models an unanswered radio group.
func decodeAnswers(h *hit.HIT, answerXML string) ([]hit.Answer, error) {
	var env questionFormAnswers
	if err := xml.Unmarshal([]byte(answerXML), &env); err != nil {
		return nil, fmt.Errorf("mturk: decoding answers for HIT %s: %w", h.ID, err)
	}
	byID := make(map[string]string, len(env.Answers))
	for _, a := range env.Answers {
		byID[a.QuestionIdentifier] = a.FreeText
	}
	out := make([]hit.Answer, len(h.Questions))
	for i := range h.Questions {
		q := &h.Questions[i]
		ans := hit.Answer{QuestionID: q.ID}
		switch q.Kind {
		case hit.FilterQ, hit.JoinPairQ:
			ans.Bool = strings.EqualFold(strings.TrimSpace(byID[q.ID]), "yes")
		case hit.GenerativeQ:
			ans.Fields = make(map[string]string, len(q.Fields))
			for _, f := range q.Fields {
				if v, ok := byID[q.ID+"."+f]; ok {
					ans.Fields[f] = strings.TrimSpace(v)
				}
			}
		case hit.JoinGridQ:
			raw := strings.TrimSpace(byID[q.ID])
			if raw != "" {
				for _, cell := range strings.Split(raw, ";") {
					var l, r int
					if _, err := fmt.Sscanf(strings.TrimSpace(cell), "%d,%d", &l, &r); err != nil {
						return nil, fmt.Errorf("mturk: HIT %s question %s: bad grid cell %q", h.ID, q.ID, cell)
					}
					if l < 0 || l >= len(q.LeftItems) || r < 0 || r >= len(q.RightItems) {
						return nil, fmt.Errorf("mturk: HIT %s question %s: grid cell %q out of range", h.ID, q.ID, cell)
					}
					ans.Pairs = append(ans.Pairs, [2]int{l, r})
				}
			}
		case hit.CompareQ:
			raw := strings.TrimSpace(byID[q.ID])
			if raw != "" {
				seen := make(map[int]bool, len(q.Items))
				for _, tok := range strings.Split(raw, ",") {
					idx, err := strconv.Atoi(strings.TrimSpace(tok))
					if err != nil || idx < 0 || idx >= len(q.Items) || seen[idx] {
						return nil, fmt.Errorf("mturk: HIT %s question %s: bad order %q", h.ID, q.ID, raw)
					}
					seen[idx] = true
					ans.Order = append(ans.Order, idx)
				}
				if len(ans.Order) != len(q.Items) {
					return nil, fmt.Errorf("mturk: HIT %s question %s: order %q incomplete", h.ID, q.ID, raw)
				}
			}
		case hit.RateQ:
			if raw := strings.TrimSpace(byID[q.ID]); raw != "" {
				r, err := strconv.Atoi(raw)
				if err != nil || r < 1 || r > q.Scale {
					return nil, fmt.Errorf("mturk: HIT %s question %s: bad rating %q", h.ID, q.ID, raw)
				}
				ans.Rating = r
			}
		}
		out[i] = ans
	}
	return out, nil
}
