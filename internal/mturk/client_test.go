package mturk

// Recorded-HTTP tests: the client exercises CreateHIT / poll / approve
// / expire against the in-process FakeServer over real HTTP with real
// SigV4 signatures — and zero network access beyond the loopback
// httptest listener.

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"qurk/internal/hit"
)

var t0 = time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)

// newFixture wires a FakeServer and a Client to one shared FakeClock.
func newFixture(t *testing.T, fcfg FakeConfig) (*FakeServer, *Client, *FakeClock) {
	t.Helper()
	clock := NewFakeClock(t0)
	fcfg.Clock = clock
	f := NewFakeServer(fcfg)
	t.Cleanup(f.Close)
	c, err := New(Config{
		Endpoint:           f.URL(),
		AccessKey:          "FAKEKEY",
		SecretKey:          "FAKESECRET",
		Clock:              clock,
		PollInterval:       5 * time.Second,
		AssignmentDuration: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, c, clock
}

func filterGroup(n, assignments int) *hit.Group {
	g := &hit.Group{ID: "filter/isFemale@q"}
	for i := 0; i < n; i++ {
		g.HITs = append(g.HITs, &hit.HIT{
			ID: fmt.Sprintf("%s/hit%04d", g.ID, i+1), GroupID: g.ID,
			Kind: hit.FilterQ, Assignments: assignments, RewardCents: 1,
			Questions: []hit.Question{
				{ID: fmt.Sprintf("%s/t%05d", g.ID, i), Kind: hit.FilterQ, Task: "isFemale", Tuple: celebTuple(fmt.Sprintf("c%02d", i))},
			},
		})
	}
	return g
}

// TestClientCreatePollApprove: the full happy path — every HIT posted
// once, every fabricated submission collected, decoded, and approved.
func TestClientCreatePollApprove(t *testing.T) {
	f, c, _ := newFixture(t, FakeConfig{})
	group := filterGroup(4, 3)
	res, err := c.Run(group)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssignments != 4*3 {
		t.Errorf("TotalAssignments = %d, want 12", res.TotalAssignments)
	}
	if len(res.Incomplete) != 0 || len(res.Expired) != 0 {
		t.Errorf("clean run reported Incomplete=%v Expired=%v", res.Incomplete, res.Expired)
	}
	if res.MakespanHours <= 0 {
		t.Error("makespan not derived from submit times")
	}
	if got := f.RequestCount(opCreateHIT); got != 4 {
		t.Errorf("CreateHIT called %d times, want 4", got)
	}
	if got := f.ApprovedCount(); got != 12 {
		t.Errorf("%d assignments approved, want 12", got)
	}
	// Every assignment decodes to exactly one answer per question, with
	// the engine's HIT IDs (not MTurk's) on the assignment.
	for _, a := range res.Assignments {
		if !strings.HasPrefix(a.HITID, "filter/isFemale@q/hit") {
			t.Errorf("assignment carries marketplace ID %q, want engine HIT ID", a.HITID)
		}
		if len(a.Answers) != 1 {
			t.Errorf("assignment %s has %d answers, want 1", a.ID, len(a.Answers))
		}
	}
}

// TestClientCreateHITRequestGolden pins the exact CreateHIT JSON body
// the client sends for a canonical HIT.
func TestClientCreateHITRequestGolden(t *testing.T) {
	f, c, _ := newFixture(t, FakeConfig{})
	g := &hit.Group{ID: "g@q", HITs: sampleHITs()[:1]}
	if _, err := c.Run(g); err != nil {
		t.Fatal(err)
	}
	var body string
	for _, r := range f.Requests() {
		if r.Op == opCreateHIT {
			body = r.Body
			break
		}
	}
	if body == "" {
		t.Fatal("no CreateHIT recorded")
	}
	var pretty map[string]any
	if err := json.Unmarshal([]byte(body), &pretty); err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(pretty, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "createhit_request.golden.json", string(out)+"\n")
}

// TestClientExpiry: abandoned assignments never arrive; at the
// assignment deadline the client reports them expired per HIT, returns
// the partial votes it did collect, and force-expires the HIT.
func TestClientExpiry(t *testing.T) {
	f, c, _ := newFixture(t, FakeConfig{AbandonPct: 45})
	group := filterGroup(6, 5)
	res, err := c.Run(group)
	if err != nil {
		t.Fatal(err)
	}
	expired := 0
	for _, n := range res.Expired {
		expired += n
	}
	if expired == 0 {
		t.Fatal("AbandonPct = 45 over 30 assignments expired nothing")
	}
	if res.TotalAssignments+expired != 6*5 {
		t.Errorf("completed %d + expired %d != requested 30", res.TotalAssignments, expired)
	}
	// Expiry detection is on the deadline clock.
	if res.MakespanHours < (10 * time.Minute).Hours() {
		t.Errorf("makespan %.4fh below the 10m assignment deadline", res.MakespanHours)
	}
	if f.RequestCount(opUpdateExpirationForHIT) == 0 {
		t.Error("timed-out HITs were not force-expired")
	}
}

// TestClientExpiryDeterministic: the fake's worker behavior hangs off
// the UniqueRequestToken alone, so a rerun of the same group on a fresh
// fake reproduces the same expiry pattern and the same votes.
func TestClientExpiryDeterministic(t *testing.T) {
	run := func() (map[string]int, int) {
		_, c, _ := newFixture(t, FakeConfig{AbandonPct: 45})
		res, err := c.Run(filterGroup(6, 5))
		if err != nil {
			t.Fatal(err)
		}
		return res.Expired, res.TotalAssignments
	}
	e1, n1 := run()
	e2, n2 := run()
	if n1 != n2 || len(e1) != len(e2) {
		t.Fatalf("reruns diverged: %d/%v vs %d/%v", n1, e1, n2, e2)
	}
	for id, n := range e1 {
		if e2[id] != n {
			t.Errorf("HIT %s expired %d then %d", id, n, e2[id])
		}
	}
}

// TestClientLatePickupNotExpired: a worker who accepts late keeps the
// full assignment window — the client must not declare assignments
// expired at (post time + duration) while GetHIT reports workers still
// in progress. With SubmitDelay 60s and a 150s deadline, several of
// these HITs' second assignments submit only after the deadline; the
// pending check keeps them alive and nothing expires.
func TestClientLatePickupNotExpired(t *testing.T) {
	clock := NewFakeClock(t0)
	f := NewFakeServer(FakeConfig{Clock: clock, SubmitDelay: 60 * time.Second})
	t.Cleanup(f.Close)
	c, err := New(Config{
		Endpoint:           f.URL(),
		AccessKey:          "FAKEKEY",
		SecretKey:          "FAKESECRET",
		Clock:              clock,
		PollInterval:       5 * time.Second,
		AssignmentDuration: 150 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(filterGroup(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expired) != 0 {
		t.Errorf("late-pickup assignments misreported as expired: %v", res.Expired)
	}
	if res.TotalAssignments != 10*2 {
		t.Errorf("TotalAssignments = %d, want 20", res.TotalAssignments)
	}
}

// TestClientIdempotentRepost: re-posting a group re-sends CreateHIT
// with the same UniqueRequestTokens and the fake (like MTurk) returns
// the existing HITs instead of double-posting.
func TestClientIdempotentRepost(t *testing.T) {
	f, c, _ := newFixture(t, FakeConfig{})
	group := filterGroup(3, 2)
	if _, err := c.Run(group); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(group)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssignments != 3*2 {
		t.Errorf("idempotent re-run returned %d assignments, want 6", res.TotalAssignments)
	}
	if got := len(f.CreatedHITs()); got != 3 {
		t.Errorf("fake holds %d HITs after re-post, want 3", got)
	}
}

// TestClientStreamDelivery: RunStream delivers per completed HIT,
// serially, with the same union of assignments Run returns.
func TestClientStreamDelivery(t *testing.T) {
	_, c, _ := newFixture(t, FakeConfig{})
	group := filterGroup(5, 2)
	delivered := map[string]int{}
	res, err := c.RunStream(group, func(hitID string, as []hit.Assignment) {
		delivered[hitID] += len(as)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 5 {
		t.Errorf("delivered %d HITs, want 5", len(delivered))
	}
	total := 0
	for _, n := range delivered {
		total += n
	}
	if total != res.TotalAssignments {
		t.Errorf("delivered %d assignments, result has %d", total, res.TotalAssignments)
	}
}

// TestClientRejectsBadCredentials: a wrong secret is refused by the
// fake's signature verification and surfaces as a RequestError.
func TestClientRejectsBadCredentials(t *testing.T) {
	clock := NewFakeClock(t0)
	f := NewFakeServer(FakeConfig{Clock: clock})
	defer f.Close()
	c, err := New(Config{Endpoint: f.URL(), AccessKey: "FAKEKEY", SecretKey: "WRONG", Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(filterGroup(1, 1))
	if err == nil {
		t.Fatal("forged signature accepted")
	}
	var re *RequestError
	if !errors.As(err, &re) || re.Status != 403 {
		t.Errorf("want 403 RequestError, got %v", err)
	}
}

// TestNewRequiresCredentials: no credentials anywhere → constructor
// fails instead of posting unsigned requests.
func TestNewRequiresCredentials(t *testing.T) {
	t.Setenv("AWS_ACCESS_KEY_ID", "")
	t.Setenv("AWS_SECRET_ACCESS_KEY", "")
	if _, err := New(Config{}); err == nil {
		t.Fatal("credential-less client constructed")
	}
}
