package mturk

// HTMLQuestion rendering. Each engine HIT becomes one marketplace HIT
// whose Question payload is HTMLQuestion XML: an HTML form workers fill
// in, plus a machine-readable JSON manifest (a <script> block, the
// pattern real HIT templates use for their own JS) describing every
// question's ID, kind, and subjects. The manifest is what makes the
// posted HIT self-describing: the in-process FakeServer answers from
// it, and external submission tooling can render richer UIs without
// re-parsing the form.

import (
	"encoding/json"
	"fmt"
	"html"
	"strings"

	"qurk/internal/hit"
	"qurk/internal/relation"
)

// htmlQuestionXMLNS is the schema the HTMLQuestion envelope declares.
const htmlQuestionXMLNS = "http://mechanicalturk.amazonaws.com/AWSMechanicalTurkDataSchemas/2011-11-11/HTMLQuestion.xsd"

// manifestID is the DOM id of the embedded manifest block.
const manifestID = "qurk-manifest"

// Manifest is the machine-readable description of a posted HIT,
// embedded in its HTMLQuestion payload.
type Manifest struct {
	// Group is the engine's HIT-group ID.
	Group string `json:"group"`
	// HIT is the engine's HIT ID (also the CreateHIT UniqueRequestToken).
	HIT string `json:"hit"`
	// Questions lists the HIT's questions in form order.
	Questions []ManifestQuestion `json:"questions"`
}

// ManifestQuestion describes one question inside a Manifest.
type ManifestQuestion struct {
	// ID is the engine question ID; answers key on it.
	ID string `json:"id"`
	// Kind is the interface name (hit.Kind.String()).
	Kind string `json:"kind"`
	// Task is the task (UDF) name the question instantiates.
	Task string `json:"task"`
	// Fields lists requested generative fields, if any.
	Fields []string `json:"fields,omitempty"`
	// Scale is the Likert scale size for rating questions.
	Scale int `json:"scale,omitempty"`
	// Left and Right are the grid dimensions for grid questions.
	Left int `json:"left,omitempty"`
	// Right is the grid's right-column length.
	Right int `json:"right,omitempty"`
	// Subjects renders the question's tuples ("col=value; …") in
	// interface order: the single subject for filter/generative/rate,
	// left then right for pairs and grids, the group for comparisons.
	Subjects []string `json:"subjects,omitempty"`
}

// renderSubject flattens a tuple for the manifest.
func renderSubject(t relation.Tuple) string {
	if t.Schema() == nil {
		return ""
	}
	parts := make([]string, 0, t.Len())
	for i := 0; i < t.Len(); i++ {
		parts = append(parts, fmt.Sprintf("%s=%s", t.Schema().Column(i).Name, t.At(i).String()))
	}
	return strings.Join(parts, "; ")
}

func subjectsOf(q *hit.Question) []string {
	var ts []relation.Tuple
	switch q.Kind {
	case hit.JoinPairQ:
		ts = []relation.Tuple{q.Left, q.Right}
	case hit.JoinGridQ:
		ts = append(append(ts, q.LeftItems...), q.RightItems...)
	case hit.CompareQ:
		ts = q.Items
	default:
		ts = []relation.Tuple{q.Tuple}
	}
	out := make([]string, 0, len(ts))
	for _, t := range ts {
		out = append(out, renderSubject(t))
	}
	return out
}

// manifestOf builds the manifest for one HIT.
func manifestOf(h *hit.HIT) *Manifest {
	m := &Manifest{Group: h.GroupID, HIT: h.ID}
	for i := range h.Questions {
		q := &h.Questions[i]
		mq := ManifestQuestion{
			ID:       q.ID,
			Kind:     q.Kind.String(),
			Task:     q.Task,
			Fields:   q.Fields,
			Scale:    q.Scale,
			Subjects: subjectsOf(q),
		}
		if q.Kind == hit.JoinGridQ {
			mq.Left, mq.Right = len(q.LeftItems), len(q.RightItems)
		}
		m.Questions = append(m.Questions, mq)
	}
	return m
}

// defaultHTML renders a plain worker-facing form for the HIT: one block
// per question with the inputs the interface needs. Deployments that
// want the paper's styled interfaces (Figs. 2 and 5) set Config.Render
// to the hit.Compiler output; this fallback keeps the client usable
// with zero task-registry wiring.
func defaultHTML(h *hit.HIT) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><body><form name='mturk_form' method='post' action='/mturk/externalSubmit'>\n")
	for i := range h.Questions {
		q := &h.Questions[i]
		fmt.Fprintf(&b, "<div class='question' data-qid=%q>\n", html.EscapeString(q.ID))
		switch q.Kind {
		case hit.FilterQ, hit.JoinPairQ:
			fmt.Fprintf(&b, "<p>%s: %s</p>", html.EscapeString(q.Task), html.EscapeString(strings.Join(subjectsOf(q), " vs ")))
			fmt.Fprintf(&b, "<label><input type='radio' name=%q value='yes'>Yes</label> <label><input type='radio' name=%q value='no'>No</label>\n",
				html.EscapeString(q.ID), html.EscapeString(q.ID))
		case hit.GenerativeQ:
			fmt.Fprintf(&b, "<p>%s: %s</p>", html.EscapeString(q.Task), html.EscapeString(renderSubject(q.Tuple)))
			for _, f := range q.Fields {
				fmt.Fprintf(&b, "<label>%s <input type='text' name='%s.%s'></label><br>\n",
					html.EscapeString(f), html.EscapeString(q.ID), html.EscapeString(f))
			}
		case hit.JoinGridQ:
			fmt.Fprintf(&b, "<p>%s: click matching pairs</p>", html.EscapeString(q.Task))
			fmt.Fprintf(&b, "<input type='hidden' name=%q value=''>\n", html.EscapeString(q.ID))
		case hit.CompareQ:
			fmt.Fprintf(&b, "<p>%s: order the items</p>", html.EscapeString(q.Task))
			fmt.Fprintf(&b, "<input type='hidden' name=%q value=''>\n", html.EscapeString(q.ID))
		case hit.RateQ:
			fmt.Fprintf(&b, "<p>%s: %s</p>", html.EscapeString(q.Task), html.EscapeString(renderSubject(q.Tuple)))
			for v := 1; v <= q.Scale; v++ {
				fmt.Fprintf(&b, "<label><input type='radio' name=%q value='%d'>%d</label> ", html.EscapeString(q.ID), v, v)
			}
			b.WriteString("\n")
		}
		b.WriteString("</div>\n")
	}
	b.WriteString("<input type='submit' value='Submit'></form></body></html>")
	return b.String()
}

// buildQuestionXML wraps the HIT's HTML (custom or default) plus its
// manifest into the HTMLQuestion envelope CreateHIT expects.
func buildQuestionXML(h *hit.HIT, render func(*hit.HIT) (string, error)) (string, error) {
	body := ""
	if render != nil {
		custom, err := render(h)
		if err != nil {
			return "", fmt.Errorf("mturk: rendering HIT %s: %w", h.ID, err)
		}
		body = custom
	} else {
		body = defaultHTML(h)
	}
	mjson, err := json.Marshal(manifestOf(h))
	if err != nil {
		return "", fmt.Errorf("mturk: manifest for HIT %s: %w", h.ID, err)
	}
	content := fmt.Sprintf("%s\n<script type=\"application/json\" id=%q>%s</script>\n", body, manifestID, mjson)
	// "]]>" inside CDATA must be split across sections.
	content = strings.ReplaceAll(content, "]]>", "]]]]><![CDATA[>")
	return fmt.Sprintf("<HTMLQuestion xmlns=%q><HTMLContent><![CDATA[%s]]></HTMLContent><FrameHeight>650</FrameHeight></HTMLQuestion>",
		htmlQuestionXMLNS, content), nil
}

// parseManifest extracts the embedded manifest from a Question XML
// payload — the FakeServer's (and any submission tooling's) view of
// what was asked.
func parseManifest(questionXML string) (*Manifest, error) {
	marker := fmt.Sprintf("<script type=\"application/json\" id=%q>", manifestID)
	start := strings.Index(questionXML, marker)
	if start < 0 {
		return nil, fmt.Errorf("mturk: question payload has no %s manifest", manifestID)
	}
	rest := questionXML[start+len(marker):]
	end := strings.Index(rest, "</script>")
	if end < 0 {
		return nil, fmt.Errorf("mturk: unterminated manifest block")
	}
	var m Manifest
	if err := json.Unmarshal([]byte(rest[:end]), &m); err != nil {
		return nil, fmt.Errorf("mturk: decoding manifest: %w", err)
	}
	return &m, nil
}
