package mturk

// Worker-moderation tests: SendBonus / CreateWorkerBlock /
// DeleteWorkerBlock against the fake endpoint (recorded requests
// pinned by golden fixtures), plus the connection-drop fault mode that
// exercises the transport-level retry path.

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"qurk/internal/crowd"
)

// The live client moderates workers through the same interface the
// simulator does, so the §6 gold-screen ban wiring is backend-neutral.
var _ crowd.WorkerModerator = (*Client)(nil)

// lastRequestBody returns the most recent recorded body for op.
func lastRequestBody(t *testing.T, f *FakeServer, op string) string {
	t.Helper()
	reqs := f.Requests()
	for i := len(reqs) - 1; i >= 0; i-- {
		if reqs[i].Op == op {
			return reqs[i].Body
		}
	}
	t.Fatalf("no recorded %s request", op)
	return ""
}

func TestSendBonusRecordsGrantOnce(t *testing.T) {
	f, c, _ := newFixture(t, FakeConfig{})
	res, err := c.Run(filterGroup(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignments[0]

	if err := c.SendBonus(a.WorkerID, a.ID, 25, "gold-standard accuracy"); err != nil {
		t.Fatal(err)
	}
	// A retried grant carries the same UniqueRequestToken; the
	// endpoint must acknowledge without paying twice.
	if err := c.SendBonus(a.WorkerID, a.ID, 25, "gold-standard accuracy"); err != nil {
		t.Fatal(err)
	}
	grants := f.Bonuses()
	if len(grants) != 1 {
		t.Fatalf("Bonuses() = %+v, want exactly one grant", grants)
	}
	g := grants[0]
	if g.WorkerID != a.WorkerID || g.AssignmentID != a.ID || g.Amount != "0.25" || g.Reason != "gold-standard accuracy" {
		t.Errorf("grant = %+v, want worker %s assignment %s $0.25", g, a.WorkerID, a.ID)
	}
	checkGolden(t, "sendbonus_request.golden.json", lastRequestBody(t, f, opSendBonus)+"\n")
}

func TestSendBonusValidation(t *testing.T) {
	f, c, _ := newFixture(t, FakeConfig{})
	if err := c.SendBonus("FW0", "A0", 0, "r"); err == nil {
		t.Error("zero-cent bonus must be rejected client-side")
	}
	var re *RequestError
	if err := c.SendBonus("FW0", "A0", 10, "r"); !errors.As(err, &re) {
		t.Errorf("bonus on unknown assignment = %v, want RequestError", err)
	}
	if n := len(f.Bonuses()); n != 0 {
		t.Errorf("rejected bonuses still recorded: %d", n)
	}
}

func TestWorkerBlockLifecycle(t *testing.T) {
	f, c, _ := newFixture(t, FakeConfig{})
	if err := c.CreateWorkerBlock("FWDEADBEEF", "failed gold-standard screen"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateWorkerBlock("FW0BADF00D", "failed gold-standard screen"); err != nil {
		t.Fatal(err)
	}
	if got := f.BlockedWorkers(); len(got) != 2 || got[0] != "FW0BADF00D" || got[1] != "FWDEADBEEF" {
		t.Fatalf("BlockedWorkers() = %v, want both bans, sorted", got)
	}
	checkGolden(t, "createworkerblock_request.golden.json", lastRequestBody(t, f, opCreateWorkerBlock)+"\n")

	if err := c.DeleteWorkerBlock("FWDEADBEEF", "appeal accepted"); err != nil {
		t.Fatal(err)
	}
	// Unblocking an unblocked worker succeeds, like the real endpoint.
	if err := c.DeleteWorkerBlock("FWNEVERBLOCKED", ""); err != nil {
		t.Fatal(err)
	}
	if got := f.BlockedWorkers(); len(got) != 1 || got[0] != "FW0BADF00D" {
		t.Fatalf("BlockedWorkers() after unblock = %v, want [FW0BADF00D]", got)
	}
	checkGolden(t, "deleteworkerblock_request.golden.json", lastRequestBody(t, f, opDeleteWorkerBlock)+"\n")

	// The moderator interface routes to the same operations.
	if err := c.BlockWorker("FWMOD", "modded"); err != nil {
		t.Fatal(err)
	}
	if err := c.UnblockWorker("FWMOD", "modded"); err != nil {
		t.Fatal(err)
	}
	if got := f.BlockedWorkers(); len(got) != 1 {
		t.Fatalf("BlockedWorkers() after moderator round-trip = %v", got)
	}
}

func TestCreateWorkerBlockRequiresReason(t *testing.T) {
	_, c, _ := newFixture(t, FakeConfig{})
	var re *RequestError
	if err := c.CreateWorkerBlock("FW1", ""); !errors.As(err, &re) {
		t.Errorf("block without reason = %v, want RequestError", err)
	}
}

// TestDropEveryNConnectionDropsAreRetried: every other API call is
// severed mid-response-body after the server processed it. The
// transport retry + UniqueRequestToken idempotency must absorb all of
// it: the run completes, and no HIT is double-posted.
func TestDropEveryNConnectionDropsAreRetried(t *testing.T) {
	f, c, _ := newFixture(t, FakeConfig{DropEveryN: 2})
	group := filterGroup(3, 2)
	res, err := c.Run(group)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAssignments != 3*2 {
		t.Errorf("TotalAssignments = %d, want 6", res.TotalAssignments)
	}
	if got := len(f.CreatedHITs()); got != 3 {
		t.Errorf("distinct HITs created = %d, want 3 (idempotent re-attach)", got)
	}
	// The drops really happened: more CreateHIT calls arrived than
	// HITs exist.
	if calls := f.RequestCount(opCreateHIT); calls <= 3 {
		t.Errorf("CreateHIT calls = %d, want > 3 (retries after drops)", calls)
	}
}

// TestTransportErrorSurfacesAfterRetryBudget: a dead endpoint (every
// call dropped) exhausts the bounded retry and surfaces a transport
// error rather than hanging.
func TestTransportErrorSurfacesAfterRetryBudget(t *testing.T) {
	f, c, _ := newFixture(t, FakeConfig{DropEveryN: 1})
	_, err := c.Run(filterGroup(1, 1))
	if err == nil {
		t.Fatal("Run against all-dropping endpoint must fail")
	}
	var te *transportError
	if !errors.As(err, &te) {
		t.Errorf("error = %v, want transportError", err)
	}
	if calls := f.RequestCount(opCreateHIT); calls != 3 {
		t.Errorf("CreateHIT attempts = %d, want the full retry budget of 3", calls)
	}
}

// TestSendBonusWireFormat pins the dollars formatting and token scheme
// without the HTTP round-trip.
func TestSendBonusWireFormat(t *testing.T) {
	req := sendBonusRequest{
		WorkerId:           "FW1",
		AssignmentId:       "A1",
		BonusAmount:        "1.05",
		Reason:             "why",
		UniqueRequestToken: "bonus-FW1-A1",
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"BonusAmount":"1.05"`, `"UniqueRequestToken":"bonus-FW1-A1"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("wire form %s missing %s", b, want)
		}
	}
}
