package mturk

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"qurk/internal/core"
	"qurk/internal/crowd"
	"qurk/internal/hit"
)

// Endpoint URLs the client targets; any URL speaking the same protocol
// (including FakeServer.URL()) works.
const (
	// SandboxEndpoint is the MTurk requester sandbox — free, safe, and
	// the default: posting real money requires opting into
	// ProductionEndpoint explicitly.
	SandboxEndpoint = "https://mturk-requester-sandbox.us-east-1.amazonaws.com"
	// ProductionEndpoint is the live marketplace. HITs posted here cost
	// real dollars and reach real workers.
	ProductionEndpoint = "https://mturk-requester.us-east-1.amazonaws.com"
)

// Config parametrizes the live client. The zero value targets the
// sandbox with credentials from the standard AWS environment variables
// and the paper's HIT shape (short assignments, auto-approval).
type Config struct {
	// Endpoint is the REST endpoint base URL (default SandboxEndpoint).
	Endpoint string
	// Region signs requests (default us-east-1).
	Region string
	// AccessKey / SecretKey / SessionToken are the AWS credentials;
	// empty values fall back to AWS_ACCESS_KEY_ID /
	// AWS_SECRET_ACCESS_KEY / AWS_SESSION_TOKEN.
	AccessKey, SecretKey, SessionToken string
	// HTTPClient issues the requests (default http.DefaultClient with a
	// 30s timeout).
	HTTPClient *http.Client
	// Clock drives polling and signing time (default wall clock; tests
	// inject FakeClock).
	Clock Clock
	// PollInterval is the wait between ListAssignmentsForHIT sweeps
	// (default 15s).
	PollInterval time.Duration
	// MaxPollInterval caps the capped exponential backoff the poll
	// loop applies while sweeps make no progress (no new assignments,
	// no completions): each idle sweep doubles the wait from
	// PollInterval up to this cap, and any progress resets it —
	// cutting request volume on long-deadline HITs without delaying
	// active ones (default 8× PollInterval).
	MaxPollInterval time.Duration
	// AssignmentDuration is each accepted assignment's submission
	// deadline (default 10m), counted from the worker's accept time.
	// Once the HIT has been out this long the client starts checking
	// GetHIT's in-progress count: assignments still missing with no
	// worker inside an accept window are reported in
	// crowd.RunResult.Expired — the marketplace half of the engine's
	// timeout policy (Options.ExpiredRetries re-posts them). Workers
	// who picked up late keep their full window, bounded by
	// Lifetime + AssignmentDuration.
	AssignmentDuration time.Duration
	// Lifetime is how long a HIT stays visible (default 1h).
	Lifetime time.Duration
	// SkipApprove leaves submitted assignments unapproved (default
	// false: approve on collection, so workers are paid promptly).
	SkipApprove bool
	// Title, Description, and Keywords fill HIT metadata; the group ID
	// is appended to Title so one engine group forms one MTurk HIT
	// group (§2.6: Turkers gravitate to groups with many HITs).
	Title, Description, Keywords string
	// Render overrides the worker-facing HTML per HIT (e.g. the
	// hit.Compiler's paper-faithful interfaces); nil uses a plain
	// generic form. The JSON manifest is appended either way.
	Render func(*hit.HIT) (string, error)
}

func (c *Config) fillDefaults() {
	if c.Endpoint == "" {
		c.Endpoint = SandboxEndpoint
	}
	if c.Region == "" {
		c.Region = "us-east-1"
	}
	if c.AccessKey == "" {
		c.AccessKey = os.Getenv("AWS_ACCESS_KEY_ID")
	}
	if c.SecretKey == "" {
		c.SecretKey = os.Getenv("AWS_SECRET_ACCESS_KEY")
	}
	if c.SessionToken == "" {
		c.SessionToken = os.Getenv("AWS_SESSION_TOKEN")
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 15 * time.Second
	}
	if c.MaxPollInterval <= 0 {
		c.MaxPollInterval = 8 * c.PollInterval
	}
	if c.MaxPollInterval < c.PollInterval {
		c.MaxPollInterval = c.PollInterval
	}
	if c.AssignmentDuration <= 0 {
		c.AssignmentDuration = 10 * time.Minute
	}
	if c.Lifetime <= 0 {
		c.Lifetime = time.Hour
	}
	if c.Title == "" {
		c.Title = "Answer a short batch of questions"
	}
	if c.Description == "" {
		c.Description = "Crowd-powered query operator tasks (Qurk)"
	}
	if c.Keywords == "" {
		c.Keywords = "survey, quick, image, question"
	}
}

// FromOptions builds a Config from the engine-level MTurk options, so
// deployments configure the backend next to every other execution knob.
func FromOptions(o core.MTurkOptions) Config {
	return Config{
		Endpoint:           o.Endpoint,
		Region:             o.Region,
		AccessKey:          o.AccessKey,
		SecretKey:          o.SecretKey,
		SessionToken:       o.SessionToken,
		PollInterval:       time.Duration(o.PollIntervalSeconds * float64(time.Second)),
		MaxPollInterval:    time.Duration(o.MaxPollIntervalSeconds * float64(time.Second)),
		AssignmentDuration: time.Duration(o.AssignmentDurationSeconds) * time.Second,
		Lifetime:           time.Duration(o.LifetimeSeconds) * time.Second,
		SkipApprove:        o.SkipApprove,
	}
}

// Client posts HIT groups to a live MTurk-compatible endpoint. It
// implements crowd.Marketplace and crowd.StreamMarketplace and is safe
// for concurrent Run/RunAsync/RunStream calls — the streaming executor
// posts overlapping chunks from several operator goroutines, and each
// call keeps all its state on its own stack.
type Client struct {
	cfg   Config
	creds credentials
	// backoffRNG draws retry jitter (api.go's backoff); seeded
	// deterministically from the credentials so offline fake-clock runs
	// stay reproducible. Guarded by backoffMu — operators retry
	// concurrently and rand.Rand is not thread-safe.
	backoffMu  sync.Mutex
	backoffRNG *rand.Rand
}

// New builds a client; it fails fast when no credentials are resolvable
// rather than posting unsigned requests.
func New(cfg Config) (*Client, error) {
	cfg.fillDefaults()
	if cfg.AccessKey == "" || cfg.SecretKey == "" {
		return nil, fmt.Errorf("mturk: no credentials: set Config.AccessKey/SecretKey or AWS_ACCESS_KEY_ID/AWS_SECRET_ACCESS_KEY")
	}
	seed := fnv.New64a()
	seed.Write([]byte(cfg.AccessKey))
	seed.Write([]byte{0})
	seed.Write([]byte(cfg.Endpoint))
	return &Client{
		cfg:        cfg,
		creds:      credentials{accessKey: cfg.AccessKey, secretKey: cfg.SecretKey, sessionToken: cfg.SessionToken},
		backoffRNG: rand.New(rand.NewSource(int64(seed.Sum64()))),
	}, nil
}

// Endpoint reports the endpoint the client posts to.
func (c *Client) Endpoint() string { return c.cfg.Endpoint }

// Run implements crowd.Marketplace.
func (c *Client) Run(group *hit.Group) (*crowd.RunResult, error) {
	return c.RunStream(group, nil)
}

// RunAsync implements crowd.Marketplace.
func (c *Client) RunAsync(group *hit.Group) <-chan crowd.Async {
	return crowd.GoRun(func() (*crowd.RunResult, error) { return c.Run(group) })
}

// pendingHIT tracks one posted HIT through the poll loop.
type pendingHIT struct {
	h        *hit.HIT
	mturkID  string
	postedAt time.Time
	seen     map[string]bool
	got      []hit.Assignment
	done     bool
}

// RunStream implements crowd.StreamMarketplace: it posts every HIT in
// the group, polls assignments back, and calls deliver (serially) as
// each HIT completes or expires. The returned result's clock —
// SubmitHours and MakespanHours — is hours since the group was posted,
// the same frame the simulator reports.
func (c *Client) RunStream(group *hit.Group, deliver func(hitID string, as []hit.Assignment)) (*crowd.RunResult, error) {
	res := &crowd.RunResult{}
	if group == nil || len(group.HITs) == 0 {
		return res, nil
	}
	start := c.cfg.Clock.Now()
	pending := make([]*pendingHIT, 0, len(group.HITs))
	for _, h := range group.HITs {
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("mturk: %w", err)
		}
		mturkID, err := c.createHIT(group, h)
		if err != nil {
			return nil, err
		}
		pending = append(pending, &pendingHIT{h: h, mturkID: mturkID, postedAt: c.cfg.Clock.Now(), seen: map[string]bool{}})
	}

	remaining := len(pending)
	wait := c.cfg.PollInterval
	for remaining > 0 {
		progress := false
		for _, p := range pending {
			if p.done {
				continue
			}
			got := len(p.got)
			if err := c.pollHIT(start, p); err != nil {
				return nil, err
			}
			if len(p.got) > got {
				progress = true
			}
			if len(p.got) >= p.h.Assignments {
				p.done = true
			} else if c.cfg.Clock.Now().Sub(p.postedAt) >= c.cfg.AssignmentDuration {
				expired, err := c.checkExpired(p)
				if err != nil {
					return nil, err
				}
				if expired > 0 {
					res.Expired = mergeExpired(res.Expired, p.h.ID, expired)
					detect := c.cfg.Clock.Now().Sub(start).Hours()
					if detect > res.MakespanHours {
						res.MakespanHours = detect
					}
					c.expireHIT(p.mturkID)
					p.done = true
				}
			}
			if p.done {
				progress = true
				remaining--
				if deliver != nil && len(p.got) > 0 {
					deliver(p.h.ID, append([]hit.Assignment(nil), p.got...))
				}
			}
		}
		if remaining > 0 {
			// Capped exponential backoff while nothing moves: long
			// deadlines otherwise cost O(HITs × lifetime/interval)
			// ListAssignmentsForHIT requests. Any progress resets the
			// cadence so active HITs keep the snappy interval.
			if progress {
				wait = c.cfg.PollInterval
			} else if wait < c.cfg.MaxPollInterval {
				wait *= 2
				if wait > c.cfg.MaxPollInterval {
					wait = c.cfg.MaxPollInterval
				}
			}
			// Never sleep past a pending HIT's assignment deadline by
			// more than the base interval: expiry detection (and the
			// re-post policy it feeds) must stay as prompt as it was
			// before backoff existed.
			sleep := wait
			now := c.cfg.Clock.Now()
			for _, p := range pending {
				if p.done {
					continue
				}
				if until := p.postedAt.Add(c.cfg.AssignmentDuration).Sub(now); until > 0 && until < sleep {
					sleep = until
				}
			}
			if sleep < c.cfg.PollInterval {
				sleep = c.cfg.PollInterval
			}
			c.cfg.Clock.Sleep(sleep)
		}
	}

	for _, p := range pending {
		for i := range p.got {
			if p.got[i].SubmitHours > res.MakespanHours {
				res.MakespanHours = p.got[i].SubmitHours
			}
		}
		res.Assignments = append(res.Assignments, p.got...)
	}
	res.TotalAssignments = len(res.Assignments)
	hit.SortAssignments(res.Assignments)
	return res, nil
}

func mergeExpired(m map[string]int, hitID string, n int) map[string]int {
	if n <= 0 {
		return m
	}
	if m == nil {
		m = map[string]int{}
	}
	m[hitID] += n
	return m
}

// createHIT renders and posts one HIT; the engine HIT ID rides along as
// the UniqueRequestToken (idempotent re-posts) and annotation.
func (c *Client) createHIT(group *hit.Group, h *hit.HIT) (string, error) {
	question, err := buildQuestionXML(h, c.cfg.Render)
	if err != nil {
		return "", err
	}
	req := createHITRequest{
		Title:                       fmt.Sprintf("%s [%s]", c.cfg.Title, group.ID),
		Description:                 c.cfg.Description,
		Keywords:                    c.cfg.Keywords,
		Question:                    question,
		Reward:                      fmt.Sprintf("%.2f", h.RewardCents/100),
		MaxAssignments:              h.Assignments,
		AssignmentDurationInSeconds: int64(c.cfg.AssignmentDuration / time.Second),
		LifetimeInSeconds:           int64(c.cfg.Lifetime / time.Second),
		UniqueRequestToken:          h.ID,
		RequesterAnnotation:         h.ID,
	}
	var resp createHITResponse
	if err := c.call(opCreateHIT, &req, &resp); err != nil {
		return "", err
	}
	if resp.HIT.HITId == "" {
		return "", fmt.Errorf("mturk: CreateHIT for %s returned no HITId", h.ID)
	}
	return resp.HIT.HITId, nil
}

// pollHIT sweeps one HIT's newly submitted assignments into p.got,
// approving them unless configured off.
func (c *Client) pollHIT(start time.Time, p *pendingHIT) error {
	next := ""
	for {
		req := listAssignmentsRequest{
			HITId:              p.mturkID,
			AssignmentStatuses: []string{assignmentStatusSubmitted, assignmentStatusApproved},
			MaxResults:         100,
			NextToken:          next,
		}
		var resp listAssignmentsResponse
		if err := c.call(opListAssignmentsForHIT, &req, &resp); err != nil {
			return err
		}
		for _, a := range resp.Assignments {
			if p.seen[a.AssignmentId] {
				continue
			}
			p.seen[a.AssignmentId] = true
			answers, err := decodeAnswers(p.h, a.Answer)
			if err != nil {
				return err
			}
			p.got = append(p.got, hit.Assignment{
				ID:          a.AssignmentId,
				HITID:       p.h.ID,
				WorkerID:    a.WorkerId,
				Answers:     answers,
				SubmitHours: a.SubmitTime.Time().Sub(start).Hours(),
			})
			if !c.cfg.SkipApprove && a.AssignmentStatus == assignmentStatusSubmitted {
				if err := c.call(opApproveAssignment, &approveAssignmentRequest{AssignmentId: a.AssignmentId}, nil); err != nil {
					return err
				}
			}
		}
		if resp.NextToken == "" || len(resp.Assignments) == 0 {
			return nil
		}
		next = resp.NextToken
	}
}

// checkExpired decides, for a HIT past its first assignment deadline,
// how many of its missing assignments are truly gone. Assignment
// durations run from each worker's ACCEPT time, which
// ListAssignmentsForHIT never shows for unsubmitted work — so the
// client asks GetHIT for the in-progress count: while workers hold
// pending assignments (late pickup is normal marketplace behavior) the
// HIT is left to run, up to a hard cap of lifetime + one assignment
// duration, past which no legal submission can exist. Zero pending
// past the deadline means the missing assignments were abandoned,
// returned, or never picked up; either way no votes are coming without
// a re-post, so they are reported expired.
func (c *Client) checkExpired(p *pendingHIT) (int, error) {
	missing := p.h.Assignments - len(p.got)
	hardCap := p.postedAt.Add(c.cfg.Lifetime + c.cfg.AssignmentDuration)
	if c.cfg.Clock.Now().Before(hardCap) {
		var resp getHITResponse
		if err := c.call(opGetHIT, &getHITRequest{HITId: p.mturkID}, &resp); err != nil {
			return 0, err
		}
		if resp.HIT.NumberOfAssignmentsPending > 0 {
			return 0, nil // workers still inside their accept windows
		}
	}
	return missing, nil
}

// expireHIT force-expires a timed-out HIT so no straggler submission
// arrives after the client stopped listening; best effort by design —
// the deadline decision is already made.
func (c *Client) expireHIT(mturkID string) {
	past := c.cfg.Clock.Now().Add(-time.Hour)
	_ = c.call(opUpdateExpirationForHIT, &updateExpirationRequest{HITId: mturkID, ExpireAt: epochOf(past)}, nil)
}

// CheckBalance calls GetAccountBalance — the cheapest end-to-end
// credential/endpoint probe, used by the CLI and the sandbox example
// before posting anything that costs money.
func (c *Client) CheckBalance() (string, error) {
	var resp struct {
		AvailableBalance string `json:"AvailableBalance"`
	}
	if err := c.call(opGetAccountBalance, &struct{}{}, &resp); err != nil {
		return "", err
	}
	return resp.AvailableBalance, nil
}

// SendBonus grants a worker a bonus of cents against one of their
// submitted assignments. The UniqueRequestToken derives from
// (worker, assignment) so a retried call never double-pays.
func (c *Client) SendBonus(workerID, assignmentID string, cents int, reason string) error {
	if cents <= 0 {
		return fmt.Errorf("mturk: bonus must be positive, got %d cents", cents)
	}
	req := sendBonusRequest{
		WorkerId:           workerID,
		AssignmentId:       assignmentID,
		BonusAmount:        fmt.Sprintf("%.2f", float64(cents)/100),
		Reason:             reason,
		UniqueRequestToken: "bonus-" + workerID + "-" + assignmentID,
	}
	return c.call(opSendBonus, &req, nil)
}

// CreateWorkerBlock bans a worker from all of the requester's future
// HITs — the real-marketplace arm of the §6 gold-standard screen's
// ban decision. MTurk shows the reason to the worker.
func (c *Client) CreateWorkerBlock(workerID, reason string) error {
	return c.call(opCreateWorkerBlock, &createWorkerBlockRequest{WorkerId: workerID, Reason: reason}, nil)
}

// DeleteWorkerBlock lifts a previous worker block.
func (c *Client) DeleteWorkerBlock(workerID, reason string) error {
	return c.call(opDeleteWorkerBlock, &deleteWorkerBlockRequest{WorkerId: workerID, Reason: reason}, nil)
}

// BlockWorker implements crowd.WorkerModerator over CreateWorkerBlock.
func (c *Client) BlockWorker(workerID, reason string) error {
	return c.CreateWorkerBlock(workerID, reason)
}

// UnblockWorker implements crowd.WorkerModerator over
// DeleteWorkerBlock.
func (c *Client) UnblockWorker(workerID, reason string) error {
	return c.DeleteWorkerBlock(workerID, reason)
}

// BonusWorker implements crowd.WorkerModerator over SendBonus.
func (c *Client) BonusWorker(workerID, assignmentID string, cents int, reason string) error {
	return c.SendBonus(workerID, assignmentID, cents, reason)
}
