package mturk

// The acceptance bar for the live backend: the streaming executor runs
// whole queries through the MTurk client against the in-process fake —
// CreateHIT / poll / approve over signed HTTP, no network — and the
// executor's chunk-size invariance holds even when assignments expire
// and are re-posted with lineage-derived HIT IDs.

import (
	"strings"
	"testing"
	"time"

	"qurk/internal/core"
	"qurk/internal/dataset"
	"qurk/internal/exec"
)

// mturkEngine builds an engine whose marketplace is the live client
// pointed at a fresh fake server.
func mturkEngine(t *testing.T, fcfg FakeConfig, opts core.Options) (*core.Engine, *FakeServer) {
	t.Helper()
	clock := NewFakeClock(t0)
	fcfg.Clock = clock
	fcfg.SubmitDelay = 2 * time.Second
	f := NewFakeServer(fcfg)
	t.Cleanup(f.Close)
	c, err := New(Config{
		Endpoint:           f.URL(),
		AccessKey:          "FAKEKEY",
		SecretKey:          "FAKESECRET",
		Clock:              clock,
		PollInterval:       time.Second,
		AssignmentDuration: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(c, opts)
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 20, Seed: 3})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())
	return e, f
}

const mturkQuery = `SELECT c.name FROM celeb c WHERE isFemale(c.img)`

// TestQueryOverMTurkBackend: a declarative query runs end to end over
// the REST backend; the fake's answer policy decides the rows, every
// submission is approved, and the ledger sees the posted HITs.
func TestQueryOverMTurkBackend(t *testing.T) {
	e, f := mturkEngine(t, FakeConfig{YesPct: 100}, core.Options{})
	out, stats, err := exec.RunQuery(e, mturkQuery)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 20 {
		t.Errorf("YesPct=100 must pass all 20 rows, got %d", out.Len())
	}
	if stats.TotalHITs() != 4 {
		t.Errorf("20 tuples at batch 5 = 4 HITs, got %d", stats.TotalHITs())
	}
	if got := f.RequestCount(opCreateHIT); got != 4 {
		t.Errorf("CreateHIT called %d times, want 4", got)
	}
	if f.ApprovedCount() != 4*5 {
		t.Errorf("approved %d assignments, want 20", f.ApprovedCount())
	}
	if stats.PipelineMakespanHours <= 0 {
		t.Error("pipeline makespan not tracked over the live backend")
	}
}

// TestMTurkChunkInvarianceUnderExpiry is the acceptance criterion:
// with assignments expiring and re-posted, result rows and HIT counts
// are bit-identical across StreamChunkHITs/lookahead settings, because
// HIT identity (the UniqueRequestToken lineage) never depends on
// chunking and the fake derives all worker behavior from it.
func TestMTurkChunkInvarianceUnderExpiry(t *testing.T) {
	run := func(chunk, lookahead int) (string, int, int) {
		e, f := mturkEngine(t, FakeConfig{AbandonPct: 40},
			core.Options{StreamChunkHITs: chunk, StreamLookahead: lookahead})
		out, stats, err := exec.RunQuery(e, mturkQuery)
		if err != nil {
			t.Fatal(err)
		}
		var rows strings.Builder
		for i := 0; i < out.Len(); i++ {
			rows.WriteString(out.Row(i).MustGet("name").String())
			rows.WriteByte('\n')
		}
		// Every re-post is a fresh CreateHIT with a lineage token.
		retried := 0
		for _, tok := range f.CreatedHITs() {
			if strings.Contains(tok, "/x") {
				retried++
			}
		}
		return rows.String(), stats.TotalHITs(), retried
	}
	baseRows, baseHITs, baseRetried := run(8, 2)
	if baseRetried == 0 {
		t.Fatal("AbandonPct = 40 triggered no expiry re-posts; test exercises nothing")
	}
	if baseRows == "" {
		t.Fatal("query returned nothing under expiry")
	}
	for _, cfg := range [][2]int{{1, 2}, {3, 1}, {16, 4}} {
		rows, hits, retried := run(cfg[0], cfg[1])
		if rows != baseRows {
			t.Errorf("chunk=%d lookahead=%d: rows differ from chunk=8 baseline", cfg[0], cfg[1])
		}
		if hits != baseHITs || retried != baseRetried {
			t.Errorf("chunk=%d lookahead=%d: hits/retried %d/%d vs baseline %d/%d",
				cfg[0], cfg[1], hits, retried, baseHITs, baseRetried)
		}
	}
}

// TestMTurkExpirySurfacesInStats: expired assignments reach
// ExecStats.TotalExpired through the live backend exactly as through
// the simulator.
func TestMTurkExpirySurfacesInStats(t *testing.T) {
	e, _ := mturkEngine(t, FakeConfig{AbandonPct: 40}, core.Options{})
	_, stats, err := exec.RunQuery(e, mturkQuery)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalExpired() == 0 {
		t.Error("expired assignments did not surface in Stats")
	}
}
