// Package mturk is the live crowd backend: a crowd.Marketplace (and
// crowd.StreamMarketplace) implementation that speaks the Amazon
// Mechanical Turk Requester REST API, so the same declarative queries
// that run against the deterministic simulator post real HITs to real
// workers — the platform independence the paper's architecture promises
// (§1, §2.5: operators "compile into HITs posted to Mechanical Turk").
//
// The client renders each hit.Group into HTMLQuestion XML, posts one
// marketplace HIT per hit.HIT via CreateHIT, polls submissions back
// with ListAssignmentsForHIT, decodes QuestionFormAnswers XML into
// hit.Assignment votes, and approves submitted work — all through the
// MTurkRequesterServiceV20170117 AWS-JSON protocol with SigV4 request
// signing, implemented here with no dependencies beyond the standard
// library. Any compatible endpoint works: the production marketplace,
// the requester sandbox (the default), or the in-process FakeServer
// this package ships for recorded-HTTP tests that never touch the
// network.
//
// # Timeout policy
//
// A live marketplace introduces an outcome the simulator historically
// had no notion of: a worker accepts an assignment and never submits
// it. The client gives every assignment a deadline
// (Config.AssignmentDuration); assignments still missing when it
// passes are reported per HIT in crowd.RunResult.Expired, with the
// completed subset of votes returned as usual. The streaming executor
// composes this with its retry machinery: expired HITs are re-posted
// with lineage-derived IDs and only the missing assignment count,
// bounded by Options.ExpiredRetries (see internal/exec).
//
// # Determinism contract
//
// Real crowds are not deterministic, so the bit-identical guarantee the
// simulator offers obviously cannot hold here. What the client does
// guarantee — and what keeps the executor's chunk-size invariance
// meaningful — is that HIT identity never depends on chunking: each
// marketplace HIT carries the engine's HIT ID as its
// UniqueRequestToken, so re-posting the same logical HIT (retries,
// crashed re-runs) is idempotent on MTurk's side, and the FakeServer
// derives its worker behavior purely from that token, making recorded
// tests exactly as invariant as simulator runs.
package mturk
