package mturk

// FakeServer is an in-process MTurk-compatible endpoint for
// recorded-HTTP tests: it serves the same aws-json operations the real
// requester API does, verifies every request's SigV4 signature against
// its configured credentials, and fabricates deterministic worker
// behavior — which workers pick up a HIT, what they answer, when they
// submit, and who abandons — purely from hashes of the HIT's
// UniqueRequestToken. Because that token is the engine's lineage-stable
// HIT ID, fake runs are exactly as invariant across
// StreamChunkHITs/lookahead settings as simulator runs, which is what
// lets the executor's chunk-invariance contract be asserted against
// the live-backend code path with zero network access.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"
)

// FakeConfig parametrizes the fake marketplace.
type FakeConfig struct {
	// AccessKey/SecretKey are the credentials requests must be signed
	// with (defaults "FAKEKEY"/"FAKESECRET").
	AccessKey, SecretKey string
	// Region verifies the signing scope (default us-east-1).
	Region string
	// Clock supplies CreationTime/SubmitTime and gates when fabricated
	// submissions become visible to ListAssignmentsForHIT (default wall
	// clock; tests share a FakeClock with the client).
	Clock Clock
	// SubmitDelay is the base delay before the first fabricated
	// submission, with later workers arriving at multiples of it
	// (default 30s).
	SubmitDelay time.Duration
	// AbandonPct is the percentage (0–100) of assignments that are
	// accepted but never submitted, drawn per (HIT token, worker) hash —
	// the knob that exercises the client's assignment-timeout policy.
	AbandonPct int
	// YesPct is the yes-rate (0–100) for filter/pair questions answered
	// by the built-in policy, drawn per (token, question, worker) hash.
	// Zero means the default 70; pass a negative value for all-no
	// workers.
	YesPct int
	// Respond overrides the built-in answer policy: it receives the
	// question's manifest entry and the worker ordinal and returns the
	// FreeText convention of answers.go. Return ok=false to fall back.
	Respond func(q ManifestQuestion, worker int) (string, bool)
	// FailFirst injects transient faults: the first N calls of each
	// named operation (e.g. "CreateHIT") are answered with HTTP 500
	// ServiceFault before the operation starts serving normally. The
	// client's bounded retry should absorb counts below its attempt
	// budget; larger counts surface as RequestError — both paths are
	// what crash-recovery and retry tests exercise end to end.
	FailFirst map[string]int
	// ThrottleEveryN, when positive, answers every Nth API call
	// (counted across all operations, after signature verification)
	// with HTTP 400 ThrottlingException — the rate-limit signal the
	// client backs off from with a longer cool-off.
	ThrottleEveryN int
	// DropEveryN, when positive, kills the TCP connection of every Nth
	// API call mid-response-body: the operation is fully processed
	// server-side first, then the response is truncated — the nastiest
	// network failure shape, where the client cannot know whether its
	// request took effect and must retry into the idempotency
	// machinery (UniqueRequestToken re-attach for CreateHIT/SendBonus,
	// natural idempotence for the rest). Counted on the same
	// all-operations counter as ThrottleEveryN.
	DropEveryN int
}

// fakeAssignment is one fabricated worker pass.
type fakeAssignment struct {
	id        string
	workerID  string
	answerXML string
	acceptAt  time.Time
	submitAt  time.Time
	abandoned bool
	approved  bool
}

// fakeHIT is one posted HIT's state.
type fakeHIT struct {
	id       string
	token    string
	manifest *Manifest
	max      int
	created  time.Time
	expireAt time.Time
	asn      []fakeAssignment
}

// RecordedRequest is one API call the fake served, kept for golden
// request/response fixture tests.
type RecordedRequest struct {
	// Op is the operation name from X-Amz-Target.
	Op string
	// Body is the raw JSON payload.
	Body string
}

// FakeServer is the in-process endpoint. Create with NewFakeServer,
// point a Client at URL(), and Close when done.
type FakeServer struct {
	cfg   FakeConfig
	creds credentials
	srv   *httptest.Server

	mu       sync.Mutex
	hits     map[string]*fakeHIT // by MTurk HIT ID
	byToken  map[string]string   // UniqueRequestToken → MTurk HIT ID
	requests []RecordedRequest
	failLeft map[string]int // remaining FailFirst faults per op
	callNum  int            // total calls served (Throttle/DropEveryN counter)

	bonuses    []BonusGrant      // recorded SendBonus grants, in order
	bonusToken map[string]bool   // UniqueRequestToken dedup for SendBonus
	blocked    map[string]string // workerID → block reason
}

// BonusGrant is one SendBonus the fake recorded, for test assertions
// on what the client actually paid.
type BonusGrant struct {
	// WorkerID is the bonused worker.
	WorkerID string
	// AssignmentID is the assignment the bonus was granted against.
	AssignmentID string
	// Amount is the wire-format dollar amount (e.g. "0.25").
	Amount string
	// Reason is the message shown to the worker.
	Reason string
}

// NewFakeServer starts the fake endpoint.
func NewFakeServer(cfg FakeConfig) *FakeServer {
	if cfg.AccessKey == "" {
		cfg.AccessKey = "FAKEKEY"
	}
	if cfg.SecretKey == "" {
		cfg.SecretKey = "FAKESECRET"
	}
	if cfg.Region == "" {
		cfg.Region = "us-east-1"
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	if cfg.SubmitDelay <= 0 {
		cfg.SubmitDelay = 30 * time.Second
	}
	if cfg.YesPct == 0 {
		cfg.YesPct = 70
	}
	if cfg.YesPct < 0 {
		cfg.YesPct = 0
	}
	f := &FakeServer{
		cfg:        cfg,
		creds:      credentials{accessKey: cfg.AccessKey, secretKey: cfg.SecretKey},
		hits:       map[string]*fakeHIT{},
		byToken:    map[string]string{},
		failLeft:   map[string]int{},
		bonusToken: map[string]bool{},
		blocked:    map[string]string{},
	}
	for op, n := range cfg.FailFirst {
		f.failLeft[op] = n
	}
	f.srv = httptest.NewServer(http.HandlerFunc(f.handle))
	return f
}

// URL returns the endpoint base URL for Config.Endpoint.
func (f *FakeServer) URL() string { return f.srv.URL }

// Close shuts the server down.
func (f *FakeServer) Close() { f.srv.Close() }

// Requests returns a copy of every recorded API call so far.
func (f *FakeServer) Requests() []RecordedRequest {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]RecordedRequest(nil), f.requests...)
}

// RequestCount counts recorded calls of one operation.
func (f *FakeServer) RequestCount(op string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, r := range f.requests {
		if r.Op == op {
			n++
		}
	}
	return n
}

// CreatedHITs returns the UniqueRequestTokens of every HIT posted, in
// no particular order.
func (f *FakeServer) CreatedHITs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.byToken))
	for tok := range f.byToken {
		out = append(out, tok)
	}
	return out
}

// ApprovedCount counts approved assignments across all HITs.
func (f *FakeServer) ApprovedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, h := range f.hits {
		for i := range h.asn {
			if h.asn[i].approved {
				n++
			}
		}
	}
	return n
}

func (f *FakeServer) fail(w http.ResponseWriter, status int, typ, msg string) {
	w.Header().Set("Content-Type", contentTypeAWSJSON)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Type: typ, Message: msg})
}

func (f *FakeServer) handle(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		f.fail(w, http.StatusBadRequest, "RequestError", err.Error())
		return
	}
	target := r.Header.Get("X-Amz-Target")
	op := strings.TrimPrefix(target, targetPrefix)
	if op == target {
		f.fail(w, http.StatusBadRequest, "UnknownOperationException", "bad X-Amz-Target "+target)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != contentTypeAWSJSON {
		f.fail(w, http.StatusBadRequest, "RequestError", "bad Content-Type "+ct)
		return
	}
	if err := verifySignature(r, body, f.creds, f.cfg.Region); err != nil {
		f.fail(w, http.StatusForbidden, "AccessDeniedException", err.Error())
		return
	}
	f.mu.Lock()
	f.requests = append(f.requests, RecordedRequest{Op: op, Body: string(body)})
	f.callNum++
	// Injected transient faults (FakeConfig.FailFirst/ThrottleEveryN):
	// decided after signature verification and request recording so
	// faulted calls still show up in Requests(), like a real endpoint's
	// access log would.
	if left := f.failLeft[op]; left > 0 {
		f.failLeft[op] = left - 1
		f.mu.Unlock()
		f.fail(w, http.StatusInternalServerError, "ServiceFault", fmt.Sprintf("injected fault: %s", op))
		return
	}
	if n := f.cfg.ThrottleEveryN; n > 0 && f.callNum%n == 0 {
		f.mu.Unlock()
		f.fail(w, http.StatusBadRequest, "ThrottlingException", "injected throttle")
		return
	}
	// The connection-drop fault triggers AFTER the operation is served
	// (decided here, applied at response-write time below): the request
	// took effect server-side but the caller never learns, which is
	// exactly the ambiguity the client's idempotency machinery exists
	// for.
	drop := f.cfg.DropEveryN > 0 && f.callNum%f.cfg.DropEveryN == 0
	f.mu.Unlock()

	var out any
	var opErr error
	switch op {
	case opCreateHIT:
		out, opErr = f.createHIT(body)
	case opGetHIT:
		out, opErr = f.getHIT(body)
	case opListAssignmentsForHIT:
		out, opErr = f.listAssignments(body)
	case opApproveAssignment:
		out, opErr = f.approveAssignment(body)
	case opUpdateExpirationForHIT:
		out, opErr = f.updateExpiration(body)
	case opGetAccountBalance:
		out = map[string]string{"AvailableBalance": "10000.00"}
	case opSendBonus:
		out, opErr = f.sendBonus(body)
	case opCreateWorkerBlock:
		out, opErr = f.createWorkerBlock(body)
	case opDeleteWorkerBlock:
		out, opErr = f.deleteWorkerBlock(body)
	default:
		f.fail(w, http.StatusBadRequest, "UnknownOperationException", op)
		return
	}
	if opErr != nil {
		f.fail(w, http.StatusBadRequest, "RequestError", opErr.Error())
		return
	}
	if drop {
		f.dropConnection(w, out)
		return
	}
	w.Header().Set("Content-Type", contentTypeAWSJSON)
	_ = json.NewEncoder(w).Encode(out)
}

// dropConnection truncates the response mid-body and severs the TCP
// connection: it advertises the full Content-Length, writes half the
// payload, and closes the raw conn so the client sees an unexpected
// EOF instead of a clean HTTP error.
func (f *FakeServer) dropConnection(w http.ResponseWriter, out any) {
	payload, err := json.Marshal(out)
	if err != nil {
		payload = []byte("{}")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		// No raw-conn access (shouldn't happen under httptest's
		// default server); degrade to dropping the whole response.
		panic("fake: response writer does not support hijacking")
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(buf, "HTTP/1.1 200 OK\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n", contentTypeAWSJSON, len(payload))
	buf.Write(payload[:len(payload)/2])
	buf.Flush()
}

// fakeHash gives the deterministic stream all worker behavior draws
// from: everything depends only on the strings hashed, never on call
// order.
func fakeHash(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func (f *FakeServer) createHIT(body []byte) (any, error) {
	var req createHITRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.Question == "" || req.MaxAssignments <= 0 {
		return nil, fmt.Errorf("CreateHIT: missing Question or MaxAssignments")
	}
	if req.Reward == "" {
		return nil, fmt.Errorf("CreateHIT: missing Reward")
	}
	m, err := parseManifest(req.Question)
	if err != nil {
		return nil, err
	}
	token := req.UniqueRequestToken
	if token == "" {
		token = m.HIT
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if id, dup := f.byToken[token]; dup {
		// MTurk's idempotency contract: the same token returns the
		// existing HIT instead of double-posting.
		return &createHITResponse{HIT: f.infoLocked(f.hits[id])}, nil
	}
	now := f.cfg.Clock.Now()
	id := fmt.Sprintf("3FAKE%016X", fakeHash("hitid", token))
	fh := &fakeHIT{
		id:       id,
		token:    token,
		manifest: m,
		max:      req.MaxAssignments,
		created:  now,
		expireAt: now.Add(time.Duration(req.LifetimeInSeconds) * time.Second),
	}
	// Fabricate every assignment up front, deterministically from the
	// token: worker identity, abandonment, answers, and submit time.
	for k := 0; k < fh.max; k++ {
		worker := fmt.Sprintf("FW%08X", fakeHash("worker", token, fmt.Sprint(k))&0xffffffff)
		abandoned := f.cfg.AbandonPct > 0 && int(fakeHash("abandon", token, fmt.Sprint(k))%100) < f.cfg.AbandonPct
		jitter := time.Duration(fakeHash("delay", token, fmt.Sprint(k))%1000) * f.cfg.SubmitDelay / 1000
		submitAt := now.Add(f.cfg.SubmitDelay*time.Duration(k+1) + jitter)
		fa := fakeAssignment{
			id:        fmt.Sprintf("3ASN%016X", fakeHash("asn", token, fmt.Sprint(k))),
			workerID:  worker,
			acceptAt:  submitAt.Add(-f.cfg.SubmitDelay / 2),
			submitAt:  submitAt,
			abandoned: abandoned,
		}
		if !abandoned {
			xml, err := f.answerXML(m, token, k)
			if err != nil {
				return nil, err
			}
			fa.answerXML = xml
		}
		fh.asn = append(fh.asn, fa)
	}
	f.hits[id] = fh
	f.byToken[token] = id
	return &createHITResponse{HIT: f.infoLocked(fh)}, nil
}

func (f *FakeServer) infoLocked(fh *fakeHIT) hitInfo {
	now := f.cfg.Clock.Now()
	completed, pending := 0, 0
	for i := range fh.asn {
		a := &fh.asn[i]
		if a.abandoned {
			// Abandoned assignments count as returned: they occupy no
			// accept window, matching a worker who grabbed the HIT and
			// walked away.
			continue
		}
		switch {
		case !a.submitAt.After(now):
			completed++
		case !a.acceptAt.After(now) && !a.acceptAt.After(fh.expireAt):
			pending++
		}
	}
	return hitInfo{
		HITId:                        fh.id,
		HITStatus:                    "Assignable",
		MaxAssignments:               fh.max,
		CreationTime:                 epochOf(fh.created),
		Expiration:                   epochOf(fh.expireAt),
		NumberOfAssignmentsCompleted: completed,
		NumberOfAssignmentsPending:   pending,
		NumberOfAssignmentsAvailable: fh.max - completed - pending,
	}
}

// answerXML fabricates one worker's submission from the manifest.
func (f *FakeServer) answerXML(m *Manifest, token string, worker int) (string, error) {
	env := questionFormAnswers{XMLNS: questionFormAnswersXMLNS}
	for _, q := range m.Questions {
		texts, err := f.answerTexts(q, token, worker)
		if err != nil {
			return "", err
		}
		for id, text := range texts {
			env.Answers = append(env.Answers, questionAnswer{QuestionIdentifier: id, FreeText: text})
		}
	}
	// Map iteration order is random; fix it for stable golden fixtures.
	sortAnswers(env.Answers)
	out, err := xmlMarshal(env)
	if err != nil {
		return "", err
	}
	return out, nil
}

// answerTexts produces the FreeText payloads for one question.
func (f *FakeServer) answerTexts(q ManifestQuestion, token string, worker int) (map[string]string, error) {
	if f.cfg.Respond != nil {
		if text, ok := f.cfg.Respond(q, worker); ok {
			if q.Kind == "generative" {
				// Convention: Respond returns "field=value|field=value".
				out := map[string]string{}
				for _, kv := range strings.Split(text, "|") {
					name, val, found := strings.Cut(kv, "=")
					if !found {
						return nil, fmt.Errorf("fake Respond: bad generative payload %q", text)
					}
					out[q.ID+"."+name] = val
				}
				return out, nil
			}
			return map[string]string{q.ID: text}, nil
		}
	}
	yes := func(salt string) bool {
		return int(fakeHash("ans", token, q.ID, salt, fmt.Sprint(worker))%100) < f.cfg.YesPct
	}
	switch q.Kind {
	case "filter", "join-pair":
		return map[string]string{q.ID: boolText(yes(""))}, nil
	case "generative":
		out := map[string]string{}
		for _, field := range q.Fields {
			out[q.ID+"."+field] = fmt.Sprintf("v%d", fakeHash("gen", token, q.ID, field, fmt.Sprint(worker))%3)
		}
		return out, nil
	case "join-grid":
		var cells []string
		for l := 0; l < q.Left; l++ {
			for r := 0; r < q.Right; r++ {
				if yes(fmt.Sprintf("%d,%d", l, r)) {
					cells = append(cells, fmt.Sprintf("%d,%d", l, r))
				}
			}
		}
		return map[string]string{q.ID: strings.Join(cells, ";")}, nil
	case "compare":
		n := len(q.Subjects)
		order := make([]string, n)
		perm := permOf(fakeHash("cmp", token, q.ID, fmt.Sprint(worker)), n)
		for i, idx := range perm {
			order[i] = fmt.Sprint(idx)
		}
		return map[string]string{q.ID: strings.Join(order, ",")}, nil
	case "rate":
		scale := q.Scale
		if scale < 2 {
			scale = 7
		}
		return map[string]string{q.ID: fmt.Sprint(1 + fakeHash("rate", token, q.ID, fmt.Sprint(worker))%uint64(scale))}, nil
	default:
		return nil, fmt.Errorf("fake: no answer policy for kind %q", q.Kind)
	}
}

// permOf derives a permutation of [0,n) from a hash seed (Fisher–Yates
// over a splitmix-style stream).
func permOf(seed uint64, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	s := seed
	for i := n - 1; i > 0; i-- {
		s = s*6364136223846793005 + 1442695040888963407
		j := int((s >> 33) % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func (f *FakeServer) getHIT(body []byte) (any, error) {
	var req getHITRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	fh, ok := f.hits[req.HITId]
	if !ok {
		return nil, fmt.Errorf("GetHIT: unknown HIT %s", req.HITId)
	}
	return &getHITResponse{HIT: f.infoLocked(fh)}, nil
}

func (f *FakeServer) listAssignments(body []byte) (any, error) {
	var req listAssignmentsRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	fh, ok := f.hits[req.HITId]
	if !ok {
		return nil, fmt.Errorf("ListAssignmentsForHIT: unknown HIT %s", req.HITId)
	}
	now := f.cfg.Clock.Now()
	resp := &listAssignmentsResponse{Assignments: []assignmentInfo{}}
	for i := range fh.asn {
		a := &fh.asn[i]
		if a.abandoned || a.submitAt.After(now) || a.submitAt.After(fh.expireAt) {
			continue
		}
		status := assignmentStatusSubmitted
		if a.approved {
			status = assignmentStatusApproved
		}
		resp.Assignments = append(resp.Assignments, assignmentInfo{
			AssignmentId:     a.id,
			WorkerId:         a.workerID,
			HITId:            fh.id,
			AssignmentStatus: status,
			AcceptTime:       epochOf(a.acceptAt),
			SubmitTime:       epochOf(a.submitAt),
			Answer:           a.answerXML,
		})
	}
	resp.NumResults = len(resp.Assignments)
	return resp, nil
}

func (f *FakeServer) approveAssignment(body []byte) (any, error) {
	var req approveAssignmentRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, fh := range f.hits {
		for i := range fh.asn {
			if fh.asn[i].id == req.AssignmentId {
				fh.asn[i].approved = true
				return map[string]any{}, nil
			}
		}
	}
	return nil, fmt.Errorf("ApproveAssignment: unknown assignment %s", req.AssignmentId)
}

// sendBonus records a bonus grant after validating the assignment
// belongs to the named worker; the UniqueRequestToken dedups retries
// so a re-sent grant is acknowledged without paying twice.
func (f *FakeServer) sendBonus(body []byte) (any, error) {
	var req sendBonusRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.WorkerId == "" || req.AssignmentId == "" || req.BonusAmount == "" {
		return nil, fmt.Errorf("SendBonus: missing WorkerId, AssignmentId, or BonusAmount")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if req.UniqueRequestToken != "" && f.bonusToken[req.UniqueRequestToken] {
		return map[string]any{}, nil
	}
	found := false
	for _, fh := range f.hits {
		for i := range fh.asn {
			if fh.asn[i].id == req.AssignmentId && fh.asn[i].workerID == req.WorkerId {
				found = true
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("SendBonus: assignment %s does not belong to worker %s", req.AssignmentId, req.WorkerId)
	}
	if req.UniqueRequestToken != "" {
		f.bonusToken[req.UniqueRequestToken] = true
	}
	f.bonuses = append(f.bonuses, BonusGrant{
		WorkerID:     req.WorkerId,
		AssignmentID: req.AssignmentId,
		Amount:       req.BonusAmount,
		Reason:       req.Reason,
	})
	return map[string]any{}, nil
}

// createWorkerBlock records the ban. Like the real marketplace, a
// block only affects which workers pick up FUTURE HITs; the fake's
// fabricated assignments are pre-drawn per token, so existing and
// later fabrications are unchanged — tests assert on BlockedWorkers,
// not on answer streams.
func (f *FakeServer) createWorkerBlock(body []byte) (any, error) {
	var req createWorkerBlockRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.WorkerId == "" || req.Reason == "" {
		return nil, fmt.Errorf("CreateWorkerBlock: missing WorkerId or Reason")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocked[req.WorkerId] = req.Reason
	return map[string]any{}, nil
}

// deleteWorkerBlock lifts a recorded ban; unblocking an unblocked
// worker succeeds, matching the real endpoint.
func (f *FakeServer) deleteWorkerBlock(body []byte) (any, error) {
	var req deleteWorkerBlockRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.WorkerId == "" {
		return nil, fmt.Errorf("DeleteWorkerBlock: missing WorkerId")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.blocked, req.WorkerId)
	return map[string]any{}, nil
}

// Bonuses returns every recorded bonus grant, in arrival order.
func (f *FakeServer) Bonuses() []BonusGrant {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]BonusGrant(nil), f.bonuses...)
}

// BlockedWorkers returns the currently blocked worker IDs, sorted.
func (f *FakeServer) BlockedWorkers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.blocked))
	for w := range f.blocked {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

func (f *FakeServer) updateExpiration(body []byte) (any, error) {
	var req updateExpirationRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	fh, ok := f.hits[req.HITId]
	if !ok {
		return nil, fmt.Errorf("UpdateExpirationForHIT: unknown HIT %s", req.HITId)
	}
	fh.expireAt = req.ExpireAt.Time()
	return map[string]any{}, nil
}
