package mturk

// Round-trip and golden tests for the two XML codecs: HTMLQuestion
// rendering (with the embedded manifest) and QuestionFormAnswers.
// Golden files live in testdata/ and refresh with -update.

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"qurk/internal/hit"
	"qurk/internal/relation"
)

var update = flag.Bool("update", false, "rewrite golden files")

var celebSchema = relation.MustSchema(
	relation.Column{Name: "name", Kind: relation.KindText},
	relation.Column{Name: "img", Kind: relation.KindURL},
)

func celebTuple(name string) relation.Tuple {
	return relation.MustTuple(celebSchema, relation.Text(name), relation.URL("http://img/"+name+".jpg"))
}

// sampleHIT covers every question kind in one HIT-group worth of HITs.
func sampleHITs() []*hit.HIT {
	return []*hit.HIT{
		{
			ID: "g@q/hit0001", GroupID: "g@q", Kind: hit.FilterQ, Assignments: 3, RewardCents: 1,
			Questions: []hit.Question{
				{ID: "g@q/t00000", Kind: hit.FilterQ, Task: "isFemale", Tuple: celebTuple("alice")},
				{ID: "g@q/t00001", Kind: hit.FilterQ, Task: "isFemale", Tuple: celebTuple("bob")},
			},
		},
		{
			ID: "g@q/hit0002", GroupID: "g@q", Kind: hit.GenerativeQ, Assignments: 2, RewardCents: 1,
			Questions: []hit.Question{
				{ID: "g@q/t00002", Kind: hit.GenerativeQ, Task: "features", Tuple: celebTuple("carol"), Fields: []string{"gender", "hair"}},
			},
		},
		{
			ID: "g@q/hit0003", GroupID: "g@q", Kind: hit.JoinGridQ, Assignments: 2, RewardCents: 1,
			Questions: []hit.Question{
				{ID: "g@q/t00003", Kind: hit.JoinGridQ, Task: "samePerson",
					LeftItems:  []relation.Tuple{celebTuple("a"), celebTuple("b")},
					RightItems: []relation.Tuple{celebTuple("c"), celebTuple("d")}},
			},
		},
		{
			ID: "g@q/hit0004", GroupID: "g@q", Kind: hit.CompareQ, Assignments: 2, RewardCents: 1,
			Questions: []hit.Question{
				{ID: "g@q/t00004", Kind: hit.CompareQ, Task: "sorter",
					Items: []relation.Tuple{celebTuple("x"), celebTuple("y"), celebTuple("z")}},
			},
		},
		{
			ID: "g@q/hit0005", GroupID: "g@q", Kind: hit.RateQ, Assignments: 2, RewardCents: 1,
			Questions: []hit.Question{
				{ID: "g@q/t00005", Kind: hit.RateQ, Task: "sorter", Tuple: celebTuple("w"), Scale: 7},
			},
		},
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from golden; run with -update and review the diff.\n--- got ---\n%s", name, got)
	}
}

// TestQuestionXMLGolden pins the HTMLQuestion payload (envelope, form,
// manifest) for the filter HIT.
func TestQuestionXMLGolden(t *testing.T) {
	xml, err := buildQuestionXML(sampleHITs()[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(xml, "<HTMLQuestion xmlns=") || !strings.Contains(xml, "<![CDATA[") {
		t.Fatalf("not an HTMLQuestion envelope:\n%s", xml)
	}
	checkGolden(t, "question_filter.golden.xml", xml)
}

// TestManifestRoundTrip: every kind's manifest survives render → parse.
func TestManifestRoundTrip(t *testing.T) {
	for _, h := range sampleHITs() {
		xml, err := buildQuestionXML(h, nil)
		if err != nil {
			t.Fatalf("%s: %v", h.ID, err)
		}
		m, err := parseManifest(xml)
		if err != nil {
			t.Fatalf("%s: %v", h.ID, err)
		}
		if m.HIT != h.ID || m.Group != h.GroupID {
			t.Errorf("%s: manifest ids %q/%q", h.ID, m.HIT, m.Group)
		}
		if len(m.Questions) != len(h.Questions) {
			t.Fatalf("%s: %d manifest questions, want %d", h.ID, len(m.Questions), len(h.Questions))
		}
		for i, mq := range m.Questions {
			q := &h.Questions[i]
			if mq.ID != q.ID || mq.Kind != q.Kind.String() || mq.Task != q.Task {
				t.Errorf("%s q%d: manifest %+v does not match question", h.ID, i, mq)
			}
		}
	}
}

// TestManifestSurvivesCDATAHostileHTML: a custom renderer emitting
// "]]>" cannot break the envelope.
func TestManifestSurvivesCDATAHostileHTML(t *testing.T) {
	h := sampleHITs()[0]
	xml, err := buildQuestionXML(h, func(*hit.HIT) (string, error) {
		return "<b>tricky ]]> content</b>", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.ReplaceAll(xml, "]]]]><![CDATA[>", ""), "tricky ]]> content<![CDATA[") {
		t.Error("CDATA terminator not escaped")
	}
	if _, err := parseManifest(xml); err != nil {
		t.Errorf("manifest unreadable after CDATA escaping: %v", err)
	}
}

// TestAnswersRoundTrip: encode → decode is the identity for every
// question kind.
func TestAnswersRoundTrip(t *testing.T) {
	answers := map[string][]hit.Answer{
		"g@q/hit0001": {
			{QuestionID: "g@q/t00000", Bool: true},
			{QuestionID: "g@q/t00001", Bool: false},
		},
		"g@q/hit0002": {
			{QuestionID: "g@q/t00002", Fields: map[string]string{"gender": "female", "hair": "brown"}},
		},
		"g@q/hit0003": {
			{QuestionID: "g@q/t00003", Pairs: [][2]int{{0, 1}, {1, 0}}},
		},
		"g@q/hit0004": {
			{QuestionID: "g@q/t00004", Order: []int{2, 0, 1}},
		},
		"g@q/hit0005": {
			{QuestionID: "g@q/t00005", Rating: 5},
		},
	}
	for _, h := range sampleHITs() {
		in := answers[h.ID]
		xml, err := encodeAnswers(h, in)
		if err != nil {
			t.Fatalf("%s: %v", h.ID, err)
		}
		out, err := decodeAnswers(h, xml)
		if err != nil {
			t.Fatalf("%s: %v", h.ID, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%s: round trip drifted:\n in  %+v\n out %+v", h.ID, in, out)
		}
	}
}

// TestAnswersGolden pins the QuestionFormAnswers wire format.
func TestAnswersGolden(t *testing.T) {
	h := sampleHITs()[0]
	xml, err := encodeAnswers(h, []hit.Answer{
		{QuestionID: "g@q/t00000", Bool: true},
		{QuestionID: "g@q/t00001", Bool: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "answers_filter.golden.xml", xml)
}

// TestDecodeAnswersRejectsGarbage: malformed grid cells, orders, and
// ratings fail loudly instead of resolving to silent zero votes.
func TestDecodeAnswersRejectsGarbage(t *testing.T) {
	grid := sampleHITs()[2]
	bad := []string{
		`<QuestionFormAnswers><Answer><QuestionIdentifier>g@q/t00003</QuestionIdentifier><FreeText>9,9</FreeText></Answer></QuestionFormAnswers>`,
		`<QuestionFormAnswers><Answer><QuestionIdentifier>g@q/t00003</QuestionIdentifier><FreeText>zap</FreeText></Answer></QuestionFormAnswers>`,
	}
	for _, xml := range bad {
		if _, err := decodeAnswers(grid, xml); err == nil {
			t.Errorf("garbage accepted: %s", xml)
		}
	}
	rate := sampleHITs()[4]
	if _, err := decodeAnswers(rate, `<QuestionFormAnswers><Answer><QuestionIdentifier>g@q/t00005</QuestionIdentifier><FreeText>11</FreeText></Answer></QuestionFormAnswers>`); err == nil {
		t.Error("out-of-scale rating accepted")
	}
}
