package mturk

// Minimal AWS Signature Version 4 request signing — just enough for the
// MTurk requester API's aws-json POST shape, implemented on the
// standard library so the engine takes no SDK dependency. The canonical
// request covers host, x-amz-date, x-amz-target, and (when present)
// x-amz-security-token; MTurk accepts this header subset.

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// signingService is the service name MTurk registers with SigV4.
const signingService = "mturk-requester"

// credentials is one set of AWS signing inputs.
type credentials struct {
	accessKey    string
	secretKey    string
	sessionToken string
}

// hmacSHA256 is one chain link of the SigV4 key derivation.
func hmacSHA256(key []byte, msg string) []byte {
	m := hmac.New(sha256.New, key)
	m.Write([]byte(msg))
	return m.Sum(nil)
}

func hexSHA256(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// signRequest adds X-Amz-Date (and X-Amz-Security-Token when set) plus
// the SigV4 Authorization header to req. body must be the exact request
// payload; now is the signing time (injected so tests and fake clocks
// stay deterministic).
func signRequest(req *http.Request, body []byte, creds credentials, region string, now time.Time) {
	amzDate := now.UTC().Format("20060102T150405Z")
	dateStamp := now.UTC().Format("20060102")
	req.Header.Set("X-Amz-Date", amzDate)
	if creds.sessionToken != "" {
		req.Header.Set("X-Amz-Security-Token", creds.sessionToken)
	}

	// Canonical headers: lowercase names, sorted, trimmed values.
	headerNames := []string{"host", "x-amz-date", "x-amz-target"}
	if creds.sessionToken != "" {
		headerNames = append(headerNames, "x-amz-security-token")
	}
	sort.Strings(headerNames)
	var canonHeaders strings.Builder
	for _, name := range headerNames {
		v := req.Header.Get(name)
		if name == "host" {
			v = req.Host
			if v == "" {
				v = req.URL.Host
			}
		}
		fmt.Fprintf(&canonHeaders, "%s:%s\n", name, strings.TrimSpace(v))
	}
	signedHeaders := strings.Join(headerNames, ";")

	path := req.URL.EscapedPath()
	if path == "" {
		path = "/"
	}
	canonicalRequest := strings.Join([]string{
		"POST",
		path,
		req.URL.RawQuery,
		canonHeaders.String(),
		signedHeaders,
		hexSHA256(body),
	}, "\n")

	scope := fmt.Sprintf("%s/%s/%s/aws4_request", dateStamp, region, signingService)
	stringToSign := strings.Join([]string{
		"AWS4-HMAC-SHA256",
		amzDate,
		scope,
		hexSHA256([]byte(canonicalRequest)),
	}, "\n")

	key := hmacSHA256([]byte("AWS4"+creds.secretKey), dateStamp)
	key = hmacSHA256(key, region)
	key = hmacSHA256(key, signingService)
	key = hmacSHA256(key, "aws4_request")
	signature := hex.EncodeToString(hmacSHA256(key, stringToSign))

	req.Header.Set("Authorization", fmt.Sprintf(
		"AWS4-HMAC-SHA256 Credential=%s/%s, SignedHeaders=%s, Signature=%s",
		creds.accessKey, scope, signedHeaders, signature))
}

// verifySignature recomputes a request's SigV4 signature from the fake
// server's known credentials and compares it to the Authorization
// header — the fidelity check that keeps the in-process fake honest
// about what the real endpoint would accept. It returns a descriptive
// error on any mismatch.
func verifySignature(req *http.Request, body []byte, creds credentials, region string) error {
	auth := req.Header.Get("Authorization")
	if auth == "" {
		return fmt.Errorf("mturk: request is unsigned (no Authorization header)")
	}
	amzDate := req.Header.Get("X-Amz-Date")
	if amzDate == "" {
		return fmt.Errorf("mturk: request missing X-Amz-Date")
	}
	now, err := time.Parse("20060102T150405Z", amzDate)
	if err != nil {
		return fmt.Errorf("mturk: bad X-Amz-Date %q: %w", amzDate, err)
	}
	expect := req.Clone(req.Context())
	expect.Header.Del("Authorization")
	if tok := req.Header.Get("X-Amz-Security-Token"); tok != "" {
		creds.sessionToken = tok
	}
	signRequest(expect, body, creds, region, now)
	if got, want := auth, expect.Header.Get("Authorization"); got != want {
		return fmt.Errorf("mturk: signature mismatch:\n  got  %s\n  want %s", got, want)
	}
	return nil
}
