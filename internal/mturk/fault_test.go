package mturk

// Transient-fault injection: the fake endpoint can answer with HTTP
// 500 ServiceFaults and ThrottlingExceptions, which exercises api.go's
// bounded retry (with jitter and the longer throttle cool-off) end to
// end over signed HTTP — faults below the attempt budget are invisible
// to the query, faults beyond it surface as RequestError.

import (
	"errors"
	"testing"
	"time"

	"qurk/internal/core"
	"qurk/internal/exec"
)

// runRows drains a query to a row-string fingerprint.
func runRows(t *testing.T, e *core.Engine) (string, int) {
	t.Helper()
	out, stats, err := exec.RunQuery(e, mturkQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows := ""
	for i := 0; i < out.Len(); i++ {
		rows += out.Row(i).MustGet("name").String() + "\n"
	}
	return rows, stats.TotalHITs()
}

// TestFaultsBelowRetryBudgetAreInvisible: 500s on the first CreateHIT
// calls are retried away — same rows, same HIT count as a clean run,
// and the extra requests show up in the endpoint's log.
func TestFaultsBelowRetryBudgetAreInvisible(t *testing.T) {
	clean, f0 := mturkEngine(t, FakeConfig{YesPct: 100}, core.Options{})
	wantRows, wantHITs := runRows(t, clean)
	cleanCreates := f0.RequestCount(opCreateHIT)

	faulty, f := mturkEngine(t, FakeConfig{
		YesPct:    100,
		FailFirst: map[string]int{opCreateHIT: 2},
	}, core.Options{})
	rows, hits := runRows(t, faulty)
	if rows != wantRows || hits != wantHITs {
		t.Errorf("faulted run diverged: rows %q vs %q, hits %d vs %d", rows, wantRows, hits, wantHITs)
	}
	if got := f.RequestCount(opCreateHIT); got != cleanCreates+2 {
		t.Errorf("CreateHIT called %d times, want %d (clean %d + 2 retried faults)",
			got, cleanCreates+2, cleanCreates)
	}
}

// TestFaultsBeyondRetryBudgetSurface: three consecutive 500s exhaust
// the three-attempt budget and the query fails with the RequestError.
func TestFaultsBeyondRetryBudgetSurface(t *testing.T) {
	e, _ := mturkEngine(t, FakeConfig{
		YesPct:    100,
		FailFirst: map[string]int{opCreateHIT: 3},
	}, core.Options{})
	_, _, err := exec.RunQuery(e, mturkQuery)
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("want RequestError past the retry budget, got %v", err)
	}
	if re.Status != 500 || re.Code != "ServiceFault" {
		t.Errorf("surfaced error = %d %s, want 500 ServiceFault", re.Status, re.Code)
	}
}

// TestThrottlingIsRetriedEndToEnd: periodic ThrottlingExceptions are
// absorbed by the retry loop's longer cool-off; the query's outcome is
// identical to a clean run.
func TestThrottlingIsRetriedEndToEnd(t *testing.T) {
	clean, _ := mturkEngine(t, FakeConfig{YesPct: 100}, core.Options{})
	wantRows, wantHITs := runRows(t, clean)

	throttled, f := mturkEngine(t, FakeConfig{
		YesPct:         100,
		ThrottleEveryN: 7,
	}, core.Options{})
	rows, hits := runRows(t, throttled)
	if rows != wantRows || hits != wantHITs {
		t.Errorf("throttled run diverged: rows %q vs %q, hits %d vs %d", rows, wantRows, hits, wantHITs)
	}
	if f.RequestCount(opCreateHIT) < 4 {
		t.Error("throttled run posted fewer HITs than the query needs")
	}
}

// TestBackoffJitterBounds: the retry sleep is drawn from [base/2, base)
// and the throttle cool-off is 4× the server-fault base.
func TestBackoffJitterBounds(t *testing.T) {
	c, err := New(Config{Endpoint: "http://invalid.example", AccessKey: "K", SecretKey: "S"})
	if err != nil {
		t.Fatal(err)
	}
	for try := 0; try < 3; try++ {
		base := time.Duration(try+1) * 500 * time.Millisecond
		for i := 0; i < 200; i++ {
			d := c.backoff(try, false)
			if d < base/2 || d >= base {
				t.Fatalf("backoff(%d, fault) = %v, want [%v, %v)", try, d, base/2, base)
			}
		}
		cool := time.Duration(try+1) * 2 * time.Second
		for i := 0; i < 200; i++ {
			d := c.backoff(try, true)
			if d < cool/2 || d >= cool {
				t.Fatalf("backoff(%d, throttled) = %v, want [%v, %v)", try, d, cool/2, cool)
			}
		}
	}
}
