package mturk

import (
	"sync"
	"time"
)

// Clock abstracts wall time so the polling client can be driven by a
// fake in tests: recorded-HTTP runs sweep hour-long assignment
// deadlines in microseconds, deterministically.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep pauses the caller for d (or advances fake time by d).
	Sleep(d time.Duration)
}

// realClock is the production clock.
type realClock struct{}

// Now implements Clock.
func (realClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// FakeClock is a manually advancing clock: Sleep advances Now by the
// requested duration instantly. It is safe for concurrent use — the
// executor posts chunks from several operator goroutines, each of which
// may be inside its own poll loop.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{t: start} }

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Sleep implements Clock by advancing the fake time.
func (c *FakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
