package mturk

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"
)

var signTime = time.Date(2015, 8, 30, 12, 36, 0, 0, time.UTC)

func signedReq(t *testing.T, body string, creds credentials) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "https://mturk-requester-sandbox.us-east-1.amazonaws.com", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentTypeAWSJSON)
	req.Header.Set("X-Amz-Target", targetPrefix+opGetAccountBalance)
	signRequest(req, []byte(body), creds, "us-east-1", signTime)
	return req
}

// TestSignatureShape: the Authorization header carries the SigV4
// algorithm, scope, signed-header list, and a 64-hex-digit signature.
func TestSignatureShape(t *testing.T) {
	req := signedReq(t, `{}`, credentials{accessKey: "AKIDEXAMPLE", secretKey: "SECRET"})
	auth := req.Header.Get("Authorization")
	for _, want := range []string{
		"AWS4-HMAC-SHA256 Credential=AKIDEXAMPLE/20150830/us-east-1/mturk-requester/aws4_request",
		"SignedHeaders=host;x-amz-date;x-amz-target",
		"Signature=",
	} {
		if !strings.Contains(auth, want) {
			t.Errorf("Authorization missing %q:\n%s", want, auth)
		}
	}
	sig := auth[strings.Index(auth, "Signature=")+len("Signature="):]
	if len(sig) != 64 {
		t.Errorf("signature length = %d, want 64 hex chars", len(sig))
	}
	if req.Header.Get("X-Amz-Date") != "20150830T123600Z" {
		t.Errorf("X-Amz-Date = %q", req.Header.Get("X-Amz-Date"))
	}
}

// TestSignatureDeterministic: same inputs, same signature; different
// secret, different signature.
func TestSignatureDeterministic(t *testing.T) {
	a := signedReq(t, `{"x":1}`, credentials{accessKey: "K", secretKey: "S1"})
	b := signedReq(t, `{"x":1}`, credentials{accessKey: "K", secretKey: "S1"})
	c := signedReq(t, `{"x":1}`, credentials{accessKey: "K", secretKey: "S2"})
	if a.Header.Get("Authorization") != b.Header.Get("Authorization") {
		t.Error("identical inputs signed differently")
	}
	if a.Header.Get("Authorization") == c.Header.Get("Authorization") {
		t.Error("different secrets produced the same signature")
	}
}

// TestVerifySignatureRoundTrip: the fake's verifier accepts what the
// signer produces and rejects tampering.
func TestVerifySignatureRoundTrip(t *testing.T) {
	creds := credentials{accessKey: "K", secretKey: "S"}
	req := signedReq(t, `{"op":"x"}`, creds)
	if err := verifySignature(req, []byte(`{"op":"x"}`), creds, "us-east-1"); err != nil {
		t.Fatalf("genuine request rejected: %v", err)
	}
	// Tampered body.
	if err := verifySignature(req, []byte(`{"op":"y"}`), creds, "us-east-1"); err == nil {
		t.Error("tampered body accepted")
	}
	// Wrong secret.
	if err := verifySignature(req, []byte(`{"op":"x"}`), credentials{accessKey: "K", secretKey: "WRONG"}, "us-east-1"); err == nil {
		t.Error("wrong secret accepted")
	}
	// Unsigned.
	bare, _ := http.NewRequest(http.MethodPost, "https://x", bytes.NewReader(nil))
	if err := verifySignature(bare, nil, creds, "us-east-1"); err == nil {
		t.Error("unsigned request accepted")
	}
}

// TestSessionTokenSigned: temporary credentials add the security-token
// header to the signed set and still verify.
func TestSessionTokenSigned(t *testing.T) {
	creds := credentials{accessKey: "K", secretKey: "S", sessionToken: "TOK"}
	req := signedReq(t, `{}`, creds)
	if req.Header.Get("X-Amz-Security-Token") != "TOK" {
		t.Fatal("session token header missing")
	}
	if !strings.Contains(req.Header.Get("Authorization"), "x-amz-security-token") {
		t.Error("security token not in SignedHeaders")
	}
	if err := verifySignature(req, []byte(`{}`), creds, "us-east-1"); err != nil {
		t.Errorf("session-token request rejected: %v", err)
	}
}
