package mturk

// Tests for the poll loop's capped exponential backoff and for the
// streaming executor's chunk-size invariance over the live backend on
// the new poster-driven paths (feature extraction, crowd sorts).

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"qurk/internal/core"
	"qurk/internal/dataset"
	"qurk/internal/exec"
	"qurk/internal/join"
)

// TestPollBackoffReducesRequests: while no assignments arrive, the
// sweep interval doubles up to MaxPollInterval, so a long-deadline
// group costs far fewer ListAssignmentsForHIT calls; a snappy cap
// keeps the old cadence.
func TestPollBackoffReducesRequests(t *testing.T) {
	run := func(maxPoll time.Duration) int {
		clock := NewFakeClock(t0)
		f := NewFakeServer(FakeConfig{Clock: clock, SubmitDelay: 3 * time.Minute, YesPct: 100})
		defer f.Close()
		c, err := New(Config{
			Endpoint:           f.URL(),
			AccessKey:          "FAKEKEY",
			SecretKey:          "FAKESECRET",
			Clock:              clock,
			PollInterval:       time.Second,
			MaxPollInterval:    maxPoll,
			AssignmentDuration: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewEngine(c, core.Options{})
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 10, Seed: 3})
		e.Catalog.Register(d.Celeb)
		e.Library.MustRegister(dataset.IsFemaleTask())
		out, _, err := exec.RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != 10 {
			t.Fatalf("YesPct=100 must pass all rows, got %d", out.Len())
		}
		return f.RequestCount(opListAssignmentsForHIT)
	}
	fixed := run(time.Second)       // cap == interval: no backoff
	backoff := run(2 * time.Minute) // idle sweeps double up to 2m
	if backoff >= fixed {
		t.Errorf("backoff did not cut request volume: %d sweeps with backoff vs %d fixed", backoff, fixed)
	}
	if backoff == 0 {
		t.Error("no ListAssignmentsForHIT calls recorded")
	}
}

// TestPollBackoffResetsOnProgress: a new assignment resets the cadence
// to PollInterval (the wait after a progressing sweep is the base
// interval, not the backed-off one).
func TestPollBackoffResetsOnProgress(t *testing.T) {
	clock := NewFakeClock(t0)
	f := NewFakeServer(FakeConfig{Clock: clock, SubmitDelay: 45 * time.Second, YesPct: 100})
	defer f.Close()
	c, err := New(Config{
		Endpoint:           f.URL(),
		AccessKey:          "FAKEKEY",
		SecretKey:          "FAKESECRET",
		Clock:              clock,
		PollInterval:       time.Second,
		MaxPollInterval:    4 * time.Minute,
		AssignmentDuration: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(c, core.Options{StreamChunkHITs: 1})
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 10, Seed: 5})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())
	out, _, err := exec.RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("rows = %d, want 10", out.Len())
	}
}

// TestMTurkExtractionChunkInvariance: the streaming-extraction join is
// bit-identical across chunk settings over the live backend — HIT
// identity (the UniqueRequestToken) never depends on chunking and the
// fake derives all worker behavior from it.
func TestMTurkExtractionChunkInvariance(t *testing.T) {
	run := func(chunk, lookahead int) string {
		clock := NewFakeClock(t0)
		f := NewFakeServer(FakeConfig{Clock: clock, SubmitDelay: 2 * time.Second, YesPct: 25})
		defer f.Close()
		c, err := New(Config{
			Endpoint:           f.URL(),
			AccessKey:          "FAKEKEY",
			SecretKey:          "FAKESECRET",
			Clock:              clock,
			PollInterval:       time.Second,
			AssignmentDuration: 5 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewEngine(c, core.Options{
			JoinAlgorithm: join.Naive, JoinBatch: 5,
			StreamChunkHITs: chunk, StreamLookahead: lookahead,
		})
		d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 8, Seed: 3})
		e.Catalog.Register(d.Celeb)
		e.Catalog.Register(d.Photos)
		e.Library.MustRegister(dataset.SamePersonTask())
		e.Library.MustRegister(dataset.GenderTask())
		out, stats, err := exec.RunQuery(e, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)`)
		if err != nil {
			t.Fatal(err)
		}
		var rows strings.Builder
		for i := 0; i < out.Len(); i++ {
			rows.WriteString(out.Row(i).String())
			rows.WriteByte('\n')
		}
		return fmt.Sprintf("%s|hits=%d", rows.String(), stats.TotalHITs())
	}
	base := run(8, 2)
	if strings.HasPrefix(base, "|") {
		t.Log("note: fake answer policy produced no matches; invariance still checked")
	}
	for _, cfg := range [][2]int{{1, 2}, {3, 1}} {
		if got := run(cfg[0], cfg[1]); got != base {
			t.Errorf("chunk=%d lookahead=%d diverged over MTurk backend:\n--- base\n%s--- got\n%s",
				cfg[0], cfg[1], base, got)
		}
	}
}

// TestMTurkSortChunkInvariance: poster-driven crowd sorts are
// bit-identical across chunk settings over the live backend.
func TestMTurkSortChunkInvariance(t *testing.T) {
	run := func(chunk int) string {
		clock := NewFakeClock(t0)
		f := NewFakeServer(FakeConfig{Clock: clock, SubmitDelay: 2 * time.Second})
		defer f.Close()
		c, err := New(Config{
			Endpoint:           f.URL(),
			AccessKey:          "FAKEKEY",
			SecretKey:          "FAKESECRET",
			Clock:              clock,
			PollInterval:       time.Second,
			AssignmentDuration: 5 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewEngine(c, core.Options{SortMethod: core.SortCompare, StreamChunkHITs: chunk})
		s := dataset.NewSquares(8)
		e.Catalog.Register(s.Rel)
		e.Library.MustRegister(dataset.SquareSorterTask())
		out, stats, err := exec.RunQuery(e, `SELECT label FROM squares ORDER BY squareSorter(img)`)
		if err != nil {
			t.Fatal(err)
		}
		var rows strings.Builder
		for i := 0; i < out.Len(); i++ {
			rows.WriteString(out.Row(i).String())
			rows.WriteByte('\n')
		}
		return fmt.Sprintf("%s|hits=%d", rows.String(), stats.TotalHITs())
	}
	base := run(8)
	if !strings.Contains(base, "square-") {
		t.Fatalf("sort over MTurk backend returned nothing:\n%s", base)
	}
	for _, chunk := range []int{1, 3} {
		if got := run(chunk); got != base {
			t.Errorf("chunk=%d diverged over MTurk backend:\n--- base\n%s--- got\n%s", chunk, base, got)
		}
	}
}

// TestBackoffDoesNotDelayExpiryDetection: the backed-off sleep clamps
// to the nearest pending assignment deadline, so expiry is detected
// within one base poll interval of the deadline even when sweeps have
// been idle for a while.
func TestBackoffDoesNotDelayExpiryDetection(t *testing.T) {
	clock := NewFakeClock(t0)
	// Every assignment abandoned: no sweep ever progresses, so the
	// backoff would otherwise run all the way to MaxPollInterval.
	f := NewFakeServer(FakeConfig{Clock: clock, SubmitDelay: time.Minute, AbandonPct: 100})
	defer f.Close()
	deadline := 5 * time.Minute
	c, err := New(Config{
		Endpoint:           f.URL(),
		AccessKey:          "FAKEKEY",
		SecretKey:          "FAKESECRET",
		Clock:              clock,
		PollInterval:       15 * time.Second,
		MaxPollInterval:    30 * time.Minute,
		AssignmentDuration: deadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(c, core.Options{ExpiredRetries: -1})
	d := dataset.NewCelebrities(dataset.CelebrityConfig{N: 5, Seed: 3})
	e.Catalog.Register(d.Celeb)
	e.Library.MustRegister(dataset.IsFemaleTask())
	_, stats, err := exec.RunQuery(e, `SELECT c.name FROM celeb c WHERE isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalExpired() == 0 {
		t.Fatal("full abandonment produced no expiry")
	}
	// The run ends when the expiry is detected; with the deadline clamp
	// that is within ~one poll interval past the 5m deadline, where an
	// unclamped backoff could overshoot by most of MaxPollInterval.
	elapsed := clock.Now().Sub(t0)
	if elapsed > deadline+2*15*time.Second {
		t.Errorf("expiry detected %v after post; want within ~%v of the %v deadline",
			elapsed, 15*time.Second, deadline)
	}
}
