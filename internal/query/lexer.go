// Package query implements Qurk's declarative surface (paper §2.1–§2.4):
// a lexer and recursive-descent parser for the SQL dialect —
//
//	SELECT c.name FROM celeb c JOIN photos p
//	ON samePerson(c.img, p.img)
//	AND POSSIBLY gender(c.img) = gender(p.img)
//	ORDER BY quality(p.img) LIMIT 10
//
// — and for the TASK template DSL —
//
//	TASK isFemale(field) TYPE Filter:
//	  Prompt: "<img src='%s'>", tuple[field]
//	  YesText: "Yes"
//	  Combiner: MajorityVote
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind uint8

const (
	// EOF marks the end of input.
	EOF TokenKind = iota
	// Ident is a bare identifier or keyword.
	Ident
	// String is a double-quoted string literal (unquoted value).
	String
	// Number is an integer or decimal literal.
	Number
	// Punct is single/double-rune punctuation: ( ) [ ] { } , : . = < >
	// <= >= <> * ; %.
	Punct
)

// Token is one lexeme with position info for error messages.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of input"
	case String:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

// Is reports whether the token is the given punctuation.
func (t Token) Is(p string) bool { return t.Kind == Punct && t.Text == p }

// IsKeyword reports case-insensitive identifier equality.
func (t Token) IsKeyword(kw string) bool {
	return t.Kind == Ident && strings.EqualFold(t.Text, kw)
}

// Lexer turns source text into tokens.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Tokens lexes the whole input.
func Tokens(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) errf(format string, args ...any) error {
	return fmt.Errorf("query: line %d col %d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	// Skip whitespace, line comments (-- and //), and the paper's
	// string-continuation backslash at end of line.
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			l.skipLine()
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		case r == '#':
			l.skipLine()
		default:
			goto lex
		}
	}
lex:
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: l.line, Col: l.col}, nil
	}
	line, col := l.line, l.col
	r := l.peek()
	switch {
	case r == '"':
		s, err := l.lexString()
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: String, Text: s, Line: line, Col: col}, nil
	case unicode.IsDigit(r):
		return Token{Kind: Number, Text: l.lexNumber(), Line: line, Col: col}, nil
	case unicode.IsLetter(r) || r == '_':
		return Token{Kind: Ident, Text: l.lexIdent(), Line: line, Col: col}, nil
	default:
		return l.lexPunct(line, col)
	}
}

func (l *Lexer) skipLine() {
	for l.pos < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
}

func (l *Lexer) lexString() (string, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return "", l.errf("unterminated string")
		}
		r := l.advance()
		switch r {
		case '"':
			return b.String(), nil
		case '\\':
			if l.pos >= len(l.src) {
				return "", l.errf("unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\', '\'':
				b.WriteRune(e)
			case '\n':
				// Paper-style line continuation inside prompts:
				// swallow the newline and following indent.
				for l.pos < len(l.src) && (l.peek() == ' ' || l.peek() == '\t') {
					l.advance()
				}
			default:
				b.WriteByte('\\')
				b.WriteRune(e)
			}
		default:
			b.WriteRune(r)
		}
	}
}

func (l *Lexer) lexNumber() string {
	var b strings.Builder
	for l.pos < len(l.src) && (unicode.IsDigit(l.peek()) || l.peek() == '.') {
		b.WriteRune(l.advance())
	}
	return b.String()
}

func (l *Lexer) lexIdent() string {
	var b strings.Builder
	for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
		b.WriteRune(l.advance())
	}
	return b.String()
}

var twoRune = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true}

func (l *Lexer) lexPunct(line, col int) (Token, error) {
	r := l.advance()
	one := string(r)
	if l.pos < len(l.src) {
		two := one + string(l.peek())
		if twoRune[two] {
			l.advance()
			return Token{Kind: Punct, Text: two, Line: line, Col: col}, nil
		}
	}
	switch r {
	case '(', ')', '[', ']', '{', '}', ',', ':', '.', '=', '<', '>', '*', ';', '%', '+':
		return Token{Kind: Punct, Text: one, Line: line, Col: col}, nil
	default:
		return Token{}, fmt.Errorf("query: line %d col %d: unexpected character %q", line, col, r)
	}
}
