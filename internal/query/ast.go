package query

import (
	"fmt"
	"strings"
)

// SelectStmt is a parsed Qurk query.
type SelectStmt struct {
	// Select is the projection list.
	Select []SelectItem
	// From is the driving table.
	From TableRef
	// Joins are JOIN ... ON udf(...) [AND POSSIBLY ...] clauses,
	// executed left-deep in order (paper §2.5).
	Joins []JoinClause
	// Where is the optional filter expression.
	Where Expr
	// OrderBy lists ordering expressions (columns or Rank UDFs).
	OrderBy []OrderItem
	// Limit is the LIMIT value, or -1 when absent.
	Limit int
}

// SelectItem is one projection: a column, a star, or a UDF call
// (optionally with a field selector: animalInfo(img).common).
type SelectItem struct {
	// Star is true for '*'.
	Star bool
	// Expr is the projected expression (nil when Star).
	Expr Expr
	// Alias is the optional AS name.
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Binding returns the name the table is referenced by downstream.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is one JOIN table ON udf(...) with optional POSSIBLY
// feature filters (paper §2.4).
type JoinClause struct {
	Table    TableRef
	On       *UDFCall
	Possibly []PossiblyClause
}

// PossiblyClause is one POSSIBLY filter: either an equality between two
// feature extractions — POSSIBLY gender(c.img) = gender(p.img) — or a
// unary predicate — POSSIBLY numInScene(scenes.img) = 1.
type PossiblyClause struct {
	Left  *UDFCall
	Op    string // "=", "<", ">", "<=", ">=", "<>"
	Right Expr   // *UDFCall or *Literal
}

// OrderItem is one ORDER BY expression.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a query expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnRef references a (possibly alias-qualified) column.
type ColumnRef struct {
	Qualifier string // "" when unqualified
	Column    string
}

func (c *ColumnRef) exprNode() {}

// Name returns the reference as written ("c.img" or "img").
func (c *ColumnRef) Name() string {
	if c.Qualifier == "" {
		return c.Column
	}
	return c.Qualifier + "." + c.Column
}

func (c *ColumnRef) String() string { return c.Name() }

// Literal is a string, number, or boolean constant.
type Literal struct {
	// Text is the raw literal text; IsString marks quoted literals.
	Text     string
	IsString bool
}

func (l *Literal) exprNode() {}

func (l *Literal) String() string {
	if l.IsString {
		return fmt.Sprintf("%q", l.Text)
	}
	return l.Text
}

// UDFCall invokes a crowd task: isFemale(c), samePerson(c.img, p.img),
// animalInfo(img).common.
type UDFCall struct {
	Name string
	Args []Expr
	// Field selects one output field of a generative UDF ("" if none).
	Field string
}

func (u *UDFCall) exprNode() {}

func (u *UDFCall) String() string {
	args := make([]string, len(u.Args))
	for i, a := range u.Args {
		args[i] = a.String()
	}
	s := fmt.Sprintf("%s(%s)", u.Name, strings.Join(args, ", "))
	if u.Field != "" {
		s += "." + u.Field
	}
	return s
}

// Binary is a boolean or comparison combination.
type Binary struct {
	Op   string // AND, OR, =, <, >, <=, >=, <>
	L, R Expr
}

func (b *Binary) exprNode() {}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates an expression.
type Not struct{ X Expr }

func (n *Not) exprNode() {}

func (n *Not) String() string { return "NOT " + n.X.String() }

// String renders the statement approximately as written.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteByte('*')
		} else {
			b.WriteString(it.Expr.String())
		}
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	fmt.Fprintf(&b, " FROM %s", s.From.Table)
	if s.From.Alias != "" {
		b.WriteString(" " + s.From.Alias)
	}
	for _, j := range s.Joins {
		fmt.Fprintf(&b, " JOIN %s", j.Table.Table)
		if j.Table.Alias != "" {
			b.WriteString(" " + j.Table.Alias)
		}
		fmt.Fprintf(&b, " ON %s", j.On)
		for _, p := range j.Possibly {
			fmt.Fprintf(&b, " AND POSSIBLY %s %s %s", p.Left, p.Op, p.Right)
		}
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// TaskDef is a parsed TASK template before conversion to a task.Task.
type TaskDef struct {
	// Name and Params come from "TASK name(param, ...)".
	Name   string
	Params []string
	// Type is the template kind: Filter, Generative, Rank, EquiJoin.
	Type string
	// Props holds the top-level key: value pairs.
	Props map[string]PropValue
	// PropOrder preserves declaration order for deterministic output.
	PropOrder []string
}

// PropValue is one DSL property value.
type PropValue struct {
	// Str is a string literal value ("" if not a string).
	Str string
	// IsStr marks Str as meaningful.
	IsStr bool
	// Args are trailing tuple[field] / tuple1[f] / tuple2[f] references
	// after a string ("...", tuple[field]).
	Args []TupleRef
	// Ident is a bare identifier value (e.g. MajorityVote).
	Ident string
	// Call is a constructor value (e.g. Text("Common name"),
	// Radio("Gender", ["Male","Female",UNKNOWN])).
	Call *CallValue
	// Map is a nested { key: value } block (e.g. Fields).
	Map map[string]PropValue
	// MapOrder preserves nested key order.
	MapOrder []string
}

// TupleRef is a tuple[field] reference in a prompt: Var is "tuple",
// "tuple1", or "tuple2"; Field the bracketed field name.
type TupleRef struct {
	Var   string
	Field string
}

// CallValue is a constructor like Text("label") or
// Radio("label", ["a", "b", UNKNOWN]).
type CallValue struct {
	Name string
	// StrArgs are the string-literal arguments, in order.
	StrArgs []string
	// ListArg holds the bracketed option list, when present; bare
	// identifiers (UNKNOWN) arrive as their text.
	ListArg []string
}
