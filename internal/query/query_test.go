package query

import (
	"strings"
	"testing"

	"qurk/internal/task"
)

func TestLexerBasics(t *testing.T) {
	toks, err := Tokens(`SELECT c.name, 42 "str" <= >= <> ( ) -- comment
next`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "c", ".", "name", ",", "42", "str", "<=", ">=", "<>", "(", ")", "next", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[5] != Number || kinds[6] != String {
		t.Error("kinds wrong")
	}
}

func TestLexerStringEscapes(t *testing.T) {
	toks, err := Tokens(`"a\"b\\c\nd"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\"b\\c\nd" {
		t.Errorf("escaped string = %q", toks[0].Text)
	}
	// Paper-style continuation: backslash-newline inside a string.
	toks, err = Tokens("\"<table> \\\n   <tr>\"")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "<table> <tr>" {
		t.Errorf("continuation string = %q", toks[0].Text)
	}
	if _, err := Tokens(`"unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Tokens("@"); err == nil {
		t.Error("bad rune accepted")
	}
}

func TestParseSimpleFilterQuery(t *testing.T) {
	stmt, err := ParseQuery(`SELECT c.name FROM celeb AS c WHERE isFemale(c)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Select) != 1 || stmt.Select[0].Expr.String() != "c.name" {
		t.Errorf("select = %+v", stmt.Select)
	}
	if stmt.From.Table != "celeb" || stmt.From.Alias != "c" {
		t.Errorf("from = %+v", stmt.From)
	}
	call, ok := stmt.Where.(*UDFCall)
	if !ok || call.Name != "isFemale" || len(call.Args) != 1 {
		t.Errorf("where = %v", stmt.Where)
	}
	if stmt.Limit != -1 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestParseJoinWithPossibly(t *testing.T) {
	src := `
SELECT c.name
FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
AND POSSIBLY hairColor(c.img) = hairColor(p.img)
AND POSSIBLY skinColor(c.img) = skinColor(p.img)`
	stmt, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Joins) != 1 {
		t.Fatalf("joins = %d", len(stmt.Joins))
	}
	j := stmt.Joins[0]
	if j.Table.Table != "photos" || j.Table.Alias != "p" {
		t.Errorf("join table = %+v", j.Table)
	}
	if j.On.Name != "samePerson" || len(j.On.Args) != 2 {
		t.Errorf("on = %v", j.On)
	}
	if len(j.Possibly) != 3 {
		t.Fatalf("possibly = %d", len(j.Possibly))
	}
	if j.Possibly[0].Left.Name != "gender" || j.Possibly[0].Op != "=" {
		t.Errorf("possibly[0] = %+v", j.Possibly[0])
	}
	if _, ok := j.Possibly[1].Right.(*UDFCall); !ok {
		t.Error("possibly right should be a UDF call")
	}
}

func TestParseEndToEndQuery(t *testing.T) {
	src := `
SELECT name, scenes.img
FROM actors JOIN scenes
ON inScene(actors.img, scenes.img)
AND POSSIBLY numInScene(scenes.img) > 1
ORDER BY name, quality(scenes.img)`
	stmt, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	p := stmt.Joins[0].Possibly[0]
	if p.Op != ">" {
		t.Errorf("op = %q", p.Op)
	}
	lit, ok := p.Right.(*Literal)
	if !ok || lit.Text != "1" {
		t.Errorf("right = %v", p.Right)
	}
	if len(stmt.OrderBy) != 2 {
		t.Fatalf("order by = %d", len(stmt.OrderBy))
	}
	if _, ok := stmt.OrderBy[0].Expr.(*ColumnRef); !ok {
		t.Error("first order item should be a column")
	}
	if call, ok := stmt.OrderBy[1].Expr.(*UDFCall); !ok || call.Name != "quality" {
		t.Error("second order item should be quality(...)")
	}
}

func TestParseOrderLimitDesc(t *testing.T) {
	stmt, err := ParseQuery(`SELECT label FROM squares ORDER BY squareSorter(img) DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.OrderBy[0].Desc {
		t.Error("DESC not parsed")
	}
	if stmt.Limit != 5 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestParseWhereBooleans(t *testing.T) {
	stmt, err := ParseQuery(`SELECT a FROM t WHERE f(a) AND (g(a) OR NOT h(a))`)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := stmt.Where.(*Binary)
	if !ok || b.Op != "AND" {
		t.Fatalf("where = %v", stmt.Where)
	}
	or, ok := b.R.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("rhs = %v", b.R)
	}
	if _, ok := or.R.(*Not); !ok {
		t.Errorf("NOT missing: %v", or.R)
	}
}

func TestParseGenerativeFieldAccess(t *testing.T) {
	stmt, err := ParseQuery(`SELECT id, animalInfo(img).common, animalInfo(img).species FROM animals AS a`)
	if err != nil {
		t.Fatal(err)
	}
	call, ok := stmt.Select[1].Expr.(*UDFCall)
	if !ok || call.Field != "common" {
		t.Errorf("field access = %v", stmt.Select[1].Expr)
	}
}

func TestParseImplicitAlias(t *testing.T) {
	stmt, err := ParseQuery(`SELECT c.name FROM celeb c JOIN photos p ON same(c.img, p.img)`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.From.Alias != "c" || stmt.Joins[0].Table.Alias != "p" {
		t.Errorf("aliases: %+v, %+v", stmt.From, stmt.Joins[0].Table)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t JOIN",
		"SELECT a FROM t JOIN u",
		"SELECT a FROM t JOIN u ON",
		"SELECT a FROM t JOIN u ON x", // not a call
		"SELECT a FROM t WHERE",
		"SELECT a FROM t ORDER",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t extra garbage(",
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestStatementRoundTripString(t *testing.T) {
	src := `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img) AND POSSIBLY gender(c.img) = gender(p.img) ORDER BY quality(p.img) LIMIT 3`
	stmt, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	out := stmt.String()
	re, err := ParseQuery(out)
	if err != nil {
		t.Fatalf("reparse of %q: %v", out, err)
	}
	if re.String() != out {
		t.Errorf("round trip unstable:\n1: %s\n2: %s", out, re.String())
	}
}

const paperFilterTask = `
TASK isFemale(field) TYPE Filter:
	Prompt: "<table><tr> \
	<td><img src='%s'></td> \
	<td>Is the person in the image a woman?</td> \
	</tr></table>", tuple[field]
	YesText: "Yes"
	NoText: "No"
	Combiner: MajorityVote
`

func TestParsePaperFilterTask(t *testing.T) {
	script, err := ParseScript(paperFilterTask)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Tasks) != 1 {
		t.Fatalf("tasks = %d", len(script.Tasks))
	}
	td := script.Tasks[0]
	if td.Name != "isFemale" || td.Type != "Filter" || len(td.Params) != 1 || td.Params[0] != "field" {
		t.Errorf("header = %+v", td)
	}
	built, err := BuildTask(td)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := built.(*task.Filter)
	if !ok {
		t.Fatalf("built %T", built)
	}
	if f.YesText != "Yes" || f.NoText != "No" || f.Combiner != "MajorityVote" {
		t.Errorf("filter = %+v", f)
	}
	if !strings.Contains(f.Prompt.Format, "woman?") || len(f.Prompt.Fields) != 1 || f.Prompt.Fields[0] != "field" {
		t.Errorf("prompt = %+v", f.Prompt)
	}
	if err := f.Validate(); err != nil {
		t.Error(err)
	}
}

const paperGenerativeTask = `
TASK animalInfo(field) TYPE Generative:
	Prompt: "<table><tr> \
	<td><img src='%s'> \
	<td>What is the common name \
	and species of this animal? \
	</table>", tuple[field]
	Fields: {
		common: { Response: Text("Common name")
			Combiner: MajorityVote,
			Normalizer: LowercaseSingleSpace },
		species: { Response: Text("Species"),
			Combiner: MajorityVote,
			Normalizer: LowercaseSingleSpace }
	}
`

func TestParsePaperGenerativeTask(t *testing.T) {
	script, err := ParseScript(paperGenerativeTask)
	if err != nil {
		t.Fatal(err)
	}
	built, err := BuildTask(script.Tasks[0])
	if err != nil {
		t.Fatal(err)
	}
	g, ok := built.(*task.Generative)
	if !ok {
		t.Fatalf("built %T", built)
	}
	if len(g.Fields) != 2 || g.Fields[0].Name != "common" || g.Fields[1].Name != "species" {
		t.Fatalf("fields = %+v", g.Fields)
	}
	if g.Fields[0].Normalizer != "LowercaseSingleSpace" {
		t.Errorf("normalizer = %q", g.Fields[0].Normalizer)
	}
	if g.Fields[0].Response.Kind != task.TextResponse || g.Fields[0].Response.Label != "Common name" {
		t.Errorf("response = %+v", g.Fields[0].Response)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

const paperGenderTask = `
TASK gender(field) TYPE Generative:
	Prompt: "<table><tr> \
	<td><img src='%s'> \
	<td>What this person's gender? \
	</table>", tuple[field]
	Response: Radio("Gender", ["Male","Female",UNKNOWN])
	Combiner: MajorityVote
`

func TestParsePaperGenderTask(t *testing.T) {
	script, err := ParseScript(paperGenderTask)
	if err != nil {
		t.Fatal(err)
	}
	built, err := BuildTask(script.Tasks[0])
	if err != nil {
		t.Fatal(err)
	}
	g := built.(*task.Generative)
	if len(g.Fields) != 1 || g.Fields[0].Name != "gender" {
		t.Fatalf("fields = %+v", g.Fields)
	}
	r := g.Fields[0].Response
	if r.Kind != task.RadioResponse || len(r.Options) != 3 || !r.AllowsUnknown() {
		t.Errorf("response = %+v", r)
	}
	if !g.IsCategorical() {
		t.Error("gender task should be categorical")
	}
}

const paperRankTask = `
TASK squareSorter(field) TYPE Rank:
	SingularName: "square"
	PluralName: "squares"
	OrderDimensionName: "area"
	LeastName: "smallest"
	MostName: "largest"
	Html: "<img src='%s' class=lgImg>", tuple[field]
`

func TestParsePaperRankTask(t *testing.T) {
	script, err := ParseScript(paperRankTask)
	if err != nil {
		t.Fatal(err)
	}
	built, err := BuildTask(script.Tasks[0])
	if err != nil {
		t.Fatal(err)
	}
	r := built.(*task.Rank)
	if r.SingularName != "square" || r.MostName != "largest" {
		t.Errorf("rank = %+v", r)
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

const paperEquiJoinTask = `
TASK samePerson(f1, f2) TYPE EquiJoin:
	SingluarName: "celebrity"
	PluralName: "celebrities"
	LeftPreview: "<img src='%s' class=smImg>", tuple1[f1]
	LeftNormal: "<img src='%s' class=lgImg>", tuple1[f1]
	RightPreview: "<img src='%s' class=smImg>", tuple2[f2]
	RightNormal: "<img src='%s' class=lgImg>", tuple2[f2]
	Combiner: MajorityVote
`

func TestParsePaperEquiJoinTask(t *testing.T) {
	// Note: the paper's own example misspells "SingluarName"; the
	// parser accepts both spellings.
	script, err := ParseScript(paperEquiJoinTask)
	if err != nil {
		t.Fatal(err)
	}
	td := script.Tasks[0]
	if len(td.Params) != 2 {
		t.Fatalf("params = %v", td.Params)
	}
	built, err := BuildTask(td)
	if err != nil {
		t.Fatal(err)
	}
	e := built.(*task.EquiJoin)
	if e.SingularName != "celebrity" {
		t.Errorf("singular = %q", e.SingularName)
	}
	if e.LeftNormal.Fields[0] != "f1" || e.RightNormal.Fields[0] != "f2" {
		t.Errorf("prompt fields: %v / %v", e.LeftNormal.Fields, e.RightNormal.Fields)
	}
	if err := e.Validate(); err != nil {
		t.Error(err)
	}
}

func TestParseScriptTasksAndQuery(t *testing.T) {
	src := paperFilterTask + "\nSELECT c.name FROM celeb AS c WHERE isFemale(c);\n" + paperRankTask
	script, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Tasks) != 2 || len(script.Queries) != 1 {
		t.Fatalf("script = %d tasks, %d queries", len(script.Tasks), len(script.Queries))
	}
}

func TestBuildTaskErrors(t *testing.T) {
	cases := []string{
		"TASK t(f) TYPE Nonsense:\n Prompt: \"x\"",
		"TASK t(f) TYPE Filter:\n YesText: \"y\"",           // missing prompt
		"TASK t(f) TYPE Generative:\n Prompt: \"x\"",        // no fields/response
		"TASK t(f) TYPE Rank:\n SingularName: \"s\"",        // missing html
		"TASK t(f1, f2) TYPE EquiJoin:\n PluralName: \"p\"", // missing prompts
	}
	for _, src := range cases {
		script, err := ParseScript(src)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := BuildTask(script.Tasks[0]); err == nil {
			t.Errorf("accepted bad task: %s", src)
		}
	}
}

func TestTaskBindMapping(t *testing.T) {
	script, err := ParseScript(paperFilterTask)
	if err != nil {
		t.Fatal(err)
	}
	built, err := BuildTask(script.Tasks[0])
	if err != nil {
		t.Fatal(err)
	}
	bound, err := task.Bind(built, map[string]string{"field": "c.img"})
	if err != nil {
		t.Fatal(err)
	}
	f := bound.(*task.Filter)
	if f.Prompt.Fields[0] != "c.img" {
		t.Errorf("bound field = %q", f.Prompt.Fields[0])
	}
	// Original untouched.
	if built.(*task.Filter).Prompt.Fields[0] != "field" {
		t.Error("bind mutated the original")
	}
}

func TestDuplicatePropertyRejected(t *testing.T) {
	src := "TASK t(f) TYPE Filter:\n Prompt: \"a\"\n Prompt: \"b\""
	if _, err := ParseScript(src); err == nil {
		t.Error("duplicate property accepted")
	}
}
