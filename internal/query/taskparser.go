package query

import (
	"fmt"
	"strings"

	"qurk/internal/task"
)

// parseTask parses one TASK template definition:
//
//	TASK isFemale(field) TYPE Filter:
//	    Prompt: "<img src='%s'>", tuple[field]
//	    YesText: "Yes"
//	    NoText: "No"
//	    Combiner: MajorityVote
//
// Properties end at the next TASK/SELECT keyword or EOF. Keys are
// identifiers followed by ':'.
func (p *Parser) parseTask() (*TaskDef, error) {
	if err := p.expectKeyword("TASK"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	td := &TaskDef{Name: name, Props: map[string]PropValue{}}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		for {
			param, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			td.Params = append(td.Params, param)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("TYPE"); err != nil {
		return nil, err
	}
	td.Type, err = p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	for p.at(Ident) && !p.cur().IsKeyword("TASK") && !p.cur().IsKeyword("SELECT") {
		key, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		val, err := p.parsePropValue()
		if err != nil {
			return nil, err
		}
		lk := strings.ToLower(key)
		if _, dup := td.Props[lk]; dup {
			return nil, p.errf("duplicate property %q in task %s", key, name)
		}
		td.Props[lk] = val
		td.PropOrder = append(td.PropOrder, lk)
		p.accept(",") // trailing comma between properties is tolerated
	}
	return td, nil
}

// parsePropValue parses one property value: a string with optional
// tuple references, a bare identifier, a constructor call, or a nested
// map block.
func (p *Parser) parsePropValue() (PropValue, error) {
	t := p.cur()
	switch {
	case t.Kind == String:
		p.next()
		v := PropValue{Str: t.Text, IsStr: true}
		for p.accept(",") {
			// A tuple reference follows; but a comma may also separate
			// this property from the next in a map context — only
			// consume if a tuple ref actually follows.
			if !p.at(Ident) || !strings.HasPrefix(strings.ToLower(p.cur().Text), "tuple") {
				p.pos-- // give the comma back
				break
			}
			ref, err := p.parseTupleRef()
			if err != nil {
				return PropValue{}, err
			}
			v.Args = append(v.Args, ref)
		}
		return v, nil
	case t.Is("{"):
		return p.parsePropMap()
	case t.Kind == Number:
		p.next()
		return PropValue{Ident: t.Text}, nil
	case t.Kind == Ident:
		name := p.next().Text
		if p.cur().Is("(") {
			call, err := p.parseCallValue(name)
			if err != nil {
				return PropValue{}, err
			}
			return PropValue{Call: call}, nil
		}
		return PropValue{Ident: name}, nil
	default:
		return PropValue{}, p.errf("unexpected %s as property value", t)
	}
}

// parseTupleRef parses tuple[field] / tuple1[f1] / tuple2[f2].
func (p *Parser) parseTupleRef() (TupleRef, error) {
	v, err := p.expectIdent()
	if err != nil {
		return TupleRef{}, err
	}
	lv := strings.ToLower(v)
	if lv != "tuple" && lv != "tuple1" && lv != "tuple2" {
		return TupleRef{}, p.errf("expected tuple/tuple1/tuple2, got %q", v)
	}
	if err := p.expect("["); err != nil {
		return TupleRef{}, err
	}
	field, err := p.expectIdent()
	if err != nil {
		return TupleRef{}, err
	}
	if err := p.expect("]"); err != nil {
		return TupleRef{}, err
	}
	return TupleRef{Var: lv, Field: field}, nil
}

// parseCallValue parses Text("label"), Radio("label", ["a", UNKNOWN]).
func (p *Parser) parseCallValue(name string) (*CallValue, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	call := &CallValue{Name: name}
	for !p.cur().Is(")") {
		t := p.cur()
		switch {
		case t.Kind == String:
			p.next()
			call.StrArgs = append(call.StrArgs, t.Text)
		case t.Is("["):
			p.next()
			for !p.cur().Is("]") {
				el := p.cur()
				switch el.Kind {
				case String, Ident, Number:
					p.next()
					call.ListArg = append(call.ListArg, el.Text)
				default:
					return nil, p.errf("unexpected %s in option list", el)
				}
				p.accept(",")
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		case t.Kind == Ident:
			p.next()
			call.ListArg = append(call.ListArg, t.Text)
		default:
			return nil, p.errf("unexpected %s in %s(...)", t, name)
		}
		p.accept(",")
	}
	return call, p.expect(")")
}

// parsePropMap parses { key: value, ... }.
func (p *Parser) parsePropMap() (PropValue, error) {
	if err := p.expect("{"); err != nil {
		return PropValue{}, err
	}
	v := PropValue{Map: map[string]PropValue{}}
	for !p.cur().Is("}") {
		key, err := p.expectIdent()
		if err != nil {
			return PropValue{}, err
		}
		if err := p.expect(":"); err != nil {
			return PropValue{}, err
		}
		val, err := p.parsePropValue()
		if err != nil {
			return PropValue{}, err
		}
		lk := strings.ToLower(key)
		if _, dup := v.Map[lk]; dup {
			return PropValue{}, p.errf("duplicate key %q", key)
		}
		v.Map[lk] = val
		v.MapOrder = append(v.MapOrder, lk)
		p.accept(",")
	}
	return v, p.expect("}")
}

// BuildTask converts a parsed TaskDef into a task.Task. Parameters bind
// prompt tuple references: the DSL's tuple[field] resolves `field`
// through the UDF call's arguments at planning time; here the formal
// parameter name is kept so the planner can substitute actual columns.
func BuildTask(td *TaskDef) (task.Task, error) {
	switch strings.ToLower(td.Type) {
	case "filter":
		return buildFilter(td)
	case "generative":
		return buildGenerative(td)
	case "rank":
		return buildRank(td)
	case "equijoin":
		return buildEquiJoin(td)
	default:
		return nil, fmt.Errorf("query: task %s has unknown TYPE %q", td.Name, td.Type)
	}
}

func (td *TaskDef) str(key string) string {
	if v, ok := td.Props[strings.ToLower(key)]; ok {
		if v.IsStr {
			return v.Str
		}
		return v.Ident
	}
	return ""
}

func (td *TaskDef) prompt(key string) (task.Prompt, error) {
	v, ok := td.Props[strings.ToLower(key)]
	if !ok {
		return task.Prompt{}, fmt.Errorf("query: task %s missing %s", td.Name, key)
	}
	if !v.IsStr {
		return task.Prompt{}, fmt.Errorf("query: task %s: %s must be a string", td.Name, key)
	}
	fields := make([]string, len(v.Args))
	for i, a := range v.Args {
		fields[i] = a.Field
	}
	return task.NewPrompt(v.Str, fields...)
}

func buildFilter(td *TaskDef) (task.Task, error) {
	prompt, err := td.prompt("Prompt")
	if err != nil {
		return nil, err
	}
	return &task.Filter{
		Name:     td.Name,
		Prompt:   prompt,
		YesText:  td.str("YesText"),
		NoText:   td.str("NoText"),
		Combiner: td.str("Combiner"),
	}, nil
}

func buildResponse(v PropValue) (task.Response, error) {
	if v.Call == nil {
		return task.Response{}, fmt.Errorf("query: Response must be Text(...) or Radio(...)")
	}
	label := ""
	if len(v.Call.StrArgs) > 0 {
		label = v.Call.StrArgs[0]
	}
	switch strings.ToLower(v.Call.Name) {
	case "text":
		return task.TextInput(label), nil
	case "radio":
		opts := append([]string(nil), v.Call.StrArgs...)
		if len(opts) > 0 {
			opts = opts[1:] // first string arg is the label
		}
		opts = append(opts, v.Call.ListArg...)
		return task.Radio(label, opts...), nil
	default:
		return task.Response{}, fmt.Errorf("query: unknown response type %q", v.Call.Name)
	}
}

func buildGenerative(td *TaskDef) (task.Task, error) {
	prompt, err := td.prompt("Prompt")
	if err != nil {
		return nil, err
	}
	g := &task.Generative{Name: td.Name, Prompt: prompt}
	if fieldsVal, ok := td.Props["fields"]; ok {
		if fieldsVal.Map == nil {
			return nil, fmt.Errorf("query: task %s: Fields must be a map", td.Name)
		}
		for _, fname := range fieldsVal.MapOrder {
			spec := fieldsVal.Map[fname]
			if spec.Map == nil {
				return nil, fmt.Errorf("query: task %s field %s: expected a map", td.Name, fname)
			}
			f := task.Field{Name: fname}
			if rv, ok := spec.Map["response"]; ok {
				resp, err := buildResponse(rv)
				if err != nil {
					return nil, fmt.Errorf("query: task %s field %s: %w", td.Name, fname, err)
				}
				f.Response = resp
			} else {
				f.Response = task.TextInput(fname)
			}
			if cv, ok := spec.Map["combiner"]; ok {
				f.Combiner = cv.Ident
			}
			if nv, ok := spec.Map["normalizer"]; ok {
				f.Normalizer = nv.Ident
			}
			g.Fields = append(g.Fields, f)
		}
	} else if rv, ok := td.Props["response"]; ok {
		// Single-field shorthand (the paper's gender task, §2.4): the
		// field takes the task's own name.
		resp, err := buildResponse(rv)
		if err != nil {
			return nil, fmt.Errorf("query: task %s: %w", td.Name, err)
		}
		g.Fields = []task.Field{{
			Name:       td.Name,
			Response:   resp,
			Combiner:   td.str("Combiner"),
			Normalizer: td.str("Normalizer"),
		}}
	} else {
		return nil, fmt.Errorf("query: task %s: generative needs Fields or Response", td.Name)
	}
	return g, nil
}

func buildRank(td *TaskDef) (task.Task, error) {
	html, err := td.prompt("Html")
	if err != nil {
		return nil, err
	}
	return &task.Rank{
		Name:               td.Name,
		SingularName:       td.str("SingularName"),
		PluralName:         td.str("PluralName"),
		OrderDimensionName: td.str("OrderDimensionName"),
		LeastName:          td.str("LeastName"),
		MostName:           td.str("MostName"),
		HTML:               html,
		Combiner:           td.str("Combiner"),
	}, nil
}

func buildEquiJoin(td *TaskDef) (task.Task, error) {
	get := func(key string) (task.Prompt, error) { return td.prompt(key) }
	lp, err := get("LeftPreview")
	if err != nil {
		return nil, err
	}
	ln, err := get("LeftNormal")
	if err != nil {
		return nil, err
	}
	rp, err := get("RightPreview")
	if err != nil {
		return nil, err
	}
	rn, err := get("RightNormal")
	if err != nil {
		return nil, err
	}
	// The paper's own example misspells "SingluarName"; accept both.
	singular := td.str("SingularName")
	if singular == "" {
		singular = td.str("SingluarName")
	}
	return &task.EquiJoin{
		Name:         td.Name,
		SingularName: singular,
		PluralName:   td.str("PluralName"),
		LeftPreview:  lp,
		LeftNormal:   ln,
		RightPreview: rp,
		RightNormal:  rn,
		Combiner:     td.str("Combiner"),
	}, nil
}
