package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// NewParser tokenizes src and returns a parser.
func NewParser(src string) (*Parser, error) {
	toks, err := Tokens(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// ParseQuery parses a single SELECT statement.
func ParseQuery(src string) (*SelectStmt, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.at(EOF) {
		return nil, p.errf("trailing input after query: %s", p.cur())
	}
	return stmt, nil
}

// Script is a parsed task-and-query file: TASK definitions followed by
// (or interleaved with) SELECT statements.
type Script struct {
	Tasks   []*TaskDef
	Queries []*SelectStmt
}

// ParseScript parses a file of TASK definitions and queries.
func ParseScript(src string) (*Script, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	out := &Script{}
	for !p.at(EOF) {
		switch {
		case p.cur().IsKeyword("TASK"):
			td, err := p.parseTask()
			if err != nil {
				return nil, err
			}
			out.Tasks = append(out.Tasks, td)
		case p.cur().IsKeyword("SELECT"):
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			out.Queries = append(out.Queries, q)
			p.accept(";")
		default:
			return nil, p.errf("expected TASK or SELECT, got %s", p.cur())
		}
	}
	return out, nil
}

// --- token helpers ---

func (p *Parser) cur() Token { return p.toks[p.pos] }

func (p *Parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(punct string) bool {
	if p.cur().Is(punct) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.cur().IsKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(punct string) error {
	if !p.accept(punct) {
		return p.errf("expected %q, got %s", punct, p.cur())
	}
	return nil
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.cur())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	if !p.at(Ident) {
		return "", p.errf("expected identifier, got %s", p.cur())
	}
	return p.next().Text, nil
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("query: line %d col %d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

var reservedAfterTable = map[string]bool{
	"join": true, "on": true, "where": true, "order": true, "limit": true,
	"and": true, "or": true, "as": true, "select": true, "task": true,
}

// --- SELECT ---

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, item)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for p.cur().IsKeyword("JOIN") {
		p.next()
		jc, err := p.parseJoinClause()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, jc)
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.cur().IsKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parsePrimaryExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		if !p.at(Number) {
			return nil, p.errf("expected LIMIT count, got %s", p.cur())
		}
		n, err := strconv.Atoi(p.next().Text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT value")
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.accept("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parsePrimaryExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if p.at(Ident) && !reservedAfterTable[strings.ToLower(p.cur().Text)] {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

func (p *Parser) parseJoinClause() (JoinClause, error) {
	table, err := p.parseTableRef()
	if err != nil {
		return JoinClause{}, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return JoinClause{}, err
	}
	on, err := p.parseUDFCall()
	if err != nil {
		return JoinClause{}, err
	}
	jc := JoinClause{Table: table, On: on}
	for {
		// "AND POSSIBLY ..." continues the clause; a bare AND belongs
		// to WHERE-style filters and is not valid here.
		save := p.pos
		if !p.acceptKeyword("AND") {
			break
		}
		if !p.acceptKeyword("POSSIBLY") {
			p.pos = save
			break
		}
		pc, err := p.parsePossibly()
		if err != nil {
			return JoinClause{}, err
		}
		jc.Possibly = append(jc.Possibly, pc)
	}
	return jc, nil
}

var cmpOps = map[string]bool{"=": true, "<": true, ">": true, "<=": true, ">=": true, "<>": true, "!=": true}

func (p *Parser) parsePossibly() (PossiblyClause, error) {
	left, err := p.parseUDFCall()
	if err != nil {
		return PossiblyClause{}, err
	}
	if p.cur().Kind != Punct || !cmpOps[p.cur().Text] {
		return PossiblyClause{}, p.errf("expected comparison in POSSIBLY clause, got %s", p.cur())
	}
	op := p.next().Text
	right, err := p.parsePrimaryExpr()
	if err != nil {
		return PossiblyClause{}, err
	}
	return PossiblyClause{Left: left, Op: op, Right: right}, nil
}

// --- expressions ---

func (p *Parser) parseOrExpr() (Expr, error) {
	l, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().IsKeyword("OR") {
		p.next()
		r, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAndExpr() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.cur().IsKeyword("AND") {
		p.next()
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseComparison() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	l, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == Punct && cmpOps[p.cur().Text] {
		op := p.next().Text
		r, err := p.parsePrimaryExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) parsePrimaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.Is("("):
		p.next()
		e, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == String:
		p.next()
		return &Literal{Text: t.Text, IsString: true}, nil
	case t.Kind == Number:
		p.next()
		return &Literal{Text: t.Text}, nil
	case t.Kind == Ident:
		return p.parseRefOrCall()
	default:
		return nil, p.errf("unexpected %s in expression", t)
	}
}

// parseRefOrCall parses ident, ident.ident, ident(args)[.field].
func (p *Parser) parseRefOrCall() (Expr, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.accept("(") {
		call := &UDFCall{Name: name}
		if !p.accept(")") {
			for {
				arg, err := p.parsePrimaryExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		if p.accept(".") {
			f, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			call.Field = f
		}
		return call, nil
	}
	if p.accept(".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Qualifier: name, Column: col}, nil
	}
	return &ColumnRef{Column: name}, nil
}

// parseUDFCall parses a mandatory UDF invocation.
func (p *Parser) parseUDFCall() (*UDFCall, error) {
	e, err := p.parseRefOrCall()
	if err != nil {
		return nil, err
	}
	call, ok := e.(*UDFCall)
	if !ok {
		return nil, p.errf("expected UDF call, got %s", e)
	}
	return call, nil
}
