package query

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: the lexer and parser never panic on arbitrary printable
// input — they return errors instead.
func TestParserNeverPanicsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	alphabet := []rune(`SELECT FROM WHERE JOIN ON ORDER BY abc().,"=<>*{}[]:0123456789 ` + "\n\t\\")
	prop := func(_ uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		n := rng.Intn(80)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		src := b.String()
		_, _ = ParseQuery(src)
		_, _ = ParseScript(src)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: String() of a parsed query reparses to the same String() —
// rendering is a fixed point after one round trip.
func TestQueryStringFixedPointProperty(t *testing.T) {
	sources := []string{
		`SELECT a FROM t`,
		`SELECT a, b FROM t u WHERE f(u.a)`,
		`SELECT a FROM t WHERE f(a) AND g(b) OR NOT h(c)`,
		`SELECT a FROM t JOIN s ON j(t.a, s.b) AND POSSIBLY p(t.a) = p(s.b)`,
		`SELECT a FROM t JOIN s ON j(t.a, s.b) AND POSSIBLY n(s.b) > 2`,
		`SELECT a FROM t ORDER BY a DESC, r(b) LIMIT 7`,
		`SELECT id, info(img).common FROM animals a`,
		`SELECT * FROM t WHERE x = 3 AND y <> "z"`,
	}
	for _, src := range sources {
		s1, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		once := s1.String()
		s2, err := ParseQuery(once)
		if err != nil {
			t.Fatalf("reparse %q: %v", once, err)
		}
		if s2.String() != once {
			t.Errorf("not a fixed point:\n1: %s\n2: %s", once, s2.String())
		}
	}
}

// Property: lexing then concatenating token texts loses no identifiers
// or numbers (whitespace-insensitivity of the token stream).
func TestLexerTokenCompletenessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	words := []string{"SELECT", "foo", "bar9", "x_y", "42", "7"}
	prop := func(_ uint8) bool {
		n := 1 + rng.Intn(10)
		var parts []string
		for i := 0; i < n; i++ {
			parts = append(parts, words[rng.Intn(len(words))])
		}
		src := strings.Join(parts, " ")
		toks, err := Tokens(src)
		if err != nil {
			return false
		}
		var got []string
		for _, tk := range toks {
			if tk.Kind == Ident || tk.Kind == Number {
				got = append(got, tk.Text)
			}
		}
		return strings.Join(got, " ") == src
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
