package stats

import "testing"

func TestMajorityShare(t *testing.T) {
	if _, _, ok := MajorityShare(nil); ok {
		t.Fatal("empty vote set reported ok")
	}
	share, maj, ok := MajorityShare([]string{"yes", "yes", "no", "yes", "no"})
	if !ok || maj != "yes" || share != 0.6 {
		t.Fatalf("MajorityShare = (%v, %q, %v), want (0.6, yes, true)", share, maj, ok)
	}
	share, maj, ok = MajorityShare([]string{"a"})
	if !ok || maj != "a" || share != 1 {
		t.Fatalf("MajorityShare single = (%v, %q, %v)", share, maj, ok)
	}
	// Ties keep the first-seen value; the share is identical either way.
	share, maj, ok = MajorityShare([]string{"b", "a", "b", "a"})
	if !ok || share != 0.5 || maj != "b" {
		t.Fatalf("MajorityShare tie = (%v, %q, %v), want (0.5, b, true)", share, maj, ok)
	}
}
