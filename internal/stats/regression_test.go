package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearRegressionExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	r, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.Slope, 2, 1e-12) || !almostEqual(r.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", r)
	}
	if !almostEqual(r.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", r.R2)
	}
	if r.PValue > 1e-6 {
		t.Errorf("p = %v, want ≈0 for exact fit", r.PValue)
	}
}

func TestLinearRegressionNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 0.5 + 0.03*x[i] + rng.NormFloat64()*2
	}
	r, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Slope-0.03) > 0.01 {
		t.Errorf("slope = %v, want ≈0.03", r.Slope)
	}
	if r.PValue > 0.05 {
		t.Errorf("p = %v, want significant", r.PValue)
	}
}

func TestLinearRegressionWeakEffect(t *testing.T) {
	// Shape of the paper's §3.3.3 finding: a significant but tiny
	// slope with R² well under 0.1.
	rng := rand.New(rand.NewSource(12))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 300
		y[i] = 0.78 + 0.0001*x[i] + rng.NormFloat64()*0.05
	}
	r, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slope <= 0 {
		t.Errorf("slope = %v, want positive", r.Slope)
	}
	if r.R2 > 0.2 {
		t.Errorf("R2 = %v, want small", r.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("n<3 accepted")
	}
	if _, err := LinearRegression([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero-variance x accepted")
	}
}

func TestSelectivity(t *testing.T) {
	// Paper §3.2 example shape: gender 50/50 in both tables →
	// σ = 0.5·0.5 + 0.5·0.5 = 0.5.
	r := map[string]float64{"male": 0.5, "female": 0.5}
	s := map[string]float64{"male": 0.5, "female": 0.5}
	if got := Selectivity(r, s); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("sigma = %v, want 0.5", got)
	}
	// Completely disjoint values → 0.
	if got := Selectivity(map[string]float64{"a": 1}, map[string]float64{"b": 1}); got != 0 {
		t.Errorf("disjoint sigma = %v, want 0", got)
	}
	// Combined selectivity multiplies.
	if got := CombinedSelectivity([]float64{0.5, 0.5, 0.8}); !almostEqual(got, 0.2, 1e-12) {
		t.Errorf("combined = %v, want 0.2", got)
	}
	if got := CombinedSelectivity(nil); got != 1 {
		t.Errorf("empty combined = %v, want 1", got)
	}
}

func TestNormalCDF(t *testing.T) {
	if !almostEqual(normalCDF(0), 0.5, 1e-12) {
		t.Error("Phi(0) != 0.5")
	}
	if !almostEqual(normalCDF(1.96), 0.975, 1e-3) {
		t.Error("Phi(1.96) != 0.975")
	}
}
