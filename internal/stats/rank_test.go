package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestKendallTauPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	tau, err := KendallTauB(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tau, 1, 1e-12) {
		t.Errorf("tau = %v, want 1", tau)
	}
}

func TestKendallTauInverse(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{5, 4, 3, 2, 1}
	tau, err := KendallTauB(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tau, -1, 1e-12) {
		t.Errorf("tau = %v, want -1", tau)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// Hand-computed: a = 1,2,3,4; b = 1,3,2,4.
	// Pairs: 6 total; discordant only (2,3)-(3,2): C=5, D=1.
	// tau = (5-1)/6 = 0.6667.
	tau, err := KendallTauB([]float64{1, 2, 3, 4}, []float64{1, 3, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tau, 2.0/3.0, 1e-12) {
		t.Errorf("tau = %v, want 2/3", tau)
	}
}

func TestKendallTauWithTies(t *testing.T) {
	// b has a tie. a = 1,2,3; b = 1,1,2.
	// Pairs: (1,2): a diff, b tied -> tiesB. (1,3): C. (2,3): C.
	// n0 = 3, n1(a)=0, n2(b)=1 -> tau = 2/sqrt(3*2) = 0.8165.
	tau, err := KendallTauB([]float64{1, 2, 3}, []float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 / math.Sqrt(6)
	if !almostEqual(tau, want, 1e-12) {
		t.Errorf("tau = %v, want %v", tau, want)
	}
}

func TestKendallTauErrors(t *testing.T) {
	if _, err := KendallTauB([]float64{1}, []float64{1}); err == nil {
		t.Error("n=1 should error")
	}
	if _, err := KendallTauB([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := KendallTauB([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("all-tied input should error")
	}
}

func TestTauBetweenOrders(t *testing.T) {
	o1 := []string{"ant", "bee", "cat", "dog"}
	o2 := []string{"ant", "bee", "cat", "dog"}
	tau, err := TauBetweenOrders(o1, o2)
	if err != nil || !almostEqual(tau, 1, 1e-12) {
		t.Errorf("identical orders: tau=%v err=%v", tau, err)
	}
	rev := []string{"dog", "cat", "bee", "ant"}
	tau, err = TauBetweenOrders(o1, rev)
	if err != nil || !almostEqual(tau, -1, 1e-12) {
		t.Errorf("reversed orders: tau=%v err=%v", tau, err)
	}
	if _, err := TauBetweenOrders(o1, []string{"ant", "bee", "cat", "EEL"}); err == nil {
		t.Error("mismatched item sets should error")
	}
	if _, err := TauBetweenOrders(o1, []string{"ant", "ant", "cat", "dog"}); err == nil {
		t.Error("duplicate items should error")
	}
}

// Property: tau is symmetric and invariant to monotone transforms.
func TestKendallTauProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(_ uint8) bool {
		n := 3 + rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(8))
			b[i] = float64(rng.Intn(8))
		}
		t1, err1 := KendallTauB(a, b)
		t2, err2 := KendallTauB(b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if !almostEqual(t1, t2, 1e-9) {
			return false
		}
		// Monotone transform of a must not change tau.
		a2 := make([]float64, n)
		for i := range a {
			a2[i] = 3*a[i] + 10
		}
		t3, err := KendallTauB(a2, b)
		return err == nil && almostEqual(t1, t3, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	for _, c := range []struct {
		p    float64
		want float64
	}{{0, 1}, {20, 1}, {50, 3}, {95, 5}, {100, 5}} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile should error")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(m, 5, 1e-12) || !almostEqual(s, 2, 1e-12) {
		t.Errorf("mean=%v std=%v, want 5, 2", m, s)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}
