// Package stats implements the statistical machinery the paper relies on:
// Kendall's τ-b rank correlation (§4.2), Fleiss' κ inter-rater reliability
// plus the paper's modified κ for comparison data (§3.2, footnote 4),
// linear regression with R² and p-values (§3.3.3), percentiles (Fig. 4),
// and sample-based estimators (Tables 4, Fig. 6).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// KendallTauB computes the τ-b rank correlation between two equal-length
// score slices. τ-b is the variant the paper uses because it "allows two
// items to have the same rank order" (§4.2): tied pairs are handled by the
// n1/n2 correction terms.
//
// Returns a value in [-1, 1]: -1 inverse correlation, 0 none, 1 perfect.
func KendallTauB(a, b []float64) (float64, error) {
	n := len(a)
	if n != len(b) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", n, len(b))
	}
	if n < 2 {
		return 0, fmt.Errorf("stats: need at least 2 items, got %d", n)
	}
	var concordant, discordant float64
	var tiesA, tiesB float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := sign(a[j] - a[i])
			db := sign(b[j] - b[i])
			switch {
			case da == 0 && db == 0:
				// Tied in both: contributes to neither numerator nor
				// either tie-correction term (joint ties cancel).
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case da == db:
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	denomA := n0 - jointTies(a)
	denomB := n0 - jointTies(b)
	if denomA <= 0 || denomB <= 0 {
		return 0, fmt.Errorf("stats: degenerate ranking (all values tied)")
	}
	return (concordant - discordant) / math.Sqrt(denomA*denomB), nil
}

// jointTies returns n1 = Σ t_i(t_i-1)/2 over groups of tied values.
func jointTies(x []float64) float64 {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	var total float64
	run := 1
	for i := 1; i <= len(s); i++ {
		if i < len(s) && s[i] == s[i-1] {
			run++
			continue
		}
		total += float64(run*(run-1)) / 2
		run = 1
	}
	return total
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// TauBetweenOrders computes τ-b between two orderings expressed as item
// sequences (e.g., the Compare order vs the Rate order). Both slices must
// be permutations of the same item set.
func TauBetweenOrders[T comparable](order1, order2 []T) (float64, error) {
	if len(order1) != len(order2) {
		return 0, fmt.Errorf("stats: order length mismatch %d vs %d", len(order1), len(order2))
	}
	pos := make(map[T]int, len(order2))
	for i, item := range order2 {
		pos[item] = i
	}
	if len(pos) != len(order2) {
		return 0, fmt.Errorf("stats: order2 contains duplicates")
	}
	a := make([]float64, len(order1))
	b := make([]float64, len(order1))
	for i, item := range order1 {
		j, ok := pos[item]
		if !ok {
			return 0, fmt.Errorf("stats: item %v missing from order2", item)
		}
		a[i] = float64(i)
		b[i] = float64(j)
	}
	return KendallTauB(a, b)
}

// Percentile returns the p'th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank on a sorted copy, matching the paper's 50th/95th/100th
// percentile completion-time reporting (Fig. 4).
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range", p)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p == 0 {
		return s[0], nil
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1], nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MeanStd returns both the mean and population standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}
