package stats

import (
	"fmt"
	"math"
)

// Regression holds simple least-squares linear regression results.
// The paper regresses per-worker accuracy on tasks-completed (§3.3.3)
// and reports β > 0, R² = 0.028, p < .05 ⇒ "no strong effect".
type Regression struct {
	// Slope is β, the fitted slope.
	Slope float64
	// Intercept is the fitted intercept.
	Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	// PValue is the two-sided p-value for H0: β = 0, from the t
	// statistic using a normal approximation (adequate for the paper's
	// sample sizes; exact Student-t needs the incomplete beta, which
	// stdlib lacks).
	PValue float64
	// N is the number of points fitted.
	N int
}

// LinearRegression fits y = a + b·x by ordinary least squares.
func LinearRegression(x, y []float64) (Regression, error) {
	n := len(x)
	if n != len(y) {
		return Regression{}, fmt.Errorf("stats: regression length mismatch %d vs %d", n, len(y))
	}
	if n < 3 {
		return Regression{}, fmt.Errorf("stats: regression needs ≥3 points, got %d", n)
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Regression{}, fmt.Errorf("stats: regression x has zero variance")
	}
	b := sxy / sxx
	a := my - b*mx
	var r2 float64
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	} else {
		r2 = 1 // all y identical and perfectly "explained"
	}
	// t statistic for the slope.
	var p float64 = 1
	sse := syy - b*sxy
	if sse < 0 {
		sse = 0
	}
	if n > 2 {
		se2 := sse / float64(n-2) / sxx
		if se2 > 0 {
			t := b / math.Sqrt(se2)
			p = 2 * (1 - normalCDF(math.Abs(t)))
		} else {
			p = 0
		}
	}
	return Regression{Slope: b, Intercept: a, R2: r2, PValue: p, N: n}, nil
}

// normalCDF is the standard normal CDF via math.Erf.
func normalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// Selectivity estimates the probability that two tables agree on a
// categorical feature (paper §3.2):
//
//	σ = Σ_j ρ_Rj · ρ_Sj
//
// where ρ_Xj is the relative frequency of feature value j in table X.
// UNKNOWN values must be excluded by the caller (they match everything,
// so they contribute their full mass to every j; see JoinSelectivity).
func Selectivity(freqR, freqS map[string]float64) float64 {
	var sigma float64
	for v, pr := range freqR {
		sigma += pr * freqS[v]
	}
	return sigma
}

// CombinedSelectivity multiplies per-feature selectivities under the
// paper's independence assumption: Sel = Π σ_i.
func CombinedSelectivity(sigmas []float64) float64 {
	sel := 1.0
	for _, s := range sigmas {
		sel *= s
	}
	return sel
}
