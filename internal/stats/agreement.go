package stats

// MajorityShare returns the fraction of votes that agree with the most
// common value, and that value — the per-question worker-agreement
// statistic the executor feeds the observed-statistics store
// (obstats.KindAgreement). Ties break toward the value seen first, so
// the share is the same either way. ok is false for an empty vote set.
func MajorityShare(values []string) (share float64, majority string, ok bool) {
	if len(values) == 0 {
		return 0, "", false
	}
	counts := make(map[string]int, len(values))
	best := -1
	for _, v := range values {
		counts[v]++
		if counts[v] > best {
			best, majority = counts[v], v
		}
	}
	return float64(best) / float64(len(values)), majority, true
}
