package stats

import (
	"math"
	"math/rand"
	"testing"
)

func fill(t *testing.T, m *RatingMatrix, rows [][]int) {
	t.Helper()
	for i, row := range rows {
		for cat, n := range row {
			for r := 0; r < n; r++ {
				if err := m.Add(i, cat); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestFleissKappaPerfectAgreement(t *testing.T) {
	m, _ := NewRatingMatrix(4, 2)
	fill(t, m, [][]int{{5, 0}, {0, 5}, {5, 0}, {0, 5}})
	k, err := m.FleissKappa()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(k, 1, 1e-12) {
		t.Errorf("kappa = %v, want 1", k)
	}
}

func TestFleissKappaWikipediaExample(t *testing.T) {
	// The canonical worked example from Fleiss (1971) / Wikipedia:
	// 10 subjects, 5 categories, 14 raters, κ ≈ 0.210.
	rows := [][]int{
		{0, 0, 0, 0, 14},
		{0, 2, 6, 4, 2},
		{0, 0, 3, 5, 6},
		{0, 3, 9, 2, 0},
		{2, 2, 8, 1, 1},
		{7, 7, 0, 0, 0},
		{3, 2, 6, 3, 0},
		{2, 5, 3, 2, 2},
		{6, 5, 2, 1, 0},
		{0, 2, 2, 3, 7},
	}
	m, _ := NewRatingMatrix(10, 5)
	fill(t, m, rows)
	k, err := m.FleissKappa()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(k, 0.20993, 1e-4) {
		t.Errorf("kappa = %v, want ≈0.210", k)
	}
}

func TestFleissKappaRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := NewRatingMatrix(300, 2)
	for i := 0; i < 300; i++ {
		for r := 0; r < 5; r++ {
			_ = m.Add(i, rng.Intn(2))
		}
	}
	k, err := m.FleissKappa()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k) > 0.08 {
		t.Errorf("random kappa = %v, want ≈0", k)
	}
}

func TestModifiedKappaSkewResistance(t *testing.T) {
	// With heavily skewed labels and perfect agreement, classic κ is
	// still 1 here, but with *near*-perfect agreement classic κ
	// collapses while modified κ stays high — the failure mode the
	// paper's footnote 4 describes for correlated comparator data.
	m, _ := NewRatingMatrix(20, 2)
	for i := 0; i < 20; i++ {
		for r := 0; r < 5; r++ {
			cat := 0
			// One dissent on one subject; labels are 99% category 0.
			if i == 0 && r == 0 {
				cat = 1
			}
			_ = m.Add(i, cat)
		}
	}
	classic, err := m.FleissKappa()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := m.ModifiedKappa()
	if err != nil {
		t.Fatal(err)
	}
	if mod <= classic {
		t.Errorf("modified κ (%v) should exceed classic κ (%v) on skewed data", mod, classic)
	}
	if mod < 0.9 {
		t.Errorf("modified κ = %v, want ≈1 for near-perfect agreement", mod)
	}
}

func TestModifiedKappaRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, _ := NewRatingMatrix(400, 2)
	for i := 0; i < 400; i++ {
		for r := 0; r < 5; r++ {
			_ = m.Add(i, rng.Intn(2))
		}
	}
	k, err := m.ModifiedKappa()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k) > 0.08 {
		t.Errorf("random modified kappa = %v, want ≈0", k)
	}
}

func TestKappaValidation(t *testing.T) {
	if _, err := NewRatingMatrix(0, 2); err == nil {
		t.Error("0 subjects accepted")
	}
	if _, err := NewRatingMatrix(3, 1); err == nil {
		t.Error("1 category accepted")
	}
	m, _ := NewRatingMatrix(2, 2)
	if err := m.Add(5, 0); err == nil {
		t.Error("bad subject accepted")
	}
	if err := m.Add(0, 9); err == nil {
		t.Error("bad category accepted")
	}
	if _, err := m.FleissKappa(); err == nil {
		t.Error("empty matrix should error")
	}
}

func TestKappaSubjectWithOneRatingSkipped(t *testing.T) {
	m, _ := NewRatingMatrix(3, 2)
	fill(t, m, [][]int{{5, 0}, {0, 5}, {1, 0}}) // third subject has 1 rating
	k, err := m.FleissKappa()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(k, 1, 1e-9) {
		t.Errorf("kappa = %v, want 1 (single-rating subject skipped)", k)
	}
}

func TestKappaSampler(t *testing.T) {
	// High-agreement matrix: samples should estimate κ near the full
	// value with modest variance (paper Table 4's point).
	rng := rand.New(rand.NewSource(5))
	m, _ := NewRatingMatrix(60, 2)
	for i := 0; i < 60; i++ {
		truth := i % 2
		for r := 0; r < 5; r++ {
			cat := truth
			if rng.Float64() < 0.05 {
				cat = 1 - truth
			}
			_ = m.Add(i, cat)
		}
	}
	full, err := m.FleissKappa()
	if err != nil {
		t.Fatal(err)
	}
	mean, std, err := m.KappaSampler(50, 0.25, false, rng.Intn)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-full) > 0.12 {
		t.Errorf("sampled κ mean %v too far from full κ %v", mean, full)
	}
	if std < 0 || std > 0.3 {
		t.Errorf("sampled κ std = %v out of plausible range", std)
	}
	if _, _, err := m.KappaSampler(0, 0.25, false, rng.Intn); err == nil {
		t.Error("0 samples accepted")
	}
	if _, _, err := m.KappaSampler(10, 1.5, false, rng.Intn); err == nil {
		t.Error("bad fraction accepted")
	}
}

func TestSubsetErrors(t *testing.T) {
	m, _ := NewRatingMatrix(3, 2)
	if _, err := m.Subset(nil); err == nil {
		t.Error("empty subset accepted")
	}
	if _, err := m.Subset([]int{7}); err == nil {
		t.Error("out-of-range subset accepted")
	}
}
