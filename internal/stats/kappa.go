package stats

import (
	"fmt"
	"math"
)

// RatingMatrix holds categorical rating counts for Fleiss' κ: one row per
// subject (record being labeled), one column per category, cell [i][j] =
// number of raters who assigned category j to subject i.
//
// The paper uses κ to (a) detect ambiguous feature filters on categorical
// features (§3.2) and (b) measure worker agreement on sort comparisons
// (§4.2.3, with the modification in footnote 4).
type RatingMatrix struct {
	counts [][]int
	k      int // number of categories
}

// NewRatingMatrix creates an empty matrix for n subjects and k categories.
func NewRatingMatrix(subjects, categories int) (*RatingMatrix, error) {
	if subjects <= 0 || categories < 2 {
		return nil, fmt.Errorf("stats: rating matrix needs ≥1 subject and ≥2 categories (got %d, %d)", subjects, categories)
	}
	m := &RatingMatrix{counts: make([][]int, subjects), k: categories}
	for i := range m.counts {
		m.counts[i] = make([]int, categories)
	}
	return m, nil
}

// Add records one rater assigning category cat to subject subj.
func (m *RatingMatrix) Add(subj, cat int) error {
	if subj < 0 || subj >= len(m.counts) {
		return fmt.Errorf("stats: subject %d out of range [0,%d)", subj, len(m.counts))
	}
	if cat < 0 || cat >= m.k {
		return fmt.Errorf("stats: category %d out of range [0,%d)", cat, m.k)
	}
	m.counts[subj][cat]++
	return nil
}

// Subjects returns the number of subjects.
func (m *RatingMatrix) Subjects() int { return len(m.counts) }

// Categories returns the number of categories.
func (m *RatingMatrix) Categories() int { return m.k }

// Raters returns the number of ratings on subject i.
func (m *RatingMatrix) Raters(i int) int {
	n := 0
	for _, c := range m.counts[i] {
		n += c
	}
	return n
}

// Subset returns a matrix restricted to the given subject indices; used to
// estimate κ from random samples (Table 4, Fig. 6).
func (m *RatingMatrix) Subset(idx []int) (*RatingMatrix, error) {
	if len(idx) == 0 {
		return nil, fmt.Errorf("stats: empty subset")
	}
	out := &RatingMatrix{counts: make([][]int, len(idx)), k: m.k}
	for i, s := range idx {
		if s < 0 || s >= len(m.counts) {
			return nil, fmt.Errorf("stats: subset index %d out of range", s)
		}
		row := make([]int, m.k)
		copy(row, m.counts[s])
		out.counts[i] = row
	}
	return out, nil
}

// agreement returns P̄ (mean per-subject observed agreement) and the
// per-category proportions p_j. Subjects with fewer than 2 ratings are
// skipped (no pairwise agreement is defined on them).
func (m *RatingMatrix) agreement() (pBar float64, pj []float64, err error) {
	pj = make([]float64, m.k)
	var totalRatings float64
	var sumP float64
	used := 0
	for _, row := range m.counts {
		n := 0
		for _, c := range row {
			n += c
		}
		if n == 0 {
			continue
		}
		for j, c := range row {
			pj[j] += float64(c)
		}
		totalRatings += float64(n)
		if n < 2 {
			continue
		}
		var agree float64
		for _, c := range row {
			agree += float64(c * (c - 1))
		}
		sumP += agree / float64(n*(n-1))
		used++
	}
	if used == 0 {
		return 0, nil, fmt.Errorf("stats: no subject has ≥2 ratings")
	}
	if totalRatings == 0 {
		return 0, nil, fmt.Errorf("stats: empty rating matrix")
	}
	for j := range pj {
		pj[j] /= totalRatings
	}
	return sumP / float64(used), pj, nil
}

// FleissKappa computes classic Fleiss' κ: (P̄ − P̄e) / (1 − P̄e) with
// P̄e = Σ p_j², where p_j are the empirical category priors.
//
// κ = 1 is perfect agreement; κ ≈ 0 means agreement is what weighted
// random assignment would produce (paper §3.2).
func (m *RatingMatrix) FleissKappa() (float64, error) {
	pBar, pj, err := m.agreement()
	if err != nil {
		return 0, err
	}
	var pe float64
	for _, p := range pj {
		pe += p * p
	}
	if math.Abs(1-pe) < 1e-12 {
		// All raters used a single category everywhere: define κ = 1
		// when observed agreement is also perfect.
		if pBar >= 1-1e-12 {
			return 1, nil
		}
		return 0, fmt.Errorf("stats: degenerate priors (one category)")
	}
	return (pBar - pe) / (1 - pe), nil
}

// ModifiedKappa computes the paper's variant for sort-comparison data
// (footnote 4): classic Fleiss' κ "calculates priors for each label to
// compensate for bias in the dataset", which misbehaves on correlated
// comparator labels, so the paper removes the data-driven compensating
// factor. We therefore replace the empirical priors with uniform priors
// P̄e = 1/k:
//
//	κ_mod = (P̄ − 1/k) / (1 − 1/k)
//
// Random voting still yields ≈0 and perfect agreement yields 1, but
// skewed label frequencies no longer inflate the expected agreement.
func (m *RatingMatrix) ModifiedKappa() (float64, error) {
	pBar, _, err := m.agreement()
	if err != nil {
		return 0, err
	}
	pe := 1 / float64(m.k)
	return (pBar - pe) / (1 - pe), nil
}

// KappaSampler estimates κ on random subject samples, returning the mean
// and standard deviation across numSamples draws of sampleFrac·Subjects()
// subjects. This reproduces the paper's Table 4 "25% sample" rows and the
// Fig. 6 sample bars, which show κ can be estimated cheaply before
// committing the full dataset.
//
// rand is any source of intn; modified selects ModifiedKappa vs classic.
func (m *RatingMatrix) KappaSampler(numSamples int, sampleFrac float64, modified bool, intn func(int) int) (mean, std float64, err error) {
	if numSamples <= 0 {
		return 0, 0, fmt.Errorf("stats: numSamples must be positive")
	}
	if sampleFrac <= 0 || sampleFrac > 1 {
		return 0, 0, fmt.Errorf("stats: sampleFrac %v out of (0,1]", sampleFrac)
	}
	size := int(math.Round(sampleFrac * float64(m.Subjects())))
	if size < 2 {
		size = 2
	}
	if size > m.Subjects() {
		size = m.Subjects()
	}
	vals := make([]float64, 0, numSamples)
	for s := 0; s < numSamples; s++ {
		idx := sampleIndices(m.Subjects(), size, intn)
		sub, err := m.Subset(idx)
		if err != nil {
			return 0, 0, err
		}
		var k float64
		if modified {
			k, err = sub.ModifiedKappa()
		} else {
			k, err = sub.FleissKappa()
		}
		if err != nil {
			// Degenerate sample (e.g., every rater picked the same
			// category): skip it, as a practitioner would resample.
			continue
		}
		vals = append(vals, k)
	}
	if len(vals) == 0 {
		return 0, 0, fmt.Errorf("stats: all κ samples degenerate")
	}
	return Mean(vals), StdDev(vals), nil
}

// sampleIndices draws `size` distinct indices from [0,n) via partial
// Fisher-Yates.
func sampleIndices(n, size int, intn func(int) int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < size; i++ {
		j := i + intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:size]
}
