package plan

// Golden-plan harness: ~12 representative queries are optimized against
// fixed cardinalities and budgets, and the rendered costed plan is
// snapshotted under testdata/. Regenerate with:
//
//	go test ./internal/plan -run Golden -update
//
// Beyond the snapshots, TestOptimizerCrossovers pins the paper's
// crossover points programmatically: the join interface, the sort
// method, and the POSSIBLY pre-filter each flip as cardinality or
// budget changes.

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"qurk/internal/core"
	"qurk/internal/dataset"
	"qurk/internal/join"
	"qurk/internal/query"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenLibrary registers every task the golden queries use.
func goldenLibrary(t *testing.T) *core.Library {
	t.Helper()
	lib := core.NewLibrary()
	lib.MustRegister(dataset.IsFemaleTask())
	lib.MustRegister(dataset.SamePersonTask())
	lib.MustRegister(dataset.GenderTask())
	lib.MustRegister(dataset.HairColorTask())
	lib.MustRegister(dataset.SkinColorTask())
	lib.MustRegister(dataset.SquareSorterTask())
	lib.MustRegister(dataset.InSceneTask())
	lib.MustRegister(dataset.NumInSceneTask())
	lib.MustRegister(dataset.QualityTask())
	return lib
}

type goldenCase struct {
	name   string
	src    string
	cards  CardMap
	budget float64
}

var goldenCases = []goldenCase{
	{
		name:  "filter_tiny",
		src:   `SELECT c.name FROM celeb c WHERE isFemale(c.img)`,
		cards: CardMap{"celeb": 10},
	},
	{
		name:   "filter_budget_tight",
		src:    `SELECT c.name FROM celeb c WHERE isFemale(c.img)`,
		cards:  CardMap{"celeb": 200},
		budget: 2.00,
	},
	{
		name:  "join_celebrity_scale",
		src:   `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`,
		cards: CardMap{"celeb": 30, "photos": 30},
	},
	{
		name:  "join_tiny_dense",
		src:   `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`,
		cards: CardMap{"celeb": 4, "photos": 4},
	},
	{
		name:   "join_budget_tight",
		src:    `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`,
		cards:  CardMap{"celeb": 30, "photos": 30},
		budget: 1.00,
	},
	{
		// Three features (pass fraction ≈ 0.15 after the UNKNOWN
		// wildcard share): extraction's linear passes beat the
		// quadratic join savings only at scale.
		name: "join_features_large",
		src: `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
AND POSSIBLY hairColor(c.img) = hairColor(p.img)
AND POSSIBLY skinColor(c.img) = skinColor(p.img)`,
		cards: CardMap{"celeb": 80, "photos": 80},
	},
	{
		name: "join_features_small",
		src: `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
AND POSSIBLY hairColor(c.img) = hairColor(p.img)
AND POSSIBLY skinColor(c.img) = skinColor(p.img)`,
		cards: CardMap{"celeb": 30, "photos": 30},
	},
	{
		// Two weak features never out-prune a SmartBatch grid at
		// celebrity scale — pre-filtering stays off.
		name: "join_features_weak",
		src: `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
AND POSSIBLY hairColor(c.img) = hairColor(p.img)`,
		cards: CardMap{"celeb": 40, "photos": 40},
	},
	{
		name:  "sort_small",
		src:   `SELECT label FROM squares ORDER BY squareSorter(img)`,
		cards: CardMap{"squares": 10},
	},
	{
		name:  "sort_large",
		src:   `SELECT label FROM squares ORDER BY squareSorter(img)`,
		cards: CardMap{"squares": 40},
	},
	{
		name:   "sort_budget_tight",
		src:    `SELECT label FROM squares ORDER BY squareSorter(img)`,
		cards:  CardMap{"squares": 40},
		budget: 0.30,
	},
	{
		name: "possibly_unary_join",
		src: `SELECT s.img FROM scenes s JOIN actors a ON inScene(a.img, s.img)
AND POSSIBLY numInScene(s.img) = 1`,
		cards: CardMap{"scenes": 40, "actors": 10},
	},
	{
		name: "filtered_join_sorted",
		src: `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)
WHERE isFemale(c.img) ORDER BY quality(c.img)`,
		cards: CardMap{"celeb": 30, "photos": 30},
	},
	{
		name:  "or_filter_limit",
		src:   `SELECT c.name FROM celeb c WHERE isFemale(c.img) OR NOT isFemale(c.img) LIMIT 3`,
		cards: CardMap{"celeb": 25},
	},
}

// optimizeCase builds and optimizes one golden query.
func optimizeCase(t *testing.T, lib *core.Library, gc goldenCase) *CostedPlan {
	t.Helper()
	stmt, err := query.ParseQuery(gc.src)
	if err != nil {
		t.Fatalf("%s: parse: %v", gc.name, err)
	}
	node, err := Build(stmt, lib)
	if err != nil {
		t.Fatalf("%s: build: %v", gc.name, err)
	}
	cp, err := Optimize(node, gc.cards, OptimizeOptions{BudgetDollars: gc.budget})
	if err != nil {
		t.Fatalf("%s: optimize: %v", gc.name, err)
	}
	return cp
}

func TestGoldenPlans(t *testing.T) {
	lib := goldenLibrary(t)
	for _, gc := range goldenCases {
		t.Run(gc.name, func(t *testing.T) {
			got := optimizeCase(t, lib, gc).Render()
			path := filepath.Join("testdata", gc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("costed plan drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// findJoin / findSort pull the annotated nodes out of a costed plan.
func findJoin(cp *CostedPlan) *CrowdJoin {
	for _, op := range cp.Ops {
		if j, ok := op.Node.(*CrowdJoin); ok {
			return j
		}
	}
	return nil
}

func findSort(cp *CostedPlan) *CrowdOrderBy {
	for _, op := range cp.Ops {
		if s, ok := op.Node.(*CrowdOrderBy); ok {
			return s
		}
	}
	return nil
}

// TestOptimizerCrossovers pins the paper's crossover points: each of
// the three interface decisions flips as cardinality or budget moves.
func TestOptimizerCrossovers(t *testing.T) {
	lib := goldenLibrary(t)
	byName := map[string]goldenCase{}
	for _, gc := range goldenCases {
		byName[gc.name] = gc
	}
	opt := func(name string) *CostedPlan { return optimizeCase(t, lib, byName[name]) }

	// Join algorithm: SmartBatch 5×5 wins at celebrity-join scale
	// (fewest HITs at acceptable quality, §3.1.3)...
	j := findJoin(opt("join_celebrity_scale"))
	if j.Phys == nil || j.Phys.Algorithm != join.Smart || j.Phys.GridRows != 5 || j.Phys.GridCols != 5 {
		t.Errorf("celebrity-scale join chose %v, want SmartBatch 5×5", j.Phys)
	}
	// ...but a tiny dense join floods grids with matches, flipping the
	// choice to NaiveBatch.
	j = findJoin(opt("join_tiny_dense"))
	if j.Phys == nil || j.Phys.Algorithm != join.Naive {
		t.Errorf("tiny dense join chose %v, want NaiveBatch", j.Phys)
	}

	// POSSIBLY pre-filter: with three features the linear extraction
	// passes pay for themselves at 80×80 but not at 30×30 (§3.2) —
	// the on/off decision flips on cardinality alone.
	j = findJoin(opt("join_features_large"))
	if j.Phys == nil || !j.Phys.UseFeatures {
		t.Errorf("80×80 featured join should pre-filter, got %v", j.Phys)
	}
	j = findJoin(opt("join_features_small"))
	if j.Phys == nil || j.Phys.UseFeatures {
		t.Errorf("30×30 featured join should skip pre-filtering, got %v", j.Phys)
	}
	// Two weak features never pay at celebrity scale.
	j = findJoin(opt("join_features_weak"))
	if j.Phys == nil || j.Phys.UseFeatures {
		t.Errorf("weakly-featured 40×40 join should skip pre-filtering, got %v", j.Phys)
	}

	// Sort method: Compare at 10 items, Hybrid overtakes at 40 (§4.2),
	// and a tight budget degrades to Rate.
	s := findSort(opt("sort_small"))
	if s.Phys == nil || s.Phys.Method != core.SortCompare {
		t.Errorf("10-item sort chose %v, want Compare", s.Phys)
	}
	s = findSort(opt("sort_large"))
	if s.Phys == nil || s.Phys.Method != core.SortHybrid {
		t.Errorf("40-item sort chose %v, want Hybrid", s.Phys)
	}
	cp := opt("sort_budget_tight")
	s = findSort(cp)
	if s.Phys == nil || s.Phys.Method != core.SortRate {
		t.Errorf("budget-tight sort chose %v, want Rate", s.Phys)
	}
	if cp.OverBudget {
		t.Error("rate sort fits $0.30, should not be over budget")
	}
	if cp.TotalDollars > 0.30+1e-9 {
		t.Errorf("budget-tight sort spends $%.2f > $0.30", cp.TotalDollars)
	}

	// Budget compliance on the tight join case.
	cp = opt("join_budget_tight")
	if !cp.OverBudget && cp.TotalDollars > 1.00+1e-9 {
		t.Errorf("budget-tight join spends $%.2f > $1.00", cp.TotalDollars)
	}
}
