package plan

import (
	"strings"
	"testing"

	"qurk/internal/core"
	"qurk/internal/dataset"
	"qurk/internal/join"
	"qurk/internal/sortop"
)

// TestRenderWithActual: executed operator labels fold onto costed ops
// (exact labels, OR-branch suffixes, extraction credited to the
// pre-filtered join) and render as est-vs-actual lines.
func TestRenderWithActual(t *testing.T) {
	cj := &CrowdJoin{
		Left:  &Scan{Table: "celeb"},
		Right: &Scan{Table: "photos"},
		Task:  dataset.SamePersonTask(),
		LeftFeatures: []join.Feature{
			{Task: dataset.GenderTask(), Field: "gender"},
			{Task: dataset.HairColorTask(), Field: "hair"},
			{Task: dataset.SkinColorTask(), Field: "skin"},
		},
		RightFeatures: []join.Feature{
			{Task: dataset.GenderTask(), Field: "gender"},
			{Task: dataset.HairColorTask(), Field: "hair"},
			{Task: dataset.SkinColorTask(), Field: "skin"},
		},
	}
	root := &Project{Input: cj, Star: true}
	cp, err := Optimize(root, CardMap{"celeb": 80, "photos": 80}, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cj.Phys == nil || !cj.Phys.UseFeatures {
		t.Fatalf("80×80 three-feature join should pre-filter, got %v", cj.Phys)
	}
	out := cp.RenderWithActual([]OpActual{
		{Label: cj.Label(), HITs: 300},
		{Label: "extract-left", HITs: 20},
		{Label: "extract-right", HITs: 20},
		{Label: "unrelated op", HITs: 999},
	})
	if !strings.Contains(out, "actual 340 HITs") {
		t.Errorf("extraction not folded into the join's actual:\n%s", out)
	}
	if strings.Contains(out, "999") {
		t.Errorf("unmatched labels must be ignored:\n%s", out)
	}
}

// TestRenderOverBudget: an impossible budget is flagged, never hidden.
func TestRenderOverBudget(t *testing.T) {
	cp, err := Optimize(joinPlan(), CardMap{"celeb": 50, "photos": 50}, OptimizeOptions{BudgetDollars: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !cp.OverBudget {
		t.Fatal("$0.01 cannot cover any 50×50 join")
	}
	if !strings.Contains(cp.Render(), "OVER BUDGET") {
		t.Errorf("over-budget plan not flagged:\n%s", cp.Render())
	}
	// Over budget degrades to minimum spend: one assignment everywhere.
	for _, op := range cp.Ops {
		if op.Assignments != 1 {
			t.Errorf("%s at %d assignments, want the 1-assignment floor", op.Label, op.Assignments)
		}
	}
}

// TestPhysStrings pins the EXPLAIN vocabulary to the paper's names.
func TestPhysStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{(&JoinPhys{Algorithm: join.Simple}).String(), "Simple"},
		{(&JoinPhys{Algorithm: join.Naive, BatchSize: 5}).String(), "NaiveBatch b=5"},
		{(&JoinPhys{Algorithm: join.Smart, GridRows: 5, GridCols: 5, UseFeatures: true}).String(), "SmartBatch 5×5 + prefilter"},
		{(&SortPhys{Method: core.SortCompare, GroupSize: 5}).String(), "Compare S=5"},
		{(&SortPhys{Method: core.SortRate, RateBatch: 5}).String(), "Rate b=5"},
		{(&SortPhys{Method: core.SortHybrid, GroupSize: 5, Step: 6, Iterations: 20, Strategy: sortop.SlidingWindow}).String(), "Hybrid/Window S=5 t=6 i=20"},
		{(&BatchPhys{Batch: 4}).String(), "batch 4"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

// TestCardMapAndUnknownTables: unknown cardinalities fall back to
// DefaultRows with a note instead of failing.
func TestCardMapAndUnknownTables(t *testing.T) {
	if n, ok := (CardMap{"celeb": 7}).Cardinality("CELEB"); !ok || n != 7 {
		t.Errorf("CardMap lookup is case-insensitive: got %d %v", n, ok)
	}
	cp, err := Optimize(joinPlan(), CardMap{}, OptimizeOptions{DefaultRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range cp.Notes {
		if strings.Contains(n, "unknown") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing cardinality note: %v", cp.Notes)
	}
	if cp.Ops[0].InRows != 100 {
		t.Errorf("pairs = %d, want 10×10", cp.Ops[0].InRows)
	}
}

// TestOptimizeMachineNodes: machine filters, machine sorts, unary
// POSSIBLY, and generative SELECTs flow through the estimator.
func TestOptimizeMachineNodes(t *testing.T) {
	scan := &Scan{Table: "scenes"}
	mf := &MachineFilter{Input: scan}
	up := &UnaryPossibly{Input: mf, Task: dataset.NumInSceneTask(), Field: "count", Op: "=", Value: "1"}
	g := &Generate{Input: up, Task: dataset.NumInSceneTask(), Fields: []string{"count"}}
	mo := &MachineOrderBy{Input: g, Cols: []string{"img"}, Desc: []bool{false}}
	root := &Limit{Input: &Project{Input: mo, Star: true}, N: 3}
	cp, err := Optimize(root, CardMap{"scenes": 40}, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Ops) != 2 {
		t.Fatalf("%d costed ops, want possibly + generate", len(cp.Ops))
	}
	// 40 rows → machine filter (0.5) → 20 → possibly ⌈20/4⌉ = 5 HITs.
	if cp.Ops[0].HITs != 5 {
		t.Errorf("possibly est = %d HITs, want 5", cp.Ops[0].HITs)
	}
	if up.Phys == nil || g.Phys == nil {
		t.Error("batch operators not annotated")
	}
}
