// Cost-based operator selection (paper §2.6: "the objective is to
// minimize the total number of HITs"). Optimize walks a logical plan,
// propagates cardinality estimates from the base relations, prices
// every interface alternative for each crowd operator — join
// Simple/NaiveBatch/SmartBatch with batch and grid shapes, POSSIBLY
// feature pre-filtering on or off, sort Compare/Rate/Hybrid with
// iteration counts — and annotates the nodes with the cheapest
// alternative (in HITs) whose estimated answer quality clears a floor,
// downgrading choices and per-operator assignment counts to fit a
// total dollar budget. The annotated tree compiles on the existing
// streaming executor unchanged.
package plan

import (
	"fmt"
	"math"
	"strings"

	"qurk/internal/adaptive"
	"qurk/internal/core"
	"qurk/internal/cost"
	"qurk/internal/join"
	"qurk/internal/obstats"
	"qurk/internal/sortop"
	"qurk/internal/task"
)

// StatsSource supplies observed per-task statistics from prior runs
// (selectivities, POSSIBLY pass fractions, sort group sizes — the
// obstats.Kind* constants). core.ObservedStats satisfies it, so an
// engine's ObStats store plugs in directly; nil disables seeding and
// prices plans from the paper's fixed constants exactly as before.
type StatsSource interface {
	// Estimate returns the weighted mean and total weight for one
	// (task, kind), or ok=false when nothing was ever observed.
	Estimate(task, kind string) (value, weight float64, ok bool)
}

// CardSource supplies base-relation cardinalities. relation.Catalog
// implements it; tests use a map.
type CardSource interface {
	// Cardinality returns a base table's row count, false when unknown.
	Cardinality(table string) (int, bool)
}

// CardMap is a literal CardSource for tests and Explain-before-load.
type CardMap map[string]int

// Cardinality implements CardSource (case-insensitive).
func (m CardMap) Cardinality(table string) (int, bool) {
	n, ok := m[strings.ToLower(table)]
	return n, ok
}

// OptimizeOptions parametrizes the pass. Zero values take the engine's
// defaults, so OptimizeOptions{} prices plans exactly as the executor
// runs them.
type OptimizeOptions struct {
	// BudgetDollars is the total spend allowed for the plan's crowd
	// work; 0 means unconstrained.
	BudgetDollars float64
	// Assignments is the default (and maximum) workers per HIT
	// (default 5).
	Assignments int
	// MinQuality is the per-answer accuracy floor an alternative must
	// clear to be eligible outside budget pressure (default 0.85).
	MinQuality float64
	// DefaultRows stands in for unknown base-table cardinalities
	// (default 100); a note records the guess.
	DefaultRows int
	// Selectivity estimates for operators whose output size cannot be
	// known before running (defaults 0.5). JoinSelectivity 0 means
	// 1/max(|R|,|S|) — the equijoin-style "each row matches about one
	// partner" estimate.
	FilterSelectivity, MachineSelectivity, PossiblySelectivity, JoinSelectivity float64
	// Batch sizes, mirroring core.Options (defaults 5, 5, 4, 5).
	FilterBatch, GenerativeBatch, ExtractBatch, RateBatch int
	// JoinBatch seeds the NaiveBatch candidates b and 2b (default 5);
	// GridRows×GridCols seeds the SmartBatch candidates alongside 5×5
	// (default 3×3).
	JoinBatch, GridRows, GridCols int
	// Sort parameters, mirroring core.Options (defaults 5, 20, 6).
	CompareGroupSize, HybridIterations, HybridStep int
	// Stats, when non-nil, seeds selectivity / pass-fraction /
	// group-size estimates from observed history: each estimate is the
	// fixed prior blended toward the store's weighted mean
	// (cost.BlendObserved), and a note records every seeded value.
	Stats StatsSource
}

func (o *OptimizeOptions) fillDefaults() {
	if o.Assignments == 0 {
		o.Assignments = 5
	}
	if o.MinQuality == 0 {
		o.MinQuality = 0.85
	}
	if o.DefaultRows == 0 {
		o.DefaultRows = 100
	}
	if o.FilterSelectivity == 0 {
		o.FilterSelectivity = 0.5
	}
	if o.MachineSelectivity == 0 {
		o.MachineSelectivity = 0.5
	}
	if o.PossiblySelectivity == 0 {
		o.PossiblySelectivity = 0.5
	}
	if o.FilterBatch == 0 {
		o.FilterBatch = 5
	}
	if o.GenerativeBatch == 0 {
		o.GenerativeBatch = 5
	}
	if o.ExtractBatch == 0 {
		o.ExtractBatch = 4
	}
	if o.RateBatch == 0 {
		o.RateBatch = 5
	}
	if o.JoinBatch == 0 {
		o.JoinBatch = 5
	}
	if o.GridRows == 0 {
		o.GridRows = 3
	}
	if o.GridCols == 0 {
		o.GridCols = 3
	}
	if o.CompareGroupSize == 0 {
		o.CompareGroupSize = 5
	}
	if o.HybridIterations == 0 {
		o.HybridIterations = 20
	}
	if o.HybridStep == 0 {
		o.HybridStep = 6
	}
}

// OptimizeOptionsFrom seeds the pass from engine options plus a budget.
func OptimizeOptionsFrom(eo core.Options, budgetDollars float64) OptimizeOptions {
	return OptimizeOptions{
		BudgetDollars:    budgetDollars,
		Assignments:      eo.Assignments,
		FilterBatch:      eo.FilterBatch,
		GenerativeBatch:  eo.GenerativeBatch,
		ExtractBatch:     eo.ExtractBatch,
		RateBatch:        eo.RateBatch,
		JoinBatch:        eo.JoinBatch,
		GridRows:         eo.GridRows,
		GridCols:         eo.GridCols,
		CompareGroupSize: eo.CompareGroupSize,
		HybridIterations: eo.HybridIterations,
		HybridStep:       eo.HybridStep,
	}
}

// OpCost is one crowd operator's costed choice.
type OpCost struct {
	// Node is the annotated plan node.
	Node Node
	// Label is the node's Explain label; Choice the chosen interface.
	Label, Choice string
	// Detail records the cardinality reasoning ("pairs 900, sel 0.033").
	Detail string
	// HITs is the estimated HIT count (extraction included for
	// pre-filtered joins); Assignments the chosen workers per HIT.
	HITs, Assignments int
	// Dollars prices HITs×Assignments at the paper's $0.015.
	Dollars float64
	// MakespanHours estimates the operator's crowd completion time.
	MakespanHours float64
	// Quality is the estimated combined (post-vote) accuracy.
	Quality float64
	// InRows and OutRows are the cardinality estimates around the node.
	InRows, OutRows int
}

// OpActual pairs an executed operator label with its posted HITs and
// the run's observed statistics, for estimated-vs-actual rendering.
type OpActual struct {
	// Label matches the OpStat label from the executed run.
	Label string
	// HITs is the operator's actually posted HIT count.
	HITs int
	// Observed statistics measured by the executed run (exec.Stats
	// ObservedStats, or the stats store). A zero weight means the
	// statistic was not observed and its column is omitted; values with
	// weights merge as weighted means when several entries share an
	// operator.
	Selectivity, SelectivityWeight   float64
	PassFraction, PassFractionWeight float64
	GroupSize, GroupSizeWeight       float64
}

// CostedPlan is the optimizer's result: the annotated tree plus the
// estimates that justified each choice.
type CostedPlan struct {
	// Root is the annotated plan tree, executable via RunPlan.
	Root Node
	// Ops lists crowd operators in plan (post-) order.
	Ops []OpCost
	// TotalHITs, TotalDollars, MakespanHours sum the operator
	// estimates (makespans add serially; pipelining runs faster).
	TotalHITs int
	// TotalDollars prices TotalHITs at the chosen assignment levels.
	TotalDollars float64
	// MakespanHours is the serial crowd-time estimate.
	MakespanHours float64
	// Quality is the weakest operator's combined accuracy.
	Quality float64
	// BudgetDollars echoes the constraint; OverBudget reports that even
	// the cheapest interfaces at one assignment exceed it.
	BudgetDollars float64
	// OverBudget is set when no interface assignment satisfies the
	// budget.
	OverBudget bool
	// Notes records estimation caveats and budget downgrades.
	Notes []string
}

// segment is one HIT group within an alternative (a pre-filtered join
// has extraction segments plus the join segment).
type segment struct {
	hits   int
	effort float64
}

// alternative is one candidate interface for an operator.
type alternative struct {
	choice  string
	quality float64 // per-answer accuracy
	segs    []segment
	apply   func(assignments int)
}

func (a *alternative) hits() int {
	n := 0
	for _, s := range a.segs {
		n += s.hits
	}
	return n
}

func (a *alternative) makespan(k int) float64 {
	var t float64
	for _, s := range a.segs {
		t += cost.GroupMakespanHours(s.hits, k, s.effort)
	}
	return t
}

// opEntry is one crowd operator's alternative set during optimization.
type opEntry struct {
	node           Node
	label, detail  string
	alts           []alternative
	chosen         int
	assignments    int
	inRows, outRow int
}

type optimizer struct {
	opt     OptimizeOptions
	cards   CardSource
	entries []*opEntry
	notes   []string
}

// Optimize annotates the plan with cost-chosen physical interfaces and
// returns the costed plan. The tree is annotated in place (Phys fields
// only); logical structure is untouched.
func Optimize(root Node, cards CardSource, opt OptimizeOptions) (*CostedPlan, error) {
	opt.fillDefaults()
	o := &optimizer{opt: opt, cards: cards}
	if _, err := o.visit(root); err != nil {
		return nil, err
	}
	o.selectAlternatives()
	over := o.fitBudget()
	o.allocateAssignments(over)
	return o.finish(root, over), nil
}

func (o *optimizer) note(format string, args ...any) {
	o.notes = append(o.notes, fmt.Sprintf(format, args...))
}

// observed reads one statistic from the configured history source;
// ok=false when no source is configured or nothing was recorded.
func (o *optimizer) observed(taskName, kind string) (value, weight float64, ok bool) {
	if o.opt.Stats == nil {
		return 0, 0, false
	}
	return o.opt.Stats.Estimate(taskName, kind)
}

// visit estimates output cardinality bottom-up and collects crowd
// operator alternatives in post-order.
func (o *optimizer) visit(n Node) (int, error) {
	opt := &o.opt
	switch t := n.(type) {
	case *Scan:
		rows, ok := o.cards.Cardinality(t.Table)
		if !ok {
			rows = opt.DefaultRows
			o.note("cardinality of %s unknown; assuming %d rows", t.Table, rows)
		}
		return rows, nil

	case *MachineFilter:
		in, err := o.visit(t.Input)
		if err != nil {
			return 0, err
		}
		return scaleRows(in, opt.MachineSelectivity), nil

	case *CrowdFilter:
		in, err := o.visit(t.Input)
		if err != nil {
			return 0, err
		}
		sel := opt.FilterSelectivity
		if v, w, ok := o.observed(t.Task.Name, obstats.KindSelectivity); ok {
			sel = clampFraction(cost.BlendObserved(sel, v, w))
			o.note("%s: selectivity %.3f seeded from observed history (weight %.0f)", t.Label(), sel, w)
		}
		out := scaleRows(in, sel)
		o.addSingle(t, in, out, opt.FilterBatch, func(k int) {
			t.Phys = &BatchPhys{Batch: opt.FilterBatch, Assignments: k}
		}, segment{cost.BatchHITs(in, opt.FilterBatch), cost.PairEffort(opt.FilterBatch)})
		return out, nil

	case *CrowdFilterOr:
		in, err := o.visit(t.Input)
		if err != nil {
			return 0, err
		}
		uniq := uniqueBranches(t)
		pass := 1 - math.Pow(1-opt.FilterSelectivity, float64(len(t.Branches)))
		out := scaleRows(in, pass)
		o.addSingle(t, in, out, opt.FilterBatch, func(k int) {
			t.Phys = &BatchPhys{Batch: opt.FilterBatch, Assignments: k}
		}, segment{uniq * cost.BatchHITs(in, opt.FilterBatch), cost.PairEffort(opt.FilterBatch)})
		return out, nil

	case *UnaryPossibly:
		in, err := o.visit(t.Input)
		if err != nil {
			return 0, err
		}
		out := scaleRows(in, opt.PossiblySelectivity)
		o.addSingle(t, in, out, opt.ExtractBatch, func(k int) {
			t.Phys = &BatchPhys{Batch: opt.ExtractBatch, Assignments: k}
		}, segment{cost.BatchHITs(in, opt.ExtractBatch), cost.GenerativeEffort(1, opt.ExtractBatch)})
		return out, nil

	case *Generate:
		in, err := o.visit(t.Input)
		if err != nil {
			return 0, err
		}
		o.addSingle(t, in, in, opt.GenerativeBatch, func(k int) {
			t.Phys = &BatchPhys{Batch: opt.GenerativeBatch, Assignments: k}
		}, segment{cost.BatchHITs(in, opt.GenerativeBatch), cost.GenerativeEffort(len(t.Fields), opt.GenerativeBatch)})
		return in, nil

	case *CrowdJoin:
		lr, err := o.visit(t.Left)
		if err != nil {
			return 0, err
		}
		rr, err := o.visit(t.Right)
		if err != nil {
			return 0, err
		}
		return o.visitJoin(t, lr, rr)

	case *CrowdOrderBy:
		in, err := o.visit(t.Input)
		if err != nil {
			return 0, err
		}
		o.visitSort(t, in)
		return in, nil

	case *MachineOrderBy:
		return o.visit(t.Input)
	case *Project:
		return o.visit(t.Input)
	case *Limit:
		in, err := o.visit(t.Input)
		if err != nil {
			return 0, err
		}
		if t.N >= 0 && t.N < in {
			o.note("LIMIT %d caps output; upstream estimates ignore the streaming short-circuit savings", t.N)
			return t.N, nil
		}
		return in, nil
	default:
		return 0, fmt.Errorf("plan: optimize: unknown node %T", n)
	}
}

// addSingle registers a crowd operator with exactly one interface (its
// batching is fixed by options; only the vote level is negotiable).
func (o *optimizer) addSingle(n Node, in, out, batch int, apply func(int), segs ...segment) {
	o.entries = append(o.entries, &opEntry{
		node:   n,
		label:  n.Label(),
		detail: fmt.Sprintf("rows %d→%d", in, out),
		alts: []alternative{{
			choice:  fmt.Sprintf("batch %d", batch),
			quality: cost.FilterQuality(batch),
			segs:    segs,
			apply:   func(k int) { apply(k) },
		}},
		inRows: in,
		outRow: out,
	})
}

// visitJoin enumerates join interface × prefilter alternatives.
func (o *optimizer) visitJoin(t *CrowdJoin, lr, rr int) (int, error) {
	opt := &o.opt
	sel := opt.JoinSelectivity
	if sel == 0 {
		if m := max(lr, rr); m > 0 {
			sel = 1 / float64(m)
		} else {
			sel = 1
		}
	}
	if v, w, ok := o.observed(t.Task.Name, obstats.KindSelectivity); ok {
		sel = clampFraction(cost.BlendObserved(sel, v, w))
		o.note("%s: join selectivity %.3f seeded from observed history (weight %.0f)", t.Label(), sel, w)
	}
	pairs := cost.JoinPairs(lr, rr, 1)
	out := scaleRows(pairs, sel)

	// POSSIBLY pre-filter pass fraction: independent features each pass
	// ≈ 1/domain for known extractions plus the UNKNOWN-wildcard share
	// (§2.4: UNKNOWN never prunes); true matches always agree, flooring
	// the fraction at the join selectivity. Observed history overrides
	// the model — this is exactly the estimate PR 3 recorded as
	// factor-of-two off.
	passFrac := 1.0
	for _, f := range t.LeftFeatures {
		passFrac *= cost.FeaturePassFraction(featureDomain(f), cost.DefaultUnknownRate)
	}
	if v, w, ok := o.observed(t.Task.Name, obstats.KindPassFraction); ok && len(t.LeftFeatures) > 0 {
		passFrac = clampFraction(cost.BlendObserved(passFrac, v, w))
		o.note("%s: POSSIBLY pass fraction %.3f seeded from observed history (weight %.0f)", t.Label(), passFrac, w)
	}
	if passFrac < sel {
		passFrac = sel
	}
	extractSegs := []segment{
		{cost.BatchHITs(lr, opt.ExtractBatch), cost.GenerativeEffort(len(t.LeftFeatures), opt.ExtractBatch)},
		{cost.BatchHITs(rr, opt.ExtractBatch), cost.GenerativeEffort(len(t.RightFeatures), opt.ExtractBatch)},
	}

	naives := []int{opt.JoinBatch}
	if b2 := 2 * opt.JoinBatch; b2 != opt.JoinBatch {
		naives = append(naives, b2)
	}
	grids := [][2]int{{opt.GridRows, opt.GridCols}}
	if opt.GridRows != 5 || opt.GridCols != 5 {
		grids = append(grids, [2]int{5, 5})
	}

	entry := &opEntry{
		node:   t,
		label:  t.Label(),
		detail: fmt.Sprintf("|R|=%d |S|=%d pairs %d sel %.3f → rows %d", lr, rr, pairs, sel, out),
		inRows: pairs,
		outRow: out,
	}
	add := func(alg join.Algorithm, b, gr, gc int, prefilter bool) {
		frac := 1.0
		if prefilter {
			frac = passFrac
		}
		var jseg segment
		var phys JoinPhys
		var name string
		switch alg {
		case join.Simple:
			jseg = segment{cost.SimpleJoinHITs(cost.JoinPairs(lr, rr, frac)), cost.PairEffort(1)}
			phys = JoinPhys{Algorithm: join.Simple}
			name = "Simple"
		case join.Naive:
			jseg = segment{cost.NaiveJoinHITs(cost.JoinPairs(lr, rr, frac), b), cost.PairEffort(b)}
			phys = JoinPhys{Algorithm: join.Naive, BatchSize: b}
			name = fmt.Sprintf("NaiveBatch b=%d", b)
		case join.Smart:
			jseg = segment{cost.SmartJoinHITs(lr, rr, gr, gc, frac), cost.GridEffort(gr, gc)}
			phys = JoinPhys{Algorithm: join.Smart, GridRows: gr, GridCols: gc}
			name = fmt.Sprintf("SmartBatch %d×%d", gr, gc)
		}
		if cost.Refused(jseg.effort) {
			return
		}
		q := 0.0
		switch alg {
		case join.Simple:
			q = cost.QualitySimplePair
		case join.Naive:
			q = cost.PairQuality(b)
		case join.Smart:
			q = cost.GridQuality(gr, gc, sel*float64(gr*gc))
		}
		segs := []segment{jseg}
		if prefilter {
			phys.UseFeatures = true
			name += " + prefilter"
			segs = append(append([]segment{}, extractSegs...), jseg)
			// Extraction errors lose true matches: small per-feature
			// quality tax (§3.2's result-loss rule exists for a reason).
			q -= 0.01 * float64(len(t.LeftFeatures))
		}
		p := phys
		entry.alts = append(entry.alts, alternative{
			choice:  name,
			quality: q,
			segs:    segs,
			apply: func(k int) {
				pp := p
				pp.Assignments = k
				t.Phys = &pp
			},
		})
	}
	prefilters := []bool{false}
	if len(t.LeftFeatures) > 0 {
		prefilters = append(prefilters, true)
	}
	for _, pf := range prefilters {
		add(join.Simple, 0, 0, 0, pf)
		for _, b := range naives {
			add(join.Naive, b, 0, 0, pf)
		}
		for _, g := range grids {
			add(join.Smart, 0, g[0], g[1], pf)
		}
	}
	o.entries = append(o.entries, entry)
	return out, nil
}

// visitSort enumerates Compare / Rate / Hybrid alternatives.
func (o *optimizer) visitSort(t *CrowdOrderBy, in int) {
	opt := &o.opt
	entry := &opEntry{
		node:   t,
		label:  t.Label(),
		detail: fmt.Sprintf("rows %d", in),
		inRows: in,
		outRow: in,
	}
	// Per-group cost shaping (GROUP BY sorts each group independently,
	// so HITs scale with group sizes, not one global n): with observed
	// history the estimate becomes ceil(in/g) groups of ≈g rows; without
	// it the single-group assumption stands, noted as before. The
	// executor refines per group mid-run once each group's true size
	// materializes (ReplanOptions).
	groups, gsize := 1, in
	if len(t.GroupCols) > 0 {
		if g, w, ok := o.observed(t.Task.Name, obstats.KindGroupSize); ok && g >= 1 && in > 0 {
			gsize = int(math.Round(g))
			if gsize < 1 {
				gsize = 1
			}
			if gsize > in {
				gsize = in
			}
			groups = (in + gsize - 1) / gsize
			o.note("%s: estimated as %d groups of ≈%d rows (observed group sizes, weight %.0f)",
				t.Label(), groups, gsize, w)
		} else {
			o.note("%s estimated as a single group (group count unknown before execution)", t.Label())
		}
	}
	if in < 2 {
		entry.alts = []alternative{{
			choice:  "(≤1 row, no crowd sort)",
			quality: 1,
			apply: func(k int) {
				t.Phys = &SortPhys{Method: core.SortCompare, GroupSize: opt.CompareGroupSize,
					RateBatch: opt.RateBatch, Iterations: opt.HybridIterations, Step: opt.HybridStep,
					Strategy: sortop.SlidingWindow, Assignments: k}
			},
		}}
		o.entries = append(o.entries, entry)
		return
	}
	s := opt.CompareGroupSize
	compareHITs := groups * compareCoverHITs(gsize, s)
	if gsize > exactCoverLimit {
		o.note("%s: comparison cover approximated analytically for %d rows", t.Label(), gsize)
	}
	entry.alts = append(entry.alts, alternative{
		choice:  fmt.Sprintf("Compare S=%d", s),
		quality: cost.QualityCompareSort,
		segs:    []segment{{compareHITs, cost.CompareEffort(s)}},
		apply: func(k int) {
			t.Phys = &SortPhys{Method: core.SortCompare, GroupSize: s,
				RateBatch: opt.RateBatch, Iterations: opt.HybridIterations, Step: opt.HybridStep,
				Strategy: sortop.SlidingWindow, Assignments: k}
		},
	})
	entry.alts = append(entry.alts, alternative{
		choice:  fmt.Sprintf("Rate b=%d", opt.RateBatch),
		quality: cost.QualityRateSort,
		segs:    []segment{{groups * cost.RateSortHITs(gsize, opt.RateBatch), cost.PairEffort(opt.RateBatch)}},
		apply: func(k int) {
			t.Phys = &SortPhys{Method: core.SortRate, GroupSize: s,
				RateBatch: opt.RateBatch, Iterations: opt.HybridIterations, Step: opt.HybridStep,
				Strategy: sortop.SlidingWindow, Assignments: k}
		},
	})
	for _, iters := range hybridIterationLevels(opt.HybridIterations, gsize) {
		iters := iters
		entry.alts = append(entry.alts, alternative{
			choice:  fmt.Sprintf("Hybrid/Window S=%d t=%d i=%d", s, opt.HybridStep, iters),
			quality: cost.HybridQuality(gsize, iters, opt.HybridStep),
			segs: []segment{
				{groups * cost.RateSortHITs(gsize, opt.RateBatch), cost.PairEffort(opt.RateBatch)},
				{groups * iters, cost.CompareEffort(s)},
			},
			apply: func(k int) {
				t.Phys = &SortPhys{Method: core.SortHybrid, GroupSize: s,
					RateBatch: opt.RateBatch, Iterations: iters, Step: opt.HybridStep,
					Strategy: sortop.SlidingWindow, Assignments: k}
			},
		})
	}
	o.entries = append(o.entries, entry)
}

// exactCoverLimit bounds the exact greedy group-cover computation —
// the cover itself is O(n³)-ish, too slow to build just for an
// estimate on large inputs; beyond it the §4.1.1 closed form stands in.
const exactCoverLimit = 120

// compareCoverHITs is the comparison sort's HIT estimate: the exact
// greedy cover the executor will build for small inputs, the paper's
// n(n−1)/(S(S−1)) bound beyond exactCoverLimit.
func compareCoverHITs(n, s int) int {
	if n <= exactCoverLimit {
		return len(sortop.CoverGroups(n, s, nil))
	}
	return cost.CompareSortHITs(n, s)
}

// hybridIterationLevels offers the configured iteration count plus
// cardinality-scaled levels (≈1.5 and 3 full window passes), deduped
// ascending.
func hybridIterationLevels(configured, n int) []int {
	cand := []int{configured, (n + 1) / 2, n}
	var out []int
	for _, c := range cand {
		if c < 1 {
			continue
		}
		dup := false
		for _, x := range out {
			if x == c {
				dup = true
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// selectAlternatives picks, per operator, the fewest-HITs alternative
// meeting the quality floor (ties: higher quality, then earlier
// candidate); when nothing clears the floor the highest-quality
// alternative wins.
func (o *optimizer) selectAlternatives() {
	for _, e := range o.entries {
		best := -1
		for i := range e.alts {
			a := &e.alts[i]
			if a.quality < o.opt.MinQuality {
				continue
			}
			if best < 0 || a.hits() < e.alts[best].hits() ||
				(a.hits() == e.alts[best].hits() && a.quality > e.alts[best].quality) {
				best = i
			}
		}
		if best < 0 {
			for i := range e.alts {
				a := &e.alts[i]
				if best < 0 || a.quality > e.alts[best].quality ||
					(a.quality == e.alts[best].quality && a.hits() < e.alts[best].hits()) {
					best = i
				}
			}
		}
		e.chosen = best
	}
}

// fitBudget downgrades choices (largest HIT saving first, quality as
// tie-break) until the plan's floor cost — every operator at one
// assignment — fits the budget. Returns true when even the global
// minimum exceeds it.
func (o *optimizer) fitBudget() bool {
	budget := o.opt.BudgetDollars
	if budget <= 0 {
		return false
	}
	floorDollars := func() float64 {
		var d float64
		for _, e := range o.entries {
			d += cost.Dollars(e.alts[e.chosen].hits(), 1)
		}
		return d
	}
	for floorDollars() > budget {
		bestE, bestA, bestSave := -1, -1, 0
		var bestQ float64
		for ei, e := range o.entries {
			cur := e.alts[e.chosen].hits()
			for ai := range e.alts {
				save := cur - e.alts[ai].hits()
				if save <= 0 {
					continue
				}
				q := e.alts[ai].quality
				if save > bestSave || (save == bestSave && q > bestQ) {
					bestE, bestA, bestSave, bestQ = ei, ai, save, q
				}
			}
		}
		if bestE < 0 {
			return true
		}
		e := o.entries[bestE]
		o.note("budget $%.2f: %s downgraded %s → %s (−%d HITs)",
			budget, e.label, e.alts[e.chosen].choice, e.alts[bestA].choice, bestSave)
		e.chosen = bestA
	}
	return false
}

// allocateAssignments spreads the budget across operators as vote
// levels via the §6 whole-plan allocator: odd levels up to the default
// assignment count, maximizing the weakest operator's post-vote
// quality. Unconstrained plans use the default level everywhere.
func (o *optimizer) allocateAssignments(over bool) {
	maxK := o.opt.Assignments
	for _, e := range o.entries {
		e.assignments = maxK
	}
	if o.opt.BudgetDollars <= 0 {
		return
	}
	if over {
		for _, e := range o.entries {
			e.assignments = 1
		}
		return
	}
	var levels []int
	for k := 1; k <= maxK; k += 2 {
		levels = append(levels, k)
	}
	if levels[len(levels)-1] != maxK {
		levels = append(levels, maxK)
	}
	var stages []adaptive.BudgetStage
	var idx []int
	for i, e := range o.entries {
		a := &e.alts[e.chosen]
		if a.hits() == 0 {
			continue
		}
		qs := make([]float64, len(levels))
		for li, k := range levels {
			qs[li] = cost.MajorityQuality(a.quality, k)
		}
		stages = append(stages, adaptive.BudgetStage{
			Name: e.label, HITs: a.hits(), Levels: levels, Quality: qs,
		})
		idx = append(idx, i)
	}
	if len(stages) == 0 {
		return
	}
	bp, err := adaptive.AllocateBudget(stages, o.opt.BudgetDollars)
	if err != nil {
		// fitBudget guaranteed the floor fits, so this is unreachable;
		// degrade gracefully regardless.
		for _, i := range idx {
			o.entries[i].assignments = 1
		}
		return
	}
	for si, i := range idx {
		o.entries[i].assignments = bp.Assignments[si]
	}
	if bp.Assignments[0] < maxK {
		o.note("budget $%.2f: assignment levels reduced below %d on some operators", o.opt.BudgetDollars, maxK)
	}
}

// finish applies the chosen annotations and assembles the costed plan.
func (o *optimizer) finish(root Node, over bool) *CostedPlan {
	cp := &CostedPlan{
		Root:          root,
		BudgetDollars: o.opt.BudgetDollars,
		OverBudget:    over,
		Notes:         o.notes,
		Quality:       1,
	}
	for _, e := range o.entries {
		a := &e.alts[e.chosen]
		k := e.assignments
		a.apply(k)
		q := cost.MajorityQuality(a.quality, k)
		oc := OpCost{
			Node:          e.node,
			Label:         e.label,
			Choice:        a.choice,
			Detail:        e.detail,
			HITs:          a.hits(),
			Assignments:   k,
			Dollars:       cost.Dollars(a.hits(), k),
			MakespanHours: a.makespan(k),
			Quality:       q,
			InRows:        e.inRows,
			OutRows:       e.outRow,
		}
		cp.Ops = append(cp.Ops, oc)
		cp.TotalHITs += oc.HITs
		cp.TotalDollars += oc.Dollars
		cp.MakespanHours += oc.MakespanHours
		if oc.HITs > 0 && q < cp.Quality {
			cp.Quality = q
		}
	}
	return cp
}

// Render renders the costed plan: the logical tree with each crowd
// operator's chosen interface and estimates, then plan totals, budget
// status, and notes — the EXPLAIN the paper's §6 asks for.
func (cp *CostedPlan) Render() string { return cp.render(nil) }

// RenderWithActual additionally prints each operator's actual posted
// HITs (from an executed run's stats) next to its estimate.
func (cp *CostedPlan) RenderWithActual(actual []OpActual) string {
	return cp.render(cp.foldActual(actual))
}

// actualAgg accumulates executed-run facts per costed node: posted
// HITs plus weighted sums of the observed statistics.
type actualAgg struct {
	hits                                  int
	sel, selW, pass, passW, gsize, gsizeW float64
}

// fold merges one OpActual into the aggregate (weighted-mean merge for
// the observed columns).
func (g *actualAgg) fold(a OpActual) {
	g.hits += a.HITs
	if a.SelectivityWeight > 0 {
		g.sel += a.Selectivity * a.SelectivityWeight
		g.selW += a.SelectivityWeight
	}
	if a.PassFractionWeight > 0 {
		g.pass += a.PassFraction * a.PassFractionWeight
		g.passW += a.PassFractionWeight
	}
	if a.GroupSizeWeight > 0 {
		g.gsize += a.GroupSize * a.GroupSizeWeight
		g.gsizeW += a.GroupSizeWeight
	}
}

// foldActual maps executed operator labels onto costed ops: exact label
// match, "<label>[i]" branch entries, and extraction/feature-selection
// spending folded into the pre-filtered join that caused it. Stats
// labels do not say which join an extraction belonged to, so the fold
// happens only when exactly one join pre-filters; with several, their
// extraction spending is left unattributed rather than misattributed.
func (cp *CostedPlan) foldActual(actual []OpActual) map[Node]*actualAgg {
	out := map[Node]*actualAgg{}
	at := func(n Node) *actualAgg {
		g := out[n]
		if g == nil {
			g = &actualAgg{}
			out[n] = g
		}
		return g
	}
	prefilterJoin := Node(nil)
	prefilterJoins := 0
	for i := range cp.Ops {
		if j, ok := cp.Ops[i].Node.(*CrowdJoin); ok && j.Phys != nil && j.Phys.UseFeatures {
			prefilterJoin = j
			prefilterJoins++
		}
	}
	if prefilterJoins > 1 {
		prefilterJoin = nil
	}
	for _, a := range actual {
		matched := false
		for i := range cp.Ops {
			op := &cp.Ops[i]
			if a.Label == op.Label || strings.HasPrefix(a.Label, op.Label+"[") {
				at(op.Node).fold(a)
				matched = true
				break
			}
		}
		if !matched && prefilterJoin != nil &&
			(strings.HasPrefix(a.Label, "extract-") || strings.HasPrefix(a.Label, "feature")) {
			at(prefilterJoin).fold(a)
		}
	}
	return out
}

func (cp *CostedPlan) render(actual map[Node]*actualAgg) string {
	byNode := map[Node]*OpCost{}
	for i := range cp.Ops {
		byNode[cp.Ops[i].Node] = &cp.Ops[i]
	}
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if IsCrowd(n) {
			b.WriteString("☺ ")
		} else {
			b.WriteString("- ")
		}
		b.WriteString(n.Label())
		if oc, ok := byNode[n]; ok {
			fmt.Fprintf(&b, "  · %s · est %d HITs ×%d asn = $%.2f · q≈%.2f · %s",
				oc.Choice, oc.HITs, oc.Assignments, oc.Dollars, oc.Quality, oc.Detail)
			if actual != nil {
				got := actual[n]
				hits := 0
				if got != nil {
					hits = got.hits
				}
				fmt.Fprintf(&b, " · actual %d HITs", hits)
				if oc.HITs > 0 {
					fmt.Fprintf(&b, " (%+.0f%%)", 100*float64(hits-oc.HITs)/float64(oc.HITs))
				}
				// Observed statistics next to the estimates that should
				// have predicted them — the mis-estimates PR 3 recorded
				// were invisible here when only HIT counts rendered.
				if got != nil {
					if got.selW > 0 {
						fmt.Fprintf(&b, " · obs sel %.3f", got.sel/got.selW)
					}
					if got.passW > 0 {
						fmt.Fprintf(&b, " · obs pass %.3f", got.pass/got.passW)
					}
					if got.gsizeW > 0 {
						fmt.Fprintf(&b, " · obs group ≈%.0f rows", got.gsize/got.gsizeW)
					}
				}
			}
		}
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(cp.Root, 0)
	fmt.Fprintf(&b, "plan: est %d HITs, $%.2f, ≈%.1fh serial crowd time, quality ≥ %.2f\n",
		cp.TotalHITs, cp.TotalDollars, cp.MakespanHours, cp.Quality)
	if cp.BudgetDollars > 0 {
		status := "fits"
		if cp.OverBudget {
			status = "OVER BUDGET even at minimum cost"
		}
		fmt.Fprintf(&b, "budget: $%.2f (%s)\n", cp.BudgetDollars, status)
	}
	for _, n := range cp.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// featureDomain is the size of a POSSIBLY feature's answer domain
// (radio options excluding UNKNOWN; 3 when free-form).
func featureDomain(f join.Feature) int {
	fld, ok := fieldOf(f.Task, f.Field)
	if !ok || len(fld.Response.Options) == 0 {
		return 3
	}
	n := 0
	for _, o := range fld.Response.Options {
		if !strings.EqualFold(o, "UNKNOWN") {
			n++
		}
	}
	if n < 2 {
		return 2
	}
	return n
}

func fieldOf(gt *task.Generative, name string) (task.Field, bool) {
	for _, f := range gt.Fields {
		if strings.EqualFold(f.Name, name) {
			return f, true
		}
	}
	return task.Field{}, false
}

// clampFraction bounds a blended estimate to a usable probability:
// strictly positive (a zero selectivity would zero out estimates) and
// at most 1.
func clampFraction(v float64) float64 {
	if v < 1e-6 {
		return 1e-6
	}
	if v > 1 {
		return 1
	}
	return v
}

func scaleRows(in int, sel float64) int {
	if in <= 0 {
		return 0
	}
	out := int(math.Ceil(float64(in) * sel))
	if out < 0 {
		out = 0
	}
	if out > in {
		out = in
	}
	return out
}

// uniqueBranches counts OR branches that actually post HITs (duplicate
// task+negation disjuncts share one posting, as the executor does).
func uniqueBranches(t *CrowdFilterOr) int {
	seen := map[string]bool{}
	n := 0
	for i, br := range t.Branches {
		sig := fmt.Sprintf("%s|%v", br.Name, t.Negates[i])
		if !seen[sig] {
			seen[sig] = true
			n++
		}
	}
	return n
}
