package plan

import (
	"strings"
	"testing"

	"qurk/internal/dataset"
	"qurk/internal/query"
	"qurk/internal/task"
)

// lib is a minimal TaskSource for planner tests.
type lib map[string]struct {
	t      task.Task
	params []string
}

func (l lib) Resolve(name string) (task.Task, []string, error) {
	e, ok := l[strings.ToLower(name)]
	if !ok {
		return nil, nil, errUnknown(name)
	}
	return e.t, e.params, nil
}

type errUnknown string

func (e errUnknown) Error() string { return "unknown task " + string(e) }

func testLib() lib {
	return lib{
		"isfemale":   {t: dataset.IsFemaleTask()},
		"sameperson": {t: dataset.SamePersonTask()},
		"gender":     {t: dataset.GenderTask()},
		"haircolor":  {t: dataset.HairColorTask()},
		"skincolor":  {t: dataset.SkinColorTask()},
		"numinscene": {t: dataset.NumInSceneTask()},
		"inscene":    {t: dataset.InSceneTask()},
		"quality":    {t: dataset.QualityTask()},
		"sorter":     {t: dataset.SquareSorterTask()},
		"animalinfo": {t: dataset.AnimalInfoTask()},
	}
}

func mustPlan(t *testing.T, src string) Node {
	t.Helper()
	stmt, err := query.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	node, err := Build(stmt, testLib())
	if err != nil {
		t.Fatal(err)
	}
	return node
}

func TestPlanFilterQuery(t *testing.T) {
	node := mustPlan(t, `SELECT name FROM celeb c WHERE isFemale(c.img)`)
	proj, ok := node.(*Project)
	if !ok {
		t.Fatalf("root = %T", node)
	}
	cf, ok := proj.Input.(*CrowdFilter)
	if !ok {
		t.Fatalf("child = %T", proj.Input)
	}
	if cf.Task.Name != "isFemale" {
		t.Errorf("task = %s", cf.Task.Name)
	}
	if _, ok := cf.Input.(*Scan); !ok {
		t.Errorf("filter input = %T", cf.Input)
	}
}

func TestPlanMachinePushdown(t *testing.T) {
	// The machine predicate (id > 3) must sit BELOW the crowd filter
	// even though it appears after it in the query (paper §2.5).
	node := mustPlan(t, `SELECT name FROM celeb c WHERE isFemale(c.img) AND c.id > 3`)
	proj := node.(*Project)
	cf, ok := proj.Input.(*CrowdFilter)
	if !ok {
		t.Fatalf("expected crowd filter above machine filter, got %T", proj.Input)
	}
	if _, ok := cf.Input.(*MachineFilter); !ok {
		t.Fatalf("expected machine filter below, got %T", cf.Input)
	}
}

func TestPlanOrFilters(t *testing.T) {
	node := mustPlan(t, `SELECT name FROM celeb c WHERE isFemale(c.img) OR NOT isFemale(c.img)`)
	proj := node.(*Project)
	or, ok := proj.Input.(*CrowdFilterOr)
	if !ok {
		t.Fatalf("expected CrowdFilterOr, got %T", proj.Input)
	}
	if len(or.Branches) != 2 || or.Negates[0] || !or.Negates[1] {
		t.Errorf("branches = %d negates = %v", len(or.Branches), or.Negates)
	}
}

func TestPlanJoinWithFeatures(t *testing.T) {
	node := mustPlan(t, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
AND POSSIBLY hairColor(c.img) = hairColor(p.img)`)
	proj := node.(*Project)
	cj, ok := proj.Input.(*CrowdJoin)
	if !ok {
		t.Fatalf("expected CrowdJoin, got %T", proj.Input)
	}
	if cj.Task.Name != "samePerson" {
		t.Errorf("join task = %s", cj.Task.Name)
	}
	if len(cj.LeftFeatures) != 2 || len(cj.RightFeatures) != 2 {
		t.Fatalf("features = %d/%d", len(cj.LeftFeatures), len(cj.RightFeatures))
	}
	if cj.LeftFeatures[0].Field != "gender" || cj.LeftFeatures[1].Field != "hair" {
		t.Errorf("feature fields = %s, %s", cj.LeftFeatures[0].Field, cj.LeftFeatures[1].Field)
	}
}

func TestPlanUnaryPossibly(t *testing.T) {
	node := mustPlan(t, `
SELECT name, scenes.img FROM actors JOIN scenes
ON inScene(actors.img, scenes.img)
AND POSSIBLY numInScene(scenes.img) = 1
ORDER BY name, quality(scenes.img)`)
	// Root: Project > CrowdOrderBy > CrowdJoin(left=Scan(actors),
	// right=UnaryPossibly(Scan(scenes))).
	proj := node.(*Project)
	ob, ok := proj.Input.(*CrowdOrderBy)
	if !ok {
		t.Fatalf("expected CrowdOrderBy, got %T", proj.Input)
	}
	if len(ob.GroupCols) != 1 || ob.GroupCols[0] != "name" {
		t.Errorf("group cols = %v", ob.GroupCols)
	}
	cj := ob.Input.(*CrowdJoin)
	up, ok := cj.Right.(*UnaryPossibly)
	if !ok {
		t.Fatalf("join right = %T, want UnaryPossibly", cj.Right)
	}
	if up.Task.Name != "numInScene" || up.Op != "=" || up.Value != "1" {
		t.Errorf("unary possibly = %+v", up)
	}
	if _, ok := cj.Left.(*Scan); !ok {
		t.Errorf("join left = %T", cj.Left)
	}
}

func TestPlanOrderByColumnsOnly(t *testing.T) {
	node := mustPlan(t, `SELECT name FROM celeb c ORDER BY c.name DESC`)
	proj := node.(*Project)
	ob, ok := proj.Input.(*MachineOrderBy)
	if !ok {
		t.Fatalf("expected MachineOrderBy, got %T", proj.Input)
	}
	if len(ob.Cols) != 1 || !ob.Desc[0] {
		t.Errorf("order = %+v", ob)
	}
}

func TestPlanGenerativeSelect(t *testing.T) {
	node := mustPlan(t, `SELECT name, animalInfo(img).common FROM animals a`)
	proj := node.(*Project)
	gen, ok := proj.Input.(*Generate)
	if !ok {
		t.Fatalf("expected Generate, got %T", proj.Input)
	}
	if gen.Task.Name != "animalInfo" || gen.Fields[0] != "common" {
		t.Errorf("generate = %+v", gen)
	}
	if proj.Columns[1] != "animalInfo.common" {
		t.Errorf("projected column = %q", proj.Columns[1])
	}
}

func TestPlanLimit(t *testing.T) {
	node := mustPlan(t, `SELECT label FROM squares ORDER BY sorter(img) LIMIT 5`)
	lim, ok := node.(*Limit)
	if !ok {
		t.Fatalf("root = %T", node)
	}
	if lim.N != 5 {
		t.Errorf("limit = %d", lim.N)
	}
	if _, ok := lim.Input.(*Project); !ok {
		t.Errorf("limit input = %T", lim.Input)
	}
}

func TestPlanErrors(t *testing.T) {
	cases := []string{
		`SELECT name FROM t WHERE unknownTask(x)`,
		`SELECT name FROM t WHERE isFemale(x) AND samePerson(a, b)`,                           // join task in WHERE
		`SELECT name FROM t JOIN u ON isFemale(x)`,                                            // filter task in ON
		`SELECT name FROM t JOIN u ON samePerson(a, b) AND POSSIBLY gender(a) < gender(b)`,    // non-equality
		`SELECT name FROM t JOIN u ON samePerson(a, b) AND POSSIBLY gender(a) = hairColor(b)`, // task mismatch
		`SELECT name FROM t ORDER BY quality(img), name`,                                      // UDF not last
		`SELECT name FROM t ORDER BY isFemale(img)`,                                           // filter as rank
	}
	for _, src := range cases {
		stmt, err := query.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Build(stmt, testLib()); err == nil {
			t.Errorf("planned invalid query %q", src)
		}
	}
}

func TestExplain(t *testing.T) {
	node := mustPlan(t, `
SELECT c.name FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
WHERE isFemale(c.img)
ORDER BY quality(p.img)`)
	out := Explain(node)
	for _, want := range []string{"Project", "CrowdOrderBy(quality)", "CrowdJoin(samePerson, features: gender)", "CrowdFilter(isFemale)", "Scan(celeb AS c)", "Scan(photos AS p)", "☺"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestBindingThroughDSLParams(t *testing.T) {
	// A DSL task with formal params gets its prompt bound to the
	// call-site columns.
	src := `
TASK isFemale(field) TYPE Filter:
	Prompt: "<img src='%s'>", tuple[field]
	Combiner: MajorityVote
`
	script, err := query.ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	built, err := query.BuildTask(script.Tasks[0])
	if err != nil {
		t.Fatal(err)
	}
	l := lib{"isfemale": {t: built, params: script.Tasks[0].Params}}
	stmt, err := query.ParseQuery(`SELECT name FROM celeb c WHERE isFemale(c.img)`)
	if err != nil {
		t.Fatal(err)
	}
	node, err := Build(stmt, l)
	if err != nil {
		t.Fatal(err)
	}
	cf := node.(*Project).Input.(*CrowdFilter)
	if cf.Task.Prompt.Fields[0] != "c.img" {
		t.Errorf("bound prompt field = %q, want c.img", cf.Task.Prompt.Fields[0])
	}
	// The library's original task is untouched.
	if built.(*task.Filter).Prompt.Fields[0] != "field" {
		t.Error("planner mutated the library task")
	}
}
