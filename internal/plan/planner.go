package plan

import (
	"fmt"
	"strings"

	"qurk/internal/join"
	"qurk/internal/query"
	"qurk/internal/task"
)

// TaskSource resolves UDF names to task templates plus their DSL formal
// parameters; core.Library implements it.
type TaskSource interface {
	// Resolve returns the task registered under name and its formal
	// parameters (empty for tasks bound to concrete columns).
	Resolve(name string) (task.Task, []string, error)
}

// Build compiles a parsed query into a logical plan (paper §2.5):
// machine predicates pushed down, conjuncts serial, disjuncts parallel,
// left-deep joins, POSSIBLY clauses to feature filters, ORDER BY to the
// crowd sort operator, and generative SELECT items to Generate nodes.
func Build(stmt *query.SelectStmt, tasks TaskSource) (Node, error) {
	p := &planner{tasks: tasks, bindings: map[string]bool{}}
	return p.build(stmt)
}

type planner struct {
	tasks    TaskSource
	bindings map[string]bool // table aliases visible to UDF args
}

func (p *planner) build(stmt *query.SelectStmt) (Node, error) {
	if len(stmt.Select) == 0 {
		return nil, fmt.Errorf("plan: empty select list")
	}
	p.bind(stmt.From)
	var node Node = &Scan{Table: stmt.From.Table, Alias: stmt.From.Alias}

	// WHERE: machine predicates first (pushdown), then crowd filters
	// serially in query order (conjuncts are serial, §2.5).
	var machine, crowdConj []query.Expr
	if stmt.Where != nil {
		for _, c := range conjuncts(stmt.Where) {
			if isMachine(c) {
				machine = append(machine, c)
			} else {
				crowdConj = append(crowdConj, c)
			}
		}
	}
	for _, m := range machine {
		node = &MachineFilter{Input: node, Expr: m}
	}
	for _, c := range crowdConj {
		n, err := p.crowdPredicate(node, c)
		if err != nil {
			return nil, err
		}
		node = n
	}

	// Joins, left-deep in query order.
	for _, jc := range stmt.Joins {
		p.bind(jc.Table)
		right := Node(&Scan{Table: jc.Table.Table, Alias: jc.Table.Alias})
		jt, err := p.bindEquiJoin(jc.On)
		if err != nil {
			return nil, err
		}
		cj := &CrowdJoin{Left: node, Right: right, Task: jt}
		for _, pc := range jc.Possibly {
			if err := p.addPossibly(cj, pc, jc.Table.Binding()); err != nil {
				return nil, err
			}
		}
		node = cj
	}

	// SELECT: generative UDF items need Generate nodes.
	var columns, aliases []string
	star := false
	for _, item := range stmt.Select {
		if item.Star {
			star = true
			continue
		}
		switch e := item.Expr.(type) {
		case *query.ColumnRef:
			columns = append(columns, e.Name())
			aliases = append(aliases, coalesce(item.Alias, e.Column))
		case *query.UDFCall:
			gt, fields, err := p.bindGenerativeSelect(e)
			if err != nil {
				return nil, err
			}
			node = &Generate{Input: node, Task: gt, Fields: fields}
			col := gt.Name + "." + fields[0]
			columns = append(columns, col)
			aliases = append(aliases, coalesce(item.Alias, fields[0]))
		default:
			return nil, fmt.Errorf("plan: unsupported select expression %s", item.Expr)
		}
	}

	// ORDER BY: plain columns become grouping/machine sort; one Rank
	// UDF (which must come last) becomes the crowd sort.
	if len(stmt.OrderBy) > 0 {
		var groupCols []string
		var groupDesc []bool
		var rankCall *query.UDFCall
		var rankDesc bool
		for i, item := range stmt.OrderBy {
			switch e := item.Expr.(type) {
			case *query.ColumnRef:
				if rankCall != nil {
					return nil, fmt.Errorf("plan: ORDER BY columns must precede the Rank UDF")
				}
				groupCols = append(groupCols, e.Name())
				groupDesc = append(groupDesc, item.Desc)
			case *query.UDFCall:
				if i != len(stmt.OrderBy)-1 {
					return nil, fmt.Errorf("plan: the Rank UDF must be the last ORDER BY item")
				}
				rankCall = e
				rankDesc = item.Desc
			default:
				return nil, fmt.Errorf("plan: unsupported ORDER BY expression %s", item.Expr)
			}
		}
		if rankCall != nil {
			rt, err := p.bindRank(rankCall)
			if err != nil {
				return nil, err
			}
			node = &CrowdOrderBy{Input: node, GroupCols: groupCols, Task: rt, Desc: rankDesc}
		} else {
			node = &MachineOrderBy{Input: node, Cols: groupCols, Desc: groupDesc}
		}
	}

	node = &Project{Input: node, Columns: columns, Aliases: aliases, Star: star}
	if stmt.Limit >= 0 {
		node = &Limit{Input: node, N: stmt.Limit}
	}
	return node, nil
}

func (p *planner) bind(t query.TableRef) {
	p.bindings[strings.ToLower(t.Binding())] = true
	p.bindings[strings.ToLower(t.Table)] = true
}

func coalesce(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// conjuncts flattens top-level ANDs.
func conjuncts(e query.Expr) []query.Expr {
	if b, ok := e.(*query.Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []query.Expr{e}
}

// isMachine reports whether the expression references no UDFs and can be
// evaluated without the crowd.
func isMachine(e query.Expr) bool {
	switch t := e.(type) {
	case *query.ColumnRef, *query.Literal:
		return true
	case *query.Binary:
		return isMachine(t.L) && isMachine(t.R)
	case *query.Not:
		return isMachine(t.X)
	default:
		return false
	}
}

// crowdPredicate lowers one crowd WHERE conjunct: a UDF call, NOT of
// one, or an OR of them.
func (p *planner) crowdPredicate(input Node, e query.Expr) (Node, error) {
	switch t := e.(type) {
	case *query.UDFCall:
		ft, err := p.bindFilter(t)
		if err != nil {
			return nil, err
		}
		return &CrowdFilter{Input: input, Task: ft}, nil
	case *query.Not:
		call, ok := t.X.(*query.UDFCall)
		if !ok {
			return nil, fmt.Errorf("plan: NOT is only supported over a filter UDF, got %s", t.X)
		}
		ft, err := p.bindFilter(call)
		if err != nil {
			return nil, err
		}
		return &CrowdFilter{Input: input, Task: ft, Negate: true}, nil
	case *query.Binary:
		if t.Op != "OR" {
			return nil, fmt.Errorf("plan: unsupported crowd predicate %s", e)
		}
		or := &CrowdFilterOr{Input: input}
		if err := p.collectOr(or, t); err != nil {
			return nil, err
		}
		return or, nil
	default:
		return nil, fmt.Errorf("plan: unsupported crowd predicate %s", e)
	}
}

func (p *planner) collectOr(or *CrowdFilterOr, e query.Expr) error {
	switch t := e.(type) {
	case *query.Binary:
		if t.Op != "OR" {
			return fmt.Errorf("plan: unsupported expression %s inside OR", e)
		}
		if err := p.collectOr(or, t.L); err != nil {
			return err
		}
		return p.collectOr(or, t.R)
	case *query.UDFCall:
		ft, err := p.bindFilter(t)
		if err != nil {
			return err
		}
		or.Branches = append(or.Branches, ft)
		or.Negates = append(or.Negates, false)
		return nil
	case *query.Not:
		call, ok := t.X.(*query.UDFCall)
		if !ok {
			return fmt.Errorf("plan: NOT inside OR must wrap a UDF, got %s", t.X)
		}
		ft, err := p.bindFilter(call)
		if err != nil {
			return err
		}
		or.Branches = append(or.Branches, ft)
		or.Negates = append(or.Negates, true)
		return nil
	default:
		return fmt.Errorf("plan: unsupported expression %s inside OR", e)
	}
}

// addPossibly lowers one POSSIBLY clause onto the join node.
func (p *planner) addPossibly(cj *CrowdJoin, pc query.PossiblyClause, rightBinding string) error {
	if rightCall, ok := pc.Right.(*query.UDFCall); ok {
		// Binary feature equality: gender(c.img) = gender(p.img).
		if pc.Op != "=" {
			return fmt.Errorf("plan: POSSIBLY feature comparison must use '=', got %q", pc.Op)
		}
		if !strings.EqualFold(pc.Left.Name, rightCall.Name) {
			return fmt.Errorf("plan: POSSIBLY sides call different tasks: %s vs %s", pc.Left.Name, rightCall.Name)
		}
		lt, field, err := p.bindFeature(pc.Left)
		if err != nil {
			return err
		}
		rt, rfield, err := p.bindFeature(rightCall)
		if err != nil {
			return err
		}
		if field != rfield {
			return fmt.Errorf("plan: POSSIBLY sides extract different fields: %s vs %s", field, rfield)
		}
		cj.LeftFeatures = append(cj.LeftFeatures, join.Feature{Task: lt, Field: field})
		cj.RightFeatures = append(cj.RightFeatures, join.Feature{Task: rt, Field: field})
		return nil
	}
	// Unary predicate: numInScene(scenes.img) = 1. Applies to the side
	// the UDF's argument references.
	lit, ok := pc.Right.(*query.Literal)
	if !ok {
		return fmt.Errorf("plan: POSSIBLY right side must be a UDF or literal, got %s", pc.Right)
	}
	gt, field, err := p.bindFeature(pc.Left)
	if err != nil {
		return err
	}
	up := &UnaryPossibly{Task: gt, Field: field, Op: pc.Op, Value: lit.Text}
	if p.refersTo(pc.Left, rightBinding) {
		up.Input = cj.Right
		cj.Right = up
	} else {
		up.Input = cj.Left
		cj.Left = up
	}
	return nil
}

// refersTo reports whether any UDF argument is qualified by binding.
func (p *planner) refersTo(call *query.UDFCall, binding string) bool {
	for _, a := range call.Args {
		if c, ok := a.(*query.ColumnRef); ok {
			if strings.EqualFold(c.Qualifier, binding) || strings.EqualFold(c.Column, binding) {
				return true
			}
		}
	}
	return false
}

// --- task binding ---

// bindCall resolves and binds a UDF call's formal parameters to the
// actual column names at the call site. Arguments that name a whole
// table binding (isFemale(c)) leave the parameter unbound — the prompt's
// field then resolves against the tuple schema directly.
func (p *planner) bindCall(call *query.UDFCall) (task.Task, error) {
	t, params, err := p.tasks.Resolve(call.Name)
	if err != nil {
		return nil, err
	}
	mapping := map[string]string{}
	for i, param := range params {
		if i >= len(call.Args) {
			break
		}
		c, ok := call.Args[i].(*query.ColumnRef)
		if !ok {
			continue
		}
		if c.Qualifier == "" && p.bindings[strings.ToLower(c.Column)] {
			continue // whole-tuple argument
		}
		mapping[param] = c.Name()
	}
	if len(mapping) == 0 {
		return t, nil
	}
	return task.Bind(t, mapping)
}

func (p *planner) bindFilter(call *query.UDFCall) (*task.Filter, error) {
	t, err := p.bindCall(call)
	if err != nil {
		return nil, err
	}
	ft, ok := t.(*task.Filter)
	if !ok {
		return nil, fmt.Errorf("plan: %s is a %s task, WHERE needs a Filter", call.Name, t.TaskType())
	}
	return ft, nil
}

func (p *planner) bindEquiJoin(call *query.UDFCall) (*task.EquiJoin, error) {
	t, err := p.bindCall(call)
	if err != nil {
		return nil, err
	}
	jt, ok := t.(*task.EquiJoin)
	if !ok {
		return nil, fmt.Errorf("plan: %s is a %s task, ON needs an EquiJoin", call.Name, t.TaskType())
	}
	return jt, nil
}

func (p *planner) bindRank(call *query.UDFCall) (*task.Rank, error) {
	t, err := p.bindCall(call)
	if err != nil {
		return nil, err
	}
	rt, ok := t.(*task.Rank)
	if !ok {
		return nil, fmt.Errorf("plan: %s is a %s task, ORDER BY needs a Rank", call.Name, t.TaskType())
	}
	return rt, nil
}

// bindFeature resolves a POSSIBLY/generative call to a categorical
// generative task and its (single) field.
func (p *planner) bindFeature(call *query.UDFCall) (*task.Generative, string, error) {
	t, err := p.bindCall(call)
	if err != nil {
		return nil, "", err
	}
	gt, ok := t.(*task.Generative)
	if !ok {
		return nil, "", fmt.Errorf("plan: %s is a %s task, POSSIBLY needs a Generative", call.Name, t.TaskType())
	}
	field := call.Field
	if field == "" {
		if len(gt.Fields) != 1 {
			return nil, "", fmt.Errorf("plan: %s has %d fields; specify one with %s(...).field", call.Name, len(gt.Fields), call.Name)
		}
		field = gt.Fields[0].Name
	}
	if _, ok := gt.Field(field); !ok {
		return nil, "", fmt.Errorf("plan: task %s has no field %q", call.Name, field)
	}
	return gt, field, nil
}

// bindGenerativeSelect resolves a SELECT-list generative call.
func (p *planner) bindGenerativeSelect(call *query.UDFCall) (*task.Generative, []string, error) {
	gt, field, err := p.bindFeature(call)
	if err != nil {
		return nil, nil, err
	}
	return gt, []string{field}, nil
}
