package plan

// Property tests for the optimizer: over randomized cardinalities and
// budgets (seeded, deterministic), the chosen plan's estimated HIT
// count never exceeds any quality-eligible alternative's estimate, the
// total spend never exceeds the budget when any in-budget plan exists,
// and the pass itself is deterministic.

import (
	"math/rand"
	"testing"

	"qurk/internal/core"
	"qurk/internal/cost"
	"qurk/internal/dataset"
	"qurk/internal/join"
)

// sortPlan builds Scan → CrowdOrderBy → Project.
func sortPlan() Node {
	scan := &Scan{Table: "squares"}
	ob := &CrowdOrderBy{Input: scan, Task: dataset.SquareSorterTask()}
	return &Project{Input: ob, Star: true}
}

// joinPlan builds Scan ⋈ Scan → Project (no features; the feature
// decision is pinned by the golden crossover tests).
func joinPlan() Node {
	cj := &CrowdJoin{
		Left:  &Scan{Table: "celeb"},
		Right: &Scan{Table: "photos"},
		Task:  dataset.SamePersonTask(),
	}
	return &Project{Input: cj, Star: true}
}

// sortAltEstimates enumerates the optimizer's sort candidate space via
// the shared cost formulas: (HITs, per-answer quality) per alternative.
func sortAltEstimates(n int, opt OptimizeOptions) (hits []int, quals []float64) {
	if n < 2 {
		return nil, nil
	}
	hits = append(hits, compareCoverHITs(n, opt.CompareGroupSize))
	quals = append(quals, cost.QualityCompareSort)
	hits = append(hits, cost.RateSortHITs(n, opt.RateBatch))
	quals = append(quals, cost.QualityRateSort)
	for _, i := range hybridIterationLevels(opt.HybridIterations, n) {
		hits = append(hits, cost.HybridSortHITs(n, opt.RateBatch, i))
		quals = append(quals, cost.HybridQuality(n, i, opt.HybridStep))
	}
	return hits, quals
}

// joinAltEstimates enumerates the featureless join candidate space.
func joinAltEstimates(nl, nr int, opt OptimizeOptions) (hits []int, quals []float64) {
	sel := 1.0
	if m := max(nl, nr); m > 0 {
		sel = 1 / float64(m)
	}
	pairs := cost.JoinPairs(nl, nr, 1)
	hits = append(hits, cost.SimpleJoinHITs(pairs))
	quals = append(quals, cost.QualitySimplePair)
	for _, b := range []int{opt.JoinBatch, 2 * opt.JoinBatch} {
		if cost.Refused(cost.PairEffort(b)) {
			continue
		}
		hits = append(hits, cost.NaiveJoinHITs(pairs, b))
		quals = append(quals, cost.PairQuality(b))
	}
	for _, g := range [][2]int{{opt.GridRows, opt.GridCols}, {5, 5}} {
		if cost.Refused(cost.GridEffort(g[0], g[1])) {
			continue
		}
		hits = append(hits, cost.SmartJoinHITs(nl, nr, g[0], g[1], 1))
		quals = append(quals, cost.GridQuality(g[0], g[1], sel*float64(g[0]*g[1])))
	}
	return hits, quals
}

// checkChosen asserts the ISSUE's property: the chosen operator's HIT
// estimate is ≤ every floor-eligible alternative's estimate
// (unconstrained runs), and with a budget the plan never exceeds it
// when any in-budget combination exists.
func checkChosen(t *testing.T, trial int, cp *CostedPlan, altHits []int, altQuals []float64, budget float64) {
	t.Helper()
	if len(cp.Ops) != 1 {
		t.Fatalf("trial %d: %d ops, want 1", trial, len(cp.Ops))
	}
	op := cp.Ops[0]
	opt := OptimizeOptions{}
	opt.fillDefaults()
	minFeasible := -1
	minAny := -1
	for i, h := range altHits {
		if minAny < 0 || h < minAny {
			minAny = h
		}
		if altQuals[i] >= opt.MinQuality && (minFeasible < 0 || h < minFeasible) {
			minFeasible = h
		}
	}
	if budget == 0 {
		want := minFeasible
		if want < 0 {
			want = minAny // nothing clears the floor: quality-max fallback
		}
		if minFeasible >= 0 && op.HITs > minFeasible {
			t.Errorf("trial %d: chose %s with %d HITs, but a floor-eligible alternative needs only %d",
				trial, op.Choice, op.HITs, minFeasible)
		}
		return
	}
	// Budgeted: the chosen plan may downgrade below the floor, but never
	// above the feasible minimum, and must fit whenever anything fits.
	if minFeasible >= 0 && op.HITs > minFeasible {
		t.Errorf("trial %d (budget $%.2f): chose %d HITs above feasible minimum %d",
			trial, budget, op.HITs, minFeasible)
	}
	cheapest := cost.Dollars(minAny, 1)
	if cheapest <= budget {
		if cp.OverBudget {
			t.Errorf("trial %d: flagged over budget $%.2f though $%.2f fits", trial, budget, cheapest)
		}
		if cp.TotalDollars > budget+1e-9 {
			t.Errorf("trial %d: spends $%.4f over budget $%.2f", trial, cp.TotalDollars, budget)
		}
	} else if !cp.OverBudget {
		t.Errorf("trial %d: budget $%.2f below cheapest $%.2f but not flagged over budget",
			trial, budget, cheapest)
	}
}

func TestOptimizerPropertySort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opt := OptimizeOptions{}
	opt.fillDefaults()
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(300)
		budget := 0.0
		if rng.Intn(2) == 1 {
			budget = 0.05 + 10*rng.Float64()
		}
		cards := CardMap{"squares": n}
		cp, err := Optimize(sortPlan(), cards, OptimizeOptions{BudgetDollars: budget})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		altHits, altQuals := sortAltEstimates(n, opt)
		checkChosen(t, trial, cp, altHits, altQuals, budget)
	}
}

func TestOptimizerPropertyJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	opt := OptimizeOptions{}
	opt.fillDefaults()
	for trial := 0; trial < 120; trial++ {
		nl := 1 + rng.Intn(80)
		nr := 1 + rng.Intn(80)
		budget := 0.0
		if rng.Intn(2) == 1 {
			budget = 0.05 + 20*rng.Float64()
		}
		cards := CardMap{"celeb": nl, "photos": nr}
		cp, err := Optimize(joinPlan(), cards, OptimizeOptions{BudgetDollars: budget})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		altHits, altQuals := joinAltEstimates(nl, nr, opt)
		checkChosen(t, trial, cp, altHits, altQuals, budget)
	}
}

func TestOptimizerDeterministic(t *testing.T) {
	cards := CardMap{"celeb": 37, "photos": 21, "squares": 63}
	for _, build := range []func() Node{sortPlan, joinPlan} {
		a, err := Optimize(build(), cards, OptimizeOptions{BudgetDollars: 1.5})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Optimize(build(), cards, OptimizeOptions{BudgetDollars: 1.5})
		if err != nil {
			t.Fatal(err)
		}
		if a.Render() != b.Render() {
			t.Errorf("optimizer not deterministic:\n%s\nvs\n%s", a.Render(), b.Render())
		}
	}
}

// TestOptimizeOptionsFrom pins the engine-options mapping.
func TestOptimizeOptionsFrom(t *testing.T) {
	eo := core.Options{Assignments: 3, JoinBatch: 7, GridRows: 4, GridCols: 2, RateBatch: 6}
	oo := OptimizeOptionsFrom(eo, 2.5)
	if oo.BudgetDollars != 2.5 || oo.Assignments != 3 || oo.JoinBatch != 7 ||
		oo.GridRows != 4 || oo.GridCols != 2 || oo.RateBatch != 6 {
		t.Errorf("mapping lost fields: %+v", oo)
	}
}

// TestOptimizeAnnotatesEveryCrowdOp: every crowd node in a mixed plan
// gets a physical annotation.
func TestOptimizeAnnotatesEveryCrowdOp(t *testing.T) {
	scan := &Scan{Table: "celeb"}
	f := &CrowdFilter{Input: scan, Task: dataset.IsFemaleTask()}
	cj := &CrowdJoin{Left: f, Right: &Scan{Table: "photos"}, Task: dataset.SamePersonTask()}
	ob := &CrowdOrderBy{Input: cj, Task: dataset.QualityTask()}
	root := &Project{Input: ob, Star: true}
	cp, err := Optimize(root, CardMap{"celeb": 30, "photos": 30}, OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Ops) != 3 {
		t.Fatalf("%d costed ops, want 3", len(cp.Ops))
	}
	if f.Phys == nil || cj.Phys == nil || ob.Phys == nil {
		t.Errorf("missing annotations: filter=%v join=%v sort=%v", f.Phys, cj.Phys, ob.Phys)
	}
	if cj.Phys.Algorithm != join.Smart {
		t.Errorf("filtered 15×30 join chose %v, want SmartBatch", cj.Phys)
	}
	if cp.TotalHITs != cp.Ops[0].HITs+cp.Ops[1].HITs+cp.Ops[2].HITs {
		t.Error("TotalHITs does not sum operator estimates")
	}
}
