package plan

import (
	"fmt"

	"qurk/internal/core"
	"qurk/internal/join"
	"qurk/internal/sortop"
)

// Physical annotations. The optimizer (Optimize) decorates logical plan
// nodes with the interface it chose for each crowd operator; the
// streaming executor reads the annotation and falls back to the
// engine-wide Options when a node carries none, so hand-built and
// un-optimized plans behave exactly as before.

// JoinPhys is the chosen join interface for one CrowdJoin.
type JoinPhys struct {
	// Algorithm is Simple, Naive, or Smart (§3.1).
	Algorithm join.Algorithm
	// BatchSize is pairs per HIT for Naive.
	BatchSize int
	// GridRows×GridCols is the Smart grid shape.
	GridRows, GridCols int
	// UseFeatures applies the POSSIBLY feature pre-filter (§3.2) when
	// the node has features; false joins the full cross product even
	// then (the optimizer found extraction not worth its HITs).
	UseFeatures bool
	// Assignments is workers per HIT for this operator (0 = engine
	// default) — the budget allocator's per-stage vote level.
	Assignments int
}

// String renders the choice as the paper names it.
func (p *JoinPhys) String() string {
	var s string
	switch p.Algorithm {
	case join.Naive:
		s = fmt.Sprintf("NaiveBatch b=%d", p.BatchSize)
	case join.Smart:
		s = fmt.Sprintf("SmartBatch %d×%d", p.GridRows, p.GridCols)
	default:
		s = "Simple"
	}
	if p.UseFeatures {
		s += " + prefilter"
	}
	return s
}

// SortPhys is the chosen sort interface for one CrowdOrderBy.
type SortPhys struct {
	// Method is Compare, Rate, or Hybrid (§4.1).
	Method core.SortMethod
	// GroupSize is S, items per comparison group (Compare and Hybrid
	// windows).
	GroupSize int
	// RateBatch is items per rating HIT (Rate and the Hybrid seed).
	RateBatch int
	// Iterations and Step parametrize Hybrid refinement.
	Iterations, Step int
	// Strategy is the Hybrid window scheme. It is honored verbatim —
	// the zero value is sortop.RandomWindow, not the engine default
	// SlidingWindow — so hand-built annotations should set it
	// explicitly (the optimizer always does).
	Strategy sortop.WindowStrategy
	// Assignments is workers per HIT (0 = engine default).
	Assignments int
}

// String renders the choice as the paper's figures label it.
func (p *SortPhys) String() string {
	switch p.Method {
	case core.SortRate:
		return fmt.Sprintf("Rate b=%d", p.RateBatch)
	case core.SortHybrid:
		return fmt.Sprintf("Hybrid/%s S=%d t=%d i=%d", p.Strategy, p.GroupSize, p.Step, p.Iterations)
	default:
		return fmt.Sprintf("Compare S=%d", p.GroupSize)
	}
}

// BatchPhys is the chosen batching for a filter, generative, or
// POSSIBLY-extraction operator (no interface alternatives, but the
// budget allocator still sets its vote level).
type BatchPhys struct {
	// Batch is questions per HIT.
	Batch int
	// Assignments is workers per HIT (0 = engine default).
	Assignments int
}

// String renders the choice.
func (p *BatchPhys) String() string { return fmt.Sprintf("batch %d", p.Batch) }
