// Package plan turns parsed Qurk queries into logical plan trees
// (paper §2.5): machine-evaluable predicates are pushed below crowd
// operators, WHERE conjuncts run serially while disjuncts run in
// parallel, joins execute left-deep, and POSSIBLY clauses become feature
// filters (binary) or pre-join extraction filters (unary).
package plan

import (
	"fmt"
	"strings"

	"qurk/internal/join"
	"qurk/internal/query"
	"qurk/internal/task"
)

// Node is one logical plan operator.
type Node interface {
	// Label renders the node for EXPLAIN output.
	Label() string
	// Children returns input nodes (left first).
	Children() []Node
}

// Scan reads a base table, optionally under an alias.
type Scan struct {
	// Table is the catalog table name.
	Table string
	// Alias is the optional binding name (FROM celeb AS c).
	Alias string
}

// Label implements Node.
func (s *Scan) Label() string {
	if s.Alias != "" && s.Alias != s.Table {
		return fmt.Sprintf("Scan(%s AS %s)", s.Table, s.Alias)
	}
	return fmt.Sprintf("Scan(%s)", s.Table)
}

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Binding returns the name columns are qualified with.
func (s *Scan) Binding() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.Table
}

// MachineFilter evaluates a non-HIT predicate (pushed down, §2.5).
type MachineFilter struct {
	// Input is the child operator.
	Input Node
	// Expr is the machine-evaluable predicate.
	Expr query.Expr
}

// Label implements Node.
func (f *MachineFilter) Label() string { return fmt.Sprintf("MachineFilter(%s)", f.Expr) }

// Children implements Node.
func (f *MachineFilter) Children() []Node { return []Node{f.Input} }

// CrowdFilter posts one Filter task per input tuple.
type CrowdFilter struct {
	// Input is the child operator.
	Input Node
	// Task is the Filter task template each tuple instantiates.
	Task *task.Filter
	// Negate keeps the tuples the crowd says NO to.
	Negate bool
	// Phys is the optimizer's batching choice (nil = engine defaults).
	Phys *BatchPhys
}

// Label implements Node.
func (f *CrowdFilter) Label() string {
	if f.Negate {
		return fmt.Sprintf("CrowdFilter(NOT %s)", f.Task.Name)
	}
	return fmt.Sprintf("CrowdFilter(%s)", f.Task.Name)
}

// Children implements Node.
func (f *CrowdFilter) Children() []Node { return []Node{f.Input} }

// CrowdFilterOr keeps tuples any branch accepts; branches are posted in
// parallel (paper §2.5: "disjuncts (ORs) are issued in parallel").
type CrowdFilterOr struct {
	// Input is the child operator.
	Input Node
	// Branches are the disjunct Filter tasks, posted concurrently.
	Branches []*task.Filter
	// Negates marks per-branch negation, parallel to Branches.
	Negates []bool
	// Phys is the optimizer's batching choice (nil = engine defaults).
	Phys *BatchPhys
}

// Label implements Node.
func (f *CrowdFilterOr) Label() string {
	names := make([]string, len(f.Branches))
	for i, b := range f.Branches {
		names[i] = b.Name
		if f.Negates[i] {
			names[i] = "NOT " + names[i]
		}
	}
	return fmt.Sprintf("CrowdFilterOr(%s)", strings.Join(names, " OR "))
}

// Children implements Node.
func (f *CrowdFilterOr) Children() []Node { return []Node{f.Input} }

// UnaryPossibly is a pre-join feature extraction plus machine predicate
// over the extracted value — the paper's POSSIBLY numInScene(scenes.img)
// form (§5). UNKNOWN extractions always pass (§2.4).
type UnaryPossibly struct {
	// Input is the child operator.
	Input Node
	// Task is the Generative task that extracts the feature.
	Task *task.Generative
	// Field names the extracted field the predicate tests.
	Field string
	// Op is the comparison operator ("=", "<", …).
	Op string
	// Value is the literal the extraction compares against.
	Value string
	// Phys is the optimizer's batching choice (nil = engine defaults).
	Phys *BatchPhys
}

// Label implements Node.
func (u *UnaryPossibly) Label() string {
	return fmt.Sprintf("UnaryPossibly(%s.%s %s %s)", u.Task.Name, u.Field, u.Op, u.Value)
}

// Children implements Node.
func (u *UnaryPossibly) Children() []Node { return []Node{u.Input} }

// CrowdJoin joins two inputs with an EquiJoin task, optionally pruned by
// feature filters (POSSIBLY equalities, §3.2). LeftFeatures[i] and
// RightFeatures[i] carry per-side bound prompts for the same feature.
type CrowdJoin struct {
	// Left and Right are the probe and build inputs.
	Left, Right Node
	// Task is the EquiJoin task pairs instantiate.
	Task *task.EquiJoin
	// LeftFeatures holds the probe side's feature filters.
	LeftFeatures []join.Feature
	// RightFeatures holds the build side's feature filters.
	RightFeatures []join.Feature
	// Phys is the optimizer's interface choice (nil = engine defaults).
	Phys *JoinPhys
}

// Label implements Node.
func (j *CrowdJoin) Label() string {
	if len(j.LeftFeatures) == 0 {
		return fmt.Sprintf("CrowdJoin(%s)", j.Task.Name)
	}
	names := make([]string, len(j.LeftFeatures))
	for i, f := range j.LeftFeatures {
		names[i] = f.Field
	}
	return fmt.Sprintf("CrowdJoin(%s, features: %s)", j.Task.Name, strings.Join(names, ","))
}

// Children implements Node.
func (j *CrowdJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Generate runs a generative task to materialize SELECTed fields
// (SELECT animalInfo(img).common, §2.2).
type Generate struct {
	// Input is the child operator.
	Input Node
	// Task is the Generative task template.
	Task *task.Generative
	// Fields lists the requested output fields.
	Fields []string
	// Phys is the optimizer's batching choice (nil = engine defaults).
	Phys *BatchPhys
}

// Label implements Node.
func (g *Generate) Label() string {
	return fmt.Sprintf("Generate(%s: %s)", g.Task.Name, strings.Join(g.Fields, ","))
}

// Children implements Node.
func (g *Generate) Children() []Node { return []Node{g.Input} }

// CrowdOrderBy sorts with a Rank task, optionally grouping first by
// machine-sortable columns (ORDER BY name, quality(img) sorts scenes by
// quality within each actor, §5).
type CrowdOrderBy struct {
	// Input is the child operator.
	Input Node
	// GroupCols are machine-sortable grouping columns sorted first.
	GroupCols []string
	// Task is the Rank task the crowd sorts by.
	Task *task.Rank
	// Desc reverses the crowd order.
	Desc bool
	// Phys is the optimizer's interface choice (nil = engine defaults).
	Phys *SortPhys
}

// Label implements Node.
func (o *CrowdOrderBy) Label() string {
	if len(o.GroupCols) > 0 {
		return fmt.Sprintf("CrowdOrderBy(%s within %s)", o.Task.Name, strings.Join(o.GroupCols, ","))
	}
	return fmt.Sprintf("CrowdOrderBy(%s)", o.Task.Name)
}

// Children implements Node.
func (o *CrowdOrderBy) Children() []Node { return []Node{o.Input} }

// MachineOrderBy sorts by plain columns without the crowd.
type MachineOrderBy struct {
	// Input is the child operator.
	Input Node
	// Cols are the sort columns, major first.
	Cols []string
	// Desc marks per-column descending order, parallel to Cols.
	Desc []bool
}

// Label implements Node.
func (o *MachineOrderBy) Label() string {
	return fmt.Sprintf("MachineOrderBy(%s)", strings.Join(o.Cols, ","))
}

// Children implements Node.
func (o *MachineOrderBy) Children() []Node { return []Node{o.Input} }

// Project selects output columns.
type Project struct {
	// Input is the child operator.
	Input Node
	// Columns are resolved column names; Aliases the output names.
	Columns []string
	// Aliases renames Columns in the output, parallel to Columns.
	Aliases []string
	// Star passes everything through.
	Star bool
}

// Label implements Node.
func (p *Project) Label() string {
	if p.Star {
		return "Project(*)"
	}
	return fmt.Sprintf("Project(%s)", strings.Join(p.Columns, ", "))
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Limit caps output rows.
type Limit struct {
	// Input is the child operator.
	Input Node
	// N is the row cap.
	N int
}

// Label implements Node.
func (l *Limit) Label() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// Explain renders the plan tree, crowd operators marked with ☺.
func Explain(n Node) string {
	var b strings.Builder
	explain(&b, n, 0)
	return b.String()
}

// IsCrowd reports whether the node posts HITs when executed; Explain
// marks such nodes ☺, and it lets tools reason about a plan's crowd
// cost without enumerating node types themselves.
func IsCrowd(n Node) bool {
	switch n.(type) {
	case *CrowdFilter, *CrowdFilterOr, *CrowdJoin, *CrowdOrderBy, *Generate, *UnaryPossibly:
		return true
	}
	return false
}

func explain(b *strings.Builder, n Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if IsCrowd(n) {
		b.WriteString("☺ ")
	} else {
		b.WriteString("- ")
	}
	b.WriteString(n.Label())
	b.WriteByte('\n')
	for _, c := range n.Children() {
		explain(b, c, depth+1)
	}
}
