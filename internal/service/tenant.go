// Tenants, budgets, and the marketplace budget gate.
//
// qurkd admits queries from many tenants against shared crowd
// backends. Each tenant carries a dollar budget and a cost.Ledger;
// every HIT group any of the tenant's queries posts is priced at the
// paper's $0.015-per-assignment rate and charged against the budget
// *before* it reaches the marketplace, so a tenant that runs out of
// money mid-query stops posting immediately (the query fails with
// ErrBudgetExceeded) instead of discovering the overdraft at the end.
package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"qurk/internal/cost"
	"qurk/internal/crowd"
	"qurk/internal/hit"
	"qurk/internal/wal"
)

// ErrBudgetExceeded reports that posting a HIT group would push a
// tenant past its dollar budget. Queries surface it as their failure
// reason; admission control surfaces it before a query starts.
var ErrBudgetExceeded = errors.New("service: tenant budget exceeded")

// Tenant is one paying principal. Budget checks and charges are
// serialized per tenant, so concurrent queries cannot jointly
// overdraft.
type Tenant struct {
	// ID names the tenant in the HTTP API.
	ID string
	// BudgetDollars caps total crowd spend across all the tenant's
	// queries; 0 means unlimited.
	BudgetDollars float64
	// Ledger accumulates every charged HIT group, labeled by query.
	Ledger *cost.Ledger

	mu sync.Mutex
}

// SpentDollars is the tenant's total charged crowd spend.
func (t *Tenant) SpentDollars() float64 { return t.Ledger.TotalDollars() }

// RemainingDollars is budget minus spend (0 when over, always 0 for
// unlimited tenants — check BudgetDollars to distinguish).
func (t *Tenant) RemainingDollars() float64 {
	if t.BudgetDollars <= 0 {
		return 0
	}
	if r := t.BudgetDollars - t.SpentDollars(); r > 0 {
		return r
	}
	return 0
}

// admit checks that est more dollars fit in the budget without
// charging anything (admission control: reject a query whose optimizer
// estimate cannot fit in what is left).
func (t *Tenant) admit(est float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.BudgetDollars > 0 && t.SpentDollars()+est > t.BudgetDollars+priceEpsilon {
		return fmt.Errorf("%w: tenant %s has $%.2f of $%.2f left, query estimate is $%.2f",
			ErrBudgetExceeded, t.ID, t.BudgetDollars-t.SpentDollars(), t.BudgetDollars, est)
	}
	return nil
}

// priceEpsilon absorbs float accumulation when a tenant spends exactly
// its budget.
const priceEpsilon = 1e-9

// charge prices one HIT group and records it in the ledger, or rejects
// it when the budget cannot cover it. label names the ledger entry
// (the query ID).
func (t *Tenant) charge(label string, group *hit.Group) error {
	hits, price := groupPrice(group)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.BudgetDollars > 0 && t.SpentDollars()+price > t.BudgetDollars+priceEpsilon {
		return fmt.Errorf("%w: tenant %s spent $%.2f of $%.2f, next group of %d HITs costs $%.2f",
			ErrBudgetExceeded, t.ID, t.SpentDollars(), t.BudgetDollars, hits, price)
	}
	// Ledger entries are (hits, assignments-per-HIT); groups are
	// uniform per chunk, so record at the first HIT's assignment level.
	asn := 1
	if len(group.HITs) > 0 {
		asn = group.HITs[0].Assignments
	}
	t.Ledger.Add(label, hits, asn)
	return nil
}

// groupPrice sums each HIT's assignments at the paper's rate.
func groupPrice(group *hit.Group) (hits int, dollars float64) {
	for i := range group.HITs {
		dollars += cost.Dollars(1, group.HITs[i].Assignments)
	}
	return len(group.HITs), dollars
}

// Registry is the concurrency-safe tenant directory.
type Registry struct {
	mu      sync.Mutex
	tenants map[string]*Tenant
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{tenants: map[string]*Tenant{}} }

// Ensure returns the named tenant, creating it with the given budget
// if absent (an existing tenant's budget is not changed).
func (r *Registry) Ensure(id string, budgetDollars float64) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[id]; ok {
		return t
	}
	t := &Tenant{ID: id, BudgetDollars: budgetDollars, Ledger: cost.NewLedger()}
	r.tenants[id] = t
	return t
}

// Get returns the named tenant or nil.
func (r *Registry) Get(id string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[id]
}

// List returns every tenant, sorted by ID.
func (r *Registry) List() []*Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BudgetGate wraps a marketplace so every posted group is charged to a
// tenant first. It is the Market a per-query engine posts through:
// the gate enforces the mid-run cutoff, the inner marketplace (usually
// the backend's shared Mux) does the crowd work.
type BudgetGate struct {
	// Tenant is charged for every group.
	Tenant *Tenant
	// Label names the ledger entries (the query ID).
	Label string
	// Inner is the wrapped marketplace.
	Inner crowd.Marketplace
	// Journal, when set, makes charges exactly-once across restarts: a
	// group the previous process already charged (its charge record is
	// in the recovered journal) is not charged again, and every fresh
	// charge is logged before the post so the NEXT restart can skip it
	// too. Set by the service's journal wiring; nil for ephemeral runs.
	Journal *wal.Journal
}

// chargeOnce charges the group to the tenant exactly once across
// process restarts. With a journal attached, a recovered charge record
// for this group's key means the money was taken in a previous life —
// skip the ledger and just let the post proceed (the wal.Market layer
// above will typically have replayed the result anyway; this guards
// the crash window between charge and result commit). Fresh charges
// append a charge record after the ledger commits, closing the window
// for the next crash.
func (g *BudgetGate) chargeOnce(group *hit.Group) error {
	if g.Journal != nil && g.Journal.TakeCharge(wal.GroupKey(group)) {
		return nil
	}
	if err := g.Tenant.charge(g.Label, group); err != nil {
		return err
	}
	if g.Journal != nil {
		asn := 1
		if len(group.HITs) > 0 {
			asn = group.HITs[0].Assignments
		}
		return g.Journal.LogCharge(wal.GroupKey(group), len(group.HITs), asn)
	}
	return nil
}

// Run charges the group, then posts it synchronously.
func (g *BudgetGate) Run(group *hit.Group) (*crowd.RunResult, error) {
	if err := g.chargeOnce(group); err != nil {
		return nil, err
	}
	return g.Inner.Run(group)
}

// RunAsync charges the group, then posts it without blocking; a budget
// rejection is delivered on the returned channel.
func (g *BudgetGate) RunAsync(group *hit.Group) <-chan crowd.Async {
	if err := g.chargeOnce(group); err != nil {
		ch := make(chan crowd.Async, 1)
		ch <- crowd.Async{Err: err}
		return ch
	}
	return g.Inner.RunAsync(group)
}
