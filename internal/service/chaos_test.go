package service

// Chaos harness: drives real qurkd binaries through scripted
// kill -9 / restart schedules against the fault-injecting fake MTurk
// endpoint, and asserts the durability invariants hold for three
// concurrent tenants' queries:
//
//  1. bit-identical rows to a run that was never killed,
//  2. the fake endpoint's created-HIT set equals the baseline's
//     (UniqueRequestToken re-posts attach, never duplicate), and
//  3. every tenant ledger charged exactly once per HIT group.
//
// The daemon is killed with SIGKILL — no shutdown hooks, no sealing —
// so every crash lands at an arbitrary point in the post/charge/commit
// pipeline. Recovery has only the journal directory to work from.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"qurk/internal/mturk"
)

// chaosTenants are the three concurrent queries, content-disjoint so
// cross-query answer reuse cannot mask a duplicate post: alice filters
// celeb tuples, bob filters photo tuples, carol joins the two.
var chaosTenants = []struct{ tenant, query string }{
	{"alice", `SELECT c.name FROM celeb AS c WHERE isFemale(c.img)`},
	{"bob", `SELECT p.img FROM photos AS p WHERE isFemale(p.img)`},
	{"carol", `SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)`},
}

// chaosOutcome is everything a scenario run measures.
type chaosOutcome struct {
	rows    map[string][]string // tenant -> sorted result rows
	created []string            // fake endpoint's distinct HIT IDs, sorted
	spent   map[string]float64  // tenant -> ledger dollars
	hits    map[string]int      // tenant -> ledger HIT count
}

// buildQurkd compiles the daemon once into dir.
func buildQurkd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "qurkd")
	out, err := exec.Command("go", "build", "-o", bin, "qurk/cmd/qurkd").CombinedOutput()
	if err != nil {
		t.Fatalf("building qurkd: %v\n%s", err, out)
	}
	return bin
}

// chaosDaemon manages one qurkd process life.
type chaosDaemon struct {
	t        *testing.T
	bin      string
	addr     string
	journal  string
	endpoint string
	cmd      *exec.Cmd
	logs     *bytes.Buffer
}

// start launches qurkd and waits for /readyz.
func (d *chaosDaemon) start() {
	d.t.Helper()
	d.logs = &bytes.Buffer{}
	cmd := exec.Command(d.bin,
		"-addr", d.addr,
		"-dataset", "celebrities", "-n", "8", "-seed", "1",
		"-backend", "mturk-sandbox",
		"-mturk-endpoint", d.endpoint,
		"-mturk-poll", "0.05",
		"-assignments", "3",
		"-journal-dir", d.journal,
	)
	cmd.Env = append(os.Environ(),
		"AWS_ACCESS_KEY_ID=FAKEKEY",
		"AWS_SECRET_ACCESS_KEY=FAKESECRET",
	)
	cmd.Stdout = d.logs
	cmd.Stderr = d.logs
	if err := cmd.Start(); err != nil {
		d.t.Fatalf("starting qurkd: %v", err)
	}
	d.cmd = cmd
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(d.url("/readyz"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("qurkd never became ready; logs:\n%s", d.logs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill sends SIGKILL — the crash the journal must survive.
func (d *chaosDaemon) kill() {
	d.t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		d.t.Fatalf("kill -9: %v", err)
	}
	_ = d.cmd.Wait()
}

func (d *chaosDaemon) url(path string) string { return "http://" + d.addr + path }

// getJSON decodes one API response.
func (d *chaosDaemon) getJSON(path string, out any) error {
	resp, err := http.Get(d.url(path))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// freeAddr reserves an ephemeral localhost port.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// runChaosScenario runs the three tenants' queries to completion on a
// fresh fake endpoint and journal directory. kills > 0 injects that
// many SIGKILL/restart cycles while the queries are in flight.
func runChaosScenario(t *testing.T, bin string, kills int) chaosOutcome {
	t.Helper()
	fake := mturk.NewFakeServer(mturk.FakeConfig{
		SubmitDelay: 40 * time.Millisecond,
	})
	defer fake.Close()

	d := &chaosDaemon{
		t:        t,
		bin:      bin,
		addr:     freeAddr(t),
		journal:  t.TempDir(),
		endpoint: fake.URL(),
	}
	d.start()
	defer func() {
		if d.cmd.ProcessState == nil {
			d.kill()
		}
	}()

	// Submit the three tenants' queries; IDs are q0001..q0003 in
	// submission order, stable across every restart.
	ids := map[string]string{}
	for _, c := range chaosTenants {
		body, _ := json.Marshal(map[string]string{"tenant": c.tenant, "query": c.query})
		resp, err := http.Post(d.url("/v1/queries"), "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sn struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&sn)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusAccepted || sn.ID == "" {
			t.Fatalf("submit for %s: status %d err %v", c.tenant, resp.StatusCode, err)
		}
		ids[c.tenant] = sn.ID
	}

	// The kill schedule: let work accumulate, then SIGKILL at staggered
	// offsets so crashes land in different phases of the pipeline.
	for k := 0; k < kills; k++ {
		time.Sleep(time.Duration(150+100*k) * time.Millisecond)
		d.kill()
		d.start()
	}

	// Follow the queries to terminal states.
	deadline := time.Now().Add(120 * time.Second)
	for {
		var list struct {
			Queries []Snapshot `json:"queries"`
		}
		if err := d.getJSON("/v1/queries", &list); err != nil {
			t.Fatalf("listing queries: %v", err)
		}
		done := 0
		for _, sn := range list.Queries {
			switch sn.State {
			case StateDone:
				done++
			case StateFailed, StateCancelled:
				t.Fatalf("query %s (%s) ended %s: %s", sn.ID, sn.Tenant, sn.State, sn.Error)
			}
		}
		if done == len(chaosTenants) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queries never finished; last list %+v\nlogs:\n%s", list, d.logs)
		}
		time.Sleep(50 * time.Millisecond)
	}

	out := chaosOutcome{
		rows:  map[string][]string{},
		spent: map[string]float64{},
		hits:  map[string]int{},
	}
	for _, c := range chaosTenants {
		out.rows[c.tenant] = fetchRows(t, d, ids[c.tenant])
		var ts TenantSnapshot
		if err := d.getJSON("/v1/tenants/"+c.tenant, &ts); err != nil {
			t.Fatal(err)
		}
		out.spent[c.tenant] = ts.SpentDollars
		out.hits[c.tenant] = ts.HITs
	}
	out.created = append(out.created, fake.CreatedHITs()...)
	sort.Strings(out.created)
	d.kill()
	return out
}

// fetchRows streams one query's NDJSON rows and returns them sorted.
func fetchRows(t *testing.T, d *chaosDaemon, id string) []string {
	t.Helper()
	resp, err := http.Get(d.url("/v1/queries/" + id + "/rows"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Values map[string]string `json:"values"`
			State  string            `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.State != "" {
			continue
		}
		var cols []string
		for k, v := range line.Values {
			cols = append(cols, k+"="+v)
		}
		sort.Strings(cols)
		rows = append(rows, strings.Join(cols, ","))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(rows)
	return rows
}

// TestChaosKillRestart is the tentpole acceptance test: three tenants'
// queries, three kill -9s at arbitrary pipeline points, and the final
// state is indistinguishable from a run that never crashed.
func TestChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness builds and kills real daemons")
	}
	bin := buildQurkd(t, t.TempDir())

	baseline := runChaosScenario(t, bin, 0)
	for tenant, rows := range baseline.rows {
		if len(rows) == 0 {
			t.Fatalf("baseline %s produced no rows", tenant)
		}
	}
	if len(baseline.created) == 0 {
		t.Fatal("baseline posted no HITs")
	}

	chaos := runChaosScenario(t, bin, 3)

	// Invariant 1: bit-identical rows per tenant.
	for _, c := range chaosTenants {
		want, got := baseline.rows[c.tenant], chaos.rows[c.tenant]
		if len(want) != len(got) {
			t.Fatalf("%s: %d rows after chaos, baseline %d", c.tenant, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s row %d diverged: %q vs baseline %q", c.tenant, i, got[i], want[i])
			}
		}
	}

	// Invariant 2: the created-HIT sets are equal — re-posts after a
	// crash attached to existing HITs instead of duplicating them.
	if len(chaos.created) != len(baseline.created) {
		t.Fatalf("chaos created %d HITs, baseline %d", len(chaos.created), len(baseline.created))
	}
	for i := range baseline.created {
		if chaos.created[i] != baseline.created[i] {
			t.Fatalf("created-HIT sets diverge at %d: %s vs %s", i, chaos.created[i], baseline.created[i])
		}
	}

	// Invariant 3: tenant ledgers charged exactly once per HIT group,
	// to the cent, despite charges landing in three different process
	// lives.
	for _, c := range chaosTenants {
		if chaos.spent[c.tenant] != baseline.spent[c.tenant] || chaos.hits[c.tenant] != baseline.hits[c.tenant] {
			t.Fatalf("%s ledger after chaos $%.3f/%d HITs, baseline $%.3f/%d HITs",
				c.tenant, chaos.spent[c.tenant], chaos.hits[c.tenant],
				baseline.spent[c.tenant], baseline.hits[c.tenant])
		}
	}
}

// TestChaosConnectionDrops reruns the scenario with the endpoint
// severing every fourth response mid-body (DropEveryN) and no kills:
// transport retries plus token idempotency must absorb it all.
func TestChaosConnectionDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness builds and kills real daemons")
	}
	bin := buildQurkd(t, t.TempDir())

	baseline := runChaosScenario(t, bin, 0)

	fake := mturk.NewFakeServer(mturk.FakeConfig{
		SubmitDelay: 40 * time.Millisecond,
		DropEveryN:  4,
	})
	defer fake.Close()
	d := &chaosDaemon{
		t:        t,
		bin:      bin,
		addr:     freeAddr(t),
		journal:  t.TempDir(),
		endpoint: fake.URL(),
	}
	d.start()
	defer d.kill()

	ids := map[string]string{}
	for _, c := range chaosTenants {
		body, _ := json.Marshal(map[string]string{"tenant": c.tenant, "query": c.query})
		resp, err := http.Post(d.url("/v1/queries"), "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sn struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&sn)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		ids[c.tenant] = sn.ID
	}

	deadline := time.Now().Add(120 * time.Second)
	for {
		var list struct {
			Queries []Snapshot `json:"queries"`
		}
		if err := d.getJSON("/v1/queries", &list); err != nil {
			t.Fatal(err)
		}
		done := 0
		for _, sn := range list.Queries {
			switch sn.State {
			case StateDone:
				done++
			case StateFailed, StateCancelled:
				t.Fatalf("query %s ended %s under connection drops: %s", sn.ID, sn.State, sn.Error)
			}
		}
		if done == len(chaosTenants) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queries never finished under drops; logs:\n%s", d.logs)
		}
		time.Sleep(50 * time.Millisecond)
	}

	created := fake.CreatedHITs()
	sort.Strings(created)
	if len(created) != len(baseline.created) {
		t.Fatalf("drops run created %d HITs, baseline %d", len(created), len(baseline.created))
	}
	for _, c := range chaosTenants {
		rows := fetchRows(t, d, ids[c.tenant])
		if len(rows) != len(baseline.rows[c.tenant]) {
			t.Fatalf("%s: %d rows under drops, baseline %d", c.tenant, len(rows), len(baseline.rows[c.tenant]))
		}
		for i := range rows {
			if rows[i] != baseline.rows[c.tenant][i] {
				t.Fatalf("%s row %d diverged under drops: %q vs %q", c.tenant, i, rows[i], baseline.rows[c.tenant][i])
			}
		}
	}
	fmt.Fprintf(os.Stderr, "chaos drops: %d HITs, all rows identical\n", len(created))
}
