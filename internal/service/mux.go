// The per-backend marketplace mux.
package service

import (
	"sync"

	"qurk/internal/crowd"
	"qurk/internal/hit"
)

// Mux funnels every query's HIT chunks for one backend through a
// single dispatch loop. Operators across all concurrent queries post
// through their engines' budget gates into the same Mux, so one
// goroutine per backend owns the post order (admission is serialized
// and counted), while completed groups are awaited concurrently by
// their posters — many queries, one poster loop per marketplace.
//
// The wrapped backend still honors the crowd.Marketplace concurrency
// contract (results depend on group content, never interleaving), so
// serializing admission changes observability, not results.
type Mux struct {
	inner crowd.Marketplace
	reqs  chan muxReq

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	groups int
	hits   int
}

type muxReq struct {
	group *hit.Group
	out   chan crowd.Async
}

// NewMux starts the dispatch loop over a backend.
func NewMux(inner crowd.Marketplace) *Mux {
	m := &Mux{inner: inner, reqs: make(chan muxReq), done: make(chan struct{})}
	go m.dispatch()
	return m
}

// dispatch is the backend's single admission loop: it owns the order
// in which groups reach the marketplace and the posted-work counters.
func (m *Mux) dispatch() {
	for {
		select {
		case req := <-m.reqs:
			m.mu.Lock()
			m.groups++
			m.hits += len(req.group.HITs)
			m.mu.Unlock()
			ch := m.inner.RunAsync(req.group)
			go func(out chan crowd.Async) { out <- <-ch }(req.out)
		case <-m.done:
			return
		}
	}
}

// Run posts one group through the loop and blocks for its outcome.
func (m *Mux) Run(group *hit.Group) (*crowd.RunResult, error) {
	a := <-m.RunAsync(group)
	return a.Result, a.Err
}

// RunAsync posts one group through the loop without blocking.
func (m *Mux) RunAsync(group *hit.Group) <-chan crowd.Async {
	out := make(chan crowd.Async, 1)
	select {
	case m.reqs <- out2req(group, out):
	case <-m.done:
		out <- crowd.Async{Err: errMuxClosed}
	}
	return out
}

func out2req(group *hit.Group, out chan crowd.Async) muxReq {
	return muxReq{group: group, out: out}
}

var errMuxClosed = errString("service: marketplace mux is closed")

type errString string

func (e errString) Error() string { return string(e) }

// Stats reports groups and HITs admitted through the loop.
func (m *Mux) Stats() (groups, hits int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.groups, m.hits
}

// Close stops the dispatch loop; groups already admitted complete.
func (m *Mux) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.closed {
		m.closed = true
		close(m.done)
	}
}
