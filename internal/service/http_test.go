package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// startServer runs the service behind a real HTTP listener so the
// chunked rows stream is exercised end to end.
func startServer(t *testing.T, n int, budgets map[string]float64) (*httptest.Server, *Service) {
	t.Helper()
	svc, _ := newTestService(t, n, budgets)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv, svc
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp
}

func postQuery(t *testing.T, srv *httptest.Server, body string) (*http.Response, Snapshot) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/queries", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sn Snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
			t.Fatal(err)
		}
	}
	return resp, sn
}

// TestHTTPEndToEnd drives the full query lifecycle over the wire:
// submit, live NDJSON rows stream, status, tenant accounting, and the
// shared store statistics after a cross-tenant cache hit.
func TestHTTPEndToEnd(t *testing.T) {
	srv, _ := startServer(t, 12, nil)

	var health map[string]string
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}

	resp, sn := postQuery(t, srv,
		fmt.Sprintf(`{"tenant":"alice","query":%q,"options":{"assignments":3}}`, isFemaleQuery))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if sn.ID == "" || sn.Tenant != "alice" {
		t.Fatalf("submit snapshot = %+v", sn)
	}

	// Follow the rows stream to completion: every line but the last is
	// a row with named column values; the last reports the terminal
	// state and the row count.
	streamResp, err := http.Get(srv.URL + "/v1/queries/" + sn.ID + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("rows Content-Type = %q", ct)
	}
	var lines []rowLine
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		var line rowLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("rows stream was empty")
	}
	final := lines[len(lines)-1]
	if final.State != StateDone || final.Error != "" {
		t.Fatalf("final stream line = %+v, want done", final)
	}
	if final.Rows != len(lines)-1 {
		t.Fatalf("final line reports %d rows, stream carried %d", final.Rows, len(lines)-1)
	}
	for _, row := range lines[:len(lines)-1] {
		if _, ok := row.Values["name"]; !ok {
			t.Fatalf("row line missing name column: %+v", row)
		}
	}

	var status Snapshot
	if resp := getJSON(t, srv.URL+"/v1/queries/"+sn.ID, &status); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if status.State != StateDone || status.HITs == 0 || status.Dollars <= 0 {
		t.Fatalf("query snapshot = %+v, want done with crowd spend", status)
	}

	var list struct {
		Queries []Snapshot `json:"queries"`
	}
	getJSON(t, srv.URL+"/v1/queries", &list)
	if len(list.Queries) != 1 || list.Queries[0].ID != sn.ID {
		t.Fatalf("query list = %+v", list.Queries)
	}

	// A second tenant asking the same question is served entirely from
	// the shared store: zero HITs, zero spend, same rows.
	resp2, sn2 := postQuery(t, srv, fmt.Sprintf(`{"tenant":"bob","query":%q}`, isFemaleQuery))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status = %d", resp2.StatusCode)
	}
	streamResp2, err := http.Get(srv.URL + "/v1/queries/" + sn2.ID + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	io2 := new(bytes.Buffer)
	if _, err := io2.ReadFrom(streamResp2.Body); err != nil {
		t.Fatal(err)
	}
	streamResp2.Body.Close()
	var status2 Snapshot
	getJSON(t, srv.URL+"/v1/queries/"+sn2.ID, &status2)
	if status2.State != StateDone || status2.HITs != 0 || status2.Reused == 0 {
		t.Fatalf("cached query snapshot = %+v, want done with 0 HITs and reuse", status2)
	}
	if status2.Rows != status.Rows {
		t.Fatalf("cached query rows %d != original %d", status2.Rows, status.Rows)
	}

	var tenants struct {
		Tenants []TenantSnapshot `json:"tenants"`
	}
	getJSON(t, srv.URL+"/v1/tenants", &tenants)
	if len(tenants.Tenants) != 2 {
		t.Fatalf("tenant list = %+v", tenants.Tenants)
	}
	var alice TenantSnapshot
	if resp := getJSON(t, srv.URL+"/v1/tenants/alice", &alice); resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant status = %d", resp.StatusCode)
	}
	if alice.SpentDollars <= 0 {
		t.Fatalf("alice snapshot = %+v, want spend > 0", alice)
	}
	var bob TenantSnapshot
	getJSON(t, srv.URL+"/v1/tenants/bob", &bob)
	if bob.SpentDollars != 0 {
		t.Fatalf("bob snapshot = %+v, want $0 spend", bob)
	}

	var store struct {
		Enabled bool `json:"enabled"`
		Stats   struct {
			Entries int `json:"entries"`
			Hits    int `json:"hits"`
		} `json:"stats"`
	}
	getJSON(t, srv.URL+"/v1/store", &store)
	if !store.Enabled || store.Stats.Entries == 0 || store.Stats.Hits == 0 {
		t.Fatalf("store stats = %+v, want enabled with answers and hits", store)
	}
}

// TestHTTPErrors covers the failure paths: malformed bodies, unknown
// resources, bad option values, and budget rejection as 402.
func TestHTTPErrors(t *testing.T) {
	srv, _ := startServer(t, 8, map[string]float64{"poor": 0.01})

	resp, _ := postQuery(t, srv, `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d", resp.StatusCode)
	}
	resp, _ = postQuery(t, srv, `{"tenant":"alice","query":"SELECT FROM nowhere"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status = %d", resp.StatusCode)
	}
	resp, _ = postQuery(t, srv,
		fmt.Sprintf(`{"tenant":"alice","query":%q,"options":{"sort":"psychic"}}`, isFemaleQuery))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad option status = %d", resp.StatusCode)
	}
	resp, _ = postQuery(t, srv,
		fmt.Sprintf(`{"tenant":"alice","query":%q,"backend":"carrier-pigeon"}`, isFemaleQuery))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad backend status = %d", resp.StatusCode)
	}

	// An estimate over the tenant's budget is a payment error, and the
	// body names the reason.
	resp3, err := http.Post(srv.URL+"/v1/queries", "application/json",
		strings.NewReader(fmt.Sprintf(`{"tenant":"poor","query":%q}`, isFemaleQuery)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusPaymentRequired {
		t.Fatalf("budget rejection status = %d, want 402", resp3.StatusCode)
	}
	var apiErr map[string]string
	if err := json.NewDecoder(resp3.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(apiErr["error"], "budget") {
		t.Fatalf("402 body = %v, want budget error", apiErr)
	}

	for _, url := range []string{"/v1/queries/q9999", "/v1/queries/q9999/rows", "/v1/tenants/nobody"} {
		if resp := getJSON(t, srv.URL+url, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s status = %d, want 404", url, resp.StatusCode)
		}
	}
}

// TestHTTPCancel cancels a running query over the wire and observes
// the cancelled state in the snapshot.
func TestHTTPCancel(t *testing.T) {
	svc, _ := newTestService(t, 8, nil)
	// Swap in a handler-level test over a blocked market is covered by
	// TestCancel; here DELETE on a finished query must stay done.
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	_, sn := postQuery(t, srv, fmt.Sprintf(`{"tenant":"alice","query":%q}`, isFemaleQuery))
	q, _ := svc.Get(sn.ID)
	waitTerminal(t, q)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/queries/"+sn.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.State != StateDone {
		t.Fatalf("cancel after done flipped state to %s", out.State)
	}
}
